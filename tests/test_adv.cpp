// mrt::adv — adversarial schedules and convergence certificates. Covers:
// the Scheduler seam's byte-identity contract for the default policy, the
// ≥500-triple (algebra × topology × adversarial-schedule) falsification
// suite with dyn::Solver ground truth and thread/compile invariance,
// negative controls (BAD GADGET, a non-monotone lex product) whose
// certificates must report divergence, the schedule-prefix shrinker, the
// pessimal-schedule search, the zero-duration-flap regression, and the
// campaign's schedule axis + bound aggregation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "mrt/adv/adv.hpp"
#include "mrt/chaos/campaign.hpp"
#include "mrt/chaos/fault_plan.hpp"
#include "mrt/chaos/oracles.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/dyn/solver.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/obs/journal.hpp"
#include "mrt/par/par.hpp"
#include "mrt/sim/scenario.hpp"

namespace mrt {
namespace {

using adv::ConvergenceCertificate;
using adv::ScheduleSpec;
using adv::Verdict;
using mrt::testing::I;

// The ND-but-not-increasing max algebra from the dyn differential suite:
// fns are x ↦ max(x, c) over a numeric chain, so arcs can leave weights
// unchanged (nondecreasing holds, Inc fails).
OrderTransform chain_max_algebra(int n) {
  // ord_chain(n)'s carrier is {0..n}: n + 1 elements.
  std::vector<std::vector<int>> fns;
  for (int c = 0; c <= n; ++c) {
    std::vector<int> f(static_cast<std::size_t>(n) + 1);
    for (int x = 0; x <= n; ++x) f[static_cast<std::size_t>(x)] = x > c ? x : c;
    fns.push_back(std::move(f));
  }
  return OrderTransform{"chain(<=,max)", ord_chain(n),
                        fam_table("max_fns", n + 1, std::move(fns)), {}};
}

// One certificate run, rendered as a fixed-format line for the verdict
// tables the invariance tests compare byte-for-byte.
std::string cert_line(std::size_t idx, const ConvergenceCertificate& c) {
  std::ostringstream os;
  os << idx << " " << to_string(c.verdict) << " " << to_string(c.schedule)
     << " rounds=" << c.rounds << " bound=" << c.bound
     << " events=" << c.events << " stale=" << c.stale_discarded;
  return os.str();
}

// --- The Scheduler seam ---------------------------------------------------

// The default policy must be byte-identical whether it is implicit, installed
// explicitly, or built from a FifoJitter spec: same finish time, same event
// count, same routing. This is the contract that keeps every pre-seam seed
// reproducible.
TEST(SchedulerSeam, DefaultFifoByteIdentical) {
  Rng rng(0xADF1);
  const Scenario sc = random_scenario(ot_chain_add(6, 1, 3), I(0), rng, 8, 6);
  SimOptions opts;
  opts.seed = 77;

  PathVectorSim implicit(sc.alg, sc.net, sc.dest, sc.origin, opts);
  const SimResult a = implicit.run();

  FifoJitterScheduler fifo;
  PathVectorSim explicit_fifo(sc.alg, sc.net, sc.dest, sc.origin, opts);
  explicit_fifo.set_scheduler(&fifo);
  const SimResult b = explicit_fifo.run();

  ScheduleSpec spec;  // kind = FifoJitter
  const std::unique_ptr<Scheduler> made = adv::make_scheduler(spec);
  ASSERT_NE(made, nullptr);
  EXPECT_EQ(made->kind(), SchedulerKind::FifoJitter);
  PathVectorSim from_spec(sc.alg, sc.net, sc.dest, sc.origin, opts);
  from_spec.set_scheduler(made.get());
  const SimResult c = from_spec.run();

  for (const SimResult* r : {&b, &c}) {
    EXPECT_TRUE(r->converged);
    EXPECT_EQ(a.events, r->events);
    EXPECT_EQ(a.finish_time, r->finish_time);  // exact double equality
    EXPECT_EQ(a.rounds, r->rounds);
    EXPECT_EQ(a.stats.messages_sent, r->stats.messages_sent);
    ASSERT_EQ(a.routing.weight.size(), r->routing.weight.size());
    for (std::size_t v = 0; v < a.routing.weight.size(); ++v) {
      ASSERT_EQ(a.routing.weight[v].has_value(), r->routing.weight[v].has_value());
      if (a.routing.weight[v]) {
        EXPECT_EQ(*a.routing.weight[v], *r->routing.weight[v]);
      }
    }
  }
  // The default policy never reorders, so nothing may be discarded as stale.
  EXPECT_EQ(a.stats.stale_discarded, 0);
}

TEST(SchedulerSeam, KindsAndSpecsDescribe) {
  EXPECT_STREQ(to_string(SchedulerKind::FifoJitter), "fifo_jitter");
  EXPECT_STREQ(to_string(SchedulerKind::Reorder), "reorder");
  EXPECT_STREQ(to_string(SchedulerKind::HeavyTail), "heavy_tail");
  EXPECT_STREQ(to_string(SchedulerKind::Starve), "starve");
  EXPECT_STREQ(to_string(SchedulerKind::ArcScaled), "arc_scaled");

  const std::vector<ScheduleSpec> gauntlet = adv::builtin_adversaries(9);
  ASSERT_EQ(gauntlet.size(), 4u);
  EXPECT_EQ(gauntlet[0].kind, SchedulerKind::Reorder);
  EXPECT_EQ(gauntlet[1].kind, SchedulerKind::HeavyTail);
  EXPECT_EQ(gauntlet[2].kind, SchedulerKind::Starve);
  EXPECT_EQ(gauntlet[3].kind, SchedulerKind::ArcScaled);
  for (const ScheduleSpec& s : gauntlet) {
    EXPECT_EQ(s.seed, 9u);
    EXPECT_FALSE(s.describe().empty());
    const std::unique_ptr<Scheduler> sched = adv::make_scheduler(s);
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(sched->kind(), s.kind);
    EXPECT_NE(adv::adv_counters(*sched), nullptr);
  }
  // The default policy is not an adversary: no counters to report.
  FifoJitterScheduler fifo;
  EXPECT_EQ(adv::adv_counters(fifo), nullptr);
}

// --- The ≥500-triple falsification suite ----------------------------------

struct TripleSuite {
  // Algebra pool: two exhaustively-increasing chains (the theorem's
  // hypothesis holds), two nondecreasing-but-not-increasing algebras
  // (convergence rests on structure the bound cannot see), and the
  // non-nondecreasing gadget algebra (divergence-capable).
  std::vector<OrderTransform> algs;
  std::vector<ConvergenceProfile> profiles;
  std::vector<ScheduleSpec> schedules;

  TripleSuite() {
    algs.push_back(ot_chain_add(5, 1, 2));
    algs.push_back(ot_chain_add(8, 1, 3));
    algs.push_back(gao_rexford_algebra());
    algs.push_back(chain_max_algebra(6));
    algs.push_back(gadget_algebra());
    for (const OrderTransform& a : algs)
      profiles.push_back(convergence_profile(a));

    ScheduleSpec fifo;
    schedules.push_back(fifo);
    for (ScheduleSpec& s : adv::builtin_adversaries(0x5EED))
      schedules.push_back(std::move(s));
  }

  // Runs triple i and appends its verdict line; every assertion failure is
  // tagged with the triple index for reproduction.
  void run_triple(std::size_t i, std::vector<std::string>& lines,
                  const compile::WeightEngine* engine) const {
    const std::size_t ai = i % algs.size();
    const OrderTransform& alg = algs[ai];
    const ConvergenceProfile& prof = profiles[ai];
    const bool inc =
        prof.increasing == Tri::True && prof.exhaustive;

    Rng rng(par::mix_seed(0xAD5517E, i));
    const int nodes = 4 + static_cast<int>(rng.below(5));
    const int extra = 2 + static_cast<int>(rng.below(5));
    const LabeledGraph net =
        label_randomly(alg, random_connected(rng, nodes, extra), rng);
    const int dest = static_cast<int>(rng.below(static_cast<std::uint64_t>(nodes)));

    ScheduleSpec spec = schedules[(i / algs.size()) % schedules.size()];
    spec.seed = par::mix_seed(0xBADCAB1E, i);
    SimOptions opts;
    opts.seed = par::mix_seed(0xC0FFEE, i);
    opts.max_events = 20'000;  // divergence-capable algebras stop here

    const ConvergenceCertificate cert =
        adv::certify(alg, net, dest, I(0), spec, opts, &prof, engine);
    lines.push_back(cert_line(i, cert));

    EXPECT_EQ(cert.schedule, spec.kind) << "triple " << i;
    EXPECT_EQ(cert.nodes, nodes) << "triple " << i;

    if (inc) {
      // The Daggitt–Griffin acceptance bar: every certificate for a strictly
      // increasing algebra, under every schedule class, satisfies the bound.
      EXPECT_TRUE(cert.converged) << "triple " << i;
      EXPECT_EQ(cert.verdict, Verdict::WithinBound)
          << "triple " << i << ": " << cert.describe();
      EXPECT_EQ(cert.bound, adv::dg_bound(nodes)) << "triple " << i;
      EXPECT_LE(cert.rounds, cert.bound) << "triple " << i;
    } else {
      // Bound not applicable: the certificate must say so (bound = -1) and
      // never claim WithinBound/BoundViolated.
      EXPECT_EQ(cert.bound, -1) << "triple " << i;
      EXPECT_TRUE(cert.verdict == Verdict::Converged ||
                  cert.verdict == Verdict::Diverged)
          << "triple " << i << ": " << cert.describe();
    }

    // Every converged run — any algebra, any schedule — must satisfy the
    // local oracles (stability / extension / reachability), and for the
    // increasing algebras also match the dyn::Solver fixed point.
    if (cert.converged) {
      PathVectorSim sim(alg, net, dest, I(0), opts, engine);
      const std::unique_ptr<Scheduler> sched = adv::make_scheduler(spec);
      sim.set_scheduler(sched.get());
      const SimResult res = sim.run();
      ASSERT_TRUE(res.converged) << "triple " << i;

      chaos::OracleOptions oo;
      oo.check_global = false;
      const chaos::OracleReport rep =
          chaos::check_oracles(alg, net, dest, I(0), res, oo);
      EXPECT_TRUE(rep.all_pass())
          << "triple " << i << ": " << rep.first_failure();

      if (inc) {
        auto solver = dyn::make_solver(dyn::EngineKind::Bellman, alg);
        solver->solve(net, dest, I(0));
        const Routing& truth = solver->routing();
        for (int v = 0; v < nodes; ++v) {
          const auto vi = static_cast<std::size_t>(v);
          ASSERT_EQ(res.routing.weight[vi].has_value(),
                    truth.weight[vi].has_value())
              << "triple " << i << " node " << v;
          if (truth.weight[vi]) {
            EXPECT_EQ(*res.routing.weight[vi], *truth.weight[vi])
                << "triple " << i << " node " << v;
          }
        }
      }
    }
  }
};

// The verdict table of the whole suite, computed via parallel_reduce so the
// thread-invariance test below exercises the real fan-out path.
std::string run_suite(const TripleSuite& suite, std::size_t n) {
  auto lines = par::parallel_reduce<std::vector<std::string>>(
      n, 8, {},
      [&](std::size_t b, std::size_t e, std::vector<std::string>& acc) {
        for (std::size_t i = b; i < e; ++i) suite.run_triple(i, acc, nullptr);
      },
      [](std::vector<std::string>& into, std::vector<std::string>& from) {
        for (std::string& s : from) into.push_back(std::move(s));
      });
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

TEST(TripleSuite, FiveHundredTriplesSatisfyTheBound) {
  const TripleSuite suite;
  const std::string table = run_suite(suite, 525);
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 525);
  // Sanity on coverage: the suite actually exercised both verdict families
  // and at least one reordering schedule discarded stale messages.
  EXPECT_NE(table.find("within_bound"), std::string::npos);
  EXPECT_NE(table.find("reorder"), std::string::npos);
  EXPECT_EQ(table.find("bound_violated"), std::string::npos);
}

TEST(TripleSuite, VerdictTableThreadInvariant) {
  const TripleSuite suite;
  const int hw = par::thread_limit();
  par::set_thread_limit(1);
  const std::string sequential = run_suite(suite, 160);
  par::set_thread_limit(hw > 1 ? hw : 4);
  const std::string parallel = run_suite(suite, 160);
  par::set_thread_limit(hw);
  EXPECT_EQ(sequential, parallel);
}

// MRT_COMPILE invariance: certificates are identical whether the sim runs
// boxed or through the compiled flat kernels.
TEST(TripleSuite, VerdictTableCompileInvariant) {
  const TripleSuite suite;
  std::vector<std::unique_ptr<compile::WeightEngine>> engines;
  for (const OrderTransform& a : suite.algs)
    engines.push_back(std::make_unique<compile::WeightEngine>(a));

  for (std::size_t i = 0; i < 60; ++i) {
    std::vector<std::string> boxed, flat;
    suite.run_triple(i, boxed, nullptr);
    suite.run_triple(i, flat, engines[i % suite.algs.size()].get());
    EXPECT_EQ(boxed, flat) << "triple " << i;
  }
}

// --- Negative controls ----------------------------------------------------

// BAD GADGET diverges under the default schedule and every adversary, and
// the certificate must report that divergence (never a bound claim: the
// gadget algebra is not even nondecreasing).
TEST(NegativeControl, BadGadgetDivergesUnderEverySchedule) {
  const Scenario sc = bad_gadget();
  const ConvergenceProfile prof = convergence_profile(sc.alg);
  ASSERT_EQ(prof.increasing, Tri::False);
  ASSERT_TRUE(prof.exhaustive);

  SimOptions opts;
  opts.seed = 5;
  opts.max_events = 20'000;
  opts.drop_top_routes = true;

  std::vector<ScheduleSpec> specs{ScheduleSpec{}};
  for (ScheduleSpec& s : adv::builtin_adversaries(0xBAD)) specs.push_back(s);
  for (const ScheduleSpec& spec : specs) {
    const ConvergenceCertificate cert =
        adv::certify(sc.alg, sc.net, sc.dest, sc.origin, spec, opts, &prof);
    EXPECT_FALSE(cert.converged) << spec.describe();
    EXPECT_EQ(cert.verdict, Verdict::Diverged) << spec.describe();
    EXPECT_EQ(cert.bound, -1) << spec.describe();
    // Divergence burns far more generations than the (inapplicable) bound
    // would ever allow — the control shows the rounds metric has teeth.
    EXPECT_GT(cert.rounds, adv::dg_bound(cert.nodes)) << spec.describe();
  }
}

// A non-monotone lex product: gadget ⋉ hop-count. The gadget component
// dominates the lexicographic preference, so the 3-ring preference cycle
// survives the product and the certificate must report divergence — a
// guard against the certificate machinery "accidentally" blessing products
// whose first component is broken.
TEST(NegativeControl, NonMonotoneLexProductDiverges) {
  const Scenario g = bad_gadget();
  const OrderTransform alg = lex(gadget_algebra(), ot_hop_count());
  const ConvergenceProfile prof = convergence_profile(alg);
  EXPECT_NE(prof.increasing, Tri::True);

  // Re-label the gadget ring with (gadget label, hop label) pairs.
  ValueVec labels;
  for (int a = 0; a < g.net.graph().num_arcs(); ++a)
    labels.push_back(Value::pair(g.net.label(a), I(1)));
  const LabeledGraph net(Digraph(g.net.graph()), std::move(labels));

  SimOptions opts;
  opts.seed = 11;
  opts.max_events = 20'000;
  opts.drop_top_routes = true;

  ScheduleSpec reorder = adv::builtin_adversaries(3)[0];
  for (const ScheduleSpec& spec : {ScheduleSpec{}, reorder}) {
    const ConvergenceCertificate cert = adv::certify(
        alg, net, g.dest, Value::pair(g.origin, I(0)), spec, opts, &prof);
    EXPECT_FALSE(cert.converged) << spec.describe();
    EXPECT_EQ(cert.verdict, Verdict::Diverged) << spec.describe();
    EXPECT_EQ(cert.bound, -1) << spec.describe();
  }
}

// --- Adversary behaviour --------------------------------------------------

TEST(Adversary, ReorderingDiscardsStaleAndCounts) {
  Rng rng(0xCAFE);
  const Scenario sc = random_scenario(ot_chain_add(6, 1, 3), I(0), rng, 9, 8);
  ScheduleSpec spec = adv::builtin_adversaries(0xAB)[0];  // Reorder
  long reordered = 0, stale = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SimOptions opts;
    opts.seed = seed;
    const std::unique_ptr<Scheduler> sched = adv::make_scheduler(spec);
    PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
    sim.set_scheduler(sched.get());
    const SimResult res = sim.run();
    EXPECT_TRUE(res.converged);
    const adv::AdvCounters* c = adv::adv_counters(*sched);
    ASSERT_NE(c, nullptr);
    reordered += c->reordered;
    stale += res.stats.stale_discarded;
    // Conservation identity with stale discards counted inside deliveries.
    EXPECT_EQ(res.stats.messages_sent,
              res.stats.deliveries + res.stats.dropped_dead_arc +
                  res.stats.dropped_injected_loss + res.stats.in_flight_at_end);
  }
  EXPECT_GT(reordered, 0);
  EXPECT_GT(stale, 0);
}

TEST(Adversary, HeavyTailStretchesCount) {
  Rng rng(0xD00D);
  const Scenario sc = random_scenario(ot_chain_add(6, 1, 3), I(0), rng, 8, 6);
  long stretched = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SimOptions opts;
    opts.seed = seed;
    ScheduleSpec spec = adv::builtin_adversaries(seed)[1];  // HeavyTail
    const std::unique_ptr<Scheduler> sched = adv::make_scheduler(spec);
    PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
    sim.set_scheduler(sched.get());
    const SimResult res = sim.run();
    EXPECT_TRUE(res.converged);
    const adv::AdvCounters* c = adv::adv_counters(*sched);
    ASSERT_NE(c, nullptr);
    stretched += c->stretched;
  }
  EXPECT_GT(stretched, 0);
}

// Starvation only bites on *re*-advertisement over an arc the receiver
// already selected — a cleanly-converging monotone run has none (the express
// lane delivers candidates in best-first order, so first selections are
// final). Route churn is what arms the inversion: an oscillating gadget, or
// a link flap forcing withdrawal + reconvergence.
TEST(Adversary, StarveCountsUnderChurn) {
  {
    const Scenario sc = bad_gadget();
    SimOptions opts;
    opts.seed = 1;
    opts.max_events = 4000;
    opts.drop_top_routes = true;
    ScheduleSpec spec = adv::builtin_adversaries(1)[2];  // Starve
    const std::unique_ptr<Scheduler> sched = adv::make_scheduler(spec);
    PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
    sim.set_scheduler(sched.get());
    (void)sim.run();
    const adv::AdvCounters* c = adv::adv_counters(*sched);
    ASSERT_NE(c, nullptr);
    EXPECT_GT(c->starved, 0);
  }
  {
    Rng rng(0xD00D);
    const Scenario sc = random_scenario(ot_chain_add(6, 1, 3), I(0), rng, 8, 6);
    SimOptions opts;
    opts.seed = 2;
    ScheduleSpec spec = adv::builtin_adversaries(2)[2];  // Starve
    const std::unique_ptr<Scheduler> sched = adv::make_scheduler(spec);
    PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
    sim.set_scheduler(sched.get());
    sim.schedule_link_down(2.0, 0);
    sim.schedule_link_up(9.0, 0);
    const SimResult res = sim.run();
    EXPECT_TRUE(res.converged);
    const adv::AdvCounters* c = adv::adv_counters(*sched);
    ASSERT_NE(c, nullptr);
    EXPECT_GT(c->starved, 0);
  }
}

TEST(Adversary, JournalRecordsScheduleEvents) {
  const bool was = obs::journal_enabled();
  obs::set_journal_enabled(true);
  obs::journal().reset();

  Rng rng(0xFEED);
  const Scenario sc = random_scenario(ot_chain_add(6, 1, 3), I(0), rng, 9, 8);
  SimOptions opts;
  opts.seed = 3;

  auto run_with = [&](const ScheduleSpec& spec) {
    const std::unique_ptr<Scheduler> sched = adv::make_scheduler(spec);
    PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
    sim.set_scheduler(sched.get());
    (void)sim.run();
    std::string log;
    for (const obs::JournalRecord& r : obs::journal().drain())
      log += r.describe() + "\n";
    return log;
  };

  std::string reorder_log;
  for (std::uint64_t seed = 1; seed <= 6 && reorder_log.empty(); ++seed) {
    opts.seed = seed;
    const std::string log = run_with(adv::builtin_adversaries(seed)[0]);
    if (log.find("sched_reorder") != std::string::npos &&
        log.find("stale_drop") != std::string::npos)
      reorder_log = log;
  }
  EXPECT_FALSE(reorder_log.empty())
      << "no seed produced both sched_reorder and stale_drop records";

  // Starvation needs churn (see StarveCountsUnderChurn): record it on the
  // oscillating gadget rather than a cleanly-converging chain.
  {
    const Scenario bg = bad_gadget();
    SimOptions bopts;
    bopts.seed = 3;
    bopts.max_events = 4000;
    bopts.drop_top_routes = true;
    const std::unique_ptr<Scheduler> sched =
        adv::make_scheduler(adv::builtin_adversaries(3)[2]);
    PathVectorSim sim(bg.alg, bg.net, bg.dest, bg.origin, bopts);
    sim.set_scheduler(sched.get());
    (void)sim.run();
    std::string starve_log;
    for (const obs::JournalRecord& r : obs::journal().drain())
      starve_log += r.describe() + "\n";
    EXPECT_NE(starve_log.find("sched_starve"), std::string::npos);
  }

  obs::journal().reset();
  obs::set_journal_enabled(was);
}

// --- Pessimal search and the shrinker -------------------------------------

TEST(Pessimal, SearchRespectsBudgetAndNeverImproves) {
  Rng rng(0x9E55);
  const Scenario sc = random_scenario(ot_chain_add(6, 1, 3), I(0), rng, 7, 5);
  const ConvergenceProfile prof = convergence_profile(sc.alg);
  ASSERT_EQ(prof.increasing, Tri::True);
  ASSERT_TRUE(prof.exhaustive);

  SimOptions opts;
  opts.seed = 21;
  ScheduleSpec unit;
  unit.kind = SchedulerKind::ArcScaled;
  unit.seed = opts.seed;
  unit.arc_scale.assign(
      static_cast<std::size_t>(sc.net.graph().num_arcs()), 1.0);
  const ConvergenceCertificate start =
      adv::certify(sc.alg, sc.net, sc.dest, sc.origin, unit, opts, &prof);

  const adv::PessimalResult worst = adv::pessimal_search(
      sc.alg, sc.net, sc.dest, sc.origin, opts, /*budget=*/24, &prof);
  EXPECT_LE(worst.evaluated, 24);
  EXPECT_GE(worst.evaluated, 1);
  EXPECT_EQ(worst.spec.kind, SchedulerKind::ArcScaled);
  // Greedy ascent keeps only regressions-for-the-protocol; it can never end
  // below its own starting point — and the theorem caps how bad it can get.
  EXPECT_GE(worst.cert.rounds, start.rounds);
  EXPECT_TRUE(worst.cert.converged);
  EXPECT_EQ(worst.cert.verdict, Verdict::WithinBound) << worst.cert.describe();
}

TEST(Shrinker, FailingScheduleReducesToMinimalPrefixWithSameVerdict) {
  const Scenario sc = bad_gadget();
  const ConvergenceProfile prof = convergence_profile(sc.alg);
  SimOptions opts;
  opts.seed = 7;
  opts.max_events = 8'000;
  opts.drop_top_routes = true;

  ScheduleSpec spec = adv::builtin_adversaries(0x51)[0];  // Reorder
  const ConvergenceCertificate full =
      adv::certify(sc.alg, sc.net, sc.dest, sc.origin, spec, opts, &prof);
  ASSERT_EQ(full.verdict, Verdict::Diverged);

  const ScheduleSpec shrunk = adv::shrink_schedule(
      sc.alg, sc.net, sc.dest, sc.origin, spec, opts, &prof);
  ASSERT_GE(shrunk.prefix, 0);
  EXPECT_LE(shrunk.prefix, full.messages);

  // Replaying the shrunk spec reproduces the exact verdict...
  const ConvergenceCertificate replay =
      adv::certify(sc.alg, sc.net, sc.dest, sc.origin, shrunk, opts, &prof);
  EXPECT_EQ(replay.verdict, full.verdict);
  // ...and the prefix is 1-minimal: one send fewer no longer fails.
  if (shrunk.prefix > 0) {
    ScheduleSpec smaller = shrunk;
    smaller.prefix = shrunk.prefix - 1;
    const ConvergenceCertificate under =
        adv::certify(sc.alg, sc.net, sc.dest, sc.origin, smaller, opts, &prof);
    EXPECT_NE(under.verdict, full.verdict);
  }
  // BAD GADGET diverges even under pure FIFO (prefix 0): the shrinker must
  // discover that the failure is schedule-independent.
  EXPECT_EQ(shrunk.prefix, 0);
}

TEST(Shrinker, PassingScheduleIsReturnedUnchanged) {
  Rng rng(0x600D);
  const Scenario sc = random_scenario(ot_chain_add(5, 1, 2), I(0), rng, 6, 4);
  SimOptions opts;
  opts.seed = 13;
  const ScheduleSpec spec = adv::builtin_adversaries(2)[1];  // HeavyTail
  const ScheduleSpec out = adv::shrink_schedule(
      sc.alg, sc.net, sc.dest, sc.origin, spec, opts);
  EXPECT_EQ(out.prefix, spec.prefix);
  EXPECT_EQ(out.kind, spec.kind);
}

// --- Certificates as data -------------------------------------------------

TEST(Certificate, JsonExportCarriesTheVerdict) {
  Rng rng(0x7AB);
  const Scenario sc = random_scenario(ot_chain_add(6, 1, 3), I(0), rng, 6, 4);
  SimOptions opts;
  opts.seed = 2;
  const ConvergenceCertificate cert = adv::certify(
      sc.alg, sc.net, sc.dest, sc.origin, adv::builtin_adversaries(4)[0], opts);
  std::ostringstream os;
  cert.write_json(os);
  const std::string json = os.str();
  for (const char* key :
       {"\"verdict\"", "\"schedule\"", "\"rounds\"", "\"bound\"",
        "\"profile\"", "\"stale_discarded\"", "\"converged\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  EXPECT_NE(json.find("within_bound"), std::string::npos) << json;
  EXPECT_FALSE(cert.describe().empty());
}

// --- The zero-duration flap regression ------------------------------------

TEST(FaultRegression, ZeroDurationFlapIsANoOp) {
  Rng rng(0xF1A9);
  const Scenario sc = random_scenario(ot_chain_add(6, 1, 3), I(0), rng, 8, 6);
  SimOptions opts;
  opts.seed = 31;

  PathVectorSim clean(sc.alg, sc.net, sc.dest, sc.origin, opts);
  const SimResult base = clean.run();

  chaos::FaultPlan plan;
  chaos::Fault f;
  f.kind = chaos::Fault::Kind::LinkFlap;
  f.arc = 0;
  f.at = 1.0;
  f.duration = 0.0;  // the degenerate same-timestamp down/up pair
  plan.faults.push_back(f);

  PathVectorSim flapped(sc.alg, sc.net, sc.dest, sc.origin, opts);
  plan.apply(flapped);
  const SimResult res = flapped.run();

  EXPECT_EQ(res.stats.link_down_events, 0);
  EXPECT_EQ(res.stats.link_up_events, 0);
  EXPECT_EQ(base.events, res.events);
  EXPECT_EQ(base.finish_time, res.finish_time);  // byte-identical schedule
  EXPECT_EQ(base.rounds, res.rounds);
}

TEST(FaultRegression, RandomPlansNeverDrawZeroDurations) {
  Rng rng(0xD0C);
  const Scenario sc = random_scenario(ot_chain_add(6, 1, 3), I(0), rng, 8, 6);
  chaos::FaultPlanConfig cfg;
  cfg.min_faults = 4;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const chaos::FaultPlan plan =
        chaos::random_fault_plan(seed, sc.net, sc.dest, cfg);
    for (const chaos::Fault& f : plan.faults)
      EXPECT_GT(f.duration, 0.0) << plan.describe();
  }
}

// --- The campaign's schedule axis -----------------------------------------

chaos::CampaignScenario increasing_scenario() {
  Rng rng(0x1C4A);
  Scenario sc = random_scenario(ot_chain_add(6, 1, 3), I(0), rng, 8, 6);
  chaos::CampaignScenario c;
  c.name = "adv_increasing_chain";
  c.alg = sc.alg;
  c.net = sc.net;
  c.dest = sc.dest;
  c.origin = sc.origin;
  c.sim.drop_top_routes = true;
  return c;
}

TEST(Campaign, ScheduleAxisAggregatesBounds) {
  chaos::CampaignScenario c = increasing_scenario();
  c.schedule = adv::builtin_adversaries(0xA11)[0];  // Reorder, every run
  c.faults.max_faults = 0;  // fault-free: the bound applies to every run

  chaos::CampaignConfig cfg;
  cfg.seed = 0xADC0;
  cfg.runs_per_scenario = 120;
  const chaos::CampaignReport rep = chaos::run_campaign({c}, cfg);
  ASSERT_EQ(rep.scenarios.size(), 1u);
  const chaos::ScenarioOutcome& s = rep.scenarios[0];
  EXPECT_TRUE(s.pass()) << (s.failures.empty() ? "" : s.failures[0].detail);
  EXPECT_EQ(s.runs, 120);
  EXPECT_EQ(s.converged, 120);
  EXPECT_EQ(s.bound_applicable, 120);
  EXPECT_EQ(s.bound_violations, 0);
  EXPECT_GT(s.max_rounds, 0);
  EXPECT_LE(s.max_rounds, adv::dg_bound(c.net.num_nodes()));

  std::ostringstream json;
  rep.write_json(json);
  EXPECT_NE(json.str().find("\"bound_applicable\""), std::string::npos);
  EXPECT_NE(json.str().find("\"bound_violations\""), std::string::npos);
}

TEST(Campaign, ScheduleAxisThreadInvariant) {
  chaos::CampaignScenario c = increasing_scenario();
  c.schedule = adv::builtin_adversaries(0xA12)[2];  // Starve
  chaos::CampaignConfig cfg;
  cfg.seed = 0xADC1;
  cfg.runs_per_scenario = 80;

  const int hw = par::thread_limit();
  auto run = [&] {
    const chaos::CampaignReport rep = chaos::run_campaign({c}, cfg);
    std::ostringstream json;
    rep.write_json(json);
    return rep.verdict_table() + "\n" + json.str();
  };
  par::set_thread_limit(1);
  const std::string sequential = run();
  par::set_thread_limit(hw > 1 ? hw : 4);
  const std::string parallel = run();
  par::set_thread_limit(hw);
  EXPECT_EQ(sequential, parallel);
}

TEST(Campaign, BadGadgetDivergesUnderAdversarialSchedule) {
  const Scenario sc = bad_gadget();
  chaos::CampaignScenario c;
  c.name = "bad_gadget_reorder";
  c.alg = sc.alg;
  c.net = sc.net;
  c.dest = sc.dest;
  c.origin = sc.origin;
  c.sim.drop_top_routes = true;
  c.sim.max_events = 4000;
  c.schedule = adv::builtin_adversaries(0xA13)[0];  // Reorder
  c.expect_convergence = false;
  c.min_divergent = 1;

  chaos::CampaignConfig cfg;
  cfg.seed = 0xADC2;
  cfg.runs_per_scenario = 40;
  const chaos::CampaignReport rep = chaos::run_campaign({c}, cfg);
  ASSERT_EQ(rep.scenarios.size(), 1u);
  const chaos::ScenarioOutcome& s = rep.scenarios[0];
  EXPECT_TRUE(s.pass()) << (s.failures.empty() ? "" : s.failures[0].detail);
  EXPECT_GT(s.diverged, 0);
  EXPECT_EQ(s.bound_applicable, 0);  // not an increasing algebra
  EXPECT_EQ(s.bound_violations, 0);
}

}  // namespace
}  // namespace mrt
