// The convergence flight recorder (mrt::obs journal): enable gating, global
// ordering, ring overflow (newest-wins flight-recorder semantics), reset,
// concurrent producers racing a mid-run drain, describe() determinism across
// replays, and the provenance index + explain_route query layer on top.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "mrt/obs/provenance.hpp"
#include "mrt/sim/scenario.hpp"

namespace mrt {
namespace {

using obs::EventKind;
using obs::Subsystem;

// Every test runs against the process-global journal, so each one starts
// from a clean enabled window and restores the previous enable state.
class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_ = obs::journal_enabled();
    obs::set_journal_enabled(true);
    obs::journal().reset();
  }
  void TearDown() override {
    obs::journal().set_capacity(obs::Journal::kDefaultCapacity);
    obs::journal().reset();
    obs::set_journal_enabled(was_);
  }
  bool was_ = false;
};

TEST_F(JournalTest, DisabledRecordsNothing) {
  obs::set_journal_enabled(false);
  EXPECT_FALSE(obs::journal_enabled());
  obs::jrecord(Subsystem::Dyn, EventKind::SolveBegin, 1, 0, -1);
  EXPECT_EQ(obs::journal().recorded(), 0u);
  EXPECT_TRUE(obs::journal().drain().empty());

  obs::set_journal_enabled(true);
  obs::jrecord(Subsystem::Dyn, EventKind::SolveBegin, 1, 0, -1);
  EXPECT_EQ(obs::journal().recorded(), 1u);
}

TEST_F(JournalTest, RecordsCarryFieldsInGlobalOrder) {
  obs::jrecord(Subsystem::Dyn, EventKind::WitnessAttach, 7, 3, 12, -5, 4);
  obs::jrecord(Subsystem::Sim, EventKind::MsgSend, 8, 1, 2, 1, 0, 1500);
  const auto log = obs::journal().drain();
  ASSERT_EQ(log.size(), 2u);

  EXPECT_EQ(log[0].seq, 1u);
  EXPECT_EQ(log[0].subsystem, Subsystem::Dyn);
  EXPECT_EQ(log[0].kind, EventKind::WitnessAttach);
  EXPECT_EQ(log[0].stream, 7u);
  EXPECT_EQ(log[0].node, 3);
  EXPECT_EQ(log[0].arc, 12);
  EXPECT_EQ(log[0].aux, -5);
  EXPECT_EQ(log[0].version, 4u);

  EXPECT_EQ(log[1].seq, 2u);
  EXPECT_EQ(log[1].subsystem, Subsystem::Sim);
  EXPECT_EQ(log[1].sim_us, 1500u);

  // Drain clears the rings but not the acceptance counter.
  EXPECT_TRUE(obs::journal().drain().empty());
  EXPECT_EQ(obs::journal().recorded(), 2u);
}

TEST_F(JournalTest, SnapshotDoesNotConsume) {
  obs::jrecord(Subsystem::Dyn, EventKind::RelaxWave, 1, -1, -1, 3);
  EXPECT_EQ(obs::journal().snapshot().size(), 1u);
  EXPECT_EQ(obs::journal().snapshot().size(), 1u);
  EXPECT_EQ(obs::journal().drain().size(), 1u);
  EXPECT_TRUE(obs::journal().snapshot().empty());
}

TEST_F(JournalTest, OverflowKeepsNewestAndCountsDrops) {
  obs::journal().set_capacity(8);
  obs::journal().reset();
  for (int i = 0; i < 20; ++i) {
    obs::jrecord(Subsystem::Dyn, EventKind::RelaxSettle, 1, i, -1, i);
  }
  const auto log = obs::journal().drain();
  ASSERT_EQ(log.size(), 8u);
  EXPECT_EQ(obs::journal().dropped(), 12u);
  EXPECT_EQ(obs::journal().recorded(), 20u);
  // Flight-recorder semantics: the 8 *newest* records survive, in order.
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].aux, static_cast<std::int64_t>(12 + i));
    if (i > 0) EXPECT_LT(log[i - 1].seq, log[i].seq);
  }
}

TEST_F(JournalTest, ResetRestartsSequenceStreamsAndDrops) {
  obs::journal().set_capacity(4);
  obs::journal().reset();
  (void)obs::journal_next_stream();
  for (int i = 0; i < 9; ++i) {
    obs::jrecord(Subsystem::Dyn, EventKind::RelaxWave, 1, -1, -1, i);
  }
  EXPECT_GT(obs::journal().dropped(), 0u);

  obs::journal().set_capacity(obs::Journal::kDefaultCapacity);
  obs::journal().reset();
  EXPECT_EQ(obs::journal().dropped(), 0u);
  EXPECT_EQ(obs::journal().recorded(), 0u);
  EXPECT_TRUE(obs::journal().snapshot().empty());
  // Both the seq counter and the stream numbering restart with the window.
  EXPECT_EQ(obs::journal_next_stream(), 1u);
  obs::jrecord(Subsystem::Dyn, EventKind::SolveBegin, 1, 0, -1);
  EXPECT_EQ(obs::journal().drain().at(0).seq, 1u);
}

// The TSan target: producers on several threads appending while the main
// thread drains mid-run. Nothing may be lost or duplicated (rings are big
// enough that overflow cannot occur).
TEST_F(JournalTest, ConcurrentProducersSurviveMidRunDrains) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<obs::JournalRecord> all;
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([t] {
      const std::uint32_t stream = static_cast<std::uint32_t>(100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        obs::jrecord(Subsystem::Sim, EventKind::MsgDeliver, stream, t, i, i);
      }
    });
  }
  // Drain concurrently with the producers, accumulating what we get.
  for (int spins = 0; spins < 50; ++spins) {
    const auto part = obs::journal().drain();
    all.insert(all.end(), part.begin(), part.end());
  }
  for (auto& th : producers) th.join();
  const auto rest = obs::journal().drain();
  all.insert(all.end(), rest.begin(), rest.end());

  EXPECT_EQ(obs::journal().dropped(), 0u);
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  std::set<std::uint64_t> seqs;
  std::vector<int> per_stream(kThreads, 0);
  for (const obs::JournalRecord& r : all) {
    EXPECT_TRUE(seqs.insert(r.seq).second) << "duplicate seq " << r.seq;
    ASSERT_GE(r.stream, 100u);
    ASSERT_LT(r.stream, 100u + kThreads);
    ++per_stream[r.stream - 100];
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_stream[t], kPerThread);
}

// A deterministic solve/update replayed after reset() renders identical
// describe() lines — the property the chaos journal-replay test builds on.
// describe() excludes wall-clock time and reset() restarts stream numbering
// precisely to make this hold.
TEST_F(JournalTest, DescribeIsDeterministicAcrossReplays) {
  const auto run = [] {
    obs::journal().reset();
    Scenario sc = good_gadget_hops();
    auto solver = dyn::make_solver(dyn::EngineKind::Dijkstra, sc.alg);
    solver->solve(sc.net, sc.dest, sc.origin);
    dyn::TopologyDelta d;
    d.arc_down(0);
    solver->update(d);
    std::string out;
    for (const obs::JournalRecord& r : obs::journal().drain()) {
      out += r.describe();
      out += '\n';
    }
    return out;
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------------
// Provenance index + explain_route
// ---------------------------------------------------------------------------

TEST_F(JournalTest, ProvenanceIndexLastWinsPerStream) {
  obs::jrecord(Subsystem::Dyn, EventKind::WitnessAttach, 1, 5, 10, 0, 0);
  obs::jrecord(Subsystem::Dyn, EventKind::DeltaArc, 1, 2, 7, 0, 1);
  obs::jrecord(Subsystem::Dyn, EventKind::DeltaNodeDown, 1, 4, -1, 0, 1);
  obs::jrecord(Subsystem::Dyn, EventKind::WitnessInvalidate, 1, 5, 10, 0, 1);
  obs::jrecord(Subsystem::Dyn, EventKind::WitnessAttach, 1, 5, 11, 0, 1);
  obs::jrecord(Subsystem::Dyn, EventKind::WitnessAttach, 2, 5, 12, 0, 3);
  obs::jrecord(Subsystem::Dyn, EventKind::WitnessClear, 1, 6, -1, 0, 1);
  const obs::ProvenanceIndex idx(obs::journal().drain());

  const obs::JournalRecord* a = idx.last_attach(1, 5);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->arc, 11);  // later attach wins
  EXPECT_EQ(a->version, 1u);
  ASSERT_NE(idx.last_attach(2, 5), nullptr);
  EXPECT_EQ(idx.last_attach(2, 5)->arc, 12);  // streams are independent
  EXPECT_EQ(idx.last_attach(1, 99), nullptr);
  EXPECT_EQ(idx.last_attach(3, 5), nullptr);

  ASSERT_NE(idx.last_invalidate(1, 5), nullptr);
  EXPECT_EQ(idx.last_invalidate(1, 5)->arc, 10);
  ASSERT_NE(idx.last_clear(1, 6), nullptr);

  const auto ops = idx.delta_records(1, 1);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0]->kind, EventKind::DeltaArc);
  EXPECT_EQ(ops[0]->arc, 7);
  EXPECT_EQ(ops[1]->kind, EventKind::DeltaNodeDown);
  EXPECT_TRUE(idx.delta_records(1, 2).empty());
  EXPECT_TRUE(idx.delta_records(2, 1).empty());
}

TEST_F(JournalTest, ExplainRouteMatchesWitnessForest) {
  Scenario sc = good_gadget_hops();
  auto solver = dyn::make_solver(dyn::EngineKind::Dijkstra, sc.alg);
  solver->solve(sc.net, sc.dest, sc.origin);
  dyn::TopologyDelta d;
  d.arc_down(solver->routing().next_arc[1]);
  solver->update(d);

  const obs::ProvenanceIndex idx(obs::journal().snapshot());
  const Routing& r = solver->routing();
  for (int v = 0; v < sc.net.num_nodes(); ++v) {
    const obs::ExplainReport rep = obs::explain_route(*solver, v, idx);
    EXPECT_EQ(rep.node, v);
    EXPECT_EQ(rep.dest, sc.dest);
    EXPECT_EQ(rep.stream, solver->journal_stream());
    ASSERT_EQ(rep.has_route, r.has_route(v));
    EXPECT_FALSE(rep.loop);
    if (!rep.has_route) continue;
    const auto fp = forwarding_path(sc.net, r, v, sc.dest);
    ASSERT_TRUE(fp.has_value());
    ASSERT_EQ(rep.hops.size(), fp->size());
    for (std::size_t i = 0; i < rep.hops.size(); ++i) {
      const obs::ExplainHop& h = rep.hops[i];
      EXPECT_EQ(h.node, (*fp)[i]);
      EXPECT_EQ(h.arc, r.next_arc[static_cast<std::size_t>(h.node)]);
      // The settling attach record must name the live witness arc.
      const obs::JournalRecord* a =
          idx.last_attach(solver->journal_stream(), h.node);
      ASSERT_NE(a, nullptr);
      EXPECT_EQ(a->arc, h.arc);
      EXPECT_EQ(h.settled_seq, a->seq);
      EXPECT_FALSE(h.cause.empty());
    }
    // The re-routed node settled at v1 with the delta as its cause; the
    // destination still carries its cold-solve attach.
    if (v == sc.dest) {
      EXPECT_EQ(rep.hops[0].settled_version, 0u);
      EXPECT_EQ(rep.hops[0].cause, "initial solve");
    }
  }
}

TEST_F(JournalTest, ExplainRouteReportsNoRouteCause) {
  Scenario sc = good_gadget_hops();
  auto solver = dyn::make_solver(dyn::EngineKind::Dijkstra, sc.alg);
  solver->solve(sc.net, sc.dest, sc.origin);
  // Crash a non-destination node: its route clears and stays clear.
  const int victim = (sc.dest + 1) % sc.net.num_nodes();
  dyn::TopologyDelta d;
  d.node_down(victim);
  solver->update(d);

  const obs::ProvenanceIndex idx(obs::journal().snapshot());
  const obs::ExplainReport rep = obs::explain_route(*solver, victim, idx);
  EXPECT_FALSE(rep.has_route);
  EXPECT_TRUE(rep.hops.empty());
  ASSERT_FALSE(rep.no_route_cause.empty());
  // The cause names the crash delta, not a generic shrug.
  EXPECT_NE(rep.no_route_cause.find("delta_node_down"), std::string::npos)
      << rep.no_route_cause;
  EXPECT_FALSE(rep.to_string().empty());
}

// With the journal disabled during the solve, explain still walks the live
// forest (read from the solver) — only the causal decoration is missing.
TEST_F(JournalTest, ExplainWithoutJournalStillWalksForest) {
  obs::set_journal_enabled(false);
  Scenario sc = good_gadget_hops();
  auto solver = dyn::make_solver(dyn::EngineKind::Dijkstra, sc.alg);
  solver->solve(sc.net, sc.dest, sc.origin);

  const obs::ProvenanceIndex idx(obs::journal().snapshot());
  for (int v = 0; v < sc.net.num_nodes(); ++v) {
    const obs::ExplainReport rep = obs::explain_route(*solver, v, idx);
    EXPECT_EQ(rep.has_route, solver->routing().has_route(v));
    for (const obs::ExplainHop& h : rep.hops) {
      EXPECT_EQ(h.settled_seq, 0u);
      EXPECT_TRUE(h.cause.empty());
    }
  }
}

}  // namespace
}  // namespace mrt
