// Lexicographic products of the primitive components: the section IV.A case
// analysis, Theorem 2 (definedness and n-ary structure), Theorem 3 (natural
// orders commute with the product), and the Szendrei ⃗×_ω variant.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/core/bases.hpp"
#include "mrt/core/checker.hpp"
#include "mrt/core/lex.hpp"
#include "mrt/core/random_algebra.hpp"
#include "mrt/core/translations.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

Value P(Value a, Value b) { return Value::pair(std::move(a), std::move(b)); }

// ---------------------------------------------------------------------------
// The four defining cases of the lex semigroup product
// ---------------------------------------------------------------------------

TEST(LexSemigroup, FirstComponentStrictlyWins) {
  auto l = lex_semigroup(sg_min(), sg_min());
  // s1 < s2: take the left pair wholesale.
  EXPECT_EQ(l->op(P(I(1), I(9)), P(I(2), I(0))), P(I(1), I(9)));
  // s2 < s1: take the right pair.
  EXPECT_EQ(l->op(P(I(5), I(0)), P(I(3), I(7))), P(I(3), I(7)));
}

TEST(LexSemigroup, TieFallsToSecondComponent) {
  auto l = lex_semigroup(sg_min(), sg_min());
  EXPECT_EQ(l->op(P(I(4), I(9)), P(I(4), I(2))), P(I(4), I(2)));
}

TEST(LexSemigroup, FourthCaseUsesIdentityOfT) {
  // S = union_bits (not selective): 01 ⊕ 10 = 00, a third element; the T
  // component must become α_T = ∞ for min.
  auto l = lex_semigroup(sg_inter_bits(2), sg_min());
  EXPECT_EQ(l->op(P(I(0b01), I(3)), P(I(0b10), I(4))),
            P(I(0b00), Value::inf()));
}

TEST(LexSemigroup, FourthCaseWithoutIdentityThrows) {
  // T = plain-N min has no identity: the product is undefined exactly there.
  auto l = lex_semigroup(sg_inter_bits(2), sg_min(false));
  EXPECT_EQ(l->op(P(I(0b01), I(3)), P(I(0b01), I(4))), P(I(0b01), I(3)));
  EXPECT_THROW(l->op(P(I(0b01), I(3)), P(I(0b10), I(4))), std::logic_error);
}

TEST(LexSemigroup, SelectiveFirstFactorNeverNeedsIdentity) {
  // S selective: the fourth case cannot occur, so T may lack an identity.
  auto l = lex_semigroup(sg_min(), sg_min(false));
  auto all_ok = [&](Value a, Value b) { return l->op(a, b); };
  EXPECT_EQ(all_ok(P(I(1), I(5)), P(I(2), I(6))), P(I(1), I(5)));
  EXPECT_EQ(all_ok(P(I(2), I(5)), P(I(2), I(3))), P(I(2), I(3)));
}

TEST(LexSemigroup, IdentityAndAbsorberAreComponentwise) {
  auto l = lex_semigroup(sg_min(), sg_min());
  EXPECT_EQ(*l->identity(), P(Value::inf(), Value::inf()));
  EXPECT_EQ(*l->absorber(), P(I(0), I(0)));
  auto l2 = lex_semigroup(sg_min(false), sg_min());
  EXPECT_FALSE(l2->identity().has_value());
}

TEST(LexSemigroup, PaperFormulaMatchesCaseAnalysis) {
  // (s, [s = s1]t1 ⊕ [s = s2]t2) checked against the case table on an
  // exhaustively enumerated finite instance.
  auto s = sg_chain_min(2);
  auto t = sg_chain_min(2);
  auto l = lex_semigroup(s, t);
  const ValueVec elems = *l->enumerate();
  for (const Value& a : elems) {
    for (const Value& b : elems) {
      const Value sv = s->op(a.first(), b.first());
      const Value t1 = sv == a.first() ? a.second() : *t->identity();
      const Value t2 = sv == b.first() ? b.second() : *t->identity();
      EXPECT_EQ(l->op(a, b), P(sv, t->op(t1, t2)));
    }
  }
}

// ---------------------------------------------------------------------------
// Theorem 2: n-ary products, preservation of comm/idem, associativity of ⃗×
// ---------------------------------------------------------------------------

TEST(Thm2, ProductOfCommIdemIsCommIdemAssoc) {
  Checker chk;
  Rng rng(20250705);
  for (int trial = 0; trial < 10; ++trial) {
    auto s = random_chain_semilattice(rng, 3);   // selective
    auto m = random_semilattice(rng, 2, false);  // free middle factor
    auto t = random_semilattice(rng, 2, true);   // monoid
    auto p = lex_semigroup(lex_semigroup(s, m), t);
    EXPECT_EQ(chk.semigroup_prop(*p, Prop::Assoc).verdict, Tri::True);
    EXPECT_EQ(chk.semigroup_prop(*p, Prop::Comm).verdict, Tri::True);
    EXPECT_EQ(chk.semigroup_prop(*p, Prop::Idem).verdict, Tri::True);
  }
}

TEST(Thm2, OperatorIsAssociative) {
  // (S ⃗× T) ⃗× U ≅ S ⃗× (T ⃗× U): compare through the shape isomorphism.
  Rng rng(7);
  auto s = random_chain_semilattice(rng, 3);
  auto t = random_semilattice(rng, 2, true);
  auto u = random_semilattice(rng, 2, true);
  auto left_assoc = lex_semigroup(lex_semigroup(s, t), u);
  auto right_assoc = lex_semigroup(s, lex_semigroup(t, u));

  auto to_left = [](const Value& a, const Value& b, const Value& c) {
    return P(P(a, b), c);
  };
  auto to_right = [](const Value& a, const Value& b, const Value& c) {
    return P(a, P(b, c));
  };
  const ValueVec se = *s->enumerate();
  const ValueVec te = *t->enumerate();
  const ValueVec ue = *u->enumerate();
  for (const Value& a1 : se) {
    for (const Value& b1 : te) {
      for (const Value& c1 : ue) {
        for (const Value& a2 : se) {
          for (const Value& b2 : te) {
            for (const Value& c2 : ue) {
              const Value l = left_assoc->op(to_left(a1, b1, c1),
                                             to_left(a2, b2, c2));
              const Value r = right_assoc->op(to_right(a1, b1, c1),
                                              to_right(a2, b2, c2));
              // Flatten both shapes to triples and compare.
              EXPECT_EQ(l.first().first(), r.first());
              EXPECT_EQ(l.first().second(), r.second().first());
              EXPECT_EQ(l.second(), r.second().second());
            }
          }
        }
      }
    }
  }
}

TEST(Thm2, MisplacedNonSelectiveFactorBreaksDefinedness) {
  // Two non-selective non-monoid factors: the product must be undefined
  // somewhere (Theorem 2 allows only ONE free factor).
  auto free1 = sg_inter_bits(2);    // identity exists? inter has identity=full
  auto no_id = sg_min(false);       // no identity, selective though...
  // Build: S = inter_bits (NOT selective), T = plain-N min (no identity):
  auto l = lex_semigroup(free1, no_id);
  bool threw = false;
  try {
    l->op(P(I(0b01), I(1)), P(I(0b10), I(2)));
  } catch (const std::logic_error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

// ---------------------------------------------------------------------------
// Theorem 3: NO^L/R(S ⃗× T) = NO^L/R(S) ⃗× NO^L/R(T)
// ---------------------------------------------------------------------------

class Thm3Sweep : public ::testing::TestWithParam<int> {};

TEST_P(Thm3Sweep, NaturalOrdersCommuteWithLex) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  SemigroupPtr s = rng.chance(0.5) ? random_chain_semilattice(rng, 3)
                                   : random_semilattice(rng, 2, true);
  SemigroupPtr t = random_semilattice(rng, 2, true);  // monoid required
  auto product = lex_semigroup(s, t);

  for (const bool left : {true, false}) {
    auto no_of_product = natural_order(product, left);
    auto product_of_no =
        lex_preorder(natural_order(s, left), natural_order(t, left));
    const ValueVec pe = *product->enumerate();
    for (const Value& a : pe) {
      for (const Value& b : pe) {
        EXPECT_EQ(no_of_product->leq(a, b), product_of_no->leq(a, b))
            << (left ? "NO_L" : "NO_R") << " disagrees at a=" << a.to_string()
            << " b=" << b.to_string() << " with S=" << s->name()
            << " T=" << t->name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Thm3Sweep, ::testing::Range(0, 25));

// ---------------------------------------------------------------------------
// Lex preorder formula and tops
// ---------------------------------------------------------------------------

TEST(LexPreorder, Formula) {
  auto l = lex_preorder(ord_nat_leq(), ord_nat_geq());
  // First strictly better: wins regardless of second.
  EXPECT_TRUE(l->leq(P(I(1), I(0)), P(I(2), I(100))));
  // First equivalent: falls to second (bandwidth: larger preferred).
  EXPECT_TRUE(l->leq(P(I(1), I(7)), P(I(1), I(3))));
  EXPECT_FALSE(l->leq(P(I(1), I(3)), P(I(1), I(7))));
  // First strictly worse.
  EXPECT_FALSE(l->leq(P(I(3), I(100)), P(I(2), I(0))));
}

TEST(LexPreorder, IncomparabilityPropagates) {
  auto l = lex_preorder(ord_discrete(2), ord_chain(2));
  EXPECT_EQ(l->cmp(P(I(0), I(1)), P(I(1), I(0))), Cmp::Incomp);
  EXPECT_EQ(l->cmp(P(I(0), I(1)), P(I(0), I(2))), Cmp::Less);
}

TEST(LexPreorder, TopIsComponentwise) {
  auto l = lex_preorder(ord_nat_leq(), ord_nat_geq());
  EXPECT_TRUE(l->is_top(P(Value::inf(), I(0))));
  EXPECT_FALSE(l->is_top(P(Value::inf(), I(1))));
  EXPECT_TRUE(l->has_top());
  auto l2 = lex_preorder(ord_nat_leq(false), ord_nat_geq());
  EXPECT_FALSE(l2->has_top());
}

// ---------------------------------------------------------------------------
// Szendrei ⃗×_ω semigroup (section VI)
// ---------------------------------------------------------------------------

TEST(SzendreiSemigroup, CollapsesAbsorber) {
  // S = chain_plus(3) (absorber 3), T = chain_min(2) monoid.
  auto l = lex_omega_semigroup(sg_chain_plus(3), sg_chain_min(2));
  EXPECT_EQ(l->op(Value::omega(), P(I(1), I(0))), Value::omega());
  EXPECT_EQ(*l->absorber(), Value::omega());
  // min(1,2)=1 with chain-plus ⊕... chain_plus is min(n, a+b): 1 ⊕ 2 = 3 =
  // absorber → collapse.
  EXPECT_EQ(l->op(P(I(1), I(0)), P(I(2), I(1))), Value::omega());
  // Non-collapsing case behaves like the plain product.
  EXPECT_EQ(l->op(P(I(1), I(0)), P(I(1), I(1))), P(I(2), *sg_chain_min(2)->identity()));
}

TEST(SzendreiSemigroup, CarrierExcludesCollapsedPairs) {
  auto l = lex_omega_semigroup(sg_chain_plus(3), sg_chain_min(2));
  EXPECT_TRUE(l->contains(Value::omega()));
  EXPECT_TRUE(l->contains(P(I(2), I(1))));
  EXPECT_FALSE(l->contains(P(I(3), I(1))));  // first component is ω_S
  // Enumeration: 3 surviving S values × 3 T values + ω.
  EXPECT_EQ(l->enumerate()->size(), 10u);
}

TEST(SzendreiSemigroup, RequiresAbsorber) {
  EXPECT_THROW(lex_omega_semigroup(sg_plus(false), sg_chain_min(2)),
               std::logic_error);
}

}  // namespace
}  // namespace mrt
