// Section VI: the Szendrei-style ⃗×_ω products. The order-transform version
// collapses pairs whose first component is ⊤ (Sobrinho's "invalid route"),
// which (a) makes the paper's Fig. 3 rules exact even for topped first
// factors, and (b) restores usability of the saturating finite chain — whose
// N property fails only at the saturation point — as a first factor.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/inference.hpp"
#include "mrt/core/random_algebra.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

const Checker& checker() {
  static const Checker chk;
  return chk;
}

Value pr(Value a, Value b) { return Value::pair(std::move(a), std::move(b)); }

TEST(LexOmegaOt, CollapsesTopFirstComponents) {
  OrderTransform s = ot_chain_add(3, 1, 2);  // ⊤ = 3 (saturation)
  OrderTransform t = ot_chain_add(2, 0, 1);
  const OrderTransform p = lex_omega(s, t);

  // Carrier: pairs with first ≠ 3, plus ω.
  EXPECT_TRUE(p.ord->contains(pr(I(2), I(1))));
  EXPECT_FALSE(p.ord->contains(pr(I(3), I(1))));
  EXPECT_TRUE(p.ord->contains(Value::omega()));
  EXPECT_EQ(p.ord->enumerate()->size(), 10u);  // 3×3 + ω

  // ω is the unique top; ordinary pairs compare lexicographically.
  EXPECT_TRUE(p.ord->is_top(Value::omega()));
  EXPECT_TRUE(p.ord->leq(pr(I(2), I(2)), Value::omega()));
  EXPECT_FALSE(p.ord->leq(Value::omega(), pr(I(2), I(2))));
  EXPECT_TRUE(p.ord->leq(pr(I(1), I(2)), pr(I(2), I(0))));

  // Application: saturation in the first component collapses to ω.
  const Value label = pr(I(2), I(1));  // +2 on S, +1 on T
  EXPECT_EQ(p.fns->apply(label, pr(I(2), I(0))), Value::omega());
  // 1 + 2 saturates to 3 = ⊤, so that collapses too.
  EXPECT_EQ(p.fns->apply(label, pr(I(1), I(0))), Value::omega());
  EXPECT_EQ(p.fns->apply(label, pr(I(0), I(0))), pr(I(2), I(1)));
  // ω is absorbing under every function.
  EXPECT_EQ(p.fns->apply(label, Value::omega()), Value::omega());
}

TEST(LexOmegaOt, RequiresTopOnFirstFactor) {
  OrderTransform topless{"d", ord_discrete(2), fam_id(), {}};
  OrderTransform t = ot_chain_add(2, 0, 1);
  EXPECT_THROW(lex_omega(topless, t), std::logic_error);
}

// The section VI payoff: the saturating chain fails N (so a plain lex
// product with it first is non-monotone against a non-condensed T), but the
// ⃗×_ω product *is* monotone.
TEST(LexOmegaOt, RestoresMonotonicityOfSaturatingChain) {
  const Checker& chk = checker();
  OrderTransform s = ot_chain_add(3, 1, 2);
  s.props = chk.report(s);
  ASSERT_EQ(s.props.value(Prop::M_L), Tri::True);
  ASSERT_EQ(s.props.value(Prop::N_L), Tri::False);  // collision at 3

  OrderTransform t = ot_chain_add(2, 0, 1);
  t.props = chk.report(t);
  ASSERT_EQ(t.props.value(Prop::M_L), Tri::True);
  ASSERT_EQ(t.props.value(Prop::C_L), Tri::False);

  const OrderTransform plain = lex(s, t);
  EXPECT_EQ(chk.prop(plain, Prop::M_L).verdict, Tri::False);
  EXPECT_EQ(plain.props.value(Prop::M_L), Tri::False);  // Thm 4 derives it

  const OrderTransform collapsed = lex_omega(s, t);
  EXPECT_EQ(chk.prop(collapsed, Prop::M_L).verdict, Tri::True);
}

// Under ⃗×_ω the paper's Fig. 3 local-optima rules hold exactly for topped
// first factors (the pairs that broke them are collapsed away).
class LexOmegaSweep : public ::testing::TestWithParam<int> {};

TEST_P(LexOmegaSweep, PaperLocalRulesExactUnderCollapse) {
  Rng rng(0x03E6A + static_cast<std::uint64_t>(GetParam()));
  OrderTransform s = random_order_transform(rng);
  if (!s.ord->has_top()) return;
  OrderTransform t = random_order_transform(rng);
  s.props = checker().report(s);
  t.props = checker().report(t);
  // The collapse only removes the ⊤ pathology if functions do not *create*
  // strict decreases below ⊤ and fix ⊤ (the Sobrinho convention); require T
  // of S so the comparison is against the intended reading.
  if (s.props.value(Prop::TFix_L) != Tri::True) return;
  if (t.props.value(Prop::HasTop) != Tri::False) return;

  const OrderTransform p = lex_omega(s, t);
  const std::string ctx = "seed " + std::to_string(GetParam());
  mrt::testing::expect_exact(Prop::ND_L,
                             paper_rule_nd_lex(s.props, t.props),
                             checker().prop(p, Prop::ND_L).verdict,
                             ctx + " ND");
  mrt::testing::expect_exact(Prop::Inc_L,
                             paper_rule_inc_lex(s.props, t.props),
                             checker().prop(p, Prop::Inc_L).verdict,
                             ctx + " I");
}

INSTANTIATE_TEST_SUITE_P(Seeds, LexOmegaSweep, ::testing::Range(0, 150));

// Inference for ⃗×_ω is sufficient-only; it must never contradict the oracle.
class LexOmegaConsistency : public ::testing::TestWithParam<int> {};

TEST_P(LexOmegaConsistency, InferenceNeverContradictsOracle) {
  Rng rng(0xC0215 + static_cast<std::uint64_t>(GetParam()));
  OrderTransform s = random_order_transform(rng);
  if (!s.ord->has_top()) return;
  OrderTransform t = random_order_transform(rng);
  s.props = checker().report(s);
  t.props = checker().report(t);
  const OrderTransform p = lex_omega(s, t);
  for (Prop prop : props_for(StructureKind::OrderTransform)) {
    mrt::testing::expect_consistent(prop, p.props.value(prop),
                                    checker().prop(p, prop).verdict,
                                    "seed " + std::to_string(GetParam()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LexOmegaConsistency, ::testing::Range(0, 80));

// The semigroup-transform (literal-definition) ⃗×_ω: inference is
// sufficient-only there too, and must never contradict brute force.
class LexOmegaStConsistency : public ::testing::TestWithParam<int> {};

TEST_P(LexOmegaStConsistency, InferenceNeverContradictsOracle) {
  Rng rng(0x5357 + static_cast<std::uint64_t>(GetParam()));
  SemigroupTransform s = random_semigroup_transform(rng);
  if (!s.add->absorber()) return;  // the literal definition collapses at ω_⊕
  SemigroupTransform t = random_semigroup_transform(rng);
  if (!t.add->identity()) return;  // keep the underlying lex-⊕ defined
  s.props = checker().report(s);
  t.props = checker().report(t);
  const SemigroupTransform p = lex_omega(s, t);
  for (Prop prop : props_for(StructureKind::SemigroupTransform)) {
    mrt::testing::expect_consistent(prop, p.props.value(prop),
                                    checker().prop(p, prop).verdict,
                                    "seed " + std::to_string(GetParam()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LexOmegaStConsistency,
                         ::testing::Range(0, 80));

}  // namespace
}  // namespace mrt
