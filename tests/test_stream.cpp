// The delta-stream seam, end to end:
//
//   wire      — ≥1000 random batches round-trip byte-identically through the
//               framed format (every op kind, every Value carrier shape),
//               and truncated / corrupted / wrong-version frames are
//               rejected gracefully (error, never a crash or a bogus delta).
//   consume   — stream-of-N-deltas ≡ one N-op batch ≡ cold re-solve, byte
//               for byte, for ≥500 random delta sequences on both
//               dyn::Solver and rib::RibSolver, sweeping the
//               MRT_COMPILE × MRT_THREADS × MRT_SIMD toggle cube.
//   fast path — an empty TopologyDelta (and a batch whose ops only touch
//               already-dead arcs) is a no-op: version bumps, zero
//               invalidation work, routing untouched.
//   sim       — record_quiescent changes no schedule byte; SimDeltaSource
//               replays a faulted run onto a warm solver and lands exactly
//               on the end-state topology; the replay log survives the wire.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "mrt/chaos/campaign.hpp"
#include "mrt/compile/simd.hpp"
#include "mrt/dyn/solver.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/par/par.hpp"
#include "mrt/rib/rib.hpp"
#include "mrt/sim/delta_stream.hpp"
#include "mrt/sim/scenario.hpp"
#include "mrt/stream/stream.hpp"
#include "mrt/stream/wire.hpp"
#include "mrt/support/rng.hpp"

namespace mrt {
namespace {

using mrt::testing::I;
using dyn::DeltaOp;
using dyn::TopologyDelta;

// ---------------------------------------------------------------------------
// Wire-format fuzz
// ---------------------------------------------------------------------------

/// A random Value covering every carrier shape the metalanguage constructs:
/// unit, int, real, ∞, ω, (nested) tuples, tagged unions.
Value random_value(Rng& rng, int depth = 0) {
  const std::uint64_t pick = rng.below(depth >= 3 ? 5 : 7);
  switch (pick) {
    case 0:
      return Value::unit();
    case 1:
      return Value::integer(static_cast<std::int64_t>(rng.below(2'000'001)) -
                            1'000'000);
    case 2:
      return Value::real((rng.unit() - 0.5) * 1e9);
    case 3:
      return Value::inf();
    case 4:
      return Value::omega();
    case 5: {
      ValueVec kids;
      const std::uint64_t n = rng.below(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        kids.push_back(random_value(rng, depth + 1));
      }
      return Value::tuple(std::move(kids));
    }
    default:
      return Value::tagged(static_cast<int>(rng.below(16)),
                           random_value(rng, depth + 1));
  }
}

/// A random batch mixing all five op kinds (arc/node ids unconstrained —
/// the wire layer is topology-agnostic).
TopologyDelta random_wire_delta(Rng& rng) {
  TopologyDelta d;
  const std::uint64_t ops = rng.below(9);  // empty batches included
  for (std::uint64_t i = 0; i < ops; ++i) {
    const int arc = static_cast<int>(rng.below(10'000));
    const int node = static_cast<int>(rng.below(10'000));
    switch (rng.below(5)) {
      case 0:
        d.arc_down(arc);
        break;
      case 1:
        d.arc_up(arc);
        break;
      case 2:
        d.relabel(arc, random_value(rng));
        break;
      case 3:
        d.node_down(node);
        break;
      default:
        d.node_up(node);
        break;
    }
  }
  return d;
}

void expect_same_delta(const TopologyDelta& a, const TopologyDelta& b,
                       const std::string& what) {
  ASSERT_EQ(a.ops.size(), b.ops.size()) << what;
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    ASSERT_EQ(a.ops[i].kind, b.ops[i].kind) << what << " op " << i;
    ASSERT_EQ(a.ops[i].arc, b.ops[i].arc) << what << " op " << i;
    ASSERT_EQ(a.ops[i].node, b.ops[i].node) << what << " op " << i;
    ASSERT_EQ(a.ops[i].label, b.ops[i].label) << what << " op " << i;
  }
}

TEST(StreamWire, ThousandRandomBatchesRoundTripByteIdentically) {
  constexpr int kBatches = 1200;
  Rng rng(0xBEEF);  // fixed seed
  std::vector<TopologyDelta> deltas;
  deltas.reserve(kBatches);
  for (int i = 0; i < kBatches; ++i) deltas.push_back(random_wire_delta(rng));

  const std::vector<std::uint8_t> bytes = stream::encode_stream(deltas);
  const auto decoded = stream::decode_stream(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  ASSERT_EQ(decoded->size(), deltas.size());
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    expect_same_delta(deltas[i], (*decoded)[i],
                      "batch " + std::to_string(i));
  }
  // Canonical encoding: re-encoding the decoded stream reproduces the exact
  // byte sequence.
  EXPECT_EQ(stream::encode_stream(*decoded), bytes);

  // The pull-based source sees the same sequence, frame by frame.
  stream::BufferSource src(bytes);
  std::size_t n = 0;
  while (auto d = src.next()) {
    expect_same_delta(deltas[n], *d, "source batch " + std::to_string(n));
    ++n;
  }
  EXPECT_EQ(n, deltas.size());
  EXPECT_TRUE(src.error().empty());
}

TEST(StreamWire, RejectsTruncationAtEveryByte) {
  Rng rng(77);
  std::vector<TopologyDelta> deltas;
  for (int i = 0; i < 4; ++i) deltas.push_back(random_wire_delta(rng));
  const std::vector<std::uint8_t> bytes = stream::encode_stream(deltas);

  // Frame boundaries: prefixes ending exactly between frames are valid
  // (shorter) streams; every other prefix must fail, never crash.
  std::vector<std::size_t> boundaries{0};
  {
    std::size_t pos = 0;
    while (pos < bytes.size()) {
      const auto f =
          stream::decode_frame(bytes.data() + pos, bytes.size() - pos, pos);
      ASSERT_TRUE(f.ok());
      pos += f->consumed;
      boundaries.push_back(pos);
    }
  }
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + len);
    const auto r = stream::decode_stream(prefix);
    const bool at_boundary =
        std::find(boundaries.begin(), boundaries.end(), len) !=
        boundaries.end();
    if (at_boundary) {
      ASSERT_TRUE(r.ok()) << "boundary prefix " << len;
    } else {
      ASSERT_FALSE(r.ok()) << "truncated prefix " << len
                           << " decoded without error";
    }
  }
}

TEST(StreamWire, RejectsBadMagicVersionChecksumAndGarbage) {
  TopologyDelta d;
  d.arc_down(3).relabel(4, Value::pair(I(1), I(2))).node_up(5);
  std::vector<std::uint8_t> bytes;
  stream::encode_delta(d, bytes);

  {  // bad magic
    std::vector<std::uint8_t> bad = bytes;
    bad[0] ^= 0xFF;
    const auto r = stream::decode_stream(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("bad magic"), std::string::npos);
  }
  {  // unsupported version
    std::vector<std::uint8_t> bad = bytes;
    bad[4] = 0x7F;
    const auto r = stream::decode_stream(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("unsupported version"),
              std::string::npos);
  }
  {  // payload corruption caught by the checksum
    std::vector<std::uint8_t> bad = bytes;
    bad[stream::kFrameHeaderBytes + 2] ^= 0x40;
    const auto r = stream::decode_stream(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("checksum"), std::string::npos);
  }
  {  // trailing garbage after the last frame
    std::vector<std::uint8_t> bad = bytes;
    bad.push_back('X');
    EXPECT_FALSE(stream::decode_stream(bad).ok());
  }
  {  // a BufferSource surfaces the failure through error(), not a crash
    std::vector<std::uint8_t> bad = bytes;
    bad[0] ^= 0xFF;
    stream::BufferSource src(bad);
    EXPECT_FALSE(src.next().has_value());
    EXPECT_FALSE(src.error().empty());
    EXPECT_FALSE(src.next().has_value());  // stays terminated
  }
}

TEST(StreamWire, FileRoundTripAndMissingFile) {
  Rng rng(99);
  std::vector<TopologyDelta> deltas;
  for (int i = 0; i < 16; ++i) deltas.push_back(random_wire_delta(rng));
  const std::string path =
      ::testing::TempDir() + "/mrt_stream_roundtrip.bin";
  ASSERT_TRUE(stream::write_delta_file(path, deltas));
  const auto back = stream::read_delta_file(path);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  ASSERT_EQ(back->size(), deltas.size());
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    expect_same_delta(deltas[i], (*back)[i], "file batch " + std::to_string(i));
  }
  stream::FileSource src(path);
  std::size_t n = 0;
  while (src.next()) ++n;
  EXPECT_EQ(n, deltas.size());
  EXPECT_TRUE(src.error().empty());

  stream::FileSource missing("/nonexistent/mrt-no-such-file.bin");
  EXPECT_FALSE(missing.next().has_value());
  EXPECT_FALSE(missing.error().empty());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Stream ≡ batch ≡ cold (the refactor's byte-identity contract)
// ---------------------------------------------------------------------------

struct EquivInstance {
  OrderTransform ot;
  LabeledGraph net;
  int label_lo = 1;
  int label_hi = 1;
  std::string desc;
};

/// ⊗ = saturating +c: the increasing shortest-path chain (antisymmetric, so
/// the fixed point — and its canonical witness forest — is unique).
EquivInstance sat_plus_instance(Rng& rng) {
  const int n = 4 + static_cast<int>(rng.below(6));
  const int hi =
      1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n - 1)));
  Digraph g = random_connected(rng, 5 + static_cast<int>(rng.below(6)),
                               3 + static_cast<int>(rng.below(6)));
  ValueVec labels;
  for (int id = 0; id < g.num_arcs(); ++id) {
    labels.push_back(I(rng.range(1, hi)));
  }
  return EquivInstance{OrderTransform{"chain(<=,sat+)", ord_chain(n),
                                      fam_chain_add(n, 1, hi), {}},
                       LabeledGraph(std::move(g), std::move(labels)), 1, hi,
                       "sat_plus n=" + std::to_string(n)};
}

TopologyDelta random_topo_delta(Rng& rng, const EquivInstance& inst) {
  TopologyDelta d;
  const int m = inst.net.graph().num_arcs();
  const int n = inst.net.num_nodes();
  const int ops = 1 + static_cast<int>(rng.below(4));
  for (int i = 0; i < ops; ++i) {
    const int arc = static_cast<int>(rng.below(static_cast<std::uint64_t>(m)));
    const int node =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    switch (rng.below(8)) {
      case 0:
      case 1:
      case 2:
        d.arc_down(arc);
        break;
      case 3:
      case 4:
        d.arc_up(arc);
        break;
      case 5:
        d.relabel(arc, I(rng.range(inst.label_lo, inst.label_hi)));
        break;
      case 6:
        d.node_down(node);
        break;
      default:
        d.node_up(node);
        break;
    }
  }
  return d;
}

void expect_identical(const Routing& a, const Routing& b,
                      const std::string& what) {
  ASSERT_EQ(a.weight.size(), b.weight.size()) << what;
  for (std::size_t v = 0; v < a.weight.size(); ++v) {
    ASSERT_EQ(a.weight[v].has_value(), b.weight[v].has_value())
        << what << " node " << v;
    if (a.weight[v]) {
      ASSERT_EQ(*a.weight[v], *b.weight[v]) << what << " node " << v;
    }
    ASSERT_EQ(a.next_arc[v], b.next_arc[v]) << what << " node " << v;
  }
}

/// Scoped toggles over the MRT_COMPILE-companion knobs (dyn / threads /
/// simd), restored on exit.
struct ScopedToggles {
  bool dyn_before = dyn::enabled();
  int threads_before = par::thread_limit();
  bool simd_before = compile::simd::enabled();
  ScopedToggles(bool dyn_on, int threads, bool simd_on) {
    dyn::set_enabled(dyn_on);
    par::set_thread_limit(threads);
    compile::simd::set_enabled(simd_on);
  }
  ~ScopedToggles() {
    dyn::set_enabled(dyn_before);
    par::set_thread_limit(threads_before);
    compile::simd::set_enabled(simd_before);
  }
};

TopologyDelta concat(const std::vector<TopologyDelta>& seq) {
  TopologyDelta all;
  for (const TopologyDelta& d : seq) {
    all.ops.insert(all.ops.end(), d.ops.begin(), d.ops.end());
  }
  return all;
}

// ≥500 random sequences: consume(stream) ≡ one batched update() ≡ cold
// re-solve on dyn::Solver, with the wire format in the loop (the stream is
// encoded and decoded per sequence) and the toggle cube swept per trial.
TEST(StreamEquivalence, DynConsumeEqualsBatchEqualsColdAcrossToggleCube) {
  constexpr int kSequences = 288;
  for (int trial = 0; trial < kSequences; ++trial) {
    Rng rng(par::mix_seed(0x5EA3, static_cast<std::uint64_t>(trial)));
    EquivInstance inst = sat_plus_instance(rng);
    inst.desc += " trial " + std::to_string(trial);
    const int dest = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(inst.net.num_nodes())));

    const bool with_engine = (trial % 2 == 0);
    const int threads = (trial % 3 == 0) ? 4 : 1;
    const bool simd_on = (trial % 5 != 4);
    ScopedToggles toggles(/*dyn_on=*/true, threads, simd_on);
    const compile::WeightEngine eng(inst.ot);
    const compile::WeightEngine* weng = with_engine ? &eng : nullptr;
    const auto kind = (trial % 2 == 0) ? dyn::EngineKind::Bellman
                                       : dyn::EngineKind::Dijkstra;

    std::vector<TopologyDelta> seq;
    const int len = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < len; ++i) {
      seq.push_back(random_topo_delta(rng, inst));
    }

    // A: drain the sequence through the wire format.
    auto streamed = dyn::make_solver(kind, inst.ot, weng);
    streamed->solve(inst.net, dest, I(0));
    stream::BufferSource src(stream::encode_stream(seq));
    streamed->consume(src);
    ASSERT_TRUE(src.error().empty()) << inst.desc;
    ASSERT_EQ(streamed->net().version(), static_cast<std::uint64_t>(len))
        << inst.desc;

    // B: the same edits as one batch.
    auto batched = dyn::make_solver(kind, inst.ot, weng);
    batched->solve(inst.net, dest, I(0));
    batched->update(concat(seq));

    // C: a cold full solve of the final topology (dyn disabled).
    auto cold = dyn::make_solver(kind, inst.ot, weng);
    cold->solve(inst.net, dest, I(0));
    {
      ScopedToggles off(/*dyn_on=*/false, threads, simd_on);
      cold->update(concat(seq));
    }
    // A concatenation that composes to a net no-op takes the fast path (the
    // satellite regression below) even with dyn off; otherwise it must have
    // re-solved cold.
    if (cold->last_update().changed_arcs > 0) {
      ASSERT_TRUE(cold->last_update().cold) << inst.desc;
    }

    ASSERT_EQ(streamed->converged(), batched->converged()) << inst.desc;
    if (streamed->converged()) {
      expect_identical(streamed->routing(), batched->routing(),
                       inst.desc + " stream vs batch");
      expect_identical(streamed->routing(), cold->routing(),
                       inst.desc + " stream vs cold");
    }
  }
}

// The RibSolver side of the same contract, every column compared.
TEST(StreamEquivalence, RibConsumeEqualsBatchEqualsColdAcrossToggleCube) {
  constexpr int kSequences = 256;
  for (int trial = 0; trial < kSequences; ++trial) {
    Rng rng(par::mix_seed(0x51BE, static_cast<std::uint64_t>(trial)));
    EquivInstance inst = sat_plus_instance(rng);
    inst.desc += " trial " + std::to_string(trial);
    const int n = inst.net.num_nodes();

    const bool with_engine = (trial % 2 == 0);
    const int threads = (trial % 3 == 0) ? 4 : 1;
    const bool simd_on = (trial % 5 != 4);
    ScopedToggles toggles(/*dyn_on=*/true, threads, simd_on);
    const compile::WeightEngine eng(inst.ot);
    const compile::WeightEngine* weng = with_engine ? &eng : nullptr;

    std::vector<TopologyDelta> seq;
    const int len = 1 + static_cast<int>(rng.below(5));
    for (int i = 0; i < len; ++i) {
      seq.push_back(random_topo_delta(rng, inst));
    }

    rib::RibSolver streamed(inst.ot, weng);
    streamed.solve_all(inst.net, I(0));
    stream::MemorySource src(seq);
    ASSERT_EQ(streamed.consume(src), static_cast<std::size_t>(len))
        << inst.desc;

    rib::RibSolver batched(inst.ot, weng);
    batched.solve_all(inst.net, I(0));
    batched.update(concat(seq));

    rib::RibSolver cold(inst.ot, weng);
    cold.solve_all(inst.net, I(0));
    {
      ScopedToggles off(/*dyn_on=*/false, threads, simd_on);
      cold.update(concat(seq));
    }

    for (int c = 0; c < n; ++c) {
      ASSERT_EQ(streamed.column_converged(c), batched.column_converged(c))
          << inst.desc << " col " << c;
      if (!streamed.column_converged(c)) continue;
      expect_identical(streamed.routing(c), batched.routing(c),
                       inst.desc + " stream vs batch col " +
                           std::to_string(c));
      expect_identical(streamed.routing(c), cold.routing(c),
                       inst.desc + " stream vs cold col " + std::to_string(c));
    }
  }
}

// One fixed sequence checked across the *entire* 2×2×2 toggle cube at once:
// all eight configurations must land on the same bytes.
TEST(StreamEquivalence, FullToggleCubeAgreesOnOneSequence) {
  Rng rng(0xC0BE);
  EquivInstance inst = sat_plus_instance(rng);
  std::vector<TopologyDelta> seq;
  for (int i = 0; i < 6; ++i) seq.push_back(random_topo_delta(rng, inst));
  const compile::WeightEngine eng(inst.ot);

  std::optional<Routing> reference;
  for (int engine_on = 0; engine_on < 2; ++engine_on) {
    for (int threads = 1; threads <= 4; threads += 3) {
      for (int simd_on = 0; simd_on < 2; ++simd_on) {
        ScopedToggles toggles(/*dyn_on=*/true, threads, simd_on != 0);
        rib::RibSolver rib(inst.ot, engine_on ? &eng : nullptr);
        rib.solve_all(inst.net, I(0));
        stream::MemorySource src(seq);
        rib.consume(src);
        if (!reference.has_value()) {
          reference = rib.routing(0);
        } else {
          expect_identical(*reference, rib.routing(0),
                           "cube engine=" + std::to_string(engine_on) +
                               " threads=" + std::to_string(threads) +
                               " simd=" + std::to_string(simd_on));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fast-path regression: no-op batches do no invalidation work
// ---------------------------------------------------------------------------

TEST(StreamFastPath, EmptyDeltaIsNoOpOnDynSolver) {
  Rng rng(0xFA57);
  EquivInstance inst = sat_plus_instance(rng);
  auto s = dyn::make_solver(dyn::EngineKind::Bellman, inst.ot);
  s->solve(inst.net, 0, I(0));
  const Routing before = s->routing();
  const std::uint64_t v0 = s->net().version();

  s->update(TopologyDelta{});
  EXPECT_EQ(s->net().version(), v0 + 1);  // the version still bumps
  EXPECT_FALSE(s->last_update().cold);
  EXPECT_EQ(s->last_update().changed_arcs, 0);
  EXPECT_EQ(s->last_update().affected, 0);
  EXPECT_EQ(s->last_update().relaxations, 0u);
  expect_identical(before, s->routing(), "empty delta");
}

TEST(StreamFastPath, DeadArcOpsAreNoOpsOnDynSolver) {
  Rng rng(0xFA58);
  EquivInstance inst = sat_plus_instance(rng);
  auto s = dyn::make_solver(dyn::EngineKind::Bellman, inst.ot);
  s->solve(inst.net, 0, I(0));
  s->update(TopologyDelta{}.arc_down(1));
  const Routing before = s->routing();
  const std::uint64_t v0 = s->net().version();

  // Downing a down arc and relabeling a dead arc: routing-irrelevant — the
  // bug this pins was the dead-arc relabel entering changed_arcs and
  // triggering a full witness-invalidation pass.
  const Value new_label = I(inst.label_hi);
  TopologyDelta noop;
  noop.arc_down(1).relabel(1, new_label);
  s->update(noop);
  EXPECT_EQ(s->net().version(), v0 + 1);
  EXPECT_EQ(s->last_update().changed_arcs, 0);
  EXPECT_EQ(s->last_update().affected, 0);
  EXPECT_EQ(s->last_update().relaxations, 0u);
  expect_identical(before, s->routing(), "dead-arc batch");

  // The relabel was retained: reviving the arc must produce exactly the
  // routing of a batch that relabeled and revived in one step.
  s->update(TopologyDelta{}.arc_up(1));
  auto ref = dyn::make_solver(dyn::EngineKind::Bellman, inst.ot);
  ref->solve(inst.net, 0, I(0));
  ref->update(TopologyDelta{}.relabel(1, new_label));
  expect_identical(ref->routing(), s->routing(), "revived relabeled arc");
}

TEST(StreamFastPath, EmptyAndDeadArcDeltasAreNoOpsOnRib) {
  Rng rng(0xFA59);
  EquivInstance inst = sat_plus_instance(rng);
  rib::RibSolver rib(inst.ot);
  rib.solve_all(inst.net, I(0));
  rib.update(TopologyDelta{}.arc_down(0));
  std::vector<Routing> before;
  for (int c = 0; c < rib.num_columns(); ++c) before.push_back(rib.routing(c));
  const std::uint64_t v0 = rib.net().version();

  rib.update(TopologyDelta{});
  EXPECT_EQ(rib.net().version(), v0 + 1);
  EXPECT_EQ(rib.last_update().changed_arcs, 0);
  EXPECT_EQ(rib.last_update().relaxations, 0u);
  EXPECT_EQ(rib.last_update().affected_total(), 0);

  TopologyDelta noop;
  noop.arc_down(0).relabel(0, I(inst.label_hi));
  rib.update(noop);
  EXPECT_EQ(rib.net().version(), v0 + 2);
  EXPECT_EQ(rib.last_update().changed_arcs, 0);
  EXPECT_EQ(rib.last_update().relaxations, 0u);
  for (int c = 0; c < rib.num_columns(); ++c) {
    expect_identical(before[static_cast<std::size_t>(c)], rib.routing(c),
                     "rib no-op col " + std::to_string(c));
  }

  // Reviving the relabeled arc matches a fresh relabel-only table.
  rib.update(TopologyDelta{}.arc_up(0));
  rib::RibSolver ref(inst.ot);
  ref.solve_all(inst.net, I(0));
  ref.update(TopologyDelta{}.relabel(0, I(inst.label_hi)));
  for (int c = 0; c < rib.num_columns(); ++c) {
    expect_identical(ref.routing(c), rib.routing(c),
                     "rib revived col " + std::to_string(c));
  }
}

// ---------------------------------------------------------------------------
// Sim quiescent-point recording + SimDeltaSource replay
// ---------------------------------------------------------------------------

TEST(SimDeltaStream, RecordingChangesNoScheduleByte) {
  const Scenario sc = good_gadget_hops();
  SimOptions a;
  a.seed = 42;
  SimOptions b = a;
  b.record_quiescent = true;

  PathVectorSim sim_a(sc.alg, sc.net, sc.dest, sc.origin, a);
  sim_a.schedule_link_down(2.0, 0);
  sim_a.schedule_link_up(5.0, 0);
  const SimResult ra = sim_a.run();

  PathVectorSim sim_b(sc.alg, sc.net, sc.dest, sc.origin, b);
  sim_b.schedule_link_down(2.0, 0);
  sim_b.schedule_link_up(5.0, 0);
  const SimResult rb = sim_b.run();

  EXPECT_EQ(ra.events, rb.events);
  EXPECT_EQ(ra.rounds, rb.rounds);
  EXPECT_EQ(ra.finish_time, rb.finish_time);
  expect_identical(ra.routing, rb.routing, "recording A/B");
  EXPECT_TRUE(ra.quiescent.empty());   // off by default
  EXPECT_FALSE(rb.quiescent.empty());  // the faulted run has stable states
}

TEST(SimDeltaStream, ReplayLandsOnTheEndStateTopology) {
  Rng rng(0x5EED);
  const Scenario sc = gao_rexford_hierarchy(rng, 24, 12);
  SimOptions opts;
  opts.seed = 7;
  opts.record_quiescent = true;
  PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
  sim.schedule_link_down(1.5, 0);
  sim.schedule_link_down(2.5, 3);
  sim.schedule_link_up(6.0, 0);
  sim.schedule_node_down(3.0, sc.net.num_nodes() - 1);
  const SimResult res = sim.run();
  ASSERT_TRUE(res.converged);

  // Drive a warm solver through the quiescent-point stream; its final masks
  // must be exactly the run's surviving topology, and its routing must be
  // byte-identical to applying SimResult::delta as one batch.
  SimDeltaSource src(res);
  EXPECT_GE(src.deltas().size(), res.quiescent.size());
  auto streamed = dyn::make_solver(dyn::EngineKind::Bellman, sc.alg);
  streamed->solve(sc.net, sc.dest, sc.origin);
  streamed->consume(src);

  auto batched = dyn::make_solver(dyn::EngineKind::Bellman, sc.alg);
  batched->solve(sc.net, sc.dest, sc.origin);
  batched->update(res.delta);

  const dyn::DynNet& dn = streamed->net();
  for (int a = 0; a < sc.net.graph().num_arcs(); ++a) {
    EXPECT_EQ(dn.arc_alive(a), res.arc_alive[static_cast<std::size_t>(a)])
        << "arc " << a;
  }
  for (int v = 0; v < sc.net.num_nodes(); ++v) {
    EXPECT_EQ(dn.node_up(v), res.node_up[static_cast<std::size_t>(v)])
        << "node " << v;
  }
  expect_identical(streamed->routing(), batched->routing(),
                   "sim replay vs one-batch");

  // And the replay log survives the wire format.
  const std::vector<std::uint8_t> bytes =
      stream::encode_stream(src.deltas());
  auto rewired = dyn::make_solver(dyn::EngineKind::Bellman, sc.alg);
  rewired->solve(sc.net, sc.dest, sc.origin);
  stream::BufferSource wire_src(bytes);
  rewired->consume(wire_src);
  ASSERT_TRUE(wire_src.error().empty());
  expect_identical(rewired->routing(), streamed->routing(),
                   "sim replay through wire");
}

TEST(SimDeltaStream, OracleDuringRunPassesOnConvergentScenario) {
  Rng rng(0xC4A0);
  chaos::CampaignScenario sc;
  const Scenario base = gao_rexford_hierarchy(rng, 16, 8);
  sc.name = "gr-during-run";
  sc.alg = base.alg;
  sc.net = base.net;
  sc.dest = base.dest;
  sc.origin = base.origin;
  sc.sim.max_events = 200'000;
  sc.oracle_during_run = true;

  // Flap-style faults only (downs/ups, no loss windows): every quiescent
  // instant is a true stable state, so the during-run oracle must hold.
  const int arcs = sc.net.graph().num_arcs();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng prng(seed);
    chaos::FaultPlan plan;
    plan.seed = seed;
    const int nfaults = 1 + static_cast<int>(seed % 3);
    for (int i = 0; i < nfaults; ++i) {
      chaos::Fault f;
      f.kind = chaos::Fault::Kind::LinkFlap;
      f.arc = static_cast<int>(prng.below(static_cast<std::uint64_t>(arcs)));
      f.at = 4.0 + 3.0 * prng.unit();
      f.duration = 2.0 + 6.0 * prng.unit();
      plan.faults.push_back(f);
    }
    const chaos::RunVerdict v =
        chaos::run_one(sc, seed, plan, /*check_global=*/false);
    EXPECT_TRUE(v.pass) << "seed " << seed << ": " << v.detail;
  }
}

}  // namespace
}  // namespace mrt
