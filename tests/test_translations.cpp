// Section III translations between the quadrants: Cayley maps, natural
// orders, and the min-set construction (with Wongseelashote's reduction
// axioms from section VI).
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/core/checker.hpp"
#include "mrt/core/random_algebra.hpp"
#include "mrt/core/translations.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

const Checker& checker() {
  static const Checker chk;
  return chk;
}

// ---------------------------------------------------------------------------
// Cayley maps
// ---------------------------------------------------------------------------

TEST(Cayley, BisemigroupToSemigroupTransform) {
  const SemigroupTransform st = cayley(bs_shortest_path());
  // f_x(y) = x + y.
  EXPECT_EQ(st.fns->apply(I(3), I(4)), I(7));
  // ⊕ is untouched.
  EXPECT_EQ(st.add->op(I(3), I(4)), I(3));
  // Left properties carry over verbatim.
  EXPECT_EQ(st.props.value(Prop::M_L), Tri::True);
  EXPECT_EQ(st.props.value(Prop::N_L), Tri::True);
  EXPECT_EQ(st.props.value(Prop::ND_L), Tri::True);
}

TEST(Cayley, OrderSemigroupToOrderTransform) {
  const OrderTransform ot = cayley(os_widest_path());
  EXPECT_EQ(ot.fns->apply(I(3), I(9)), I(3));  // min(3, 9)
  EXPECT_EQ(ot.props.value(Prop::M_L), Tri::True);
  EXPECT_EQ(ot.props.value(Prop::N_L), Tri::False);
  EXPECT_EQ(ot.props.value(Prop::ND_L), Tri::True);
}

class CayleySweep : public ::testing::TestWithParam<int> {};

TEST_P(CayleySweep, PropertiesTransferExactly) {
  // The carried annotations must agree with the checker run directly on the
  // translated structure (the statements are literally the same formulas).
  Rng rng(0xCA11E + static_cast<std::uint64_t>(GetParam()));
  OrderSemigroup os = random_order_semigroup(rng);
  os.props = checker().report(os);
  const OrderTransform ot = cayley(os);
  for (Prop p : {Prop::M_L, Prop::N_L, Prop::C_L, Prop::ND_L, Prop::Inc_L,
                 Prop::SInc_L, Prop::TFix_L}) {
    mrt::testing::expect_exact(p, ot.props.value(p),
                               checker().prop(ot, p).verdict,
                               "seed " + std::to_string(GetParam()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CayleySweep, ::testing::Range(0, 60));

// ---------------------------------------------------------------------------
// Natural orders
// ---------------------------------------------------------------------------

TEST(NaturalOrder, LeftOfMinIsNumericOrder) {
  auto no = natural_order(sg_min(), true);
  // s1 ≲L s2 ⟺ s1 = min(s1, s2) ⟺ s1 ≤ s2.
  EXPECT_TRUE(no->leq(I(2), I(5)));
  EXPECT_FALSE(no->leq(I(5), I(2)));
  EXPECT_TRUE(no->leq(I(4), Value::inf()));
  // ⊤ of ≲L is the ⊕-identity: ∞.
  EXPECT_TRUE(no->is_top(Value::inf()));
  EXPECT_TRUE(no->has_top());
}

TEST(NaturalOrder, RightOfMinIsReversed) {
  auto no = natural_order(sg_min(), false);
  // s1 ≲R s2 ⟺ s2 = min(s1, s2) ⟺ s2 ≤ s1.
  EXPECT_TRUE(no->leq(I(5), I(2)));
  EXPECT_FALSE(no->leq(I(2), I(5)));
  // ⊤ of ≲R is the ⊕-absorber: 0.
  EXPECT_TRUE(no->is_top(I(0)));
}

TEST(NaturalOrder, DualityOnSemilattices) {
  // For commutative idempotent semigroups ≲L and ≲R are dual partial orders.
  Rng rng(99);
  auto s = random_semilattice(rng, 3, true);
  auto nl = natural_order(s, true);
  auto nr = natural_order(s, false);
  const ValueVec elems = *s->enumerate();
  for (const Value& a : elems) {
    for (const Value& b : elems) {
      EXPECT_EQ(nl->leq(a, b), nr->leq(b, a));
      // Antisymmetry (partial order, not just preorder).
      if (nl->leq(a, b) && nl->leq(b, a)) {
        EXPECT_EQ(a, b);
      }
    }
  }
}

TEST(NaturalOrder, NonIdempotentGivesNonReflexivePairs) {
  // (ℤ4, +) is not idempotent: a ≲L a fails for a ≠ 0, so ≲L is not even a
  // preorder — "using other kinds of semigroup may not result in orders with
  // such desirable properties" (section III).
  auto no = natural_order(sg_plus_mod(4), true);
  EXPECT_FALSE(no->leq(I(1), I(1)));  // 1 ≠ 1 + 1
}

TEST(NaturalOrder, QuadrantLift) {
  const OrderSemigroup os = natural_order_left(bs_shortest_path());
  EXPECT_TRUE(os.ord->leq(I(1), I(4)));
  EXPECT_EQ(os.mul->op(I(1), I(4)), I(5));
  const OrderTransform ot = natural_order_right(st_shortest_path(3));
  EXPECT_TRUE(ot.ord->leq(I(4), I(1)));
}

// ---------------------------------------------------------------------------
// Min-set translation and the reduction axioms
// ---------------------------------------------------------------------------

Value mset(std::initializer_list<Value> xs) {
  return Value::tuple(normalize_set(ValueVec(xs)));
}

TEST(MinSetTransform, BasicSemantics) {
  const SemigroupTransform st = min_set_transform(ot_widest_path(5));
  // {3, 7} ⊕ {5} keeps the widest: min-set under ≥-preference is {7}.
  EXPECT_EQ(st.add->op(mset({I(3), I(7)}), mset({I(5)})), mset({I(7)}));
  // Identity is the empty set.
  EXPECT_EQ(st.add->op(*st.add->identity(), mset({I(5)})), mset({I(5)}));
  // f'({3,7}) = min{min(3,c), min(7,c)}.
  EXPECT_EQ(st.fns->apply(I(5), mset({I(3), I(7)})), mset({I(5)}));
}

TEST(MinSetTransform, KeepsIncomparableElements) {
  // Subset order: {01, 10} is a genuine two-element Pareto frontier.
  OrderTransform ot{"sub", ord_subset_bits(2), fam_id(), {}};
  const SemigroupTransform st = min_set_transform(ot);
  EXPECT_EQ(st.add->op(mset({I(0b01)}), mset({I(0b10)})),
            mset({I(0b01), I(0b10)}));
  EXPECT_EQ(st.add->op(mset({I(0b01), I(0b10)}), mset({I(0b11)})),
            mset({I(0b01), I(0b10)}));
}

TEST(MinSetTransform, CarrierIsMinClosedSets) {
  OrderTransform ot = ot_chain_add(2, 0, 1);
  const SemigroupTransform st = min_set_transform(ot);
  EXPECT_TRUE(st.add->contains(mset({I(1)})));
  EXPECT_TRUE(st.add->contains(Value::tuple({})));
  // {0, 1} is not min-closed on a chain (0 dominates 1).
  EXPECT_FALSE(st.add->contains(mset({I(0), I(1)})));
  // Enumeration: chain of 3 ⇒ singletons + empty set.
  EXPECT_EQ(st.add->enumerate()->size(), 4u);
}

TEST(MinSetTransform, SemilatticeLawsHold) {
  // The translated ⊕ must be a commutative idempotent monoid — checked
  // exhaustively on a small partial order (where min-sets are interesting).
  OrderTransform ot{"sub", ord_subset_bits(2),
                    fam_table("f", 4, {{0, 0, 2, 2}, {3, 1, 3, 3}}), {}};
  const SemigroupTransform st = min_set_transform(ot);
  EXPECT_EQ(checker().prop(st, Prop::Assoc).verdict, Tri::True);
  EXPECT_EQ(checker().prop(st, Prop::Comm).verdict, Tri::True);
  EXPECT_EQ(checker().prop(st, Prop::Idem).verdict, Tri::True);
  EXPECT_EQ(checker().prop(st, Prop::HasIdentity).verdict, Tri::True);
}

// Wongseelashote's reduction axioms (section VI) for r = min_≲ on the
// semigroup of sets under ∪ and under pointwise function application:
//   (1) r(∅) = ∅
//   (2) r(A ∪ B) = r(r(A) ∪ B)
//   (3) r(f(A)) = r(f(r(A)))
class ReductionAxioms : public ::testing::TestWithParam<int> {};

TEST_P(ReductionAxioms, MinSetIsAReduction) {
  Rng rng(0x8ED0 + static_cast<std::uint64_t>(GetParam()));
  OrderTransform ot = random_order_transform(rng);
  const PreorderSet& ord = *ot.ord;
  const ValueVec elems = *ord.enumerate();

  // (1)
  EXPECT_TRUE(min_set(ord, {}).empty());

  // Random subsets A, B of the carrier.
  auto random_subset = [&](Rng& r) {
    ValueVec out;
    for (const Value& v : elems) {
      if (r.chance(0.5)) out.push_back(v);
    }
    return out;
  };
  for (int round = 0; round < 20; ++round) {
    ValueVec a = random_subset(rng);
    ValueVec b = random_subset(rng);

    // (2) r(A ∪ B) = r(r(A) ∪ B)
    ValueVec ab = a;
    ab.insert(ab.end(), b.begin(), b.end());
    ValueVec ra_b = min_set(ord, a);
    ra_b.insert(ra_b.end(), b.begin(), b.end());
    EXPECT_EQ(min_set(ord, ab), min_set(ord, ra_b));

    // (3) r(f(A)) = r(f(r(A))) for every *monotone* function of the family
    // (the condition under which min is a reduction — min is a reduction on
    // (ℕ, +) precisely because + is monotone). On non-antisymmetric
    // preorders even monotone functions can break set equality (f(a) ~ f(x)
    // with f(a) ≠ f(x) keeps both on one side only), so gate on antisymmetry.
    bool antisym = true;
    for (const Value& x : elems) {
      for (const Value& y : elems) {
        if (equiv_of(ord.cmp(x, y)) && x != y) antisym = false;
      }
    }
    if (!antisym) continue;
    const ValueVec labels = *ot.fns->labels();
    for (const Value& l : labels) {
      bool monotone = true;
      for (const Value& x : elems) {
        for (const Value& y : elems) {
          if (ord.leq(x, y) &&
              !ord.leq(ot.fns->apply(l, x), ot.fns->apply(l, y))) {
            monotone = false;
          }
        }
      }
      if (!monotone) continue;
      auto image = [&](const ValueVec& xs) {
        ValueVec out;
        for (const Value& x : xs) out.push_back(ot.fns->apply(l, x));
        return out;
      };
      EXPECT_EQ(min_set(ord, image(a)), min_set(ord, image(min_set(ord, a))));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionAxioms, ::testing::Range(0, 40));

TEST(ReductionAxiomsNegative, NonMonotoneFunctionBreaksAxiom3) {
  // 0 < 1 with f swapping them: r(f({0,1})) = {0} but r(f(r({0,1}))) = {1}.
  auto ord = ord_chain(1);
  auto fns = fam_table("swap", 2, {{1, 0}});
  ValueVec a{I(0), I(1)};
  auto image = [&](const ValueVec& xs) {
    ValueVec out;
    for (const Value& x : xs) out.push_back(fns->apply(I(0), x));
    return out;
  };
  EXPECT_NE(min_set(*ord, image(a)), min_set(*ord, image(min_set(*ord, a))));
}

}  // namespace
}  // namespace mrt
