// Path-vector loop detection (BGP's AS-path mechanism): with paths carried
// in advertisements, the stable-but-looping states of weight-only protocols
// become unreachable, while genuinely unstable gadgets still diverge.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/routing/optimality.hpp"
#include "mrt/sim/scenario.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

TEST(LoopDetection, SelectedPathsAreReportedAndLoopFree) {
  const OrderTransform sp = ot_shortest_path(4);
  Digraph g(3);
  ValueVec labels;
  g.add_arc(1, 0);
  labels.push_back(I(1));
  g.add_arc(2, 1);
  labels.push_back(I(1));
  LabeledGraph net(std::move(g), std::move(labels));
  SimOptions opts;
  opts.loop_detection = true;
  PathVectorSim sim(sp, net, 0, I(0), opts);
  const SimResult res = sim.run();
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.paths[0], (std::vector<int>{0}));
  EXPECT_EQ(res.paths[1], (std::vector<int>{1, 0}));
  EXPECT_EQ(res.paths[2], (std::vector<int>{2, 1, 0}));
}

TEST(LoopDetection, GaoRexfordCustomerCycleCannotLockIntoTheLoop) {
  // The same customer cycle whose looping state is a stable fixed point of
  // the weight-only protocol (test_gao_rexford.cpp): with paths carried,
  // every run converges to a loop-free state.
  const OrderTransform gr = gao_rexford_algebra();
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Digraph g(4);
    ValueVec labels;
    g.add_arc(1, 2);
    labels.push_back(gr_cust_label());
    g.add_arc(2, 3);
    labels.push_back(gr_cust_label());
    g.add_arc(3, 1);
    labels.push_back(gr_cust_label());
    g.add_arc(1, 0);
    labels.push_back(gr_prov_label());
    LabeledGraph net(std::move(g), std::move(labels));

    SimOptions opts;
    opts.seed = seed;
    opts.drop_top_routes = true;
    opts.loop_detection = true;
    PathVectorSim sim(gr, net, 0, I(0), opts);
    const SimResult res = sim.run();
    ASSERT_TRUE(res.converged) << "seed " << seed;
    EXPECT_TRUE(forwarding_consistent(net, res.routing, 0)) << "seed " << seed;
    // Node 1 must use its honest provider route, not the cycle.
    ASSERT_TRUE(res.routing.has_route(1));
    EXPECT_EQ(*res.routing.weight[1], I(2)) << "seed " << seed;
  }
}

TEST(LoopDetection, RandomIncreasingScenariosStillConvergeWithPaths) {
  Rng rng(0x100D);
  const OrderTransform sp = ot_shortest_path(4);
  for (int trial = 0; trial < 8; ++trial) {
    Scenario sc = random_scenario(sp, I(0), rng, 10, 6);
    SimOptions opts;
    opts.seed = 77 + static_cast<std::uint64_t>(trial);
    opts.loop_detection = true;
    PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
    const SimResult res = sim.run();
    ASSERT_TRUE(res.converged);
    EXPECT_TRUE(is_locally_optimal(sc.alg, sc.net, sc.dest, sc.origin,
                                   res.routing));
    EXPECT_TRUE(forwarding_consistent(sc.net, res.routing, sc.dest));
    // Every reported path actually follows selected arcs to the destination.
    for (int v = 0; v < sc.net.num_nodes(); ++v) {
      if (!res.routing.has_route(v)) continue;
      auto fwd = forwarding_path(sc.net, res.routing, v, sc.dest);
      ASSERT_TRUE(fwd.has_value());
      EXPECT_EQ(*fwd, res.paths[(std::size_t)v]) << "node " << v;
    }
  }
}

TEST(LoopDetection, BadGadgetStillDivergesWithPaths) {
  // The classic result: AS-path loop detection does not make BGP safe —
  // BAD GADGET has no stable state with or without paths.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Scenario sc = bad_gadget();
    SimOptions opts;
    opts.seed = seed;
    opts.max_events = 20'000;
    opts.drop_top_routes = true;
    opts.loop_detection = true;
    PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
    const SimResult res = sim.run();
    EXPECT_FALSE(res.converged) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mrt
