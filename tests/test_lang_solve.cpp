// The solve statement: the metalanguage driving the routing algorithms,
// with the derived properties acting as the "proof component".
#include <gtest/gtest.h>

#include "mrt/lang/interp.hpp"
#include "mrt/lang/parser.hpp"

namespace mrt::lang {
namespace {

TEST(SolveParse, FullForm) {
  auto p = parse("solve lex(sp, bw) on random(8, 4, 7) to 0 from pair(0, inf)");
  ASSERT_TRUE(p.ok()) << p.error().to_string();
  ASSERT_EQ(p->size(), 1u);
  const Stmt& s = (*p)[0];
  EXPECT_EQ(s.kind, Stmt::Kind::Solve);
  EXPECT_EQ(s.expr->show(), "lex(sp, bw)");
  EXPECT_EQ(s.topology->show(), "random(8, 4, 7)");
  EXPECT_EQ(s.dest, 0);
  EXPECT_EQ(s.origin->show(), "pair(0, inf)");
}

TEST(SolveParse, Errors) {
  EXPECT_FALSE(parse("solve sp ring(5) to 0 from 0").ok());   // missing 'on'
  EXPECT_FALSE(parse("solve sp on ring(5) to x from 0").ok()); // bad dest
  EXPECT_FALSE(parse("solve sp on ring(5) from 0").ok());      // missing 'to'
}

TEST(Solve, TotalOrderUsesDijkstra) {
  Interp in;
  auto out = in.run("solve sp on ring(5) to 0 from 0");
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_NE(out->find("| node | weight"), std::string::npos);
  EXPECT_NE(out->find("| 0    | 0"), std::string::npos);
  // sp is monotone and ND: no warnings.
  EXPECT_EQ(out->find("warning"), std::string::npos);
}

TEST(Solve, NonMonotoneAlgebraWarns) {
  Interp in;
  auto out = in.run("solve lex(bw, sp) on line(4) to 0 from pair(inf, 0)");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("warning: M not established (no)"), std::string::npos);
}

TEST(Solve, PartialOrderComputesFrontiers) {
  Interp in;
  auto out = in.run("solve prod(sp, bw) on ring(5) to 0 from pair(0, inf)");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("Pareto frontiers"), std::string::npos);
  EXPECT_NE(out->find("| node | frontier"), std::string::npos);
}

TEST(Solve, UsesBindings) {
  Interp in;
  auto out = in.run("let a = hops\nsolve a on grid(3, 2) to 0 from 0");
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_NE(out->find("solving hops"), std::string::npos);
}

TEST(Solve, RejectsWrongQuadrantAndBadInputs) {
  Interp in;
  EXPECT_FALSE(in.run("solve sp_bs on ring(5) to 0 from 0").ok());
  EXPECT_FALSE(in.run("solve sp on ring(5) to 99 from 0").ok());
  EXPECT_FALSE(in.run("solve sp on hexagon(5) to 0 from 0").ok());
  // Origin not in the carrier: a bare pair for a scalar algebra.
  auto bad = in.run("solve sp on ring(5) to 0 from pair(0, 0)");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("not in the carrier"), std::string::npos);
}

TEST(Solve, ValueLiterals) {
  Interp in;
  // inf as an origin for widest path (infinite capacity at the source).
  auto out = in.run("solve bw on line(3) to 0 from inf");
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_NE(out->find("| 0    | inf"), std::string::npos);
}

TEST(Solve, DeterministicInTopologySeed) {
  Interp a, b;
  auto x = a.run("solve sp on random(8, 4, 42) to 0 from 0");
  auto y = b.run("solve sp on random(8, 4, 42) to 0 from 0");
  ASSERT_TRUE(x.ok() && y.ok());
  EXPECT_EQ(*x, *y);
  auto z = a.run("solve sp on random(8, 4, 43) to 0 from 0");
  ASSERT_TRUE(z.ok());
  EXPECT_NE(*x, *z);
}

}  // namespace
}  // namespace mrt::lang
