// The algebraic-quadrant solver (Kleene/Carré closure over bisemigroups):
// all-pairs shortest/widest paths, path counting on DAGs, agreement between
// the elimination and iteration schemes, and honest divergence reporting.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/core/bases.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/routing/closure.hpp"
#include "mrt/routing/dijkstra.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

// 0 → 1 (3), 1 → 2 (4), 0 → 2 (9), 2 → 0 (1).
std::pair<Digraph, ValueVec> diamond() {
  Digraph g(3);
  ValueVec w;
  g.add_arc(0, 1);
  w.push_back(I(3));
  g.add_arc(1, 2);
  w.push_back(I(4));
  g.add_arc(0, 2);
  w.push_back(I(9));
  g.add_arc(2, 0);
  w.push_back(I(1));
  return {std::move(g), std::move(w)};
}

TEST(ArcMatrix, SummarizesParallelArcs) {
  const Bisemigroup sp = bs_shortest_path();
  Digraph g(2);
  g.add_arc(0, 1);
  g.add_arc(0, 1);
  const WeightMatrix a = arc_matrix(sp, g, {I(5), I(3)});
  EXPECT_EQ(*a[0][1], I(3));  // min of the parallel arcs
  EXPECT_FALSE(a[1][0].has_value());
}

TEST(KleeneClosure, AllPairsShortestPaths) {
  const Bisemigroup sp = bs_shortest_path();
  auto [g, w] = diamond();
  const ClosureResult r = kleene_closure(sp, arc_matrix(sp, g, w));
  EXPECT_EQ(*r.star[0][0], I(0));  // empty walk
  EXPECT_EQ(*r.star[0][1], I(3));
  EXPECT_EQ(*r.star[0][2], I(7));  // via 1 beats the direct 9
  EXPECT_EQ(*r.star[2][1], I(4));  // 2 → 0 → 1
  EXPECT_EQ(*r.star[1][0], I(5));  // 1 → 2 → 0
}

TEST(KleeneClosure, AllPairsWidestPaths) {
  // (ℕ∪∞, max, min): ⊗-identity is the infinite-capacity empty walk.
  const Bisemigroup bw{"widest", sg_max(), sg_min(), {}};
  Digraph g(3);
  ValueVec w;
  g.add_arc(0, 1);
  w.push_back(I(2));
  g.add_arc(1, 2);
  w.push_back(I(8));
  g.add_arc(0, 2);
  w.push_back(I(1));
  const ClosureResult r = kleene_closure(bw, arc_matrix(bw, g, w));
  EXPECT_EQ(*r.star[0][2], I(2));  // max(min(2,8), 1)
  EXPECT_EQ(*r.star[0][0], Value::inf());
  EXPECT_FALSE(r.star[2][0].has_value());  // unreachable
}

TEST(KleeneClosure, MatchesDijkstraOnRandomNetworks) {
  const Bisemigroup sp = bs_shortest_path();
  const OrderTransform ot = ot_shortest_path(6);
  Rng rng(0xC105);
  for (int trial = 0; trial < 10; ++trial) {
    Digraph g = random_connected(rng, 8, 5);
    ValueVec w;
    for (int id = 0; id < g.num_arcs(); ++id) {
      w.push_back(I(rng.range(1, 6)));
    }
    const ClosureResult r = kleene_closure(sp, arc_matrix(sp, g, w));
    // Column `dest` of A* equals the per-destination Dijkstra solution.
    for (int dest = 0; dest < g.num_nodes(); ++dest) {
      LabeledGraph net(g, w);
      const Routing d = dijkstra(ot, net, dest, I(0));
      for (int v = 0; v < g.num_nodes(); ++v) {
        ASSERT_TRUE(r.star[(std::size_t)v][(std::size_t)dest].has_value());
        EXPECT_EQ(*r.star[(std::size_t)v][(std::size_t)dest],
                  *d.weight[(std::size_t)v])
            << v << "->" << dest;
      }
    }
  }
}

TEST(IterativeClosure, AgreesWithKleeneOnIdempotentAlgebras) {
  const Bisemigroup sp = bs_shortest_path();
  Rng rng(0xC106);
  for (int trial = 0; trial < 8; ++trial) {
    Digraph g = random_connected(rng, 6, 4);
    ValueVec w;
    for (int id = 0; id < g.num_arcs(); ++id) {
      w.push_back(I(rng.range(1, 5)));
    }
    const WeightMatrix a = arc_matrix(sp, g, w);
    const ClosureResult kc = kleene_closure(sp, a);
    const ClosureResult it = iterative_closure(sp, a);
    ASSERT_TRUE(it.converged);
    EXPECT_EQ(kc.star, it.star);
  }
}

TEST(IterativeClosure, CountsPathsOnADag) {
  // The classic (ℕ, +, ×) path-counting semiring on a 2×2 grid DAG:
  // 0→1→3, 0→2→3: two paths 0 → 3.
  const Bisemigroup cnt = bs_path_count();
  Digraph g(4);
  ValueVec w;
  for (auto [u, v] : {std::pair{0, 1}, {0, 2}, {1, 3}, {2, 3}}) {
    g.add_arc(u, v);
    w.push_back(I(1));
  }
  const ClosureResult r = iterative_closure(cnt, arc_matrix(cnt, g, w));
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(*r.star[0][3], I(2));
  EXPECT_EQ(*r.star[0][1], I(1));
  EXPECT_EQ(*r.star[0][0], I(1));  // the empty walk
  EXPECT_FALSE(r.star[3][0].has_value());
}

TEST(IterativeClosure, ReportsDivergenceOnCountingCycles) {
  // With a cycle there are infinitely many walks: the + summary never
  // stabilizes, and the solver must say so instead of looping.
  const Bisemigroup cnt = bs_path_count();
  Digraph g(2);
  ValueVec w;
  g.add_arc(0, 1);
  w.push_back(I(1));
  g.add_arc(1, 0);
  w.push_back(I(1));
  ClosureOptions opts;
  opts.max_power = 20;
  const ClosureResult r = iterative_closure(cnt, arc_matrix(cnt, g, w), opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 20);
}

TEST(Closure, ValidatesMatrixShape) {
  const Bisemigroup sp = bs_shortest_path();
  WeightMatrix ragged(2);
  ragged[0].resize(2);
  ragged[1].resize(1);
  EXPECT_THROW(kleene_closure(sp, ragged), std::logic_error);
  Digraph g(2);
  g.add_arc(0, 1);
  EXPECT_THROW(arc_matrix(sp, g, {}), std::logic_error);
}

}  // namespace
}  // namespace mrt
