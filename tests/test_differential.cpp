// Differential testing of the solver stack: seeded random distributive
// algebras × random graphs, where generalized Dijkstra, synchronous
// Bellman–Ford, and the Kleene/Carré closure must agree exactly — and the
// asynchronous simulator must land on the same weights whenever the algebra
// is increasing (unique local optimum = global optimum).
//
// The random family: chain carriers {0..n} with ⊕ = min and ⊗ drawn from
// { saturating +c (c ≥ 1, increasing), max(·, c) (widest-path-like, ND but
// not increasing) }. min distributes over both, so all three solvers compute
// the same object; only the increasing subfamily is sim-compared.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/par/par.hpp"
#include "mrt/routing/bellman.hpp"
#include "mrt/routing/closure.hpp"
#include "mrt/routing/dijkstra.hpp"
#include "mrt/sim/path_vector.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

struct ChainInstance {
  Bisemigroup bs;     ///< (chain, min, ⊗) for the closure solver
  OrderTransform ot;  ///< (chain, ≤, F) for dijkstra / bellman / sim
  LabeledGraph net;   ///< labels valid for both views
  int n = 0;          ///< carrier top (⊤ = n)
  bool increasing = false;
  std::string desc;
};

/// ⊗ = saturating plus: labels c ∈ [1, n]; the §VI increasing chain.
ChainInstance sat_plus_instance(Rng& rng) {
  const int n = 3 + static_cast<int>(rng.below(5));
  const int hi = 1 + static_cast<int>(
                         rng.below(static_cast<std::uint64_t>(n - 1)));
  Digraph g = random_connected(rng, 5 + static_cast<int>(rng.below(5)),
                               3 + static_cast<int>(rng.below(5)));
  ValueVec labels;
  for (int id = 0; id < g.num_arcs(); ++id) {
    labels.push_back(I(rng.range(1, hi)));
  }
  return ChainInstance{
      Bisemigroup{"chain(min,sat+)", sg_chain_min(n), sg_chain_plus(n), {}},
      OrderTransform{"chain(<=,sat+)", ord_chain(n), fam_chain_add(n, 1, hi),
                     {}},
      LabeledGraph(std::move(g), std::move(labels)),
      n,
      /*increasing=*/true,
      "sat_plus n=" + std::to_string(n)};
}

/// ⊗ = max(·, c): labels c ∈ [0, n]; min distributes over max on a chain.
ChainInstance chain_max_instance(Rng& rng) {
  const int n = 3 + static_cast<int>(rng.below(5));
  Digraph g = random_connected(rng, 5 + static_cast<int>(rng.below(5)),
                               3 + static_cast<int>(rng.below(5)));
  ValueVec labels;
  for (int id = 0; id < g.num_arcs(); ++id) {
    labels.push_back(I(rng.range(0, n)));
  }
  std::vector<std::vector<int>> fns;
  for (int c = 0; c <= n; ++c) {
    std::vector<int> f;
    for (int x = 0; x <= n; ++x) f.push_back(std::max(x, c));
    fns.push_back(std::move(f));
  }
  return ChainInstance{
      Bisemigroup{"chain(min,max)", sg_chain_min(n), sg_chain_max(n), {}},
      OrderTransform{"chain(<=,max)", ord_chain(n),
                     fam_table("{max(.,c)}", n + 1, std::move(fns)), {}},
      LabeledGraph(std::move(g), std::move(labels)),
      n,
      /*increasing=*/false,  // max(x, c) = x whenever c ≤ x
      "chain_max n=" + std::to_string(n)};
}

/// dijkstra == bellman_sync == the dest column of the Kleene closure.
void expect_solvers_agree(const ChainInstance& inst) {
  const ClosureResult closure =
      kleene_closure(inst.bs, arc_matrix(inst.bs, inst.net.graph(),
                                         [&] {
                                           ValueVec w;
                                           for (int id = 0;
                                                id < inst.net.graph().num_arcs();
                                                ++id) {
                                             w.push_back(inst.net.label(id));
                                           }
                                           return w;
                                         }()));
  for (int dest = 0; dest < inst.net.num_nodes(); ++dest) {
    const Routing dj = dijkstra(inst.ot, inst.net, dest, I(0));
    const BellmanResult bf = bellman_sync(inst.ot, inst.net, dest, I(0));
    ASSERT_TRUE(bf.converged) << inst.desc;
    for (int v = 0; v < inst.net.num_nodes(); ++v) {
      const std::size_t vi = static_cast<std::size_t>(v);
      const auto& star =
          closure.star[vi][static_cast<std::size_t>(dest)];
      ASSERT_TRUE(dj.weight[vi].has_value()) << inst.desc;
      ASSERT_TRUE(bf.routing.weight[vi].has_value()) << inst.desc;
      ASSERT_TRUE(star.has_value()) << inst.desc;
      EXPECT_EQ(*dj.weight[vi], *bf.routing.weight[vi])
          << inst.desc << " node " << v << " dest " << dest;
      EXPECT_EQ(*dj.weight[vi], *star)
          << inst.desc << " node " << v << " dest " << dest;
    }
  }
}

TEST(Differential, RandomSaturatingPlusChainsAgreeAcrossSolvers) {
  for (std::uint64_t trial = 0; trial < 25; ++trial) {
    Rng rng(par::mix_seed(0xD1FF, trial));
    expect_solvers_agree(sat_plus_instance(rng));
  }
}

TEST(Differential, RandomChainMaxAlgebrasAgreeAcrossSolvers) {
  for (std::uint64_t trial = 0; trial < 25; ++trial) {
    Rng rng(par::mix_seed(0xD1FE, trial));
    expect_solvers_agree(chain_max_instance(rng));
  }
}

TEST(Differential, ConvergedSimMatchesSolversOnIncreasingChains) {
  // ⊤-saturated optima count as "no usable route": the simulator drops them
  // (drop_top_routes), the solvers report weight n.
  for (std::uint64_t trial = 0; trial < 15; ++trial) {
    Rng rng(par::mix_seed(0x51D1FF, trial));
    const ChainInstance inst = sat_plus_instance(rng);
    ASSERT_TRUE(inst.increasing);
    const int dest = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(inst.net.num_nodes())));
    const Routing truth = dijkstra(inst.ot, inst.net, dest, I(0));
    SimOptions opts;
    opts.seed = par::mix_seed(0x51D200, trial);
    opts.drop_top_routes = true;
    PathVectorSim sim(inst.ot, inst.net, dest, I(0), opts);
    const SimResult res = sim.run();
    ASSERT_TRUE(res.converged) << inst.desc;
    for (int v = 0; v < inst.net.num_nodes(); ++v) {
      const std::size_t vi = static_cast<std::size_t>(v);
      ASSERT_TRUE(truth.weight[vi].has_value());
      if (*truth.weight[vi] == I(inst.n)) {
        EXPECT_FALSE(res.routing.has_route(v))
            << inst.desc << " node " << v << ": top-weighted route selected";
      } else {
        ASSERT_TRUE(res.routing.has_route(v)) << inst.desc << " node " << v;
        EXPECT_EQ(*res.routing.weight[vi], *truth.weight[vi])
            << inst.desc << " node " << v;
      }
    }
  }
}

TEST(Differential, FixedShortestAndWidestInstancesStayExact) {
  // Anchors with independently known answers, immune to generator drift.
  {
    // Shortest path on the classic diamond.
    const OrderTransform sp = ot_shortest_path(9);
    const Bisemigroup bs = bs_shortest_path();
    Digraph g(3);
    ValueVec w;
    g.add_arc(1, 0);
    w.push_back(I(3));
    g.add_arc(2, 1);
    w.push_back(I(4));
    g.add_arc(2, 0);
    w.push_back(I(9));
    LabeledGraph net(g, w);
    const Routing dj = dijkstra(sp, net, 0, I(0));
    EXPECT_EQ(*dj.weight[1], I(3));
    EXPECT_EQ(*dj.weight[2], I(7));  // via 1 beats direct 9
    const BellmanResult bf = bellman_sync(sp, net, 0, I(0));
    EXPECT_EQ(*bf.routing.weight[2], I(7));
    const ClosureResult cl = kleene_closure(bs, arc_matrix(bs, g, w));
    EXPECT_EQ(*cl.star[2][0], I(7));
  }
  {
    // Widest path: bottleneck of the best branch.
    const OrderTransform bw = ot_widest_path(9);
    Digraph g(3);
    ValueVec w;
    g.add_arc(1, 0);
    w.push_back(I(2));
    g.add_arc(2, 1);
    w.push_back(I(8));
    g.add_arc(2, 0);
    w.push_back(I(1));
    LabeledGraph net(g, w);
    const Routing dj = dijkstra(bw, net, 0, Value::inf());
    EXPECT_EQ(*dj.weight[2], I(2));  // min(8, 2) beats 1
    const BellmanResult bf = bellman_sync(bw, net, 0, Value::inf());
    EXPECT_EQ(*bf.routing.weight[2], I(2));
  }
}

}  // namespace
}  // namespace mrt
