// The direct (componentwise) product of order transforms: semantics, exact
// property rules validated against the oracle, and multipath routing over
// the resulting partial order.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/inference.hpp"
#include "mrt/core/random_algebra.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/routing/minset.hpp"
#include "mrt/lang/interp.hpp"
#include "mrt/routing/optimality.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

const Checker& checker() {
  static const Checker chk;
  return chk;
}

Value pr(Value a, Value b) { return Value::pair(std::move(a), std::move(b)); }

TEST(DirectProduct, ComponentwiseComparison) {
  const OrderTransform p = direct(ot_shortest_path(5), ot_widest_path(5));
  // Better on both criteria: comparable.
  EXPECT_EQ(p.ord->cmp(pr(I(1), I(9)), pr(I(2), I(3))), Cmp::Less);
  // Trade-off: genuinely incomparable (unlike lex).
  EXPECT_EQ(p.ord->cmp(pr(I(1), I(3)), pr(I(2), I(9))), Cmp::Incomp);
  EXPECT_EQ(p.ord->cmp(pr(I(2), I(3)), pr(I(2), I(3))), Cmp::Equiv);
  // Application is componentwise.
  EXPECT_EQ(p.fns->apply(pr(I(2), I(4)), pr(I(1), I(9))), pr(I(3), I(4)));
  // Top is componentwise.
  EXPECT_TRUE(p.ord->is_top(pr(Value::inf(), I(0))));
  EXPECT_FALSE(p.ord->is_top(pr(Value::inf(), I(3))));
}

TEST(DirectProduct, DerivedProperties) {
  const OrderTransform p = direct(ot_shortest_path(5), ot_widest_path(5));
  // Both factors monotone ⇒ product monotone (no side condition, unlike lex).
  EXPECT_EQ(p.props.value(Prop::M_L), Tri::True);
  // Totality is lost: trade-offs are incomparable.
  EXPECT_EQ(p.props.value(Prop::Total), Tri::False);
  EXPECT_EQ(p.props.value(Prop::ND_L), Tri::True);
  // N fails in the bandwidth component.
  EXPECT_EQ(p.props.value(Prop::N_L), Tri::False);
}

class DirectSweep : public ::testing::TestWithParam<int> {};

TEST_P(DirectSweep, ExactRulesMatchOracle) {
  Rng rng(0xD12EC7 + static_cast<std::uint64_t>(GetParam()));
  OrderTransform s = random_order_transform(rng);
  OrderTransform t = random_order_transform(rng);
  s.props = checker().report(s);
  t.props = checker().report(t);
  const OrderTransform p = direct(s, t);
  const std::string ctx = "seed " + std::to_string(GetParam());

  for (Prop prop : {Prop::Total, Prop::Antisym, Prop::HasTop, Prop::OneClass,
                    Prop::M_L, Prop::N_L, Prop::C_L, Prop::ND_L, Prop::SInc_L,
                    Prop::TFix_L}) {
    mrt::testing::expect_exact(prop, p.props.value(prop),
                               checker().prop(p, prop).verdict, ctx);
  }
  // I is partially decided: must never contradict.
  mrt::testing::expect_consistent(Prop::Inc_L, p.props.value(Prop::Inc_L),
                                  checker().prop(p, Prop::Inc_L).verdict, ctx);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectSweep, ::testing::Range(0, 150));

TEST(DirectProduct, MultipathRoutingOverTradeoffs) {
  // delay × bandwidth componentwise: the min-set solver returns the Pareto
  // frontier at each node and matches exhaustive search (M holds).
  const OrderTransform p = direct(ot_shortest_path(4), ot_widest_path(4));
  Rng rng(0xDD);
  for (int trial = 0; trial < 8; ++trial) {
    Digraph g = random_connected(rng, 6, 4);
    LabeledGraph net = label_randomly(p, std::move(g), rng);
    const Value origin = pr(I(0), Value::inf());
    const MinSetResult ms = minset_bellman(p, net, 0, origin);
    ASSERT_TRUE(ms.converged);
    for (int v = 0; v < net.num_nodes(); ++v) {
      const ValueVec truth = global_min_set(p, net, v, 0, origin);
      ASSERT_EQ(ms.weights[(std::size_t)v].size(), truth.size()) << v;
      for (std::size_t i = 0; i < truth.size(); ++i) {
        EXPECT_TRUE(equiv_of(p.ord->cmp(ms.weights[(std::size_t)v][i],
                                        truth[i])) ||
                    ms.weights[(std::size_t)v][i] == truth[i]);
      }
    }
  }
}

TEST(DirectProduct, FrontiersCanHaveSeveralRoutes) {
  // A diamond with a fast-narrow and a slow-wide branch: the frontier at the
  // source has exactly two incomparable optima.
  const OrderTransform p = direct(ot_shortest_path(9), ot_widest_path(9));
  Digraph g(4);
  ValueVec labels;
  auto arc = [&](int u, int v, std::int64_t d, std::int64_t b) {
    g.add_arc(u, v);
    labels.push_back(pr(I(d), I(b)));
  };
  arc(1, 2, 1, 9);  // via 2: fast start, then narrow
  arc(2, 0, 1, 2);
  arc(1, 3, 3, 9);  // via 3: slow start, stays wide
  arc(3, 0, 3, 9);
  LabeledGraph net(std::move(g), std::move(labels));
  const Value origin = pr(I(0), Value::inf());
  const MinSetResult ms = minset_bellman(p, net, 0, origin);
  ASSERT_TRUE(ms.converged);
  EXPECT_EQ(normalize_set(ms.weights[1]),
            normalize_set({pr(I(2), I(2)), pr(I(6), I(9))}));
}

TEST(DirectProduct, LanguageSupport) {
  lang::Interp in;
  auto out = in.run("let p = prod(sp, bw)\nshow p");
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_NE(out->find("prod("), std::string::npos);
  EXPECT_NE(out->find("| total     | no"), std::string::npos);
}

}  // namespace
}  // namespace mrt
