// k-best routing (the section VI "reduction idea" implemented): reduction
// axioms, fixed-point correctness, agreement with Dijkstra on the best
// weight, and completeness against bounded walk enumeration.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/routing/dijkstra.hpp"
#include "mrt/routing/kbest.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

TEST(KBestReduce, SortsDedupesAndTruncates) {
  auto ord = ord_nat_leq();
  EXPECT_EQ(k_best(*ord, {I(5), I(2), I(5), I(9), I(1)}, 3),
            (ValueVec{I(1), I(2), I(5)}));
  EXPECT_EQ(k_best(*ord, {I(5)}, 3), ValueVec{I(5)});
  EXPECT_TRUE(k_best(*ord, {}, 3).empty());
  // Bandwidth order: best = widest first.
  auto bw = ord_nat_geq();
  EXPECT_EQ(k_best(*bw, {I(5), I(9), I(2)}, 2), (ValueVec{I(9), I(5)}));
}

TEST(KBestReduce, RequiresTotalOrder) {
  auto ord = ord_subset_bits(2);
  EXPECT_THROW(k_best(*ord, {I(0b01), I(0b10)}, 2), std::logic_error);
}

TEST(KBestReduce, ReductionAxiomsOneAndTwo) {
  auto ord = ord_chain(9);
  Rng rng(5);
  // (1) r(∅) = ∅ — covered above. (2) r_k(A ∪ B) = r_k(r_k(A) ∪ B).
  for (int trial = 0; trial < 50; ++trial) {
    const int k = 1 + static_cast<int>(rng.range(0, 3));
    ValueVec a, b;
    for (int i = 0; i < 6; ++i) {
      if (rng.chance(0.6)) a.push_back(I(rng.range(0, 9)));
      if (rng.chance(0.6)) b.push_back(I(rng.range(0, 9)));
    }
    ValueVec ab = a;
    ab.insert(ab.end(), b.begin(), b.end());
    ValueVec ra = k_best(*ord, a, k);
    ra.insert(ra.end(), b.begin(), b.end());
    EXPECT_EQ(k_best(*ord, ab, k), k_best(*ord, ra, k));
  }
}

TEST(KBestReduce, AxiomThreeNeedsInjectivity) {
  // Monotone + injective (the N property): axiom 3 holds.
  auto ord = ord_chain(9);
  auto plus1 = [](const Value& v) {
    return I(std::min<std::int64_t>(9, v.as_int() + 1));
  };
  ValueVec a{I(1), I(2), I(3)};
  auto image = [&](const ValueVec& xs, auto f) {
    ValueVec out;
    for (const Value& x : xs) out.push_back(f(x));
    return out;
  };
  EXPECT_EQ(k_best(*ord, image(a, plus1), 2),
            k_best(*ord, image(k_best(*ord, a, 2), plus1), 2));

  // Monotone but NOT injective (N fails): axiom 3 breaks — the measured
  // reason k-best needs the same N property as monotone lex products.
  auto collapse = [](const Value& v) {  // 1,2 ↦ 1; 3 ↦ 2 (monotone)
    return I(v.as_int() <= 2 ? 1 : 2);
  };
  EXPECT_NE(k_best(*ord, image(a, collapse), 2),
            k_best(*ord, image(k_best(*ord, a, 2), collapse), 2));
}

TEST(KBestBellman, LineGraphEnumeratesDetours) {
  // 1 ↔ 2 ↔ 0 with unit costs and a direct 1 → 0 arc of cost 5:
  // walks from 1: 2 (via 2), 4 (1-2-1-2-0), 5 (direct), 6, ...
  const OrderTransform sp = ot_shortest_path(9);
  Digraph g(3);
  ValueVec labels;
  auto arc = [&](int u, int v, std::int64_t c) {
    g.add_arc(u, v);
    labels.push_back(I(c));
  };
  arc(1, 0, 5);
  arc(1, 2, 1);
  arc(2, 0, 1);
  arc(2, 1, 1);
  LabeledGraph net(std::move(g), std::move(labels));

  const KBestResult r = kbest_bellman(sp, net, 0, I(0), 3);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.weights[1], (ValueVec{I(2), I(4), I(5)}));
  EXPECT_EQ(r.weights[2], (ValueVec{I(1), I(3), I(5)}));
  EXPECT_TRUE(kbest_certified(sp, net, 0, I(0), r));

  // Witness arcs (arc ids in insertion order: 0 = 1→0 cost 5, 1 = 1→2,
  // 2 = 2→0, 3 = 2→1): the origin entry at dest needs no arc; 2 and 4 at
  // node 1 ride the 1→2 arc, 5 the direct arc; at node 2, only the best
  // entry exits via 2→0, the detours bounce through 2→1.
  EXPECT_EQ(r.witness_arcs[0], (std::vector<int>{-1}));
  EXPECT_EQ(r.witness_arcs[1], (std::vector<int>{1, 1, 0}));
  EXPECT_EQ(r.witness_arcs[2], (std::vector<int>{2, 3, 3}));
}

// Every witness arc must actually achieve its entry via some successor
// entry, be the smallest such arc, and be -1 exactly for the origin entry
// at the destination — the per-entry refinement of kbest_certified.
TEST(KBestBellman, WitnessArcsAchieveTheirEntries) {
  Rng rng(0x6BE61);
  const OrderTransform sp = ot_shortest_path(5);
  for (int trial = 0; trial < 10; ++trial) {
    Digraph g = random_connected(rng, 8, 5);
    LabeledGraph net = label_randomly(sp, std::move(g), rng);
    const KBestResult kb = kbest_bellman(sp, net, 0, I(0), 3);
    ASSERT_TRUE(kb.converged);
    ASSERT_EQ(kb.witness_arcs.size(), kb.weights.size());
    for (int u = 0; u < net.num_nodes(); ++u) {
      const auto& wu = kb.weights[(std::size_t)u];
      const auto& au = kb.witness_arcs[(std::size_t)u];
      ASSERT_EQ(au.size(), wu.size()) << "trial " << trial << " node " << u;
      for (std::size_t i = 0; i < wu.size(); ++i) {
        auto achieves = [&](int id) {
          const int v = net.graph().arc(id).dst;
          for (const Value& wv : kb.weights[(std::size_t)v]) {
            if (sp.fns->apply(net.label(id), wv) == wu[i]) return true;
          }
          return false;
        };
        if (u == 0 && wu[i] == I(0)) {
          EXPECT_EQ(au[i], -1) << "trial " << trial;
          continue;
        }
        ASSERT_GE(au[i], 0) << "trial " << trial << " node " << u;
        EXPECT_EQ(net.graph().arc(au[i]).src, u);
        EXPECT_TRUE(achieves(au[i])) << "trial " << trial << " node " << u;
        for (int id : net.graph().out_arcs(u)) {
          if (id >= au[i]) break;
          EXPECT_FALSE(achieves(id))
              << "trial " << trial << " node " << u << ": arc " << id
              << " beats recorded witness " << au[i];
        }
      }
    }
  }
}

TEST(KBestBellman, BestWeightMatchesDijkstra) {
  Rng rng(0x6BE57);
  const OrderTransform sp = ot_shortest_path(5);
  for (int trial = 0; trial < 15; ++trial) {
    Digraph g = random_connected(rng, 8, 5);
    LabeledGraph net = label_randomly(sp, std::move(g), rng);
    const KBestResult kb = kbest_bellman(sp, net, 0, I(0), 4);
    ASSERT_TRUE(kb.converged);
    EXPECT_TRUE(kbest_certified(sp, net, 0, I(0), kb));
    const Routing d = dijkstra(sp, net, 0, I(0));
    for (int v = 0; v < net.num_nodes(); ++v) {
      ASSERT_FALSE(kb.weights[(std::size_t)v].empty());
      EXPECT_EQ(kb.weights[(std::size_t)v].front(), *d.weight[(std::size_t)v]);
      // Sorted strictly ascending, ≤ k entries.
      for (std::size_t i = 1; i < kb.weights[(std::size_t)v].size(); ++i) {
        EXPECT_TRUE(lt_of(sp.ord->cmp(kb.weights[(std::size_t)v][i - 1],
                                      kb.weights[(std::size_t)v][i])));
      }
      EXPECT_LE(kb.weights[(std::size_t)v].size(), 4u);
    }
  }
}

// Completeness against brute force: the k best distinct walk weights, with
// walks enumerated up to a length bound that provably covers the top k
// (every arc adds at least 1 under the increasing family used here).
TEST(KBestBellman, MatchesBoundedWalkEnumeration) {
  Rng rng(0x6BE58);
  const OrderTransform sp = ot_shortest_path(3);
  for (int trial = 0; trial < 8; ++trial) {
    Digraph g = random_connected(rng, 5, 3);
    LabeledGraph net = label_randomly(sp, std::move(g), rng);
    const int k = 3;
    const KBestResult kb = kbest_bellman(sp, net, 0, I(0), k);
    ASSERT_TRUE(kb.converged);

    // Enumerate all walk weights up to length bound L by dynamic programming
    // over (length, node): W[l][u] = set of weights of length-l walks u → 0.
    const int kMaxLen = 14;  // top-3 distinct weights are ≤ 3·maxc + slack
    const int n = net.num_nodes();
    std::vector<std::vector<ValueVec>> W(
        static_cast<std::size_t>(kMaxLen + 1),
        std::vector<ValueVec>(static_cast<std::size_t>(n)));
    W[0][0] = {I(0)};
    for (int l = 1; l <= kMaxLen; ++l) {
      for (int u = 0; u < n; ++u) {
        ValueVec pool;
        for (int id : net.graph().out_arcs(u)) {
          const int v = net.graph().arc(id).dst;
          for (const Value& w : W[(std::size_t)l - 1][(std::size_t)v]) {
            pool.push_back(sp.fns->apply(net.label(id), w));
          }
        }
        W[(std::size_t)l][(std::size_t)u] = normalize_set(pool);
      }
    }
    for (int u = 0; u < n; ++u) {
      ValueVec all;
      if (u == 0) all.push_back(I(0));
      for (int l = 1; l <= kMaxLen; ++l) {
        const auto& wl = W[(std::size_t)l][(std::size_t)u];
        all.insert(all.end(), wl.begin(), wl.end());
      }
      EXPECT_EQ(kb.weights[(std::size_t)u], k_best(*sp.ord, all, k))
          << "trial " << trial << " node " << u;
    }
  }
}

TEST(KBestBellman, CompiledPathIsByteIdenticalToBoxed) {
  // The flat k-best iteration keeps state as weight words and decodes only
  // at the end (plus equivalence tie-breaks); because the encoding is
  // injective, its results must match the boxed path byte for byte —
  // weights, iteration count, and convergence flag alike.
  Rng rng(0x6BE60);
  for (int trial = 0; trial < 12; ++trial) {
    const OrderTransform sp = ot_shortest_path(4 + trial % 5);
    Digraph g = random_connected(rng, 5 + trial % 4, 3 + trial % 3);
    LabeledGraph net = label_randomly(sp, std::move(g), rng);
    const compile::WeightEngine eng(sp);
    const compile::CompiledNet cn = compile::CompiledNet::make(eng, net);
    ASSERT_TRUE(cn.ok()) << "trial " << trial;
    const int k = 1 + trial % 4;
    const KBestResult boxed = kbest_bellman(sp, net, 0, I(0), k);
    const KBestResult flat = kbest_bellman(sp, net, 0, I(0), k, {}, &cn);
    ASSERT_EQ(boxed.converged, flat.converged) << "trial " << trial;
    ASSERT_EQ(boxed.iterations, flat.iterations) << "trial " << trial;
    ASSERT_EQ(boxed.weights.size(), flat.weights.size());
    for (std::size_t v = 0; v < boxed.weights.size(); ++v) {
      EXPECT_EQ(boxed.weights[v], flat.weights[v])
          << "trial " << trial << " node " << v;
      EXPECT_EQ(boxed.witness_arcs[v], flat.witness_arcs[v])
          << "trial " << trial << " node " << v;
    }
    EXPECT_TRUE(kbest_certified(sp, net, 0, I(0), flat)) << "trial " << trial;
  }
}

TEST(KBestBellman, KEqualsOneIsPlainBellman) {
  Rng rng(0x6BE59);
  const OrderTransform bw = ot_widest_path(5);
  Digraph g = random_connected(rng, 6, 4);
  LabeledGraph net = label_randomly(bw, std::move(g), rng);
  const KBestResult kb = kbest_bellman(bw, net, 0, Value::inf(), 1);
  ASSERT_TRUE(kb.converged);
  const Routing d = dijkstra(bw, net, 0, Value::inf());
  for (int v = 0; v < net.num_nodes(); ++v) {
    ASSERT_EQ(kb.weights[(std::size_t)v].size(), 1u);
    EXPECT_EQ(kb.weights[(std::size_t)v].front(), *d.weight[(std::size_t)v]);
  }
}

}  // namespace
}  // namespace mrt
