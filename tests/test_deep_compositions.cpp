// Deep random combinator trees: the integration test of the whole inference
// engine. Random expressions over {lex, prod, scoped, delta, left, right,
// union, add_top, lex_omega} applied to random finite base algebras — at
// every node of every tree, every derived verdict must agree with brute
// force whenever both decide.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/random_algebra.hpp"

namespace mrt {
namespace {

const Checker& checker() {
  static const Checker chk;
  return chk;
}

// Carrier-size guard: products of products explode; cap enumeration size.
std::size_t carrier_size(const OrderTransform& a) {
  auto e = a.ord->enumerate();
  return e ? e->size() : 1'000'000;
}

std::size_t label_count(const OrderTransform& a) {
  auto l = a.fns->labels();
  return l ? l->size() : 1'000'000;
}

OrderTransform random_tree(Rng& rng, int depth, int& budget) {
  if (depth == 0 || budget <= 0) {
    RandomConfig cfg;
    cfg.max_elems = 3;
    cfg.max_fns = 2;
    OrderTransform leaf = random_order_transform(rng, cfg);
    leaf.props = checker().report(leaf);
    return leaf;
  }
  --budget;
  const int op = static_cast<int>(rng.range(0, 7));
  switch (op) {
    case 0: {
      OrderTransform s = random_tree(rng, depth - 1, budget);
      OrderTransform t = random_tree(rng, depth - 1, budget);
      return lex(s, t);
    }
    case 1: {
      OrderTransform s = random_tree(rng, depth - 1, budget);
      OrderTransform t = random_tree(rng, depth - 1, budget);
      return direct(s, t);
    }
    case 2: {
      OrderTransform s = random_tree(rng, depth - 1, budget);
      OrderTransform t = random_tree(rng, depth - 1, budget);
      return scoped(s, t);
    }
    case 3: {
      OrderTransform s = random_tree(rng, depth - 1, budget);
      OrderTransform t = random_tree(rng, depth - 1, budget);
      return delta(s, t);
    }
    case 4: {
      OrderTransform s = random_tree(rng, depth - 1, budget);
      return rng.chance(0.5) ? left(s) : right(s);
    }
    case 5: {
      OrderTransform s = random_tree(rng, depth - 1, budget);
      return fn_union(left(s), right(s));
    }
    case 6: {
      OrderTransform s = random_tree(rng, depth - 1, budget);
      // add_top requires a fresh sentinel: skip omega-containing carriers.
      if (s.ord->contains(Value::omega())) return s;
      return add_top(s);
    }
    default: {
      OrderTransform s = random_tree(rng, depth - 1, budget);
      OrderTransform t = random_tree(rng, depth - 1, budget);
      if (s.ord->has_top()) return lex_omega(s, t);
      return lex(s, t);
    }
  }
}

class DeepCompositions : public ::testing::TestWithParam<int> {};

TEST_P(DeepCompositions, EngineNeverContradictsOracle) {
  Rng rng(0xDEE9 + static_cast<std::uint64_t>(GetParam()));
  int budget = 4;  // combinator applications per tree
  const OrderTransform tree = random_tree(rng, 3, budget);
  if (carrier_size(tree) > 40 || label_count(tree) > 40) {
    return;  // keep the oracle exhaustive and fast
  }
  for (Prop p : props_for(StructureKind::OrderTransform)) {
    const CheckResult oracle = checker().prop(tree, p);
    mrt::testing::expect_consistent(
        p, tree.props.value(p), oracle.verdict,
        "seed " + std::to_string(GetParam()) + " on " + tree.name);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepCompositions, ::testing::Range(0, 200));

// Coverage meter: across the sweep, the engine should *decide* (not abstain
// on) the overwhelming majority of headline-property questions — that is the
// metalanguage's value proposition.
TEST(DeepCompositions, EngineDecidesMostQuestions) {
  Rng rng(0xDEC1DE);
  long decided = 0, total = 0;
  for (int i = 0; i < 150; ++i) {
    int budget = 4;
    const OrderTransform tree = random_tree(rng, 3, budget);
    for (Prop p : {Prop::M_L, Prop::ND_L, Prop::Inc_L, Prop::N_L, Prop::C_L}) {
      ++total;
      decided += tree.props.value(p) != Tri::Unknown ? 1 : 0;
    }
  }
  // Abstentions concentrate in the documented sufficient-only corners
  // (lex_omega, direct's mixed I cases); measured coverage sits near 89%.
  EXPECT_GT(static_cast<double>(decided) / static_cast<double>(total), 0.85)
      << decided << "/" << total;
}

}  // namespace
}  // namespace mrt
