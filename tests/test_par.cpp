// The mrt::par execution layer: primitive correctness (coverage, exception
// propagation, lowest-match semantics, ordered reduction) and the
// determinism contract — checker verdicts, counterexamples, census tallies
// and routing fixed points must be identical for every thread limit.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "mrt/core/random_algebra.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/par/par.hpp"
#include "mrt/routing/bellman.hpp"
#include "mrt/routing/closure.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

/// Pins the worker limit for one test and restores the ambient value after,
/// so MRT_THREADS-driven runs (e.g. the tsan preset) are not disturbed.
class ThreadLimitGuard {
 public:
  explicit ThreadLimitGuard(int n) : saved_(par::thread_limit()) {
    par::set_thread_limit(n);
  }
  ~ThreadLimitGuard() { par::set_thread_limit(saved_); }
  ThreadLimitGuard(const ThreadLimitGuard&) = delete;
  ThreadLimitGuard& operator=(const ThreadLimitGuard&) = delete;

 private:
  int saved_;
};

TEST(Par, ThreadLimitOverridable) {
  ThreadLimitGuard g(3);
  EXPECT_EQ(par::thread_limit(), 3);
  par::set_thread_limit(0);  // clamped
  EXPECT_EQ(par::thread_limit(), 1);
  EXPECT_GE(par::hardware_threads(), 1);
}

TEST(Par, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadLimitGuard g(4);
  const std::size_t n = 10007;  // prime: uneven tail chunk
  std::vector<int> hits(n, 0);
  par::parallel_for(n, 64, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];  // ranges are disjoint
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(Par, ParallelForEmptyAndSingleton) {
  ThreadLimitGuard g(4);
  int calls = 0;
  par::parallel_for(0, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  par::parallel_for(1, 8, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 1u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(Par, ExceptionFromLowestChunkPropagatesAndPoolSurvives) {
  ThreadLimitGuard g(4);
  // Every chunk throws its begin index; chunk 0 is always claimed first, so
  // the lowest-indexed exception — "0" — is the one rethrown.
  try {
    par::parallel_for(1000, 10, [](std::size_t b, std::size_t) {
      throw std::runtime_error(std::to_string(b));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
  // The pool is still usable after a failed batch.
  std::vector<int> hits(100, 0);
  par::parallel_for(hits.size(), 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Par, FindFirstReturnsGlobalMinimumAtEveryLimit) {
  const auto pred = [](std::size_t i) { return i % 1000 == 737; };
  for (int limit : {1, 4}) {
    ThreadLimitGuard g(limit);
    EXPECT_EQ(par::parallel_find_first(10000, 64, pred), 737u)
        << "limit " << limit;
    EXPECT_EQ(par::parallel_find_first(700, 64, pred), 700u)  // no match
        << "limit " << limit;
    EXPECT_EQ(par::parallel_find_first(0, 64, pred), 0u);
  }
}

TEST(Par, ReduceMergesInChunkOrder) {
  // String concatenation is non-commutative: the result is only stable if
  // per-chunk accumulators merge in ascending chunk order, as documented.
  std::string expected;
  for (int i = 0; i < 257; ++i) expected += std::to_string(i) + ",";
  for (int limit : {1, 4}) {
    ThreadLimitGuard g(limit);
    const std::string got = par::parallel_reduce<std::string>(
        257, 10, std::string(),
        [](std::size_t b, std::size_t e, std::string& acc) {
          for (std::size_t i = b; i < e; ++i) {
            acc += std::to_string(i) + ",";
          }
        },
        [](std::string& into, std::string& from) { into += from; });
    EXPECT_EQ(got, expected) << "limit " << limit;
  }
}

TEST(Par, MixSeedSeparatesStreams) {
  // Per-iteration derivation: nearby indices and nearby seeds must land far
  // apart, and the map must be reproducible (it is constexpr).
  static_assert(par::mix_seed(1, 2) == par::mix_seed(1, 2));
  EXPECT_NE(par::mix_seed(42, 0), par::mix_seed(42, 1));
  EXPECT_NE(par::mix_seed(42, 0), par::mix_seed(43, 0));
  Rng a(par::mix_seed(7, 0)), b(par::mix_seed(7, 1));
  EXPECT_NE(a.next(), b.next());
}

TEST(Par, CensusStyleReduceIsThreadCountInvariant) {
  // The bench::parallel_sweep shape: per-iteration Rng from (seed, i),
  // per-chunk accumulation, ordered merge. Totals must match the limit-1 run.
  const auto sweep = [] {
    return par::parallel_reduce<std::vector<std::uint64_t>>(
        500, 8, {},
        [](std::size_t b, std::size_t e, std::vector<std::uint64_t>& acc) {
          for (std::size_t i = b; i < e; ++i) {
            Rng rng(par::mix_seed(0xBEEF, i));
            acc.push_back(rng.range(0, 1'000'000));
          }
        },
        [](std::vector<std::uint64_t>& into, std::vector<std::uint64_t>& from) {
          into.insert(into.end(), from.begin(), from.end());
        });
  };
  ThreadLimitGuard g(1);
  const auto seq = sweep();
  par::set_thread_limit(4);
  EXPECT_EQ(sweep(), seq);
}

// --- Checker equivalence: the tentpole determinism contract. -------------

// 17 elements → 17³ = 4913 associativity tuples, above the checker's
// parallel threshold, so the limit-4 run exercises the parallel scan.
constexpr int kBigCarrier = 17;

TEST(ParChecker, ExhaustiveRefutationMatchesSequential) {
  // A random magma is almost surely non-associative: both runs must refute
  // with the *same* counterexample (the lowest-enumeration-index one).
  Checker chk;
  Rng rng(0x9A93A);
  const SemigroupPtr m = random_magma(rng, kBigCarrier);
  ThreadLimitGuard g(1);
  const CheckResult seq = chk.semigroup_prop(*m, Prop::Assoc);
  par::set_thread_limit(4);
  const CheckResult parr = chk.semigroup_prop(*m, Prop::Assoc);
  EXPECT_EQ(seq.verdict, parr.verdict);
  EXPECT_EQ(seq.exhaustive, parr.exhaustive);
  EXPECT_EQ(seq.detail, parr.detail);
  ASSERT_EQ(seq.verdict, Tri::False);  // seed chosen to refute
  EXPECT_NE(seq.detail.find("a="), std::string::npos);
}

TEST(ParChecker, ExhaustiveConfirmationMatchesSequential) {
  // A chain semilattice is associative: both runs must scan all 4913 tuples
  // and report the same exhaustive confirmation.
  Checker chk;
  Rng rng(0x5E9A77);
  const SemigroupPtr m = random_chain_semilattice(rng, kBigCarrier);
  ThreadLimitGuard g(1);
  const CheckResult seq = chk.semigroup_prop(*m, Prop::Assoc);
  par::set_thread_limit(4);
  const CheckResult parr = chk.semigroup_prop(*m, Prop::Assoc);
  EXPECT_EQ(seq.verdict, Tri::True);
  EXPECT_EQ(parr.verdict, Tri::True);
  EXPECT_TRUE(seq.exhaustive);
  EXPECT_TRUE(parr.exhaustive);
  EXPECT_EQ(seq.detail, parr.detail);
  EXPECT_NE(seq.detail.find("exhaustive over 4913 tuples"), std::string::npos)
      << seq.detail;
}

TEST(ParChecker, AbandonedEnumerationReportsCoverage) {
  // Satellite (f): when max_tuples forces sampling on a finite carrier, the
  // result must say how much of the space was actually covered.
  CheckLimits lim;
  lim.samples = 500;
  lim.max_tuples = 1000;  // < 4913
  Checker chk(lim);
  Rng rng(0x5E9A77);
  const SemigroupPtr m = random_chain_semilattice(rng, kBigCarrier);
  const CheckResult r = chk.semigroup_prop(*m, Prop::Assoc);
  EXPECT_EQ(r.verdict, Tri::Unknown);
  EXPECT_FALSE(r.exhaustive);
  EXPECT_NE(r.detail.find("covered 500 of 4913 tuples"), std::string::npos)
      << r.detail;
  EXPECT_NE(r.detail.find("exhaustive cap 1000"), std::string::npos)
      << r.detail;
}

// --- Routing solver equivalence. -----------------------------------------

TEST(ParRouting, BellmanFixedPointIsThreadCountInvariant) {
  const OrderTransform alg = ot_shortest_path(6);
  Rng rng(0xBE11);
  Digraph g = random_connected(rng, 200, 400);
  const LabeledGraph net = label_randomly(alg, std::move(g), rng);

  ThreadLimitGuard guard(1);
  const BellmanResult seq = bellman_sync(alg, net, 0, I(0));
  par::set_thread_limit(4);
  const BellmanResult parr = bellman_sync(alg, net, 0, I(0));

  EXPECT_EQ(seq.iterations, parr.iterations);
  EXPECT_EQ(seq.converged, parr.converged);
  ASSERT_EQ(seq.routing.weight.size(), parr.routing.weight.size());
  for (std::size_t v = 0; v < seq.routing.weight.size(); ++v) {
    EXPECT_EQ(seq.routing.weight[v], parr.routing.weight[v]) << "node " << v;
    EXPECT_EQ(seq.routing.next_arc[v], parr.routing.next_arc[v])
        << "node " << v;
  }
}

TEST(ParRouting, ClosuresAreThreadCountInvariant) {
  const Bisemigroup sp = bs_shortest_path();
  Rng rng(0xC105E);
  Digraph g = random_connected(rng, 64, 128);
  ValueVec w;
  for (int id = 0; id < g.num_arcs(); ++id) {
    w.push_back(I(rng.range(1, 9)));
  }
  const WeightMatrix a = arc_matrix(sp, g, w);

  ThreadLimitGuard guard(1);
  const ClosureResult kseq = kleene_closure(sp, a);
  const ClosureResult iseq = iterative_closure(sp, a, {});
  par::set_thread_limit(4);
  const ClosureResult kpar = kleene_closure(sp, a);
  const ClosureResult ipar = iterative_closure(sp, a, {});

  EXPECT_EQ(kseq.star, kpar.star);
  EXPECT_EQ(iseq.star, ipar.star);
  EXPECT_EQ(iseq.iterations, ipar.iterations);
  EXPECT_TRUE(ipar.converged);
  EXPECT_EQ(kseq.star, iseq.star);  // the two schemes agree here too
}

}  // namespace
}  // namespace mrt
