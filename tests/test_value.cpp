#include <gtest/gtest.h>

#include <unordered_set>

#include "mrt/core/value.hpp"

namespace mrt {
namespace {

TEST(Value, KindsAndAccessors) {
  EXPECT_EQ(Value::unit().kind(), Value::Kind::Unit);
  EXPECT_EQ(Value::integer(5).as_int(), 5);
  EXPECT_EQ(Value::real(0.5).as_real(), 0.5);
  EXPECT_TRUE(Value::inf().is_inf());
  EXPECT_TRUE(Value::omega().is_omega());

  const Value p = Value::pair(Value::integer(1), Value::integer(2));
  EXPECT_TRUE(p.is_tuple());
  EXPECT_EQ(p.first().as_int(), 1);
  EXPECT_EQ(p.second().as_int(), 2);

  const Value t = Value::tagged(3, Value::integer(9));
  EXPECT_EQ(t.tag(), 3);
  EXPECT_EQ(t.untagged().as_int(), 9);
}

TEST(Value, AccessorPreconditions) {
  EXPECT_THROW(Value::integer(1).as_real(), std::logic_error);
  EXPECT_THROW(Value::unit().as_int(), std::logic_error);
  EXPECT_THROW(Value::integer(1).first(), std::logic_error);
  EXPECT_THROW(Value::tuple({Value::integer(1)}).first(), std::logic_error);
  EXPECT_THROW(Value::integer(1).untagged(), std::logic_error);
}

TEST(Value, EqualityIsStructural) {
  EXPECT_EQ(Value::integer(3), Value::integer(3));
  EXPECT_NE(Value::integer(3), Value::integer(4));
  EXPECT_NE(Value::integer(3), Value::real(3.0));
  EXPECT_EQ(Value::pair(Value::inf(), Value::integer(0)),
            Value::pair(Value::inf(), Value::integer(0)));
  EXPECT_NE(Value::tagged(1, Value::integer(0)),
            Value::tagged(2, Value::integer(0)));
  EXPECT_EQ(Value::omega(), Value::omega());
}

TEST(Value, CanonicalOrderIsTotalAndConsistent) {
  const ValueVec vs = {
      Value::unit(),
      Value::integer(-1),
      Value::integer(7),
      Value::real(0.25),
      Value::inf(),
      Value::omega(),
      Value::pair(Value::integer(1), Value::integer(2)),
      Value::pair(Value::integer(1), Value::integer(3)),
      Value::tuple({Value::integer(1)}),
      Value::tagged(1, Value::integer(5)),
      Value::tagged(2, Value::integer(5)),
  };
  for (const Value& a : vs) {
    EXPECT_EQ(a.compare(a), 0);
    for (const Value& b : vs) {
      EXPECT_EQ(a.compare(b), -b.compare(a));
      for (const Value& c : vs) {
        if (a.compare(b) < 0 && b.compare(c) < 0) {
          EXPECT_LT(a.compare(c), 0);
        }
      }
    }
  }
}

TEST(Value, TupleOrderIsLexThenLength) {
  const Value ab = Value::pair(Value::integer(1), Value::integer(2));
  const Value ac = Value::pair(Value::integer(1), Value::integer(3));
  const Value a = Value::tuple({Value::integer(1)});
  EXPECT_LT(ab.compare(ac), 0);
  EXPECT_LT(a.compare(ab), 0);  // shorter prefix first
}

TEST(Value, HashAgreesWithEquality) {
  const Value a = Value::pair(Value::integer(1), Value::inf());
  const Value b = Value::pair(Value::integer(1), Value::inf());
  EXPECT_EQ(a.hash(), b.hash());

  std::unordered_set<Value, ValueHash> set;
  set.insert(a);
  set.insert(b);
  EXPECT_EQ(set.size(), 1u);
  set.insert(Value::integer(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Value, ToString) {
  EXPECT_EQ(Value::unit().to_string(), "()");
  EXPECT_EQ(Value::integer(42).to_string(), "42");
  EXPECT_EQ(Value::inf().to_string(), "inf");
  EXPECT_EQ(Value::omega().to_string(), "omega");
  EXPECT_EQ(Value::real(0.5).to_string(), "0.5");
  EXPECT_EQ(Value::pair(Value::integer(1), Value::inf()).to_string(),
            "(1, inf)");
  EXPECT_EQ(Value::tagged(2, Value::integer(7)).to_string(), "#2:7");
  EXPECT_EQ(
      Value::tuple({Value::pair(Value::integer(1), Value::integer(2))})
          .to_string(),
      "((1, 2))");
}

TEST(Value, CopyIsCheapAndIndependentlyUsable) {
  Value a = Value::tuple({Value::integer(1), Value::integer(2)});
  Value b = a;  // shares the payload
  EXPECT_EQ(a, b);
  a = Value::integer(0);
  EXPECT_EQ(b.as_tuple().size(), 2u);
}

TEST(Value, NormalizeSetSortsAndDedupes) {
  ValueVec xs = {Value::integer(3), Value::integer(1), Value::integer(3),
                 Value::inf(), Value::integer(1)};
  ValueVec norm = normalize_set(std::move(xs));
  ASSERT_EQ(norm.size(), 3u);
  EXPECT_EQ(norm[0], Value::integer(1));
  EXPECT_EQ(norm[1], Value::integer(3));
  EXPECT_EQ(norm[2], Value::inf());
}

}  // namespace
}  // namespace mrt
