// Theorem 5: exact local-optima rules for lexicographic products.
//
// Algebraic quadrants (bisemigroups, semigroup transforms) use the paper's
// rules verbatim — they are exact as stated:
//     ND(S ⃗× T) ⟺ I(S) ∨ (ND(S) ∧ ND(T))
//     I(S ⃗× T)  ⟺ I(S) ∨ (ND(S) ∧ I(T))
//
// Ordered quadrants use the ⊤-aware refinement (DESIGN.md §1.1); these tests
// validate the refinement as exact and confirm that the paper's literal
// Fig. 3 rules coincide with it whenever the first factor is ⊤-free.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/inference.hpp"
#include "mrt/core/random_algebra.hpp"

namespace mrt {
namespace {

using mrt::testing::expect_exact;

const Checker& checker() {
  static const Checker chk;
  return chk;
}

template <typename A>
A with_report(A a) {
  a.props = checker().report(a);
  return a;
}

// --- Algebraic quadrants: the paper's rules, exact --------------------------

class Thm5SemigroupTransform : public ::testing::TestWithParam<int> {};

TEST_P(Thm5SemigroupTransform, PaperRulesExact) {
  Rng rng(0x10CA1 + static_cast<std::uint64_t>(GetParam()));
  const SemigroupTransform s = with_report(random_semigroup_transform(rng));
  SemigroupTransform t = random_semigroup_transform(rng);
  if (!t.add->identity()) return;
  t.props = checker().report(t);
  const SemigroupTransform p = lex(s, t);

  const std::string ctx = "seed " + std::to_string(GetParam());
  for (Prop prop : {Prop::ND_L, Prop::Inc_L}) {
    expect_exact(prop, p.props.value(prop), checker().prop(p, prop).verdict,
                 ctx);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Thm5SemigroupTransform,
                         ::testing::Range(0, 120));

class Thm5Bisemigroup : public ::testing::TestWithParam<int> {};

TEST_P(Thm5Bisemigroup, PaperRulesExact) {
  Rng rng(0xB10CA + static_cast<std::uint64_t>(GetParam()));
  const Bisemigroup s = with_report(random_bisemigroup(rng));
  Bisemigroup t = random_bisemigroup(rng);
  if (!t.add->identity()) return;
  t.props = checker().report(t);
  const Bisemigroup p = lex(s, t);

  const std::string ctx = "seed " + std::to_string(GetParam());
  for (Prop prop : {Prop::ND_L, Prop::ND_R, Prop::Inc_L, Prop::Inc_R}) {
    expect_exact(prop, p.props.value(prop), checker().prop(p, prop).verdict,
                 ctx);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Thm5Bisemigroup, ::testing::Range(0, 120));

// --- Ordered quadrants: refined rules exact ---------------------------------

class Thm5OrderTransform : public ::testing::TestWithParam<int> {};

TEST_P(Thm5OrderTransform, RefinedRulesExact) {
  Rng rng(0x07CA1 + static_cast<std::uint64_t>(GetParam()));
  const OrderTransform s = with_report(random_order_transform(rng));
  const OrderTransform t = with_report(random_order_transform(rng));
  const OrderTransform p = lex(s, t);

  const std::string ctx = "seed " + std::to_string(GetParam());
  for (Prop prop : {Prop::ND_L, Prop::Inc_L, Prop::SInc_L, Prop::TFix_L,
                    Prop::HasTop, Prop::Total, Prop::Antisym}) {
    expect_exact(prop, p.props.value(prop), checker().prop(p, prop).verdict,
                 ctx);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Thm5OrderTransform, ::testing::Range(0, 150));

// The paper's literal Fig. 3 rules are exact on plain ⃗× under ⊤-freeness:
// the ND rule needs only S ⊤-free; the I rule needs both factors ⊤-free
// (with a ⊤ in T, pairs (a, ⊤_T) with a ~ f(a) are non-top in the product
// but cannot strictly increase — a second refinement the sweep uncovered).
TEST_P(Thm5OrderTransform, PaperRuleCoincidesWhenTopFree) {
  Rng rng(0x07CA1 + static_cast<std::uint64_t>(GetParam()));
  const OrderTransform s = with_report(random_order_transform(rng));
  const OrderTransform t = with_report(random_order_transform(rng));
  if (s.props.value(Prop::HasTop) != Tri::False) return;  // only ⊤-free S
  const OrderTransform p = lex(s, t);

  const std::string ctx = "seed " + std::to_string(GetParam());
  expect_exact(Prop::ND_L, paper_rule_nd_lex(s.props, t.props),
               checker().prop(p, Prop::ND_L).verdict, ctx + " (paper ND)");
  if (t.props.value(Prop::HasTop) == Tri::False) {
    expect_exact(Prop::Inc_L, paper_rule_inc_lex(s.props, t.props),
                 checker().prop(p, Prop::Inc_L).verdict, ctx + " (paper I)");
  }
}

class Thm5OrderSemigroup : public ::testing::TestWithParam<int> {};

TEST_P(Thm5OrderSemigroup, RefinedRulesExact) {
  Rng rng(0x05CA1 + static_cast<std::uint64_t>(GetParam()));
  const OrderSemigroup s = with_report(random_order_semigroup(rng));
  const OrderSemigroup t = with_report(random_order_semigroup(rng));
  const OrderSemigroup p = lex(s, t);

  const std::string ctx = "seed " + std::to_string(GetParam());
  for (Prop prop : {Prop::ND_L, Prop::ND_R, Prop::Inc_L, Prop::Inc_R,
                    Prop::SInc_L, Prop::SInc_R, Prop::TFix_L, Prop::TFix_R}) {
    expect_exact(prop, p.props.value(prop), checker().prop(p, prop).verdict,
                 ctx);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Thm5OrderSemigroup, ::testing::Range(0, 150));

// --- The documented counterexample to the literal Fig. 3 reading ------------

TEST(Thm5TopSubtlety, PaperRuleFailsWithToppedFirstFactor) {
  // S = shortest paths over ℕ∪{∞} (I holds, ⊤ = ∞ exists);
  // T = a two-class order with a genuinely decreasing function.
  const Checker& chk = checker();
  OrderTransform s = ot_shortest_path(3);
  OrderTransform t = mrt::testing::make_ot(
      {{1, 1}, {0, 1}},  // 0 < 1
      {{0, 0}},          // f: both ↦ 0 — decreases 1 to 0
      "decreasing_t");
  t.props = chk.report(t);
  ASSERT_EQ(t.props.value(Prop::ND_L), Tri::False);

  // Literal Fig. 3: ND(S ⃗× T) ⟺ I(S) ∨ … = True via I(S).
  s.props.set(Prop::Inc_L, Tri::True, "axiom");
  s.props.set(Prop::ND_L, Tri::True, "axiom");
  EXPECT_EQ(paper_rule_nd_lex(s.props, t.props), Tri::True);

  // But the plain lexicographic product decreases at ((∞, 1)) via (+c, f):
  // (∞, 1) ↦ (∞, 0) < (∞, 1). The oracle refutes ND.
  const OrderTransform p = lex(s, t);
  EXPECT_EQ(chk.prop(p, Prop::ND_L).verdict, Tri::False);
  // The refined rule agrees with the oracle.
  EXPECT_EQ(p.props.value(Prop::ND_L), Tri::False);
}

// --- Corollary 2: n-ary increasing products ---------------------------------

// Corollary 2's guard pattern (ND-prefix, one increasing factor, arbitrary
// suffix) under plain ⃗×. A measured refinement: on *finite* algebras a
// strictly-increasing-everywhere factor cannot exist (every finite preorder
// has maximal elements), so the corollary's positive case needs a ⊤-free
// guard — here, shortest paths over plain ℕ.
TEST(Cor2, GuardPatternWithTopFreeGuard) {
  const Checker& chk = checker();

  // ND prefix: widest path over plain ℕ (has a top, 0, which is fixed).
  OrderTransform nd{"bw.nat", ord_nat_geq(false), fam_min_const(0, 5), {}};
  nd.props = chk.report(nd);
  EXPECT_NE(nd.props.value(Prop::ND_L), Tri::False);

  // Increasing guard: +c over plain ℕ — strictly increasing *everywhere*.
  OrderTransform guard{"sp.nat", ord_nat_leq(false), fam_add_const(1, 5), {}};
  guard.props = chk.report(guard);
  EXPECT_NE(guard.props.value(Prop::SInc_L), Tri::False);
  guard.props.set(Prop::SInc_L, Tri::True, "axiom: a < a+c on plain N, c>=1");
  guard.props.set(Prop::ND_L, Tri::True, "axiom: a <= a+c");
  guard.props.set(Prop::Inc_L, Tri::True, "axiom: no top on plain N");
  guard.props.set(Prop::HasTop, Tri::False, "axiom: plain N unbounded");
  nd.props.set(Prop::ND_L, Tri::True, "axiom: min(a,c) <=num a");

  // Arbitrary suffix: a finite table with no useful property at all.
  OrderTransform anything{"any", ord_chain(2),
                          fam_table("f", 3, {{2, 0, 1}}), {}};
  anything.props = chk.report(anything);
  ASSERT_EQ(anything.props.value(Prop::ND_L), Tri::False);

  // ND-prefix, ⊤-free increasing guard, arbitrary suffix ⇒ increasing.
  const OrderTransform p = lex(lex(nd, guard), anything);
  EXPECT_EQ(p.props.value(Prop::Inc_L), Tri::True);
  // Sampled corroboration: the oracle finds no counterexample.
  EXPECT_NE(chk.prop(p, Prop::Inc_L).verdict, Tri::False);

  // Without the guard the product is not increasing (exhaustive refutation
  // is possible here because the failure is at finite reachable points).
  const OrderTransform q = lex(nd, anything);
  EXPECT_EQ(q.props.value(Prop::Inc_L), Tri::False);
  EXPECT_NE(chk.prop(q, Prop::Inc_L).verdict, Tri::True);

  // Guard too late: an arbitrary factor before the guard breaks it.
  const OrderTransform r = lex(anything, guard);
  EXPECT_EQ(r.props.value(Prop::Inc_L), Tri::False);
}

// The finite-case refutation that motivated the ⊤-free reading: a finite
// increasing guard (⊤ exempted) does NOT make the plain-⃗× product
// increasing, because (a, ⊤_guard) pairs are non-top yet cannot strictly
// increase.
TEST(Cor2, FiniteToppedGuardFailsUnderPlainLex) {
  const Checker& chk = checker();
  OrderTransform nd = ot_chain_add(3, 0, 2);  // ND but not I (c = 0 allowed)
  nd.props = chk.report(nd);
  ASSERT_EQ(nd.props.value(Prop::ND_L), Tri::True);
  ASSERT_EQ(nd.props.value(Prop::Inc_L), Tri::False);

  OrderTransform inc = ot_chain_add(3, 1, 2);  // increasing, ⊤ = 3 fixed
  inc.props = chk.report(inc);
  ASSERT_EQ(inc.props.value(Prop::Inc_L), Tri::True);

  const OrderTransform p = lex(nd, inc);
  EXPECT_EQ(chk.prop(p, Prop::Inc_L).verdict, Tri::False);
  EXPECT_EQ(p.props.value(Prop::Inc_L), Tri::False);  // refined rule agrees
}

}  // namespace
}  // namespace mrt
