// Base function families and remaining component APIs.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/core/bases.hpp"
#include "mrt/core/lex.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

TEST(FamId, SingleIdentityLabel) {
  auto f = fam_id();
  EXPECT_EQ(f->labels()->size(), 1u);
  EXPECT_EQ(f->apply(Value::unit(), I(7)), I(7));
  EXPECT_EQ(f->apply(Value::unit(), Value::inf()), Value::inf());
}

TEST(FamConstOf, LabelsAreTheValues) {
  auto f = fam_const_of("consts", {I(1), I(2)});
  EXPECT_EQ(f->labels()->size(), 2u);
  EXPECT_EQ(f->apply(I(2), I(99)), I(2));
  EXPECT_THROW(fam_const_of("empty", {}), std::logic_error);
}

TEST(FamAddConst, LabelsAndSaturation) {
  auto f = fam_add_const(1, 3);
  EXPECT_EQ(*f->labels(), (ValueVec{I(1), I(2), I(3)}));
  EXPECT_EQ(f->apply(I(2), I(5)), I(7));
  EXPECT_EQ(f->apply(I(2), Value::inf()), Value::inf());
  EXPECT_THROW(fam_add_const(3, 1), std::logic_error);
  EXPECT_THROW(fam_add_const(-1, 1), std::logic_error);
}

TEST(FamMinConst, IncludesUnlimitedLink) {
  auto f = fam_min_const(0, 2);
  const ValueVec labels = *f->labels();
  ASSERT_EQ(labels.size(), 4u);  // 0,1,2,inf
  EXPECT_EQ(labels.back(), Value::inf());
  EXPECT_EQ(f->apply(I(1), I(5)), I(1));
  EXPECT_EQ(f->apply(Value::inf(), I(5)), I(5));
}

TEST(FamMulConstReal, ValidatesFactors) {
  auto f = fam_mul_const_real({0.5, 1.0});
  EXPECT_EQ(f->apply(Value::real(0.5), Value::real(0.5)), Value::real(0.25));
  EXPECT_THROW(fam_mul_const_real({0.0}), std::logic_error);   // must be > 0
  EXPECT_THROW(fam_mul_const_real({1.5}), std::logic_error);   // must be <= 1
  EXPECT_THROW(fam_mul_const_real({}), std::logic_error);
}

TEST(FamChainAdd, SaturatesAtBound) {
  auto f = fam_chain_add(4, 1, 2);
  EXPECT_EQ(f->apply(I(2), I(3)), I(4));
  EXPECT_EQ(f->apply(I(1), I(1)), I(2));
  EXPECT_THROW(fam_chain_add(4, 1, 5), std::logic_error);  // hi > n
}

TEST(FamTable, ValidatesShape) {
  EXPECT_THROW(fam_table("bad", 2, {{0, 1, 0}}), std::logic_error);  // arity
  EXPECT_THROW(fam_table("bad", 2, {{0, 2}}), std::logic_error);     // range
  EXPECT_THROW(fam_table("bad", 2, {}), std::logic_error);           // empty
  auto f = fam_table("ok", 2, {{1, 0}});
  EXPECT_EQ(f->apply(I(0), I(0)), I(1));
  EXPECT_THROW(f->apply(I(1), I(0)), std::logic_error);  // unknown label
}

TEST(FamPair, CrossesLabels) {
  auto f = fam_pair(fam_add_const(1, 2), fam_min_const(0, 1));
  // 2 add labels x 3 min labels (0,1,inf).
  EXPECT_EQ(f->labels()->size(), 6u);
  EXPECT_EQ(f->apply(Value::pair(I(1), I(0)), Value::pair(I(4), I(9))),
            Value::pair(I(5), I(0)));
}

TEST(FamUnion, TagsSelectTheSide) {
  auto f = fam_union(fam_add_const(1, 1), fam_id());
  EXPECT_EQ(f->apply(Value::tagged(1, I(1)), I(5)), I(6));
  EXPECT_EQ(f->apply(Value::tagged(2, Value::unit()), I(5)), I(5));
  EXPECT_THROW(f->apply(I(0), I(5)), std::logic_error);  // untagged label
  EXPECT_THROW(f->apply(Value::tagged(3, I(0)), I(5)), std::logic_error);
}

TEST(FamUnion, LabelEnumerationKeepsBothSides) {
  auto f = fam_union(fam_add_const(1, 2), fam_id());
  const ValueVec labels = *f->labels();
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0].tag(), 1);
  EXPECT_EQ(labels[2].tag(), 2);
}

TEST(SampleLabels, DeterministicInSeed) {
  auto f = fam_add_const(1, 9);
  Rng a(3), b(3);
  EXPECT_EQ(f->sample_labels(a, 10), f->sample_labels(b, 10));
}

TEST(Quadrants, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(validate(bs_shortest_path()));
  EXPECT_NO_THROW(validate(os_widest_path()));
  EXPECT_NO_THROW(validate(st_shortest_path(3)));
  EXPECT_NO_THROW(validate(ot_reliability()));
}

TEST(Quadrants, ValidateRejectsNullAndMismatchedCarriers) {
  Bisemigroup broken{"broken", nullptr, sg_plus(), {}};
  EXPECT_THROW(validate(broken), std::logic_error);
  // Mismatched finite carriers: chain(2) vs chain(5).
  Bisemigroup mismatched{"m", sg_chain_min(2), sg_chain_plus(5), {}};
  EXPECT_THROW(validate(mismatched), std::logic_error);
}

TEST(CheckerLimits, SmallEnumBudgetFallsBackToSampling) {
  Checker tight(CheckLimits{.max_enum = 2, .samples = 50,
                            .max_tuples = 1000, .seed = 1});
  // chain has 5 elements > max_enum 2: verdicts become sampled.
  const CheckResult r = tight.prop(ot_chain_add(4, 1, 2), Prop::M_L);
  EXPECT_FALSE(r.exhaustive);
  EXPECT_NE(r.verdict, Tri::False);
}

TEST(Sampling, InfiniteCarrierSamplesStayInCarrier) {
  Rng rng(9);
  auto ord = ord_unit_real_geq();
  for (const Value& v : ord->sample(rng, 100)) {
    EXPECT_TRUE(ord->contains(v)) << v.to_string();
  }
  auto sg = sg_plus();
  for (const Value& v : sg->sample(rng, 100)) {
    EXPECT_TRUE(sg->contains(v)) << v.to_string();
  }
}

}  // namespace
}  // namespace mrt
