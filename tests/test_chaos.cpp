// mrt::chaos — fault-injection machinery, differential convergence oracles,
// and the campaign driver. Covers: fault accounting + the message
// conservation identity, crash/restart reconvergence against the algebraic
// ground truth, oracle refutation on hand-built broken routings, plan
// shrinking, and the headline ≥1000-run campaign whose verdict table must be
// byte-identical at every thread count.
#include <gtest/gtest.h>

#include <sstream>

#include "helpers.hpp"
#include "mrt/chaos/campaign.hpp"
#include "mrt/chaos/fault_plan.hpp"
#include "mrt/chaos/oracles.hpp"
#include "mrt/dyn/solver.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/obs/journal.hpp"
#include "mrt/par/par.hpp"
#include "mrt/routing/dijkstra.hpp"
#include "mrt/sim/scenario.hpp"

namespace mrt {
namespace {

using chaos::CampaignConfig;
using chaos::CampaignReport;
using chaos::CampaignScenario;
using chaos::Fault;
using chaos::FaultPlan;
using chaos::FaultPlanConfig;
using chaos::GlobalCheck;
using mrt::testing::I;

// Chain n-1 → … → 1 → 0 with unit shortest-path labels.
LabeledGraph sp_chain(int n) {
  Digraph g(n);
  ValueVec labels;
  for (int v = 1; v < n; ++v) {
    g.add_arc(v, v - 1);
    labels.push_back(I(1));
  }
  return LabeledGraph(std::move(g), std::move(labels));
}

long conservation_gap(const SimStats& s) {
  return s.messages_sent - (s.deliveries + s.dropped_dead_arc +
                            s.dropped_injected_loss + s.in_flight_at_end);
}

// --- Fault plans ----------------------------------------------------------

TEST(FaultPlan, DeterministicFromSeed) {
  Rng rng(0xFA);
  Scenario sc = random_scenario(ot_shortest_path(4), I(0), rng, 8, 5);
  FaultPlanConfig cfg;
  cfg.min_faults = 1;
  const FaultPlan a = chaos::random_fault_plan(42, sc.net, sc.dest, cfg);
  const FaultPlan b = chaos::random_fault_plan(42, sc.net, sc.dest, cfg);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_FALSE(a.faults.empty());
  // Targets are always in range; crashes never hit the destination.
  for (const Fault& f : a.faults) {
    if (f.kind == Fault::Kind::Crash) {
      EXPECT_NE(f.node, sc.dest);
      EXPECT_GE(f.node, 0);
      EXPECT_LT(f.node, sc.net.num_nodes());
    } else {
      EXPECT_GE(f.arc, 0);
      EXPECT_LT(f.arc, sc.net.graph().num_arcs());
    }
  }
}

TEST(FaultPlan, CountsByKindMatchDescribe) {
  FaultPlan plan;
  plan.faults.push_back({Fault::Kind::LinkFlap, 0, -1, 1.0, 2.0, 0, 0, 0});
  plan.faults.push_back({Fault::Kind::Crash, -1, 1, 3.0, 2.0, 0, 0, 0});
  plan.faults.push_back({Fault::Kind::Loss, 0, -1, 4.0, 1.0, 0.5, 0, 0});
  EXPECT_EQ(plan.count(Fault::Kind::LinkFlap), 1);
  EXPECT_EQ(plan.count(Fault::Kind::Crash), 1);
  EXPECT_EQ(plan.count(Fault::Kind::Loss), 1);
  EXPECT_EQ(plan.count(Fault::Kind::Duplicate), 0);
  EXPECT_NE(plan.describe().find("crash(node 1"), std::string::npos);
}

// --- Injected faults in the simulator -------------------------------------

TEST(ChaosSim, InjectedLossIsCountedAndRepairedByResync) {
  const OrderTransform sp = ot_shortest_path(9);
  const LabeledGraph net = sp_chain(4);
  SimOptions opts;
  opts.seed = 7;
  PathVectorSim sim(sp, net, 0, I(0), opts);
  ArcFault f;
  f.arc = 0;  // the (1 → 0) learning arc: kills the initial advertisement
  f.from = 0.0;
  f.until = 50.0;
  f.loss_p = 1.0;
  sim.add_arc_fault(f);
  sim.schedule_resync(50.0, 0);
  const SimResult res = sim.run();
  ASSERT_TRUE(res.converged);
  EXPECT_GT(res.stats.dropped_injected_loss, 0);
  EXPECT_GT(res.stats.resync_events, 0);
  EXPECT_EQ(res.stats.in_flight_at_end, 0);
  EXPECT_EQ(conservation_gap(res.stats), 0);
  // The resync repaired the loss: the full chain converged to ground truth.
  const Routing truth = dijkstra(sp, net, 0, I(0));
  for (int v = 0; v < 4; ++v) {
    ASSERT_TRUE(res.routing.has_route(v)) << v;
    EXPECT_EQ(*res.routing.weight[static_cast<std::size_t>(v)],
              *truth.weight[static_cast<std::size_t>(v)]);
  }
}

TEST(ChaosSim, DuplicationCountedAndConserved) {
  const OrderTransform sp = ot_shortest_path(9);
  const LabeledGraph net = sp_chain(4);
  SimOptions opts;
  opts.seed = 3;
  PathVectorSim sim(sp, net, 0, I(0), opts);
  for (int arc = 0; arc < net.graph().num_arcs(); ++arc) {
    ArcFault f;
    f.arc = arc;
    f.from = 0.0;
    f.until = 100.0;
    f.dup_p = 1.0;
    sim.add_arc_fault(f);
  }
  const SimResult res = sim.run();
  ASSERT_TRUE(res.converged);
  EXPECT_GT(res.stats.duplicated_messages, 0);
  // Duplicates are real messages: sent, delivered, conserved.
  EXPECT_EQ(conservation_gap(res.stats), 0);
  EXPECT_TRUE(is_locally_optimal(sp, net, 0, I(0), res.routing));
}

TEST(ChaosSim, JitterDelaysButConverges) {
  const OrderTransform sp = ot_shortest_path(9);
  const LabeledGraph net = sp_chain(5);
  auto run_with = [&](bool jitter) {
    SimOptions opts;
    opts.seed = 11;
    PathVectorSim sim(sp, net, 0, I(0), opts);
    if (jitter) {
      ArcFault f;
      f.arc = 1;
      f.from = 0.0;
      f.until = 200.0;
      f.extra_delay = 4.0;
      f.jitter = 3.0;
      sim.add_arc_fault(f);
    }
    return sim.run();
  };
  const SimResult plain = run_with(false);
  const SimResult jittered = run_with(true);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(jittered.converged);
  EXPECT_EQ(plain.stats.jittered_messages, 0);
  EXPECT_GT(jittered.stats.jittered_messages, 0);
  EXPECT_GT(jittered.finish_time, plain.finish_time);
  EXPECT_TRUE(is_locally_optimal(sp, net, 0, I(0), jittered.routing));
  EXPECT_EQ(conservation_gap(jittered.stats), 0);
}

TEST(ChaosSim, FaultRngDoesNotPerturbBaseSchedule) {
  // The same seed with and without an (ineffective) fault window must give
  // the identical base schedule: fault draws come from a dedicated stream.
  const OrderTransform sp = ot_shortest_path(9);
  const LabeledGraph net = sp_chain(5);
  auto run_with = [&](bool with_fault) {
    SimOptions opts;
    opts.seed = 23;
    PathVectorSim sim(sp, net, 0, I(0), opts);
    if (with_fault) {
      ArcFault f;
      f.arc = 0;
      f.from = 1e6;  // window never becomes active
      f.until = 1e6 + 1;
      f.loss_p = 1.0;
      sim.add_arc_fault(f);
    }
    return sim.run();
  };
  const SimResult a = run_with(false);
  const SimResult b = run_with(true);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  EXPECT_EQ(a.stats.selection_changes, b.stats.selection_changes);
}

TEST(ChaosSim, CrashRestartReconvergesToGroundTruth) {
  const OrderTransform sp = ot_shortest_path(9);
  const LabeledGraph net = sp_chain(4);
  SimOptions opts;
  opts.seed = 5;
  PathVectorSim sim(sp, net, 0, I(0), opts);
  sim.schedule_node_down(100.0, 1);
  sim.schedule_node_up(150.0, 1);
  const SimResult res = sim.run();
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.stats.node_crash_events, 1);
  EXPECT_EQ(res.stats.node_restart_events, 1);
  EXPECT_GT(res.stats.dropped_dead_arc + res.stats.withdrawals_sent, 0);
  EXPECT_EQ(conservation_gap(res.stats), 0);
  const Routing truth = dijkstra(sp, net, 0, I(0));
  for (int v = 0; v < 4; ++v) {
    ASSERT_TRUE(res.routing.has_route(v)) << v;
    EXPECT_EQ(*res.routing.weight[static_cast<std::size_t>(v)],
              *truth.weight[static_cast<std::size_t>(v)]);
  }
  for (bool up : res.node_up) EXPECT_TRUE(up);
}

TEST(ChaosSim, CrashWithoutRestartPartitionsAndWithdraws) {
  const OrderTransform sp = ot_shortest_path(9);
  const LabeledGraph net = sp_chain(4);
  SimOptions opts;
  opts.seed = 9;
  PathVectorSim sim(sp, net, 0, I(0), opts);
  sim.schedule_node_down(100.0, 1);  // cuts 2 and 3 off permanently
  const SimResult res = sim.run();
  ASSERT_TRUE(res.converged);
  EXPECT_FALSE(res.node_up[1]);
  EXPECT_FALSE(res.routing.has_route(1));
  EXPECT_FALSE(res.routing.has_route(2));
  EXPECT_FALSE(res.routing.has_route(3));
  EXPECT_TRUE(res.routing.has_route(0));
  // All four oracles hold on the surviving topology.
  chaos::OracleOptions oo;
  oo.check_global = true;  // shortest path is M + ND by construction
  const chaos::OracleReport rep =
      chaos::check_oracles(sp, net, 0, I(0), res, oo);
  EXPECT_TRUE(rep.all_pass()) << rep.first_failure();
  EXPECT_TRUE(rep.global.checked);
}

TEST(ChaosSim, DestinationCrashWithdrawsTheWorld) {
  const OrderTransform sp = ot_shortest_path(9);
  const LabeledGraph net = sp_chain(4);
  SimOptions opts;
  opts.seed = 13;
  PathVectorSim sim(sp, net, 0, I(0), opts);
  sim.schedule_node_down(100.0, 0);
  const SimResult res = sim.run();
  ASSERT_TRUE(res.converged);
  for (int v = 0; v < 4; ++v) EXPECT_FALSE(res.routing.has_route(v)) << v;
  const chaos::OracleReport rep = chaos::check_oracles(sp, net, 0, I(0), res);
  EXPECT_TRUE(rep.all_pass()) << rep.first_failure();
}

// --- Oracles against hand-built broken states ------------------------------

TEST(Oracles, StaleRibGhostFailsExtension) {
  const OrderTransform sp = ot_shortest_path(9);
  const LabeledGraph net = sp_chain(3);  // arcs: 0 = (1→0), 1 = (2→1)
  Routing r;
  r.weight = {I(0), std::nullopt, I(2)};  // 2 extends a route 1 no longer has
  r.next_arc = {-1, -1, 1};
  std::string why;
  EXPECT_FALSE(routes_are_coherent_extensions(sp, net, 0, I(0), r, {}, &why));
  EXPECT_NE(why.find("stale"), std::string::npos) << why;
}

TEST(Oracles, WrongWeightExtensionFails) {
  const OrderTransform sp = ot_shortest_path(9);
  const LabeledGraph net = sp_chain(3);
  Routing r;
  r.weight = {I(0), I(1), I(5)};  // 2's weight is not apply(1, w[1]) = 2
  r.next_arc = {-1, 0, 1};
  std::string why;
  EXPECT_FALSE(routes_are_coherent_extensions(sp, net, 0, I(0), r, {}, &why));
  // The correct weights pass.
  r.weight[2] = I(2);
  EXPECT_TRUE(routes_are_coherent_extensions(sp, net, 0, I(0), r, {}));
}

TEST(Oracles, MutuallySustainingLoopIsCaught) {
  // Widest-path ghost: 1 and 2 sustain width-5 routes through each other.
  // Pairwise the extensions are exact (min(9, 5) = 5), so only the
  // forwarding walk exposes the loop.
  const OrderTransform bw = ot_widest_path(9);
  Digraph g(3);
  ValueVec labels;
  g.add_arc(1, 2);
  labels.push_back(I(9));
  g.add_arc(2, 1);
  labels.push_back(I(9));
  g.add_arc(1, 0);
  labels.push_back(I(5));
  LabeledGraph net(std::move(g), std::move(labels));
  SimResult res;
  res.converged = true;
  res.routing.weight = {Value::inf(), I(5), I(5)};
  res.routing.next_arc = {-1, 0, 1};  // 1 → 2 → 1 → …
  res.arc_alive.assign(3, true);
  res.node_up.assign(3, true);
  const chaos::OracleReport rep =
      chaos::check_oracles(bw, net, 0, Value::inf(), res);
  EXPECT_FALSE(rep.extension.pass);
  EXPECT_NE(rep.first_failure().find("loop"), std::string::npos)
      << rep.first_failure();
}

TEST(Oracles, UnreachableNodeWithRouteFailsReachability) {
  const OrderTransform sp = ot_shortest_path(9);
  const LabeledGraph net = sp_chain(3);
  Routing r;
  r.weight = {I(0), I(1), I(2)};
  r.next_arc = {-1, 0, 1};
  SurvivingTopology topo;
  topo.arc_alive = {false, true};  // (1→0) is dead: 1 and 2 are cut off
  topo.node_up = {true, true, true};
  std::string why;
  EXPECT_FALSE(unreachable_nodes_have_no_route(net, 0, r, topo, &why));
  EXPECT_NE(why.find("no surviving path"), std::string::npos) << why;
  // With the arc alive everything is reachable and routed: passes.
  topo.arc_alive = {true, true};
  EXPECT_TRUE(unreachable_nodes_have_no_route(net, 0, r, topo));
}

TEST(Oracles, MaskedLocalOptimumRespectsDeadArcs) {
  // On the full graph 2's best route is via 1 (weight 2); with (1→0) dead,
  // the surviving topology has no route for 1 or 2 at all.
  const OrderTransform sp = ot_shortest_path(9);
  const LabeledGraph net = sp_chain(3);
  SurvivingTopology topo;
  topo.arc_alive = {false, true};
  topo.node_up = {true, true, true};
  Routing full;
  full.weight = {I(0), I(1), I(2)};
  full.next_arc = {-1, 0, 1};
  EXPECT_TRUE(is_locally_optimal(sp, net, 0, I(0), full));
  EXPECT_FALSE(is_locally_optimal(sp, net, 0, I(0), full, topo));
  Routing cut;
  cut.weight = {I(0), std::nullopt, std::nullopt};
  cut.next_arc = {-1, -1, -1};
  EXPECT_TRUE(is_locally_optimal(sp, net, 0, I(0), cut, topo));
}

// --- Campaigns -------------------------------------------------------------

std::vector<CampaignScenario> headline_scenarios(long with_bad_gadget) {
  std::vector<CampaignScenario> out;
  {
    Scenario sc = good_gadget_hops();
    CampaignScenario c;
    c.name = "good_gadget_hops";
    c.alg = sc.alg;
    c.net = sc.net;
    c.dest = sc.dest;
    c.origin = sc.origin;
    // Hop count has an infinite carrier, so the checker cannot certify M+ND
    // exhaustively — but both hold by construction; opt the oracle in.
    c.global = GlobalCheck::On;
    out.push_back(std::move(c));
  }
  {
    Rng rng(0x6A0);
    Scenario sc = gao_rexford_hierarchy(rng, 10, 4);
    CampaignScenario c;
    c.name = "gao_rexford_hierarchy";
    c.alg = sc.alg;
    c.net = sc.net;
    c.dest = sc.dest;
    c.origin = sc.origin;
    c.sim.drop_top_routes = true;  // ⊤ = invalid (not exportable)
    c.global = GlobalCheck::Auto;  // finite carrier: checker proves M + ND
    out.push_back(std::move(c));
  }
  {
    // A random network over the §VI finite increasing chain algebra.
    Rng rng(0x1C4A);
    Scenario sc = random_scenario(ot_chain_add(6, 1, 3), I(0), rng, 8, 6);
    CampaignScenario c;
    c.name = "random_increasing_chain";
    c.alg = sc.alg;
    c.net = sc.net;
    c.dest = sc.dest;
    c.origin = sc.origin;
    c.sim.drop_top_routes = true;  // the saturated top is "unreachable"
    c.global = GlobalCheck::Auto;
    out.push_back(std::move(c));
  }
  if (with_bad_gadget) {
    Scenario sc = bad_gadget();
    CampaignScenario c;
    c.name = "bad_gadget";
    c.alg = sc.alg;
    c.net = sc.net;
    c.dest = sc.dest;
    c.origin = sc.origin;
    c.sim.drop_top_routes = true;
    c.sim.max_events = 4000;  // divergence is declared at the cap
    c.expect_convergence = false;
    c.min_divergent = 1;
    out.push_back(std::move(c));
  }
  return out;
}

TEST(Campaign, HeadlineThousandRunsPassEveryOracle) {
  CampaignConfig cfg;
  cfg.seed = 0xCA05;
  cfg.runs_per_scenario = 400;  // × 3 scenarios ⇒ 1200 runs
  const CampaignReport rep = chaos::run_campaign(headline_scenarios(false), cfg);
  ASSERT_EQ(rep.scenarios.size(), 3u);
  for (const auto& s : rep.scenarios) {
    EXPECT_TRUE(s.pass()) << s.name << "\n"
                          << (s.failures.empty() ? ""
                                                 : s.failures[0].detail + "\n" +
                                                       s.failures[0].plan);
    EXPECT_EQ(s.runs, 400);
    EXPECT_EQ(s.converged, 400) << s.name;
    EXPECT_EQ(s.oracle_failures, 0) << s.name;
    EXPECT_EQ(s.accounting_failures, 0) << s.name;
    EXPECT_GT(s.faults_injected, 0) << s.name;
    EXPECT_TRUE(s.global_checked) << s.name;
  }
  EXPECT_TRUE(rep.all_pass());
}

TEST(Campaign, BadGadgetUnderFlapsIsFlaggedDivergent) {
  CampaignConfig cfg;
  cfg.seed = 0xBAD;
  cfg.runs_per_scenario = 60;
  std::vector<CampaignScenario> scs = headline_scenarios(true);
  scs.erase(scs.begin(), scs.begin() + 3);  // bad gadget only
  const CampaignReport rep = chaos::run_campaign(scs, cfg);
  ASSERT_EQ(rep.scenarios.size(), 1u);
  const auto& s = rep.scenarios[0];
  // BAD GADGET has no stable state on the full topology: every run whose
  // surviving topology is the full gadget diverges. Fault plans that sever
  // the preference cycle can legitimately quiesce — those runs must still
  // satisfy every oracle.
  EXPECT_GT(s.diverged, 0);
  EXPECT_EQ(s.oracle_failures, 0);
  EXPECT_EQ(s.accounting_failures, 0);
  EXPECT_TRUE(s.pass());
}

TEST(Campaign, VerdictTableIsThreadCountInvariant) {
  const int hw = par::hardware_threads();
  CampaignConfig cfg;
  cfg.seed = 0xD17;
  cfg.runs_per_scenario = 60;
  const std::vector<CampaignScenario> scs = headline_scenarios(true);

  auto render = [&](int threads) {
    par::set_thread_limit(threads);
    const CampaignReport rep = chaos::run_campaign(scs, cfg);
    std::ostringstream json;
    rep.write_json(json);
    return rep.verdict_table() + "\n" + json.str();
  };
  const std::string t1 = render(1);
  const std::string tn = render(hw);
  par::set_thread_limit(hw);
  EXPECT_EQ(t1, tn) << "verdict table depends on the thread count";
}

TEST(Campaign, VerdictTableIsDynToggleInvariant) {
  // The global-truth oracle takes the incremental path (per-scenario warm
  // baseline + update(delta)) when dyn is on and the legacy from-scratch
  // subgraph solve when it is off. Every verdict — and the full JSON report
  // — must be identical either way.
  CampaignConfig cfg;
  cfg.seed = 0xD2B;
  cfg.runs_per_scenario = 60;
  const std::vector<CampaignScenario> scs = headline_scenarios(true);

  auto render = [&](bool on) {
    const bool before = dyn::enabled();
    dyn::set_enabled(on);
    const CampaignReport rep = chaos::run_campaign(scs, cfg);
    dyn::set_enabled(before);
    std::ostringstream json;
    rep.write_json(json);
    return rep.verdict_table() + "\n" + json.str();
  };
  EXPECT_EQ(render(false), render(true))
      << "verdict table depends on the MRT_DYN toggle";
}

TEST(Campaign, ShrinkKeepsFailureAndNeverGrows) {
  // With expect_convergence = true, every BAD-GADGET divergence is a
  // "failure" — and since the unfaulted gadget already diverges, shrinking
  // walks the plan down (usually to empty) while preserving the failure.
  Scenario sc = bad_gadget();
  CampaignScenario c;
  c.name = "bad_gadget_strict";
  c.alg = sc.alg;
  c.net = sc.net;
  c.dest = sc.dest;
  c.origin = sc.origin;
  c.sim.drop_top_routes = true;
  c.sim.max_events = 4000;
  c.expect_convergence = true;  // deliberately wrong: force failures

  const std::uint64_t seed = 0x51A;
  FaultPlanConfig fpc;
  fpc.min_faults = 3;
  fpc.max_faults = 5;
  const FaultPlan plan = chaos::random_fault_plan(seed, c.net, c.dest, fpc);
  ASSERT_GE(plan.faults.size(), 3u);
  const chaos::RunVerdict v = chaos::run_one(c, seed, plan, false);
  if (!v.pass) {
    const FaultPlan small = chaos::shrink_plan(c, seed, plan, false);
    EXPECT_LE(small.faults.size(), plan.faults.size());
    EXPECT_FALSE(chaos::run_one(c, seed, small, false).pass)
        << "shrunk plan no longer fails";
  } else {
    // The plan happened to sever the cycle; the empty plan must then fail.
    EXPECT_FALSE(chaos::run_one(c, seed, FaultPlan{}, false).pass);
  }
}

TEST(Campaign, ShrunkFailureShipsWithJournal) {
  // Every kept failure re-runs its shrunk plan once with the flight
  // recorder forced on and ships the rendered log: the repro arrives with
  // its own causal event history, fault verdict included.
  Scenario sc = bad_gadget();
  CampaignScenario c;
  c.name = "bad_gadget_strict";
  c.alg = sc.alg;
  c.net = sc.net;
  c.dest = sc.dest;
  c.origin = sc.origin;
  c.sim.drop_top_routes = true;
  c.sim.max_events = 4000;
  c.expect_convergence = true;  // deliberately wrong: force failures

  CampaignConfig cfg;
  cfg.seed = 0x10C;
  cfg.runs_per_scenario = 12;
  ASSERT_TRUE(cfg.shrink_failures);

  const bool was_on = obs::journal_enabled();
  const CampaignReport rep = chaos::run_campaign({c}, cfg);
  EXPECT_EQ(obs::journal_enabled(), was_on) << "campaign leaked the toggle";

  ASSERT_EQ(rep.scenarios.size(), 1u);
  const auto& out = rep.scenarios[0];
  ASSERT_GT(out.diverged, 0);
  ASSERT_FALSE(out.failures.empty());
  for (const auto& f : out.failures) {
    EXPECT_GT(f.journal_events, 0u) << f.detail;
    ASSERT_FALSE(f.journal.empty()) << f.detail;
    // The log is one describe() line per record and ends with the chaos
    // verdict for a divergent run (aux = 1).
    EXPECT_NE(f.journal.find("sim.msg_send"), std::string::npos) << f.journal;
    EXPECT_NE(f.journal.find("chaos.fault_outcome"), std::string::npos)
        << f.journal;
  }
  // The JSON report carries the log verbatim.
  std::ostringstream js;
  rep.write_json(js);
  EXPECT_NE(js.str().find("\"journal_events\""), std::string::npos);
  EXPECT_NE(js.str().find("chaos.fault_outcome"), std::string::npos);
}

TEST(Campaign, ShrunkReproJournalReplaysToSameVerdict) {
  // The point of attaching a journal to a shrunk repro: replaying the same
  // (seed, plan) renders the *same* flight-recorder log and the same
  // verdict. Journal reset() restarts stream numbering precisely so two
  // replays are byte-identical (describe() already excludes wall-clock).
  Scenario sc = bad_gadget();
  CampaignScenario c;
  c.name = "bad_gadget_strict";
  c.alg = sc.alg;
  c.net = sc.net;
  c.dest = sc.dest;
  c.origin = sc.origin;
  c.sim.drop_top_routes = true;
  c.sim.max_events = 4000;
  c.expect_convergence = true;

  const std::uint64_t seed = 0x51B;
  FaultPlanConfig fpc;
  fpc.min_faults = 2;
  fpc.max_faults = 4;
  FaultPlan plan = chaos::random_fault_plan(seed, c.net, c.dest, fpc);
  if (chaos::run_one(c, seed, plan, false).pass) {
    plan = FaultPlan{};  // plan severed the cycle; the empty plan diverges
  }
  const FaultPlan small = chaos::shrink_plan(c, seed, plan, false);

  const bool was_on = obs::journal_enabled();
  auto replay = [&](std::string* log) {
    obs::set_journal_enabled(true);
    obs::journal().reset();
    const chaos::RunVerdict v = chaos::run_one(c, seed, small, false);
    for (const obs::JournalRecord& r : obs::journal().drain()) {
      *log += r.describe();
      *log += '\n';
    }
    return v;
  };
  std::string log1, log2;
  const chaos::RunVerdict v1 = replay(&log1);
  const chaos::RunVerdict v2 = replay(&log2);
  obs::journal().reset();
  obs::set_journal_enabled(was_on);

  EXPECT_FALSE(v1.pass);
  EXPECT_EQ(v1.pass, v2.pass);
  EXPECT_EQ(v1.converged, v2.converged);
  EXPECT_EQ(v1.detail, v2.detail);
  EXPECT_FALSE(log1.empty());
  EXPECT_EQ(log1, log2) << "shrunk repro journal is not replayable";
  EXPECT_NE(log1.find("chaos.fault_outcome"), std::string::npos) << log1;
}

TEST(Campaign, JsonReportIsWellFormed) {
  CampaignConfig cfg;
  cfg.seed = 0x15;
  cfg.runs_per_scenario = 10;
  std::vector<CampaignScenario> scs = headline_scenarios(false);
  scs.resize(1);
  const CampaignReport rep = chaos::run_campaign(scs, cfg);
  std::ostringstream out;
  rep.write_json(out);
  const std::string js = out.str();
  EXPECT_NE(js.find("\"scenarios\""), std::string::npos);
  EXPECT_NE(js.find("\"good_gadget_hops\""), std::string::npos);
  EXPECT_NE(js.find("\"all_pass\":true"), std::string::npos) << js;
  EXPECT_NE(js.find("\"runs\":10"), std::string::npos);
}

}  // namespace
}  // namespace mrt
