// Routing algorithms against ground truth: generalized Dijkstra computes
// global optima exactly when the algebra is monotone (and fails on the
// paper's bandwidth ⃗× delay example), the synchronous Bellman iteration
// reaches exactly the locally optimal fixed points, and the min-set solver
// computes the Pareto frontier of all simple paths.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/routing/bellman.hpp"
#include "mrt/routing/dijkstra.hpp"
#include "mrt/routing/minset.hpp"
#include "mrt/routing/optimality.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

Value pr(Value a, Value b) { return Value::pair(std::move(a), std::move(b)); }

// The classic 4-node example: 0 is the destination.
//   1 → 0 cost 5;  1 → 2 cost 1;  2 → 0 cost 3;  2 → 3 cost 1;  3 → 0 cost 1.
LabeledGraph small_sp_net() {
  Digraph g(4);
  ValueVec labels;
  auto arc = [&](int u, int v, std::int64_t c) {
    g.add_arc(u, v);
    labels.push_back(I(c));
  };
  arc(1, 0, 5);
  arc(1, 2, 1);
  arc(2, 0, 3);
  arc(2, 3, 1);
  arc(3, 0, 1);
  return LabeledGraph(std::move(g), std::move(labels));
}

TEST(Dijkstra, ClassicShortestPaths) {
  const OrderTransform sp = ot_shortest_path(9);
  const LabeledGraph net = small_sp_net();
  const Routing r = dijkstra(sp, net, 0, I(0));
  EXPECT_EQ(*r.weight[0], I(0));
  EXPECT_EQ(*r.weight[1], I(3));  // 1→2→3→0
  EXPECT_EQ(*r.weight[2], I(2));  // 2→3→0
  EXPECT_EQ(*r.weight[3], I(1));
  // Next hops follow the optimal arcs.
  auto path = forwarding_path(net, r, 1, 0);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<int>{1, 2, 3, 0}));
}

TEST(Dijkstra, UnreachableNodesHaveNoRoute) {
  Digraph g(3);
  g.add_arc(1, 0);  // 2 is isolated
  LabeledGraph net(std::move(g), {I(4)});
  const Routing r = dijkstra(ot_shortest_path(9), net, 0, I(0));
  EXPECT_TRUE(r.has_route(1));
  EXPECT_FALSE(r.has_route(2));
  EXPECT_EQ(r.next_arc[2], -1);
}

TEST(Dijkstra, WidestPath) {
  const OrderTransform bw = ot_widest_path(9);
  Digraph g(3);
  ValueVec labels;
  auto arc = [&](int u, int v, Value c) {
    g.add_arc(u, v);
    labels.push_back(std::move(c));
  };
  arc(1, 0, I(2));          // narrow direct
  arc(1, 2, I(8));
  arc(2, 0, I(5));          // wide detour
  LabeledGraph net(std::move(g), std::move(labels));
  const Routing r = dijkstra(bw, net, 0, Value::inf());
  EXPECT_EQ(*r.weight[1], I(5));  // min(8, min(5, inf))
}

class DijkstraGlobalOptimality : public ::testing::TestWithParam<int> {};

// With a monotone, nondecreasing, total algebra Dijkstra's weights equal the
// exhaustive-minimum over all simple paths, at every node.
TEST_P(DijkstraGlobalOptimality, MatchesExhaustiveSearch) {
  Rng rng(0xD13A + static_cast<std::uint64_t>(GetParam()));
  const OrderTransform alg =
      GetParam() % 2 == 0 ? ot_shortest_path(6) : ot_widest_path(6);
  const Value origin = GetParam() % 2 == 0 ? I(0) : Value::inf();
  Digraph g = random_connected(rng, 7, 4);
  LabeledGraph net = label_randomly(alg, std::move(g), rng);
  const Routing r = dijkstra(alg, net, 0, origin);
  for (int v = 1; v < net.num_nodes(); ++v) {
    ASSERT_TRUE(r.has_route(v));
    EXPECT_TRUE(is_globally_optimal(alg, net, v, 0, origin, *r.weight[v]))
        << "node " << v << " got " << r.weight[v]->to_string();
  }
  EXPECT_TRUE(is_locally_optimal(alg, net, 0, origin, r));
  EXPECT_TRUE(forwarding_consistent(net, r, 0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraGlobalOptimality,
                         ::testing::Range(0, 30));

// The paper's running example as a routing computation: selecting by
// (bandwidth, then delay) with plain lex is not monotone, and Dijkstra can
// return a weight that is *not* globally optimal; the scoped product fixes
// it on the same topology.
TEST(Dijkstra, BandwidthDelayAnomaly) {
  const OrderTransform bw = ot_widest_path(9);
  const OrderTransform sp = ot_shortest_path(9);
  const OrderTransform bad = lex(bw, sp);

  // 1 ──(bw 5, d 1)── 2 ──(bw 5, d 1)── 0   and a direct (bw 5, d 1) arc
  // 1 ──(bw 9, d 5)── 0: direct has equal-bottleneck… craft the classic
  // inversion: via-2 bottleneck 5 delay 2; direct bottleneck 5 delay 5 —
  // then a *narrower but shorter* arc from 2 creates the non-monotone flip.
  Digraph g(3);
  ValueVec labels;
  auto arc = [&](int u, int v, std::int64_t b, std::int64_t d) {
    g.add_arc(u, v);
    labels.push_back(pr(I(b), I(d)));
  };
  // Two routes out of 2: wide-slow and narrow-fast.
  arc(2, 0, 9, 5);  // wide, slow
  arc(2, 0, 3, 1);  // narrow, fast
  // 1 reaches 0 only through a narrow arc to 2.
  arc(1, 2, 2, 1);
  LabeledGraph net(std::move(g), std::move(labels));
  const Value origin = pr(Value::inf(), I(0));

  // Node 2 rightly prefers (9,5) over (3,1): bandwidth first.
  const Routing r = dijkstra(bad, net, 0, origin);
  EXPECT_EQ(*r.weight[2], pr(I(9), I(5)));
  // But through 1's narrow arc both collapse to bandwidth 2, where the
  // narrow-fast choice would have been strictly better: (2,6) vs (2,2).
  EXPECT_EQ(*r.weight[1], pr(I(2), I(6)));
  EXPECT_FALSE(is_globally_optimal(bad, net, 1, 0, origin, *r.weight[1]));
  // The min-set (Pareto) solver still finds the true optimum.
  const ValueVec truth = global_min_set(bad, net, 1, 0, origin);
  ASSERT_EQ(truth.size(), 1u);
  EXPECT_EQ(truth[0], pr(I(2), I(2)));
}

// --- Bellman ---------------------------------------------------------------

TEST(Bellman, ConvergesToDijkstraOnMonotoneIncreasingAlgebras) {
  Rng rng(0xBE11);
  const OrderTransform sp = ot_shortest_path(5);
  for (int trial = 0; trial < 10; ++trial) {
    Digraph g = random_connected(rng, 8, 5);
    LabeledGraph net = label_randomly(sp, std::move(g), rng);
    const BellmanResult b = bellman_sync(sp, net, 0, I(0));
    ASSERT_TRUE(b.converged);
    const Routing d = dijkstra(sp, net, 0, I(0));
    for (int v = 0; v < net.num_nodes(); ++v) {
      ASSERT_EQ(b.routing.has_route(v), d.has_route(v));
      if (d.has_route(v)) {
        EXPECT_EQ(*b.routing.weight[v], *d.weight[v]);
      }
    }
    EXPECT_TRUE(is_locally_optimal(sp, net, 0, I(0), b.routing));
  }
}

TEST(Bellman, StableStatesAreExactlyLocalOptima) {
  Rng rng(0x57AB);
  const OrderTransform bw = ot_widest_path(5);
  Digraph g = random_connected(rng, 6, 4);
  LabeledGraph net = label_randomly(bw, std::move(g), rng);
  BellmanResult b = bellman_sync(bw, net, 0, Value::inf());
  ASSERT_TRUE(b.converged);
  EXPECT_TRUE(is_locally_optimal(bw, net, 0, Value::inf(), b.routing));
  // One more step changes nothing.
  Routing copy = b.routing;
  EXPECT_FALSE(bellman_step(bw, net, 0, Value::inf(), copy, {}));
}

TEST(Bellman, IterationCapReportsNonConvergence) {
  // A decreasing algebra on a cycle improves forever: f(x) = max(0, x - 1)
  // on a chain, starting high.
  const OrderTransform dec = mrt::testing::make_ot(
      {{1, 1, 1}, {0, 1, 1}, {0, 0, 1}},  // 0 < 1 < 2
      {{0, 0, 1}},                        // f = decrement (clamped)
      "dec");
  Digraph g(2);
  g.add_arc(1, 1);  // self-loop keeps feeding improvements
  g.add_arc(1, 0);
  LabeledGraph net(std::move(g), {I(0), I(0)});
  BellmanOptions opts;
  opts.max_iterations = 10;
  const BellmanResult b = bellman_sync(dec, net, 0, I(2), opts);
  // Converges here (finite chain bottoms out) — but within few iterations;
  // now make the origin re-inject a high value forever via non-ND labels:
  EXPECT_TRUE(b.converged);
  EXPECT_LE(b.iterations, 10);
}

// --- Min-set solver ----------------------------------------------------------

class MinSetPareto : public ::testing::TestWithParam<int> {};

TEST_P(MinSetPareto, MatchesExhaustiveParetoFrontier) {
  Rng rng(0x9A3E70 + static_cast<std::uint64_t>(GetParam()));
  // Alternate between a total bi-criteria algebra (lex of bandwidth and
  // delay) and a genuinely partial one (subsets under ⊆ with monotone
  // mask-or functions), where Pareto frontiers have several elements.
  // The min-set iteration is exact for *monotone* algebras; delay-then-
  // bandwidth is monotone (the running example), bandwidth-then-delay is
  // not — its failure is demonstrated in Dijkstra.BandwidthDelayAnomaly.
  const bool total = GetParam() % 2 == 0;
  const OrderTransform alg =
      total ? lex(ot_shortest_path(4), ot_widest_path(4))
            : OrderTransform{"sub", ord_subset_bits(2),
                             fam_table("or", 4, {{1, 1, 3, 3},
                                                 {2, 3, 2, 3},
                                                 {0, 1, 2, 3}}),
                             {}};
  Digraph g = random_connected(rng, 6, 3);
  LabeledGraph net = label_randomly(alg, std::move(g), rng);
  const Value origin = total ? pr(I(0), Value::inf()) : I(0);
  const MinSetResult ms = minset_bellman(alg, net, 0, origin);
  ASSERT_TRUE(ms.converged);
  for (int v = 0; v < net.num_nodes(); ++v) {
    ValueVec truth = global_min_set(alg, net, v, 0, origin);
    // Compare as sets of equivalence classes: every computed weight must be
    // equivalent to a true optimum and vice versa.
    for (const Value& w : ms.weights[static_cast<std::size_t>(v)]) {
      bool matched = false;
      for (const Value& t : truth) {
        matched = matched || equiv_of(alg.ord->cmp(w, t));
      }
      EXPECT_TRUE(matched) << "node " << v << " spurious " << w.to_string();
    }
    for (const Value& t : truth) {
      bool matched = false;
      for (const Value& w : ms.weights[static_cast<std::size_t>(v)]) {
        matched = matched || equiv_of(alg.ord->cmp(w, t));
      }
      EXPECT_TRUE(matched) << "node " << v << " missing " << t.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinSetPareto, ::testing::Range(0, 25));

// --- Validators --------------------------------------------------------------

TEST(Validators, AllPathWeightsEnumeratesSimplePaths) {
  const OrderTransform sp = ot_shortest_path(9);
  const LabeledGraph net = small_sp_net();
  ValueVec ws = normalize_set(all_path_weights(sp, net, 1, 0, I(0)));
  // Paths from 1: direct (5), 1-2-0 (4), 1-2-3-0 (3).
  EXPECT_EQ(ws, (ValueVec{I(3), I(4), I(5)}));
  // Trivial source: just the origin.
  EXPECT_EQ(all_path_weights(sp, net, 0, 0, I(0)), ValueVec{I(0)});
}

TEST(Validators, LocalOptimalityRejectsBrokenRoutings) {
  const OrderTransform sp = ot_shortest_path(9);
  const LabeledGraph net = small_sp_net();
  Routing r = dijkstra(sp, net, 0, I(0));
  ASSERT_TRUE(is_locally_optimal(sp, net, 0, I(0), r));
  // Claiming a better-than-possible weight is rejected.
  r.weight[1] = I(1);
  EXPECT_FALSE(is_locally_optimal(sp, net, 0, I(0), r));
  // Claiming a worse-than-best weight is rejected too.
  r.weight[1] = I(5);
  EXPECT_FALSE(is_locally_optimal(sp, net, 0, I(0), r));
}

TEST(Validators, ForwardingLoopDetected) {
  const OrderTransform sp = ot_shortest_path(9);
  Digraph g(3);
  const int a01 = g.add_arc(1, 2);
  const int a12 = g.add_arc(2, 1);
  (void)a01;
  LabeledGraph net(std::move(g), {I(1), I(1)});
  Routing r;
  r.weight = {I(0), I(2), I(1)};
  r.next_arc = {-1, a01, a12};
  EXPECT_FALSE(forwarding_consistent(net, r, 0));
}

}  // namespace
}  // namespace mrt
