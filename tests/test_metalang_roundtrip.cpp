// Metalanguage round-trip property: printing a parsed program and parsing it
// again is a fixed point (show ∘ parse idempotent after one trip), and the
// elaborated algebra of a printed-and-reparsed expression carries the same
// inferred property vector — the "types" of the routing language survive
// pretty-printing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "helpers.hpp"
#include "mrt/lang/elaborate.hpp"
#include "mrt/lang/parser.hpp"
#include "mrt/par/par.hpp"

namespace mrt {
namespace {

using lang::AlgebraValue;
using lang::Env;
using lang::Program;

/// A random well-typed order-transform expression, rendered as source.
/// Leaves and combinators mirror the elaborator's OT builtins. `union` is
/// excluded: its operands must share one order *object*, which only a
/// let-bound name can provide (covered by a dedicated test below).
std::string random_ot_expr(Rng& rng, int depth) {
  if (depth <= 0 || rng.chance(0.35)) {
    switch (rng.below(6)) {
      case 0:
        return "sp(" + std::to_string(rng.range(1, 9)) + ")";
      case 1:
        return "bw(" + std::to_string(rng.range(1, 9)) + ")";
      case 2:
        return "rel";
      case 3:
        return "hops";
      case 4: {
        const std::int64_t n = rng.range(2, 6);
        const std::int64_t lo = rng.range(0, 1);
        const std::int64_t hi = rng.range(lo, std::min<std::int64_t>(n, 3));
        return "chain(" + std::to_string(n) + ", " + std::to_string(lo) +
               ", " + std::to_string(hi) + ")";
      }
      default:
        return "gadget";
    }
  }
  switch (rng.below(8)) {
    case 0:
      return "lex(" + random_ot_expr(rng, depth - 1) + ", " +
             random_ot_expr(rng, depth - 1) + ")";
    case 1:
      return "scoped(" + random_ot_expr(rng, depth - 1) + ", " +
             random_ot_expr(rng, depth - 1) + ")";
    case 2:
      return "delta(" + random_ot_expr(rng, depth - 1) + ", " +
             random_ot_expr(rng, depth - 1) + ")";
    case 3:
      return "prod(" + random_ot_expr(rng, depth - 1) + ", " +
             random_ot_expr(rng, depth - 1) + ")";
    case 4:
      return "left(" + random_ot_expr(rng, depth - 1) + ")";
    case 5:
      return "right(" + random_ot_expr(rng, depth - 1) + ")";
    case 6:
      // add_top requires an ω-free carrier, so its operand must be a leaf:
      // any nested add_top (even under left/right) would already hold ω.
      return "add_top(" + random_ot_expr(rng, 0) + ")";
    default:
      return "lex(" + random_ot_expr(rng, depth - 1) + ", " +
             random_ot_expr(rng, depth - 1) + ", " +
             random_ot_expr(rng, depth - 1) + ")";
  }
}

std::vector<Tri> property_vector(const AlgebraValue& v) {
  std::vector<Tri> out;
  const PropertyReport& props = lang::props_of(v);
  for (Prop p : props_for(lang::kind_of(v))) out.push_back(props.value(p));
  return out;
}

TEST(MetalangRoundTrip, PrintParseIsAFixedPoint) {
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    Rng rng(par::mix_seed(0x2007, trial));
    const std::string src = "check " + random_ot_expr(rng, 3) + "\n";
    const Expected<Program> p1 = lang::parse(src);
    ASSERT_TRUE(p1.ok()) << src << "\n" << p1.error().to_string();
    const std::string printed = lang::show(*p1);
    const Expected<Program> p2 = lang::parse(printed);
    ASSERT_TRUE(p2.ok()) << printed << "\n" << p2.error().to_string();
    // One trip reaches the fixed point: show(parse(show(parse(src)))) is
    // byte-identical to show(parse(src)).
    EXPECT_EQ(lang::show(*p2), printed) << src;
  }
}

TEST(MetalangRoundTrip, ReparsedExpressionsKeepTheirPropertyVectors) {
  for (std::uint64_t trial = 0; trial < 25; ++trial) {
    Rng rng(par::mix_seed(0x2008, trial));
    const std::string src = "check " + random_ot_expr(rng, 2) + "\n";
    const Expected<Program> p1 = lang::parse(src);
    ASSERT_TRUE(p1.ok()) << src;
    const std::string printed = lang::show(*p1);
    const Expected<Program> p2 = lang::parse(printed);
    ASSERT_TRUE(p2.ok()) << printed;
    ASSERT_EQ(p1->size(), 1u);
    ASSERT_EQ(p2->size(), 1u);

    const Env env;
    const auto v1 = lang::elaborate((*p1)[0].expr, env);
    ASSERT_TRUE(v1.ok()) << src << "\n" << v1.error().to_string();
    const auto v2 = lang::elaborate((*p2)[0].expr, env);
    ASSERT_TRUE(v2.ok()) << printed << "\n" << v2.error().to_string();

    EXPECT_EQ(lang::name_of(*v1), lang::name_of(*v2));
    EXPECT_EQ(property_vector(*v1), property_vector(*v2)) << printed;
  }
}

TEST(MetalangRoundTrip, EveryStatementKindPrintsParseably) {
  const std::string src =
      "let a = lex(sp(3), bw(4))\n"
      "show a\n"
      "check scoped(a, hops)\n"
      "solve hops on ring(5) to 0 from 0\n";
  const Expected<Program> p1 = lang::parse(src);
  ASSERT_TRUE(p1.ok()) << p1.error().to_string();
  ASSERT_EQ(p1->size(), 4u);
  const std::string printed = lang::show(*p1);
  const Expected<Program> p2 = lang::parse(printed);
  ASSERT_TRUE(p2.ok()) << printed << "\n" << p2.error().to_string();
  EXPECT_EQ(lang::show(*p2), printed);
  // The statement kinds survive the trip in order.
  ASSERT_EQ(p2->size(), 4u);
  EXPECT_EQ((*p2)[0].kind, lang::Stmt::Kind::Let);
  EXPECT_EQ((*p2)[1].kind, lang::Stmt::Kind::Show);
  EXPECT_EQ((*p2)[2].kind, lang::Stmt::Kind::Check);
  EXPECT_EQ((*p2)[3].kind, lang::Stmt::Kind::Solve);
  EXPECT_EQ((*p2)[3].dest, 0);
}

TEST(MetalangRoundTrip, UnionThroughALetBindingRoundTrips) {
  // union's operands must share one order object, so it only elaborates
  // through a let-bound name — both occurrences of `a` copy the same
  // OrderTransform and with it the same shared order component.
  const std::string src =
      "let a = sp(4)\n"
      "check union(left(a), right(a))\n";
  const Expected<Program> p1 = lang::parse(src);
  ASSERT_TRUE(p1.ok()) << p1.error().to_string();
  const std::string printed = lang::show(*p1);
  const Expected<Program> p2 = lang::parse(printed);
  ASSERT_TRUE(p2.ok()) << printed;
  EXPECT_EQ(lang::show(*p2), printed);

  for (const Program* p : {&*p1, &*p2}) {
    Env env;
    const auto bound = lang::elaborate((*p)[0].expr, env);
    ASSERT_TRUE(bound.ok()) << bound.error().to_string();
    env.emplace((*p)[0].name, *bound);
    const auto v = lang::elaborate((*p)[1].expr, env);
    ASSERT_TRUE(v.ok()) << v.error().to_string();
    EXPECT_EQ(lang::kind_of(*v), StructureKind::OrderTransform);
  }
}

TEST(MetalangRoundTrip, RealLiteralsSurviveOneTrip) {
  // format_double trims trailing zeros, so the fixed point is reached after
  // the first print; assert idempotence rather than byte equality with the
  // original source.
  const std::string src = "solve rel on line(3) to 0 from 0.5\n";
  const Expected<Program> p1 = lang::parse(src);
  ASSERT_TRUE(p1.ok()) << p1.error().to_string();
  const std::string printed = lang::show(*p1);
  const Expected<Program> p2 = lang::parse(printed);
  ASSERT_TRUE(p2.ok()) << printed;
  EXPECT_EQ(lang::show(*p2), printed);
  EXPECT_NE(printed.find("0.5"), std::string::npos) << printed;
}

}  // namespace
}  // namespace mrt
