// Unit tests for the dynamic layer: TopologyDelta / DynNet semantics, the
// Solver seam, incremental engines vs cold solves on hand-built topologies,
// the MRT_DYN toggle, and the simulator → delta bridge.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/dyn/solver.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/sim/path_vector.hpp"

namespace mrt {
namespace {

using mrt::testing::I;
using dyn::TopologyDelta;

/// Restores the dyn toggle on scope exit.
struct DynToggle {
  explicit DynToggle(bool on) : before(dyn::enabled()) {
    dyn::set_enabled(on);
  }
  ~DynToggle() { dyn::set_enabled(before); }
  bool before;
};

/// Shortest-path chain: carrier {0..n}, ≤, labels = saturating +c.
OrderTransform chain_alg(int n, int hi) {
  return OrderTransform{"chain(<=,sat+)", ord_chain(n),
                        fam_chain_add(n, 1, hi), {}};
}

/// A 4-node diamond: 0→1→3 (cheap), 0→2→3 (expensive), plus 0→3 direct.
///   arcs: 0: (0,1)+1   1: (1,3)+1   2: (0,2)+2   3: (2,3)+2   4: (0,3)+5
LabeledGraph diamond() {
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(1, 3);
  g.add_arc(0, 2);
  g.add_arc(2, 3);
  g.add_arc(0, 3);
  ValueVec labels = {I(1), I(1), I(2), I(2), I(5)};
  return LabeledGraph(std::move(g), std::move(labels));
}

void expect_same_routing(const Routing& a, const Routing& b,
                         const std::string& what) {
  ASSERT_EQ(a.weight.size(), b.weight.size()) << what;
  for (std::size_t v = 0; v < a.weight.size(); ++v) {
    ASSERT_EQ(a.weight[v].has_value(), b.weight[v].has_value())
        << what << " node " << v;
    if (a.weight[v]) {
      EXPECT_EQ(*a.weight[v], *b.weight[v]) << what << " node " << v;
    }
    EXPECT_EQ(a.next_arc[v], b.next_arc[v]) << what << " node " << v;
  }
}

TEST(TopologyDelta, BuildersAndDescribe) {
  TopologyDelta d;
  EXPECT_TRUE(d.empty());
  d.arc_down(3).arc_up(4).relabel(1, I(7)).node_down(2).node_up(0);
  EXPECT_EQ(d.ops.size(), 5u);
  EXPECT_EQ(d.describe(),
            "[arc_down(3), arc_up(4), relabel(1, 7), node_down(2), "
            "node_up(0)]");
}

TEST(DynNet, ApplyReportsNetEffectOnly) {
  dyn::DynNet net(diamond());
  EXPECT_EQ(net.version(), 0u);

  // Downing a live arc changes it; downing it again does not.
  auto ap = net.apply(TopologyDelta{}.arc_down(0));
  EXPECT_EQ(ap.changed_arcs, (std::vector<int>{0}));
  EXPECT_FALSE(net.arc_alive(0));
  ap = net.apply(TopologyDelta{}.arc_down(0));
  EXPECT_TRUE(ap.changed_arcs.empty());
  EXPECT_FALSE(ap.any());
  EXPECT_EQ(net.version(), 2u);  // version bumps per batch regardless

  // A down-then-up flap inside one batch is a net no-op.
  ap = net.apply(TopologyDelta{}.arc_down(1).arc_up(1));
  EXPECT_FALSE(ap.any());

  // Relabel to the same value is a no-op; to a new value it reports both
  // lists, and A→B→A inside one batch nets out.
  ap = net.apply(TopologyDelta{}.relabel(4, I(5)));
  EXPECT_FALSE(ap.any());
  ap = net.apply(TopologyDelta{}.relabel(4, I(3)));
  EXPECT_EQ(ap.changed_arcs, (std::vector<int>{4}));
  EXPECT_EQ(ap.relabeled_arcs, (std::vector<int>{4}));
  EXPECT_EQ(net.label(4), I(3));
  ap = net.apply(TopologyDelta{}.relabel(4, I(9)).relabel(4, I(3)));
  EXPECT_FALSE(ap.any());
}

TEST(DynNet, NodeCrashKillsIncidentArcs) {
  dyn::DynNet net(diamond());
  auto ap = net.apply(TopologyDelta{}.node_down(1));
  EXPECT_EQ(ap.nodes_down, (std::vector<int>{1}));
  // Node 1 touches arcs 0 (0→1) and 1 (1→3).
  EXPECT_EQ(ap.changed_arcs, (std::vector<int>{0, 1}));
  EXPECT_FALSE(net.arc_alive(0));
  EXPECT_FALSE(net.arc_alive(1));
  EXPECT_TRUE(net.arc_admin_up(0));  // admin state untouched by crashes

  // Restart revives exactly those arcs.
  ap = net.apply(TopologyDelta{}.node_up(1));
  EXPECT_EQ(ap.nodes_up, (std::vector<int>{1}));
  EXPECT_EQ(ap.changed_arcs, (std::vector<int>{0, 1}));
  EXPECT_TRUE(net.arc_alive(0));

  // An admin-downed arc stays down through a crash/restart cycle.
  net.apply(TopologyDelta{}.arc_down(0));
  net.apply(TopologyDelta{}.node_down(1));
  ap = net.apply(TopologyDelta{}.node_up(1));
  EXPECT_EQ(ap.changed_arcs, (std::vector<int>{1}));
  EXPECT_FALSE(net.arc_alive(0));
}

TEST(DynNet, ToStateReproducesMasks) {
  const std::vector<bool> arc_up = {true, false, true, true, false};
  const std::vector<bool> node_up = {true, true, false, true};
  const TopologyDelta d = TopologyDelta::to_state(arc_up, node_up);
  dyn::DynNet net(diamond());
  net.apply(d);
  for (int a = 0; a < 5; ++a) {
    EXPECT_EQ(net.arc_admin_up(a), arc_up[static_cast<std::size_t>(a)]) << a;
  }
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(net.node_up(v), node_up[static_cast<std::size_t>(v)]) << v;
  }
}

class SolverSeam : public ::testing::TestWithParam<dyn::EngineKind> {};

TEST_P(SolverSeam, ColdSolveMatchesExpectedDiamond) {
  auto s = dyn::make_solver(GetParam(), chain_alg(20, 5));
  const Routing& r = s->solve(diamond(), 3, I(0));
  ASSERT_TRUE(s->converged());
  EXPECT_EQ(*r.weight[0], I(2));  // 0→1→3
  EXPECT_EQ(*r.weight[1], I(1));
  EXPECT_EQ(*r.weight[2], I(2));
  EXPECT_EQ(*r.weight[3], I(0));
  EXPECT_EQ(r.next_arc[0], 0);
  EXPECT_EQ(r.next_arc[1], 1);
  EXPECT_EQ(r.next_arc[2], 3);
  EXPECT_EQ(r.next_arc[3], -1);
  EXPECT_TRUE(s->last_update().cold);
}

TEST_P(SolverSeam, ArcDownRelabelAndRecoveryMatchCold) {
  const OrderTransform alg = chain_alg(20, 5);
  auto warm = dyn::make_solver(GetParam(), alg);
  warm->solve(diamond(), 3, I(0));

  // Kill the cheap path's first hop: 0 must reroute via 2 (weight 4).
  warm->update(TopologyDelta{}.arc_down(0));
  ASSERT_TRUE(warm->converged());
  EXPECT_EQ(*warm->routing().weight[0], I(4));
  EXPECT_EQ(warm->routing().next_arc[0], 2);
  EXPECT_FALSE(warm->last_update().cold);

  // A cold solver bound to the same post-delta state must agree exactly.
  auto cold = dyn::make_solver(GetParam(), alg);
  cold->solve(diamond(), 3, I(0));
  {
    DynToggle off(false);
    cold->update(TopologyDelta{}.arc_down(0));
    EXPECT_TRUE(cold->last_update().cold);
  }
  expect_same_routing(warm->routing(), cold->routing(), "arc_down");

  // Relabel the detour to be worse than the direct arc.
  warm->update(TopologyDelta{}.relabel(3, I(9)));
  {
    DynToggle off(false);
    cold->update(TopologyDelta{}.relabel(3, I(9)));
  }
  expect_same_routing(warm->routing(), cold->routing(), "relabel");
  EXPECT_EQ(warm->routing().next_arc[0], 4);  // direct 0→3 at weight 5

  // Bring the cheap path back: warm must *improve* frozen nodes.
  warm->update(TopologyDelta{}.arc_up(0));
  {
    DynToggle off(false);
    cold->update(TopologyDelta{}.arc_up(0));
  }
  expect_same_routing(warm->routing(), cold->routing(), "arc_up");
  EXPECT_EQ(*warm->routing().weight[0], I(2));
}

TEST_P(SolverSeam, DestCrashWithdrawsEverywhereAndRestartRecovers) {
  const OrderTransform alg = chain_alg(20, 5);
  auto s = dyn::make_solver(GetParam(), alg);
  const Routing cold_start = s->solve(diamond(), 3, I(0));

  s->update(TopologyDelta{}.node_down(3));
  ASSERT_TRUE(s->converged());
  for (int v = 0; v < 4; ++v) {
    EXPECT_FALSE(s->routing().weight[static_cast<std::size_t>(v)].has_value())
        << v;
    EXPECT_EQ(s->routing().next_arc[static_cast<std::size_t>(v)], -1) << v;
  }

  s->update(TopologyDelta{}.node_up(3));
  ASSERT_TRUE(s->converged());
  expect_same_routing(s->routing(), cold_start, "dest restart");
}

TEST_P(SolverSeam, MidCrashPartitionsAndHeals) {
  // Line 0→1→2→3 (dest 3): crashing 1 strands 0; node 2 keeps its route.
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(2, 3);
  LabeledGraph net(std::move(g), {I(1), I(1), I(1)});
  const OrderTransform alg = chain_alg(20, 5);
  auto s = dyn::make_solver(GetParam(), alg);
  const Routing before = s->solve(net, 3, I(0));

  s->update(TopologyDelta{}.node_down(1));
  ASSERT_TRUE(s->converged());
  EXPECT_FALSE(s->routing().weight[0].has_value());
  EXPECT_FALSE(s->routing().weight[1].has_value());
  EXPECT_EQ(*s->routing().weight[2], I(1));
  // The blast radius excludes the surviving side of the partition.
  EXPECT_LE(s->last_update().affected, 2);

  s->update(TopologyDelta{}.node_up(1));
  ASSERT_TRUE(s->converged());
  expect_same_routing(s->routing(), before, "heal");
}

TEST_P(SolverSeam, EmptyDeltaIsFreeAndKeepsRouting) {
  auto s = dyn::make_solver(GetParam(), chain_alg(20, 5));
  const Routing before = s->solve(diamond(), 3, I(0));
  s->update(TopologyDelta{});
  EXPECT_EQ(s->last_update().affected, 0);
  EXPECT_FALSE(s->last_update().cold);
  expect_same_routing(s->routing(), before, "noop");
  // Idempotent ops (downing a down arc) are also free.
  s->update(TopologyDelta{}.arc_down(0));
  s->update(TopologyDelta{}.arc_down(0));
  EXPECT_EQ(s->last_update().affected, 0);
}

TEST_P(SolverSeam, CloneIsIndependent) {
  auto s = dyn::make_solver(GetParam(), chain_alg(20, 5));
  s->solve(diamond(), 3, I(0));
  auto c = s->clone();
  c->update(TopologyDelta{}.arc_down(0));
  // The original is untouched by the clone's delta.
  EXPECT_EQ(*s->routing().weight[0], I(2));
  EXPECT_EQ(*c->routing().weight[0], I(4));
  EXPECT_EQ(s->net().version(), 0u + 0u);
  EXPECT_TRUE(c->net().version() > s->net().version());
}

TEST_P(SolverSeam, DisabledToggleForcesColdWithIdenticalResults) {
  const OrderTransform alg = chain_alg(20, 5);
  auto warm = dyn::make_solver(GetParam(), alg);
  auto cold = dyn::make_solver(GetParam(), alg);
  warm->solve(diamond(), 3, I(0));
  cold->solve(diamond(), 3, I(0));
  const TopologyDelta d = TopologyDelta{}.arc_down(1).relabel(2, I(1));
  warm->update(d);
  {
    DynToggle off(false);
    cold->update(d);
    EXPECT_TRUE(cold->last_update().cold);
  }
  EXPECT_FALSE(warm->last_update().cold);
  expect_same_routing(warm->routing(), cold->routing(), "toggle");
}

TEST_P(SolverSeam, CompiledEngineAgreesWithBoxed) {
  const OrderTransform alg = chain_alg(20, 5);
  const compile::WeightEngine eng(alg);
  auto compiled = dyn::make_solver(GetParam(), alg, &eng);
  auto boxed = dyn::make_solver(GetParam(), alg);
  compiled->solve(diamond(), 3, I(0));
  boxed->solve(diamond(), 3, I(0));
  expect_same_routing(compiled->routing(), boxed->routing(), "cold");
  const TopologyDelta d = TopologyDelta{}.relabel(0, I(4)).arc_down(3);
  compiled->update(d);
  boxed->update(d);
  expect_same_routing(compiled->routing(), boxed->routing(), "update");
}

INSTANTIATE_TEST_SUITE_P(Engines, SolverSeam,
                         ::testing::Values(dyn::EngineKind::Dijkstra,
                                           dyn::EngineKind::Bellman),
                         [](const auto& info) {
                           return info.param == dyn::EngineKind::Dijkstra
                                      ? "Dijkstra"
                                      : "Bellman";
                         });

TEST(SimDeltaBridge, SimResultDeltaReproducesSurvivingTopology) {
  // A faulted simulator run's delta, applied to a fresh DynNet, must land on
  // exactly the surviving topology the result reports.
  const OrderTransform alg = chain_alg(20, 5);
  LabeledGraph net = diamond();
  SimOptions opts;
  opts.seed = 42;
  PathVectorSim sim(alg, net, 3, I(0), opts);
  sim.schedule_link_down(0.5, 0);
  sim.schedule_node_down(1.0, 2);
  const SimResult res = sim.run();
  ASSERT_TRUE(res.converged);

  dyn::DynNet dnet(net);
  dnet.apply(res.delta);
  for (int a = 0; a < net.graph().num_arcs(); ++a) {
    EXPECT_EQ(dnet.arc_alive(a), res.arc_alive[static_cast<std::size_t>(a)])
        << "arc " << a;
  }
  for (int v = 0; v < net.num_nodes(); ++v) {
    EXPECT_EQ(dnet.node_up(v), res.node_up[static_cast<std::size_t>(v)])
        << "node " << v;
  }

  // And feeding it through the seam gives the quiesced protocol's weights
  // (increasing chain algebra: unique optimum).
  auto s = dyn::make_solver(dyn::EngineKind::Dijkstra, alg);
  s->solve(net, 3, I(0));
  const Routing& truth = s->update(res.delta);
  for (int v = 0; v < net.num_nodes(); ++v) {
    const std::size_t vi = static_cast<std::size_t>(v);
    ASSERT_EQ(truth.weight[vi].has_value(), res.routing.weight[vi].has_value())
        << v;
    if (truth.weight[vi]) {
      EXPECT_EQ(*truth.weight[vi], *res.routing.weight[vi]) << v;
    }
  }
}

TEST(CompiledNetRelabel, ReencodesSingleArc) {
  const OrderTransform alg = chain_alg(20, 5);
  const compile::WeightEngine eng(alg);
  LabeledGraph net = diamond();
  compile::CompiledNet cn = compile::CompiledNet::make(eng, net);
  ASSERT_TRUE(cn.ok());
  EXPECT_TRUE(cn.relabel(0, I(3)));
  // The recompiled program must behave like a from-scratch compilation.
  net.relabel(0, I(3));
  const compile::CompiledNet fresh = compile::CompiledNet::make(eng, net);
  std::vector<std::uint64_t> a(static_cast<std::size_t>(cn.words()), 0);
  std::vector<std::uint64_t> b(a);
  ASSERT_TRUE(cn.algebra().encode(I(1), a.data()));
  ASSERT_TRUE(fresh.algebra().encode(I(1), b.data()));
  cn.algebra().apply(cn.label(0), a.data());
  fresh.algebra().apply(fresh.label(0), b.data());
  EXPECT_EQ(cn.algebra().decode(a.data()), fresh.algebra().decode(b.data()));
}

}  // namespace
}  // namespace mrt
