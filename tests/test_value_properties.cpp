// Property-based sweep over randomly generated nested Values: the canonical
// order must be a strict total order consistent with equality, hashing must
// respect equality, and printing must round-trip structural distinctions.
#include <gtest/gtest.h>

#include <unordered_set>

#include "mrt/core/value.hpp"
#include "mrt/support/rng.hpp"

namespace mrt {
namespace {

Value random_value(Rng& rng, int depth) {
  const int kind = static_cast<int>(rng.range(0, depth > 0 ? 6 : 4));
  switch (kind) {
    case 0: return Value::unit();
    case 1: return Value::integer(rng.range(-3, 3));
    case 2: return Value::real(static_cast<double>(rng.range(0, 4)) / 4.0);
    case 3: return Value::inf();
    case 4: return Value::omega();
    case 5: {
      ValueVec elems;
      const int n = static_cast<int>(rng.range(0, 3));
      for (int i = 0; i < n; ++i) elems.push_back(random_value(rng, depth - 1));
      return Value::tuple(std::move(elems));
    }
    default:
      return Value::tagged(static_cast<int>(rng.range(1, 3)),
                           random_value(rng, depth - 1));
  }
}

class ValueFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ValueFuzz, CanonicalOrderIsConsistent) {
  Rng rng(0xFA22 + static_cast<std::uint64_t>(GetParam()));
  ValueVec vs;
  for (int i = 0; i < 40; ++i) vs.push_back(random_value(rng, 3));

  for (const Value& a : vs) {
    EXPECT_EQ(a.compare(a), 0);
    EXPECT_EQ(a, a);
    for (const Value& b : vs) {
      // Antisymmetry of the three-way comparison.
      EXPECT_EQ(a.compare(b) == 0, b.compare(a) == 0);
      EXPECT_EQ(a.compare(b) < 0, b.compare(a) > 0);
      // Equality ⇔ compare == 0, and hash respects it.
      EXPECT_EQ(a == b, a.compare(b) == 0);
      if (a == b) {
        EXPECT_EQ(a.hash(), b.hash());
        EXPECT_EQ(a.to_string(), b.to_string());
      }
      // Transitivity spot check.
      for (const Value& c : vs) {
        if (a.compare(b) <= 0 && b.compare(c) <= 0) {
          EXPECT_LE(a.compare(c), 0)
              << a.to_string() << " " << b.to_string() << " " << c.to_string();
        }
      }
    }
  }
}

TEST_P(ValueFuzz, NormalizeSetIsIdempotentAndSorted) {
  Rng rng(0x5E7 + static_cast<std::uint64_t>(GetParam()));
  ValueVec vs;
  for (int i = 0; i < 30; ++i) vs.push_back(random_value(rng, 2));
  const ValueVec once = normalize_set(vs);
  EXPECT_EQ(normalize_set(once), once);
  for (std::size_t i = 1; i < once.size(); ++i) {
    EXPECT_LT(once[i - 1].compare(once[i]), 0);
  }
  // Every input value appears exactly once.
  for (const Value& v : vs) {
    EXPECT_NE(std::find(once.begin(), once.end(), v), once.end());
  }
}

TEST_P(ValueFuzz, HashDistinguishesMostValues) {
  Rng rng(0x4A54 + static_cast<std::uint64_t>(GetParam()));
  std::unordered_set<Value, ValueHash> set;
  ValueVec distinct;
  for (int i = 0; i < 200; ++i) {
    Value v = random_value(rng, 3);
    if (std::find(distinct.begin(), distinct.end(), v) == distinct.end()) {
      distinct.push_back(v);
    }
    set.insert(std::move(v));
  }
  EXPECT_EQ(set.size(), distinct.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueFuzz, ::testing::Range(0, 10));

}  // namespace
}  // namespace mrt
