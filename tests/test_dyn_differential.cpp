// Differential property suite for the dynamic layer: warm incremental
// update() must be byte-identical (weights AND witness arcs) to a cold
// re-solve of the same post-delta topology, across random chain algebras ×
// random connected graphs × random single/multi-op delta batches — over a
// thousand batches per run. The license: both engines canonicalize their
// routings, and the chain carriers are antisymmetric total orders, so the
// unique fixed point has a unique normal form (docs/DYN.md).
//
// The suite also pins the seam against the *pre-dyn* ground truth: weights
// must match a from-scratch generalized Dijkstra on the renumbered alive
// subgraph (exactly what the chaos oracles ran before this layer existed),
// and the Bellman and Dijkstra engines must agree with each other on these
// distributive instances.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/dyn/solver.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/par/par.hpp"
#include "mrt/routing/dijkstra.hpp"

namespace mrt {
namespace {

using mrt::testing::I;
using dyn::TopologyDelta;

struct DynInstance {
  OrderTransform ot;
  LabeledGraph net;
  int n = 0;        ///< carrier top
  int label_lo = 0;  ///< valid relabel range
  int label_hi = 0;
  std::string desc;
};

/// ⊗ = saturating +c, c ∈ [1, hi]: the increasing shortest-path chain.
DynInstance sat_plus_instance(Rng& rng) {
  const int n = 4 + static_cast<int>(rng.below(6));
  const int hi =
      1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n - 1)));
  Digraph g = random_connected(rng, 5 + static_cast<int>(rng.below(6)),
                               3 + static_cast<int>(rng.below(6)));
  ValueVec labels;
  for (int id = 0; id < g.num_arcs(); ++id) {
    labels.push_back(I(rng.range(1, hi)));
  }
  return DynInstance{OrderTransform{"chain(<=,sat+)", ord_chain(n),
                                    fam_chain_add(n, 1, hi), {}},
                     LabeledGraph(std::move(g), std::move(labels)),
                     n,
                     1,
                     hi,
                     "sat_plus n=" + std::to_string(n)};
}

/// ⊗ = max(·, c), c ∈ [0, n]: ND but not increasing (widest-path-like).
DynInstance chain_max_instance(Rng& rng) {
  const int n = 4 + static_cast<int>(rng.below(6));
  Digraph g = random_connected(rng, 5 + static_cast<int>(rng.below(6)),
                               3 + static_cast<int>(rng.below(6)));
  ValueVec labels;
  for (int id = 0; id < g.num_arcs(); ++id) {
    labels.push_back(I(rng.range(0, n)));
  }
  std::vector<std::vector<int>> fns;
  for (int c = 0; c <= n; ++c) {
    std::vector<int> f;
    for (int x = 0; x <= n; ++x) f.push_back(std::max(x, c));
    fns.push_back(std::move(f));
  }
  return DynInstance{OrderTransform{"chain(<=,max)", ord_chain(n),
                                    fam_table("{max(.,c)}", n + 1,
                                              std::move(fns)),
                                    {}},
                     LabeledGraph(std::move(g), std::move(labels)),
                     n,
                     0,
                     n,
                     "chain_max n=" + std::to_string(n)};
}

/// A random batch of 1–4 edits over the instance's arcs/nodes, biased
/// toward arc flaps (the common case) with relabels and crashes mixed in.
TopologyDelta random_delta(Rng& rng, const DynInstance& inst, int dest) {
  TopologyDelta d;
  const int m = inst.net.graph().num_arcs();
  const int n = inst.net.num_nodes();
  const int ops = 1 + static_cast<int>(rng.below(4));
  for (int i = 0; i < ops; ++i) {
    const int arc = static_cast<int>(rng.below(static_cast<std::uint64_t>(m)));
    const int node =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    switch (rng.below(8)) {
      case 0:
      case 1:
      case 2:
        d.arc_down(arc);
        break;
      case 3:
      case 4:
        d.arc_up(arc);
        break;
      case 5:
        d.relabel(arc, I(rng.range(inst.label_lo, inst.label_hi)));
        break;
      case 6:
        d.node_down(node);
        break;
      default:
        d.node_up(node);
        break;
    }
  }
  (void)dest;
  return d;
}

void expect_identical(const Routing& a, const Routing& b,
                      const std::string& what) {
  ASSERT_EQ(a.weight.size(), b.weight.size()) << what;
  for (std::size_t v = 0; v < a.weight.size(); ++v) {
    ASSERT_EQ(a.weight[v].has_value(), b.weight[v].has_value())
        << what << " node " << v;
    if (a.weight[v]) {
      ASSERT_EQ(*a.weight[v], *b.weight[v]) << what << " node " << v;
    }
    ASSERT_EQ(a.next_arc[v], b.next_arc[v]) << what << " node " << v;
  }
}

/// The pre-dyn oracle path: from-scratch dijkstra on the renumbered alive
/// subgraph (dead arcs dropped, node set preserved).
Routing legacy_subgraph_dijkstra(const OrderTransform& alg,
                                 const dyn::DynNet& dnet, int dest,
                                 const Value& origin) {
  Digraph g(dnet.num_nodes());
  ValueVec labels;
  for (int id = 0; id < dnet.graph().num_arcs(); ++id) {
    if (!dnet.arc_alive(id)) continue;
    const Arc& a = dnet.graph().arc(id);
    g.add_arc(a.src, a.dst);
    labels.push_back(dnet.label(id));
  }
  return dijkstra(alg, LabeledGraph(std::move(g), std::move(labels)), dest,
                  origin);
}

TEST(DynDifferential, WarmUpdateByteIdenticalToColdAcrossThousandDeltas) {
  constexpr int kTrials = 72;
  constexpr int kBatches = 16;  // 72 × 16 = 1152 delta batches
  long warm_batches = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(par::mix_seed(0xD1DE, static_cast<std::uint64_t>(trial)));
    DynInstance inst =
        (trial % 2 == 0) ? sat_plus_instance(rng) : chain_max_instance(rng);
    inst.desc += " trial " + std::to_string(trial);
    const int dest =
        static_cast<int>(rng.below(
            static_cast<std::uint64_t>(inst.net.num_nodes())));
    const dyn::EngineKind kind = (trial % 4 < 2) ? dyn::EngineKind::Dijkstra
                                                 : dyn::EngineKind::Bellman;
    // Every fourth trial routes the warm solver through compiled kernels.
    const compile::WeightEngine eng(inst.ot);
    const compile::WeightEngine* weng = (trial % 4 == 0) ? &eng : nullptr;

    auto warm = dyn::make_solver(kind, inst.ot, weng);
    auto cold = dyn::make_solver(kind, inst.ot);
    warm->solve(inst.net, dest, I(0));
    cold->solve(inst.net, dest, I(0));
    expect_identical(warm->routing(), cold->routing(),
                     inst.desc + " initial solve");

    for (int b = 0; b < kBatches; ++b) {
      const TopologyDelta d = random_delta(rng, inst, dest);
      warm->update(d);
      {
        // MRT_DYN off: the cold twin applies the same delta with the
        // pre-dyn work profile (full masked re-solve).
        const bool before = dyn::enabled();
        dyn::set_enabled(false);
        cold->update(d);
        dyn::set_enabled(before);
      }
      // A batch with no net effect short-circuits before the solve; any
      // batch that changed arcs must have gone through the cold path.
      if (cold->last_update().changed_arcs > 0) {
        ASSERT_TRUE(cold->last_update().cold) << inst.desc;
      }
      ASSERT_EQ(warm->converged(), cold->converged()) << inst.desc;
      if (!warm->converged()) continue;
      if (!warm->last_update().cold) ++warm_batches;
      expect_identical(warm->routing(), cold->routing(),
                       inst.desc + " batch " + std::to_string(b) + " " +
                           d.describe());
      // Pre-dyn ground truth: weights of a fresh solve on the renumbered
      // alive subgraph (what the chaos oracles used to run).
      if (warm->net().node_up(dest)) {
        const Routing legacy =
            legacy_subgraph_dijkstra(inst.ot, warm->net(), dest, I(0));
        for (int v = 0; v < inst.net.num_nodes(); ++v) {
          const std::size_t vi = static_cast<std::size_t>(v);
          const bool legacy_has =
              legacy.weight[vi].has_value() && warm->net().node_up(v);
          ASSERT_EQ(warm->routing().weight[vi].has_value(), legacy_has)
              << inst.desc << " node " << v;
          if (legacy_has) {
            ASSERT_EQ(*warm->routing().weight[vi], *legacy.weight[vi])
                << inst.desc << " node " << v;
          }
        }
      } else {
        for (std::size_t vi = 0; vi < warm->routing().weight.size(); ++vi) {
          ASSERT_FALSE(warm->routing().weight[vi].has_value())
              << inst.desc << " node " << vi;
        }
      }
    }
  }
  // The suite must actually exercise the incremental path, not fall back
  // cold everywhere.
  EXPECT_GT(warm_batches, 500) << "incremental path barely exercised";
}

TEST(DynDifferential, EnginesAgreeByteForByteUnderDeltas) {
  // Distributive chains: local optima are global, and canonicalization
  // gives both engines the same normal form — so Dijkstra and Bellman
  // must produce identical bytes after every batch.
  constexpr int kTrials = 24;
  constexpr int kBatches = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(par::mix_seed(0xD1DF, static_cast<std::uint64_t>(trial)));
    DynInstance inst =
        (trial % 2 == 0) ? sat_plus_instance(rng) : chain_max_instance(rng);
    const int dest =
        static_cast<int>(rng.below(
            static_cast<std::uint64_t>(inst.net.num_nodes())));
    auto dj = dyn::make_solver(dyn::EngineKind::Dijkstra, inst.ot);
    auto bf = dyn::make_solver(dyn::EngineKind::Bellman, inst.ot);
    dj->solve(inst.net, dest, I(0));
    bf->solve(inst.net, dest, I(0));
    expect_identical(dj->routing(), bf->routing(), inst.desc + " cold");
    for (int b = 0; b < kBatches; ++b) {
      const TopologyDelta d = random_delta(rng, inst, dest);
      dj->update(d);
      bf->update(d);
      ASSERT_TRUE(dj->converged() && bf->converged()) << inst.desc;
      expect_identical(dj->routing(), bf->routing(),
                       inst.desc + " batch " + std::to_string(b));
    }
  }
}

TEST(DynDifferential, AffectedSetStaysLocalForSingleArcFlaps) {
  // On a ring, a single arc flap's blast radius must not engulf the whole
  // network on average — the point of incremental recomputation.
  Rng rng(0xAFFEC7);
  const int n = 32;
  Digraph g = ring(n);
  ValueVec labels;
  for (int id = 0; id < g.num_arcs(); ++id) labels.push_back(I(1));
  DynInstance inst{OrderTransform{"chain(<=,sat+)", ord_chain(64),
                                  fam_chain_add(64, 1, 1), {}},
                   LabeledGraph(std::move(g), std::move(labels)),
                   64,
                   1,
                   1,
                   "ring"};
  auto s = dyn::make_solver(dyn::EngineKind::Dijkstra, inst.ot);
  s->solve(inst.net, 0, I(0));
  long total_affected = 0;
  long updates = 0;
  const int m = inst.net.graph().num_arcs();
  for (int b = 0; b < 200; ++b) {
    const int arc = static_cast<int>(rng.below(static_cast<std::uint64_t>(m)));
    s->update(TopologyDelta{}.arc_down(arc));
    ASSERT_FALSE(s->last_update().cold);
    total_affected += s->last_update().affected;
    ++updates;
    s->update(TopologyDelta{}.arc_up(arc));
    total_affected += s->last_update().affected;
    ++updates;
  }
  const double mean_fraction =
      static_cast<double>(total_affected) / (static_cast<double>(updates) * n);
  EXPECT_LT(mean_fraction, 0.75) << "incremental updates touched almost "
                                    "everything on average";
}

}  // namespace
}  // namespace mrt
