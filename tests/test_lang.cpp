// The metarouting language front end: lexer, parser, elaboration (with
// quadrant type checking), and the interpreter's let/show/check statements.
#include <gtest/gtest.h>

#include "mrt/lang/interp.hpp"
#include "mrt/lang/lexer.hpp"
#include "mrt/lang/parser.hpp"

namespace mrt::lang {
namespace {

TEST(Lexer, TokenStream) {
  auto toks = tokenize("let a = lex(sp, bw)  // comment\nshow a");
  ASSERT_TRUE(toks.ok());
  std::vector<TokKind> kinds;
  for (const Token& t : *toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokKind>{
                       TokKind::KwLet, TokKind::Ident, TokKind::Equals,
                       TokKind::Ident, TokKind::LParen, TokKind::Ident,
                       TokKind::Comma, TokKind::Ident, TokKind::RParen,
                       TokKind::Semi, TokKind::KwShow, TokKind::Ident,
                       TokKind::Semi, TokKind::End}));
}

TEST(Lexer, NumbersAndPositions) {
  auto toks = tokenize("chain(4, 1.5)");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[2].int_value, 4);
  EXPECT_EQ((*toks)[4].real_value, 1.5);
  EXPECT_EQ((*toks)[0].line, 1);
  EXPECT_EQ((*toks)[0].column, 1);
  EXPECT_EQ((*toks)[2].column, 7);
}

TEST(Lexer, RejectsStrayCharacters) {
  auto toks = tokenize("let a = @");
  ASSERT_FALSE(toks.ok());
  EXPECT_NE(toks.error().message.find("unexpected character"),
            std::string::npos);
  EXPECT_EQ(toks.error().column, 9);
}

TEST(Parser, NestedCalls) {
  auto prog = parse("let x = scoped(lex(bw, sp), chain(3))");
  ASSERT_TRUE(prog.ok());
  ASSERT_EQ(prog->size(), 1u);
  const Stmt& s = (*prog)[0];
  EXPECT_EQ(s.kind, Stmt::Kind::Let);
  EXPECT_EQ(s.name, "x");
  EXPECT_EQ(s.expr->show(), "scoped(lex(bw, sp), chain(3))");
}

TEST(Parser, StatementsSeparatedByNewlinesAndSemis) {
  auto prog = parse("let a = sp; let b = bw\nshow a\n\ncheck b");
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog->size(), 4u);
  EXPECT_EQ((*prog)[2].kind, Stmt::Kind::Show);
  EXPECT_EQ((*prog)[3].kind, Stmt::Kind::Check);
}

TEST(Parser, ErrorsCarryPositions) {
  auto prog = parse("let = sp");
  ASSERT_FALSE(prog.ok());
  EXPECT_NE(prog.error().message.find("a name after 'let'"),
            std::string::npos);

  auto prog2 = parse("show lex(sp,");
  ASSERT_FALSE(prog2.ok());

  auto prog3 = parse("sp");
  ASSERT_FALSE(prog3.ok());
  EXPECT_NE(prog3.error().message.find("'let', 'show', 'check' or 'solve'"),
            std::string::npos);
}

TEST(Elaborate, BasesAndCombinators) {
  Env env;
  auto parse1 = [](const char* src) {
    auto p = parse(std::string("let x = ") + src);
    return (*p)[0].expr;
  };
  for (const char* src :
       {"sp", "bw", "rel", "hops", "chain(4)", "gadget", "sp_os", "bw_os",
        "rel_os", "sp_bs", "bw_bs", "count_bs", "sp_st",
        "lex(sp, bw)", "lex(sp, bw, rel)", "scoped(bw, sp)", "delta(sp, bw)",
        "left(bw)", "right(sp)", "cayley(sp_os)", "cayley(sp_bs)",
        "no_l(sp_bs)", "no_r(sp_st)", "minset(bw)", "lex_omega(sp, bw)"}) {
    auto v = elaborate(parse1(src), env);
    EXPECT_TRUE(v.ok()) << src << ": "
                        << (v.ok() ? "" : v.error().to_string());
  }
}

TEST(Elaborate, DerivedPropertiesVisible) {
  Env env;
  auto p = parse("let x = lex(bw, sp)");
  auto v = elaborate((*p)[0].expr, env);
  ASSERT_TRUE(v.ok());
  // The bandwidth-then-delay product is derived non-monotone (Thm 4).
  EXPECT_EQ(props_of(*v).value(Prop::M_L), Tri::False);

  auto p2 = parse("let y = scoped(bw, sp)");
  auto v2 = elaborate((*p2)[0].expr, env);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(props_of(*v2).value(Prop::M_L), Tri::True);
}

TEST(Elaborate, QuadrantTypeErrors) {
  Env env;
  auto first_expr = [](const std::string& src) {
    auto p = parse("let x = " + src);
    return (*p)[0].expr;
  };
  struct Case {
    const char* src;
    const char* fragment;
  };
  for (const Case& c : std::initializer_list<Case>{
           {"scoped(sp_bs, sp)", "must be an order transform"},
           {"lex(sp, sp_bs)", "same quadrant"},
           {"cayley(sp)", "bisemigroup or an order semigroup"},
           {"no_l(sp)", "bisemigroup or semigroup transform"},
           {"minset(sp_st)", "must be an order transform"},
           {"union(left(sp), right(bw))", "share one order component"},
           {"frobnicate(sp)", "unknown algebra or operator"},
           {"lex(sp)", "at least 2"},
           {"chain(0)", "n must be >= 1"},
           {"lex(3, sp)", "found a number"},
           {"sp(1, 2)", ""}}) {
    auto v = elaborate(first_expr(c.src), env);
    if (std::string(c.fragment).empty()) {
      continue;  // only checking it does not crash
    }
    ASSERT_FALSE(v.ok()) << c.src;
    EXPECT_NE(v.error().message.find(c.fragment), std::string::npos)
        << c.src << " -> " << v.error().message;
  }
}

TEST(Elaborate, EnvironmentLookup) {
  Interp in;
  auto out = in.run("let a = bw\nlet b = lex(a, sp)");
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_NE(out->find("b = lex("), std::string::npos);
}

TEST(Interp, ShowRendersPropertyTable) {
  Interp in;
  auto out = in.run("show lex(bw, sp)");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("| M "), std::string::npos);
  EXPECT_NE(out->find("no"), std::string::npos);   // ¬M derived
  EXPECT_NE(out->find("rule:"), std::string::npos);
}

TEST(Interp, CheckFillsUnknownsWithCounterexamples) {
  Interp in;
  auto out = in.run("let g = gadget\ncheck g");
  ASSERT_TRUE(out.ok());
  // The gadget is finite: everything decided, with witnesses.
  EXPECT_EQ(out->find("| ?"), std::string::npos);
  EXPECT_NE(out->find("checked:"), std::string::npos);
}

TEST(Interp, ErrorsSurfaceWithPositions) {
  Interp in;
  auto out = in.run("let a = lex(sp, unknown_thing)");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().line, 1);
  EXPECT_NE(out.error().message.find("unknown_thing"), std::string::npos);
}

TEST(Interp, RebindingIsAllowed) {
  Interp in;
  auto out = in.run("let a = sp\nlet a = bw\nshow a");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("(N, >=, {min(.,c)})"), std::string::npos);
}

}  // namespace
}  // namespace mrt::lang
