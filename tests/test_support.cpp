#include <gtest/gtest.h>

#include <set>

#include "mrt/support/expected.hpp"
#include "mrt/support/require.hpp"
#include "mrt/support/rng.hpp"
#include "mrt/support/strings.hpp"
#include "mrt/support/table.hpp"

namespace mrt {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(Rng, BelowHitsEveryResidue) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> xs{1, 2, 3, 4, 5, 6};
  auto ys = xs;
  rng.shuffle(ys);
  std::sort(ys.begin(), ys.end());
  EXPECT_EQ(xs, ys);
}

TEST(Rng, PickRequiresNonEmpty) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::logic_error);
}

TEST(Rng, SplitIndependent) {
  Rng a(42);
  Rng b = a.split();
  EXPECT_NE(a.next(), b.next());
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"x"}, ", "), "x");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Pad) {
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(0.125), "0.125");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.10000, 4), "0.1");
}

TEST(Table, RendersAligned) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string r = t.render();
  EXPECT_NE(r.find("| name   | value |"), std::string::npos);
  EXPECT_NE(r.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Expected, ValueAndError) {
  Expected<int> ok(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);

  Expected<int> bad(Error{"boom", 3, 4});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().to_string(), "3:4: boom");
  EXPECT_THROW(bad.value(), std::logic_error);
}

TEST(Require, ThrowsWithLocation) {
  try {
    MRT_REQUIRE(1 == 2);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace mrt
