// Theorem 4 (and Theorem 1 as its total-order special case): the exact
// characterization of monotonicity for lexicographic products, validated by
// brute force in all four quadrants:
//
//     M(S ⃗× T)  ⟺  M(S) ∧ M(T) ∧ (N(S) ∨ C(T))
//
// Components are finite and fully decided by the checker; the rule's output
// must therefore be decided and must equal the oracle's verdict on the
// product — in both truth directions. Corollary 1 (two-sided monotonicity)
// is validated the same way.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/inference.hpp"
#include "mrt/core/random_algebra.hpp"

namespace mrt {
namespace {

using mrt::testing::expect_exact;

const Checker& checker() {
  static const Checker chk;
  return chk;
}

template <typename A>
A with_report(A a) {
  a.props = checker().report(a);
  return a;
}

// --- Order transforms ------------------------------------------------------

class Thm4OrderTransform : public ::testing::TestWithParam<int> {};

TEST_P(Thm4OrderTransform, ExactInBothDirections) {
  Rng rng(0xA110C + static_cast<std::uint64_t>(GetParam()));
  const OrderTransform s = with_report(random_order_transform(rng));
  const OrderTransform t = with_report(random_order_transform(rng));
  const OrderTransform p = lex(s, t);

  const std::string ctx = "seed " + std::to_string(GetParam());
  for (Prop prop : {Prop::M_L, Prop::N_L, Prop::C_L}) {
    expect_exact(prop, p.props.value(prop), checker().prop(p, prop).verdict,
                 ctx);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Thm4OrderTransform, ::testing::Range(0, 120));

// --- Order semigroups (general preorders, and Saitô's total-order case) ----

class Thm4OrderSemigroup : public ::testing::TestWithParam<int> {};

TEST_P(Thm4OrderSemigroup, ExactInBothDirections) {
  Rng rng(0x05E3 + static_cast<std::uint64_t>(GetParam()));
  const OrderSemigroup s = with_report(random_order_semigroup(rng));
  const OrderSemigroup t = with_report(random_order_semigroup(rng));
  const OrderSemigroup p = lex(s, t);

  const std::string ctx = "seed " + std::to_string(GetParam());
  for (Prop prop : {Prop::M_L, Prop::M_R, Prop::N_L, Prop::N_R, Prop::C_L,
                    Prop::C_R}) {
    expect_exact(prop, p.props.value(prop), checker().prop(p, prop).verdict,
                 ctx);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Thm4OrderSemigroup, ::testing::Range(0, 120));

class Thm1Saito : public ::testing::TestWithParam<int> {};

TEST_P(Thm1Saito, TotalOrderSpecialCase) {
  Rng rng(0x5A170 + static_cast<std::uint64_t>(GetParam()));
  const int n = static_cast<int>(rng.range(2, 4));
  const int m = static_cast<int>(rng.range(2, 4));
  OrderSemigroup s{"s", random_total_preorder(rng, n), random_magma(rng, n),
                   {}};
  OrderSemigroup t{"t", random_total_preorder(rng, m), random_magma(rng, m),
                   {}};
  s.props = checker().report(s);
  t.props = checker().report(t);
  const OrderSemigroup p = lex(s, t);

  // Saitô's statement, recomputed by hand from component oracle verdicts.
  const Tri saito =
      tri_and(tri_and(s.props.value(Prop::M_L), t.props.value(Prop::M_L)),
              tri_or(s.props.value(Prop::N_L), t.props.value(Prop::C_L)));
  expect_exact(Prop::M_L, saito, checker().prop(p, Prop::M_L).verdict,
               "seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Thm1Saito, ::testing::Range(0, 80));

// --- Corollary 1: two-sided monotonicity -----------------------------------

class Cor1TwoSided : public ::testing::TestWithParam<int> {};

TEST_P(Cor1TwoSided, FourCaseCharacterization) {
  Rng rng(0xC021 + static_cast<std::uint64_t>(GetParam()));
  const OrderSemigroup s = with_report(random_order_semigroup(rng));
  const OrderSemigroup t = with_report(random_order_semigroup(rng));
  const OrderSemigroup p = lex(s, t);

  const Tri both_m = tri_and(
      tri_and(s.props.value(Prop::M_L), s.props.value(Prop::M_R)),
      tri_and(t.props.value(Prop::M_L), t.props.value(Prop::M_R)));
  const Tri cases = tri_or(
      tri_or(tri_and(s.props.value(Prop::N_L), s.props.value(Prop::N_R)),
             tri_and(s.props.value(Prop::N_L), t.props.value(Prop::C_R))),
      tri_or(tri_and(s.props.value(Prop::N_R), t.props.value(Prop::C_L)),
             tri_and(t.props.value(Prop::C_L), t.props.value(Prop::C_R))));
  const Tri corollary = tri_and(both_m, cases);

  const Tri oracle = tri_and(checker().prop(p, Prop::M_L).verdict,
                             checker().prop(p, Prop::M_R).verdict);
  expect_exact(Prop::M_L, corollary, oracle,
               "seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Cor1TwoSided, ::testing::Range(0, 80));

// --- Semigroup transforms ---------------------------------------------------

class Thm4SemigroupTransform : public ::testing::TestWithParam<int> {};

TEST_P(Thm4SemigroupTransform, ExactInBothDirections) {
  Rng rng(0x57AA + static_cast<std::uint64_t>(GetParam()));
  const SemigroupTransform s = with_report(random_semigroup_transform(rng));
  SemigroupTransform t = random_semigroup_transform(rng);
  if (!t.add->identity()) {
    // Theorem 2 definedness: make the second factor a monoid.
    return;  // skipped arrangement; other seeds cover it
  }
  t.props = checker().report(t);
  const SemigroupTransform p = lex(s, t);

  // The published rule is exact when S is selective (the lex-⊕ fourth case
  // cannot occur); otherwise the engine may return Unknown for M but must
  // never contradict the oracle (see the FourthCase regression below).
  const std::string ctx = "seed " + std::to_string(GetParam());
  const bool selective = s.props.value(Prop::Selective) == Tri::True;
  for (Prop prop : {Prop::M_L, Prop::N_L, Prop::C_L}) {
    const Tri oracle = checker().prop(p, prop).verdict;
    if (selective || prop != Prop::M_L) {
      expect_exact(prop, p.props.value(prop), oracle, ctx);
    } else {
      mrt::testing::expect_consistent(prop, p.props.value(prop), oracle, ctx);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Thm4SemigroupTransform,
                         ::testing::Range(0, 120));

// The measured counterexample behind the non-selective refinement: with a
// non-selective S the fourth case of the lex-⊕ inserts α_T, so distributivity
// additionally needs T's functions to fix α_T. This is the concrete algebra
// the sweep first found (a meet-semilattice with bottom, ⊗ = right
// projection, T's function moving α_T).
TEST(Thm4FourthCase, NonSelectiveSNeedsAlphaFixing) {
  const Checker& chk = checker();
  // S: carrier {0,1,2}, meet-semilattice with 1 ∧ 2 = 0 (not selective),
  // ⊗ = right projection (monotone, cancellative).
  Bisemigroup s{"meet", sg_table("meet", {{0, 0, 0}, {0, 1, 0}, {0, 0, 2}}),
                sg_right_proj(3), {}};
  s.props = chk.report(s);
  ASSERT_EQ(s.props.value(Prop::Selective), Tri::False);
  ASSERT_EQ(s.props.value(Prop::M_L), Tri::True);
  ASSERT_EQ(s.props.value(Prop::N_L), Tri::True);

  // T: {0,1} with ⊕ = max (identity 0), ⊗ = constant 1 — does NOT fix α_T.
  Bisemigroup t{"maxK", sg_table("max2", {{0, 1}, {1, 1}}),
                sg_table("const1", {{1, 1}, {1, 1}}), {}};
  t.props = chk.report(t);
  ASSERT_EQ(t.props.value(Prop::TFix_L), Tri::False);

  const Bisemigroup p = lex(s, t);
  // The paper's rule would say M: M(S) ∧ M(T) ∧ (N(S) ∨ C(T)) = true …
  EXPECT_EQ(tri_and(tri_and(s.props.value(Prop::M_L), t.props.value(Prop::M_L)),
                    tri_or(s.props.value(Prop::N_L), t.props.value(Prop::C_L))),
            Tri::True);
  // … but the oracle refutes it, and the refined engine does not claim it.
  EXPECT_EQ(chk.prop(p, Prop::M_L).verdict, Tri::False);
  EXPECT_NE(p.props.value(Prop::M_L), Tri::True);
}

// --- Bisemigroups ------------------------------------------------------------

class Thm4Bisemigroup : public ::testing::TestWithParam<int> {};

TEST_P(Thm4Bisemigroup, ExactInBothDirections) {
  Rng rng(0xB15E + static_cast<std::uint64_t>(GetParam()));
  const Bisemigroup s = with_report(random_bisemigroup(rng));
  Bisemigroup t = random_bisemigroup(rng);
  if (!t.add->identity()) return;  // keep the product defined
  t.props = checker().report(t);
  const Bisemigroup p = lex(s, t);

  const std::string ctx = "seed " + std::to_string(GetParam());
  const bool selective = s.props.value(Prop::Selective) == Tri::True;
  for (Prop prop : {Prop::M_L, Prop::M_R, Prop::N_L, Prop::N_R, Prop::C_L,
                    Prop::C_R}) {
    const Tri oracle = checker().prop(p, prop).verdict;
    if (selective || (prop != Prop::M_L && prop != Prop::M_R)) {
      expect_exact(prop, p.props.value(prop), oracle, ctx);
    } else {
      mrt::testing::expect_consistent(prop, p.props.value(prop), oracle, ctx);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Thm4Bisemigroup, ::testing::Range(0, 120));

// --- The running example (section III) --------------------------------------

TEST(RunningExample, ShortestThenWidestIsMonotone) {
  const OrderSemigroup p = lex(os_shortest_path(), os_widest_path());
  EXPECT_EQ(p.props.value(Prop::M_L), Tri::True);
  EXPECT_EQ(p.props.value(Prop::M_R), Tri::True);
  // Corroborate by sampling: no counterexample may exist.
  EXPECT_NE(checker().prop(p, Prop::M_L).verdict, Tri::False);
}

TEST(RunningExample, WidestThenShortestIsNotMonotone) {
  const OrderSemigroup p = lex(os_widest_path(), os_shortest_path());
  // N fails for bandwidth and C fails for delay: the rule derives ¬M.
  EXPECT_EQ(p.props.value(Prop::M_L), Tri::False);
  // The checker produces a concrete counterexample.
  const CheckResult r = checker().prop(p, Prop::M_L);
  EXPECT_EQ(r.verdict, Tri::False);
  EXPECT_FALSE(r.detail.empty());
}

}  // namespace
}  // namespace mrt
