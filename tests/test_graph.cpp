#include <gtest/gtest.h>

#include "mrt/graph/digraph.hpp"
#include "mrt/graph/dot.hpp"
#include "mrt/graph/generators.hpp"

namespace mrt {
namespace {

TEST(Digraph, ArcsAndAdjacency) {
  Digraph g(3);
  const int a = g.add_arc(0, 1);
  const int b = g.add_arc(1, 2);
  const int c = g.add_arc(0, 2);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_arcs(), 3);
  EXPECT_EQ(g.arc(a).src, 0);
  EXPECT_EQ(g.arc(b).dst, 2);
  EXPECT_EQ(g.out_arcs(0), (std::vector<int>{a, c}));
  EXPECT_EQ(g.in_arcs(2), (std::vector<int>{b, c}));
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_FALSE(g.has_arc(1, 0));
}

TEST(Digraph, CsrViewsMatchAdjacencyLists) {
  Rng rng(0xC54);
  for (int trial = 0; trial < 8; ++trial) {
    Digraph g = random_connected(rng, 12, 4);
    const CsrAdjacency& out = g.csr_out();
    const CsrAdjacency& in = g.csr_in();
    ASSERT_EQ(out.offset.size(), static_cast<std::size_t>(g.num_nodes()) + 1);
    EXPECT_EQ(out.offset.back(), g.num_arcs());
    EXPECT_EQ(in.offset.back(), g.num_arcs());
    for (int u = 0; u < g.num_nodes(); ++u) {
      std::vector<int> got_out, got_in;
      for (int e = out.begin(u); e < out.end(u); ++e) {
        got_out.push_back(out.arc[(std::size_t)e]);
        EXPECT_EQ(out.head[(std::size_t)e], g.arc(out.arc[(std::size_t)e]).dst);
      }
      for (int e = in.begin(u); e < in.end(u); ++e) {
        got_in.push_back(in.arc[(std::size_t)e]);
        EXPECT_EQ(in.head[(std::size_t)e], g.arc(in.arc[(std::size_t)e]).src);
      }
      EXPECT_EQ(got_out, g.out_arcs(u)) << "trial " << trial << " node " << u;
      EXPECT_EQ(got_in, g.in_arcs(u)) << "trial " << trial << " node " << u;
    }
  }
}

TEST(Digraph, CsrInvalidatedByAddArcAndSurvivesCopy) {
  Digraph g(3);
  g.add_arc(0, 1);
  EXPECT_EQ(g.csr_out().arc.size(), 1u);
  g.add_arc(1, 2);  // must drop the cached view
  EXPECT_EQ(g.csr_out().arc.size(), 2u);
  EXPECT_EQ(g.csr_in().end(2) - g.csr_in().begin(2), 1);

  Digraph c = g;  // copy with a built cache — views stay independent
  c.add_arc(2, 0);
  EXPECT_EQ(c.csr_out().arc.size(), 3u);
  EXPECT_EQ(g.csr_out().arc.size(), 2u);
  Digraph a(1);
  a = g;
  EXPECT_EQ(a.csr_out().arc.size(), 2u);
  EXPECT_TRUE(a.has_arc(0, 1));
}

TEST(Digraph, BoundsChecked) {
  Digraph g(2);
  EXPECT_THROW(g.add_arc(0, 2), std::logic_error);
  EXPECT_THROW(g.arc(0), std::logic_error);
  EXPECT_THROW(g.out_arcs(-1), std::logic_error);
}

TEST(Digraph, ReversedPreservesArcIds) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  Digraph r = g.reversed();
  EXPECT_EQ(r.arc(0).src, 1);
  EXPECT_EQ(r.arc(0).dst, 0);
  EXPECT_EQ(r.arc(1).src, 2);
}

TEST(Digraph, ReversedPreservesIdsWithParallelArcsAndSelfLoops) {
  // Arc id i of reversed() must be arc id i of the original with src/dst
  // swapped — layers above key per-arc state (labels, masks) by id.
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(0, 1);  // parallel
  g.add_arc(2, 2);  // self-loop
  g.add_arc(1, 0);  // anti-parallel pair of arcs 0/1
  g.add_arc(3, 0);
  const Digraph r = g.reversed();
  ASSERT_EQ(r.num_arcs(), g.num_arcs());
  ASSERT_EQ(r.num_nodes(), g.num_nodes());
  for (int id = 0; id < g.num_arcs(); ++id) {
    EXPECT_EQ(r.arc(id).src, g.arc(id).dst) << "arc " << id;
    EXPECT_EQ(r.arc(id).dst, g.arc(id).src) << "arc " << id;
  }
  // Adjacency swaps roles but keeps ids: out_arcs in r == in_arcs in g.
  for (int v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(r.out_arcs(v), g.in_arcs(v)) << "node " << v;
    EXPECT_EQ(r.in_arcs(v), g.out_arcs(v)) << "node " << v;
  }
  // An involution on the arc list: reversing twice restores every arc.
  const Digraph rr = r.reversed();
  for (int id = 0; id < g.num_arcs(); ++id) {
    EXPECT_EQ(rr.arc(id).src, g.arc(id).src);
    EXPECT_EQ(rr.arc(id).dst, g.arc(id).dst);
  }
}

TEST(Digraph, HasArcWithParallelArcsAndSelfLoops) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(0, 1);
  g.add_arc(1, 1);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_TRUE(g.has_arc(1, 1));
  EXPECT_FALSE(g.has_arc(1, 0));
  EXPECT_FALSE(g.has_arc(0, 0));
  EXPECT_FALSE(g.has_arc(2, 2));
  EXPECT_THROW(g.has_arc(0, 3), std::logic_error);
}

TEST(Digraph, Reachability) {
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  auto seen = g.reachable_from(0);
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
  EXPECT_FALSE(seen[3]);
}

TEST(Digraph, ReachabilityEdgeCases) {
  // Self-loops and parallel arcs must not trap or double-visit the BFS,
  // and an isolated node reaches exactly itself.
  Digraph g(5);
  g.add_arc(0, 0);  // self-loop at the source
  g.add_arc(0, 1);
  g.add_arc(0, 1);  // parallel
  g.add_arc(1, 1);  // self-loop mid-walk
  g.add_arc(3, 2);  // only reachable against arc direction from 2
  const auto from0 = g.reachable_from(0);
  EXPECT_TRUE(from0[0] && from0[1]);
  EXPECT_FALSE(from0[2] || from0[3] || from0[4]);
  const auto from2 = g.reachable_from(2);  // no out-arcs at all
  EXPECT_TRUE(from2[2]);
  EXPECT_FALSE(from2[0] || from2[1] || from2[3] || from2[4]);
  const auto from4 = g.reachable_from(4);  // isolated node
  EXPECT_TRUE(from4[4]);
  EXPECT_FALSE(from4[0] || from4[1] || from4[2] || from4[3]);
  // Degenerate graphs: a single node with only a self-loop.
  Digraph one(1);
  one.add_arc(0, 0);
  EXPECT_TRUE(one.reachable_from(0)[0]);
}

TEST(Generators, Shapes) {
  EXPECT_EQ(line(4).num_arcs(), 6);
  EXPECT_EQ(ring(5).num_arcs(), 10);
  EXPECT_EQ(grid(3, 2).num_nodes(), 6);
  EXPECT_EQ(grid(3, 2).num_arcs(), 2 * (2 * 2 + 3 * 1));
  EXPECT_EQ(complete(4).num_arcs(), 12);
}

TEST(Generators, GnpDeterministicInSeed) {
  Rng a(5), b(5);
  Digraph g1 = gnp(a, 10, 0.3, false);
  Digraph g2 = gnp(b, 10, 0.3, false);
  ASSERT_EQ(g1.num_arcs(), g2.num_arcs());
  for (int i = 0; i < g1.num_arcs(); ++i) {
    EXPECT_EQ(g1.arc(i).src, g2.arc(i).src);
    EXPECT_EQ(g1.arc(i).dst, g2.arc(i).dst);
  }
}

TEST(Generators, RandomConnectedIsStronglyConnected) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    Digraph g = random_connected(rng, 12, 5);
    for (int v = 0; v < g.num_nodes(); ++v) {
      auto seen = g.reachable_from(v);
      for (int u = 0; u < g.num_nodes(); ++u) {
        EXPECT_TRUE(seen[u]) << "seed " << seed << ": " << u
                             << " unreachable from " << v;
      }
    }
  }
}

TEST(Generators, RegionTopologyPartitions) {
  Rng rng(3);
  RegionTopology topo = regions_topology(rng, 3, 4);
  EXPECT_EQ(topo.g.num_nodes(), 12);
  // Region labels are the block structure.
  for (int v = 0; v < 12; ++v) EXPECT_EQ(topo.region[(std::size_t)v], v / 4);
  // There is at least one inter-region arc and at least one intra-region arc.
  int inter = 0, intra = 0;
  for (int id = 0; id < topo.g.num_arcs(); ++id) {
    (topo.inter_region(id) ? inter : intra)++;
  }
  EXPECT_GT(inter, 0);
  EXPECT_GT(intra, 0);
  // Whole topology is connected.
  auto seen = topo.g.reachable_from(0);
  for (int v = 0; v < 12; ++v) EXPECT_TRUE(seen[(std::size_t)v]);
}

TEST(Dot, RendersNodesArcsAndHighlights) {
  Digraph g(2);
  g.add_arc(0, 1);
  DotOptions opts;
  opts.node_labels = {"a", "b"};
  opts.arc_labels = {"w=3"};
  opts.highlight_arcs = {0};
  const std::string dot = to_dot(g, opts);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"w=3\""), std::string::npos);
  EXPECT_NE(dot.find("style=bold"), std::string::npos);
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
}

}  // namespace
}  // namespace mrt
