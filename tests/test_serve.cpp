// serve::Daemon — the long-running routing daemon over the delta-stream seam.
//
//   correctness — draining a stream leaves every column byte-identical to a
//                 cold RibSolver of the final topology (the daemon adds no
//                 solver logic, so this is the stream≡cold contract again,
//                 now through the daemon's warm loop).
//   events      — route-change detection: an arc flap on a line graph emits
//                 the withdrawal and the restoration, nothing else.
//   telemetry   — serve.deltas_consumed / serve.route_changes /
//                 serve.update_ns are present in write_json and the
//                 OpenMetrics exposition after one apply.
//   resilience  — a missing replay file or a corrupt frame terminates the
//                 drain gracefully (decode_errors bumped, error() set).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/obs/obs.hpp"
#include "mrt/rib/rib.hpp"
#include "mrt/serve/serve.hpp"
#include "mrt/sim/scenario.hpp"
#include "mrt/stream/stream.hpp"
#include "mrt/stream/wire.hpp"
#include "mrt/support/rng.hpp"

namespace mrt {
namespace {

using mrt::testing::I;
using dyn::TopologyDelta;

void expect_identical(const Routing& a, const Routing& b,
                      const std::string& what) {
  ASSERT_EQ(a.weight.size(), b.weight.size()) << what;
  for (std::size_t v = 0; v < a.weight.size(); ++v) {
    ASSERT_EQ(a.weight[v].has_value(), b.weight[v].has_value())
        << what << " node " << v;
    if (a.weight[v]) {
      ASSERT_EQ(*a.weight[v], *b.weight[v]) << what << " node " << v;
    }
    ASSERT_EQ(a.next_arc[v], b.next_arc[v]) << what << " node " << v;
  }
}

TEST(Serve, DrainMatchesColdRibPerColumn) {
  Rng rng(0x5E12);
  const Scenario sc = gao_rexford_hierarchy(rng, 32, 16);
  const int arcs = sc.net.graph().num_arcs();

  std::vector<TopologyDelta> seq;
  for (int i = 0; i < 12; ++i) {
    TopologyDelta d;
    const int a = static_cast<int>(rng.below(static_cast<std::uint64_t>(arcs)));
    if (i % 3 == 2) {
      d.arc_up(a);
    } else {
      d.arc_down(a);
    }
    seq.push_back(std::move(d));
  }

  std::vector<int> dests;
  for (int v = 0; v < sc.net.num_nodes(); v += 5) dests.push_back(v);

  serve::Daemon daemon(sc.alg);
  EXPECT_FALSE(daemon.started());
  daemon.start(sc.net, dests, sc.origin);
  ASSERT_TRUE(daemon.started());

  stream::BufferSource src(stream::encode_stream(seq));
  const std::size_t batches = daemon.drain(src);
  EXPECT_EQ(batches, seq.size());
  EXPECT_EQ(daemon.stats().deltas_consumed, seq.size());
  EXPECT_EQ(daemon.stats().warm_updates, seq.size());
  EXPECT_EQ(daemon.stats().cold_updates, 0u);
  EXPECT_EQ(daemon.stats().decode_errors, 0u);

  // Cold reference: one batch of all ops onto a fresh table.
  TopologyDelta all;
  for (const TopologyDelta& d : seq) {
    all.ops.insert(all.ops.end(), d.ops.begin(), d.ops.end());
  }
  rib::RibSolver cold(sc.alg);
  cold.solve(sc.net, dests, sc.origin);
  cold.update(all);

  ASSERT_EQ(daemon.rib().num_columns(), cold.num_columns());
  for (int c = 0; c < cold.num_columns(); ++c) {
    ASSERT_EQ(daemon.rib().column_converged(c), cold.column_converged(c));
    if (!cold.column_converged(c)) continue;
    expect_identical(daemon.rib().routing(c), cold.routing(c),
                     "daemon vs cold col " + std::to_string(c));
  }
}

TEST(Serve, ArcFlapEmitsWithdrawalAndRestoration) {
  // Line 0 <- 1 <- 2: node 2 reaches dest 0 only through node 1's arc.
  Digraph g(3);
  const int a10 = g.add_arc(1, 0);
  const int a21 = g.add_arc(2, 1);
  const int n = 3;
  OrderTransform ot{"chain(<=,sat+)", ord_chain(n), fam_chain_add(n, 1, 1),
                    {}};
  LabeledGraph net(std::move(g), {I(1), I(1)});

  serve::Daemon daemon(ot);
  daemon.start(net, {0}, I(0));

  std::vector<serve::RouteChange> events;
  const auto sink = [&events](const serve::RouteChange& ev) {
    events.push_back(ev);
  };

  // Down the 1->0 arc: both 1 and 2 lose their route.
  std::size_t changes = daemon.apply(TopologyDelta{}.arc_down(a10), sink);
  EXPECT_EQ(changes, 2u);
  ASSERT_EQ(events.size(), 2u);
  for (const serve::RouteChange& ev : events) {
    EXPECT_EQ(ev.update_index, 0u);
    EXPECT_EQ(ev.column, 0);
    EXPECT_EQ(ev.dest, 0);
    EXPECT_TRUE(ev.had_route);
    EXPECT_FALSE(ev.has_route);
    EXPECT_EQ(ev.next_arc, -1);
  }
  EXPECT_EQ(daemon.stats().withdrawals, 2u);

  // Restore it: both routes come back with their original witness arcs.
  events.clear();
  changes = daemon.apply(TopologyDelta{}.arc_up(a10), sink);
  EXPECT_EQ(changes, 2u);
  ASSERT_EQ(events.size(), 2u);
  for (const serve::RouteChange& ev : events) {
    EXPECT_EQ(ev.update_index, 1u);
    EXPECT_FALSE(ev.had_route);
    EXPECT_TRUE(ev.has_route);
    EXPECT_EQ(ev.next_arc, ev.node == 1 ? a10 : a21);
  }

  // A delta that changes nothing emits nothing.
  events.clear();
  changes = daemon.apply(TopologyDelta{}, sink);
  EXPECT_EQ(changes, 0u);
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(daemon.stats().route_changes, 4u);
  EXPECT_EQ(daemon.stats().deltas_consumed, 3u);
}

TEST(Serve, MetricsPresentInJsonAndOpenMetrics) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  obs::registry().reset();

  Digraph g(2);
  g.add_arc(1, 0);
  OrderTransform ot{"chain(<=,sat+)", ord_chain(2), fam_chain_add(2, 1, 1),
                    {}};
  LabeledGraph net(std::move(g), {I(1)});

  serve::Daemon daemon(ot);
  daemon.start(net, {0}, I(0));
  daemon.apply(TopologyDelta{}.arc_down(0));

  std::ostringstream json;
  obs::registry().write_json(json);
  const std::string j = json.str();
  EXPECT_NE(j.find("serve.deltas_consumed"), std::string::npos) << j;
  EXPECT_NE(j.find("serve.route_changes"), std::string::npos) << j;
  EXPECT_NE(j.find("serve.update_ns"), std::string::npos) << j;

  std::ostringstream om;
  obs::registry().write_openmetrics(om);
  const std::string m = om.str();
  EXPECT_NE(m.find("mrt_serve_deltas_consumed_total"), std::string::npos)
      << m;
  EXPECT_NE(m.find("mrt_serve_route_changes_total"), std::string::npos) << m;
  EXPECT_NE(m.find("mrt_serve_update_ns"), std::string::npos) << m;

  // The histogram actually observed the update.
  EXPECT_GE(obs::registry().histogram("serve.update_ns").count(), 1u);
  obs::set_enabled(was_enabled);
}

TEST(Serve, MissingFileAndCorruptStreamTerminateGracefully) {
  Digraph g(2);
  g.add_arc(1, 0);
  OrderTransform ot{"chain(<=,sat+)", ord_chain(2), fam_chain_add(2, 1, 1),
                    {}};
  LabeledGraph net(std::move(g), {I(1)});

  serve::Daemon daemon(ot);
  daemon.start(net, {0}, I(0));

  stream::FileSource missing("/nonexistent/mrt-no-such-replay.bin");
  EXPECT_EQ(daemon.drain(missing), 0u);
  EXPECT_EQ(daemon.stats().decode_errors, 1u);
  EXPECT_FALSE(missing.error().empty());

  // One good frame followed by garbage: the good frame applies, then the
  // drain stops with a decode error — the table stays at the last good batch.
  std::vector<std::uint8_t> bytes;
  stream::encode_delta(TopologyDelta{}.arc_down(0), bytes);
  bytes.push_back(0xFF);
  stream::BufferSource corrupt(bytes);
  EXPECT_EQ(daemon.drain(corrupt), 1u);
  EXPECT_EQ(daemon.stats().decode_errors, 2u);
  EXPECT_FALSE(corrupt.error().empty());
  EXPECT_FALSE(daemon.rib().routing(0).has_route(1));
}

}  // namespace
}  // namespace mrt
