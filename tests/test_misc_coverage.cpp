// Remaining surface: labeled graphs, validator budgets, k-best preconditions,
// solver guards, report rendering, and interpreter persistence.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/core/report.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/lang/interp.hpp"
#include "mrt/routing/kbest.hpp"
#include "mrt/routing/minset.hpp"
#include "mrt/routing/optimality.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

TEST(LabeledGraph, ConstructionAndRelabel) {
  Digraph g(2);
  g.add_arc(0, 1);
  LabeledGraph net(g, {I(3)});
  EXPECT_EQ(net.label(0), I(3));
  net.relabel(0, I(7));
  EXPECT_EQ(net.label(0), I(7));
  EXPECT_THROW(net.label(1), std::logic_error);
  EXPECT_THROW(LabeledGraph(g, {}), std::logic_error);  // arity mismatch
}

TEST(LabeledGraph, RandomLabelingCoversEveryArc) {
  Rng rng(4);
  const OrderTransform sp = ot_shortest_path(3);
  LabeledGraph net = label_randomly(sp, ring(5), rng);
  for (int id = 0; id < net.graph().num_arcs(); ++id) {
    const Value& l = net.label(id);
    EXPECT_TRUE(l.is_int());
    EXPECT_GE(l.as_int(), 1);
    EXPECT_LE(l.as_int(), 3);
  }
  // Empty graph is fine.
  EXPECT_NO_THROW(label_randomly(sp, Digraph(3), rng));
}

TEST(ForwardingPath, FollowsAndDetectsDeadEnds) {
  const OrderTransform sp = ot_shortest_path(3);
  Digraph g(3);
  const int a = g.add_arc(2, 1);
  const int b = g.add_arc(1, 0);
  LabeledGraph net(std::move(g), {I(1), I(1)});
  Routing r;
  r.weight = {I(0), I(1), I(2)};
  r.next_arc = {-1, b, a};
  auto path = forwarding_path(net, r, 2, 0);
  ASSERT_TRUE(path);
  EXPECT_EQ(*path, (std::vector<int>{2, 1, 0}));
  // Dead end: node 1 has no next arc.
  r.next_arc[1] = -1;
  EXPECT_FALSE(forwarding_path(net, r, 2, 0).has_value());
}

TEST(PathEnum, BudgetExceededThrows) {
  // Complete graph on 9 nodes: far more than 10 simple paths 1 -> 0.
  const OrderTransform hops = ot_hop_count();
  Rng rng(1);
  LabeledGraph net = label_randomly(hops, complete(9), rng);
  PathEnumOptions opts;
  opts.max_paths = 10;
  EXPECT_THROW(all_path_weights(hops, net, 1, 0, I(0), opts),
               std::runtime_error);
}

TEST(KBest, Preconditions) {
  const OrderTransform sp = ot_shortest_path(3);
  Rng rng(2);
  LabeledGraph net = label_randomly(sp, ring(4), rng);
  EXPECT_THROW(kbest_bellman(sp, net, 0, I(0), 0), std::logic_error);
  EXPECT_THROW(kbest_bellman(sp, net, 9, I(0), 2), std::logic_error);
}

TEST(MinSetSolver, IterationCapReported) {
  // A strictly improving self-loop under a decreasing function never
  // stabilizes: the solver must stop at the cap and say so.
  const OrderTransform dec = mrt::testing::make_ot(
      {{1, 1, 1}, {0, 1, 1}, {0, 0, 1}},  // 0 < 1 < 2
      {{0, 0, 1}},                        // decrement
      "dec");
  Digraph g(2);
  g.add_arc(1, 1);
  g.add_arc(1, 0);
  LabeledGraph net(std::move(g), {I(0), I(0)});
  MinSetOptions opts;
  opts.max_iterations = 5;
  const MinSetResult r = minset_bellman(dec, net, 0, I(2), opts);
  // Finite chain: it actually converges fast; verify the cap field behaves.
  EXPECT_LE(r.iterations, 5);
}

TEST(Report, SummaryLineShapes) {
  const std::string ot_line =
      summary_line(ot_shortest_path(3).props, StructureKind::OrderTransform);
  EXPECT_NE(ot_line.find("M=yes"), std::string::npos);
  EXPECT_NE(ot_line.find("T=yes"), std::string::npos);
  const std::string bs_line =
      summary_line(bs_widest_path().props, StructureKind::Bisemigroup);
  EXPECT_EQ(bs_line.find("T="), std::string::npos);  // no T column for BS
}

TEST(Report, DescribeEveryQuadrant) {
  EXPECT_NE(describe(bs_path_count()).find("bisemigroup"), std::string::npos);
  EXPECT_NE(describe(os_reliability()).find("order semigroup"),
            std::string::npos);
  EXPECT_NE(describe(st_shortest_path(2)).find("semigroup transform"),
            std::string::npos);
  EXPECT_NE(describe(ot_widest_path(2)).find("order transform"),
            std::string::npos);
}

TEST(Interp, CheckOnNamePersistsRefinement) {
  lang::Interp in;
  ASSERT_TRUE(in.run("let g = gadget").ok());
  // Before check: finite table algebra has unknowns.
  EXPECT_EQ(lang::props_of(in.env().at("g")).value(Prop::ND_L), Tri::Unknown);
  ASSERT_TRUE(in.run("check g").ok());
  EXPECT_EQ(lang::props_of(in.env().at("g")).value(Prop::ND_L), Tri::False);
}

TEST(Interp, MultipleStatementsShareEnvironmentAcrossRuns) {
  lang::Interp in;
  ASSERT_TRUE(in.run("let a = sp").ok());
  auto out = in.run("let b = lex(a, bw); show b");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("lex((N, <=, {+c}"), std::string::npos);
}

TEST(PropertyReport, KnownListsOnlyDecided) {
  PropertyReport r;
  EXPECT_TRUE(r.known().empty());
  r.set(Prop::M_L, Tri::True, "x");
  r.set(Prop::C_L, Tri::False, "y");
  EXPECT_EQ(r.known().size(), 2u);
  EXPECT_TRUE(r.proved(Prop::M_L));
  EXPECT_TRUE(r.refuted(Prop::C_L));
  EXPECT_FALSE(r.proved(Prop::N_L));
}

TEST(Tri, KleeneTables) {
  EXPECT_EQ(tri_and(Tri::True, Tri::Unknown), Tri::Unknown);
  EXPECT_EQ(tri_and(Tri::False, Tri::Unknown), Tri::False);
  EXPECT_EQ(tri_or(Tri::True, Tri::Unknown), Tri::True);
  EXPECT_EQ(tri_or(Tri::False, Tri::Unknown), Tri::Unknown);
  EXPECT_EQ(tri_not(Tri::Unknown), Tri::Unknown);
  EXPECT_EQ(tri_not(tri_of(true)), Tri::False);
}

}  // namespace
}  // namespace mrt
