// The add_top operator: adjoining the invalid route φ. Exact rules validated
// against the oracle; the I(add_top(S)) ⟺ SI(S) relationship; and the
// operational payoff: theory algebras over plain ℕ become routable Sobrinho
// algebras.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/random_algebra.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/lang/interp.hpp"
#include "mrt/routing/dijkstra.hpp"
#include "mrt/routing/optimality.hpp"
#include "mrt/sim/path_vector.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

const Checker& checker() {
  static const Checker chk;
  return chk;
}

TEST(AddTop, OrderAndApplicationSemantics) {
  OrderTransform s{"sp.nat", ord_nat_leq(false), fam_add_const(1, 3), {}};
  const OrderTransform t = add_top(s);
  EXPECT_TRUE(t.ord->leq(I(5), Value::omega()));
  EXPECT_FALSE(t.ord->leq(Value::omega(), I(1'000'000)));
  EXPECT_TRUE(t.ord->is_top(Value::omega()));
  EXPECT_TRUE(t.ord->has_top());
  EXPECT_TRUE(t.ord->contains(Value::omega()));
  // Functions fix ω and behave as before elsewhere.
  EXPECT_EQ(t.fns->apply(I(2), Value::omega()), Value::omega());
  EXPECT_EQ(t.fns->apply(I(2), I(5)), I(7));
}

class AddTopSweep : public ::testing::TestWithParam<int> {};

TEST_P(AddTopSweep, ExactRulesMatchOracle) {
  Rng rng(0xADD70 + static_cast<std::uint64_t>(GetParam()));
  OrderTransform s = random_order_transform(rng);
  s.props = checker().report(s);
  const OrderTransform t = add_top(s);
  const std::string ctx = "seed " + std::to_string(GetParam());
  for (Prop prop : {Prop::Total, Prop::Antisym, Prop::HasTop, Prop::OneClass,
                    Prop::M_L, Prop::N_L, Prop::C_L, Prop::ND_L, Prop::Inc_L,
                    Prop::SInc_L, Prop::TFix_L}) {
    mrt::testing::expect_exact(prop, t.props.value(prop),
                               checker().prop(t, prop).verdict, ctx);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddTopSweep, ::testing::Range(0, 120));

TEST(AddTop, IncIffStrictlyIncreasing) {
  const Checker& chk = checker();
  // ot_chain_add(3,1,2) is I but not SI (its own top 3 is fixed):
  // after add_top the old top 3 is no longer exempt, so I is lost.
  OrderTransform inc_not_si = ot_chain_add(3, 1, 2);
  inc_not_si.props = chk.report(inc_not_si);
  ASSERT_EQ(inc_not_si.props.value(Prop::Inc_L), Tri::True);
  ASSERT_EQ(inc_not_si.props.value(Prop::SInc_L), Tri::False);
  const OrderTransform lifted = add_top(inc_not_si);
  EXPECT_EQ(lifted.props.value(Prop::Inc_L), Tri::False);
  EXPECT_EQ(chk.prop(lifted, Prop::Inc_L).verdict, Tri::False);

  // A genuinely SI algebra (plain ℕ, +c with c ≥ 1) keeps I after lifting.
  OrderTransform si{"sp.nat", ord_nat_leq(false), fam_add_const(1, 3), {}};
  si.props.set(Prop::SInc_L, Tri::True, "axiom: a < a+c on plain N");
  si.props.set(Prop::ND_L, Tri::True, "axiom");
  si.props.set(Prop::M_L, Tri::True, "axiom");
  si.props.set(Prop::N_L, Tri::True, "axiom");
  si.props.set(Prop::Total, Tri::True, "axiom");
  const OrderTransform routable = add_top(si);
  EXPECT_EQ(routable.props.value(Prop::Inc_L), Tri::True);
  EXPECT_EQ(routable.props.value(Prop::HasTop), Tri::True);
  EXPECT_EQ(routable.props.value(Prop::TFix_L), Tri::True);
  EXPECT_NE(checker().prop(routable, Prop::Inc_L).verdict, Tri::False);
}

TEST(AddTop, LiftedAlgebraRoutesAndConverges) {
  // The routing payoff: a ⊤-free theory algebra becomes a protocol-ready
  // algebra; Dijkstra solves it and path-vector converges to local optima.
  OrderTransform si{"sp.nat", ord_nat_leq(false), fam_add_const(1, 4), {}};
  si.props.set(Prop::M_L, Tri::True, "axiom");
  si.props.set(Prop::ND_L, Tri::True, "axiom");
  si.props.set(Prop::SInc_L, Tri::True, "axiom");
  si.props.set(Prop::Total, Tri::True, "axiom");
  const OrderTransform alg = add_top(si);

  Rng rng(0xADD);
  Digraph g = random_connected(rng, 7, 4);
  LabeledGraph net = label_randomly(alg, std::move(g), rng);
  const Routing r = dijkstra(alg, net, 0, I(0));
  for (int v = 1; v < net.num_nodes(); ++v) {
    ASSERT_TRUE(r.has_route(v));
    EXPECT_TRUE(is_globally_optimal(alg, net, v, 0, I(0), *r.weight[v]));
  }
  SimOptions opts;
  opts.seed = 5;
  opts.drop_top_routes = true;
  PathVectorSim sim(alg, net, 0, I(0), opts);
  const SimResult res = sim.run();
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(is_locally_optimal(alg, net, 0, I(0), res.routing, true));
}

TEST(AddTop, LanguageSupport) {
  lang::Interp in;
  auto out = in.run("show add_top(chain(3, 1, 2))");
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_NE(out->find("add_top("), std::string::npos);
  EXPECT_NE(out->find("old maxima lose their exemption"), std::string::npos);
}

}  // namespace
}  // namespace mrt
