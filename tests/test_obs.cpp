// The observability layer: registry reset semantics, log-2 histogram bucket
// boundaries, JSON writer escaping, and trace export well-formedness
// (verified by parsing the emitted Chrome trace JSON back).
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>

#include "mrt/obs/obs.hpp"

namespace mrt {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON reader — just enough structure to verify
// that the exporters emit well-formed JSON and to walk into the bits the
// assertions need. Throws std::runtime_error on malformed input.
// ---------------------------------------------------------------------------

struct JsonCursor {
  const std::string& s;
  std::size_t i = 0;

  void fail(const std::string& msg) const {
    throw std::runtime_error(msg + " at offset " + std::to_string(i));
  }
  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  char peek() {
    ws();
    if (i >= s.size()) fail("unexpected end");
    return s[i];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i;
  }
  bool consume(char c) {
    if (peek() == c) {
      ++i;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (i >= s.size()) fail("unterminated string");
      char c = s[i++];
      if (c == '"') return out;
      if (c == '\\') {
        if (i >= s.size()) fail("unterminated escape");
        char e = s[i++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (i + 4 > s.size()) fail("short \\u escape");
            for (int k = 0; k < 4; ++k) {
              if (!std::isxdigit(static_cast<unsigned char>(s[i + k]))) {
                fail("bad \\u escape");
              }
            }
            i += 4;
            out += '?';  // code point identity is irrelevant to the tests
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  void parse_number() {
    ws();
    std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '-' || s[i] == '+')) {
      ++i;
    }
    if (i == start) fail("expected number");
  }

  void parse_value() {
    char c = peek();
    if (c == '{') {
      parse_object();
    } else if (c == '[') {
      parse_array();
    } else if (c == '"') {
      parse_string();
    } else if (s.compare(i, 4, "true") == 0) {
      i += 4;
    } else if (s.compare(i, 5, "false") == 0) {
      i += 5;
    } else if (s.compare(i, 4, "null") == 0) {
      i += 4;
    } else {
      parse_number();
    }
  }

  void parse_object() {
    expect('{');
    if (consume('}')) return;
    do {
      parse_string();
      expect(':');
      parse_value();
    } while (consume(','));
    expect('}');
  }

  void parse_array() {
    expect('[');
    if (consume(']')) return;
    do {
      parse_value();
    } while (consume(','));
    expect(']');
  }
};

// Parses the whole document; returns false on any structural error.
bool json_well_formed(const std::string& s) {
  try {
    JsonCursor c{s};
    c.parse_value();
    c.ws();
    return c.i == s.size();
  } catch (const std::exception&) {
    return false;
  }
}

TEST(ObsJson, ParserSelfCheck) {
  EXPECT_TRUE(json_well_formed(R"({"a":[1,2.5,-3e4],"b":"x\"y","c":null})"));
  EXPECT_FALSE(json_well_formed(R"({"a":1,)"));
  EXPECT_FALSE(json_well_formed(R"({"a" 1})"));
  EXPECT_FALSE(json_well_formed("[1 2]"));
  EXPECT_FALSE(json_well_formed("{} extra"));
}

TEST(ObsJson, WriterEscapesAndNests) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("quote\"and\\slash").value("line\nbreak\ttab");
  w.key("nested").begin_array();
  w.value(std::uint64_t{18446744073709551615ULL});
  w.value(-1.5);
  w.value(true);
  w.begin_object().key("k").value("v").end_object();
  w.end_array();
  w.end_object();
  ASSERT_TRUE(w.complete());
  EXPECT_TRUE(json_well_formed(out.str())) << out.str();
  EXPECT_NE(out.str().find("\\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(ObsMetrics, CounterAndGaugeBasics) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  obs::Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.max_of(2.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.max_of(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  // Bucket 0 = {0}; bucket i >= 1 = [2^(i-1), 2^i - 1].
  EXPECT_EQ(obs::Histogram::bucket_index(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_index(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_index(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_index(3), 2);
  EXPECT_EQ(obs::Histogram::bucket_index(4), 3);
  EXPECT_EQ(obs::Histogram::bucket_index(7), 3);
  EXPECT_EQ(obs::Histogram::bucket_index(8), 4);
  EXPECT_EQ(obs::Histogram::bucket_index(~std::uint64_t{0}), 64);

  for (int i = 1; i < obs::Histogram::kBuckets; ++i) {
    EXPECT_EQ(obs::Histogram::bucket_index(obs::Histogram::bucket_lower(i)), i);
    EXPECT_EQ(obs::Histogram::bucket_index(obs::Histogram::bucket_upper(i)), i);
    // Buckets tile the range with no gap.
    EXPECT_EQ(obs::Histogram::bucket_lower(i),
              obs::Histogram::bucket_upper(i - 1) + 1);
  }

  obs::Histogram h;
  for (std::uint64_t v : {0u, 1u, 2u, 3u, 4u, 7u, 8u, 1023u, 1024u}) {
    h.record(v);
  }
  EXPECT_EQ(h.count(), 9u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 7 + 8 + 1023 + 1024);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_EQ(h.bucket_count(0), 1u);  // 0
  EXPECT_EQ(h.bucket_count(1), 1u);  // 1
  EXPECT_EQ(h.bucket_count(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket_count(3), 2u);  // 4, 7
  EXPECT_EQ(h.bucket_count(4), 1u);  // 8
  EXPECT_EQ(h.bucket_count(10), 1u); // 1023 in [512, 1023]
  EXPECT_EQ(h.bucket_count(11), 1u); // 1024 in [1024, 2047]
}

TEST(ObsMetrics, RegistryResetKeepsReferencesValid) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("test.counter");
  obs::Gauge& g = reg.gauge("test.gauge");
  obs::Histogram& h = reg.histogram("test.hist");
  c.add(5);
  g.set(2.5);
  h.record(9);

  // Lookup by the same name returns the same object.
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  EXPECT_EQ(reg.counter_value("test.counter"), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("test.gauge"), 2.5);

  reg.reset();
  // Values are zeroed but registration (and addresses) survive.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  ASSERT_EQ(reg.counters().size(), 1u);
  EXPECT_EQ(reg.counters()[0].first, "test.counter");

  // The old reference keeps feeding the same registered metric.
  c.add(3);
  EXPECT_EQ(reg.counter_value("test.counter"), 3u);

  // Unknown names read as zero without registering.
  EXPECT_EQ(reg.counter_value("never.registered"), 0u);
  EXPECT_EQ(reg.counters().size(), 1u);
}

TEST(ObsMetrics, RegistryExportsParseBack) {
  obs::Registry reg;
  reg.counter("a.b").add(7);
  reg.gauge("g \"quoted\"").set(1.25);
  reg.histogram("h").record(0);
  reg.histogram("h").record(100);

  std::ostringstream json;
  reg.write_json(json);
  EXPECT_TRUE(json_well_formed(json.str())) << json.str();
  EXPECT_NE(json.str().find("\"a.b\":7"), std::string::npos);

  std::ostringstream csv;
  reg.write_csv(csv);
  EXPECT_NE(csv.str().find("counter,a.b,7"), std::string::npos);
  EXPECT_NE(csv.str().find("histogram_count,h,2"), std::string::npos);
}

TEST(ObsMetrics, EnabledFlagToggles) {
  const bool before = obs::enabled();
  obs::set_enabled(true);
  EXPECT_TRUE(obs::enabled());
  obs::set_enabled(false);
  EXPECT_FALSE(obs::enabled());
  obs::set_enabled(before);
}

TEST(ObsMetrics, ScopedTimerRecordsWhenEnabled) {
  const bool before = obs::enabled();
  obs::Histogram h;
  obs::set_enabled(false);
  { obs::ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 0u);  // disabled: not even a clock read
  obs::set_enabled(true);
  { obs::ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 1u);
  obs::set_enabled(before);
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST(ObsTrace, ChromeExportRoundTrips) {
  obs::TraceSession session;
  session.name_thread(obs::TraceSession::kSimPid, 3, "node 3");
  session.complete("advert \"x\"", "sim.msg", 10.0, 5.0,
                   obs::TraceSession::kSimPid, 1,
                   {{"from", std::int64_t{2}}, {"w", 1.5}, {"s", "a\nb"}});
  session.instant("link down", "sim.link", 12.5, obs::TraceSession::kSimPid,
                  0);
  session.counter("queue depth", 13.0, obs::TraceSession::kSimPid, 4.0);
  EXPECT_EQ(session.size(), 4u);

  std::ostringstream out;
  session.write_chrome_json(out);
  const std::string trace = out.str();
  EXPECT_TRUE(json_well_formed(trace)) << trace;
  // The required trace-event fields are present.
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(trace.find("\"dur\":"), std::string::npos);
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
}

TEST(ObsTrace, InstallationIsExclusiveAndScoped) {
  EXPECT_EQ(obs::TraceSession::current(), nullptr);
  {
    obs::TraceSession session;
    EXPECT_EQ(obs::TraceSession::current(), nullptr);  // not yet installed
    session.install();
    EXPECT_EQ(obs::TraceSession::current(), &session);
    session.install();  // re-installing the same session is a no-op
    EXPECT_EQ(obs::TraceSession::current(), &session);
  }
  // Destruction uninstalls.
  EXPECT_EQ(obs::TraceSession::current(), nullptr);
}

TEST(ObsTrace, ScopedSpanRecordsOnlyUnderSession) {
  {
    obs::ScopedSpan span("orphan", "test");
  }  // no session: nothing to record, nothing to crash
  obs::TraceSession session;
  session.install();
  {
    obs::ScopedSpan span("work", "test", 5);
  }
  session.uninstall();
  auto events = session.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[0].tid, 5);
  EXPECT_GE(events[0].dur_us, 0.0);
}

}  // namespace
}  // namespace mrt
