// The observability layer: registry reset semantics, log-2 histogram bucket
// boundaries, JSON writer escaping, and trace export well-formedness
// (verified by parsing the emitted Chrome trace JSON back).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <sstream>
#include <thread>

#include "mrt/obs/obs.hpp"

namespace mrt {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON reader — just enough structure to verify
// that the exporters emit well-formed JSON and to walk into the bits the
// assertions need. Throws std::runtime_error on malformed input.
// ---------------------------------------------------------------------------

struct JsonCursor {
  const std::string& s;
  std::size_t i = 0;

  void fail(const std::string& msg) const {
    throw std::runtime_error(msg + " at offset " + std::to_string(i));
  }
  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  char peek() {
    ws();
    if (i >= s.size()) fail("unexpected end");
    return s[i];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i;
  }
  bool consume(char c) {
    if (peek() == c) {
      ++i;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (i >= s.size()) fail("unterminated string");
      char c = s[i++];
      if (c == '"') return out;
      if (c == '\\') {
        if (i >= s.size()) fail("unterminated escape");
        char e = s[i++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (i + 4 > s.size()) fail("short \\u escape");
            for (int k = 0; k < 4; ++k) {
              if (!std::isxdigit(static_cast<unsigned char>(s[i + k]))) {
                fail("bad \\u escape");
              }
            }
            i += 4;
            out += '?';  // code point identity is irrelevant to the tests
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  void parse_number() {
    ws();
    std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '-' || s[i] == '+')) {
      ++i;
    }
    if (i == start) fail("expected number");
  }

  void parse_value() {
    char c = peek();
    if (c == '{') {
      parse_object();
    } else if (c == '[') {
      parse_array();
    } else if (c == '"') {
      parse_string();
    } else if (s.compare(i, 4, "true") == 0) {
      i += 4;
    } else if (s.compare(i, 5, "false") == 0) {
      i += 5;
    } else if (s.compare(i, 4, "null") == 0) {
      i += 4;
    } else {
      parse_number();
    }
  }

  void parse_object() {
    expect('{');
    if (consume('}')) return;
    do {
      parse_string();
      expect(':');
      parse_value();
    } while (consume(','));
    expect('}');
  }

  void parse_array() {
    expect('[');
    if (consume(']')) return;
    do {
      parse_value();
    } while (consume(','));
    expect(']');
  }
};

// Parses the whole document; returns false on any structural error.
bool json_well_formed(const std::string& s) {
  try {
    JsonCursor c{s};
    c.parse_value();
    c.ws();
    return c.i == s.size();
  } catch (const std::exception&) {
    return false;
  }
}

TEST(ObsJson, ParserSelfCheck) {
  EXPECT_TRUE(json_well_formed(R"({"a":[1,2.5,-3e4],"b":"x\"y","c":null})"));
  EXPECT_FALSE(json_well_formed(R"({"a":1,)"));
  EXPECT_FALSE(json_well_formed(R"({"a" 1})"));
  EXPECT_FALSE(json_well_formed("[1 2]"));
  EXPECT_FALSE(json_well_formed("{} extra"));
}

TEST(ObsJson, WriterEscapesAndNests) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("quote\"and\\slash").value("line\nbreak\ttab");
  w.key("nested").begin_array();
  w.value(std::uint64_t{18446744073709551615ULL});
  w.value(-1.5);
  w.value(true);
  w.begin_object().key("k").value("v").end_object();
  w.end_array();
  w.end_object();
  ASSERT_TRUE(w.complete());
  EXPECT_TRUE(json_well_formed(out.str())) << out.str();
  EXPECT_NE(out.str().find("\\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(ObsMetrics, CounterAndGaugeBasics) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  obs::Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.max_of(2.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.max_of(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  // Bucket 0 = {0}; bucket i >= 1 = [2^(i-1), 2^i - 1].
  EXPECT_EQ(obs::Histogram::bucket_index(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_index(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_index(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_index(3), 2);
  EXPECT_EQ(obs::Histogram::bucket_index(4), 3);
  EXPECT_EQ(obs::Histogram::bucket_index(7), 3);
  EXPECT_EQ(obs::Histogram::bucket_index(8), 4);
  EXPECT_EQ(obs::Histogram::bucket_index(~std::uint64_t{0}), 64);

  for (int i = 1; i < obs::Histogram::kBuckets; ++i) {
    EXPECT_EQ(obs::Histogram::bucket_index(obs::Histogram::bucket_lower(i)), i);
    EXPECT_EQ(obs::Histogram::bucket_index(obs::Histogram::bucket_upper(i)), i);
    // Buckets tile the range with no gap.
    EXPECT_EQ(obs::Histogram::bucket_lower(i),
              obs::Histogram::bucket_upper(i - 1) + 1);
  }

  obs::Histogram h;
  for (std::uint64_t v : {0u, 1u, 2u, 3u, 4u, 7u, 8u, 1023u, 1024u}) {
    h.record(v);
  }
  EXPECT_EQ(h.count(), 9u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 7 + 8 + 1023 + 1024);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_EQ(h.bucket_count(0), 1u);  // 0
  EXPECT_EQ(h.bucket_count(1), 1u);  // 1
  EXPECT_EQ(h.bucket_count(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket_count(3), 2u);  // 4, 7
  EXPECT_EQ(h.bucket_count(4), 1u);  // 8
  EXPECT_EQ(h.bucket_count(10), 1u); // 1023 in [512, 1023]
  EXPECT_EQ(h.bucket_count(11), 1u); // 1024 in [1024, 2047]
}

TEST(ObsMetrics, RegistryResetKeepsReferencesValid) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("test.counter");
  obs::Gauge& g = reg.gauge("test.gauge");
  obs::Histogram& h = reg.histogram("test.hist");
  c.add(5);
  g.set(2.5);
  h.record(9);

  // Lookup by the same name returns the same object.
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  EXPECT_EQ(reg.counter_value("test.counter"), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("test.gauge"), 2.5);

  reg.reset();
  // Values are zeroed but registration (and addresses) survive.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  ASSERT_EQ(reg.counters().size(), 1u);
  EXPECT_EQ(reg.counters()[0].first, "test.counter");

  // The old reference keeps feeding the same registered metric.
  c.add(3);
  EXPECT_EQ(reg.counter_value("test.counter"), 3u);

  // Unknown names read as zero without registering.
  EXPECT_EQ(reg.counter_value("never.registered"), 0u);
  EXPECT_EQ(reg.counters().size(), 1u);
}

TEST(ObsMetrics, RegistryExportsParseBack) {
  obs::Registry reg;
  reg.counter("a.b").add(7);
  reg.gauge("g \"quoted\"").set(1.25);
  reg.histogram("h").record(0);
  reg.histogram("h").record(100);

  std::ostringstream json;
  reg.write_json(json);
  EXPECT_TRUE(json_well_formed(json.str())) << json.str();
  EXPECT_NE(json.str().find("\"a.b\":7"), std::string::npos);

  std::ostringstream csv;
  reg.write_csv(csv);
  EXPECT_NE(csv.str().find("counter,a.b,7"), std::string::npos);
  EXPECT_NE(csv.str().find("histogram_count,h,2"), std::string::npos);
}

TEST(ObsMetrics, EnabledFlagToggles) {
  const bool before = obs::enabled();
  obs::set_enabled(true);
  EXPECT_TRUE(obs::enabled());
  obs::set_enabled(false);
  EXPECT_FALSE(obs::enabled());
  obs::set_enabled(before);
}

TEST(ObsMetrics, ScopedTimerRecordsWhenEnabled) {
  const bool before = obs::enabled();
  obs::Histogram h;
  obs::set_enabled(false);
  { obs::ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 0u);  // disabled: not even a clock read
  obs::set_enabled(true);
  { obs::ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 1u);
  obs::set_enabled(before);
}

// ---------------------------------------------------------------------------
// Quantiles: estimates vs exact distributions. The documented contract
// (metrics.hpp): the estimate lies inside the log-2 bucket holding the true
// nearest-rank sample, so for values >= 1 it is within 2x of the exact
// quantile; bucket 0 ({0}) is exact; the top non-empty bucket clamps to
// max(), which makes quantile(1.0) exact.
// ---------------------------------------------------------------------------

// est within [exact/2, exact*2] — the bucket-bound guarantee for values >= 1.
void expect_within_2x(double est, double exact, const char* what) {
  EXPECT_GE(est, exact / 2.0) << what << " est " << est << " exact " << exact;
  EXPECT_LE(est, exact * 2.0) << what << " est " << est << " exact " << exact;
}

TEST(ObsQuantile, EmptyAndClampedArguments) {
  obs::Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty: 0, never NaN
  h.record(10);
  h.record(20);
  // q is clamped to [0, 1].
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);  // top-bucket max() clamp: exact
}

TEST(ObsQuantile, ZerosAreExact) {
  obs::Histogram h;
  for (int i = 0; i < 100; ++i) h.record(0);
  // Bucket 0 holds only {0}: every quantile of an all-zero stream is exact.
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 0.0) << "q=" << q;
  }
}

TEST(ObsQuantile, PointMassWithinBucketBound) {
  obs::Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(42);
  // Every exact quantile is 42; 42 lives in bucket [32, 63], clamped above
  // by max() = 42, so estimates fall in [32, 42] — inside the 2x bound.
  for (double q : {0.01, 0.5, 0.9, 0.99}) {
    const double est = h.quantile(q);
    EXPECT_GE(est, 32.0) << "q=" << q;
    EXPECT_LE(est, 42.0) << "q=" << q;
    expect_within_2x(est, 42.0, "point-mass");
  }
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 42.0);  // rank == count: the max, exact
}

TEST(ObsQuantile, UniformWithinBucketBound) {
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 1024; ++v) h.record(v);
  // Exact q-quantile of uniform 1..1024 under nearest-rank is ceil(1024 q).
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double exact = std::ceil(1024.0 * q);
    expect_within_2x(h.quantile(q), exact, "uniform");
  }
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1024.0);
}

TEST(ObsQuantile, GeometricNearestRank) {
  // 512 ones, 256 twos, 128 fours, ... 1 x 512: 1023 samples, heavy head.
  obs::Histogram h;
  std::uint64_t v = 1;
  for (int n = 512; n >= 1; n /= 2, v *= 2) {
    for (int i = 0; i < n; ++i) h.record(v);
  }
  ASSERT_EQ(h.count(), 1023u);
  // Rank ceil(0.5 * 1023) = 512: the last of the ones. Bucket [1, 1] is a
  // single point, so the estimate is exact despite the log-2 coarseness.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  // Rank 921 lands on the 8s (cum: 512, 768, 896, 960); rank 1013 on the
  // 64s (cum: 992, 1008, 1016). Exact values 8 and 64.
  expect_within_2x(h.quantile(0.9), 8.0, "geometric p90");
  expect_within_2x(h.quantile(0.99), 64.0, "geometric p99");
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 512.0);
}

TEST(ObsMetrics, GaugeSetAndMaxOfSemantics) {
  obs::Gauge g;
  // set() is last-write-wins: it may lower the value.
  g.max_of(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  // max_of() is a high-water mark: it never lowers.
  g.max_of(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.max_of(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsMetrics, GaugeMaxOfConcurrentKeepsLargest) {
  // The CAS loop's contract: a larger value is never lost to a smaller
  // racer. 4 threads publish disjoint ranges; the global max must survive.
  obs::Gauge g;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < kPerThread; ++i) {
        g.max_of(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(g.value(), kThreads * kPerThread - 1.0);  // 39999
}

TEST(ObsMetrics, OpenMetricsExport) {
  obs::Registry reg;
  reg.counter("a.b").add(7);
  reg.gauge("g!x").set(1.25);
  obs::Histogram& h = reg.histogram("h");
  h.record(0);
  h.record(3);
  h.record(100);

  std::ostringstream os;
  reg.write_openmetrics(os);
  const std::string om = os.str();

  // Names: mrt_ prefix, non-[A-Za-z0-9_] mapped to '_'; counters _total.
  EXPECT_NE(om.find("# TYPE mrt_a_b counter\n"), std::string::npos) << om;
  EXPECT_NE(om.find("mrt_a_b_total 7\n"), std::string::npos) << om;
  EXPECT_NE(om.find("# TYPE mrt_g_x gauge\n"), std::string::npos) << om;
  EXPECT_NE(om.find("mrt_g_x 1.25\n"), std::string::npos) << om;

  // Histogram buckets are *cumulative*, keyed by the inclusive upper bound
  // of each non-empty log-2 bucket: 0 -> {0}, 3 -> [2,3], 127 -> [64,127].
  EXPECT_NE(om.find("# TYPE mrt_h histogram\n"), std::string::npos) << om;
  EXPECT_NE(om.find("mrt_h_bucket{le=\"0\"} 1\n"), std::string::npos) << om;
  EXPECT_NE(om.find("mrt_h_bucket{le=\"3\"} 2\n"), std::string::npos) << om;
  EXPECT_NE(om.find("mrt_h_bucket{le=\"127\"} 3\n"), std::string::npos) << om;
  EXPECT_NE(om.find("mrt_h_bucket{le=\"+Inf\"} 3\n"), std::string::npos)
      << om;
  EXPECT_NE(om.find("mrt_h_sum 103\n"), std::string::npos) << om;
  EXPECT_NE(om.find("mrt_h_count 3\n"), std::string::npos) << om;
  // Empty buckets are elided.
  EXPECT_EQ(om.find("le=\"1\"}"), std::string::npos) << om;

  // The exposition ends with the OpenMetrics terminator.
  ASSERT_GE(om.size(), 6u);
  EXPECT_EQ(om.rfind("# EOF\n"), om.size() - 6) << om;
}

TEST(ObsMetrics, JsonExportsQuantiles) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("lat");
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"p50\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p90\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST(ObsTrace, ChromeExportRoundTrips) {
  obs::TraceSession session;
  session.name_thread(obs::TraceSession::kSimPid, 3, "node 3");
  session.complete("advert \"x\"", "sim.msg", 10.0, 5.0,
                   obs::TraceSession::kSimPid, 1,
                   {{"from", std::int64_t{2}}, {"w", 1.5}, {"s", "a\nb"}});
  session.instant("link down", "sim.link", 12.5, obs::TraceSession::kSimPid,
                  0);
  session.counter("queue depth", 13.0, obs::TraceSession::kSimPid, 4.0);
  EXPECT_EQ(session.size(), 4u);

  std::ostringstream out;
  session.write_chrome_json(out);
  const std::string trace = out.str();
  EXPECT_TRUE(json_well_formed(trace)) << trace;
  // The required trace-event fields are present.
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(trace.find("\"dur\":"), std::string::npos);
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
}

TEST(ObsTrace, InstallationIsExclusiveAndScoped) {
  EXPECT_EQ(obs::TraceSession::current(), nullptr);
  {
    obs::TraceSession session;
    EXPECT_EQ(obs::TraceSession::current(), nullptr);  // not yet installed
    session.install();
    EXPECT_EQ(obs::TraceSession::current(), &session);
    session.install();  // re-installing the same session is a no-op
    EXPECT_EQ(obs::TraceSession::current(), &session);
  }
  // Destruction uninstalls.
  EXPECT_EQ(obs::TraceSession::current(), nullptr);
}

TEST(ObsTrace, ScopedSpanRecordsOnlyUnderSession) {
  {
    obs::ScopedSpan span("orphan", "test");
  }  // no session: nothing to record, nothing to crash
  obs::TraceSession session;
  session.install();
  {
    obs::ScopedSpan span("work", "test", 5);
  }
  session.uninstall();
  auto events = session.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[0].tid, 5);
  EXPECT_GE(events[0].dur_us, 0.0);
}

}  // namespace
}  // namespace mrt
