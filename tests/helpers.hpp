// Shared helpers for the metarouting test suite.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "mrt/core/bases.hpp"
#include "mrt/core/checker.hpp"
#include "mrt/core/quadrants.hpp"

namespace mrt::testing {

inline Value I(std::int64_t v) { return Value::integer(v); }

/// A finite order transform from explicit tables (carrier {0..n-1}).
inline OrderTransform make_ot(std::vector<std::vector<std::uint8_t>> leq,
                              std::vector<std::vector<int>> fns,
                              std::string name = "t") {
  const int n = static_cast<int>(leq.size());
  return OrderTransform{std::move(name), ord_table("ord", std::move(leq)),
                        fam_table("fns", n, std::move(fns)),
                        {}};
}

/// Asserts that an inferred verdict never contradicts the oracle's.
inline void expect_consistent(Prop p, Tri inferred, Tri oracle,
                              const std::string& context) {
  if (inferred == Tri::Unknown || oracle == Tri::Unknown) return;
  EXPECT_EQ(inferred, oracle) << context << ": property " << to_string(p)
                              << " inferred " << to_string(inferred)
                              << " but oracle says " << to_string(oracle);
}

/// Asserts an exact rule: whenever the oracle decides, inference must have
/// decided identically (components were fully decided by construction).
inline void expect_exact(Prop p, Tri inferred, Tri oracle,
                         const std::string& context) {
  ASSERT_NE(oracle, Tri::Unknown) << context << ": oracle failed to decide";
  EXPECT_EQ(inferred, oracle) << context << ": exact rule for "
                              << to_string(p) << " disagrees with oracle";
}

}  // namespace mrt::testing
