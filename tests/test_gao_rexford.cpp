// The Gao–Rexford customer/peer/provider algebra: the flagship application
// of metarouting-style analysis to interdomain policy.
//
// The property engine shows the algebra is nondecreasing but NOT increasing,
// so Theorem 5 gives no convergence guarantee — and indeed safety comes from
// the economic hierarchy (acyclic customer→provider relation), which we
// measure: valley-free hierarchies always converge to stable, loop-free
// routings, while a weight-only protocol on a customer *cycle* admits a
// stable state that forwards in a loop — the measured reason BGP carries the
// AS path on top of its preference algebra.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/routing/optimality.hpp"
#include "mrt/sim/scenario.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

TEST(GaoRexford, AlgebraProperties) {
  Checker chk;
  const OrderTransform gr = gao_rexford_algebra();
  // Export rules preserve or worsen the route class: ND holds…
  EXPECT_EQ(chk.prop(gr, Prop::ND_L).verdict, Tri::True);
  // …but a customer route stays a customer route: not increasing.
  EXPECT_EQ(chk.prop(gr, Prop::Inc_L).verdict, Tri::False);
  // Monotone: better classes never map below worse ones.
  EXPECT_EQ(chk.prop(gr, Prop::M_L).verdict, Tri::True);
  // The invalid class is fixed.
  EXPECT_EQ(chk.prop(gr, Prop::TFix_L).verdict, Tri::True);
}

TEST(GaoRexford, ExportRules) {
  const OrderTransform gr = gao_rexford_algebra();
  // Customer-learned routes propagate everywhere.
  EXPECT_EQ(gr.fns->apply(gr_cust_label(), I(0)), I(0));
  EXPECT_EQ(gr.fns->apply(gr_peer_label(), I(0)), I(1));
  EXPECT_EQ(gr.fns->apply(gr_prov_label(), I(0)), I(2));
  // Peer/provider routes do not cross peer or customer→provider arcs
  // (valley-free): they become invalid.
  EXPECT_EQ(gr.fns->apply(gr_cust_label(), I(1)), I(3));
  EXPECT_EQ(gr.fns->apply(gr_peer_label(), I(2)), I(3));
  // …but do go down to customers.
  EXPECT_EQ(gr.fns->apply(gr_prov_label(), I(1)), I(2));
  EXPECT_EQ(gr.fns->apply(gr_prov_label(), I(2)), I(2));
}

TEST(GaoRexford, HierarchiesConvergeToStableLoopFreeRoutings) {
  Rng rng(0x6A0);
  for (int trial = 0; trial < 12; ++trial) {
    Scenario sc = gao_rexford_hierarchy(rng, 12, 6);
    SimOptions opts;
    opts.seed = 0x6A0 + static_cast<std::uint64_t>(trial);
    opts.drop_top_routes = true;
    PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
    const SimResult res = sim.run();
    ASSERT_TRUE(res.converged) << "trial " << trial;
    EXPECT_TRUE(is_locally_optimal(sc.alg, sc.net, sc.dest, sc.origin,
                                   res.routing, /*drop_top_routes=*/true))
        << "trial " << trial;
    EXPECT_TRUE(forwarding_consistent(sc.net, res.routing, sc.dest))
        << "trial " << trial;
    // Everyone reaches the destination AS in a valley-free hierarchy rooted
    // at it (providers reach customers and vice versa).
    for (int v = 0; v < sc.net.num_nodes(); ++v) {
      EXPECT_TRUE(res.routing.has_route(v)) << "trial " << trial << " " << v;
    }
  }
}

// Weight-only protocols cannot see loops: on a customer cycle there is a
// stable assignment in which three ASes forward "customer routes" around a
// cycle that never reaches the destination.
TEST(GaoRexford, CustomerCycleAdmitsStableForwardingLoop) {
  const OrderTransform gr = gao_rexford_algebra();
  // Nodes 1,2,3 in a customer cycle (each learns from the "customer" next in
  // the ring); node 1 also has a legitimate provider route to dest 0.
  Digraph g(4);
  ValueVec labels;
  const int a12 = g.add_arc(1, 2);
  labels.push_back(gr_cust_label());
  const int a23 = g.add_arc(2, 3);
  labels.push_back(gr_cust_label());
  const int a31 = g.add_arc(3, 1);
  labels.push_back(gr_cust_label());
  g.add_arc(1, 0);
  labels.push_back(gr_prov_label());
  LabeledGraph net(std::move(g), std::move(labels));

  // The looping state: everyone claims a customer route via the ring.
  Routing looping;
  looping.weight = {I(0), I(0), I(0), I(0)};
  looping.next_arc = {-1, a12, a23, a31};
  // It is a Bellman fixed point (locally optimal!)…
  EXPECT_TRUE(is_locally_optimal(gr, net, 0, I(0), looping, true));
  // …but it forwards in a circle.
  EXPECT_FALSE(forwarding_consistent(net, looping, 0));

  // The intended state (1 routes via its provider; 2 and 3 via the ring
  // toward 1) is also stable — and actually delivers.
  Routing honest;
  honest.weight = {I(0), I(2), I(0), I(0)};
  honest.next_arc = {-1, 3 /*arc (1,0)*/, a23, a31};
  // 2 learns from customer 3 whose route is via... 3 learns from 1? 3's arc
  // goes to 1 with class cust: f_cust(P=2) = ⊤ — so in the honest state 2 and
  // 3 have no valid route at all; recompute: only node 1 is routable.
  honest.weight = {I(0), I(2), std::nullopt, std::nullopt};
  honest.next_arc = {-1, 3, -1, -1};
  EXPECT_TRUE(is_locally_optimal(gr, net, 0, I(0), honest, true));
  EXPECT_TRUE(forwarding_consistent(net, honest, 0));
}

}  // namespace
}  // namespace mrt
