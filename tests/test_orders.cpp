// Base preorders: comparisons, tops/bottoms, shape probes, min-sets.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/core/bases.hpp"
#include "mrt/core/checker.hpp"
#include "mrt/core/inference.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

TEST(OrdNatLeq, TotalWithInfTop) {
  auto p = ord_nat_leq();
  EXPECT_EQ(p->cmp(I(2), I(5)), Cmp::Less);
  EXPECT_EQ(p->cmp(I(5), I(5)), Cmp::Equiv);
  EXPECT_EQ(p->cmp(Value::inf(), I(5)), Cmp::Greater);
  EXPECT_TRUE(p->is_top(Value::inf()));
  EXPECT_FALSE(p->is_top(I(1000)));
  EXPECT_TRUE(p->has_top());
}

TEST(OrdNatLeq, PlainNatHasNoTop) {
  auto p = ord_nat_leq(false);
  EXPECT_FALSE(p->has_top());
  EXPECT_FALSE(p->is_top(I(1'000'000)));
}

TEST(OrdNatGeq, BandwidthPreference) {
  auto p = ord_nat_geq();
  // Larger bandwidth is preferred (smaller in the preference order).
  EXPECT_EQ(p->cmp(I(10), I(3)), Cmp::Less);
  EXPECT_TRUE(p->is_top(I(0)));
  EXPECT_EQ(p->cmp(Value::inf(), I(3)), Cmp::Less);
}

TEST(OrdRealGeq, ReliabilityPreference) {
  auto p = ord_unit_real_geq();
  EXPECT_EQ(p->cmp(Value::real(0.9), Value::real(0.5)), Cmp::Less);
  EXPECT_TRUE(p->is_top(Value::real(0.0)));
}

TEST(OrdDiscrete, OnlyReflexivePairs) {
  auto p = ord_discrete(3);
  EXPECT_EQ(p->cmp(I(0), I(1)), Cmp::Incomp);
  EXPECT_EQ(p->cmp(I(2), I(2)), Cmp::Equiv);
  EXPECT_FALSE(p->has_top());
}

TEST(OrdTrivial, SingleClass) {
  auto p = ord_trivial(3);
  EXPECT_EQ(p->cmp(I(0), I(2)), Cmp::Equiv);
  EXPECT_TRUE(p->has_top());
  EXPECT_EQ(tops(*p).size(), 3u);
}

TEST(OrdSubset, PartialOrderShape) {
  auto p = ord_subset_bits(2);
  EXPECT_EQ(p->cmp(I(0b01), I(0b11)), Cmp::Less);
  EXPECT_EQ(p->cmp(I(0b01), I(0b10)), Cmp::Incomp);
  EXPECT_TRUE(p->is_top(I(0b11)));
  EXPECT_EQ(bottoms(*p), ValueVec{I(0)});
}

TEST(OrdTable, ValidatesPreorderLaws) {
  // Not reflexive.
  EXPECT_THROW(ord_table("bad", {{0, 1}, {0, 1}}), std::logic_error);
  // Not transitive: 0<=1, 1<=2 but not 0<=2.
  EXPECT_THROW(ord_table("bad", {{1, 1, 0}, {0, 1, 1}, {0, 0, 1}}),
               std::logic_error);
  // A valid preorder with an equivalence 0 ~ 1.
  auto p = ord_table("ok", {{1, 1, 1}, {1, 1, 1}, {0, 0, 1}});
  EXPECT_EQ(p->cmp(I(0), I(1)), Cmp::Equiv);
  EXPECT_EQ(p->cmp(I(2), I(0)), Cmp::Greater);
}

TEST(CmpHelpers, FlipAndPredicates) {
  EXPECT_EQ(flip(Cmp::Less), Cmp::Greater);
  EXPECT_EQ(flip(Cmp::Equiv), Cmp::Equiv);
  EXPECT_EQ(flip(Cmp::Incomp), Cmp::Incomp);
  EXPECT_TRUE(leq_of(Cmp::Less));
  EXPECT_TRUE(leq_of(Cmp::Equiv));
  EXPECT_FALSE(leq_of(Cmp::Incomp));
  EXPECT_EQ(to_string(Cmp::Incomp), "#");
}

TEST(MinSet, KeepsParetoFrontier) {
  auto p = ord_subset_bits(2);
  // {01, 10, 11}: 11 dominated by both, 01 # 10 both stay.
  ValueVec ms = min_set(*p, {I(0b01), I(0b10), I(0b11)});
  EXPECT_EQ(ms, (ValueVec{I(0b01), I(0b10)}));
}

TEST(MinSet, KeepsEquivalentElementsButNotDuplicates) {
  auto p = ord_trivial(3);  // everything equivalent
  ValueVec ms = min_set(*p, {I(2), I(0), I(2)});
  EXPECT_EQ(ms, (ValueVec{I(0), I(2)}));
}

TEST(MinSet, EmptyInEmptyOut) {
  auto p = ord_chain(3);
  EXPECT_TRUE(min_set(*p, {}).empty());
}

TEST(Probes, ShapesOfBases) {
  const OrderShape chain = probe_shape(*ord_chain(3));
  EXPECT_EQ(chain.multi_element, Tri::True);
  EXPECT_EQ(chain.multi_class, Tri::True);
  EXPECT_EQ(chain.no_strict_pair, Tri::False);

  const OrderShape triv = probe_shape(*ord_trivial(3));
  EXPECT_EQ(triv.multi_element, Tri::True);
  EXPECT_EQ(triv.multi_class, Tri::False);
  EXPECT_EQ(triv.no_strict_pair, Tri::True);

  const OrderShape disc = probe_shape(*ord_discrete(2));
  EXPECT_EQ(disc.multi_class, Tri::True);
  EXPECT_EQ(disc.no_strict_pair, Tri::True);

  const OrderShape one = probe_shape(*ord_trivial(1));
  EXPECT_EQ(one.multi_element, Tri::False);
}

TEST(CheckerOrders, TotalAndAntisym) {
  Checker chk;
  EXPECT_EQ(chk.preorder_prop(*ord_chain(3), Prop::Total).verdict, Tri::True);
  EXPECT_EQ(chk.preorder_prop(*ord_chain(3), Prop::Antisym).verdict,
            Tri::True);
  EXPECT_EQ(chk.preorder_prop(*ord_discrete(3), Prop::Total).verdict,
            Tri::False);
  EXPECT_EQ(chk.preorder_prop(*ord_trivial(3), Prop::Antisym).verdict,
            Tri::False);
  EXPECT_EQ(chk.preorder_prop(*ord_subset_bits(2), Prop::HasTop).verdict,
            Tri::True);
  EXPECT_EQ(chk.preorder_prop(*ord_discrete(2), Prop::HasTop).verdict,
            Tri::False);
  EXPECT_EQ(chk.preorder_prop(*ord_chain(3), Prop::HasBottom).verdict,
            Tri::True);
}

}  // namespace
}  // namespace mrt
