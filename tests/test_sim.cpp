// The asynchronous path-vector protocol: convergence with increasing
// algebras under arbitrary schedules, the BAD GADGET divergence, DISAGREE's
// two stable outcomes, and reconvergence after link failures.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/obs/obs.hpp"
#include "mrt/routing/optimality.hpp"
#include "mrt/sim/event_queue.hpp"
#include "mrt/sim/scenario.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

TEST(EventQueue, OrdersByTimeThenSequence) {
  EventQueue q;
  q.push(2.0, Event::Kind::Deliver, 1);
  q.push(1.0, Event::Kind::Deliver, 2);
  q.push(1.0, Event::Kind::LinkDown, 3);
  EXPECT_EQ(q.size(), 3u);
  Event a = q.pop();
  EXPECT_EQ(a.arc, 2);  // earliest time, lowest seq
  Event b = q.pop();
  EXPECT_EQ(b.arc, 3);  // same time, later seq
  EXPECT_EQ(q.pop().arc, 1);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 2.0);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.push(5.0, Event::Kind::Deliver, 0);
  (void)q.pop();
  EXPECT_THROW(q.push(1.0, Event::Kind::Deliver, 0), std::logic_error);
}

TEST(PathVector, ConvergesOnIncreasingAlgebra) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Scenario sc = good_gadget_hops();
    SimOptions opts;
    opts.seed = seed;
    PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
    const SimResult res = sim.run();
    ASSERT_TRUE(res.converged) << "seed " << seed;
    // Stable state is a local optimum; here (hop count) also the unique one.
    EXPECT_TRUE(is_locally_optimal(sc.alg, sc.net, sc.dest, sc.origin,
                                   res.routing));
    EXPECT_EQ(*res.routing.weight[1], I(1));
    EXPECT_EQ(*res.routing.weight[2], I(1));
    EXPECT_EQ(*res.routing.weight[3], I(1));
  }
}

TEST(PathVector, RandomIncreasingScenariosConverge) {
  Rng rng(0xC0471);
  const OrderTransform sp = ot_shortest_path(4);
  for (int trial = 0; trial < 10; ++trial) {
    Scenario sc = random_scenario(sp, I(0), rng, 10, 6);
    SimOptions opts;
    opts.seed = 1000 + static_cast<std::uint64_t>(trial);
    PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
    const SimResult res = sim.run();
    ASSERT_TRUE(res.converged) << "trial " << trial;
    EXPECT_TRUE(is_locally_optimal(sc.alg, sc.net, sc.dest, sc.origin,
                                   res.routing));
    EXPECT_TRUE(forwarding_consistent(sc.net, res.routing, sc.dest));
  }
}

TEST(PathVector, BadGadgetOscillatesUnderEveryTestedSchedule) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Scenario sc = bad_gadget();
    SimOptions opts;
    opts.seed = seed;
    opts.max_events = 20'000;
    opts.drop_top_routes = true;
    PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
    const SimResult res = sim.run();
    EXPECT_FALSE(res.converged) << "seed " << seed;
    EXPECT_GE(res.events, opts.max_events);
  }
}

TEST(PathVector, BadGadgetHasNoStableState) {
  // Independent of the simulator: no assignment is a local optimum.
  Scenario sc = bad_gadget();
  // Weights per node come from {0..3}; enumerate all assignments for 1,2,3.
  for (int w1 = 0; w1 < 4; ++w1) {
    for (int w2 = 0; w2 < 4; ++w2) {
      for (int w3 = 0; w3 < 4; ++w3) {
        Routing r;
        r.weight = {I(0), I(w1), I(w2), I(w3)};
        r.next_arc = {-1, -1, -1, -1};
        EXPECT_FALSE(is_locally_optimal(sc.alg, sc.net, sc.dest, sc.origin, r))
            << w1 << w2 << w3;
      }
    }
  }
}

TEST(PathVector, DisagreeOutcomesMatchTheory) {
  // DISAGREE (Griffin–Shepherd–Wilfong) has exactly two stable routings —
  // one node gets the preferred via-peer route, the other goes direct — plus
  // a sustainable oscillation when the two nodes fall into the symmetric
  // trap (both select direct before hearing from each other and then flip in
  // lockstep forever). All three outcomes must occur across schedules, and
  // every converged run must land in a stable state.
  bool saw_1_preferred = false;
  bool saw_2_preferred = false;
  bool saw_oscillation = false;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Scenario sc = disagree();
    SimOptions opts;
    opts.seed = seed;
    opts.drop_top_routes = true;
    opts.max_events = 4000;
    PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
    const SimResult res = sim.run();
    if (!res.converged) {
      saw_oscillation = true;
      continue;
    }
    const Value w1 = *res.routing.weight[1];
    const Value w2 = *res.routing.weight[2];
    ASSERT_TRUE((w1 == I(1) && w2 == I(2)) || (w1 == I(2) && w2 == I(1)))
        << "seed " << seed << ": " << w1.to_string() << ", " << w2.to_string();
    saw_1_preferred = saw_1_preferred || w1 == I(1);
    saw_2_preferred = saw_2_preferred || w2 == I(1);
  }
  EXPECT_TRUE(saw_1_preferred);
  EXPECT_TRUE(saw_2_preferred);
  EXPECT_TRUE(saw_oscillation);
}

TEST(PathVector, LinkFailureTriggersReconvergence) {
  // Line 2 — 1 — 0: node 2 routes through 1. Fail (1,0); node 2 and 1 lose
  // their routes; bring it back and they reconverge.
  const OrderTransform sp = ot_shortest_path(4);
  Digraph g(3);
  ValueVec labels;
  const int a10 = g.add_arc(1, 0);
  labels.push_back(I(1));
  g.add_arc(2, 1);
  labels.push_back(I(1));
  LabeledGraph net(std::move(g), std::move(labels));

  {
    PathVectorSim sim(sp, net, 0, I(0));
    // Fail the critical link well after initial convergence.
    sim.schedule_link_down(100.0, a10);
    const SimResult res = sim.run();
    ASSERT_TRUE(res.converged);
    EXPECT_FALSE(res.routing.has_route(1));
    EXPECT_FALSE(res.routing.has_route(2));
  }
  {
    PathVectorSim sim(sp, net, 0, I(0));
    sim.schedule_link_down(100.0, a10);
    sim.schedule_link_up(200.0, a10);
    const SimResult res = sim.run();
    ASSERT_TRUE(res.converged);
    ASSERT_TRUE(res.routing.has_route(2));
    EXPECT_EQ(*res.routing.weight[2], I(2));
    // The failure caused visible reselection churn.
    EXPECT_GE(res.flaps[1], 2);
  }
}

TEST(PathVector, WithdrawalsPropagate) {
  // Chain 3-2-1-0; failing (1,0) must withdraw routes all the way to 3.
  const OrderTransform sp = ot_shortest_path(4);
  Digraph g(4);
  ValueVec labels;
  const int a10 = g.add_arc(1, 0);
  labels.push_back(I(1));
  g.add_arc(2, 1);
  labels.push_back(I(1));
  g.add_arc(3, 2);
  labels.push_back(I(1));
  LabeledGraph net(std::move(g), std::move(labels));
  PathVectorSim sim(sp, net, 0, I(0));
  sim.schedule_link_down(100.0, a10);
  const SimResult res = sim.run();
  ASSERT_TRUE(res.converged);
  for (int v = 1; v <= 3; ++v) EXPECT_FALSE(res.routing.has_route(v));
}

TEST(SimStats, CountersMatchResultAndObsRegistry) {
  // With observability on, a converged run's registry counters must agree
  // exactly with the SimStats carried on the SimResult, and the deliveries
  // stat must equal SimResult::events.
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  obs::registry().reset();

  Rng rng(0x0B5);
  Scenario sc = random_scenario(ot_shortest_path(5), I(0), rng, 10, 7);
  SimOptions opts;
  opts.seed = 0x0B5;
  opts.drop_top_routes = true;
  PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
  const SimResult res = sim.run();
  obs::set_enabled(was_enabled);
  ASSERT_TRUE(res.converged);

  const SimStats& st = res.stats;
  EXPECT_EQ(st.deliveries, res.events);
  EXPECT_GT(st.messages_sent, 0);
  EXPECT_GT(st.reselects, 0);
  // Every delivered or dropped message was first sent.
  EXPECT_LE(st.deliveries + st.dropped_dead_arc, st.messages_sent);
  // Flap totals agree with the per-node view.
  long flap_total = 0;
  for (int f : res.flaps) flap_total += f;
  EXPECT_EQ(st.selection_changes, flap_total);

  const obs::Registry& reg = obs::registry();
  EXPECT_EQ(reg.counter_value("sim.runs"), 1u);
  EXPECT_EQ(reg.counter_value("sim.converged"), 1u);
  EXPECT_EQ(reg.counter_value("sim.messages_sent"),
            static_cast<std::uint64_t>(st.messages_sent));
  EXPECT_EQ(reg.counter_value("sim.withdrawals_sent"),
            static_cast<std::uint64_t>(st.withdrawals_sent));
  EXPECT_EQ(reg.counter_value("sim.deliveries"),
            static_cast<std::uint64_t>(st.deliveries));
  EXPECT_EQ(reg.counter_value("sim.dropped_dead_arc"),
            static_cast<std::uint64_t>(st.dropped_dead_arc));
  EXPECT_EQ(reg.counter_value("sim.reselects"),
            static_cast<std::uint64_t>(st.reselects));
  EXPECT_EQ(reg.counter_value("sim.selection_changes"),
            static_cast<std::uint64_t>(st.selection_changes));
  EXPECT_GE(reg.gauge_value("sim.queue_high_water"),
            static_cast<double>(st.queue_high_water));
}

TEST(SimStats, DeterministicAcrossIdenticalSeeds) {
  // Two runs with the same seed must agree on every stat — instrumentation
  // must not perturb the schedule.
  auto run_once = [](bool with_obs) {
    const bool was_enabled = obs::enabled();
    obs::set_enabled(with_obs);
    Rng rng(0xD27);
    Scenario sc = random_scenario(ot_hop_count(), I(0), rng, 12, 8);
    SimOptions opts;
    opts.seed = 0xD27;
    opts.drop_top_routes = true;
    PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
    const SimResult res = sim.run();
    obs::set_enabled(was_enabled);
    return res;
  };
  const SimResult a = run_once(true);
  const SimResult b = run_once(true);
  const SimResult c = run_once(false);  // obs off: same dynamics
  for (const SimResult* r : {&b, &c}) {
    EXPECT_EQ(a.converged, r->converged);
    EXPECT_EQ(a.events, r->events);
    EXPECT_EQ(a.stats.messages_sent, r->stats.messages_sent);
    EXPECT_EQ(a.stats.withdrawals_sent, r->stats.withdrawals_sent);
    EXPECT_EQ(a.stats.deliveries, r->stats.deliveries);
    EXPECT_EQ(a.stats.withdrawals_delivered, r->stats.withdrawals_delivered);
    EXPECT_EQ(a.stats.dropped_dead_arc, r->stats.dropped_dead_arc);
    EXPECT_EQ(a.stats.reselects, r->stats.reselects);
    EXPECT_EQ(a.stats.selection_changes, r->stats.selection_changes);
    EXPECT_EQ(a.stats.queue_high_water, r->stats.queue_high_water);
  }
}

TEST(SimStats, LinkEventsAndWithdrawalsCounted) {
  // Chain 2-1-0; failing then restoring (1,0) produces one down and one up
  // event plus at least one withdrawal.
  const OrderTransform sp = ot_shortest_path(4);
  Digraph g(3);
  ValueVec labels;
  const int a10 = g.add_arc(1, 0);
  labels.push_back(I(1));
  g.add_arc(2, 1);
  labels.push_back(I(1));
  LabeledGraph net(std::move(g), std::move(labels));
  PathVectorSim sim(sp, net, 0, I(0));
  sim.schedule_link_down(100.0, a10);
  sim.schedule_link_up(200.0, a10);
  const SimResult res = sim.run();
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.stats.link_down_events, 1);
  EXPECT_EQ(res.stats.link_up_events, 1);
  EXPECT_GT(res.stats.withdrawals_sent, 0);
  EXPECT_GT(res.stats.withdrawals_delivered, 0);
  EXPECT_GE(res.stats.queue_high_water, 1u);
}

// Every message is eventually accounted for exactly once: delivered, dropped
// on a dead arc, eaten by an injected loss window, or still queued when the
// run exits. Duplicated copies count as sends of their own, so the identity
// needs no correction term.
long conservation_gap(const SimStats& st) {
  return st.messages_sent - (st.deliveries + st.dropped_dead_arc +
                             st.dropped_injected_loss + st.in_flight_at_end);
}

TEST(SimStats, ConservationHoldsOnConvergedRuns) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Scenario sc = good_gadget_hops();
    SimOptions opts;
    opts.seed = seed;
    PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
    const SimResult res = sim.run();
    ASSERT_TRUE(res.converged) << "seed " << seed;
    // Quiescence means the queue drained: nothing may remain in flight.
    EXPECT_EQ(res.stats.in_flight_at_end, 0) << "seed " << seed;
    EXPECT_EQ(conservation_gap(res.stats), 0) << "seed " << seed;
  }
}

TEST(SimStats, ConservationHoldsWhenTheEventCapCutsARunShort) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Scenario sc = bad_gadget();
    SimOptions opts;
    opts.seed = seed;
    opts.max_events = 4000;
    opts.drop_top_routes = true;
    PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
    const SimResult res = sim.run();
    ASSERT_FALSE(res.converged) << "seed " << seed;
    // An oscillating run stopped mid-flight must report its backlog...
    EXPECT_GT(res.stats.in_flight_at_end, 0) << "seed " << seed;
    // ...and the backlog closes the books exactly.
    EXPECT_EQ(conservation_gap(res.stats), 0) << "seed " << seed;
  }
}

TEST(SimStats, ConservationHoldsAcrossLinkFailures) {
  // Cut the chain's first arc while initial advertisements are still in
  // flight: messages already queued on the arc die there and must show up as
  // dropped_dead_arc, never as a leak in the identity.
  bool saw_dead_arc_drop = false;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const OrderTransform sp = ot_shortest_path(9);
    Digraph g(3);
    ValueVec labels;
    const int a10 = g.add_arc(1, 0);
    labels.push_back(I(1));
    g.add_arc(2, 1);
    labels.push_back(I(1));
    LabeledGraph net(std::move(g), std::move(labels));
    SimOptions opts;
    opts.seed = seed;
    PathVectorSim sim(sp, net, 0, I(0), opts);
    sim.schedule_link_down(0.5, a10);
    sim.schedule_link_up(50.0, a10);
    const SimResult res = sim.run();
    ASSERT_TRUE(res.converged) << "seed " << seed;
    EXPECT_EQ(conservation_gap(res.stats), 0) << "seed " << seed;
    saw_dead_arc_drop = saw_dead_arc_drop || res.stats.dropped_dead_arc > 0;
  }
  EXPECT_TRUE(saw_dead_arc_drop);
}

TEST(Scenario, GadgetAlgebraShape) {
  Checker chk;
  Scenario sc = bad_gadget();
  // The gadget algebra is not nondecreasing (peer maps 2 to 1) — that is
  // exactly what Theorem 5 requires for instability to be possible.
  EXPECT_EQ(chk.prop(sc.alg, Prop::ND_L).verdict, Tri::False);
  // peer maps 1 ≤ 2 to 3 > 1: not monotone either.
  EXPECT_EQ(chk.prop(sc.alg, Prop::M_L).verdict, Tri::False);
}

}  // namespace
}  // namespace mrt
