// The checker itself (oracle quality: verdicts, counterexamples, sampling
// behaviour) and the comparison between the original 2005 sufficient rules
// and the paper's exact rules.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/inference.hpp"
#include "mrt/core/random_algebra.hpp"
#include "mrt/core/report.hpp"

namespace mrt {
namespace {

using mrt::testing::I;
using mrt::testing::make_ot;

TEST(Checker, KnownVerdictsOnCanonicalAlgebras) {
  Checker chk;
  const OrderTransform sp = ot_shortest_path(3);
  // Infinite carrier: truths come back Unknown (sampled), falsities definite.
  EXPECT_NE(chk.prop(sp, Prop::M_L).verdict, Tri::False);
  EXPECT_NE(chk.prop(sp, Prop::ND_L).verdict, Tri::False);
  EXPECT_EQ(chk.prop(sp, Prop::C_L).verdict, Tri::False);

  const OrderTransform bw = ot_widest_path(3);
  EXPECT_EQ(chk.prop(bw, Prop::N_L).verdict, Tri::False);
  EXPECT_EQ(chk.prop(bw, Prop::Inc_L).verdict, Tri::False);
  EXPECT_NE(chk.prop(bw, Prop::ND_L).verdict, Tri::False);
}

TEST(Checker, CounterexamplesAreConcrete) {
  Checker chk;
  const OrderTransform bw = ot_widest_path(3);
  const CheckResult r = chk.prop(bw, Prop::N_L);
  ASSERT_EQ(r.verdict, Tri::False);
  // The detail must name the witnesses.
  EXPECT_NE(r.detail.find("f="), std::string::npos);
  EXPECT_NE(r.detail.find("a="), std::string::npos);
}

TEST(Checker, ExhaustiveOnFiniteCarriers) {
  Checker chk;
  const OrderTransform c = ot_chain_add(3, 1, 2);
  const CheckResult r = chk.prop(c, Prop::M_L);
  EXPECT_EQ(r.verdict, Tri::True);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_NE(r.detail.find("exhaustive"), std::string::npos);
}

TEST(Checker, TFixUsesVisibleTops) {
  Checker chk;
  EXPECT_EQ(chk.prop(ot_shortest_path(3), Prop::TFix_L).verdict, Tri::True);
  // A top that moves: 0 < 1 (⊤ = 1), f sends 1 to 0.
  const OrderTransform moved = make_ot({{1, 1}, {0, 1}}, {{0, 0}});
  EXPECT_EQ(chk.prop(moved, Prop::TFix_L).verdict, Tri::False);
}

TEST(Checker, RefineFillsOnlyUnknowns) {
  Checker chk;
  OrderTransform c = ot_chain_add(3, 1, 2);
  c.props.set(Prop::M_L, Tri::False, "deliberately wrong annotation");
  chk.refine(c, c.props);
  // refine must not overwrite the existing (wrong) verdict…
  EXPECT_EQ(c.props.value(Prop::M_L), Tri::False);
  // …but must fill unknowns.
  EXPECT_NE(c.props.value(Prop::ND_L), Tri::Unknown);
}

TEST(Checker, ReportCoversAllRelevantProps) {
  Checker chk;
  const OrderTransform c = ot_chain_add(2, 0, 1);
  const PropertyReport r = chk.report(c);
  for (Prop p : props_for(StructureKind::OrderTransform)) {
    EXPECT_NE(r.value(p), Tri::Unknown) << to_string(p);
  }
}

TEST(Report, RenderingContainsVerdictsAndProvenance) {
  const OrderTransform sp = ot_shortest_path(3);
  const std::string text = describe(sp);
  EXPECT_NE(text.find("order transform"), std::string::npos);
  EXPECT_NE(text.find("| M "), std::string::npos);
  EXPECT_NE(text.find("axiom"), std::string::npos);
  EXPECT_FALSE(summary_line(sp.props, StructureKind::OrderTransform).empty());
}

// ---------------------------------------------------------------------------
// 2005 sufficient rules vs the exact rules
// ---------------------------------------------------------------------------

class Rules2005 : public ::testing::TestWithParam<int> {};

// Soundness: whenever a 2005 rule fires (True), the oracle agrees.
TEST_P(Rules2005, SufficientRulesAreSound) {
  Checker chk;
  Rng rng(0x2005 + static_cast<std::uint64_t>(GetParam()));
  OrderTransform s = random_order_transform(rng);
  OrderTransform t = random_order_transform(rng);
  s.props = chk.report(s);
  t.props = chk.report(t);
  // The 2005 story presumes Sobrinho algebras; restrict to ⊤-respecting,
  // ⊤-free-or-collapsed settings where the classical claims live.
  if (s.props.value(Prop::HasTop) != Tri::False) return;

  const OrderTransform p = lex(s, t);
  if (classic2005_nd_lex(s.props, t.props) == Tri::True) {
    EXPECT_EQ(chk.prop(p, Prop::ND_L).verdict, Tri::True)
        << "seed " << GetParam();
  }
  if (classic2005_inc_lex(s.props, t.props) == Tri::True &&
      t.props.value(Prop::HasTop) == Tri::False) {
    EXPECT_EQ(chk.prop(p, Prop::Inc_L).verdict, Tri::True)
        << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Rules2005, ::testing::Range(0, 100));

// Incompleteness: the exact rules decide cases the 2005 rules cannot.
// ND(S ⃗× T) with I(S) but ¬ND(T): the 2005 ND rule (ND(S) ∧ ND(T)) stays
// silent, the exact rule proves ND — and refutations are entirely beyond the
// 2005 system, which can only ever answer "yes" or "don't know".
TEST(Rules2005, ExactRulesStrictlyMoreComplete) {
  Checker chk;
  // S: strictly increasing everywhere (2-chain, f = step up with no fixed
  // non-top point … on a finite chain the top must move, so use a 3-cycle
  // free construction: 0 < 1, f(0) = 1, f(1) = …). A finite SI algebra
  // cannot exist (see test_thm5_local.cpp), so take I(S) with ⊤ fixed and
  // use the ⃗×_ω product, where the paper rules are exact.
  OrderTransform s = ot_chain_add(2, 1, 1);
  s.props = chk.report(s);
  ASSERT_EQ(s.props.value(Prop::Inc_L), Tri::True);

  OrderTransform t = make_ot({{1, 1}, {0, 1}}, {{0, 0}});  // not ND
  t.props = chk.report(t);
  ASSERT_EQ(t.props.value(Prop::ND_L), Tri::False);

  // 2005: unknown (its only ND rule needs ND of both factors).
  EXPECT_EQ(classic2005_nd_lex(s.props, t.props), Tri::Unknown);
  // Exact Fig. 3 rule: ND via I(S). Oracle on the collapsed product agrees.
  EXPECT_EQ(paper_rule_nd_lex(s.props, t.props), Tri::True);
  const OrderTransform p = lex_omega(s, t);
  EXPECT_EQ(chk.prop(p, Prop::ND_L).verdict, Tri::True);

  // Refutation: N(S) fails and C(T) fails ⇒ exact rule *derives* ¬M of the
  // plain product; the 2005 system has no way to state this.
  OrderTransform bw = ot_widest_path(3);
  OrderTransform sp = ot_shortest_path(3);
  const OrderTransform q = lex(bw, sp);
  EXPECT_EQ(q.props.value(Prop::M_L), Tri::False);
  EXPECT_FALSE(q.props.get(Prop::M_L).why.empty());
}

}  // namespace
}  // namespace mrt
