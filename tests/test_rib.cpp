// Differential property suite for mrt::rib: every column of a batched
// RibSolver — cold, and after hundreds of random delta batches — must be
// byte-identical (weights AND witness arcs) to a standalone
// dyn::Solver(Bellman) bound to the same destination, across random chain
// algebras × random connected topologies × random single/multi-op deltas,
// and across every A/B axis the batched solver owns:
//
//   MRT_COMPILE — WeightEngine present (flat blocked kernels) vs absent
//                 (boxed per-column fallback), via in-process toggles;
//   MRT_DYN     — dyn::set_enabled(false) forces cold re-solves;
//   MRT_THREADS — par::set_thread_limit, the bit-identical-at-any-
//                 thread-count contract over destination blocks.
//
// The license for exact comparison is the same as test_dyn_differential:
// both sides canonicalize witnesses, and the chain carriers are
// antisymmetric total orders, so the fixed point has a unique normal form.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "mrt/dyn/solver.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/par/par.hpp"
#include "mrt/rib/rib.hpp"

namespace mrt {
namespace {

using mrt::testing::I;
using dyn::TopologyDelta;

struct RibInstance {
  OrderTransform ot;
  LabeledGraph net;
  int label_lo = 0;
  int label_hi = 0;
  std::string desc;
};

/// ⊗ = saturating +c (increasing shortest-path chain) — compiles flat.
RibInstance sat_plus_instance(Rng& rng) {
  const int n = 4 + static_cast<int>(rng.below(6));
  const int hi =
      1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n - 1)));
  Digraph g = random_connected(rng, 5 + static_cast<int>(rng.below(6)),
                               3 + static_cast<int>(rng.below(6)));
  ValueVec labels;
  for (int id = 0; id < g.num_arcs(); ++id) {
    labels.push_back(I(rng.range(1, hi)));
  }
  return RibInstance{OrderTransform{"chain(<=,sat+)", ord_chain(n),
                                    fam_chain_add(n, 1, hi), {}},
                     LabeledGraph(std::move(g), std::move(labels)),
                     1,
                     hi,
                     "sat_plus n=" + std::to_string(n)};
}

/// ⊗ = max(·, c): ND but not increasing (widest-path-like), table family.
RibInstance chain_max_instance(Rng& rng) {
  const int n = 4 + static_cast<int>(rng.below(6));
  Digraph g = random_connected(rng, 5 + static_cast<int>(rng.below(6)),
                               3 + static_cast<int>(rng.below(6)));
  ValueVec labels;
  for (int id = 0; id < g.num_arcs(); ++id) {
    labels.push_back(I(rng.range(0, n)));
  }
  std::vector<std::vector<int>> fns;
  for (int c = 0; c <= n; ++c) {
    std::vector<int> f;
    for (int x = 0; x <= n; ++x) f.push_back(std::max(x, c));
    fns.push_back(std::move(f));
  }
  return RibInstance{OrderTransform{"chain(<=,max)", ord_chain(n),
                                    fam_table("{max(.,c)}", n + 1,
                                              std::move(fns)),
                                    {}},
                     LabeledGraph(std::move(g), std::move(labels)),
                     0,
                     n,
                     "chain_max n=" + std::to_string(n)};
}

/// 1–4 random edits, biased toward arc flaps, with relabels and node
/// crash/restart mixed in — the same shape as the dyn differential suite.
TopologyDelta random_delta(Rng& rng, const RibInstance& inst) {
  TopologyDelta d;
  const int m = inst.net.graph().num_arcs();
  const int n = inst.net.num_nodes();
  const int ops = 1 + static_cast<int>(rng.below(4));
  for (int i = 0; i < ops; ++i) {
    const int arc = static_cast<int>(rng.below(static_cast<std::uint64_t>(m)));
    const int node =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    switch (rng.below(8)) {
      case 0:
      case 1:
      case 2:
        d.arc_down(arc);
        break;
      case 3:
      case 4:
        d.arc_up(arc);
        break;
      case 5:
        d.relabel(arc, I(rng.range(inst.label_lo, inst.label_hi)));
        break;
      case 6:
        d.node_down(node);
        break;
      default:
        d.node_up(node);
        break;
    }
  }
  return d;
}

void expect_identical(const Routing& a, const Routing& b,
                      const std::string& what) {
  ASSERT_EQ(a.weight.size(), b.weight.size()) << what;
  for (std::size_t v = 0; v < a.weight.size(); ++v) {
    ASSERT_EQ(a.weight[v].has_value(), b.weight[v].has_value())
        << what << " node " << v;
    if (a.weight[v]) {
      ASSERT_EQ(*a.weight[v], *b.weight[v]) << what << " node " << v;
    }
    ASSERT_EQ(a.next_arc[v], b.next_arc[v]) << what << " node " << v;
  }
}

/// Scoped toggles: restores dyn::enabled and the par thread limit on exit
/// so one trial's A/B setting never leaks into the next.
struct ScopedToggles {
  bool dyn_before = dyn::enabled();
  int threads_before = par::thread_limit();
  ScopedToggles(bool dyn_on, int threads) {
    dyn::set_enabled(dyn_on);
    par::set_thread_limit(threads);
  }
  ~ScopedToggles() {
    dyn::set_enabled(dyn_before);
    par::set_thread_limit(threads_before);
  }
};

// The headline differential: sweeping the full toggle cube, every RIB
// column must match a standalone Bellman dyn::Solver byte for byte on the
// cold solve and after every one of ≥500 random delta batches.
TEST(RibDifferential, ColumnsByteIdenticalToStandaloneAcrossDeltas) {
  constexpr int kTrials = 64;
  constexpr int kBatches = 8;  // 64 × 8 = 512 delta batches
  long warm_batches = 0;
  long flat_trials = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(par::mix_seed(0x51B0, static_cast<std::uint64_t>(trial)));
    RibInstance inst =
        (trial % 2 == 0) ? sat_plus_instance(rng) : chain_max_instance(rng);
    inst.desc += " trial " + std::to_string(trial);

    // The toggle cube: MRT_COMPILE × MRT_DYN × MRT_THREADS.
    const bool with_engine = (trial % 2 == 0);
    const bool dyn_on = (trial % 4 < 3);  // every 4th trial forces cold
    const int threads = (trial % 3 == 0) ? 4 : 1;
    ScopedToggles toggles(dyn_on, threads);

    const compile::WeightEngine eng(inst.ot);
    const compile::WeightEngine* weng = with_engine ? &eng : nullptr;

    // All |V| destinations — the full routing table.
    const int n = inst.net.num_nodes();
    rib::RibSolver rib(inst.ot, weng);
    rib.solve_all(inst.net, I(0));
    if (rib.batched_flat()) ++flat_trials;

    std::vector<std::unique_ptr<Solver>> ref;
    for (int d = 0; d < n; ++d) {
      ref.push_back(dyn::make_solver(dyn::EngineKind::Bellman, inst.ot, weng));
      ref.back()->solve(inst.net, d, I(0));
      ASSERT_EQ(rib.column_converged(d), ref.back()->converged())
          << inst.desc << " col " << d;
      expect_identical(rib.routing(d), ref.back()->routing(),
                       inst.desc + " cold col " + std::to_string(d));
    }
    ASSERT_TRUE(rib.last_update().cold) << inst.desc;
    ASSERT_EQ(rib.num_columns(), n);

    for (int b = 0; b < kBatches; ++b) {
      const TopologyDelta d = random_delta(rng, inst);
      rib.update(d);
      if (!rib.last_update().cold && rib.last_update().changed_arcs > 0) {
        ++warm_batches;
      }
      ASSERT_EQ(static_cast<int>(rib.last_update().affected.size()), n)
          << inst.desc;
      for (int c = 0; c < n; ++c) {
        ref[static_cast<std::size_t>(c)]->update(d);
        ASSERT_EQ(rib.column_converged(c),
                  ref[static_cast<std::size_t>(c)]->converged())
            << inst.desc << " batch " << b << " col " << c;
        if (!rib.column_converged(c)) continue;
        expect_identical(rib.routing(c),
                         ref[static_cast<std::size_t>(c)]->routing(),
                         inst.desc + " batch " + std::to_string(b) + " col " +
                             std::to_string(c) + " " + d.describe());
      }
    }
  }
  // The sweep must genuinely exercise both the incremental path and the
  // flat blocked kernels, not silently fall back everywhere.
  EXPECT_GT(warm_batches, 100) << "batched incremental path barely exercised";
  EXPECT_GT(flat_trials, 20) << "flat blocked kernels barely exercised";
}

// The mrt::par contract, verified bit-for-bit: the same instance and delta
// sequence run under thread limits 1 and 4 must produce identical columns
// AND identical work accounting after every batch.
TEST(RibDifferential, ThreadCountInvariance) {
  constexpr int kTrials = 12;
  constexpr int kBatches = 6;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng seed_rng(par::mix_seed(0x51B1, static_cast<std::uint64_t>(trial)));
    const std::uint64_t inst_seed = seed_rng.next();

    auto run = [&](int threads) {
      Rng rng(inst_seed);
      RibInstance inst =
          (trial % 2 == 0) ? sat_plus_instance(rng) : chain_max_instance(rng);
      const compile::WeightEngine eng(inst.ot);
      const compile::WeightEngine* weng = (trial % 3 != 0) ? &eng : nullptr;
      ScopedToggles toggles(true, threads);
      auto rib = std::make_unique<rib::RibSolver>(inst.ot, weng);
      rib->solve_all(inst.net, I(0));
      std::vector<Routing> snaps;
      std::vector<std::vector<int>> affected;
      for (int b = 0; b < kBatches; ++b) {
        rib->update(random_delta(rng, inst));
        for (int c = 0; c < rib->num_columns(); ++c) {
          snaps.push_back(rib->routing(c));
        }
        affected.push_back(rib->last_update().affected);
      }
      return std::make_pair(std::move(snaps), std::move(affected));
    };

    auto one = run(1);
    auto four = run(4);
    ASSERT_EQ(one.first.size(), four.first.size()) << "trial " << trial;
    for (std::size_t i = 0; i < one.first.size(); ++i) {
      expect_identical(one.first[i], four.first[i],
                       "trial " + std::to_string(trial) + " snapshot " +
                           std::to_string(i));
    }
    ASSERT_EQ(one.second, four.second)
        << "trial " << trial << ": affected-set accounting diverged";
  }
}

TEST(Rib, SolveBindsAndMaterializesColumns) {
  Rng rng(0x51B2);
  RibInstance inst = sat_plus_instance(rng);
  const compile::WeightEngine eng(inst.ot);
  rib::RibSolver rib(inst.ot, &eng);
  const int n = inst.net.num_nodes();

  // Duplicate + unordered destination subset: columns are independent.
  std::vector<int> dests{n - 1, 0, n - 1};
  rib.solve(inst.net, dests, I(0));
  EXPECT_EQ(rib.num_columns(), 3);
  EXPECT_EQ(rib.dests(), dests);
  EXPECT_TRUE(rib.converged());
  EXPECT_TRUE(rib.batched_flat());
  EXPECT_NE(rib.journal_stream(), 0u);
  expect_identical(rib.routing(0), rib.routing(2), "duplicate columns");
  const rib::RibStats& st = rib.last_update();
  EXPECT_TRUE(st.cold);
  EXPECT_EQ(st.columns, 3);
  EXPECT_EQ(st.cold_columns, 3);
  EXPECT_EQ(st.affected, (std::vector<int>{n, n, n}));
  EXPECT_EQ(st.affected_max(), n);
  EXPECT_DOUBLE_EQ(st.affected_mean_fraction(), 1.0);

  // Without an engine the boxed fallback serves the same bytes.
  rib::RibSolver boxed(inst.ot);
  boxed.solve(inst.net, dests, I(0));
  EXPECT_FALSE(boxed.batched_flat());
  for (int c = 0; c < 3; ++c) {
    expect_identical(rib.routing(c), boxed.routing(c),
                     "flat vs boxed col " + std::to_string(c));
  }

  EXPECT_THROW(rib.routing(3), std::logic_error);
  rib::RibSolver empty(inst.ot);
  EXPECT_THROW(empty.solve(inst.net, {}, I(0)), std::logic_error);
  EXPECT_THROW(empty.solve(inst.net, {n}, I(0)), std::logic_error);
  EXPECT_THROW(empty.update(TopologyDelta{}.arc_down(0)), std::logic_error);
}

// Warm multi-destination maintenance on a ring: single arc flaps must not
// re-relax the whole table on average — the shared-invalidation payoff the
// perf gate measures on large topologies, pinned here functionally.
TEST(Rib, WarmAffectedSetsStayLocalOnRing) {
  Rng rng(0x51B3);
  const int n = 32;
  Digraph g = ring(n);
  ValueVec labels;
  for (int id = 0; id < g.num_arcs(); ++id) labels.push_back(I(1));
  OrderTransform ot{"chain(<=,sat+)", ord_chain(64), fam_chain_add(64, 1, 1),
                    {}};
  LabeledGraph net(std::move(g), std::move(labels));
  const compile::WeightEngine eng(ot);
  rib::RibSolver rib(ot, &eng);
  rib.solve_all(net, I(0));

  double fraction_sum = 0;
  int updates = 0;
  const int m = net.graph().num_arcs();
  for (int b = 0; b < 100; ++b) {
    const int arc = static_cast<int>(rng.below(static_cast<std::uint64_t>(m)));
    rib.update(TopologyDelta{}.arc_down(arc));
    ASSERT_FALSE(rib.last_update().cold);
    fraction_sum += rib.last_update().affected_mean_fraction();
    ++updates;
    rib.update(TopologyDelta{}.arc_up(arc));
    fraction_sum += rib.last_update().affected_mean_fraction();
    ++updates;
  }
  EXPECT_LT(fraction_sum / updates, 0.75)
      << "batched warm updates re-relaxed almost the whole table on average";
}

}  // namespace
}  // namespace mrt
