// Differential property suite for mrt::rib: every column of a batched
// RibSolver — cold, and after hundreds of random delta batches — must be
// byte-identical (weights AND witness arcs) to a standalone
// dyn::Solver(Bellman) bound to the same destination, across random chain
// algebras × random connected topologies × random single/multi-op deltas,
// and across every A/B axis the batched solver owns:
//
//   MRT_COMPILE — WeightEngine present (flat blocked kernels) vs absent
//                 (boxed per-column fallback), via in-process toggles;
//   MRT_DYN     — dyn::set_enabled(false) forces cold re-solves;
//   MRT_THREADS — par::set_thread_limit, the bit-identical-at-any-
//                 thread-count contract over destination blocks;
//   MRT_SIMD    — compile::simd::set_enabled, the vectorized select/compare
//                 kernels (including the slot-major vertical relax on
//                 multi-word carriers) vs their scalar twins.
//
// The license for exact comparison is the same as test_dyn_differential:
// both sides canonicalize witnesses, and the chain carriers are
// antisymmetric total orders, so the fixed point has a unique normal form.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "mrt/compile/simd.hpp"
#include "mrt/core/bases.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/dyn/solver.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/par/par.hpp"
#include "mrt/rib/rib.hpp"

namespace mrt {
namespace {

using mrt::testing::I;
using dyn::TopologyDelta;

struct RibInstance {
  OrderTransform ot;
  LabeledGraph net;
  int label_lo = 0;
  int label_hi = 0;
  std::string desc;
  bool pair_labels = false;  ///< labels (and relabels) are (cost, cap) pairs
};

/// The origin weight matching an instance's carrier shape.
Value origin_of(const RibInstance& inst) {
  return inst.pair_labels ? Value::pair(I(0), Value::inf()) : I(0);
}

/// ⊗ = saturating +c (increasing shortest-path chain) — compiles flat.
RibInstance sat_plus_instance(Rng& rng) {
  const int n = 4 + static_cast<int>(rng.below(6));
  const int hi =
      1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n - 1)));
  Digraph g = random_connected(rng, 5 + static_cast<int>(rng.below(6)),
                               3 + static_cast<int>(rng.below(6)));
  ValueVec labels;
  for (int id = 0; id < g.num_arcs(); ++id) {
    labels.push_back(I(rng.range(1, hi)));
  }
  return RibInstance{OrderTransform{"chain(<=,sat+)", ord_chain(n),
                                    fam_chain_add(n, 1, hi), {}},
                     LabeledGraph(std::move(g), std::move(labels)),
                     1,
                     hi,
                     "sat_plus n=" + std::to_string(n)};
}

/// ⊗ = max(·, c): ND but not increasing (widest-path-like), table family.
RibInstance chain_max_instance(Rng& rng) {
  const int n = 4 + static_cast<int>(rng.below(6));
  Digraph g = random_connected(rng, 5 + static_cast<int>(rng.below(6)),
                               3 + static_cast<int>(rng.below(6)));
  ValueVec labels;
  for (int id = 0; id < g.num_arcs(); ++id) {
    labels.push_back(I(rng.range(0, n)));
  }
  std::vector<std::vector<int>> fns;
  for (int c = 0; c <= n; ++c) {
    std::vector<int> f;
    for (int x = 0; x <= n; ++x) f.push_back(std::max(x, c));
    fns.push_back(std::move(f));
  }
  return RibInstance{OrderTransform{"chain(<=,max)", ord_chain(n),
                                    fam_table("{max(.,c)}", n + 1,
                                              std::move(fns)),
                                    {}},
                     LabeledGraph(std::move(g), std::move(labels)),
                     0,
                     n,
                     "chain_max n=" + std::to_string(n)};
}

/// lex(shortest, widest): a two-word flat carrier whose labels compile to
/// dense AddSat/MinWord programs — the multi-word vec-capable shape the
/// slot-major vertical SIMD kernel targets. Node counts ≥ 9 guarantee at
/// least one full 8-lane block in the all-|V| sweep, so the vertical path
/// genuinely engages.
RibInstance lex_stack_instance(Rng& rng) {
  Digraph g = random_connected(rng, 9 + static_cast<int>(rng.below(8)),
                               5 + static_cast<int>(rng.below(8)));
  ValueVec labels;
  for (int id = 0; id < g.num_arcs(); ++id) {
    labels.push_back(Value::pair(I(rng.range(1, 5)), I(rng.range(1, 5))));
  }
  return RibInstance{lex(ot_shortest_path(6), ot_widest_path(6)),
                     LabeledGraph(std::move(g), std::move(labels)),
                     1,
                     5,
                     "lex_stack",
                     /*pair_labels=*/true};
}

/// 1–4 random edits, biased toward arc flaps, with relabels and node
/// crash/restart mixed in — the same shape as the dyn differential suite.
TopologyDelta random_delta(Rng& rng, const RibInstance& inst) {
  TopologyDelta d;
  const int m = inst.net.graph().num_arcs();
  const int n = inst.net.num_nodes();
  const int ops = 1 + static_cast<int>(rng.below(4));
  for (int i = 0; i < ops; ++i) {
    const int arc = static_cast<int>(rng.below(static_cast<std::uint64_t>(m)));
    const int node =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    switch (rng.below(8)) {
      case 0:
      case 1:
      case 2:
        d.arc_down(arc);
        break;
      case 3:
      case 4:
        d.arc_up(arc);
        break;
      case 5:
        d.relabel(arc,
                  inst.pair_labels
                      ? Value::pair(I(rng.range(inst.label_lo, inst.label_hi)),
                                    I(rng.range(inst.label_lo, inst.label_hi)))
                      : I(rng.range(inst.label_lo, inst.label_hi)));
        break;
      case 6:
        d.node_down(node);
        break;
      default:
        d.node_up(node);
        break;
    }
  }
  return d;
}

void expect_identical(const Routing& a, const Routing& b,
                      const std::string& what) {
  ASSERT_EQ(a.weight.size(), b.weight.size()) << what;
  for (std::size_t v = 0; v < a.weight.size(); ++v) {
    ASSERT_EQ(a.weight[v].has_value(), b.weight[v].has_value())
        << what << " node " << v;
    if (a.weight[v]) {
      ASSERT_EQ(*a.weight[v], *b.weight[v]) << what << " node " << v;
    }
    ASSERT_EQ(a.next_arc[v], b.next_arc[v]) << what << " node " << v;
  }
}

/// Scoped toggles: restores dyn::enabled, the par thread limit, and the
/// SIMD kernel toggle on exit so one trial's A/B setting never leaks into
/// the next.
struct ScopedToggles {
  bool dyn_before = dyn::enabled();
  int threads_before = par::thread_limit();
  bool simd_before = compile::simd::enabled();
  ScopedToggles(bool dyn_on, int threads, bool simd_on) {
    dyn::set_enabled(dyn_on);
    par::set_thread_limit(threads);
    compile::simd::set_enabled(simd_on);
  }
  ~ScopedToggles() {
    dyn::set_enabled(dyn_before);
    par::set_thread_limit(threads_before);
    compile::simd::set_enabled(simd_before);
  }
};

// The headline differential: sweeping the full toggle cube, every RIB
// column must match a standalone Bellman dyn::Solver byte for byte on the
// cold solve and after every one of ≥500 random delta batches.
TEST(RibDifferential, ColumnsByteIdenticalToStandaloneAcrossDeltas) {
  constexpr int kTrials = 64;
  constexpr int kBatches = 8;  // 64 × 8 = 512 delta batches
  long warm_batches = 0;
  long flat_trials = 0;
  long vec_trials = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(par::mix_seed(0x51B0, static_cast<std::uint64_t>(trial)));
    RibInstance inst = (trial % 3 == 0)   ? sat_plus_instance(rng)
                       : (trial % 3 == 1) ? chain_max_instance(rng)
                                          : lex_stack_instance(rng);
    inst.desc += " trial " + std::to_string(trial);

    // The toggle cube: MRT_SIMD × MRT_COMPILE × MRT_DYN × MRT_THREADS.
    const bool with_engine = (trial % 2 == 0);
    const bool dyn_on = (trial % 4 < 3);  // every 4th trial forces cold
    const int threads = (trial % 3 == 0) ? 4 : 1;
    const bool simd_on = (trial % 5 != 4);  // every 5th trial scalar kernels
    ScopedToggles toggles(dyn_on, threads, simd_on);

    const compile::WeightEngine eng(inst.ot);
    const compile::WeightEngine* weng = with_engine ? &eng : nullptr;
    if (inst.pair_labels && with_engine && simd_on) ++vec_trials;

    // All |V| destinations — the full routing table.
    const int n = inst.net.num_nodes();
    rib::RibSolver rib(inst.ot, weng);
    rib.solve_all(inst.net, origin_of(inst));
    if (rib.batched_flat()) ++flat_trials;

    std::vector<std::unique_ptr<Solver>> ref;
    for (int d = 0; d < n; ++d) {
      ref.push_back(dyn::make_solver(dyn::EngineKind::Bellman, inst.ot, weng));
      ref.back()->solve(inst.net, d, origin_of(inst));
      ASSERT_EQ(rib.column_converged(d), ref.back()->converged())
          << inst.desc << " col " << d;
      expect_identical(rib.routing(d), ref.back()->routing(),
                       inst.desc + " cold col " + std::to_string(d));
    }
    ASSERT_TRUE(rib.last_update().cold) << inst.desc;
    ASSERT_EQ(rib.num_columns(), n);

    for (int b = 0; b < kBatches; ++b) {
      const TopologyDelta d = random_delta(rng, inst);
      rib.update(d);
      if (!rib.last_update().cold && rib.last_update().changed_arcs > 0) {
        ++warm_batches;
      }
      ASSERT_EQ(static_cast<int>(rib.last_update().affected.size()), n)
          << inst.desc;
      for (int c = 0; c < n; ++c) {
        ref[static_cast<std::size_t>(c)]->update(d);
        ASSERT_EQ(rib.column_converged(c),
                  ref[static_cast<std::size_t>(c)]->converged())
            << inst.desc << " batch " << b << " col " << c;
        if (!rib.column_converged(c)) continue;
        expect_identical(rib.routing(c),
                         ref[static_cast<std::size_t>(c)]->routing(),
                         inst.desc + " batch " + std::to_string(b) + " col " +
                             std::to_string(c) + " " + d.describe());
      }
    }
  }
  // The sweep must genuinely exercise the incremental path, the flat
  // blocked kernels, and the multi-word vertical SIMD relax — not silently
  // fall back everywhere.
  EXPECT_GT(warm_batches, 100) << "batched incremental path barely exercised";
  EXPECT_GT(flat_trials, 20) << "flat blocked kernels barely exercised";
  EXPECT_GT(vec_trials, 5) << "vertical SIMD kernels barely exercised";
}

// The mrt::par contract, verified bit-for-bit: the same instance and delta
// sequence run under thread limits 1 and 4 must produce identical columns
// AND identical work accounting after every batch.
TEST(RibDifferential, ThreadCountInvariance) {
  constexpr int kTrials = 12;
  constexpr int kBatches = 6;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng seed_rng(par::mix_seed(0x51B1, static_cast<std::uint64_t>(trial)));
    const std::uint64_t inst_seed = seed_rng.next();

    auto run = [&](int threads) {
      Rng rng(inst_seed);
      RibInstance inst = (trial % 3 == 0)   ? sat_plus_instance(rng)
                         : (trial % 3 == 1) ? chain_max_instance(rng)
                                            : lex_stack_instance(rng);
      const compile::WeightEngine eng(inst.ot);
      const compile::WeightEngine* weng = (trial % 3 != 0) ? &eng : nullptr;
      ScopedToggles toggles(true, threads, /*simd_on=*/trial % 4 != 3);
      auto rib = std::make_unique<rib::RibSolver>(inst.ot, weng);
      rib->solve_all(inst.net, origin_of(inst));
      std::vector<Routing> snaps;
      std::vector<std::vector<int>> affected;
      for (int b = 0; b < kBatches; ++b) {
        rib->update(random_delta(rng, inst));
        for (int c = 0; c < rib->num_columns(); ++c) {
          snaps.push_back(rib->routing(c));
        }
        affected.push_back(rib->last_update().affected);
      }
      return std::make_pair(std::move(snaps), std::move(affected));
    };

    auto one = run(1);
    auto four = run(4);
    ASSERT_EQ(one.first.size(), four.first.size()) << "trial " << trial;
    for (std::size_t i = 0; i < one.first.size(); ++i) {
      expect_identical(one.first[i], four.first[i],
                       "trial " + std::to_string(trial) + " snapshot " +
                           std::to_string(i));
    }
    ASSERT_EQ(one.second, four.second)
        << "trial " << trial << ": affected-set accounting diverged";
  }
}

// Deterministic work stealing under skew: a dense hub cluster plus a long
// tail makes the per-block relax cost wildly uneven, so with static
// chunking one thread would own almost all the work — exactly the profile
// the claim-counter scheduler exists for. Snapshots, affected accounting,
// and relaxation counts must still be identical at every thread count,
// with the multi-word vertical SIMD kernel engaged on the full blocks.
TEST(RibDifferential, WorkStealingSkewThreadInvariance) {
  // 48 nodes = 6 full 8-lane destination blocks. Nodes 0..15 form a dense
  // window-4 cluster (expensive columns), 16..47 a thin bidirectional tail.
  const int n = 48;
  Digraph g(n);
  Rng rng(0x51B7);
  ValueVec labels;
  auto arc = [&](int u, int v) {
    g.add_arc(u, v);
    labels.push_back(
        Value::pair(I(rng.range(1, 5)), I(rng.range(1, 5))));
  };
  for (int u = 0; u < 16; ++u) {
    for (int d = 1; d <= 4; ++d) {
      arc(u, (u + d) % 16);
      arc((u + d) % 16, u);
    }
  }
  for (int u = 15; u + 1 < n; ++u) {
    arc(u, u + 1);
    arc(u + 1, u);
  }
  OrderTransform ot = lex(ot_shortest_path(6), ot_widest_path(6));
  LabeledGraph net(std::move(g), std::move(labels));
  const compile::WeightEngine eng(ot);

  auto run = [&](int threads) {
    ScopedToggles toggles(true, threads, /*simd_on=*/true);
    rib::RibSolver rib(ot, &eng);
    rib.solve_all(net, Value::pair(I(0), Value::inf()));
    EXPECT_TRUE(rib.batched_flat());
    std::vector<Routing> snaps;
    std::vector<std::vector<int>> affected;
    std::vector<std::uint64_t> relaxations{rib.last_update().relaxations};
    Rng drng(0x51B8);
    for (int b = 0; b < 6; ++b) {
      TopologyDelta d;
      const int a =
          static_cast<int>(drng.below(static_cast<std::uint64_t>(
              net.graph().num_arcs())));
      d.arc_down(a);
      rib.update(d);
      relaxations.push_back(rib.last_update().relaxations);
      affected.push_back(rib.last_update().affected);
      for (int c = 0; c < rib.num_columns(); ++c) {
        snaps.push_back(rib.routing(c));
      }
      TopologyDelta u;
      u.arc_up(a);
      rib.update(u);
      relaxations.push_back(rib.last_update().relaxations);
      affected.push_back(rib.last_update().affected);
      for (int c = 0; c < rib.num_columns(); ++c) {
        snaps.push_back(rib.routing(c));
      }
    }
    return std::make_tuple(std::move(snaps), std::move(affected),
                           std::move(relaxations));
  };

  auto base = run(1);
  for (int threads : {2, 3, 8}) {
    auto other = run(threads);
    ASSERT_EQ(std::get<0>(base).size(), std::get<0>(other).size())
        << threads << " threads";
    for (std::size_t i = 0; i < std::get<0>(base).size(); ++i) {
      expect_identical(std::get<0>(base)[i], std::get<0>(other)[i],
                       std::to_string(threads) + " threads snapshot " +
                           std::to_string(i));
    }
    ASSERT_EQ(std::get<1>(base), std::get<1>(other))
        << threads << " threads: affected-set accounting diverged";
    ASSERT_EQ(std::get<2>(base), std::get<2>(other))
        << threads << " threads: relaxation counts diverged";
  }
}

TEST(Rib, SolveBindsAndMaterializesColumns) {
  Rng rng(0x51B2);
  RibInstance inst = sat_plus_instance(rng);
  const compile::WeightEngine eng(inst.ot);
  rib::RibSolver rib(inst.ot, &eng);
  const int n = inst.net.num_nodes();

  // Duplicate + unordered destination subset: columns are independent.
  std::vector<int> dests{n - 1, 0, n - 1};
  rib.solve(inst.net, dests, I(0));
  EXPECT_EQ(rib.num_columns(), 3);
  EXPECT_EQ(rib.dests(), dests);
  EXPECT_TRUE(rib.converged());
  EXPECT_TRUE(rib.batched_flat());
  EXPECT_NE(rib.journal_stream(), 0u);
  expect_identical(rib.routing(0), rib.routing(2), "duplicate columns");
  const rib::RibStats& st = rib.last_update();
  EXPECT_TRUE(st.cold);
  EXPECT_EQ(st.columns, 3);
  EXPECT_EQ(st.cold_columns, 3);
  EXPECT_EQ(st.affected, (std::vector<int>{n, n, n}));
  EXPECT_EQ(st.affected_max(), n);
  EXPECT_DOUBLE_EQ(st.affected_mean_fraction(), 1.0);

  // Without an engine the boxed fallback serves the same bytes.
  rib::RibSolver boxed(inst.ot);
  boxed.solve(inst.net, dests, I(0));
  EXPECT_FALSE(boxed.batched_flat());
  for (int c = 0; c < 3; ++c) {
    expect_identical(rib.routing(c), boxed.routing(c),
                     "flat vs boxed col " + std::to_string(c));
  }

  EXPECT_THROW(rib.routing(3), std::logic_error);
  rib::RibSolver empty(inst.ot);
  EXPECT_THROW(empty.solve(inst.net, {}, I(0)), std::logic_error);
  EXPECT_THROW(empty.solve(inst.net, {n}, I(0)), std::logic_error);
  EXPECT_THROW(empty.update(TopologyDelta{}.arc_down(0)), std::logic_error);
}

// Warm multi-destination maintenance on a ring: single arc flaps must not
// re-relax the whole table on average — the shared-invalidation payoff the
// perf gate measures on large topologies, pinned here functionally.
TEST(Rib, WarmAffectedSetsStayLocalOnRing) {
  Rng rng(0x51B3);
  const int n = 32;
  Digraph g = ring(n);
  ValueVec labels;
  for (int id = 0; id < g.num_arcs(); ++id) labels.push_back(I(1));
  OrderTransform ot{"chain(<=,sat+)", ord_chain(64), fam_chain_add(64, 1, 1),
                    {}};
  LabeledGraph net(std::move(g), std::move(labels));
  const compile::WeightEngine eng(ot);
  rib::RibSolver rib(ot, &eng);
  rib.solve_all(net, I(0));

  double fraction_sum = 0;
  int updates = 0;
  const int m = net.graph().num_arcs();
  for (int b = 0; b < 100; ++b) {
    const int arc = static_cast<int>(rng.below(static_cast<std::uint64_t>(m)));
    rib.update(TopologyDelta{}.arc_down(arc));
    ASSERT_FALSE(rib.last_update().cold);
    fraction_sum += rib.last_update().affected_mean_fraction();
    ++updates;
    rib.update(TopologyDelta{}.arc_up(arc));
    fraction_sum += rib.last_update().affected_mean_fraction();
    ++updates;
  }
  EXPECT_LT(fraction_sum / updates, 0.75)
      << "batched warm updates re-relaxed almost the whole table on average";
}

}  // namespace
}  // namespace mrt
