// Differential property suite for route provenance: after every random
// delta batch on the paper topologies, the journal-reconstructed explain
// report for every (dest, node) pair must match the solver's own witness
// forest exactly — same reachability, same hop sequence (diffed against
// forwarding_path), same witness arcs — and the causal decoration must be
// *fresh*: a node whose route changed in the batch carries a WitnessAttach
// naming exactly the post-batch topology version, while untouched nodes keep
// their older attach records (the whole point of the diff-based journaling
// in dyn/solver.cpp).
//
// The sweep: GOOD GADGET under the hop-count algebra and random Gao–Rexford
// hierarchies, every node as destination, both engines, 560 verified delta
// batches (the ISSUE floor is 500). Deltas stay within arc/node flaps so the
// alive subgraph remains valley-free and the forest stays loop-free.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "mrt/obs/provenance.hpp"
#include "mrt/par/par.hpp"
#include "mrt/sim/scenario.hpp"

namespace mrt {
namespace {

using dyn::TopologyDelta;

/// 1–3 random arc/node flaps. No relabels: the paper topologies' labels are
/// algebra-specific, and pure flaps keep Gao–Rexford instances valley-free
/// (a subgraph of a valley-free graph is valley-free), so both engines
/// converge and the witness forest is loop-free by construction.
TopologyDelta random_flaps(Rng& rng, const LabeledGraph& net) {
  TopologyDelta d;
  const int m = net.graph().num_arcs();
  const int n = net.num_nodes();
  const int ops = 1 + static_cast<int>(rng.below(3));
  for (int i = 0; i < ops; ++i) {
    const int arc = static_cast<int>(rng.below(static_cast<std::uint64_t>(m)));
    const int node =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    switch (rng.below(6)) {
      case 0:
      case 1:
        d.arc_down(arc);
        break;
      case 2:
      case 3:
        d.arc_up(arc);
        break;
      case 4:
        d.node_down(node);
        break;
      default:
        d.node_up(node);
        break;
    }
  }
  return d;
}

struct Shadow {
  std::vector<std::optional<Value>> weight;
  std::vector<int> next_arc;
};

/// Cross-checks every node's explain report against the live forest and the
/// freshness of its causal decoration. `prev` is the routing before the
/// batch; `fresh_version` is the post-batch topology version.
void verify_explains(const Solver& solver, const Scenario& sc,
                     const Shadow& prev, std::uint64_t fresh_version,
                     const std::string& what) {
  const obs::ProvenanceIndex idx(obs::journal().snapshot());
  const Routing& r = solver.routing();
  const std::uint32_t stream = solver.journal_stream();
  for (int v = 0; v < sc.net.num_nodes(); ++v) {
    const std::size_t vi = static_cast<std::size_t>(v);
    const obs::ExplainReport rep = obs::explain_route(solver, v, idx);
    ASSERT_EQ(rep.has_route, r.has_route(v)) << what << " node " << v;
    ASSERT_FALSE(rep.loop) << what << " node " << v;
    const bool changed =
        r.weight[vi].has_value() != prev.weight[vi].has_value() ||
        (r.weight[vi] && !(*r.weight[vi] == *prev.weight[vi])) ||
        r.next_arc[vi] != prev.next_arc[vi];
    if (!rep.has_route) {
      ASSERT_TRUE(rep.hops.empty()) << what << " node " << v;
      ASSERT_FALSE(rep.no_route_cause.empty()) << what << " node " << v;
      if (changed) {
        // The route existed before the batch: the diff must have journaled
        // its disappearance at exactly this version.
        const obs::JournalRecord* c = idx.last_clear(stream, v);
        ASSERT_NE(c, nullptr) << what << " node " << v;
        ASSERT_EQ(c->version, fresh_version) << what << " node " << v;
      }
      continue;
    }
    const auto fp = forwarding_path(sc.net, r, v, solver.dest());
    ASSERT_TRUE(fp.has_value()) << what << " node " << v;
    ASSERT_EQ(rep.hops.size(), fp->size()) << what << " node " << v;
    for (std::size_t i = 0; i < rep.hops.size(); ++i) {
      const obs::ExplainHop& h = rep.hops[i];
      ASSERT_EQ(h.node, (*fp)[i]) << what << " node " << v << " hop " << i;
      ASSERT_EQ(h.arc, r.next_arc[static_cast<std::size_t>(h.node)])
          << what << " node " << v << " hop " << i;
      const obs::JournalRecord* a = idx.last_attach(stream, h.node);
      ASSERT_NE(a, nullptr) << what << " node " << v << " hop " << i;
      ASSERT_EQ(a->arc, h.arc) << what << " node " << v << " hop " << i;
      ASSERT_EQ(h.settled_seq, a->seq) << what << " node " << v;
      ASSERT_LE(a->version, fresh_version) << what << " node " << v;
      ASSERT_FALSE(h.cause.empty()) << what << " node " << v;
    }
    if (changed) {
      // Changed route => its attach record names exactly this batch.
      const obs::JournalRecord* a = idx.last_attach(stream, v);
      ASSERT_NE(a, nullptr) << what << " node " << v;
      ASSERT_EQ(a->version, fresh_version)
          << what << " node " << v << " (stale provenance)";
    }
  }
}

/// One (topology, dest, engine) binding: solve, then `batches` random flap
/// batches, verifying the full explain sweep after the solve and after every
/// converged batch. Returns how many batches were verified.
int run_binding(const Scenario& sc, dyn::EngineKind kind, Rng& rng,
                int batches, const std::string& what) {
  obs::journal().reset();  // fresh window (and stream numbering) per binding
  auto solver = dyn::make_solver(kind, sc.alg);
  solver->solve(sc.net, sc.dest, sc.origin);

  const int n = sc.net.num_nodes();
  Shadow prev{std::vector<std::optional<Value>>(static_cast<std::size_t>(n)),
              std::vector<int>(static_cast<std::size_t>(n), -1)};
  verify_explains(*solver, sc, prev, 0, what + " initial solve");
  if (::testing::Test::HasFatalFailure()) return 0;

  int verified = 0;
  for (int b = 0; b < batches; ++b) {
    prev.weight = solver->routing().weight;
    prev.next_arc = solver->routing().next_arc;
    const TopologyDelta d = random_flaps(rng, sc.net);
    solver->update(d);
    if (!solver->converged()) continue;  // cap hit: no forest to explain
    verify_explains(*solver, sc, prev, solver->net().version(),
                    what + " batch " + std::to_string(b) + " " + d.describe());
    if (::testing::Test::HasFatalFailure()) return verified;
    ++verified;
  }
  EXPECT_EQ(obs::journal().dropped(), 0u) << what;
  return verified;
}

TEST(ProvenanceDifferential, ExplainMatchesWitnessForestOnPaperTopologies) {
  const bool was = obs::journal_enabled();
  obs::set_journal_enabled(true);

  constexpr int kTrials = 5;
  constexpr int kBatches = 7;
  int verified = 0;

  // GOOD GADGET under hop counts: every node as destination.
  for (int trial = 0; trial < kTrials; ++trial) {
    Scenario sc = good_gadget_hops();
    for (int dest = 0; dest < sc.net.num_nodes(); ++dest) {
      sc.dest = dest;
      Rng rng(par::mix_seed(0x90AD, static_cast<std::uint64_t>(
                                        trial * 100 + dest)));
      const dyn::EngineKind kind = ((trial + dest) % 2 == 0)
                                       ? dyn::EngineKind::Dijkstra
                                       : dyn::EngineKind::Bellman;
      verified += run_binding(
          sc, kind, rng, kBatches,
          "gadget dest " + std::to_string(dest) + " trial " +
              std::to_string(trial));
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
    }
  }

  // Random Gao–Rexford hierarchies: fresh topology per trial, every node as
  // destination.
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng topo_rng(par::mix_seed(0x6A02, static_cast<std::uint64_t>(trial)));
    Scenario sc = gao_rexford_hierarchy(topo_rng, 12, 4);
    for (int dest = 0; dest < sc.net.num_nodes(); ++dest) {
      sc.dest = dest;
      Rng rng(par::mix_seed(0x6A03, static_cast<std::uint64_t>(
                                        trial * 100 + dest)));
      const dyn::EngineKind kind = ((trial + dest) % 2 == 0)
                                       ? dyn::EngineKind::Dijkstra
                                       : dyn::EngineKind::Bellman;
      verified += run_binding(
          sc, kind, rng, kBatches,
          "gao-rexford dest " + std::to_string(dest) + " trial " +
              std::to_string(trial));
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
    }
  }

  // The ISSUE floor: at least 500 verified random delta batches.
  EXPECT_GE(verified, 500);

  obs::journal().reset();
  obs::set_journal_enabled(was);
}

}  // namespace
}  // namespace mrt
