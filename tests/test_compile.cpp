// mrt::compile correctness: the flat kernels are differentially identical to
// the boxed interpreter.
//
//   - encode/decode round-trips losslessly on every carrier element reached;
//   - compare/is_top/apply agree with ord->cmp / ord->is_top / fns->apply on
//     ≥1000 random finite algebras plus the paper algebras at depth;
//   - the compiled solvers (dijkstra, bellman, closure) and the compiled
//     simulator produce results identical to their boxed twins;
//   - every paper algebra used by the benches compiles (fallback == none).
//
// Everything is seeded; nothing here depends on MRT_THREADS (the campaign
// thread-invariance suite in test_chaos.cpp now runs compiled by default).
#include <gtest/gtest.h>

#include <cstdlib>

#include "mrt/chaos/campaign.hpp"
#include "mrt/compile/engine.hpp"
#include "mrt/compile/semiring.hpp"
#include "mrt/core/bases.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/random_algebra.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/par/par.hpp"
#include "mrt/routing/bellman.hpp"
#include "mrt/routing/closure.hpp"
#include "mrt/routing/dijkstra.hpp"
#include "mrt/sim/path_vector.hpp"

namespace mrt {
namespace {

using compile::CompiledAlgebra;
using compile::CompiledBisemigroup;
using compile::CompiledNet;
using compile::Fallback;
using compile::WeightEngine;

// Deep-lex stack mirroring bench/bench_util.hpp's workload.
OrderTransform stacked(int depth) {
  OrderTransform alg = ot_shortest_path(6);
  for (int i = 1; i < depth; ++i) {
    alg = lex(alg, i % 2 == 0 ? ot_shortest_path(6) : ot_widest_path(6));
  }
  return alg;
}

Value stacked_origin(int depth) {
  Value v = Value::integer(0);
  for (int i = 1; i < depth; ++i) {
    v = Value::pair(std::move(v),
                    i % 2 == 0 ? Value::integer(0) : Value::inf());
  }
  return v;
}

// Differentially checks one compiled algebra on the given carrier elements
// and labels (gtest ASSERTs force a void return).
void check_kernels(const OrderTransform& alg, const CompiledAlgebra& ca,
                   const ValueVec& values, const ValueVec& labels) {
  std::vector<std::uint64_t> wa(static_cast<std::size_t>(ca.words()));
  std::vector<std::uint64_t> wb(static_cast<std::size_t>(ca.words()));
  for (const Value& v : values) {
    ASSERT_TRUE(ca.encode(v, wa.data())) << v.to_string() << " in " << alg.name;
    EXPECT_TRUE(ca.decode(wa.data()) == v)
        << "round-trip mangled " << v.to_string() << " into "
        << ca.decode(wa.data()).to_string() << " in " << alg.name;
    EXPECT_EQ(ca.is_top(wa.data()), alg.ord->is_top(v))
        << "is_top(" << v.to_string() << ") in " << alg.name;
  }
  for (const Value& x : values) {
    ASSERT_TRUE(ca.encode(x, wa.data()));
    for (const Value& y : values) {
      ASSERT_TRUE(ca.encode(y, wb.data()));
      EXPECT_EQ(ca.compare(wa.data(), wb.data()), alg.ord->cmp(x, y))
          << "cmp(" << x.to_string() << ", " << y.to_string() << ") in "
          << alg.name;
    }
  }
  for (const Value& f : labels) {
    const compile::CompiledLabel cl = ca.compile_label(f);
    ASSERT_TRUE(cl.ok) << "label " << f.to_string() << " in " << alg.name;
    for (const Value& v : values) {
      ASSERT_TRUE(ca.encode(v, wa.data()));
      ca.apply(cl, wa.data());
      const Value boxed = alg.fns->apply(f, v);
      EXPECT_TRUE(ca.decode(wa.data()) == boxed)
          << "apply(" << f.to_string() << ", " << v.to_string() << ") in "
          << alg.name;
    }
  }
}

TEST(CompileProperty, RandomFiniteAlgebrasRoundTripAndAgree) {
  long algebras = 0;
  long checks = 0;
  for (std::uint64_t seed = 0; seed < 1100; ++seed) {
    Rng rng(par::mix_seed(0xC0117'1EDULL, seed));
    const OrderTransform alg = random_order_transform(rng);
    const CompiledAlgebra ca = CompiledAlgebra::compile(alg);
    // Random transforms are finite-table orders with finite-table families:
    // squarely inside the compilable fragment.
    ASSERT_TRUE(ca.ok()) << alg.name << " fell back: "
                         << compile::fallback_name(ca.fallback());
    const ValueVec values = alg.ord->sample(rng, 8);
    const ValueVec labels = alg.fns->sample_labels(rng, 4);
    check_kernels(alg, ca, values, labels);
    ++algebras;
    checks += 8 + 8 * 8 + 4 * 8;
  }
  EXPECT_GE(algebras, 1000);
  EXPECT_GE(checks, 1000);
}

// Values reached from the origin by label application — the exact population
// the routing hot loops move through the kernels.
ValueVec reachable_values(const OrderTransform& alg, const Value& origin,
                          Rng& rng, int count) {
  ValueVec out{origin};
  const ValueVec labels = alg.fns->sample_labels(rng, 16);
  Value v = origin;
  for (int i = 1; i < count; ++i) {
    v = alg.fns->apply(labels[rng.range(0, static_cast<int>(labels.size()) - 1)],
                       v);
    out.push_back(v);
    if (i % 8 == 0) v = origin;  // restart to keep values spread out
  }
  return out;
}

TEST(CompileProperty, PaperAlgebrasCompileAndAgreeAtDepth) {
  struct Case {
    OrderTransform alg;
    Value origin;
  };
  std::vector<Case> cases;
  for (int d = 1; d <= 4; ++d) {
    cases.push_back({stacked(d), stacked_origin(d)});
  }
  cases.push_back({ot_hop_count(), Value::integer(0)});
  cases.push_back({ot_reliability(), Value::real(1.0)});
  cases.push_back({ot_chain_add(8, 1, 3), Value::integer(0)});
  cases.push_back({add_top(ot_shortest_path(6)), Value::integer(0)});
  cases.push_back(
      {lex_omega(ot_shortest_path(6), ot_widest_path(6)),
       Value::pair(Value::integer(0), Value::inf())});

  for (const Case& c : cases) {
    const CompiledAlgebra ca = CompiledAlgebra::compile(c.alg);
    ASSERT_TRUE(ca.ok()) << c.alg.name << " fell back: "
                         << compile::fallback_name(ca.fallback());
    Rng rng(99);
    const ValueVec values = reachable_values(c.alg, c.origin, rng, 24);
    const ValueVec labels = c.alg.fns->sample_labels(rng, 6);
    check_kernels(c.alg, ca, values, labels);
  }
}

TEST(CompileProperty, CompiledBisemigroupAgreesWithBoxed) {
  const std::vector<Bisemigroup> algs = {
      bs_shortest_path(), bs_widest_path(), bs_path_count(),
      lex(bs_shortest_path(), bs_widest_path())};
  for (const Bisemigroup& alg : algs) {
    const CompiledBisemigroup cb = CompiledBisemigroup::compile(alg);
    ASSERT_TRUE(cb.ok()) << alg.name << " fell back: "
                         << compile::fallback_name(cb.fallback());
    Rng rng(7);
    const ValueVec xs = alg.add->sample(rng, 10);
    std::vector<std::uint64_t> wa(static_cast<std::size_t>(cb.words()));
    std::vector<std::uint64_t> wb(static_cast<std::size_t>(cb.words()));
    std::vector<std::uint64_t> wo(static_cast<std::size_t>(cb.words()));
    for (const Value& x : xs) {
      ASSERT_TRUE(cb.encode(x, wa.data())) << x.to_string() << " " << alg.name;
      EXPECT_TRUE(cb.decode(wa.data()) == x) << alg.name;
      for (const Value& y : xs) {
        ASSERT_TRUE(cb.encode(y, wb.data()));
        cb.add(wa.data(), wb.data(), wo.data());
        EXPECT_TRUE(cb.decode(wo.data()) == alg.add->op(x, y))
            << "add(" << x.to_string() << ", " << y.to_string() << ") in "
            << alg.name;
        cb.mul(wa.data(), wb.data(), wo.data());
        EXPECT_TRUE(cb.decode(wo.data()) == alg.mul->op(x, y))
            << "mul(" << x.to_string() << ", " << y.to_string() << ") in "
            << alg.name;
      }
    }
  }
}

void expect_same_routing(const Routing& a, const Routing& b) {
  ASSERT_EQ(a.weight.size(), b.weight.size());
  for (std::size_t v = 0; v < a.weight.size(); ++v) {
    EXPECT_EQ(a.weight[v].has_value(), b.weight[v].has_value()) << "node " << v;
    if (a.weight[v] && b.weight[v]) {
      EXPECT_TRUE(*a.weight[v] == *b.weight[v])
          << "node " << v << ": " << a.weight[v]->to_string() << " vs "
          << b.weight[v]->to_string();
    }
    EXPECT_EQ(a.next_arc[v], b.next_arc[v]) << "node " << v;
  }
}

TEST(CompileSolvers, DijkstraAndBellmanMatchBoxedExactly) {
  for (int depth : {1, 2, 3, 4}) {
    const OrderTransform alg = stacked(depth);
    const Value origin = stacked_origin(depth);
    const WeightEngine eng(alg);
    ASSERT_TRUE(eng.compiled()) << "depth " << depth;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      Rng rng(seed);
      LabeledGraph net =
          label_randomly(alg, random_connected(rng, 48, 96), rng);
      const CompiledNet cn = CompiledNet::make(eng, net);
      ASSERT_TRUE(cn.ok());
      expect_same_routing(dijkstra(alg, net, 0, origin),
                          dijkstra(alg, net, 0, origin, &cn));
      const BellmanResult boxed = bellman_sync(alg, net, 0, origin);
      const BellmanResult flat = bellman_sync(alg, net, 0, origin, {}, &cn);
      EXPECT_EQ(boxed.converged, flat.converged);
      EXPECT_EQ(boxed.iterations, flat.iterations);
      expect_same_routing(boxed.routing, flat.routing);
    }
  }
}

TEST(CompileSolvers, ClosureMatchesBoxedExactly) {
  for (const Bisemigroup& alg :
       {bs_shortest_path(), bs_widest_path(),
        lex(bs_shortest_path(), bs_widest_path())}) {
    const CompiledBisemigroup cb = CompiledBisemigroup::compile(alg);
    ASSERT_TRUE(cb.ok()) << alg.name;
    Rng rng(11);
    Digraph g = random_connected(rng, 24, 60);
    ValueVec w;
    for (int id = 0; id < g.num_arcs(); ++id) {
      Value x = Value::integer(rng.range(1, 9));
      if (alg.name == lex(bs_shortest_path(), bs_widest_path()).name) {
        x = Value::pair(std::move(x), Value::integer(rng.range(0, 9)));
      }
      w.push_back(std::move(x));
    }
    const WeightMatrix a = arc_matrix(alg, g, w);
    const ClosureResult boxed = kleene_closure(alg, a);
    const ClosureResult flat = kleene_closure(alg, a, &cb);
    ASSERT_EQ(boxed.star.size(), flat.star.size());
    for (std::size_t i = 0; i < boxed.star.size(); ++i) {
      for (std::size_t j = 0; j < boxed.star[i].size(); ++j) {
        ASSERT_EQ(boxed.star[i][j].has_value(), flat.star[i][j].has_value())
            << alg.name << " (" << i << "," << j << ")";
        if (boxed.star[i][j]) {
          EXPECT_TRUE(*boxed.star[i][j] == *flat.star[i][j])
              << alg.name << " (" << i << "," << j << ")";
        }
      }
    }
    const ClosureResult bi = iterative_closure(alg, a);
    const ClosureResult fi = iterative_closure(alg, a, {}, &cb);
    EXPECT_EQ(bi.converged, fi.converged);
    EXPECT_EQ(bi.iterations, fi.iterations);
  }
}

TEST(CompileSim, CompiledRunIsIdenticalToBoxed) {
  const OrderTransform alg = stacked(2);
  const Value origin = stacked_origin(2);
  const WeightEngine eng(alg);
  ASSERT_TRUE(eng.compiled());
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    LabeledGraph net = label_randomly(alg, random_connected(rng, 24, 48), rng);
    SimOptions opts;
    opts.seed = seed;
    PathVectorSim boxed(alg, net, 0, origin, opts);
    PathVectorSim flat(alg, net, 0, origin, opts, &eng);
    // Exercise the withdrawal/recovery machinery too.
    for (PathVectorSim* sim : {&boxed, &flat}) {
      sim->schedule_link_down(2.0, 0);
      sim->schedule_link_up(9.0, 0);
      sim->schedule_node_down(4.0, 3);
      sim->schedule_node_up(12.0, 3);
    }
    EXPECT_FALSE(boxed.compiled());
    EXPECT_TRUE(flat.compiled());
    const SimResult rb = boxed.run();
    const SimResult rf = flat.run();
    EXPECT_EQ(rb.converged, rf.converged);
    EXPECT_EQ(rb.events, rf.events);
    EXPECT_EQ(rb.finish_time, rf.finish_time);
    EXPECT_EQ(rb.flaps, rf.flaps);
    EXPECT_EQ(rb.stats.messages_sent, rf.stats.messages_sent);
    EXPECT_EQ(rb.stats.withdrawals_sent, rf.stats.withdrawals_sent);
    EXPECT_EQ(rb.stats.selection_changes, rf.stats.selection_changes);
    expect_same_routing(rb.routing, rf.routing);
  }
}

TEST(CompileSim, CampaignVerdictIdenticalBoxedVsCompiledAndAcrossThreads) {
  chaos::CampaignScenario sc;
  sc.name = "compile-diff";
  sc.alg = stacked(2);
  sc.origin = stacked_origin(2);
  Rng rng(5);
  sc.net = label_randomly(sc.alg, random_connected(rng, 16, 32), rng);
  sc.sim.drop_top_routes = true;
  sc.faults.max_faults = 3;
  chaos::CampaignConfig cfg;
  cfg.seed = 21;
  cfg.runs_per_scenario = 40;

  // Compiled (default) at 1 thread and at the hardware limit, plus boxed
  // (MRT_COMPILE=0): all three verdict tables must be byte-identical.
  const int hw = par::hardware_threads();
  par::set_thread_limit(1);
  const std::string compiled_1 = run_campaign({sc}, cfg).verdict_table();
  par::set_thread_limit(hw);
  const std::string compiled_n = run_campaign({sc}, cfg).verdict_table();
  ::setenv("MRT_COMPILE", "0", 1);
  const std::string boxed = run_campaign({sc}, cfg).verdict_table();
  ::unsetenv("MRT_COMPILE");
  EXPECT_EQ(compiled_1, compiled_n);
  EXPECT_EQ(compiled_1, boxed);
}

TEST(CompileEngine, MrtCompileZeroForcesBoxed) {
  const OrderTransform alg = stacked(2);
  ::setenv("MRT_COMPILE", "0", 1);
  const WeightEngine off(alg);
  ::unsetenv("MRT_COMPILE");
  EXPECT_FALSE(off.compiled());
  const WeightEngine on(alg);
  EXPECT_TRUE(on.compiled());
}

TEST(CompileEngine, OpaqueAlgebraReportsFallbackReason) {
  // scoped() has no describe() support: the compiler must refuse cleanly.
  const OrderTransform alg = stacked(1);
  CompiledAlgebra ca = CompiledAlgebra::compile(alg);
  EXPECT_TRUE(ca.ok());
  EXPECT_STREQ(compile::fallback_name(Fallback::OpaqueOrder), "opaque_order");
  EXPECT_STREQ(compile::fallback_name(Fallback::None), "none");
  EXPECT_STREQ(compile::fallback_name(Fallback::LexNoIdentity),
               "lex_no_identity");
}

}  // namespace
}  // namespace mrt
