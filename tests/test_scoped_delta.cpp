// Section II policy partitions and section V exact characterizations:
// the scoped product S ⊙ T (BGP-like regions), the Δ operator (OSPF-like
// areas), and the left/right/union facts they are built from.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/inference.hpp"
#include "mrt/core/random_algebra.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

const Checker& checker() {
  static const Checker chk;
  return chk;
}

Value pr(Value a, Value b) { return Value::pair(std::move(a), std::move(b)); }

// ---------------------------------------------------------------------------
// The section II function tables
// ---------------------------------------------------------------------------

TEST(ScopedProduct, InterRegionArcsTransformSAndOriginateT) {
  // S = shortest path, T = widest path; weights are (delay, bandwidth).
  OrderTransform s = ot_shortest_path(5);
  OrderTransform t = ot_widest_path(5);
  OrderTransform p = scoped(s, t);

  // Inter-region label: tag 1 carrying (f, κ_c) — here f = +2 and c = 4.
  const Value inter = Value::tagged(1, pr(I(2), I(4)));
  // h(a, b) = (f(a), c): the T component is *originated afresh*.
  EXPECT_EQ(p.fns->apply(inter, pr(I(7), I(1))), pr(I(9), I(4)));

  // Intra-region label: tag 2 carrying (id, g) — here g = min(·, 3).
  const Value intra = Value::tagged(2, pr(Value::unit(), I(3)));
  // h(a, b) = (a, g(b)): the S component is copied unchanged.
  EXPECT_EQ(p.fns->apply(intra, pr(I(7), I(5))), pr(I(7), I(3)));
}

TEST(DeltaOperator, InterRegionArcsTransformBothComponents) {
  OrderTransform s = ot_shortest_path(5);
  OrderTransform t = ot_widest_path(5);
  OrderTransform p = delta(s, t);

  // Inter-region: tag 1 carrying (f, g) — h(a, b) = (f(a), g(b)).
  const Value inter = Value::tagged(1, pr(I(2), I(3)));
  EXPECT_EQ(p.fns->apply(inter, pr(I(7), I(5))), pr(I(9), I(3)));

  // Intra-region: tag 2 carrying (id, g) — h(a, b) = (a, g(b)).
  const Value intra = Value::tagged(2, pr(Value::unit(), I(3)));
  EXPECT_EQ(p.fns->apply(intra, pr(I(7), I(5))), pr(I(7), I(3)));
}

TEST(ScopedProduct, ComparesLexicographically) {
  OrderTransform p = scoped(ot_shortest_path(5), ot_widest_path(5));
  EXPECT_TRUE(p.ord->leq(pr(I(1), I(0)), pr(I(2), I(9))));
  EXPECT_TRUE(p.ord->leq(pr(I(1), I(7)), pr(I(1), I(3))));
  EXPECT_FALSE(p.ord->leq(pr(I(1), I(3)), pr(I(1), I(7))));
}

// ---------------------------------------------------------------------------
// Section V facts: left / right / union
// ---------------------------------------------------------------------------

TEST(LeftRight, PaperSectionVFacts) {
  const Checker& chk = checker();
  // A finite multi-class, multi-element order transform.
  OrderTransform s = ot_chain_add(3, 0, 2);
  s.props = chk.report(s);

  OrderTransform l = left(s);
  OrderTransform r = right(s);

  // ND(right(S)), M(left(S)), M(right(S)) always hold.
  EXPECT_EQ(r.props.value(Prop::ND_L), Tri::True);
  EXPECT_EQ(l.props.value(Prop::M_L), Tri::True);
  EXPECT_EQ(r.props.value(Prop::M_L), Tri::True);
  // ¬I(left(S)), ¬I(right(S)) for ≥ 2 elements; ¬ND(left(S)) for ≥ 2 classes.
  EXPECT_EQ(l.props.value(Prop::Inc_L), Tri::False);
  EXPECT_EQ(r.props.value(Prop::Inc_L), Tri::False);
  EXPECT_EQ(l.props.value(Prop::ND_L), Tri::False);
  // C(left) and N(right) hold by construction.
  EXPECT_EQ(l.props.value(Prop::C_L), Tri::True);
  EXPECT_EQ(r.props.value(Prop::N_L), Tri::True);

  // Everything the engine claims is corroborated by the oracle.
  for (Prop p : props_for(StructureKind::OrderTransform)) {
    mrt::testing::expect_consistent(p, l.props.value(p),
                                    chk.prop(l, p).verdict, "left");
    mrt::testing::expect_consistent(p, r.props.value(p),
                                    chk.prop(r, p).verdict, "right");
  }
}

TEST(LeftRight, ApplySemantics) {
  OrderTransform s = ot_shortest_path(5);
  OrderTransform l = left(s);
  OrderTransform r = right(s);
  // left: κ_b — the label *is* the result.
  EXPECT_EQ(l.fns->apply(I(3), I(9)), I(3));
  // right: identity regardless of label.
  EXPECT_EQ(r.fns->apply(Value::unit(), I(9)), I(9));
}

TEST(Union, PropertyConjunction) {
  const Checker& chk = checker();
  OrderTransform s = ot_chain_add(3, 1, 2);  // increasing
  s.props = chk.report(s);
  OrderTransform r = right(s);  // ND but not increasing

  OrderTransform u = fn_union(s, r);
  // P(S + T) ⟺ P(S) ∧ P(T): increasing is lost, ND survives.
  EXPECT_EQ(u.props.value(Prop::Inc_L), Tri::False);
  EXPECT_EQ(u.props.value(Prop::ND_L), Tri::True);
  EXPECT_EQ(u.props.value(Prop::M_L), Tri::True);
  for (Prop p : props_for(StructureKind::OrderTransform)) {
    mrt::testing::expect_consistent(p, u.props.value(p),
                                    chk.prop(u, p).verdict, "union");
  }
}

TEST(Union, RequiresSharedOrder) {
  OrderTransform a = ot_chain_add(3, 1, 2);
  OrderTransform b = ot_chain_add(3, 1, 2);  // same shape, distinct object
  EXPECT_THROW(fn_union(a, b), std::logic_error);
  EXPECT_NO_THROW(fn_union(left(a), right(a)));
}

// ---------------------------------------------------------------------------
// Theorem 6 / Theorem 7 sweeps. Per the ⊤ refinements (DESIGN.md §1.1) the
// published equivalences hold for ⊤-free S; the engine's derivations must be
// exact (they go through the same refined rules), and the oracle validates
// both directions on every sample.
// ---------------------------------------------------------------------------

class ScopedSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScopedSweep, EngineMatchesOracleOnScopedAndDelta) {
  Rng rng(0x5C09ED + static_cast<std::uint64_t>(GetParam()));
  OrderTransform s = random_order_transform(rng);
  OrderTransform t = random_order_transform(rng);
  s.props = checker().report(s);
  t.props = checker().report(t);

  const std::string ctx = "seed " + std::to_string(GetParam());
  const OrderTransform sc = scoped(s, t);
  const OrderTransform dl = delta(s, t);
  for (Prop p : {Prop::M_L, Prop::ND_L, Prop::Inc_L, Prop::N_L, Prop::C_L}) {
    mrt::testing::expect_consistent(p, sc.props.value(p),
                                    checker().prop(sc, p).verdict,
                                    ctx + " scoped");
    mrt::testing::expect_consistent(p, dl.props.value(p),
                                    checker().prop(dl, p).verdict,
                                    ctx + " delta");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScopedSweep, ::testing::Range(0, 100));

class Thm6Sweep : public ::testing::TestWithParam<int> {};

// Theorem 6 under the paper's hypotheses (S with ≥2 elements, T with ≥2
// classes) plus the measured ⊤-freeness proviso for the ND/I claims.
TEST_P(Thm6Sweep, PublishedEquivalences) {
  Rng rng(0x7A06 + static_cast<std::uint64_t>(GetParam()));
  OrderTransform s = random_order_transform(rng);
  OrderTransform t = random_order_transform(rng);
  const OrderShape ss = probe_shape(*s.ord);
  const OrderShape ts = probe_shape(*t.ord);
  if (ss.multi_element != Tri::True || ts.multi_class != Tri::True) return;
  s.props = checker().report(s);
  t.props = checker().report(t);
  const OrderTransform sc = scoped(s, t);
  const std::string ctx = "seed " + std::to_string(GetParam());

  // M(S ⊙ T) ⟺ M(S) ∧ M(T): no side condition at all (the paper's headline).
  mrt::testing::expect_exact(
      Prop::M_L,
      tri_and(s.props.value(Prop::M_L), t.props.value(Prop::M_L)),
      checker().prop(sc, Prop::M_L).verdict, ctx + " M");

  if (s.props.value(Prop::HasTop) == Tri::False) {
    // ND(S ⊙ T) ⟺ I(S) ∧ ND(T).
    mrt::testing::expect_exact(
        Prop::ND_L,
        tri_and(s.props.value(Prop::Inc_L), t.props.value(Prop::ND_L)),
        checker().prop(sc, Prop::ND_L).verdict, ctx + " ND");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Thm6Sweep, ::testing::Range(0, 150));

class Thm7Sweep : public ::testing::TestWithParam<int> {};

TEST_P(Thm7Sweep, DeltaKeepsTheSideCondition) {
  Rng rng(0xDE17A + static_cast<std::uint64_t>(GetParam()));
  OrderTransform s = random_order_transform(rng);
  OrderTransform t = random_order_transform(rng);
  const OrderShape ss = probe_shape(*s.ord);
  const OrderShape ts = probe_shape(*t.ord);
  if (ss.multi_element != Tri::True || ts.multi_class != Tri::True) return;
  s.props = checker().report(s);
  t.props = checker().report(t);
  const OrderTransform dl = delta(s, t);
  const std::string ctx = "seed " + std::to_string(GetParam());

  // M(S Δ T) ⟺ M(S) ∧ M(T) ∧ (N(S) ∨ C(T)) — unlike ⊙, the Thm 4 side
  // condition reappears.
  const Tri rule = tri_and(
      tri_and(s.props.value(Prop::M_L), t.props.value(Prop::M_L)),
      tri_or(s.props.value(Prop::N_L), t.props.value(Prop::C_L)));
  mrt::testing::expect_exact(Prop::M_L, rule,
                             checker().prop(dl, Prop::M_L).verdict,
                             ctx + " M");
}

// Measured correction to Theorem 7's local-optima lines: Δ's first arm is
// lex(S, T) (not lex(S, left(T))), so the ND(S)∧ND(T) disjunct survives:
//    ND(S Δ T) ⟺ ND(S) ∧ ND(T)        I(S Δ T) ⟺ ND(S) ∧ I(T)
// (for ⊤-free operands); the published I(S)∧ND(T) / I(S)∧I(T) under-claim.
TEST_P(Thm7Sweep, CorrectedLocalOptimaLines) {
  Rng rng(0xDE17A + static_cast<std::uint64_t>(GetParam()));
  OrderTransform s = random_order_transform(rng);
  OrderTransform t = random_order_transform(rng);
  const OrderShape ss = probe_shape(*s.ord);
  const OrderShape ts = probe_shape(*t.ord);
  if (ss.multi_element != Tri::True || ts.multi_class != Tri::True) return;
  s.props = checker().report(s);
  t.props = checker().report(t);
  if (s.props.value(Prop::HasTop) != Tri::False) return;
  const OrderTransform dl = delta(s, t);
  const std::string ctx = "seed " + std::to_string(GetParam());

  mrt::testing::expect_exact(
      Prop::ND_L,
      tri_and(s.props.value(Prop::ND_L), t.props.value(Prop::ND_L)),
      checker().prop(dl, Prop::ND_L).verdict, ctx + " corrected ND");
  if (t.props.value(Prop::HasTop) == Tri::False) {
    mrt::testing::expect_exact(
        Prop::Inc_L,
        tri_and(s.props.value(Prop::ND_L), t.props.value(Prop::Inc_L)),
        checker().prop(dl, Prop::Inc_L).verdict, ctx + " corrected I");
  }
}

// A concrete witness for the correction: S nondecreasing but not increasing,
// T nondecreasing — the published line says ¬ND(SΔT), the oracle says ND.
TEST(Thm7Correction, PublishedNdLineUnderClaims) {
  const Checker& chk = checker();
  // S: 0 < 1 with the identity function only — ND, not I, no top issue at
  // play for ND (ND has no top exemption). Keep it two-class as Thm 6/7
  // require of T, and multi-element as required of S.
  OrderTransform s = mrt::testing::make_ot({{1, 1}, {0, 1}}, {{0, 1}}, "s");
  s.props = chk.report(s);
  ASSERT_EQ(s.props.value(Prop::ND_L), Tri::True);
  ASSERT_EQ(s.props.value(Prop::Inc_L), Tri::False);

  OrderTransform t = mrt::testing::make_ot({{1, 1}, {0, 1}}, {{0, 1}}, "t");
  t.props = chk.report(t);
  ASSERT_EQ(t.props.value(Prop::ND_L), Tri::True);

  const OrderTransform dl = delta(s, t);
  // Published: ND(SΔT) ⟺ I(S) ∧ ND(T) = false. Oracle: ND holds.
  EXPECT_EQ(tri_and(s.props.value(Prop::Inc_L), t.props.value(Prop::ND_L)),
            Tri::False);
  EXPECT_EQ(checker().prop(dl, Prop::ND_L).verdict, Tri::True);
  // The engine (composing the exact rules) agrees with the oracle.
  EXPECT_EQ(dl.props.value(Prop::ND_L), Tri::True);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Thm7Sweep, ::testing::Range(0, 150));

// The paper's punchline example: bandwidth ⊙ delay is monotone although
// bandwidth ⃗× delay is not — local autonomy compatible with global optima.
TEST(ScopedProduct, BandwidthOverDelayIsMonotone) {
  OrderTransform bw = ot_widest_path(5);
  OrderTransform sp = ot_shortest_path(5);

  const OrderTransform bad = lex(bw, sp);
  EXPECT_EQ(bad.props.value(Prop::M_L), Tri::False);
  EXPECT_EQ(checker().prop(bad, Prop::M_L).verdict, Tri::False);

  const OrderTransform good = scoped(bw, sp);
  EXPECT_EQ(good.props.value(Prop::M_L), Tri::True);
  EXPECT_NE(checker().prop(good, Prop::M_L).verdict, Tri::False);

  // And local optima remain computable: ND(bw ⊙ sp) needs I(bw) — which
  // fails — so the scoped product here is *not* nondecreasing; the paper's
  // claim "ND for bandwidths and I for delays" gives local optima for the
  // other nesting. Verify that claim instead:
  const OrderTransform also_good = scoped(sp, bw);
  EXPECT_EQ(also_good.props.value(Prop::M_L), Tri::True);
}

}  // namespace
}  // namespace mrt
