// The random-algebra generators that power the theorem sweeps: determinism,
// structural guarantees (the laws each generator promises), and coverage
// (the sweeps must see both truth values of the key properties).
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/core/checker.hpp"
#include "mrt/core/random_algebra.hpp"

namespace mrt {
namespace {

const Checker& checker() {
  static const Checker chk;
  return chk;
}

TEST(Generators, DeterministicInSeed) {
  Rng a(7), b(7);
  OrderTransform x = random_order_transform(a);
  OrderTransform y = random_order_transform(b);
  const ValueVec ex = *x.ord->enumerate();
  const ValueVec ey = *y.ord->enumerate();
  ASSERT_EQ(ex.size(), ey.size());
  for (const Value& v : ex) {
    for (const Value& w : ex) {
      EXPECT_EQ(x.ord->leq(v, w), y.ord->leq(v, w));
    }
  }
}

TEST(Generators, TotalPreordersAreTotalAndTransitive) {
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    auto p = random_total_preorder(rng, 4);
    EXPECT_EQ(checker().preorder_prop(*p, Prop::Total).verdict, Tri::True);
    // ord_table construction validates reflexivity+transitivity already;
    // spot-check a law anyway.
    const ValueVec e = *p->enumerate();
    for (const Value& a : e) EXPECT_TRUE(p->leq(a, a));
  }
}

TEST(Generators, GeneralPreordersAreClosedButNotAlwaysTotal) {
  Rng rng(12);
  int non_total = 0;
  for (int i = 0; i < 40; ++i) {
    auto p = random_preorder(rng, 4);  // construction throws if not closed
    non_total +=
        checker().preorder_prop(*p, Prop::Total).verdict == Tri::False ? 1 : 0;
  }
  EXPECT_GT(non_total, 0) << "sweeps need partial orders too";
}

TEST(Generators, SemilatticesSatisfyTheSemilatticeLaws) {
  Rng rng(13);
  for (int i = 0; i < 25; ++i) {
    auto s = random_semilattice(rng, 3, i % 2 == 0);
    EXPECT_EQ(checker().semigroup_prop(*s, Prop::Assoc).verdict, Tri::True);
    EXPECT_EQ(checker().semigroup_prop(*s, Prop::Comm).verdict, Tri::True);
    EXPECT_EQ(checker().semigroup_prop(*s, Prop::Idem).verdict, Tri::True);
    if (i % 2 == 0) {
      EXPECT_EQ(checker().semigroup_prop(*s, Prop::HasIdentity).verdict,
                Tri::True);
    }
  }
}

TEST(Generators, ChainSemilatticesAreSelective) {
  Rng rng(14);
  for (int i = 0; i < 25; ++i) {
    auto s = random_chain_semilattice(rng, 4);
    EXPECT_EQ(checker().semigroup_prop(*s, Prop::Selective).verdict,
              Tri::True);
    EXPECT_EQ(checker().semigroup_prop(*s, Prop::Assoc).verdict, Tri::True);
  }
}

TEST(Generators, FnStylesDeliverTheirBias) {
  Rng rng(15);
  auto ord = random_total_preorder(rng, 4);
  // Monotone style: every generated function really is monotone.
  auto mono = random_fn_family(rng, 4, 3, FnStyle::Monotone, ord.get());
  OrderTransform mt{"m", ord, mono, {}};
  EXPECT_EQ(checker().prop(mt, Prop::M_L).verdict, Tri::True);
  // NonDecreasing style.
  auto nd = random_fn_family(rng, 4, 3, FnStyle::NonDecreasing, ord.get());
  OrderTransform nt{"n", ord, nd, {}};
  EXPECT_EQ(checker().prop(nt, Prop::ND_L).verdict, Tri::True);
  // ConstId style: constants and identities are monotone and C-or-N.
  auto ci = random_fn_family(rng, 4, 3, FnStyle::ConstId, ord.get());
  OrderTransform ct{"c", ord, ci, {}};
  EXPECT_EQ(checker().prop(ct, Prop::M_L).verdict, Tri::True);
}

TEST(Generators, SweepCoverageHitsBothTruthValues) {
  // The theorem sweeps are only meaningful if the generators produce both
  // M-true and M-false (ND-true/false, …) structures with decent frequency.
  Rng rng(16);
  int m_yes = 0, m_no = 0, nd_yes = 0, nd_no = 0, top_yes = 0, top_no = 0;
  for (int i = 0; i < 120; ++i) {
    OrderTransform s = random_order_transform(rng);
    const PropertyReport r = checker().report(s);
    (r.proved(Prop::M_L) ? m_yes : m_no)++;
    (r.proved(Prop::ND_L) ? nd_yes : nd_no)++;
    (r.proved(Prop::HasTop) ? top_yes : top_no)++;
  }
  EXPECT_GT(m_yes, 10);
  EXPECT_GT(m_no, 10);
  EXPECT_GT(nd_yes, 10);
  EXPECT_GT(nd_no, 10);
  EXPECT_GT(top_yes, 10);
  EXPECT_GT(top_no, 10);
}

TEST(Generators, BisemigroupAddIsAlwaysACommIdemSemigroup) {
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    Bisemigroup b = random_bisemigroup(rng);
    EXPECT_EQ(checker().semigroup_prop(*b.add, Prop::Comm).verdict, Tri::True);
    EXPECT_EQ(checker().semigroup_prop(*b.add, Prop::Idem).verdict, Tri::True);
    EXPECT_EQ(checker().semigroup_prop(*b.add, Prop::Assoc).verdict,
              Tri::True);
  }
}

TEST(Generators, RejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(random_total_preorder(rng, 0), std::logic_error);
  EXPECT_THROW(random_semilattice(rng, 0, false), std::logic_error);
  EXPECT_THROW(random_fn_family(rng, 3, 0, FnStyle::Arbitrary, nullptr),
               std::logic_error);
  EXPECT_THROW(random_fn_family(rng, 3, 2, FnStyle::Monotone, nullptr),
               std::logic_error);
}

}  // namespace
}  // namespace mrt
