// The static (compile-time) algebra layer: derived property tags must match
// the dynamic engine's verdicts, and the static Dijkstra must agree with the
// dynamic one route for route.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/algebra/static_algebra.hpp"
#include "mrt/algebra/static_dijkstra.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/routing/dijkstra.hpp"

namespace mrt {
namespace {

namespace a = mrt::alg;
using mrt::testing::I;

// --- compile-time property derivations (the theorems as static_asserts) ----

using SpBw = a::Lex<a::ShortestPath, a::WidestPath>;
using BwSp = a::Lex<a::WidestPath, a::ShortestPath>;
using ScopedBwSp = a::Scoped<a::WidestPath, a::ShortestPath>;
using Triple = a::Lex<a::Lex<a::ShortestPath, a::WidestPath>, a::Reliability>;
using TripleN = a::Lex<a::Lex<a::ShortestPath, a::Reliability>, a::WidestPath>;

// Sobrinho's example, decided by the compiler:
static_assert(SpBw::kM, "delay-then-bandwidth is monotone (N(sp) holds)");
static_assert(!BwSp::kM, "bandwidth-then-delay is NOT monotone");
// Theorem 6, decided by the compiler:
static_assert(ScopedBwSp::kM, "scoped product restores monotonicity");
// Local optima:
static_assert(SpBw::kNd && !SpBw::kSInc, "ND but never strict at the top");
static_assert(!SpBw::kInc,
              "not increasing under plain lex: bandwidth (the second factor) "
              "has non-strict extensions, and sp's top blocks the exemption — "
              "the refined Thm 5 rule, evaluated by the compiler");
// n-ary stacks: bandwidth in the middle destroys N for everything after it
// (so appending reliability breaks M), while keeping the cancellative
// factors up front preserves M — Theorem 4 applied associatively.
static_assert(!Triple::kM, "bandwidth in the middle kills N, so M fails");
static_assert(TripleN::kM, "cancellative prefix keeps the stack monotone");
static_assert(SpBw::kTotal && SpBw::kHasTop && !SpBw::kOneClass,
              "order shape is componentwise");

// Concept coverage.
static_assert(a::StaticOrderTransform<a::ShortestPath>);
static_assert(a::StaticOrderTransform<a::WidestPath>);
static_assert(a::StaticOrderTransform<a::Reliability>);
static_assert(a::StaticOrderTransform<SpBw>);
static_assert(a::StaticOrderTransform<ScopedBwSp>);

TEST(StaticAlgebra, TagsMatchDynamicEngine) {
  // The same compositions through the dynamic engine must agree with the
  // compile-time tags on every headline property.
  const OrderTransform dyn_spbw = lex(ot_shortest_path(9), ot_widest_path(9));
  EXPECT_EQ(dyn_spbw.props.value(Prop::M_L), tri_of(SpBw::kM));
  EXPECT_EQ(dyn_spbw.props.value(Prop::ND_L), tri_of(SpBw::kNd));
  EXPECT_EQ(dyn_spbw.props.value(Prop::Inc_L), tri_of(SpBw::kInc));
  EXPECT_EQ(dyn_spbw.props.value(Prop::N_L), tri_of(SpBw::kN));

  const OrderTransform dyn_bwsp = lex(ot_widest_path(9), ot_shortest_path(9));
  EXPECT_EQ(dyn_bwsp.props.value(Prop::M_L), tri_of(BwSp::kM));

  const OrderTransform dyn_scoped =
      scoped(ot_widest_path(9), ot_shortest_path(9));
  EXPECT_EQ(dyn_scoped.props.value(Prop::M_L), tri_of(ScopedBwSp::kM));
}

TEST(StaticAlgebra, ValueSemantics) {
  using V = SpBw::value_type;
  const V a{3, 9};
  const V b{3, 4};
  const V c{5, 100};
  EXPECT_TRUE(SpBw::leq(a, b));   // same delay, wider wins
  EXPECT_FALSE(SpBw::leq(b, a));
  EXPECT_TRUE(SpBw::leq(a, c));   // lower delay wins outright
  const V ext = SpBw::apply({2, 5}, a);
  EXPECT_EQ(ext.first, 5u);
  EXPECT_EQ(ext.second, 5u);
  EXPECT_TRUE(SpBw::is_top({a::ShortestPath::kInf, 0}));
  EXPECT_FALSE(SpBw::is_top({a::ShortestPath::kInf, 1}));
}

TEST(StaticAlgebra, SaturatingApply) {
  EXPECT_EQ(a::ShortestPath::apply(5, a::ShortestPath::kInf),
            a::ShortestPath::kInf);
  EXPECT_EQ(a::ShortestPath::apply(5, a::ShortestPath::kInf - 2),
            a::ShortestPath::kInf);
  EXPECT_EQ(a::WidestPath::apply(3, 10), 3u);
  EXPECT_EQ(a::WidestPath::apply(12, 10), 10u);
}

TEST(StaticAlgebra, ScopedApplySemantics) {
  using Sc = ScopedBwSp;
  const Sc::value_type v{7, 4};
  // Inter-region: transform bandwidth, originate fresh delay.
  const Sc::label_type inter = Sc::Inter{5, 1};
  const auto after_inter = Sc::apply(inter, v);
  EXPECT_EQ(after_inter.first, 5u);
  EXPECT_EQ(after_inter.second, 1u);
  // Intra-region: copy bandwidth, accumulate delay.
  const Sc::label_type intra = Sc::Intra{3};
  const auto after_intra = Sc::apply(intra, v);
  EXPECT_EQ(after_intra.first, 7u);
  EXPECT_EQ(after_intra.second, 7u);
}

TEST(StaticDijkstra, AgreesWithDynamicOnRandomNetworks) {
  Rng rng(0x57A71C);
  const OrderTransform dyn = lex(ot_shortest_path(6), ot_widest_path(6));
  for (int trial = 0; trial < 10; ++trial) {
    Digraph g = random_connected(rng, 9, 6);
    // Shared random labels.
    std::vector<SpBw::label_type> slabels;
    ValueVec dlabels;
    for (int id = 0; id < g.num_arcs(); ++id) {
      const auto c = static_cast<std::uint32_t>(rng.range(1, 6));
      const auto w = static_cast<std::uint32_t>(rng.range(0, 6));
      slabels.push_back({c, w});
      dlabels.push_back(Value::pair(I(c), I(w)));
    }
    LabeledGraph net(g, dlabels);

    const auto sr = a::dijkstra<SpBw>(g, slabels, 0, {0, a::WidestPath::kUnlimited});
    const Routing dr = dijkstra(dyn, net, 0, Value::pair(I(0), Value::inf()));
    for (int v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(sr.weight[(std::size_t)v].has_value(), dr.has_route(v));
      if (!dr.has_route(v)) continue;
      const auto& sw = *sr.weight[(std::size_t)v];
      EXPECT_EQ(I(sw.first), dr.weight[(std::size_t)v]->first()) << v;
      // Bandwidth "unlimited" sentinel corresponds to dynamic inf.
      const Value& dbw = dr.weight[(std::size_t)v]->second();
      if (sw.second == a::WidestPath::kUnlimited) {
        EXPECT_TRUE(dbw.is_inf());
      } else {
        EXPECT_EQ(I(sw.second), dbw);
      }
    }
  }
}

TEST(StaticDijkstra, HopCountOnLine) {
  Digraph g = line(5);
  std::vector<a::HopCount::label_type> labels(
      static_cast<std::size_t>(g.num_arcs()));
  const auto r = a::dijkstra<a::HopCount>(g, labels, 0, 0);
  EXPECT_EQ(*r.weight[4], 4u);
  EXPECT_EQ(*r.weight[1], 1u);
}

// The compile-time proof obligation: `a::dijkstra<BwSp>` would not compile
// (static_assert on kM). The unchecked variant runs — and reproduces the
// anomaly, matching the dynamic demonstration in test_routing.cpp.
TEST(StaticDijkstra, UncheckedExhibitsTheAnomaly) {
  Digraph g(3);
  std::vector<BwSp::label_type> labels;
  g.add_arc(2, 0);
  labels.push_back({9, 5});
  g.add_arc(2, 0);
  labels.push_back({3, 1});
  g.add_arc(1, 2);
  labels.push_back({2, 1});
  const auto r = a::dijkstra_unchecked<BwSp>(
      g, labels, 0, {a::WidestPath::kUnlimited, 0});
  EXPECT_EQ(r.weight[2]->first, 9u);
  EXPECT_EQ(r.weight[1]->second, 6u);  // suboptimal: true best is (2, 2)
}

}  // namespace
}  // namespace mrt
