// Base semigroup laws: each hand-written base algebra is corroborated by the
// checker, and identities/absorbers are verified explicitly.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mrt/core/bases.hpp"
#include "mrt/core/checker.hpp"

namespace mrt {
namespace {

using mrt::testing::I;

TEST(SgMin, BasicOps) {
  auto s = sg_min();
  EXPECT_EQ(s->op(I(3), I(5)), I(3));
  EXPECT_EQ(s->op(Value::inf(), I(5)), I(5));
  EXPECT_EQ(s->op(Value::inf(), Value::inf()), Value::inf());
  EXPECT_EQ(*s->identity(), Value::inf());
  EXPECT_EQ(*s->absorber(), I(0));
}

TEST(SgMin, PlainNatHasNoIdentity) {
  auto s = sg_min(false);
  EXPECT_FALSE(s->identity().has_value());
  EXPECT_FALSE(s->contains(Value::inf()));
  EXPECT_TRUE(s->contains(I(0)));
}

TEST(SgPlus, SaturatesAtInf) {
  auto s = sg_plus();
  EXPECT_EQ(s->op(I(3), I(5)), I(8));
  EXPECT_EQ(s->op(Value::inf(), I(5)), Value::inf());
  EXPECT_EQ(*s->identity(), I(0));
  EXPECT_EQ(*s->absorber(), Value::inf());
}

TEST(SgPlus, PlainNatHasNoAbsorber) {
  EXPECT_FALSE(sg_plus(false)->absorber().has_value());
}

TEST(SgMax, Ops) {
  auto s = sg_max();
  EXPECT_EQ(s->op(I(3), I(5)), I(5));
  EXPECT_EQ(s->op(Value::inf(), I(5)), Value::inf());
  EXPECT_EQ(*s->identity(), I(0));
}

TEST(SgTimesReal, Ops) {
  auto s = sg_times_real();
  EXPECT_EQ(s->op(Value::real(0.5), Value::real(0.5)), Value::real(0.25));
  EXPECT_EQ(*s->identity(), Value::real(1.0));
  EXPECT_EQ(*s->absorber(), Value::real(0.0));
}

TEST(SgChainPlus, SaturatesAtBound) {
  auto s = sg_chain_plus(5);
  EXPECT_EQ(s->op(I(3), I(4)), I(5));
  EXPECT_EQ(s->op(I(1), I(2)), I(3));
  EXPECT_EQ(*s->identity(), I(0));
  EXPECT_EQ(*s->absorber(), I(5));
  EXPECT_EQ(s->enumerate()->size(), 6u);
}

TEST(SgUnionBits, MonoidStructure) {
  auto s = sg_union_bits(3);
  EXPECT_EQ(s->op(I(0b101), I(0b011)), I(0b111));
  EXPECT_EQ(*s->identity(), I(0));
  EXPECT_EQ(*s->absorber(), I(0b111));
  EXPECT_EQ(s->enumerate()->size(), 8u);
}

TEST(SgTable, IdentityAndAbsorberDiscovery) {
  // {0,1} with op = min: identity 1, absorber 0.
  auto s = sg_table("min2", {{0, 0}, {0, 1}});
  EXPECT_EQ(*s->identity(), I(1));
  EXPECT_EQ(*s->absorber(), I(0));
  // Right projection has neither.
  auto r = sg_right_proj(3);
  EXPECT_FALSE(r->identity().has_value());
  EXPECT_FALSE(r->absorber().has_value());
}

TEST(SgTable, RejectsMalformedTables) {
  EXPECT_THROW(sg_table("bad", {{0, 1}}), std::logic_error);        // ragged
  EXPECT_THROW(sg_table("bad", {{0, 2}, {0, 1}}), std::logic_error);  // range
}

// --- checker corroboration of the semigroup-law axioms --------------------

struct SgLawCase {
  const char* name;
  SemigroupPtr sg;
  Tri assoc, comm, idem, selective;
};

class SemigroupLaws : public ::testing::TestWithParam<SgLawCase> {};

TEST_P(SemigroupLaws, CheckerAgrees) {
  const auto& c = GetParam();
  Checker chk;
  EXPECT_NE(chk.semigroup_prop(*c.sg, Prop::Assoc).verdict,
            tri_not(c.assoc))
      << c.name << " assoc";
  EXPECT_NE(chk.semigroup_prop(*c.sg, Prop::Comm).verdict, tri_not(c.comm))
      << c.name << " comm";
  EXPECT_NE(chk.semigroup_prop(*c.sg, Prop::Idem).verdict, tri_not(c.idem))
      << c.name << " idem";
  EXPECT_NE(chk.semigroup_prop(*c.sg, Prop::Selective).verdict,
            tri_not(c.selective))
      << c.name << " selective";
}

INSTANTIATE_TEST_SUITE_P(
    Bases, SemigroupLaws,
    ::testing::Values(
        SgLawCase{"min", sg_min(), Tri::True, Tri::True, Tri::True, Tri::True},
        SgLawCase{"max", sg_max(), Tri::True, Tri::True, Tri::True, Tri::True},
        SgLawCase{"plus", sg_plus(), Tri::True, Tri::True, Tri::False,
                  Tri::False},
        SgLawCase{"times_real", sg_times_real(), Tri::True, Tri::True,
                  Tri::False, Tri::False},
        SgLawCase{"chain_min", sg_chain_min(4), Tri::True, Tri::True,
                  Tri::True, Tri::True},
        SgLawCase{"chain_plus", sg_chain_plus(4), Tri::True, Tri::True,
                  Tri::False, Tri::False},
        SgLawCase{"plus_mod", sg_plus_mod(4), Tri::True, Tri::True,
                  Tri::False, Tri::False},
        SgLawCase{"left_proj", sg_left_proj(3), Tri::True, Tri::False,
                  Tri::True, Tri::True},
        SgLawCase{"union_bits", sg_union_bits(2), Tri::True, Tri::True,
                  Tri::True, Tri::False},
        SgLawCase{"inter_bits", sg_inter_bits(2), Tri::True, Tri::True,
                  Tri::True, Tri::False}),
    [](const auto& info) { return info.param.name; });

TEST(Fold, FoldsLeft) {
  auto s = sg_plus();
  EXPECT_EQ(fold(*s, {I(1), I(2), I(3)}), I(6));
  EXPECT_EQ(fold(*s, {I(7)}), I(7));
  EXPECT_THROW(fold(*s, {}), std::logic_error);
}

}  // namespace
}  // namespace mrt
