#include <utility>

#include "mrt/core/bases.hpp"
#include "mrt/core/numeric.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

class ExtNatOrder : public PreorderSet {
 public:
  ExtNatOrder(bool ascending, bool with_inf)
      : ascending_(ascending), with_inf_(with_inf) {}

  std::string name() const override {
    return std::string(ascending_ ? "nat_leq" : "nat_geq") +
           (with_inf_ ? "" : ".nat");
  }
  bool contains(const Value& v) const override {
    if (v.is_inf()) return with_inf_;
    return v.is_int() && v.as_int() >= 0;
  }
  bool leq(const Value& a, const Value& b) const override {
    return ascending_ ? ext_leq(a, b) : ext_leq(b, a);
  }
  bool is_top(const Value& v) const override {
    // ≤: ⊤ = ∞ (unreachable), absent on plain ℕ; ≥: ⊤ = 0 (zero bandwidth).
    if (ascending_) return with_inf_ && v.is_inf();
    return v.is_int() && v.as_int() == 0;
  }
  bool has_top() const override { return !ascending_ || with_inf_; }
  ValueVec sample(Rng& rng, int n) const override {
    ValueVec out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      if (with_inf_ && rng.chance(0.1)) {
        out.push_back(Value::inf());
      } else {
        out.push_back(Value::integer(rng.range(0, 15)));
      }
    }
    return out;
  }
  OrderDesc describe() const override {
    OrderDesc d;
    d.k = ascending_ ? OrderDesc::K::NatAsc : OrderDesc::K::NatDesc;
    d.with_inf = with_inf_;
    return d;
  }

 private:
  bool ascending_;
  bool with_inf_;
};

class UnitRealGeqOrder : public PreorderSet {
 public:
  std::string name() const override { return "unit_real_geq"; }
  bool contains(const Value& v) const override {
    return v.kind() == Value::Kind::Real && v.as_real() >= 0.0 &&
           v.as_real() <= 1.0;
  }
  bool leq(const Value& a, const Value& b) const override {
    return a.as_real() >= b.as_real();  // more reliable = more preferred
  }
  bool is_top(const Value& v) const override { return v.as_real() == 0.0; }
  bool has_top() const override { return true; }
  ValueVec sample(Rng& rng, int n) const override {
    ValueVec out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      out.push_back(Value::real(static_cast<double>(rng.range(0, 16)) / 16.0));
    }
    return out;
  }
  OrderDesc describe() const override {
    OrderDesc d;
    d.k = OrderDesc::K::UnitRealDesc;
    return d;
  }
};

class ChainOrder : public PreorderSet {
 public:
  ChainOrder(int n, bool ascending) : n_(n), ascending_(ascending) {
    MRT_REQUIRE(n >= 0);
  }
  std::string name() const override {
    return std::string(ascending_ ? "chain(" : "chain_rev(") +
           std::to_string(n_) + ")";
  }
  bool contains(const Value& v) const override {
    return v.is_int() && v.as_int() >= 0 && v.as_int() <= n_;
  }
  bool leq(const Value& a, const Value& b) const override {
    return ascending_ ? a.as_int() <= b.as_int() : a.as_int() >= b.as_int();
  }
  std::optional<ValueVec> enumerate() const override {
    ValueVec out;
    for (int i = 0; i <= n_; ++i) out.push_back(Value::integer(i));
    return out;
  }
  OrderDesc describe() const override {
    OrderDesc d;
    d.k = ascending_ ? OrderDesc::K::ChainAsc : OrderDesc::K::ChainDesc;
    d.n = n_;
    return d;
  }

 private:
  int n_;
  bool ascending_;
};

class DiscreteOrder : public PreorderSet {
 public:
  explicit DiscreteOrder(int n) : n_(n) { MRT_REQUIRE(n >= 1); }
  std::string name() const override {
    return "discrete(" + std::to_string(n_) + ")";
  }
  bool contains(const Value& v) const override {
    return v.is_int() && v.as_int() >= 0 && v.as_int() < n_;
  }
  bool leq(const Value& a, const Value& b) const override { return a == b; }
  std::optional<ValueVec> enumerate() const override {
    ValueVec out;
    for (int i = 0; i < n_; ++i) out.push_back(Value::integer(i));
    return out;
  }
  OrderDesc describe() const override {
    OrderDesc d;
    d.k = OrderDesc::K::Discrete;
    d.n = n_;
    return d;
  }

 private:
  int n_;
};

class TrivialOrder : public PreorderSet {
 public:
  explicit TrivialOrder(int n) : n_(n) { MRT_REQUIRE(n >= 1); }
  std::string name() const override {
    return "trivial(" + std::to_string(n_) + ")";
  }
  bool contains(const Value& v) const override {
    return v.is_int() && v.as_int() >= 0 && v.as_int() < n_;
  }
  bool leq(const Value&, const Value&) const override { return true; }
  std::optional<ValueVec> enumerate() const override {
    ValueVec out;
    for (int i = 0; i < n_; ++i) out.push_back(Value::integer(i));
    return out;
  }
  OrderDesc describe() const override {
    OrderDesc d;
    d.k = OrderDesc::K::Trivial;
    d.n = n_;
    return d;
  }

 private:
  int n_;
};

class SubsetOrder : public PreorderSet {
 public:
  explicit SubsetOrder(int k) : k_(k) { MRT_REQUIRE(k >= 1 && k <= 16); }
  std::string name() const override {
    return "subset_bits(" + std::to_string(k_) + ")";
  }
  bool contains(const Value& v) const override {
    return v.is_int() && v.as_int() >= 0 &&
           v.as_int() < (std::int64_t{1} << k_);
  }
  bool leq(const Value& a, const Value& b) const override {
    const std::int64_t x = a.as_int();
    const std::int64_t y = b.as_int();
    return (x & y) == x;  // x ⊆ y
  }
  std::optional<ValueVec> enumerate() const override {
    ValueVec out;
    for (std::int64_t m = 0; m < (std::int64_t{1} << k_); ++m) {
      out.push_back(Value::integer(m));
    }
    return out;
  }
  OrderDesc describe() const override {
    OrderDesc d;
    d.k = OrderDesc::K::SubsetBits;
    d.n = k_;
    return d;
  }

 private:
  int k_;
};

class TableOrder : public PreorderSet {
 public:
  TableOrder(std::string name, std::vector<std::vector<std::uint8_t>> leq)
      : name_(std::move(name)), leq_(std::move(leq)) {
    const std::size_t n = leq_.size();
    MRT_REQUIRE(n >= 1);
    for (const auto& row : leq_) MRT_REQUIRE(row.size() == n);
    // Preorder laws are preconditions, not measurements: fail loudly here.
    for (std::size_t i = 0; i < n; ++i) MRT_REQUIRE(leq_[i][i]);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) {
          if (leq_[i][j] && leq_[j][k]) MRT_REQUIRE(leq_[i][k]);
        }
      }
    }
  }

  std::string name() const override { return name_; }
  bool contains(const Value& v) const override {
    return v.is_int() && v.as_int() >= 0 &&
           static_cast<std::size_t>(v.as_int()) < leq_.size();
  }
  bool leq(const Value& a, const Value& b) const override {
    MRT_REQUIRE(contains(a) && contains(b));
    return leq_[static_cast<std::size_t>(a.as_int())]
               [static_cast<std::size_t>(b.as_int())] != 0;
  }
  std::optional<ValueVec> enumerate() const override {
    ValueVec out;
    for (std::size_t i = 0; i < leq_.size(); ++i) {
      out.push_back(Value::integer(static_cast<std::int64_t>(i)));
    }
    return out;
  }
  OrderDesc describe() const override {
    OrderDesc d;
    d.k = OrderDesc::K::Table;
    d.n = static_cast<int>(leq_.size());
    d.leq = leq_;
    return d;
  }

 private:
  std::string name_;
  std::vector<std::vector<std::uint8_t>> leq_;
};

}  // namespace

PreorderPtr ord_nat_leq(bool with_inf) {
  return std::make_shared<ExtNatOrder>(true, with_inf);
}
PreorderPtr ord_nat_geq(bool with_inf) {
  return std::make_shared<ExtNatOrder>(false, with_inf);
}
PreorderPtr ord_unit_real_geq() { return std::make_shared<UnitRealGeqOrder>(); }
PreorderPtr ord_chain(int n) { return std::make_shared<ChainOrder>(n, true); }
PreorderPtr ord_chain_rev(int n) {
  return std::make_shared<ChainOrder>(n, false);
}
PreorderPtr ord_discrete(int n) { return std::make_shared<DiscreteOrder>(n); }
PreorderPtr ord_trivial(int n) { return std::make_shared<TrivialOrder>(n); }
PreorderPtr ord_subset_bits(int k) { return std::make_shared<SubsetOrder>(k); }
PreorderPtr ord_table(std::string name,
                      std::vector<std::vector<std::uint8_t>> leq) {
  return std::make_shared<TableOrder>(std::move(name), std::move(leq));
}

}  // namespace mrt
