#include <utility>

#include "mrt/core/lex.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

class LexPreorder : public PreorderSet {
 public:
  LexPreorder(PreorderPtr s, PreorderPtr t)
      : s_(std::move(s)), t_(std::move(t)) {
    MRT_REQUIRE(s_ != nullptr && t_ != nullptr);
  }

  std::string name() const override {
    return "lex(" + s_->name() + ", " + t_->name() + ")";
  }

  bool contains(const Value& v) const override {
    return v.is_tuple() && v.as_tuple().size() == 2 &&
           s_->contains(v.first()) && t_->contains(v.second());
  }

  bool leq(const Value& a, const Value& b) const override {
    switch (s_->cmp(a.first(), b.first())) {
      case Cmp::Less:
        return true;
      case Cmp::Equiv:
        return t_->leq(a.second(), b.second());
      case Cmp::Greater:
      case Cmp::Incomp:
        return false;
    }
    MRT_UNREACHABLE("bad Cmp");
  }

  bool is_top(const Value& v) const override {
    // Top of a lexicographic product is Top(S) × Top(T).
    return s_->is_top(v.first()) && t_->is_top(v.second());
  }

  bool has_top() const override { return s_->has_top() && t_->has_top(); }

  std::optional<ValueVec> enumerate() const override {
    auto es = s_->enumerate();
    auto et = t_->enumerate();
    if (!es || !et) return std::nullopt;
    ValueVec out;
    out.reserve(es->size() * et->size());
    for (const Value& x : *es) {
      for (const Value& y : *et) out.push_back(Value::pair(x, y));
    }
    return out;
  }

  ValueVec sample(Rng& rng, int n) const override {
    ValueVec xs = s_->sample(rng, n);
    ValueVec ys = t_->sample(rng, n);
    ValueVec out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      out.push_back(Value::pair(xs[static_cast<std::size_t>(i)],
                                ys[static_cast<std::size_t>(i)]));
    }
    return out;
  }

  OrderDesc describe() const override {
    OrderDesc d;
    d.k = OrderDesc::K::Lex;
    d.kids = {s_->describe(), t_->describe()};
    return d;
  }

 private:
  PreorderPtr s_, t_;
};

class DirectPreorder : public PreorderSet {
 public:
  DirectPreorder(PreorderPtr s, PreorderPtr t)
      : s_(std::move(s)), t_(std::move(t)) {
    MRT_REQUIRE(s_ != nullptr && t_ != nullptr);
  }

  std::string name() const override {
    return "prod(" + s_->name() + ", " + t_->name() + ")";
  }
  bool contains(const Value& v) const override {
    return v.is_tuple() && v.as_tuple().size() == 2 &&
           s_->contains(v.first()) && t_->contains(v.second());
  }
  bool leq(const Value& a, const Value& b) const override {
    return s_->leq(a.first(), b.first()) && t_->leq(a.second(), b.second());
  }
  bool is_top(const Value& v) const override {
    return s_->is_top(v.first()) && t_->is_top(v.second());
  }
  bool has_top() const override { return s_->has_top() && t_->has_top(); }
  std::optional<ValueVec> enumerate() const override {
    auto es = s_->enumerate();
    auto et = t_->enumerate();
    if (!es || !et) return std::nullopt;
    ValueVec out;
    out.reserve(es->size() * et->size());
    for (const Value& x : *es) {
      for (const Value& y : *et) out.push_back(Value::pair(x, y));
    }
    return out;
  }
  ValueVec sample(Rng& rng, int n) const override {
    ValueVec xs = s_->sample(rng, n);
    ValueVec ys = t_->sample(rng, n);
    ValueVec out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      out.push_back(Value::pair(xs[static_cast<std::size_t>(i)],
                                ys[static_cast<std::size_t>(i)]));
    }
    return out;
  }

  OrderDesc describe() const override {
    OrderDesc d;
    d.k = OrderDesc::K::Direct;
    d.kids = {s_->describe(), t_->describe()};
    return d;
  }

 private:
  PreorderPtr s_, t_;
};

}  // namespace

PreorderPtr lex_preorder(PreorderPtr s, PreorderPtr t) {
  return std::make_shared<LexPreorder>(std::move(s), std::move(t));
}

PreorderPtr direct_preorder(PreorderPtr s, PreorderPtr t) {
  return std::make_shared<DirectPreorder>(std::move(s), std::move(t));
}

}  // namespace mrt
