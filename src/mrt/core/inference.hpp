// The property-inference engine: the paper's "type system".
//
// Given the PropertyReports of the operands, these rules derive the report
// of a composite algebra. Because the paper's characterizations are *exact*
// (necessary and sufficient — Theorems 4 and 5), both truth and falsity
// propagate; three-valued Kleene logic handles unknowns.
//
// Ordered-quadrant local-optima rules are the ⊤-aware refinements derived in
// DESIGN.md §1.1 (the paper's Fig. 3 rules are recovered exactly when the
// first factor is ⊤-free, or under the ⃗×_ω product); the literal paper
// rules are also exposed for the comparison experiments.
#pragma once

#include "mrt/core/checker.hpp"
#include "mrt/core/properties.hpp"

namespace mrt {

/// Exact rules for the lexicographic product in each quadrant.
/// `kind` selects the rule family; for Bisemigroup both left and right
/// slots are derived, for transforms only the left slots.
PropertyReport infer_lex(StructureKind kind, const PropertyReport& s,
                         const PropertyReport& t);

/// Rules for the direct (componentwise) product of order transforms:
/// exact for M/N/C/ND/SI and the order shape; the I rule is partially
/// decided (sound in both directions, Unknown in the genuinely mixed cases,
/// where the checker takes over).
PropertyReport infer_direct(const PropertyReport& s, const PropertyReport& t);

/// Sufficient-only rules for the Szendrei ⃗×_ω product (ordered quadrants):
/// under the collapse the paper's Fig. 2/3 rules apply; we propagate truth
/// and leave falsity to the checker.
PropertyReport infer_lex_omega(StructureKind kind, const PropertyReport& s,
                               const PropertyReport& t);

/// Order-shape facts needed by the left/right/scoped rules.
struct OrderShape {
  Tri multi_element = Tri::Unknown;  ///< at least two elements
  Tri multi_class = Tri::Unknown;    ///< at least two equivalence classes
  Tri no_strict_pair = Tri::Unknown; ///< no a < b anywhere
};

/// Probes the shape by enumeration or sampling.
OrderShape probe_shape(const PreorderSet& ord, const CheckLimits& limits = {});

/// left(T) = (T, ≲, {κ_b}): exact rules (paper section V facts).
PropertyReport infer_left(const PropertyReport& t, const OrderShape& shape);

/// right(S) = (S, ≲, {id}): exact rules.
PropertyReport infer_right(const PropertyReport& s, const OrderShape& shape);

/// Disjoint function union S + T (same order): P(S+T) ⟺ P(S) ∧ P(T).
PropertyReport infer_union(const PropertyReport& s, const PropertyReport& t);

// The literal paper rules, used by the experiment harnesses to compare
// paper-exact vs refined vs classic-2005 derivations.
//
/// Fig. 3 / Thm 5: ND(S ⃗× T) ⟺ I(S) ∨ (ND(S) ∧ ND(T)).
Tri paper_rule_nd_lex(const PropertyReport& s, const PropertyReport& t);
/// Fig. 3 / Thm 5: I(S ⃗× T) ⟺ I(S) ∨ (ND(S) ∧ I(T)).
Tri paper_rule_inc_lex(const PropertyReport& s, const PropertyReport& t);
/// Fig. 2 / Thm 4: M(S ⃗× T) ⟺ M(S) ∧ M(T) ∧ (N(S) ∨ C(T)).
Tri paper_rule_m_lex(const PropertyReport& s, const PropertyReport& t);

/// The 2005 metarouting sufficient rules (paper section II), truth-only:
/// ND(S)∧ND(T) ⇒ ND(S⃗×T);  I(S)∨(ND(S)∧I(T)) ⇒ I(S⃗×T).
Tri classic2005_nd_lex(const PropertyReport& s, const PropertyReport& t);
Tri classic2005_inc_lex(const PropertyReport& s, const PropertyReport& t);

}  // namespace mrt
