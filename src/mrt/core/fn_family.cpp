#include "mrt/core/fn_family.hpp"

#include "mrt/support/require.hpp"

namespace mrt {

ValueVec FunctionFamily::sample_labels(Rng& rng, int n) const {
  auto all = labels();
  MRT_REQUIRE(all.has_value() && !all->empty());
  ValueVec out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(rng.pick(*all));
  return out;
}

}  // namespace mrt
