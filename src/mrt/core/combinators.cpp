#include "mrt/core/combinators.hpp"

#include <utility>

#include "mrt/core/bases.hpp"
#include "mrt/core/inference.hpp"
#include "mrt/core/lex.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

std::string lex_name(const std::string& s, const std::string& t) {
  return "lex(" + s + ", " + t + ")";
}

// --- Szendrei product carrier pieces for order transforms -----------------

// Order: ((S ∖ Top(S)) × T) ∪ {ω}, pairs lexicographic, ω the unique top.
class LexOmegaPreorder : public PreorderSet {
 public:
  LexOmegaPreorder(PreorderPtr s, PreorderPtr t)
      : s_(std::move(s)), t_(std::move(t)), lex_(lex_preorder(s_, t_)) {
    MRT_REQUIRE(s_->has_top());
  }

  std::string name() const override {
    return "lex_omega(" + s_->name() + ", " + t_->name() + ")";
  }
  bool contains(const Value& v) const override {
    if (v.is_omega()) return true;
    return lex_->contains(v) && !s_->is_top(v.first());
  }
  bool leq(const Value& a, const Value& b) const override {
    if (b.is_omega()) return true;   // ω is least preferred
    if (a.is_omega()) return false;  // and nothing else reaches it
    return lex_->leq(a, b);
  }
  bool is_top(const Value& v) const override { return v.is_omega(); }
  bool has_top() const override { return true; }
  std::optional<ValueVec> enumerate() const override {
    auto es = s_->enumerate();
    auto et = t_->enumerate();
    if (!es || !et) return std::nullopt;
    ValueVec out;
    out.push_back(Value::omega());
    for (const Value& x : *es) {
      if (s_->is_top(x)) continue;
      for (const Value& y : *et) out.push_back(Value::pair(x, y));
    }
    return out;
  }
  ValueVec sample(Rng& rng, int n) const override {
    ValueVec xs = s_->sample(rng, n);
    ValueVec ys = t_->sample(rng, n);
    ValueVec out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const Value& x = xs[static_cast<std::size_t>(i)];
      if (s_->is_top(x)) {
        out.push_back(Value::omega());
      } else {
        out.push_back(Value::pair(x, ys[static_cast<std::size_t>(i)]));
      }
    }
    return out;
  }

  OrderDesc describe() const override {
    OrderDesc d;
    d.k = OrderDesc::K::LexOmega;
    d.kids = {s_->describe(), t_->describe()};
    return d;
  }

 private:
  PreorderPtr s_, t_;
  PreorderPtr lex_;
};

// Functions (f, g) with the collapse: f(s) ∈ Top(S) sends the pair to ω.
class LexOmegaFamily : public FunctionFamily {
 public:
  LexOmegaFamily(PreorderPtr s_ord, FnFamilyPtr f, FnFamilyPtr g)
      : s_ord_(std::move(s_ord)),
        pair_(fam_pair(std::move(f), std::move(g))) {}

  std::string name() const override {
    return "omega-" + pair_->name();
  }
  Value apply(const Value& label, const Value& a) const override {
    if (a.is_omega()) return Value::omega();
    Value out = pair_->apply(label, a);
    if (s_ord_->is_top(out.first())) return Value::omega();
    return out;
  }
  std::optional<ValueVec> labels() const override { return pair_->labels(); }
  ValueVec sample_labels(Rng& rng, int n) const override {
    return pair_->sample_labels(rng, n);
  }

  FamilyDesc describe() const override {
    FamilyDesc d;
    d.k = FamilyDesc::K::LexOmega;
    d.kids = {pair_->describe()};
    return d;
  }

 private:
  PreorderPtr s_ord_;
  FnFamilyPtr pair_;
};

// Semigroup-transform version: collapse on the declared absorber of ⊕_S.
class LexOmegaStFamily : public FunctionFamily {
 public:
  LexOmegaStFamily(Value omega_s, FnFamilyPtr f, FnFamilyPtr g)
      : omega_s_(std::move(omega_s)),
        pair_(fam_pair(std::move(f), std::move(g))) {}

  std::string name() const override { return "omega-" + pair_->name(); }
  Value apply(const Value& label, const Value& a) const override {
    if (a.is_omega()) return Value::omega();
    Value out = pair_->apply(label, a);
    if (out.first() == omega_s_) return Value::omega();
    return out;
  }
  std::optional<ValueVec> labels() const override { return pair_->labels(); }
  ValueVec sample_labels(Rng& rng, int n) const override {
    return pair_->sample_labels(rng, n);
  }

 private:
  Value omega_s_;
  FnFamilyPtr pair_;
};

// --- add_top pieces --------------------------------------------------------

// S ∪ {ω} with ω strictly above everything (the adjoined invalid route).
class AddTopPreorder : public PreorderSet {
 public:
  explicit AddTopPreorder(PreorderPtr s) : s_(std::move(s)) {
    MRT_REQUIRE(s_ != nullptr);
  }
  std::string name() const override { return "add_top(" + s_->name() + ")"; }
  bool contains(const Value& v) const override {
    return v.is_omega() || s_->contains(v);
  }
  bool leq(const Value& a, const Value& b) const override {
    if (b.is_omega()) return true;
    if (a.is_omega()) return false;
    return s_->leq(a, b);
  }
  bool is_top(const Value& v) const override { return v.is_omega(); }
  bool has_top() const override { return true; }
  std::optional<ValueVec> enumerate() const override {
    auto es = s_->enumerate();
    if (!es) return std::nullopt;
    es->push_back(Value::omega());
    return es;
  }
  ValueVec sample(Rng& rng, int n) const override {
    ValueVec out = s_->sample(rng, n);
    for (Value& v : out) {
      if (rng.chance(0.1)) v = Value::omega();
    }
    return out;
  }

  OrderDesc describe() const override {
    OrderDesc d;
    d.k = OrderDesc::K::AddTop;
    d.kids = {s_->describe()};
    return d;
  }

 private:
  PreorderPtr s_;
};

class AddTopFamily : public FunctionFamily {
 public:
  explicit AddTopFamily(FnFamilyPtr f) : f_(std::move(f)) {
    MRT_REQUIRE(f_ != nullptr);
  }
  std::string name() const override { return "top-fixing " + f_->name(); }
  Value apply(const Value& label, const Value& a) const override {
    if (a.is_omega()) return Value::omega();
    return f_->apply(label, a);
  }
  std::optional<ValueVec> labels() const override { return f_->labels(); }
  ValueVec sample_labels(Rng& rng, int n) const override {
    return f_->sample_labels(rng, n);
  }

  FamilyDesc describe() const override {
    FamilyDesc d;
    d.k = FamilyDesc::K::AddTop;
    d.kids = {f_->describe()};
    return d;
  }

 private:
  FnFamilyPtr f_;
};

}  // namespace

OrderTransform add_top(const OrderTransform& s) {
  // The adjoined top must be fresh: applying add_top to a carrier that
  // already contains ω (e.g. a lex_omega product) would collapse the two
  // sentinels and silently change the order. Wrap such algebras in a lex
  // first, or add_top before collapsing.
  MRT_REQUIRE(!s.ord->contains(Value::omega()));
  PropertyReport r;
  auto copy = [&](Prop p, Tri v, const char* why) {
    r.set(p, v, std::string("rule: ") + why);
  };
  copy(Prop::Total, s.props.value(Prop::Total), "omega comparable to all");
  copy(Prop::Antisym, s.props.value(Prop::Antisym), "omega is fresh");
  copy(Prop::HasTop, Tri::True, "omega adjoined");
  copy(Prop::HasBottom, s.props.value(Prop::HasBottom), "unchanged below");
  copy(Prop::OneClass, Tri::False, "omega strictly above the rest");
  copy(Prop::M_L, s.props.value(Prop::M_L),
       "new pairs a <= omega map to f(a) <= omega");
  copy(Prop::N_L, s.props.value(Prop::N_L),
       "no new equivalences: omega meets only itself");
  copy(Prop::C_L, Tri::False, "f(omega) = omega !~ f(a) for old a");
  copy(Prop::ND_L, s.props.value(Prop::ND_L), "omega fixed; rest unchanged");
  copy(Prop::Inc_L, s.props.value(Prop::SInc_L),
       "I(add_top(S)) <=> SI(S): old maxima lose their exemption");
  copy(Prop::SInc_L, Tri::False, "omega is a fixed point");
  copy(Prop::TFix_L, Tri::True, "functions fix omega by construction");
  return OrderTransform{"add_top(" + s.name + ")",
                        std::make_shared<AddTopPreorder>(s.ord),
                        std::make_shared<AddTopFamily>(s.fns), std::move(r)};
}

Bisemigroup lex(const Bisemigroup& s, const Bisemigroup& t) {
  return Bisemigroup{lex_name(s.name, t.name), lex_semigroup(s.add, t.add),
                     direct_semigroup(s.mul, t.mul),
                     infer_lex(StructureKind::Bisemigroup, s.props, t.props)};
}

OrderSemigroup lex(const OrderSemigroup& s, const OrderSemigroup& t) {
  return OrderSemigroup{
      lex_name(s.name, t.name), lex_preorder(s.ord, t.ord),
      direct_semigroup(s.mul, t.mul),
      infer_lex(StructureKind::OrderSemigroup, s.props, t.props)};
}

SemigroupTransform lex(const SemigroupTransform& s,
                       const SemigroupTransform& t) {
  return SemigroupTransform{
      lex_name(s.name, t.name), lex_semigroup(s.add, t.add),
      fam_pair(s.fns, t.fns),
      infer_lex(StructureKind::SemigroupTransform, s.props, t.props)};
}

OrderTransform lex(const OrderTransform& s, const OrderTransform& t) {
  return OrderTransform{
      lex_name(s.name, t.name), lex_preorder(s.ord, t.ord),
      fam_pair(s.fns, t.fns),
      infer_lex(StructureKind::OrderTransform, s.props, t.props)};
}

OrderTransform direct(const OrderTransform& s, const OrderTransform& t) {
  return OrderTransform{"prod(" + s.name + ", " + t.name + ")",
                        direct_preorder(s.ord, t.ord), fam_pair(s.fns, t.fns),
                        infer_direct(s.props, t.props)};
}

OrderTransform lex_omega(const OrderTransform& s, const OrderTransform& t) {
  MRT_REQUIRE(s.ord->has_top());
  return OrderTransform{
      "lex_omega(" + s.name + ", " + t.name + ")",
      std::make_shared<LexOmegaPreorder>(s.ord, t.ord),
      std::make_shared<LexOmegaFamily>(s.ord, s.fns, t.fns),
      infer_lex_omega(StructureKind::OrderTransform, s.props, t.props)};
}

SemigroupTransform lex_omega(const SemigroupTransform& s,
                             const SemigroupTransform& t) {
  auto omega_s = s.add->absorber();
  MRT_REQUIRE(omega_s.has_value());
  return SemigroupTransform{
      "lex_omega(" + s.name + ", " + t.name + ")",
      lex_omega_semigroup(s.add, t.add),
      std::make_shared<LexOmegaStFamily>(*omega_s, s.fns, t.fns),
      infer_lex_omega(StructureKind::SemigroupTransform, s.props, t.props)};
}

OrderTransform left(const OrderTransform& t) {
  return OrderTransform{"left(" + t.name + ")", t.ord,
                        fam_const_of_order(t.ord),
                        infer_left(t.props, probe_shape(*t.ord))};
}

OrderTransform right(const OrderTransform& s) {
  return OrderTransform{"right(" + s.name + ")", s.ord, fam_id(),
                        infer_right(s.props, probe_shape(*s.ord))};
}

OrderTransform fn_union(const OrderTransform& s, const OrderTransform& t) {
  // The paper's + requires both operands to live on the same preordered set.
  MRT_REQUIRE(s.ord == t.ord);
  return OrderTransform{"union(" + s.name + ", " + t.name + ")", s.ord,
                        fam_union(s.fns, t.fns),
                        infer_union(s.props, t.props)};
}

OrderTransform scoped(const OrderTransform& s, const OrderTransform& t) {
  // S ⊙ T = (S ⃗× left(T)) + (right(S) ⃗× T), assembled on one shared order
  // so that the union precondition holds by construction.
  const OrderShape s_shape = probe_shape(*s.ord);
  const OrderShape t_shape = probe_shape(*t.ord);
  const PropertyReport left_t = infer_left(t.props, t_shape);
  const PropertyReport right_s = infer_right(s.props, s_shape);
  const PropertyReport arm1 =
      infer_lex(StructureKind::OrderTransform, s.props, left_t);
  const PropertyReport arm2 =
      infer_lex(StructureKind::OrderTransform, right_s, t.props);

  PreorderPtr ord = lex_preorder(s.ord, t.ord);
  FnFamilyPtr inter = fam_pair(s.fns, fam_const_of_order(t.ord));
  FnFamilyPtr intra = fam_pair(fam_id(), t.fns);
  return OrderTransform{"scoped(" + s.name + ", " + t.name + ")", ord,
                        fam_union(inter, intra), infer_union(arm1, arm2)};
}

OrderTransform delta(const OrderTransform& s, const OrderTransform& t) {
  // S Δ T = (S ⃗× T) + (right(S) ⃗× T).
  const OrderShape s_shape = probe_shape(*s.ord);
  const PropertyReport right_s = infer_right(s.props, s_shape);
  const PropertyReport arm1 =
      infer_lex(StructureKind::OrderTransform, s.props, t.props);
  const PropertyReport arm2 =
      infer_lex(StructureKind::OrderTransform, right_s, t.props);

  PreorderPtr ord = lex_preorder(s.ord, t.ord);
  FnFamilyPtr inter = fam_pair(s.fns, t.fns);
  FnFamilyPtr intra = fam_pair(fam_id(), t.fns);
  return OrderTransform{"delta(" + s.name + ", " + t.name + ")", ord,
                        fam_union(inter, intra), infer_union(arm1, arm2)};
}

}  // namespace mrt
