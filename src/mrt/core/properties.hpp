// The property lattice of the metarouting system.
//
// Every algebra carries a `PropertyReport`: for each property of interest, a
// three-valued verdict (Proved / Refuted / Unknown) together with a
// provenance string — the inference rule that fired, or the counterexample
// found. This is the paper's central idea: algebraic properties required by
// routing algorithms are *derived* from the metalanguage expression, the way
// types are derived in programming languages, and because the derivation
// rules are exact (necessary and sufficient), failures are derivable too.
#pragma once

#include <array>
#include <string>
#include <vector>

namespace mrt {

/// Kleene three-valued truth.
enum class Tri : unsigned char { False, True, Unknown };

constexpr Tri tri_of(bool b) { return b ? Tri::True : Tri::False; }

constexpr Tri tri_and(Tri a, Tri b) {
  if (a == Tri::False || b == Tri::False) return Tri::False;
  if (a == Tri::True && b == Tri::True) return Tri::True;
  return Tri::Unknown;
}

constexpr Tri tri_or(Tri a, Tri b) {
  if (a == Tri::True || b == Tri::True) return Tri::True;
  if (a == Tri::False && b == Tri::False) return Tri::False;
  return Tri::Unknown;
}

constexpr Tri tri_not(Tri a) {
  if (a == Tri::True) return Tri::False;
  if (a == Tri::False) return Tri::True;
  return Tri::Unknown;
}

std::string to_string(Tri t);

/// The properties tracked across the four quadrants. Names follow the paper
/// (Figures 2 and 3); `_L`/`_R` are the left/right variants. Function-based
/// structures (transforms) use the `_L` slot for their single version.
enum class Prop : unsigned char {
  // Semigroup laws (of the summarization operation ⊕ unless noted).
  Assoc,        ///< associativity
  Comm,         ///< commutativity
  Idem,         ///< idempotence
  Selective,    ///< a ⊕ b ∈ {a, b}
  HasIdentity,  ///< α exists: α ⊕ a = a = a ⊕ α
  HasAbsorber,  ///< ω exists: ω ⊕ a = ω = a ⊕ ω
  MulAssoc,     ///< associativity of the computation operation ⊗

  // Preorder shape.
  Total,      ///< fullness: a ≲ b or b ≲ a (preference relation)
  Antisym,    ///< antisymmetry
  HasTop,     ///< a greatest (least preferred) element exists
  HasBottom,  ///< a least (most preferred) element exists
  OneClass,   ///< a single equivalence class (every element is a top)

  // Global-optima properties (Fig. 2): monotone / cancellative-ish / condensed.
  M_L, M_R,
  N_L, N_R,
  C_L, C_R,

  // Local-optima properties (Fig. 3) and refinements.
  ND_L, ND_R,    ///< nondecreasing
  Inc_L, Inc_R,  ///< increasing (strict below ⊤, per Fig. 3)
  SInc_L, SInc_R,///< strictly increasing at *every* element (refinement; no ⊤ exemption)
  TFix_L, TFix_R,///< the top is fixed up to equivalence: f(⊤) ~ ⊤ (paper's T)

  Count_  // sentinel
};

constexpr std::size_t kPropCount = static_cast<std::size_t>(Prop::Count_);

std::string to_string(Prop p);

/// Verdict plus provenance for one property.
struct PropStatus {
  Tri value = Tri::Unknown;
  std::string why;  ///< inference rule, proof note, or counterexample
};

/// Property verdicts for one algebra.
class PropertyReport {
 public:
  const PropStatus& get(Prop p) const { return slots_[index(p)]; }
  Tri value(Prop p) const { return slots_[index(p)].value; }
  bool proved(Prop p) const { return value(p) == Tri::True; }
  bool refuted(Prop p) const { return value(p) == Tri::False; }

  void set(Prop p, Tri v, std::string why);
  void set(Prop p, bool v, std::string why) { set(p, tri_of(v), std::move(why)); }

  /// Sets only if currently Unknown (used when a checker refines a report).
  void refine(Prop p, Tri v, std::string why);

  /// All properties with a definite verdict.
  std::vector<Prop> known() const;

 private:
  static std::size_t index(Prop p) { return static_cast<std::size_t>(p); }
  std::array<PropStatus, kPropCount> slots_;
};

/// Which structure family a report belongs to; used to pick the relevant
/// property subset for display and checking.
enum class StructureKind : unsigned char {
  Semigroup,
  Preorder,
  Bisemigroup,
  OrderSemigroup,
  SemigroupTransform,
  OrderTransform,
};

std::string to_string(StructureKind k);

/// Properties meaningful for a structure family, in display order.
const std::vector<Prop>& props_for(StructureKind k);

}  // namespace mrt
