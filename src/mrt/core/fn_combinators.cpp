#include <utility>

#include "mrt/core/lex.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

class PairFamily : public FunctionFamily {
 public:
  PairFamily(FnFamilyPtr f, FnFamilyPtr g)
      : f_(std::move(f)), g_(std::move(g)) {
    MRT_REQUIRE(f_ != nullptr && g_ != nullptr);
  }

  std::string name() const override {
    return "pair(" + f_->name() + ", " + g_->name() + ")";
  }

  Value apply(const Value& label, const Value& a) const override {
    return Value::pair(f_->apply(label.first(), a.first()),
                       g_->apply(label.second(), a.second()));
  }

  std::optional<ValueVec> labels() const override {
    auto lf = f_->labels();
    auto lg = g_->labels();
    if (!lf || !lg) return std::nullopt;
    ValueVec out;
    out.reserve(lf->size() * lg->size());
    for (const Value& x : *lf) {
      for (const Value& y : *lg) out.push_back(Value::pair(x, y));
    }
    return out;
  }

  ValueVec sample_labels(Rng& rng, int n) const override {
    ValueVec xs = f_->sample_labels(rng, n);
    ValueVec ys = g_->sample_labels(rng, n);
    ValueVec out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      out.push_back(Value::pair(xs[static_cast<std::size_t>(i)],
                                ys[static_cast<std::size_t>(i)]));
    }
    return out;
  }

  FamilyDesc describe() const override {
    FamilyDesc d;
    d.k = FamilyDesc::K::Pair;
    d.kids = {f_->describe(), g_->describe()};
    return d;
  }

 private:
  FnFamilyPtr f_, g_;
};

class UnionFamily : public FunctionFamily {
 public:
  UnionFamily(FnFamilyPtr f, FnFamilyPtr g)
      : f_(std::move(f)), g_(std::move(g)) {
    MRT_REQUIRE(f_ != nullptr && g_ != nullptr);
  }

  std::string name() const override {
    return "union(" + f_->name() + ", " + g_->name() + ")";
  }

  Value apply(const Value& label, const Value& a) const override {
    // Tags exist only to keep the two sides disjoint; application ignores
    // them (paper section II).
    MRT_REQUIRE(label.is_tagged());
    if (label.tag() == 1) return f_->apply(label.untagged(), a);
    MRT_REQUIRE(label.tag() == 2);
    return g_->apply(label.untagged(), a);
  }

  std::optional<ValueVec> labels() const override {
    auto lf = f_->labels();
    auto lg = g_->labels();
    if (!lf || !lg) return std::nullopt;
    ValueVec out;
    out.reserve(lf->size() + lg->size());
    for (const Value& x : *lf) out.push_back(Value::tagged(1, x));
    for (const Value& y : *lg) out.push_back(Value::tagged(2, y));
    return out;
  }

  ValueVec sample_labels(Rng& rng, int n) const override {
    ValueVec out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      if (rng.chance(0.5)) {
        out.push_back(Value::tagged(1, f_->sample_labels(rng, 1)[0]));
      } else {
        out.push_back(Value::tagged(2, g_->sample_labels(rng, 1)[0]));
      }
    }
    return out;
  }

  FamilyDesc describe() const override {
    FamilyDesc d;
    d.k = FamilyDesc::K::Union;
    d.kids = {f_->describe(), g_->describe()};
    return d;
  }

 private:
  FnFamilyPtr f_, g_;
};

// Constant functions onto a preorder's carrier, with labels drawn from the
// order itself so that it works on infinite carriers too.
class ConstOfOrderFamily : public FunctionFamily {
 public:
  explicit ConstOfOrderFamily(PreorderPtr ord) : ord_(std::move(ord)) {
    MRT_REQUIRE(ord_ != nullptr);
  }

  std::string name() const override {
    return "{const b | b in " + ord_->name() + "}";
  }

  Value apply(const Value& label, const Value&) const override {
    return label;
  }

  std::optional<ValueVec> labels() const override {
    return ord_->enumerate();
  }

  ValueVec sample_labels(Rng& rng, int n) const override {
    return ord_->sample(rng, n);
  }

  FamilyDesc describe() const override {
    FamilyDesc d;
    d.k = FamilyDesc::K::Const;
    return d;
  }

 private:
  PreorderPtr ord_;
};

}  // namespace

FnFamilyPtr fam_pair(FnFamilyPtr f, FnFamilyPtr g) {
  return std::make_shared<PairFamily>(std::move(f), std::move(g));
}

FnFamilyPtr fam_union(FnFamilyPtr f, FnFamilyPtr g) {
  return std::make_shared<UnionFamily>(std::move(f), std::move(g));
}

FnFamilyPtr fam_const_of_order(PreorderPtr ord) {
  return std::make_shared<ConstOfOrderFamily>(std::move(ord));
}

}  // namespace mrt
