// Dynamic route-weight values.
//
// Every algebra in the dynamic (metalanguage) layer operates on `Value`: a
// small structural datatype closed under the constructions the paper uses —
// integers, reals, +infinity, the Szendrei absorber `omega`, tuples (for
// direct and lexicographic products) and tagged values (for disjoint unions).
//
// Values are immutable, cheap to copy (tuple payloads are shared), totally
// ordered by an arbitrary-but-canonical structural order (used for
// deterministic tie-breaking and for set containers — *not* a route
// preference), and hashable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mrt {

class Value;
using ValueVec = std::vector<Value>;

class Value {
 public:
  enum class Kind : std::uint8_t { Unit, Int, Real, Inf, Omega, Tuple, Tagged };

  /// Default-constructs the unit value.
  Value() : kind_(Kind::Unit) {}

  // -- Factories ------------------------------------------------------------
  static Value unit() { return Value(); }
  static Value integer(std::int64_t v);
  static Value real(double v);
  /// Positive infinity (the "unreachable" weight of e.g. shortest paths).
  static Value inf();
  /// The Szendrei absorber: the collapsed error/absorbing element of a
  /// lexicographic-omega product (paper section VI).
  static Value omega();
  static Value tuple(ValueVec elems);
  static Value pair(Value a, Value b);
  static Value tagged(int tag, Value v);

  // -- Observers ------------------------------------------------------------
  Kind kind() const { return kind_; }
  bool is_int() const { return kind_ == Kind::Int; }
  bool is_inf() const { return kind_ == Kind::Inf; }
  bool is_omega() const { return kind_ == Kind::Omega; }
  bool is_tuple() const { return kind_ == Kind::Tuple; }
  bool is_tagged() const { return kind_ == Kind::Tagged; }

  std::int64_t as_int() const;
  double as_real() const;
  const ValueVec& as_tuple() const;
  /// First / second component of a 2-tuple.
  const Value& first() const;
  const Value& second() const;
  int tag() const;
  /// Payload of a tagged value.
  const Value& untagged() const;

  // -- Structural equality / canonical order / hash --------------------------
  /// Three-way structural comparison: negative, zero, positive. The two
  /// cases that dominate the routing and checker hot loops — mismatched
  /// kinds and Int/Int — resolve inline without a function call; everything
  /// else falls through to the out-of-line walk.
  int compare(const Value& other) const {
    if (kind_ != other.kind_) {
      return static_cast<int>(kind_) < static_cast<int>(other.kind_) ? -1 : 1;
    }
    if (kind_ == Kind::Int) {
      if (int_ != other.int_) return int_ < other.int_ ? -1 : 1;
      return 0;
    }
    return compare_slow(other);
  }
  bool operator==(const Value& other) const { return compare(other) == 0; }
  bool operator!=(const Value& other) const { return compare(other) != 0; }
  bool operator<(const Value& other) const { return compare(other) < 0; }

  std::size_t hash() const;
  std::string to_string() const;

 private:
  /// Same-kind, non-Int comparison (the cold remainder of compare()).
  int compare_slow(const Value& other) const;

  Kind kind_;
  int tag_ = 0;
  std::int64_t int_ = 0;
  double real_ = 0.0;
  // Tuple elements, or the single payload of a tagged value; shared so that
  // copying product weights around route tables is O(1).
  std::shared_ptr<const ValueVec> kids_;
};

struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.hash(); }
};

/// Canonically sorts and removes exact duplicates (set normal form used by
/// the min-set translation).
ValueVec normalize_set(ValueVec xs);

}  // namespace mrt
