#include <utility>

#include "mrt/core/lex.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

class LexSemigroup : public Semigroup {
 public:
  LexSemigroup(SemigroupPtr s, SemigroupPtr t)
      : s_(std::move(s)), t_(std::move(t)) {
    MRT_REQUIRE(s_ != nullptr && t_ != nullptr);
  }

  std::string name() const override {
    return "lex(" + s_->name() + ", " + t_->name() + ")";
  }

  bool contains(const Value& v) const override {
    return v.is_tuple() && v.as_tuple().size() == 2 &&
           s_->contains(v.first()) && t_->contains(v.second());
  }

  Value op(const Value& a, const Value& b) const override {
    const Value s = s_->op(a.first(), b.first());
    const bool is_a = s == a.first();
    const bool is_b = s == b.first();
    if (is_a && is_b) return Value::pair(s, t_->op(a.second(), b.second()));
    if (is_a) return Value::pair(s, a.second());
    if (is_b) return Value::pair(s, b.second());
    // Fourth case: s1 ⊕ s2 is a third element; the T component must be the
    // identity α_T (Theorem 2's definedness condition).
    auto alpha = t_->identity();
    if (!alpha) {
      throw std::logic_error(
          "lex product undefined at (" + a.to_string() + ", " + b.to_string() +
          "): first factor is not selective here and second factor (" +
          t_->name() + ") has no identity");
    }
    return Value::pair(s, *alpha);
  }

  std::optional<Value> identity() const override {
    auto is = s_->identity();
    auto it = t_->identity();
    if (is && it) return Value::pair(*is, *it);
    return std::nullopt;
  }

  std::optional<Value> absorber() const override {
    auto ws = s_->absorber();
    auto wt = t_->absorber();
    if (ws && wt) return Value::pair(*ws, *wt);
    return std::nullopt;
  }

  std::optional<ValueVec> enumerate() const override {
    auto es = s_->enumerate();
    auto et = t_->enumerate();
    if (!es || !et) return std::nullopt;
    ValueVec out;
    out.reserve(es->size() * et->size());
    for (const Value& x : *es) {
      for (const Value& y : *et) out.push_back(Value::pair(x, y));
    }
    return out;
  }

  ValueVec sample(Rng& rng, int n) const override {
    ValueVec xs = s_->sample(rng, n);
    ValueVec ys = t_->sample(rng, n);
    ValueVec out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      out.push_back(Value::pair(xs[static_cast<std::size_t>(i)],
                                ys[static_cast<std::size_t>(i)]));
    }
    return out;
  }

  SemigroupDesc describe() const override {
    SemigroupDesc d;
    d.k = SemigroupDesc::K::Lex;
    d.kids = {s_->describe(), t_->describe()};
    return d;
  }

 protected:
  SemigroupPtr s_, t_;
};

class DirectSemigroup : public Semigroup {
 public:
  DirectSemigroup(SemigroupPtr s, SemigroupPtr t)
      : s_(std::move(s)), t_(std::move(t)) {
    MRT_REQUIRE(s_ != nullptr && t_ != nullptr);
  }

  std::string name() const override {
    return "prod(" + s_->name() + ", " + t_->name() + ")";
  }
  bool contains(const Value& v) const override {
    return v.is_tuple() && v.as_tuple().size() == 2 &&
           s_->contains(v.first()) && t_->contains(v.second());
  }
  Value op(const Value& a, const Value& b) const override {
    return Value::pair(s_->op(a.first(), b.first()),
                       t_->op(a.second(), b.second()));
  }
  std::optional<Value> identity() const override {
    auto is = s_->identity();
    auto it = t_->identity();
    if (is && it) return Value::pair(*is, *it);
    return std::nullopt;
  }
  std::optional<Value> absorber() const override {
    auto ws = s_->absorber();
    auto wt = t_->absorber();
    if (ws && wt) return Value::pair(*ws, *wt);
    return std::nullopt;
  }
  std::optional<ValueVec> enumerate() const override {
    auto es = s_->enumerate();
    auto et = t_->enumerate();
    if (!es || !et) return std::nullopt;
    ValueVec out;
    out.reserve(es->size() * et->size());
    for (const Value& x : *es) {
      for (const Value& y : *et) out.push_back(Value::pair(x, y));
    }
    return out;
  }
  ValueVec sample(Rng& rng, int n) const override {
    ValueVec xs = s_->sample(rng, n);
    ValueVec ys = t_->sample(rng, n);
    ValueVec out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      out.push_back(Value::pair(xs[static_cast<std::size_t>(i)],
                                ys[static_cast<std::size_t>(i)]));
    }
    return out;
  }

  SemigroupDesc describe() const override {
    SemigroupDesc d;
    d.k = SemigroupDesc::K::Direct;
    d.kids = {s_->describe(), t_->describe()};
    return d;
  }

 private:
  SemigroupPtr s_, t_;
};

// Szendrei's absorber-collapsing lexicographic product (paper section VI).
class LexOmegaSemigroup : public Semigroup {
 public:
  LexOmegaSemigroup(SemigroupPtr s, SemigroupPtr t)
      : s_(std::move(s)), t_(std::move(t)) {
    MRT_REQUIRE(s_ != nullptr && t_ != nullptr);
    auto w = s_->absorber();
    MRT_REQUIRE(w.has_value());  // ⃗×_ω needs ω_S to collapse onto
    omega_s_ = *w;
    lex_ = std::make_shared<LexSemigroup>(s_, t_);
  }

  std::string name() const override {
    return "lex_omega(" + s_->name() + ", " + t_->name() + ")";
  }

  bool contains(const Value& v) const override {
    if (v.is_omega()) return true;
    return v.is_tuple() && v.as_tuple().size() == 2 &&
           s_->contains(v.first()) && v.first() != omega_s_ &&
           t_->contains(v.second());
  }

  Value op(const Value& a, const Value& b) const override {
    if (a.is_omega() || b.is_omega()) return Value::omega();
    const Value s = s_->op(a.first(), b.first());
    if (s == omega_s_) return Value::omega();
    return lex_->op(a, b);
  }

  std::optional<Value> identity() const override {
    auto is = s_->identity();
    auto it = t_->identity();
    if (is && it && *is != omega_s_) return Value::pair(*is, *it);
    return std::nullopt;
  }

  std::optional<Value> absorber() const override { return Value::omega(); }

  std::optional<ValueVec> enumerate() const override {
    auto es = s_->enumerate();
    auto et = t_->enumerate();
    if (!es || !et) return std::nullopt;
    ValueVec out;
    out.push_back(Value::omega());
    for (const Value& x : *es) {
      if (x == omega_s_) continue;
      for (const Value& y : *et) out.push_back(Value::pair(x, y));
    }
    return out;
  }

  ValueVec sample(Rng& rng, int n) const override {
    ValueVec xs = s_->sample(rng, n);
    ValueVec ys = t_->sample(rng, n);
    ValueVec out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const Value& x = xs[static_cast<std::size_t>(i)];
      if (x == omega_s_) {
        out.push_back(Value::omega());
      } else {
        out.push_back(Value::pair(x, ys[static_cast<std::size_t>(i)]));
      }
    }
    return out;
  }

 private:
  SemigroupPtr s_, t_;
  Value omega_s_;
  SemigroupPtr lex_;
};

}  // namespace

SemigroupPtr lex_semigroup(SemigroupPtr s, SemigroupPtr t) {
  return std::make_shared<LexSemigroup>(std::move(s), std::move(t));
}

SemigroupPtr direct_semigroup(SemigroupPtr s, SemigroupPtr t) {
  return std::make_shared<DirectSemigroup>(std::move(s), std::move(t));
}

SemigroupPtr lex_omega_semigroup(SemigroupPtr s, SemigroupPtr t) {
  return std::make_shared<LexOmegaSemigroup>(std::move(s), std::move(t));
}

}  // namespace mrt
