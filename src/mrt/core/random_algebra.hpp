// Random finite algebras: the raw material of the theorem-validation sweeps.
//
// Every generator is deterministic in the supplied Rng, and each is designed
// so that both sides of the paper's iff characterizations occur with useful
// frequency (e.g. monotone function families are generated *by construction*
// often enough that M(S ⃗× T) = true cases are well represented).
#pragma once

#include "mrt/core/quadrants.hpp"
#include "mrt/support/rng.hpp"

namespace mrt {

struct RandomConfig {
  int min_elems = 2;
  int max_elems = 4;
  int min_fns = 1;
  int max_fns = 3;
};

/// A random total preorder (ranking with ties) on {0..n-1}.
PreorderPtr random_total_preorder(Rng& rng, int n);

/// A random preorder on {0..n-1}: random relation, reflexive-transitively
/// closed (may contain equivalences and incomparabilities).
PreorderPtr random_preorder(Rng& rng, int n);

/// A random commutative idempotent semigroup (= finite semilattice),
/// built as an intersection-closed family of bitmask sets. At most
/// 2^width elements. With `with_identity`, the ground set is included
/// (making it a monoid).
SemigroupPtr random_semilattice(Rng& rng, int width, bool with_identity);

/// A random *selective* commutative idempotent semigroup: min over a random
/// total order on {0..n-1}.
SemigroupPtr random_chain_semilattice(Rng& rng, int n);

/// A completely random magma on {0..n-1} (rarely associative) — legitimate
/// for the product theorems, whose statements never use associativity.
SemigroupPtr random_magma(Rng& rng, int n);

/// How function families are biased during generation.
enum class FnStyle {
  Arbitrary,  ///< uniform random functions
  Monotone,   ///< order-preserving (rejection-sampled; falls back to consts)
  NonDecreasing,  ///< a ≲ f(a) pointwise
  Increasing,     ///< a < f(a) below the top, top fixed
  ConstId,    ///< a mix of constant functions and the identity
};

/// A random function family over carrier {0..n-1}. Styles other than
/// Arbitrary are relative to `ord` (which must be non-null for them).
FnFamilyPtr random_fn_family(Rng& rng, int n, int nfns, FnStyle style,
                             const PreorderSet* ord);

/// Assembled random structures (components get checker-derived reports in
/// the sweeps, not here).
OrderTransform random_order_transform(Rng& rng, const RandomConfig& cfg = {});
OrderSemigroup random_order_semigroup(Rng& rng, const RandomConfig& cfg = {});
SemigroupTransform random_semigroup_transform(Rng& rng,
                                              const RandomConfig& cfg = {});
Bisemigroup random_bisemigroup(Rng& rng, const RandomConfig& cfg = {});

}  // namespace mrt
