// Quadrant-level combinators: the operators of the metarouting language.
//
// Each combinator assembles the component product (lex.hpp) *and* derives
// the property report of the result via the inference engine — properties
// are computed at construction, like types at elaboration.
#pragma once

#include "mrt/core/quadrants.hpp"

namespace mrt {

/// Lexicographic product S ⃗× T, per quadrant (paper section IV).
Bisemigroup lex(const Bisemigroup& s, const Bisemigroup& t);
OrderSemigroup lex(const OrderSemigroup& s, const OrderSemigroup& t);
SemigroupTransform lex(const SemigroupTransform& s,
                       const SemigroupTransform& t);
OrderTransform lex(const OrderTransform& s, const OrderTransform& t);

/// Direct (componentwise) product S × T on order transforms: both metrics
/// count equally, so the preference is a genuine partial order and best
/// routes form Pareto frontiers (solve with minset_bellman).
OrderTransform direct(const OrderTransform& s, const OrderTransform& t);

/// Szendrei products ⃗×_ω (paper section VI): the S-side top/absorber
/// collapses the whole pair to a single error element ω.
/// Requires S.ord to have a top (order transform) / S.add an absorber
/// (semigroup transform).
OrderTransform lex_omega(const OrderTransform& s, const OrderTransform& t);
SemigroupTransform lex_omega(const SemigroupTransform& s,
                             const SemigroupTransform& t);

/// left(T) = (T, ≲, {κ_b | b ∈ T}): BGP local-preference flavour.
OrderTransform left(const OrderTransform& t);

/// right(S) = (S, ≲, {id}): BGP origin flavour.
OrderTransform right(const OrderTransform& s);

/// Disjoint function union S + T. Precondition: both operands share the
/// same order component (same object).
OrderTransform fn_union(const OrderTransform& s, const OrderTransform& t);

/// Adjoins a fresh ⊤ ("invalid route" φ) strictly above everything; every
/// function fixes it. Turns a ⊤-free theory algebra into a Sobrinho routing
/// algebra. Exact rules include the pleasing I(add_top(S)) ⟺ SI(S): the old
/// maximal elements lose their exemption.
/// Precondition: the carrier does not already contain ω (e.g. a lex_omega
/// product) — the sentinel must be fresh.
OrderTransform add_top(const OrderTransform& s);

/// Scoped product S ⊙ T = (S ⃗× left(T)) + (right(S) ⃗× T): BGP-like
/// region partitioning (paper section II). Inter-region arcs transform S
/// and *originate* a fresh T component; intra-region arcs copy S.
OrderTransform scoped(const OrderTransform& s, const OrderTransform& t);

/// S Δ T = (S ⃗× T) + (right(S) ⃗× T): OSPF-area-like partitioning.
OrderTransform delta(const OrderTransform& s, const OrderTransform& t);

}  // namespace mrt
