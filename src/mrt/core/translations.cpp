#include "mrt/core/translations.hpp"

#include <utility>

#include "mrt/core/preorder_set.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

// F = { λy. x ⊗ y | x ∈ S }, labels drawn from the carrier itself.
class CayleyFamily : public FunctionFamily {
 public:
  explicit CayleyFamily(SemigroupPtr mul) : mul_(std::move(mul)) {
    MRT_REQUIRE(mul_ != nullptr);
  }
  std::string name() const override {
    return "{" + mul_->name() + "(x, .) | x}";
  }
  Value apply(const Value& label, const Value& a) const override {
    return mul_->op(label, a);
  }
  std::optional<ValueVec> labels() const override { return mul_->enumerate(); }
  ValueVec sample_labels(Rng& rng, int n) const override {
    return mul_->sample(rng, n);
  }

 private:
  SemigroupPtr mul_;
};

// Copies the property slots whose statements are literally identical across
// the translation (left multiplications ⇔ quantification over x).
void copy_props(PropertyReport& dst, const PropertyReport& src,
                std::initializer_list<Prop> props, const char* why) {
  for (Prop p : props) {
    if (src.value(p) != Tri::Unknown) {
      dst.set(p, src.value(p), std::string(why) + ": " + src.get(p).why);
    }
  }
}

class NaturalOrderPreorder : public PreorderSet {
 public:
  NaturalOrderPreorder(SemigroupPtr s, bool left)
      : s_(std::move(s)), left_(left) {
    MRT_REQUIRE(s_ != nullptr);
  }

  std::string name() const override {
    return std::string(left_ ? "NO_L(" : "NO_R(") + s_->name() + ")";
  }
  bool contains(const Value& v) const override { return s_->contains(v); }
  bool leq(const Value& a, const Value& b) const override {
    return left_ ? a == s_->op(a, b) : b == s_->op(a, b);
  }
  bool is_top(const Value& v) const override {
    // For ≲L the unique top (if any) is the ⊕-identity; for ≲R the absorber.
    if (auto t = left_ ? s_->identity() : s_->absorber()) return v == *t;
    auto enumd = s_->enumerate();
    if (enumd) return PreorderSet::is_top(v);
    return false;  // infinite carrier, no declared witness: claim none
  }
  bool has_top() const override {
    if ((left_ ? s_->identity() : s_->absorber()).has_value()) return true;
    auto enumd = s_->enumerate();
    if (enumd) return PreorderSet::has_top();
    return false;
  }
  std::optional<ValueVec> enumerate() const override {
    return s_->enumerate();
  }
  ValueVec sample(Rng& rng, int n) const override {
    return s_->sample(rng, n);
  }

 private:
  SemigroupPtr s_;
  bool left_;
};

// ---------------------------------------------------------------------------
// Min-set machinery. Min-sets are represented as canonically sorted tuples.
// ---------------------------------------------------------------------------

ValueVec tuple_to_set(const Value& v) { return v.as_tuple(); }

Value set_to_tuple(ValueVec xs) { return Value::tuple(normalize_set(std::move(xs))); }

class MinSetSemigroup : public Semigroup {
 public:
  explicit MinSetSemigroup(PreorderPtr ord) : ord_(std::move(ord)) {
    MRT_REQUIRE(ord_ != nullptr);
  }

  std::string name() const override { return "minsets(" + ord_->name() + ")"; }

  bool contains(const Value& v) const override {
    if (!v.is_tuple()) return false;
    const ValueVec& xs = v.as_tuple();
    for (const Value& x : xs) {
      if (!ord_->contains(x)) return false;
    }
    return min_set(*ord_, xs) == normalize_set(xs);
  }

  Value op(const Value& a, const Value& b) const override {
    ValueVec xs = tuple_to_set(a);
    const ValueVec& ys = tuple_to_set(b);
    xs.insert(xs.end(), ys.begin(), ys.end());
    return set_to_tuple(min_set(*ord_, xs));
  }

  std::optional<Value> identity() const override {
    return Value::tuple({});  // min(∅ ∪ B) = B
  }

  std::optional<ValueVec> enumerate() const override {
    auto enumd = ord_->enumerate();
    if (!enumd || enumd->size() > 10) return std::nullopt;
    // All min-closed subsets of the carrier.
    const std::size_t n = enumd->size();
    ValueVec out;
    for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
      ValueVec sub;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (std::size_t{1} << i)) sub.push_back((*enumd)[i]);
      }
      ValueVec norm = normalize_set(sub);
      if (min_set(*ord_, norm) == norm) out.push_back(Value::tuple(norm));
    }
    return out;
  }

  ValueVec sample(Rng& rng, int n) const override {
    ValueVec out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int k = static_cast<int>(rng.range(0, 3));
      ValueVec xs = ord_->sample(rng, k + 1);
      if (rng.chance(0.1)) xs.clear();
      out.push_back(set_to_tuple(min_set(*ord_, xs)));
    }
    return out;
  }

 private:
  PreorderPtr ord_;
};

class MinSetFamily : public FunctionFamily {
 public:
  MinSetFamily(PreorderPtr ord, FnFamilyPtr fns)
      : ord_(std::move(ord)), fns_(std::move(fns)) {}

  std::string name() const override { return "minset-" + fns_->name(); }

  Value apply(const Value& label, const Value& a) const override {
    ValueVec out;
    for (const Value& x : tuple_to_set(a)) {
      out.push_back(fns_->apply(label, x));
    }
    return set_to_tuple(min_set(*ord_, out));
  }

  std::optional<ValueVec> labels() const override { return fns_->labels(); }
  ValueVec sample_labels(Rng& rng, int n) const override {
    return fns_->sample_labels(rng, n);
  }

 private:
  PreorderPtr ord_;
  FnFamilyPtr fns_;
};

}  // namespace

SemigroupTransform cayley(const Bisemigroup& a) {
  SemigroupTransform out{"cayley(" + a.name + ")", a.add,
                         std::make_shared<CayleyFamily>(a.mul), {}};
  copy_props(out.props, a.props,
             {Prop::Assoc, Prop::Comm, Prop::Idem, Prop::Selective,
              Prop::HasIdentity, Prop::HasAbsorber},
             "carried by Cayley");
  // Left structure properties transfer verbatim: quantifying over f = x ⊗ ·
  // is quantifying over x.
  copy_props(out.props, a.props,
             {Prop::M_L, Prop::N_L, Prop::C_L, Prop::ND_L, Prop::Inc_L,
              Prop::SInc_L},
             "carried by Cayley");
  return out;
}

OrderTransform cayley(const OrderSemigroup& a) {
  OrderTransform out{"cayley(" + a.name + ")", a.ord,
                     std::make_shared<CayleyFamily>(a.mul), {}};
  copy_props(out.props, a.props,
             {Prop::Total, Prop::Antisym, Prop::HasTop, Prop::HasBottom},
             "order unchanged");
  copy_props(out.props, a.props,
             {Prop::M_L, Prop::N_L, Prop::C_L, Prop::ND_L, Prop::Inc_L,
              Prop::SInc_L, Prop::TFix_L},
             "carried by Cayley");
  return out;
}

PreorderPtr natural_order(SemigroupPtr s, bool left_order) {
  return std::make_shared<NaturalOrderPreorder>(std::move(s), left_order);
}

OrderSemigroup natural_order_left(const Bisemigroup& a) {
  return OrderSemigroup{"NO_L(" + a.name + ")", natural_order(a.add, true),
                        a.mul, {}};
}

OrderSemigroup natural_order_right(const Bisemigroup& a) {
  return OrderSemigroup{"NO_R(" + a.name + ")", natural_order(a.add, false),
                        a.mul, {}};
}

OrderTransform natural_order_left(const SemigroupTransform& a) {
  return OrderTransform{"NO_L(" + a.name + ")", natural_order(a.add, true),
                        a.fns, {}};
}

OrderTransform natural_order_right(const SemigroupTransform& a) {
  return OrderTransform{"NO_R(" + a.name + ")", natural_order(a.add, false),
                        a.fns, {}};
}

SemigroupPtr min_set_semigroup(PreorderPtr ord) {
  return std::make_shared<MinSetSemigroup>(std::move(ord));
}

SemigroupTransform min_set_transform(const OrderTransform& a) {
  SemigroupTransform out{"minset(" + a.name + ")", min_set_semigroup(a.ord),
                         std::make_shared<MinSetFamily>(a.ord, a.fns), {}};
  out.props.set(Prop::Assoc, Tri::True, "min-set-map is a reduction");
  out.props.set(Prop::Comm, Tri::True, "union is commutative");
  out.props.set(Prop::Idem, Tri::True, "min(A u A) = A");
  out.props.set(Prop::HasIdentity, Tri::True, "the empty set");
  return out;
}

}  // namespace mrt
