// Rendering of property reports — the user-visible face of the inference
// engine ("show props" in the metalanguage).
#pragma once

#include <string>

#include "mrt/core/quadrants.hpp"

namespace mrt {

/// Renders one report as an aligned table (property / verdict / provenance).
std::string render_report(const std::string& name, StructureKind kind,
                          const PropertyReport& report);

std::string describe(const Bisemigroup& a);
std::string describe(const OrderSemigroup& a);
std::string describe(const SemigroupTransform& a);
std::string describe(const OrderTransform& a);

/// One-line summary of the headline routing properties:
/// "M=yes ND=yes I=no ..." — used in experiment tables.
std::string summary_line(const PropertyReport& report, StructureKind kind);

}  // namespace mrt
