#include "mrt/core/checker.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>

#include "mrt/obs/obs.hpp"
#include "mrt/par/par.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

// Flushes the oracle's work counters to the registry on scope exit, covering
// every return path of forall(). Counting into locals keeps the per-tuple
// cost to one increment.
struct OracleCounters {
  std::uint64_t tuples = 0;
  std::uint64_t samples = 0;
  bool exhaustive = false;
  bool refuted = false;
  ~OracleCounters() {
    if (!obs::enabled()) return;
    obs::Registry& reg = obs::registry();
    reg.counter("checker.oracle_checks").add(1);
    reg.counter("checker.tuples_examined").add(tuples);
    reg.counter("checker.samples_drawn").add(samples);
    reg.counter(exhaustive ? "checker.exhaustive_checks"
                           : "checker.sampled_checks")
        .add(1);
    if (refuted) reg.counter("checker.refutations").add(1);
  }
};

// One quantifier position: either a finite list (exhaustible) or a sampler.
class Draw {
 public:
  static Draw finite(ValueVec xs) {
    Draw d;
    d.elems_ = std::move(xs);
    return d;
  }
  static Draw sampled(std::function<Value(Rng&)> f) {
    Draw d;
    d.sampler_ = std::move(f);
    return d;
  }

  bool is_finite() const { return !sampler_; }
  const ValueVec& elems() const { return elems_; }
  Value draw(Rng& rng) const {
    if (sampler_) return sampler_(rng);
    MRT_REQUIRE(!elems_.empty());
    return elems_[static_cast<std::size_t>(rng.below(elems_.size()))];
  }

 private:
  ValueVec elems_;
  std::function<Value(Rng&)> sampler_;
};

using Violation = std::optional<std::string>;
using Body = std::function<Violation(const ValueVec&)>;

// Tuple spaces at least this large are split across the worker pool; below
// it the sequential odometer wins on overhead (and both paths produce the
// same verdict, counterexample, and counters by construction).
constexpr std::size_t kParMinTuples = 4096;
// Indices per work chunk: large enough to amortize chunk dispatch, small
// enough that early exit on refutation wastes little work.
constexpr std::size_t kParGrain = 1024;

// Parallel exhaustive sweep of a finite tuple space. Linear index L decodes
// to the same tuple the sequential odometer visits at step L (position 0 is
// the fastest-varying digit), and workers cooperatively stop scanning past
// the lowest violation found so far. Because chunks are claimed in ascending
// order and every index below the current best still gets scanned by the
// chunk that owns it, the *canonical* (lowest-index) counterexample is
// always the one reported — output is independent of the thread count.
CheckResult forall_exhaustive_par(const std::vector<Draw>& positions,
                                  std::size_t total,
                                  OracleCounters& obs_counts,
                                  const Body& body) {
  const std::size_t np = positions.size();
  std::atomic<std::size_t> best{total};
  std::atomic<std::uint64_t> examined{0};
  std::mutex mu;
  std::string best_msg;
  std::size_t best_msg_idx = total;
  par::parallel_for(total, kParGrain, [&](std::size_t b, std::size_t e) {
    ValueVec tuple(np);
    std::uint64_t local_tuples = 0;  // flushed once per chunk
    for (std::size_t L = b;
         L < e && L < best.load(std::memory_order_relaxed); ++L) {
      ++local_tuples;
      std::size_t rem = L;
      for (std::size_t i = 0; i < np; ++i) {
        const ValueVec& xs = positions[i].elems();
        tuple[i] = xs[rem % xs.size()];
        rem /= xs.size();
      }
      if (Violation v = body(tuple)) {
        std::lock_guard<std::mutex> lk(mu);
        if (L < best_msg_idx) {
          best_msg_idx = L;
          best_msg = *v;
        }
        std::size_t cur = best.load(std::memory_order_relaxed);
        while (L < cur && !best.compare_exchange_weak(
                              cur, L, std::memory_order_relaxed)) {
        }
        break;  // ascending scan: the first hit is this chunk's minimum
      }
    }
    examined.fetch_add(local_tuples, std::memory_order_relaxed);
  });
  obs_counts.tuples += examined.load(std::memory_order_relaxed);
  if (best.load(std::memory_order_relaxed) < total) {
    obs_counts.refuted = true;
    return {Tri::False, true, best_msg};
  }
  return {Tri::True, true,
          "exhaustive over " + std::to_string(total) + " tuples"};
}

// Universally quantified check over the given positions: exhaustive
// iteration (parallel for large spaces) when the tuple space is finite and
// within limits, sampling otherwise.
CheckResult forall(const std::vector<Draw>& positions, const CheckLimits& lim,
                   const Body& body) {
  OracleCounters obs_counts;
  bool all_finite = true;
  bool abandoned = false;  // finite space, but beyond lim.max_tuples
  std::size_t tuples = 1;
  for (const Draw& d : positions) {
    if (!d.is_finite()) {
      all_finite = false;
      break;
    }
    if (d.elems().empty()) {
      return {Tri::True, true, "vacuous: empty domain"};
    }
    const std::size_t sz = d.elems().size();
    if (tuples > std::numeric_limits<std::size_t>::max() / sz) {
      tuples = std::numeric_limits<std::size_t>::max();  // saturate
    } else {
      tuples *= sz;
    }
  }
  if (all_finite && tuples > lim.max_tuples) {
    all_finite = false;
    abandoned = true;
  }

  ValueVec tuple(positions.size());
  if (all_finite) {
    obs_counts.exhaustive = true;
    if (tuples >= kParMinTuples && par::thread_limit() > 1) {
      return forall_exhaustive_par(positions, tuples, obs_counts, body);
    }
    std::vector<std::size_t> idx(positions.size(), 0);
    for (;;) {
      ++obs_counts.tuples;
      for (std::size_t i = 0; i < positions.size(); ++i) {
        tuple[i] = positions[i].elems()[idx[i]];
      }
      if (Violation v = body(tuple)) {
        obs_counts.refuted = true;
        return {Tri::False, true, *v};
      }
      std::size_t i = 0;
      while (i < positions.size() &&
             ++idx[i] == positions[i].elems().size()) {
        idx[i] = 0;
        ++i;
      }
      if (i == positions.size()) break;
    }
    return {Tri::True, true,
            "exhaustive over " + std::to_string(tuples) + " tuples"};
  }

  Rng rng(lim.seed);
  for (int k = 0; k < lim.samples; ++k) {
    ++obs_counts.tuples;
    obs_counts.samples += positions.size();
    for (std::size_t i = 0; i < positions.size(); ++i) {
      tuple[i] = positions[i].draw(rng);
    }
    if (Violation v = body(tuple)) {
      obs_counts.refuted = true;
      return {Tri::False, false, *v};
    }
  }
  if (abandoned) {
    return {Tri::Unknown, false,
            "no counterexample in " + std::to_string(lim.samples) +
                " samples (covered " + std::to_string(lim.samples) + " of " +
                std::to_string(tuples) + " tuples; exhaustive cap " +
                std::to_string(lim.max_tuples) + ")"};
  }
  return {Tri::Unknown, false,
          "no counterexample in " + std::to_string(lim.samples) + " samples"};
}

Draw elem_draw(const std::optional<ValueVec>& enumd,
               std::function<Value(Rng&)> sampler, const CheckLimits& lim) {
  if (enumd && enumd->size() <= lim.max_enum) return Draw::finite(*enumd);
  return Draw::sampled(std::move(sampler));
}

Draw semigroup_draw(const Semigroup& s, const CheckLimits& lim) {
  return elem_draw(s.enumerate(),
                   [&s](Rng& rng) { return s.sample(rng, 1)[0]; }, lim);
}

Draw preorder_draw(const PreorderSet& p, const CheckLimits& lim) {
  return elem_draw(p.enumerate(),
                   [&p](Rng& rng) { return p.sample(rng, 1)[0]; }, lim);
}

Draw label_draw(const FunctionFamily& f, const CheckLimits& lim) {
  return elem_draw(f.labels(),
                   [&f](Rng& rng) { return f.sample_labels(rng, 1)[0]; }, lim);
}

std::string show2(const char* na, const Value& a, const char* nb,
                  const Value& b) {
  return std::string(na) + "=" + a.to_string() + ", " + nb + "=" +
         b.to_string();
}

std::string show3(const char* na, const Value& a, const char* nb,
                  const Value& b, const char* nc, const Value& c) {
  return show2(na, a, nb, b) + ", " + nc + "=" + c.to_string();
}

// Greatest elements visible to the checker: the enumerated tops of a finite
// order, or the sampled elements that `is_top` accepts.
std::pair<ValueVec, bool> visible_tops(const PreorderSet& p,
                                       const CheckLimits& lim) {
  auto enumd = p.enumerate();
  if (enumd && enumd->size() <= lim.max_enum) {
    return {tops(p), true};
  }
  Rng rng(lim.seed ^ 0x7055ULL);
  ValueVec found;
  for (const Value& v : p.sample(rng, 256)) {
    if (p.is_top(v) && found.end() == std::find(found.begin(), found.end(), v)) {
      found.push_back(v);
    }
  }
  return {found, false};
}

// ---------------------------------------------------------------------------
// Semigroup laws
// ---------------------------------------------------------------------------

CheckResult check_semigroup(const Semigroup& s, Prop p,
                            const CheckLimits& lim) {
  const Draw d = semigroup_draw(s, lim);
  switch (p) {
    case Prop::Assoc:
    case Prop::MulAssoc:
      return forall({d, d, d}, lim, [&](const ValueVec& t) -> Violation {
        if (s.op(s.op(t[0], t[1]), t[2]) != s.op(t[0], s.op(t[1], t[2]))) {
          return "(a.b).c != a.(b.c) at " +
                 show3("a", t[0], "b", t[1], "c", t[2]);
        }
        return std::nullopt;
      });
    case Prop::Comm:
      return forall({d, d}, lim, [&](const ValueVec& t) -> Violation {
        if (s.op(t[0], t[1]) != s.op(t[1], t[0])) {
          return "a.b != b.a at " + show2("a", t[0], "b", t[1]);
        }
        return std::nullopt;
      });
    case Prop::Idem:
      return forall({d}, lim, [&](const ValueVec& t) -> Violation {
        if (s.op(t[0], t[0]) != t[0]) {
          return "a.a != a at a=" + t[0].to_string();
        }
        return std::nullopt;
      });
    case Prop::Selective:
      return forall({d, d}, lim, [&](const ValueVec& t) -> Violation {
        const Value r = s.op(t[0], t[1]);
        if (r != t[0] && r != t[1]) {
          return "a.b is neither operand at " + show2("a", t[0], "b", t[1]);
        }
        return std::nullopt;
      });
    case Prop::HasIdentity: {
      if (auto e = s.identity()) {
        CheckResult r =
            forall({d}, lim, [&](const ValueVec& t) -> Violation {
              if (s.op(*e, t[0]) != t[0] || s.op(t[0], *e) != t[0]) {
                return "declared identity fails at a=" + t[0].to_string();
              }
              return std::nullopt;
            });
        if (r.verdict != Tri::False) {
          r.verdict = Tri::True;
          r.detail = "identity " + e->to_string() + " verified; " + r.detail;
        }
        return r;
      }
      auto enumd = s.enumerate();
      if (enumd && enumd->size() <= lim.max_enum) {
        for (const Value& e : *enumd) {
          if (acts_as_identity(s, e)) {
            return {Tri::True, true, "identity " + e.to_string()};
          }
        }
        return {Tri::False, true, "no element acts as identity"};
      }
      return {Tri::Unknown, false, "no declared identity; carrier infinite"};
    }
    case Prop::HasAbsorber: {
      if (auto w = s.absorber()) {
        CheckResult r =
            forall({d}, lim, [&](const ValueVec& t) -> Violation {
              if (s.op(*w, t[0]) != *w || s.op(t[0], *w) != *w) {
                return "declared absorber fails at a=" + t[0].to_string();
              }
              return std::nullopt;
            });
        if (r.verdict != Tri::False) {
          r.verdict = Tri::True;
          r.detail = "absorber " + w->to_string() + " verified; " + r.detail;
        }
        return r;
      }
      auto enumd = s.enumerate();
      if (enumd && enumd->size() <= lim.max_enum) {
        for (const Value& w : *enumd) {
          bool ok = true;
          for (const Value& x : *enumd) {
            if (s.op(w, x) != w || s.op(x, w) != w) {
              ok = false;
              break;
            }
          }
          if (ok) return {Tri::True, true, "absorber " + w.to_string()};
        }
        return {Tri::False, true, "no element acts as absorber"};
      }
      return {Tri::Unknown, false, "no declared absorber; carrier infinite"};
    }
    default:
      return {Tri::Unknown, false, "property not applicable to a semigroup"};
  }
}

// ---------------------------------------------------------------------------
// Preorder shape
// ---------------------------------------------------------------------------

CheckResult check_preorder(const PreorderSet& p, Prop q,
                           const CheckLimits& lim) {
  const Draw d = preorder_draw(p, lim);
  switch (q) {
    case Prop::Total:
      return forall({d, d}, lim, [&](const ValueVec& t) -> Violation {
        if (incomp_of(p.cmp(t[0], t[1]))) {
          return "incomparable: " + show2("a", t[0], "b", t[1]);
        }
        return std::nullopt;
      });
    case Prop::Antisym:
      return forall({d, d}, lim, [&](const ValueVec& t) -> Violation {
        if (equiv_of(p.cmp(t[0], t[1])) && t[0] != t[1]) {
          return "a ~ b with a != b: " + show2("a", t[0], "b", t[1]);
        }
        return std::nullopt;
      });
    case Prop::HasTop: {
      auto enumd = p.enumerate();
      if (enumd && enumd->size() <= lim.max_enum) {
        ValueVec ts = tops(p);
        if (ts.empty()) return {Tri::False, true, "no greatest element"};
        return {Tri::True, true, "top " + ts.front().to_string()};
      }
      return {tri_of(p.has_top()), false, "declared by the order"};
    }
    case Prop::OneClass:
      return forall({d, d}, lim, [&](const ValueVec& t) -> Violation {
        if (!equiv_of(p.cmp(t[0], t[1]))) {
          return "not equivalent: " + show2("a", t[0], "b", t[1]);
        }
        return std::nullopt;
      });
    case Prop::HasBottom: {
      auto enumd = p.enumerate();
      if (enumd && enumd->size() <= lim.max_enum) {
        ValueVec bs = bottoms(p);
        if (bs.empty()) return {Tri::False, true, "no least element"};
        return {Tri::True, true, "bottom " + bs.front().to_string()};
      }
      return {Tri::Unknown, false, "carrier infinite"};
    }
    default:
      return {Tri::Unknown, false, "property not applicable to a preorder"};
  }
}

// ---------------------------------------------------------------------------
// Structure properties. `mul` is presented as left application a ↦ c ⊗ a or
// right application a ↦ a ⊗ c via a closure, which unifies the order
// semigroup and order transform cases.
// ---------------------------------------------------------------------------

using Apply = std::function<Value(const Value& fn, const Value& arg)>;

CheckResult check_ordered_props(const PreorderSet& ord, const Draw& elems,
                                const Draw& fns, const Apply& ap, Prop p,
                                const CheckLimits& lim) {
  switch (p) {
    case Prop::M_L:
    case Prop::M_R:
      return forall({fns, elems, elems}, lim,
                    [&](const ValueVec& t) -> Violation {
        if (ord.leq(t[1], t[2]) && !ord.leq(ap(t[0], t[1]), ap(t[0], t[2]))) {
          return "a <= b but f(a) !<= f(b): " +
                 show3("f", t[0], "a", t[1], "b", t[2]);
        }
        return std::nullopt;
      });
    case Prop::N_L:
    case Prop::N_R:
      return forall({fns, elems, elems}, lim,
                    [&](const ValueVec& t) -> Violation {
        const Cmp out = ord.cmp(ap(t[0], t[1]), ap(t[0], t[2]));
        const Cmp in = ord.cmp(t[1], t[2]);
        if (out == Cmp::Equiv && (in == Cmp::Less || in == Cmp::Greater)) {
          return "f(a) ~ f(b) but a, b strictly ordered: " +
                 show3("f", t[0], "a", t[1], "b", t[2]);
        }
        return std::nullopt;
      });
    case Prop::C_L:
    case Prop::C_R:
      return forall({fns, elems, elems}, lim,
                    [&](const ValueVec& t) -> Violation {
        if (!equiv_of(ord.cmp(ap(t[0], t[1]), ap(t[0], t[2])))) {
          return "f(a) !~ f(b): " + show3("f", t[0], "a", t[1], "b", t[2]);
        }
        return std::nullopt;
      });
    case Prop::ND_L:
    case Prop::ND_R:
      return forall({fns, elems}, lim, [&](const ValueVec& t) -> Violation {
        if (!ord.leq(t[1], ap(t[0], t[1]))) {
          return "a !<= f(a): " + show2("f", t[0], "a", t[1]);
        }
        return std::nullopt;
      });
    case Prop::Inc_L:
    case Prop::Inc_R:
      return forall({fns, elems}, lim, [&](const ValueVec& t) -> Violation {
        if (!ord.is_top(t[1]) && !lt_of(ord.cmp(t[1], ap(t[0], t[1])))) {
          return "a != top but a !< f(a): " + show2("f", t[0], "a", t[1]);
        }
        return std::nullopt;
      });
    case Prop::SInc_L:
    case Prop::SInc_R:
      return forall({fns, elems}, lim, [&](const ValueVec& t) -> Violation {
        if (!lt_of(ord.cmp(t[1], ap(t[0], t[1])))) {
          return "a !< f(a): " + show2("f", t[0], "a", t[1]);
        }
        return std::nullopt;
      });
    case Prop::TFix_L:
    case Prop::TFix_R: {
      auto [ts, exhaustive] = visible_tops(ord, lim);
      if (ts.empty()) {
        if (exhaustive) return {Tri::True, true, "vacuous: no top"};
        if (!ord.has_top()) return {Tri::True, false, "vacuous: no top"};
        return {Tri::Unknown, false, "top exists but none sampled"};
      }
      CheckResult r = forall({fns, Draw::finite(ts)}, lim,
                             [&](const ValueVec& t) -> Violation {
        if (!equiv_of(ord.cmp(ap(t[0], t[1]), t[1]))) {
          return "f(top) !~ top: " + show2("f", t[0], "top", t[1]);
        }
        return std::nullopt;
      });
      r.exhaustive = r.exhaustive && exhaustive;
      return r;
    }
    default:
      return {Tri::Unknown, false, "not an ordered-structure property"};
  }
}

// Algebraic-quadrant structure properties, parameterized the same way.
CheckResult check_algebraic_props(const Semigroup& add, const Draw& elems,
                                  const Draw& fns, const Apply& ap, Prop p,
                                  const CheckLimits& lim) {
  switch (p) {
    case Prop::M_L:
    case Prop::M_R:
      // f is a ⊕-homomorphism (distributivity in the bisemigroup case).
      return forall({fns, elems, elems}, lim,
                    [&](const ValueVec& t) -> Violation {
        if (ap(t[0], add.op(t[1], t[2])) !=
            add.op(ap(t[0], t[1]), ap(t[0], t[2]))) {
          return "f(a+b) != f(a)+f(b): " +
                 show3("f", t[0], "a", t[1], "b", t[2]);
        }
        return std::nullopt;
      });
    case Prop::N_L:
    case Prop::N_R:
      return forall({fns, elems, elems}, lim,
                    [&](const ValueVec& t) -> Violation {
        if (ap(t[0], t[1]) == ap(t[0], t[2]) && t[1] != t[2]) {
          return "f(a) = f(b), a != b: " +
                 show3("f", t[0], "a", t[1], "b", t[2]);
        }
        return std::nullopt;
      });
    case Prop::C_L:
    case Prop::C_R:
      return forall({fns, elems, elems}, lim,
                    [&](const ValueVec& t) -> Violation {
        if (ap(t[0], t[1]) != ap(t[0], t[2])) {
          return "f(a) != f(b): " + show3("f", t[0], "a", t[1], "b", t[2]);
        }
        return std::nullopt;
      });
    case Prop::ND_L:
    case Prop::ND_R:
      return forall({fns, elems}, lim, [&](const ValueVec& t) -> Violation {
        if (t[1] != add.op(t[1], ap(t[0], t[1]))) {
          return "a != a + f(a): " + show2("f", t[0], "a", t[1]);
        }
        return std::nullopt;
      });
    case Prop::Inc_L:
    case Prop::Inc_R:
    case Prop::SInc_L:
    case Prop::SInc_R:
      // In the algebraic quadrants I has no top exemption; SI coincides.
      return forall({fns, elems}, lim, [&](const ValueVec& t) -> Violation {
        const Value fa = ap(t[0], t[1]);
        if (t[1] != add.op(t[1], fa) || t[1] == fa) {
          return "not (a = a + f(a) != f(a)): " + show2("f", t[0], "a", t[1]);
        }
        return std::nullopt;
      });
    case Prop::TFix_L:
    case Prop::TFix_R: {
      // Algebraic reading of T: the functions fix the ⊕-identity α (which is
      // the ⊤ of the left natural order). Vacuous without an identity.
      auto alpha = add.identity();
      if (!alpha) return {Tri::True, true, "vacuous: no identity"};
      return forall({fns}, lim, [&](const ValueVec& t) -> Violation {
        if (ap(t[0], *alpha) != *alpha) {
          return "f(alpha) != alpha at f=" + t[0].to_string();
        }
        return std::nullopt;
      });
    }
    default:
      return {Tri::Unknown, false, "not an algebraic-structure property"};
  }
}

bool is_add_prop(Prop p) {
  switch (p) {
    case Prop::Assoc:
    case Prop::Comm:
    case Prop::Idem:
    case Prop::Selective:
    case Prop::HasIdentity:
    case Prop::HasAbsorber:
      return true;
    default:
      return false;
  }
}

bool is_order_prop(Prop p) {
  switch (p) {
    case Prop::Total:
    case Prop::Antisym:
    case Prop::HasTop:
    case Prop::HasBottom:
    case Prop::OneClass:
      return true;
    default:
      return false;
  }
}

bool is_right_version(Prop p) {
  switch (p) {
    case Prop::M_R:
    case Prop::N_R:
    case Prop::C_R:
    case Prop::ND_R:
    case Prop::Inc_R:
    case Prop::SInc_R:
    case Prop::TFix_R:
      return true;
    default:
      return false;
  }
}

}  // namespace

CheckResult Checker::semigroup_prop(const Semigroup& s, Prop p) const {
  return check_semigroup(s, p, limits_);
}

CheckResult Checker::preorder_prop(const PreorderSet& s, Prop p) const {
  return check_preorder(s, p, limits_);
}

CheckResult Checker::prop(const Bisemigroup& a, Prop p) const {
  if (is_add_prop(p)) return check_semigroup(*a.add, p, limits_);
  if (p == Prop::MulAssoc) return check_semigroup(*a.mul, Prop::Assoc, limits_);
  const Draw elems = semigroup_draw(*a.add, limits_);
  const Draw cs = semigroup_draw(*a.mul, limits_);
  const bool right = is_right_version(p);
  Apply ap = [&a, right](const Value& c, const Value& x) {
    return right ? a.mul->op(x, c) : a.mul->op(c, x);
  };
  return check_algebraic_props(*a.add, elems, cs, ap, p, limits_);
}

CheckResult Checker::prop(const OrderSemigroup& a, Prop p) const {
  if (is_order_prop(p)) return check_preorder(*a.ord, p, limits_);
  if (p == Prop::MulAssoc) return check_semigroup(*a.mul, Prop::Assoc, limits_);
  const Draw elems = preorder_draw(*a.ord, limits_);
  const Draw cs = semigroup_draw(*a.mul, limits_);
  const bool right = is_right_version(p);
  Apply ap = [&a, right](const Value& c, const Value& x) {
    return right ? a.mul->op(x, c) : a.mul->op(c, x);
  };
  return check_ordered_props(*a.ord, elems, cs, ap, p, limits_);
}

CheckResult Checker::prop(const SemigroupTransform& a, Prop p) const {
  if (is_add_prop(p)) return check_semigroup(*a.add, p, limits_);
  const Draw elems = semigroup_draw(*a.add, limits_);
  const Draw fns = label_draw(*a.fns, limits_);
  Apply ap = [&a](const Value& f, const Value& x) {
    return a.fns->apply(f, x);
  };
  return check_algebraic_props(*a.add, elems, fns, ap, p, limits_);
}

CheckResult Checker::prop(const OrderTransform& a, Prop p) const {
  if (is_order_prop(p)) return check_preorder(*a.ord, p, limits_);
  const Draw elems = preorder_draw(*a.ord, limits_);
  const Draw fns = label_draw(*a.fns, limits_);
  Apply ap = [&a](const Value& f, const Value& x) {
    return a.fns->apply(f, x);
  };
  return check_ordered_props(*a.ord, elems, fns, ap, p, limits_);
}

// ---------------------------------------------------------------------------
// Carrier probes
// ---------------------------------------------------------------------------

namespace {

ValueVec probe_elems(const PreorderSet& p, const CheckLimits& lim,
                     bool& exhaustive) {
  auto enumd = p.enumerate();
  if (enumd && enumd->size() <= lim.max_enum) {
    exhaustive = true;
    return *enumd;
  }
  exhaustive = false;
  Rng rng(lim.seed ^ 0x9120ULL);
  return p.sample(rng, 128);
}

}  // namespace

Tri probe_multi_element(const PreorderSet& p, const CheckLimits& limits) {
  bool exhaustive = false;
  ValueVec xs = probe_elems(p, limits, exhaustive);
  for (const Value& a : xs) {
    if (a != xs.front()) return Tri::True;
  }
  return exhaustive ? Tri::False : Tri::Unknown;
}

Tri probe_multi_class(const PreorderSet& p, const CheckLimits& limits) {
  bool exhaustive = false;
  ValueVec xs = probe_elems(p, limits, exhaustive);
  for (const Value& a : xs) {
    if (!equiv_of(p.cmp(a, xs.front()))) return Tri::True;
  }
  return exhaustive ? Tri::False : Tri::Unknown;
}

Tri probe_no_strict_pair(const PreorderSet& p, const CheckLimits& limits) {
  bool exhaustive = false;
  ValueVec xs = probe_elems(p, limits, exhaustive);
  for (const Value& a : xs) {
    for (const Value& b : xs) {
      if (lt_of(p.cmp(a, b))) return Tri::False;
    }
  }
  return exhaustive ? Tri::True : Tri::Unknown;
}

ConvergenceProfile convergence_profile(const OrderTransform& alg,
                                       const Checker& chk) {
  ConvergenceProfile out;
  bool exhaustive = true;
  const auto one = [&](Prop p, Tri& slot) {
    const CheckResult r = chk.prop(alg, p);
    slot = r.verdict;
    exhaustive = exhaustive && r.exhaustive;
  };
  one(Prop::M_L, out.monotone);
  one(Prop::ND_L, out.nondecreasing);
  one(Prop::Inc_L, out.increasing);
  one(Prop::SInc_L, out.strictly_increasing);
  out.exhaustive = exhaustive;
  return out;
}

}  // namespace mrt
