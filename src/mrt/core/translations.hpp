// Translations between the four quadrants (paper section III):
//
//   Cayley:       (S,⊕,⊗) → (S,⊕,F)   and   (S,≲,⊗) → (S,≲,F)
//                 with F = { λy. x ⊗ y | x ∈ S }
//   NO^L / NO^R:  (S,⊕,·) → (S,≲^L,·) / (S,≲^R,·)  (natural orders)
//   min-set:      (S,≲,F) → (S',⊕,F') over minimal sets
//                 (the Wongseelashote reduction construction)
#pragma once

#include "mrt/core/quadrants.hpp"

namespace mrt {

/// Cayley map: bisemigroup → semigroup transform (left multiplications).
SemigroupTransform cayley(const Bisemigroup& a);
/// Cayley map: order semigroup → order transform (left multiplications).
OrderTransform cayley(const OrderSemigroup& a);

/// The left/right natural order of a semigroup:
///   s1 ≲L s2 ⟺ s1 = s1 ⊕ s2        s1 ≲R s2 ⟺ s2 = s1 ⊕ s2
/// Exposed directly so Theorem 3 can be tested at the component level.
PreorderPtr natural_order(SemigroupPtr s, bool left_order);

/// NO^L / NO^R on bisemigroups.
OrderSemigroup natural_order_left(const Bisemigroup& a);
OrderSemigroup natural_order_right(const Bisemigroup& a);

/// NO^L / NO^R on semigroup transforms.
OrderTransform natural_order_left(const SemigroupTransform& a);
OrderTransform natural_order_right(const SemigroupTransform& a);

/// Min-set translation: order transform → semigroup transform whose carrier
/// is the min-closed subsets (as canonical tuples), with
///   A ⊕ B = min_≲(A ∪ B)     f'(A) = min_≲{ f(a) | a ∈ A }.
SemigroupTransform min_set_transform(const OrderTransform& a);

/// The min-set summarization semigroup alone (used by multipath routing).
SemigroupPtr min_set_semigroup(PreorderPtr ord);

}  // namespace mrt
