#include "mrt/core/order.hpp"

namespace mrt {

std::string to_string(Cmp c) {
  switch (c) {
    case Cmp::Less: return "<";
    case Cmp::Equiv: return "~";
    case Cmp::Greater: return ">";
    case Cmp::Incomp: return "#";
  }
  return "?";
}

}  // namespace mrt
