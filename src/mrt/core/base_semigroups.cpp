#include <algorithm>
#include <utility>

#include "mrt/core/bases.hpp"
#include "mrt/core/numeric.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

// Sampling window for ℕ(∪{∞}) carriers: small naturals exercise the
// interesting collisions; ∞ (when present) appears with fixed probability.
ValueVec sample_ext_nat(Rng& rng, int n, bool with_inf) {
  ValueVec out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (with_inf && rng.chance(0.1)) {
      out.push_back(Value::inf());
    } else {
      out.push_back(Value::integer(rng.range(0, 15)));
    }
  }
  return out;
}

class ExtNatSemigroup : public Semigroup {
 public:
  enum class Op { Min, Max, Plus, Times };
  ExtNatSemigroup(Op op, bool with_inf) : op_(op), with_inf_(with_inf) {}

  std::string name() const override {
    const char* suffix = with_inf_ ? "" : ".nat";
    switch (op_) {
      case Op::Min: return std::string("min") + suffix;
      case Op::Max: return std::string("max") + suffix;
      case Op::Plus: return std::string("plus") + suffix;
      case Op::Times: return std::string("times") + suffix;
    }
    MRT_UNREACHABLE("bad op");
  }

  bool contains(const Value& v) const override {
    if (v.is_inf()) return with_inf_;
    return v.is_int() && v.as_int() >= 0;
  }

  Value op(const Value& a, const Value& b) const override {
    switch (op_) {
      case Op::Min: return ext_min(a, b);
      case Op::Max: return ext_max(a, b);
      case Op::Plus: return ext_add(a, b);
      case Op::Times: return ext_mul(a, b);
    }
    MRT_UNREACHABLE("bad op");
  }

  std::optional<Value> identity() const override {
    switch (op_) {
      case Op::Min:
        if (!with_inf_) return std::nullopt;  // plain N has no min-identity
        return Value::inf();
      case Op::Max: return Value::integer(0);
      case Op::Plus: return Value::integer(0);
      case Op::Times: return Value::integer(1);
    }
    MRT_UNREACHABLE("bad op");
  }

  std::optional<Value> absorber() const override {
    switch (op_) {
      case Op::Min: return Value::integer(0);
      case Op::Max:
      case Op::Plus:
      case Op::Times:
        if (!with_inf_) return std::nullopt;
        return Value::inf();  // saturating: even 0·∞ = ∞ here
    }
    MRT_UNREACHABLE("bad op");
  }

  ValueVec sample(Rng& rng, int n) const override {
    return sample_ext_nat(rng, n, with_inf_);
  }

  SemigroupDesc describe() const override {
    SemigroupDesc d;
    switch (op_) {
      case Op::Min: d.k = SemigroupDesc::K::MinNat; break;
      case Op::Max: d.k = SemigroupDesc::K::MaxNat; break;
      case Op::Plus: d.k = SemigroupDesc::K::PlusNat; break;
      case Op::Times: d.k = SemigroupDesc::K::TimesNat; break;
    }
    d.with_inf = with_inf_;
    return d;
  }

 private:
  Op op_;
  bool with_inf_;
};

class UnitRealSemigroup : public Semigroup {
 public:
  enum class Op { Max, Times };
  explicit UnitRealSemigroup(Op op) : op_(op) {}

  std::string name() const override {
    return op_ == Op::Max ? "max.real" : "times.real";
  }

  bool contains(const Value& v) const override {
    return v.kind() == Value::Kind::Real && v.as_real() >= 0.0 &&
           v.as_real() <= 1.0;
  }

  Value op(const Value& a, const Value& b) const override {
    const double x = a.as_real();
    const double y = b.as_real();
    return Value::real(op_ == Op::Max ? std::max(x, y) : x * y);
  }

  std::optional<Value> identity() const override {
    return Value::real(op_ == Op::Max ? 0.0 : 1.0);
  }

  std::optional<Value> absorber() const override {
    return Value::real(op_ == Op::Max ? 1.0 : 0.0);
  }

  ValueVec sample(Rng& rng, int n) const override {
    ValueVec out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      // Quantized to 1/16ths so that collisions (and the endpoints) occur.
      out.push_back(Value::real(static_cast<double>(rng.range(0, 16)) / 16.0));
    }
    return out;
  }

  SemigroupDesc describe() const override {
    SemigroupDesc d;
    d.k = op_ == Op::Max ? SemigroupDesc::K::MaxReal
                         : SemigroupDesc::K::TimesReal;
    return d;
  }

 private:
  Op op_;
};

// Finite chain {0..n} under one of the three chain operations.
class ChainSemigroup : public Semigroup {
 public:
  enum class Op { Min, Max, SatPlus };
  ChainSemigroup(Op op, int n) : op_(op), n_(n) { MRT_REQUIRE(n >= 0); }

  std::string name() const override {
    const std::string bound = std::to_string(n_);
    switch (op_) {
      case Op::Min: return "chain_min(" + bound + ")";
      case Op::Max: return "chain_max(" + bound + ")";
      case Op::SatPlus: return "chain_plus(" + bound + ")";
    }
    MRT_UNREACHABLE("bad op");
  }

  bool contains(const Value& v) const override {
    return v.is_int() && v.as_int() >= 0 && v.as_int() <= n_;
  }

  Value op(const Value& a, const Value& b) const override {
    const std::int64_t x = a.as_int();
    const std::int64_t y = b.as_int();
    switch (op_) {
      case Op::Min: return Value::integer(std::min(x, y));
      case Op::Max: return Value::integer(std::max(x, y));
      case Op::SatPlus: return Value::integer(std::min<std::int64_t>(n_, x + y));
    }
    MRT_UNREACHABLE("bad op");
  }

  std::optional<Value> identity() const override {
    switch (op_) {
      case Op::Min: return Value::integer(n_);
      case Op::Max: return Value::integer(0);
      case Op::SatPlus: return Value::integer(0);
    }
    MRT_UNREACHABLE("bad op");
  }

  std::optional<Value> absorber() const override {
    switch (op_) {
      case Op::Min: return Value::integer(0);
      case Op::Max: return Value::integer(n_);
      case Op::SatPlus: return Value::integer(n_);
    }
    MRT_UNREACHABLE("bad op");
  }

  std::optional<ValueVec> enumerate() const override {
    ValueVec out;
    out.reserve(static_cast<std::size_t>(n_) + 1);
    for (int i = 0; i <= n_; ++i) out.push_back(Value::integer(i));
    return out;
  }

  SemigroupDesc describe() const override {
    SemigroupDesc d;
    switch (op_) {
      case Op::Min: d.k = SemigroupDesc::K::ChainMin; break;
      case Op::Max: d.k = SemigroupDesc::K::ChainMax; break;
      case Op::SatPlus: d.k = SemigroupDesc::K::ChainPlus; break;
    }
    d.n = n_;
    return d;
  }

 private:
  Op op_;
  int n_;
};

class ModPlusSemigroup : public Semigroup {
 public:
  explicit ModPlusSemigroup(int n) : n_(n) { MRT_REQUIRE(n >= 1); }

  std::string name() const override {
    return "plus_mod(" + std::to_string(n_) + ")";
  }
  bool contains(const Value& v) const override {
    return v.is_int() && v.as_int() >= 0 && v.as_int() < n_;
  }
  Value op(const Value& a, const Value& b) const override {
    return Value::integer((a.as_int() + b.as_int()) % n_);
  }
  std::optional<Value> identity() const override { return Value::integer(0); }
  std::optional<ValueVec> enumerate() const override {
    ValueVec out;
    for (int i = 0; i < n_; ++i) out.push_back(Value::integer(i));
    return out;
  }

  SemigroupDesc describe() const override {
    SemigroupDesc d;
    d.k = SemigroupDesc::K::PlusMod;
    d.n = n_;
    return d;
  }

 private:
  int n_;
};

class ProjSemigroup : public Semigroup {
 public:
  ProjSemigroup(bool left, int n) : left_(left), n_(n) { MRT_REQUIRE(n >= 1); }

  std::string name() const override {
    return std::string(left_ ? "left_proj(" : "right_proj(") +
           std::to_string(n_) + ")";
  }
  bool contains(const Value& v) const override {
    return v.is_int() && v.as_int() >= 0 && v.as_int() < n_;
  }
  Value op(const Value& a, const Value& b) const override {
    return left_ ? a : b;
  }
  std::optional<ValueVec> enumerate() const override {
    ValueVec out;
    for (int i = 0; i < n_; ++i) out.push_back(Value::integer(i));
    return out;
  }

  SemigroupDesc describe() const override {
    SemigroupDesc d;
    d.k = left_ ? SemigroupDesc::K::LeftProj : SemigroupDesc::K::RightProj;
    d.n = n_;
    return d;
  }

 private:
  bool left_;
  int n_;
};

// Subsets of {0..k-1} as bitmask Ints, under union or intersection.
class BitsSemigroup : public Semigroup {
 public:
  BitsSemigroup(bool is_union, int k) : union_(is_union), k_(k) {
    MRT_REQUIRE(k >= 1 && k <= 16);
  }

  std::string name() const override {
    return std::string(union_ ? "union_bits(" : "inter_bits(") +
           std::to_string(k_) + ")";
  }
  bool contains(const Value& v) const override {
    return v.is_int() && v.as_int() >= 0 && v.as_int() < (std::int64_t{1} << k_);
  }
  Value op(const Value& a, const Value& b) const override {
    const std::int64_t x = a.as_int();
    const std::int64_t y = b.as_int();
    return Value::integer(union_ ? (x | y) : (x & y));
  }
  std::optional<Value> identity() const override {
    return Value::integer(union_ ? 0 : full());
  }
  std::optional<Value> absorber() const override {
    return Value::integer(union_ ? full() : 0);
  }
  std::optional<ValueVec> enumerate() const override {
    ValueVec out;
    for (std::int64_t m = 0; m < (std::int64_t{1} << k_); ++m) {
      out.push_back(Value::integer(m));
    }
    return out;
  }

  SemigroupDesc describe() const override {
    SemigroupDesc d;
    d.k = union_ ? SemigroupDesc::K::UnionBits : SemigroupDesc::K::InterBits;
    d.n = k_;
    return d;
  }

 private:
  std::int64_t full() const { return (std::int64_t{1} << k_) - 1; }
  bool union_;
  int k_;
};

class TableSemigroup : public Semigroup {
 public:
  TableSemigroup(std::string name, std::vector<std::vector<int>> table)
      : name_(std::move(name)), table_(std::move(table)) {
    const std::size_t n = table_.size();
    MRT_REQUIRE(n >= 1);
    for (const auto& row : table_) {
      MRT_REQUIRE(row.size() == n);
      for (int v : row) MRT_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < n);
    }
  }

  std::string name() const override { return name_; }
  bool contains(const Value& v) const override {
    return v.is_int() && v.as_int() >= 0 &&
           static_cast<std::size_t>(v.as_int()) < table_.size();
  }
  Value op(const Value& a, const Value& b) const override {
    MRT_REQUIRE(contains(a) && contains(b));
    return Value::integer(
        table_[static_cast<std::size_t>(a.as_int())]
              [static_cast<std::size_t>(b.as_int())]);
  }
  std::optional<Value> identity() const override {
    for (std::size_t e = 0; e < table_.size(); ++e) {
      bool ok = true;
      for (std::size_t x = 0; x < table_.size(); ++x) {
        if (table_[e][x] != static_cast<int>(x) ||
            table_[x][e] != static_cast<int>(x)) {
          ok = false;
          break;
        }
      }
      if (ok) return Value::integer(static_cast<std::int64_t>(e));
    }
    return std::nullopt;
  }
  std::optional<Value> absorber() const override {
    for (std::size_t w = 0; w < table_.size(); ++w) {
      bool ok = true;
      for (std::size_t x = 0; x < table_.size(); ++x) {
        if (table_[w][x] != static_cast<int>(w) ||
            table_[x][w] != static_cast<int>(w)) {
          ok = false;
          break;
        }
      }
      if (ok) return Value::integer(static_cast<std::int64_t>(w));
    }
    return std::nullopt;
  }
  std::optional<ValueVec> enumerate() const override {
    ValueVec out;
    for (std::size_t i = 0; i < table_.size(); ++i) {
      out.push_back(Value::integer(static_cast<std::int64_t>(i)));
    }
    return out;
  }

  SemigroupDesc describe() const override {
    SemigroupDesc d;
    d.k = SemigroupDesc::K::Table;
    d.n = static_cast<int>(table_.size());
    d.table = table_;
    return d;
  }

 private:
  std::string name_;
  std::vector<std::vector<int>> table_;
};

}  // namespace

SemigroupPtr sg_min(bool with_inf) {
  return std::make_shared<ExtNatSemigroup>(ExtNatSemigroup::Op::Min, with_inf);
}
SemigroupPtr sg_max(bool with_inf) {
  return std::make_shared<ExtNatSemigroup>(ExtNatSemigroup::Op::Max, with_inf);
}
SemigroupPtr sg_plus(bool with_inf) {
  return std::make_shared<ExtNatSemigroup>(ExtNatSemigroup::Op::Plus, with_inf);
}
SemigroupPtr sg_times_nat(bool with_inf) {
  return std::make_shared<ExtNatSemigroup>(ExtNatSemigroup::Op::Times,
                                           with_inf);
}
SemigroupPtr sg_max_real() {
  return std::make_shared<UnitRealSemigroup>(UnitRealSemigroup::Op::Max);
}
SemigroupPtr sg_times_real() {
  return std::make_shared<UnitRealSemigroup>(UnitRealSemigroup::Op::Times);
}
SemigroupPtr sg_chain_min(int n) {
  return std::make_shared<ChainSemigroup>(ChainSemigroup::Op::Min, n);
}
SemigroupPtr sg_chain_max(int n) {
  return std::make_shared<ChainSemigroup>(ChainSemigroup::Op::Max, n);
}
SemigroupPtr sg_chain_plus(int n) {
  return std::make_shared<ChainSemigroup>(ChainSemigroup::Op::SatPlus, n);
}
SemigroupPtr sg_plus_mod(int n) {
  return std::make_shared<ModPlusSemigroup>(n);
}
SemigroupPtr sg_left_proj(int n) {
  return std::make_shared<ProjSemigroup>(true, n);
}
SemigroupPtr sg_right_proj(int n) {
  return std::make_shared<ProjSemigroup>(false, n);
}
SemigroupPtr sg_union_bits(int k) {
  return std::make_shared<BitsSemigroup>(true, k);
}
SemigroupPtr sg_inter_bits(int k) {
  return std::make_shared<BitsSemigroup>(false, k);
}
SemigroupPtr sg_table(std::string name, std::vector<std::vector<int>> table) {
  return std::make_shared<TableSemigroup>(std::move(name), std::move(table));
}

}  // namespace mrt
