// Lexicographic (and direct) products of the primitive components —
// semigroups, preorders, and function families (paper section IV.A).
//
// The quadrant-level products that assemble these into full structures (with
// property inference) live in combinators.hpp.
#pragma once

#include "mrt/core/fn_family.hpp"
#include "mrt/core/preorder_set.hpp"
#include "mrt/core/semigroup.hpp"

namespace mrt {

/// The paper's lexicographic product of semigroups:
///
///   (s1,t1) ⊕ (s2,t2) = (s, [s = s1]t1 ⊕_T [s = s2]t2)   with s = s1 ⊕_S s2
///
/// Defined whenever S is selective or T is a monoid; if the fourth case
/// (s ∉ {s1, s2}) occurs and T has no identity, `op` throws — that is the
/// runtime manifestation of Theorem 2's definedness condition.
SemigroupPtr lex_semigroup(SemigroupPtr s, SemigroupPtr t);

/// Componentwise product (used as the ⊗ of product bisemigroups and the
/// plain direct product of summarizations).
SemigroupPtr direct_semigroup(SemigroupPtr s, SemigroupPtr t);

/// Szendrei's ⃗×_ω (paper section VI): requires S to have an absorber ω_S;
/// the carrier is ((S ∖ {ω_S}) × T) ∪ {ω}, and any combination whose first
/// component would reach ω_S collapses to ω.
SemigroupPtr lex_omega_semigroup(SemigroupPtr s, SemigroupPtr t);

/// The componentwise (direct) product of preorders:
///   (s1,t1) ≲ (s2,t2) ⟺ s1 ≲ s2 ∧ t1 ≲ t2
/// — a genuine partial order even when both factors are total.
PreorderPtr direct_preorder(PreorderPtr s, PreorderPtr t);

/// The classical lexicographic product of preorders:
///
///   (s1,t1) ≲ (s2,t2)  ⟺  s1 < s2 ∨ (s1 ~ s2 ∧ t1 ≲ t2)
PreorderPtr lex_preorder(PreorderPtr s, PreorderPtr t);

/// Pairs of functions acting componentwise: F × G with labels (l, m).
FnFamilyPtr fam_pair(FnFamilyPtr f, FnFamilyPtr g);

/// Disjoint function union F + G (paper section II): labels are tagged so
/// that both families coexist even when they overlap.
FnFamilyPtr fam_union(FnFamilyPtr f, FnFamilyPtr g);

/// {κ_b | b ∈ carrier of `ord`}: the constant functions onto a preorder's
/// carrier (the `left` ingredient, usable on infinite carriers).
FnFamilyPtr fam_const_of_order(PreorderPtr ord);

}  // namespace mrt
