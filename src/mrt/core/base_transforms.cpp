#include <utility>

#include "mrt/core/bases.hpp"
#include "mrt/core/numeric.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

class IdFamily : public FunctionFamily {
 public:
  std::string name() const override { return "{id}"; }
  Value apply(const Value&, const Value& a) const override { return a; }
  std::optional<ValueVec> labels() const override {
    return ValueVec{Value::unit()};
  }
  FamilyDesc describe() const override {
    FamilyDesc d;
    d.k = FamilyDesc::K::Id;
    return d;
  }
};

class ConstFamily : public FunctionFamily {
 public:
  ConstFamily(std::string name, ValueVec values)
      : name_(std::move(name)), values_(std::move(values)) {
    MRT_REQUIRE(!values_.empty());
  }
  std::string name() const override { return name_; }
  Value apply(const Value& label, const Value&) const override {
    return label;  // κ_b indexed by b itself
  }
  std::optional<ValueVec> labels() const override { return values_; }
  FamilyDesc describe() const override {
    FamilyDesc d;
    d.k = FamilyDesc::K::Const;
    return d;
  }

 private:
  std::string name_;
  ValueVec values_;
};

class AddConstFamily : public FunctionFamily {
 public:
  AddConstFamily(std::int64_t lo, std::int64_t hi) : lo_(lo), hi_(hi) {
    MRT_REQUIRE(0 <= lo && lo <= hi);
  }
  std::string name() const override {
    return "{+c | " + std::to_string(lo_) + ".." + std::to_string(hi_) + "}";
  }
  Value apply(const Value& label, const Value& a) const override {
    return ext_add(a, label);
  }
  std::optional<ValueVec> labels() const override {
    ValueVec out;
    for (std::int64_t c = lo_; c <= hi_; ++c) out.push_back(Value::integer(c));
    return out;
  }
  FamilyDesc describe() const override {
    FamilyDesc d;
    d.k = FamilyDesc::K::AddConst;
    return d;
  }

 private:
  std::int64_t lo_, hi_;
};

class MinConstFamily : public FunctionFamily {
 public:
  MinConstFamily(std::int64_t lo, std::int64_t hi) : lo_(lo), hi_(hi) {
    MRT_REQUIRE(0 <= lo && lo <= hi);
  }
  std::string name() const override {
    return "{min(.,c) | " + std::to_string(lo_) + ".." + std::to_string(hi_) +
           ",inf}";
  }
  Value apply(const Value& label, const Value& a) const override {
    return ext_min(a, label);
  }
  std::optional<ValueVec> labels() const override {
    ValueVec out;
    for (std::int64_t c = lo_; c <= hi_; ++c) out.push_back(Value::integer(c));
    out.push_back(Value::inf());  // an infinite-capacity link: identity
    return out;
  }
  FamilyDesc describe() const override {
    FamilyDesc d;
    d.k = FamilyDesc::K::MinConst;
    return d;
  }

 private:
  std::int64_t lo_, hi_;
};

class MulConstRealFamily : public FunctionFamily {
 public:
  explicit MulConstRealFamily(std::vector<double> factors)
      : factors_(std::move(factors)) {
    MRT_REQUIRE(!factors_.empty());
    for (double f : factors_) MRT_REQUIRE(f > 0.0 && f <= 1.0);
  }
  std::string name() const override { return "{*c}"; }
  Value apply(const Value& label, const Value& a) const override {
    return Value::real(label.as_real() * a.as_real());
  }
  std::optional<ValueVec> labels() const override {
    ValueVec out;
    for (double f : factors_) out.push_back(Value::real(f));
    return out;
  }
  FamilyDesc describe() const override {
    FamilyDesc d;
    d.k = FamilyDesc::K::MulConstReal;
    return d;
  }

 private:
  std::vector<double> factors_;
};

class ChainAddFamily : public FunctionFamily {
 public:
  ChainAddFamily(int n, int lo, int hi) : n_(n), lo_(lo), hi_(hi) {
    MRT_REQUIRE(n >= 0 && 0 <= lo && lo <= hi && hi <= n);
  }
  std::string name() const override {
    return "{min(" + std::to_string(n_) + ", .+c) | " + std::to_string(lo_) +
           ".." + std::to_string(hi_) + "}";
  }
  Value apply(const Value& label, const Value& a) const override {
    return Value::integer(
        std::min<std::int64_t>(n_, a.as_int() + label.as_int()));
  }
  std::optional<ValueVec> labels() const override {
    ValueVec out;
    for (int c = lo_; c <= hi_; ++c) out.push_back(Value::integer(c));
    return out;
  }
  FamilyDesc describe() const override {
    FamilyDesc d;
    d.k = FamilyDesc::K::ChainAdd;
    d.n = n_;
    return d;
  }

 private:
  int n_, lo_, hi_;
};

class TableFamily : public FunctionFamily {
 public:
  TableFamily(std::string name, int carrier_size,
              std::vector<std::vector<int>> fns)
      : name_(std::move(name)), n_(carrier_size), fns_(std::move(fns)) {
    MRT_REQUIRE(n_ >= 1 && !fns_.empty());
    for (const auto& f : fns_) {
      MRT_REQUIRE(f.size() == static_cast<std::size_t>(n_));
      for (int y : f) MRT_REQUIRE(0 <= y && y < n_);
    }
  }
  std::string name() const override { return name_; }
  Value apply(const Value& label, const Value& a) const override {
    const auto f = static_cast<std::size_t>(label.as_int());
    MRT_REQUIRE(f < fns_.size());
    const auto x = static_cast<std::size_t>(a.as_int());
    MRT_REQUIRE(x < static_cast<std::size_t>(n_));
    return Value::integer(fns_[f][x]);
  }
  std::optional<ValueVec> labels() const override {
    ValueVec out;
    for (std::size_t i = 0; i < fns_.size(); ++i) {
      out.push_back(Value::integer(static_cast<std::int64_t>(i)));
    }
    return out;
  }
  FamilyDesc describe() const override {
    FamilyDesc d;
    d.k = FamilyDesc::K::Table;
    d.n = n_;
    d.fns = fns_;
    return d;
  }

 private:
  std::string name_;
  int n_;
  std::vector<std::vector<int>> fns_;
};

// Annotation helpers: base-algebra properties are axioms with short proof
// notes; the test suite corroborates each with the checker.
void note(PropertyReport& r, Prop p, bool v, const char* why) {
  r.set(p, v, std::string("axiom: ") + why);
}

}  // namespace

FnFamilyPtr fam_id() { return std::make_shared<IdFamily>(); }

FnFamilyPtr fam_const_of(std::string name, ValueVec values) {
  return std::make_shared<ConstFamily>(std::move(name), std::move(values));
}

FnFamilyPtr fam_add_const(std::int64_t lo, std::int64_t hi) {
  return std::make_shared<AddConstFamily>(lo, hi);
}

FnFamilyPtr fam_min_const(std::int64_t lo, std::int64_t hi) {
  return std::make_shared<MinConstFamily>(lo, hi);
}

FnFamilyPtr fam_mul_const_real(std::vector<double> factors) {
  return std::make_shared<MulConstRealFamily>(std::move(factors));
}

FnFamilyPtr fam_chain_add(int n, int lo, int hi) {
  return std::make_shared<ChainAddFamily>(n, lo, hi);
}

FnFamilyPtr fam_table(std::string name, int carrier_size,
                      std::vector<std::vector<int>> fns) {
  return std::make_shared<TableFamily>(std::move(name), carrier_size,
                                       std::move(fns));
}

// ---------------------------------------------------------------------------
// Canonical quadrant instances
// ---------------------------------------------------------------------------

Bisemigroup bs_shortest_path() {
  // Plain ℕ, exactly as the paper writes (ℕ, min, +): with ∞ adjoined the
  // N property would fail (∞+a = ∞+b) and the running example would break.
  Bisemigroup a{"(N, min, +)", sg_min(false), sg_plus(false), {}};
  note(a.props, Prop::Assoc, true, "min is associative");
  note(a.props, Prop::Comm, true, "min is commutative");
  note(a.props, Prop::Idem, true, "min is idempotent");
  note(a.props, Prop::Selective, true, "min picks an operand");
  note(a.props, Prop::HasIdentity, false, "plain N: no min-identity");
  note(a.props, Prop::HasAbsorber, true, "min 0 = absorber");
  note(a.props, Prop::MulAssoc, true, "+ is associative");
  note(a.props, Prop::M_L, true, "+ distributes over min");
  note(a.props, Prop::M_R, true, "+ distributes over min");
  note(a.props, Prop::N_L, true, "c+a = c+b => a=b on plain N");
  note(a.props, Prop::N_R, true, "a+c = b+c => a=b");
  note(a.props, Prop::C_L, false, "c+0 != c+1");
  note(a.props, Prop::C_R, false, "0+c != 1+c");
  note(a.props, Prop::ND_L, true, "a = min(a, c+a) for c,a >= 0");
  note(a.props, Prop::ND_R, true, "a = min(a, a+c)");
  note(a.props, Prop::Inc_L, false, "c=0: a = 0+a, not strict");
  note(a.props, Prop::Inc_R, false, "c=0: a = a+0, not strict");
  note(a.props, Prop::SInc_L, false, "c=0 again");
  note(a.props, Prop::SInc_R, false, "c=0 again");
  return a;
}

Bisemigroup bs_widest_path() {
  Bisemigroup a{"(N, max, min)", sg_max(false), sg_min(false), {}};
  note(a.props, Prop::Assoc, true, "max is associative");
  note(a.props, Prop::Comm, true, "max is commutative");
  note(a.props, Prop::Idem, true, "max is idempotent");
  note(a.props, Prop::Selective, true, "max picks an operand");
  note(a.props, Prop::HasIdentity, true, "max 0 = id");
  note(a.props, Prop::HasAbsorber, false, "plain N: no max-absorber");
  note(a.props, Prop::MulAssoc, true, "min is associative");
  note(a.props, Prop::M_L, true, "min distributes over max");
  note(a.props, Prop::M_R, true, "min distributes over max");
  note(a.props, Prop::N_L, false, "min(0,a)=min(0,b)=0 for a!=b");
  note(a.props, Prop::N_R, false, "min(a,0)=min(b,0)=0");
  note(a.props, Prop::C_L, false, "min(c,a)=a for c>=a distinguishes");
  note(a.props, Prop::C_R, false, "symmetric");
  note(a.props, Prop::ND_L, true, "a = max(a, min(c,a))");
  note(a.props, Prop::ND_R, true, "a = max(a, min(a,c))");
  note(a.props, Prop::Inc_L, false, "min(c,a)=a for c>=a: weight kept");
  note(a.props, Prop::Inc_R, false, "symmetric");
  note(a.props, Prop::SInc_L, false, "as above");
  note(a.props, Prop::SInc_R, false, "as above");
  return a;
}

Bisemigroup bs_path_count() {
  Bisemigroup a{"(N, +, x)", sg_plus(false), sg_times_nat(false), {}};
  note(a.props, Prop::Assoc, true, "+ is associative");
  note(a.props, Prop::Comm, true, "+ is commutative");
  note(a.props, Prop::Idem, false, "1+1 != 1");
  note(a.props, Prop::Selective, false, "1+1 = 2");
  note(a.props, Prop::HasIdentity, true, "0");
  note(a.props, Prop::HasAbsorber, false, "plain N: no +-absorber");
  note(a.props, Prop::MulAssoc, true, "x is associative");
  note(a.props, Prop::M_L, true, "x distributes over +");
  note(a.props, Prop::M_R, true, "x distributes over +");
  note(a.props, Prop::N_L, false, "0*a = 0*b");
  note(a.props, Prop::N_R, false, "a*0 = b*0");
  note(a.props, Prop::C_L, false, "1*a = a distinguishes");
  note(a.props, Prop::C_R, false, "a*1 = a");
  return a;
}

OrderSemigroup os_shortest_path() {
  OrderSemigroup a{"(N, <=, +)", ord_nat_leq(false), sg_plus(false), {}};
  note(a.props, Prop::Total, true, "numeric order");
  note(a.props, Prop::Antisym, true, "numeric order");
  note(a.props, Prop::HasTop, false, "plain N is unbounded");
  note(a.props, Prop::HasBottom, true, "0");
  note(a.props, Prop::OneClass, false, "0 < 1");
  note(a.props, Prop::MulAssoc, true, "+ associative");
  note(a.props, Prop::M_L, true, "a<=b => c+a <= c+b");
  note(a.props, Prop::M_R, true, "a<=b => a+c <= b+c");
  note(a.props, Prop::N_L, true, "c+a = c+b => a=b on plain N");
  note(a.props, Prop::N_R, true, "symmetric");
  note(a.props, Prop::C_L, false, "c+0 < c+1");
  note(a.props, Prop::C_R, false, "0+c < 1+c");
  note(a.props, Prop::ND_L, true, "a <= c+a");
  note(a.props, Prop::ND_R, true, "a <= a+c");
  note(a.props, Prop::Inc_L, false, "c=0 keeps weight");
  note(a.props, Prop::Inc_R, false, "c=0 keeps weight");
  note(a.props, Prop::SInc_L, false, "c=0");
  note(a.props, Prop::SInc_R, false, "c=0");
  note(a.props, Prop::TFix_L, true, "vacuous: no top");
  note(a.props, Prop::TFix_R, true, "vacuous: no top");
  return a;
}

OrderSemigroup os_widest_path() {
  OrderSemigroup a{"(N, >=, min)", ord_nat_geq(false), sg_min(false), {}};
  note(a.props, Prop::Total, true, "numeric order reversed");
  note(a.props, Prop::Antisym, true, "numeric order reversed");
  note(a.props, Prop::HasTop, true, "0 (zero bandwidth)");
  note(a.props, Prop::HasBottom, false, "plain N is unbounded");
  note(a.props, Prop::OneClass, false, "1 and 2 differ");
  note(a.props, Prop::MulAssoc, true, "min associative");
  note(a.props, Prop::M_L, true, "a>=b => min(c,a) >= min(c,b)");
  note(a.props, Prop::M_R, true, "symmetric");
  note(a.props, Prop::N_L, false, "min(0,a)=min(0,b), a!=b strictly ordered");
  note(a.props, Prop::N_R, false, "symmetric");
  note(a.props, Prop::C_L, false, "min(c,a)=a for c>=a distinguishes");
  note(a.props, Prop::C_R, false, "symmetric");
  note(a.props, Prop::ND_L, true, "min(c,a) <=num a, so extension not better");
  note(a.props, Prop::ND_R, true, "symmetric");
  note(a.props, Prop::Inc_L, false, "min(c,a) = a for c >= a");
  note(a.props, Prop::Inc_R, false, "symmetric");
  note(a.props, Prop::SInc_L, false, "as above");
  note(a.props, Prop::SInc_R, false, "as above");
  note(a.props, Prop::TFix_L, true, "min(c,0) = 0");
  note(a.props, Prop::TFix_R, true, "min(0,c) = 0");
  return a;
}

OrderSemigroup os_reliability() {
  OrderSemigroup a{"([0,1], >=, x)", ord_unit_real_geq(), sg_times_real(), {}};
  note(a.props, Prop::Total, true, "numeric order reversed");
  note(a.props, Prop::Antisym, true, "numeric order reversed");
  note(a.props, Prop::HasTop, true, "0.0");
  note(a.props, Prop::HasBottom, true, "1.0");
  note(a.props, Prop::OneClass, false, "0.5 and 1.0 differ");
  note(a.props, Prop::MulAssoc, true, "x associative");
  note(a.props, Prop::M_L, true, "a>=b => ca >= cb for c >= 0");
  note(a.props, Prop::M_R, true, "symmetric");
  note(a.props, Prop::N_L, false, "0a = 0b for a != b");
  note(a.props, Prop::N_R, false, "symmetric");
  note(a.props, Prop::C_L, false, "1a = a distinguishes");
  note(a.props, Prop::C_R, false, "symmetric");
  note(a.props, Prop::ND_L, true, "ca <= a for c in [0,1]");
  note(a.props, Prop::ND_R, true, "symmetric");
  note(a.props, Prop::Inc_L, false, "c=1 keeps weight");
  note(a.props, Prop::Inc_R, false, "c=1 keeps weight");
  note(a.props, Prop::SInc_L, false, "c=1");
  note(a.props, Prop::SInc_R, false, "c=1");
  note(a.props, Prop::TFix_L, true, "c*0 = 0");
  note(a.props, Prop::TFix_R, true, "0*c = 0");
  return a;
}

SemigroupTransform st_shortest_path(std::int64_t max_c) {
  SemigroupTransform a{"(N, min, {+c})", sg_min(), fam_add_const(1, max_c), {}};
  note(a.props, Prop::Assoc, true, "min associative");
  note(a.props, Prop::Comm, true, "min commutative");
  note(a.props, Prop::Idem, true, "min idempotent");
  note(a.props, Prop::Selective, true, "min selective");
  note(a.props, Prop::HasIdentity, true, "inf");
  note(a.props, Prop::HasAbsorber, true, "0");
  note(a.props, Prop::M_L, true, "+c is a min-homomorphism");
  note(a.props, Prop::N_L, true, "+c injective on N u {inf}");
  note(a.props, Prop::C_L, false, "+c not constant");
  note(a.props, Prop::ND_L, true, "a = min(a, a+c), c >= 1");
  // In this quadrant I requires a != f(a) at *every* point; inf+c = inf.
  note(a.props, Prop::Inc_L, false, "at inf: min(inf, inf+c) = inf = f(inf)");
  note(a.props, Prop::SInc_L, false, "same fixed point at inf");
  return a;
}

OrderTransform ot_shortest_path(std::int64_t max_c) {
  OrderTransform a{"(N, <=, {+c})", ord_nat_leq(), fam_add_const(1, max_c), {}};
  note(a.props, Prop::Total, true, "numeric order");
  note(a.props, Prop::Antisym, true, "numeric order");
  note(a.props, Prop::HasTop, true, "inf");
  note(a.props, Prop::HasBottom, true, "0");
  note(a.props, Prop::OneClass, false, "0 < 1");
  note(a.props, Prop::M_L, true, "a<=b => a+c <= b+c");
  note(a.props, Prop::N_L, true, "a+c = b+c => a=b (inf only meets inf)");
  note(a.props, Prop::C_L, false, "0+c < 1+c");
  note(a.props, Prop::ND_L, true, "a <= a+c");
  note(a.props, Prop::Inc_L, true, "a != inf => a < a+c, c >= 1");
  note(a.props, Prop::SInc_L, false, "inf+c = inf: not strict at top");
  note(a.props, Prop::TFix_L, true, "inf+c = inf");
  return a;
}

OrderTransform ot_widest_path(std::int64_t max_c) {
  OrderTransform a{"(N, >=, {min(.,c)})", ord_nat_geq(),
                   fam_min_const(0, max_c), {}};
  note(a.props, Prop::Total, true, "numeric order reversed");
  note(a.props, Prop::Antisym, true, "numeric order reversed");
  note(a.props, Prop::HasTop, true, "0");
  note(a.props, Prop::HasBottom, true, "inf");
  note(a.props, Prop::OneClass, false, "bandwidths differ");
  note(a.props, Prop::M_L, true, "a>=b => min(a,c) >= min(b,c)");
  note(a.props, Prop::N_L, false, "min(1,0)=min(2,0)... c below both: collide");
  note(a.props, Prop::C_L, false, "min(.,inf) = id distinguishes");
  note(a.props, Prop::ND_L, true, "min(a,c) <=num a");
  note(a.props, Prop::Inc_L, false, "min(a,inf) = a: no strict decrease");
  note(a.props, Prop::SInc_L, false, "as above");
  note(a.props, Prop::TFix_L, true, "min(0,c) = 0");
  return a;
}

OrderTransform ot_reliability(std::vector<double> factors) {
  bool all_strict = true;
  for (double f : factors) all_strict = all_strict && f < 1.0;
  OrderTransform a{"([0,1], >=, {*c})", ord_unit_real_geq(),
                   fam_mul_const_real(std::move(factors)), {}};
  note(a.props, Prop::Total, true, "numeric order reversed");
  note(a.props, Prop::Antisym, true, "numeric order reversed");
  note(a.props, Prop::HasTop, true, "0.0");
  note(a.props, Prop::HasBottom, true, "1.0");
  note(a.props, Prop::OneClass, false, "0.5 and 1.0 differ");
  note(a.props, Prop::M_L, true, "c > 0 preserves >=");
  note(a.props, Prop::N_L, true, "c > 0: ca = cb => a = b");
  note(a.props, Prop::C_L, false, "c*1 != c*0.5 for c > 0");
  note(a.props, Prop::ND_L, true, "ca <= a for c <= 1");
  note(a.props, Prop::Inc_L, all_strict, "strict iff every factor < 1");
  note(a.props, Prop::SInc_L, false, "c*0 = 0 at top");
  note(a.props, Prop::TFix_L, true, "c*0 = 0");
  return a;
}

OrderTransform ot_hop_count() {
  OrderTransform a{"hops", ord_nat_leq(), fam_add_const(1, 1), {}};
  note(a.props, Prop::Total, true, "numeric order");
  note(a.props, Prop::Antisym, true, "numeric order");
  note(a.props, Prop::HasTop, true, "inf");
  note(a.props, Prop::HasBottom, true, "0");
  note(a.props, Prop::OneClass, false, "0 < 1");
  note(a.props, Prop::M_L, true, "+1 monotone");
  note(a.props, Prop::N_L, true, "+1 injective");
  note(a.props, Prop::C_L, false, "+1 not constant");
  note(a.props, Prop::ND_L, true, "a <= a+1");
  note(a.props, Prop::Inc_L, true, "a != inf => a < a+1");
  note(a.props, Prop::SInc_L, false, "inf+1 = inf");
  note(a.props, Prop::TFix_L, true, "inf+1 = inf");
  return a;
}

OrderTransform ot_chain_add(int n, int lo, int hi) {
  // Finite, so no annotations: the checker decides everything exactly.
  return OrderTransform{"chain_add(" + std::to_string(n) + ")", ord_chain(n),
                        fam_chain_add(n, lo, hi), {}};
}

}  // namespace mrt
