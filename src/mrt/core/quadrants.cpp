#include "mrt/core/quadrants.hpp"

#include "mrt/support/require.hpp"

namespace mrt {
namespace {

// Components of a structure must share a carrier; we spot-check the finite
// enumerations when both sides have one.
template <typename A, typename B>
void check_same_carrier(const A& a, const B& b) {
  auto ea = a.enumerate();
  auto eb = b.enumerate();
  if (!ea || !eb) return;
  MRT_REQUIRE(ea->size() == eb->size());
  for (const Value& v : *ea) MRT_REQUIRE(b.contains(v));
}

}  // namespace

void validate(const Bisemigroup& a) {
  MRT_REQUIRE(a.add != nullptr && a.mul != nullptr);
  check_same_carrier(*a.add, *a.mul);
}

void validate(const OrderSemigroup& a) {
  MRT_REQUIRE(a.ord != nullptr && a.mul != nullptr);
  check_same_carrier(*a.ord, *a.mul);
}

void validate(const SemigroupTransform& a) {
  MRT_REQUIRE(a.add != nullptr && a.fns != nullptr);
}

void validate(const OrderTransform& a) {
  MRT_REQUIRE(a.ord != nullptr && a.fns != nullptr);
}

}  // namespace mrt
