// Dynamic function families F ⊆ S → S: the "functional" weight-computation
// building block of the quadrants model (paper Fig. 1).
//
// Each function is indexed by an opaque label Value (the paper's (L, •)
// indexing of Sobrinho algebras); arcs of a network carry labels, and the
// weight of a path is the composed application of its arcs' functions.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "mrt/core/describe.hpp"
#include "mrt/core/value.hpp"
#include "mrt/support/rng.hpp"

namespace mrt {

class FunctionFamily {
 public:
  virtual ~FunctionFamily() = default;

  virtual std::string name() const = 0;

  /// Applies the function indexed by `label` to carrier element `a`.
  virtual Value apply(const Value& label, const Value& a) const = 0;

  /// The label (function index) set, when finite.
  virtual std::optional<ValueVec> labels() const { return std::nullopt; }

  /// `n` labels for randomized checking; default draws from `labels()`.
  virtual ValueVec sample_labels(Rng& rng, int n) const;

  /// Structural shape for mrt::compile; Opaque (the default) means "not
  /// compilable" and routes consumers to the boxed interpreter.
  virtual FamilyDesc describe() const { return {}; }
};

using FnFamilyPtr = std::shared_ptr<const FunctionFamily>;

}  // namespace mrt
