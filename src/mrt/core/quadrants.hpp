// The four structure families of the quadrants model (paper Fig. 1):
//
//                      | summarization: algebraic | summarization: ordered
//   computation: alg.  | Bisemigroup (S,⊕,⊗)      | OrderSemigroup (S,≲,⊗)
//   computation: fn.   | SemigroupTransform (S,⊕,F) | OrderTransform (S,≲,F)
//
// Order transforms are Sobrinho's routing algebras — the structure routing
// protocols actually run on; the other three exist in the literature
// (semirings, ordered semigroups, monoid endomorphisms) and are connected by
// the translation maps in translations.hpp.
//
// Each structure is a value type: a name, shared immutable components, and a
// PropertyReport derived at construction time by the inference engine.
#pragma once

#include <string>

#include "mrt/core/fn_family.hpp"
#include "mrt/core/preorder_set.hpp"
#include "mrt/core/properties.hpp"
#include "mrt/core/semigroup.hpp"

namespace mrt {

/// (S, ⊕, ⊗): algebraic summarization, algebraic computation.
/// Semirings and nondistributive semirings live here.
struct Bisemigroup {
  static constexpr StructureKind kind = StructureKind::Bisemigroup;
  std::string name;
  SemigroupPtr add;  ///< ⊕ — summarization ("pick/merge best")
  SemigroupPtr mul;  ///< ⊗ — computation ("extend along an arc")
  PropertyReport props;
};

/// (S, ≲, ⊗): ordered summarization, algebraic computation.
struct OrderSemigroup {
  static constexpr StructureKind kind = StructureKind::OrderSemigroup;
  std::string name;
  PreorderPtr ord;
  SemigroupPtr mul;
  PropertyReport props;
};

/// (S, ⊕, F): algebraic summarization, functional computation.
struct SemigroupTransform {
  static constexpr StructureKind kind = StructureKind::SemigroupTransform;
  std::string name;
  SemigroupPtr add;
  FnFamilyPtr fns;
  PropertyReport props;
};

/// (S, ≲, F): ordered summarization, functional computation — a Sobrinho
/// routing algebra generalized to arbitrary preorders.
struct OrderTransform {
  static constexpr StructureKind kind = StructureKind::OrderTransform;
  std::string name;
  PreorderPtr ord;
  FnFamilyPtr fns;
  PropertyReport props;
};

/// Sanity validators: components present, carriers agree on a sample.
void validate(const Bisemigroup& a);
void validate(const OrderSemigroup& a);
void validate(const SemigroupTransform& a);
void validate(const OrderTransform& a);

}  // namespace mrt
