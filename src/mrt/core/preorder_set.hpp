// Dynamic preordered sets (S, ≲): the "ordered" weight-summarization
// building block of the quadrants model (paper Fig. 1).
//
// Only reflexivity and transitivity are assumed (and checkable); totality
// and antisymmetry are measured, not required — exactly the paper's stance.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "mrt/core/describe.hpp"
#include "mrt/core/order.hpp"
#include "mrt/core/value.hpp"
#include "mrt/support/rng.hpp"

namespace mrt {

class PreorderSet {
 public:
  virtual ~PreorderSet() = default;

  virtual std::string name() const = 0;
  virtual bool contains(const Value& v) const = 0;

  /// The preorder: a ≲ b ("a is at least as preferred as b" — smaller is
  /// better throughout, following the paper).
  virtual bool leq(const Value& a, const Value& b) const = 0;

  /// Four-way classification derived from both directions of ≲.
  Cmp cmp(const Value& a, const Value& b) const {
    return cmp_from_leq(leq(a, b), leq(b, a));
  }

  /// True if `v` is a greatest (least preferred, "⊤") element: ∀y. y ≲ v.
  /// The default decides from `enumerate()`; infinite orders must override.
  virtual bool is_top(const Value& v) const;

  /// True if some greatest element exists. Default decides from enumerate().
  virtual bool has_top() const;

  virtual std::optional<ValueVec> enumerate() const { return std::nullopt; }
  virtual ValueVec sample(Rng& rng, int n) const;

  /// Structural shape for mrt::compile; Opaque (the default) means "not
  /// compilable" and routes consumers to the boxed interpreter.
  virtual OrderDesc describe() const { return {}; }
};

using PreorderPtr = std::shared_ptr<const PreorderSet>;

/// All greatest elements of a finite preorder (empty if none).
ValueVec tops(const PreorderSet& p);

/// All least elements of a finite preorder (empty if none).
ValueVec bottoms(const PreorderSet& p);

/// min_≲(A): elements of A with no strictly smaller element in A; exact
/// duplicates removed. This is the paper's min-set-map.
ValueVec min_set(const PreorderSet& p, const ValueVec& xs);

}  // namespace mrt
