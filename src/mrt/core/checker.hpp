// The finite-model checker: the oracle of the system.
//
// For finite (small) carriers every property of Figures 2 and 3 is decided
// *exhaustively*, yielding True/False with a concrete counterexample on
// refutation. For infinite carriers the checker samples: refutations are
// still definitive (a counterexample is a counterexample), but absence of
// one only corroborates — the verdict stays Unknown unless exhaustive.
//
// The checker serves three roles: ground truth for the theorem-validation
// experiments, the fallback of the inference engine, and the counterexample
// generator that tells a routing-language designer *why* an algebra fails.
#pragma once

#include <cstdint>

#include "mrt/core/quadrants.hpp"
#include "mrt/obs/metrics.hpp"

namespace mrt {

struct CheckLimits {
  /// Carriers/label sets up to this size are enumerated exhaustively.
  std::size_t max_enum = 64;
  /// Tuples drawn per property when sampling an infinite structure.
  int samples = 2000;
  /// Exhaustive loops are abandoned for sampling beyond this many tuples.
  std::size_t max_tuples = 2'000'000;
  std::uint64_t seed = 0xC0FFEEULL;
};

struct CheckResult {
  Tri verdict = Tri::Unknown;
  bool exhaustive = false;  ///< verdict came from complete enumeration
  std::string detail;       ///< counterexample, or coverage note
};

class Checker {
 public:
  explicit Checker(CheckLimits limits = {}) : limits_(limits) {}

  // Component-level checks.
  CheckResult semigroup_prop(const Semigroup& s, Prop p) const;
  CheckResult preorder_prop(const PreorderSet& s, Prop p) const;

  // Structure-level checks (Figures 2 and 3 properties, plus the component
  // properties of the summarization part).
  CheckResult prop(const Bisemigroup& a, Prop p) const;
  CheckResult prop(const OrderSemigroup& a, Prop p) const;
  CheckResult prop(const SemigroupTransform& a, Prop p) const;
  CheckResult prop(const OrderTransform& a, Prop p) const;

  /// Complete report: every property relevant to the structure kind.
  template <typename A>
  PropertyReport report(const A& a) const {
    PropertyReport out;
    for (Prop p : props_for(A::kind)) {
      CheckResult r = prop(a, p);
      out.set(p, r.verdict, (r.exhaustive ? "checked: " : "sampled: ") + r.detail);
    }
    return out;
  }

  /// Fills only the Unknown slots of an existing (inferred) report.
  /// Slots already decided by the inference rules are "cache hits" of the
  /// rule layer (counted as inference.rule_hits); the Unknown slots fall
  /// back to the oracle (inference.oracle_fallbacks).
  template <typename A>
  void refine(const A& a, PropertyReport& report) const {
    const bool count = obs::enabled();
    for (Prop p : props_for(A::kind)) {
      if (report.value(p) != Tri::Unknown) {
        if (count) obs::registry().counter("inference.rule_hits").add(1);
        continue;
      }
      if (count) obs::registry().counter("inference.oracle_fallbacks").add(1);
      CheckResult r = prop(a, p);
      report.refine(p, r.verdict,
                    (r.exhaustive ? "checked: " : "sampled: ") + r.detail);
    }
  }

 private:
  CheckLimits limits_;
};

/// The slice of an algebra's property report that decides asynchronous
/// convergence behaviour — what a ConvergenceCertificate (mrt::adv) embeds.
/// `increasing` (Inc_L: strict below ⊤) is the Daggitt–Griffin "strictly
/// increasing" hypothesis, under which async DBF converges within a bounded
/// number of activation rounds; `strictly_increasing` (SInc_L) is the
/// refinement with no ⊤ exemption, recorded for completeness but not
/// required by the bound.
struct ConvergenceProfile {
  Tri monotone = Tri::Unknown;            ///< M_L
  Tri nondecreasing = Tri::Unknown;       ///< ND_L
  Tri increasing = Tri::Unknown;          ///< Inc_L
  Tri strictly_increasing = Tri::Unknown; ///< SInc_L
  /// True when every verdict above came from complete enumeration — only
  /// then may a bound violation be treated as a theorem falsification.
  bool exhaustive = false;
};

/// Queries the four convergence-relevant properties of `alg`.
ConvergenceProfile convergence_profile(const OrderTransform& alg,
                                       const Checker& chk = Checker{});

// Carrier probes used by the inference rules for left / right / scoped
// operators (Theorem 6's side conditions).
//
/// Does the carrier have at least two elements?
Tri probe_multi_element(const PreorderSet& p, const CheckLimits& limits = {});
/// Does the order have at least two equivalence classes?
Tri probe_multi_class(const PreorderSet& p, const CheckLimits& limits = {});
/// Is the order free of strictly related pairs (a < b for no a, b)?
Tri probe_no_strict_pair(const PreorderSet& p, const CheckLimits& limits = {});

}  // namespace mrt
