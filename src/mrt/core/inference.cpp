#include "mrt/core/inference.hpp"

#include "mrt/obs/obs.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

Tri suff(Tri x) { return x == Tri::True ? Tri::True : Tri::Unknown; }

Tri and3(Tri a, Tri b, Tri c) { return tri_and(tri_and(a, b), c); }

// Rule application with provenance. The registry references are cached in
// function-local statics — registry addresses are stable across reset() —
// so the enabled path costs two increments, not two map lookups.
void rule(PropertyReport& r, Prop p, Tri v, const char* why) {
  if (obs::enabled()) {
    static obs::Counter& firings =
        obs::registry().counter("inference.rule_firings");
    static obs::Counter& undecided =
        obs::registry().counter("inference.rule_undecided");
    firings.add(1);
    if (v == Tri::Unknown) undecided.add(1);
  }
  r.set(p, v, std::string("rule: ") + why);
}

// Shared summarization-law rules for the algebraic quadrants' lex-⊕
// (valid under the standing comm+idem preconditions of section IV.A).
void lex_add_laws(PropertyReport& r, const PropertyReport& s,
                  const PropertyReport& t) {
  rule(r, Prop::Assoc, and3(tri_and(s.value(Prop::Assoc), t.value(Prop::Assoc)),
                            tri_and(s.value(Prop::Comm), t.value(Prop::Comm)),
                            tri_and(s.value(Prop::Idem), t.value(Prop::Idem))),
       "thm2: lex of comm+idem semigroups is a semigroup");
  rule(r, Prop::Comm, tri_and(s.value(Prop::Comm), t.value(Prop::Comm)),
       "comm(S) & comm(T)");
  rule(r, Prop::Idem, tri_and(s.value(Prop::Idem), t.value(Prop::Idem)),
       "idem(S) & idem(T)");
  rule(r, Prop::Selective,
       tri_and(s.value(Prop::Selective), t.value(Prop::Selective)),
       "sel(S) & sel(T)");
  rule(r, Prop::HasIdentity,
       tri_and(s.value(Prop::HasIdentity), t.value(Prop::HasIdentity)),
       "(alpha_S, alpha_T)");
  rule(r, Prop::HasAbsorber,
       tri_and(s.value(Prop::HasAbsorber), t.value(Prop::HasAbsorber)),
       "(omega_S, omega_T)");
}

// Order-shape rules for the ordered quadrants' lex preorder (all exact).
void lex_order_laws(PropertyReport& r, const PropertyReport& s,
                    const PropertyReport& t) {
  rule(r, Prop::Total, tri_and(s.value(Prop::Total), t.value(Prop::Total)),
       "lex of total preorders is total");
  rule(r, Prop::Antisym,
       tri_and(s.value(Prop::Antisym), t.value(Prop::Antisym)),
       "lex-equivalence is componentwise");
  rule(r, Prop::HasTop, tri_and(s.value(Prop::HasTop), t.value(Prop::HasTop)),
       "Top(lex) = Top(S) x Top(T)");
  rule(r, Prop::HasBottom,
       tri_and(s.value(Prop::HasBottom), t.value(Prop::HasBottom)),
       "Bot(lex) = Bot(S) x Bot(T)");
  rule(r, Prop::OneClass,
       tri_and(s.value(Prop::OneClass), t.value(Prop::OneClass)),
       "lex-equivalence is componentwise");
}

// Thm 4 global-optima rule plus the exact N/C propagation, for one side
// (exact in the ordered quadrants).
void thm4(PropertyReport& r, Prop m, Prop n, Prop c, const PropertyReport& s,
          const PropertyReport& t) {
  rule(r, m, and3(s.value(m), t.value(m), tri_or(s.value(n), t.value(c))),
       "thm4: M(S)&M(T)&(N(S)|C(T))");
  rule(r, n, tri_and(s.value(n), t.value(n)), "N(S)&N(T) (componentwise)");
  rule(r, c, tri_and(s.value(c), t.value(c)), "C(S)&C(T) (componentwise)");
}

// Thm 4 in the algebraic quadrants. Exact as published when S is selective;
// with a non-selective S the lex-⊕'s fourth case inserts α_T, and M
// additionally requires T's functions to fix α_T (measured counterexample:
// see test_thm4_global.cpp and EXPERIMENTS.md). The refutation direction is
// sound only through M(S)/M(T).
void thm4_algebraic(PropertyReport& r, Prop m, Prop n, Prop c, Prop tfix,
                    const PropertyReport& s, const PropertyReport& t) {
  const Tri base =
      and3(s.value(m), t.value(m), tri_or(s.value(n), t.value(c)));
  Tri v = Tri::Unknown;
  const char* why = "thm4 (algebraic): undecided for non-selective S";
  if (tri_and(s.value(m), t.value(m)) == Tri::False) {
    v = Tri::False;
    why = "thm4: M(S) and M(T) are necessary";
  } else if (s.value(Prop::Selective) == Tri::True) {
    v = base;
    why = "thm4: exact for selective S";
  } else if (tri_and(base, t.value(tfix)) == Tri::True) {
    v = Tri::True;
    why = "refined thm4: fourth case guarded by T-functions fixing alpha";
  }
  rule(r, m, v, why);
  rule(r, n, tri_and(s.value(n), t.value(n)), "N(S)&N(T) (componentwise)");
  rule(r, c, tri_and(s.value(c), t.value(c)), "C(S)&C(T) (componentwise)");
  rule(r, tfix,
       tri_or(tri_not(tri_and(s.value(Prop::HasIdentity),
                              t.value(Prop::HasIdentity))),
              tri_and(s.value(tfix), t.value(tfix))),
       "alpha of lex is componentwise");
}

// Thm 5 local-optima rules for the *algebraic* quadrants, where I has no ⊤
// exemption and coincides with SI. Exact as proven in the paper.
void thm5_algebraic(PropertyReport& r, Prop nd, Prop inc, Prop sinc,
                    const PropertyReport& s, const PropertyReport& t) {
  rule(r, nd, tri_or(s.value(inc), tri_and(s.value(nd), t.value(nd))),
       "thm5: ND <=> I(S) | (ND(S)&ND(T))");
  rule(r, inc, tri_or(s.value(inc), tri_and(s.value(nd), t.value(inc))),
       "thm5: I <=> I(S) | (ND(S)&I(T))");
  rule(r, sinc, r.value(inc), "SI = I in algebraic quadrants");
}

// Refined ⊤-aware local-optima rules for the *ordered* quadrants (exact for
// arbitrary preorders; DESIGN.md section 1.1). They coincide with the paper's
// Fig. 3 rules whenever S is ⊤-free.
void thm5_ordered(PropertyReport& r, Prop nd, Prop inc, Prop sinc, Prop tfix,
                  const PropertyReport& s, const PropertyReport& t,
                  Prop has_top) {
  // SI(S ⃗× T) ⟺ SI(S) ∨ (ND(S) ∧ SI(T))
  rule(r, sinc, tri_or(s.value(sinc), tri_and(s.value(nd), t.value(sinc))),
       "SI(S) | (ND(S)&SI(T))");
  // ND(S ⃗× T) ⟺ SI(S) ∨ (ND(S) ∧ ND(T))
  rule(r, nd, tri_or(s.value(sinc), tri_and(s.value(nd), t.value(nd))),
       "refined thm5: SI(S) | (ND(S)&ND(T))");
  // I(S ⃗× T) ⟺ [I(S) ∧ (⊤-free(S) ∨ all-top(T) ∨ (T(S) ∧ I(T)))]
  //              ∨ [ND(S) ∧ SI(T)]
  // The all-top(T) (single class) disjunct exempts every (⊤_S, b) pair.
  const Tri top_handled =
      tri_or(tri_or(tri_not(s.value(has_top)), t.value(Prop::OneClass)),
             tri_and(s.value(tfix), t.value(inc)));
  rule(r, inc,
       tri_or(tri_and(s.value(inc), top_handled),
              tri_and(s.value(nd), t.value(sinc))),
       "refined thm5: (I(S) & top-handled) | (ND(S)&SI(T))");
  // T(S ⃗× T): vacuous without a product top, else componentwise.
  rule(r, tfix,
       tri_or(tri_not(tri_and(s.value(has_top), t.value(has_top))),
              tri_and(s.value(tfix), t.value(tfix))),
       "top of lex is componentwise");
}

}  // namespace

PropertyReport infer_lex(StructureKind kind, const PropertyReport& s,
                         const PropertyReport& t) {
  PropertyReport r;
  switch (kind) {
    case StructureKind::Bisemigroup:
      lex_add_laws(r, s, t);
      rule(r, Prop::MulAssoc,
           tri_and(s.value(Prop::MulAssoc), t.value(Prop::MulAssoc)),
           "componentwise");
      thm4_algebraic(r, Prop::M_L, Prop::N_L, Prop::C_L, Prop::TFix_L, s, t);
      thm4_algebraic(r, Prop::M_R, Prop::N_R, Prop::C_R, Prop::TFix_R, s, t);
      thm5_algebraic(r, Prop::ND_L, Prop::Inc_L, Prop::SInc_L, s, t);
      thm5_algebraic(r, Prop::ND_R, Prop::Inc_R, Prop::SInc_R, s, t);
      return r;
    case StructureKind::SemigroupTransform:
      lex_add_laws(r, s, t);
      thm4_algebraic(r, Prop::M_L, Prop::N_L, Prop::C_L, Prop::TFix_L, s, t);
      thm5_algebraic(r, Prop::ND_L, Prop::Inc_L, Prop::SInc_L, s, t);
      return r;
    case StructureKind::OrderSemigroup:
      lex_order_laws(r, s, t);
      rule(r, Prop::MulAssoc,
           tri_and(s.value(Prop::MulAssoc), t.value(Prop::MulAssoc)),
           "componentwise");
      thm4(r, Prop::M_L, Prop::N_L, Prop::C_L, s, t);
      thm4(r, Prop::M_R, Prop::N_R, Prop::C_R, s, t);
      thm5_ordered(r, Prop::ND_L, Prop::Inc_L, Prop::SInc_L, Prop::TFix_L, s,
                   t, Prop::HasTop);
      thm5_ordered(r, Prop::ND_R, Prop::Inc_R, Prop::SInc_R, Prop::TFix_R, s,
                   t, Prop::HasTop);
      return r;
    case StructureKind::OrderTransform:
      lex_order_laws(r, s, t);
      thm4(r, Prop::M_L, Prop::N_L, Prop::C_L, s, t);
      thm5_ordered(r, Prop::ND_L, Prop::Inc_L, Prop::SInc_L, Prop::TFix_L, s,
                   t, Prop::HasTop);
      return r;
    default:
      MRT_UNREACHABLE("infer_lex: not a quadrant structure");
  }
}

PropertyReport infer_direct(const PropertyReport& s,
                            const PropertyReport& t) {
  PropertyReport r;
  // Order shape. Componentwise comparison makes totality rare: the product
  // is total iff one factor collapses to a single class and the other is
  // total (exact).
  rule(r, Prop::Total,
       tri_or(tri_and(s.value(Prop::OneClass), t.value(Prop::Total)),
              tri_and(t.value(Prop::OneClass), s.value(Prop::Total))),
       "componentwise order is total only if one side is one class");
  rule(r, Prop::Antisym,
       tri_and(s.value(Prop::Antisym), t.value(Prop::Antisym)),
       "product equivalence is componentwise");
  rule(r, Prop::HasTop, tri_and(s.value(Prop::HasTop), t.value(Prop::HasTop)),
       "Top(prod) = Top(S) x Top(T)");
  rule(r, Prop::HasBottom,
       tri_and(s.value(Prop::HasBottom), t.value(Prop::HasBottom)),
       "Bot(prod) = Bot(S) x Bot(T)");
  rule(r, Prop::OneClass,
       tri_and(s.value(Prop::OneClass), t.value(Prop::OneClass)),
       "componentwise");
  // Global optima: all componentwise, all exact.
  rule(r, Prop::M_L, tri_and(s.value(Prop::M_L), t.value(Prop::M_L)),
       "M(S)&M(T) (componentwise, exact)");
  rule(r, Prop::N_L, tri_and(s.value(Prop::N_L), t.value(Prop::N_L)),
       "N(S)&N(T) (componentwise, exact)");
  rule(r, Prop::C_L, tri_and(s.value(Prop::C_L), t.value(Prop::C_L)),
       "C(S)&C(T) (componentwise, exact)");
  // Local optima.
  rule(r, Prop::ND_L, tri_and(s.value(Prop::ND_L), t.value(Prop::ND_L)),
       "ND(S)&ND(T) (componentwise, exact)");
  rule(r, Prop::SInc_L,
       and3(s.value(Prop::ND_L), t.value(Prop::ND_L),
            tri_or(s.value(Prop::SInc_L), t.value(Prop::SInc_L))),
       "ND both + strict somewhere (exact)");
  // I: decided where the case analysis is uniform; Unknown in the mixed
  // cases (checker fallback).
  {
    Tri v = Tri::Unknown;
    const char* why = "undecided mixed case (checker decides)";
    const Tri all = and3(tri_and(s.value(Prop::ND_L), t.value(Prop::ND_L)),
                         tri_and(s.value(Prop::Inc_L), t.value(Prop::Inc_L)),
                         Tri::True);
    if (all == Tri::True) {
      v = Tri::True;
      why = "ND+I on both factors covers every non-top pair";
    } else if (tri_and(tri_not(s.value(Prop::OneClass)),
                       tri_not(t.value(Prop::OneClass))) == Tri::True &&
               tri_or(s.value(Prop::Inc_L), t.value(Prop::Inc_L)) ==
                   Tri::False) {
      v = Tri::False;
      why = "both factors have non-top fixed points: no strictness";
    } else if (tri_and(s.value(Prop::ND_L), t.value(Prop::ND_L)) ==
               Tri::False) {
      // a ≲ f(a) must hold componentwise at non-top points; a refuted ND
      // with a non-top witness refutes I too — approximated by requiring
      // SI=false as well to avoid the top-only-witness edge, else Unknown.
      v = Tri::Unknown;
      why = "ND refuted, witness location unknown";
    }
    rule(r, Prop::Inc_L, v, why);
  }
  rule(r, Prop::TFix_L,
       tri_or(tri_not(tri_and(s.value(Prop::HasTop), t.value(Prop::HasTop))),
              tri_and(s.value(Prop::TFix_L), t.value(Prop::TFix_L))),
       "top of prod is componentwise");
  return r;
}

PropertyReport infer_lex_omega(StructureKind kind, const PropertyReport& s,
                               const PropertyReport& t) {
  MRT_REQUIRE(kind == StructureKind::OrderTransform ||
              kind == StructureKind::SemigroupTransform);
  PropertyReport r;
  if (kind == StructureKind::OrderTransform) {
    // Sufficient only: a non-totality witness in S may involve only
    // collapsed (top-first) pairs, so falsity does not transfer.
    rule(r, Prop::Total,
         suff(tri_and(s.value(Prop::Total), t.value(Prop::Total))),
         "suff: omega comparable to all; pairs lex");
    rule(r, Prop::HasTop, Tri::True, "omega is the top");
    rule(r, Prop::TFix_L, Tri::True, "functions fix omega");
    rule(r, Prop::Antisym,
         suff(tri_and(s.value(Prop::Antisym), t.value(Prop::Antisym))),
         "suff: componentwise");
    // Under the collapse the paper's Fig. 2/3 rules hold; we keep only the
    // sufficient direction and let the checker decide refutations.
    rule(r, Prop::M_L,
         suff(and3(s.value(Prop::M_L), t.value(Prop::M_L),
                   tri_or(s.value(Prop::N_L), t.value(Prop::C_L)))),
         "suff thm4 under omega-collapse");
    rule(r, Prop::ND_L,
         suff(tri_or(s.value(Prop::Inc_L),
                     tri_and(s.value(Prop::ND_L), t.value(Prop::ND_L)))),
         "suff thm5 under omega-collapse");
    // Only S's top is collapsed; a ⊤ in T still blocks strictness at pairs
    // (a, ⊤_T), so the second disjunct needs SI(T), not I(T).
    rule(r, Prop::Inc_L,
         suff(tri_or(s.value(Prop::Inc_L),
                     tri_and(s.value(Prop::ND_L), t.value(Prop::SInc_L)))),
         "suff thm5 under omega-collapse (SI(T) variant)");
  } else {
    rule(r, Prop::Comm,
         suff(tri_and(s.value(Prop::Comm), t.value(Prop::Comm))),
         "suff: componentwise");
    rule(r, Prop::Idem,
         suff(tri_and(s.value(Prop::Idem), t.value(Prop::Idem))),
         "suff: componentwise");
    rule(r, Prop::HasAbsorber, Tri::True, "omega absorbs");
    rule(r, Prop::M_L,
         suff(and3(s.value(Prop::M_L), t.value(Prop::M_L),
                   tri_or(s.value(Prop::N_L), t.value(Prop::C_L)))),
         "suff thm4 under omega-collapse");
  }
  return r;
}

OrderShape probe_shape(const PreorderSet& ord, const CheckLimits& limits) {
  OrderShape s;
  s.multi_element = probe_multi_element(ord, limits);
  s.multi_class = probe_multi_class(ord, limits);
  s.no_strict_pair = probe_no_strict_pair(ord, limits);
  return s;
}

PropertyReport infer_left(const PropertyReport& t, const OrderShape& shape) {
  PropertyReport r;
  for (Prop p : {Prop::Total, Prop::Antisym, Prop::HasTop, Prop::HasBottom,
                 Prop::OneClass}) {
    r.set(p, t.value(p), "order unchanged by left()");
  }
  rule(r, Prop::M_L, Tri::True, "constant functions are monotone");
  rule(r, Prop::C_L, Tri::True, "kappa_c(a) = kappa_c(b)");
  rule(r, Prop::N_L, shape.no_strict_pair,
       "N(left) <=> no strictly ordered pair");
  rule(r, Prop::ND_L, tri_not(shape.multi_class),
       "ND(left) <=> single equivalence class");
  rule(r, Prop::Inc_L, tri_not(shape.multi_class),
       "I(left) fails given two classes (paper sec V)");
  rule(r, Prop::SInc_L, Tri::False, "kappa_a(a) = a is never strict");
  rule(r, Prop::TFix_L,
       tri_or(tri_not(t.value(Prop::HasTop)), tri_not(shape.multi_class)),
       "kappa_c(top) ~ top for all c iff one class");
  return r;
}

PropertyReport infer_right(const PropertyReport& s, const OrderShape& shape) {
  PropertyReport r;
  for (Prop p : {Prop::Total, Prop::Antisym, Prop::HasTop, Prop::HasBottom,
                 Prop::OneClass}) {
    r.set(p, s.value(p), "order unchanged by right()");
  }
  rule(r, Prop::M_L, Tri::True, "identity is monotone");
  rule(r, Prop::N_L, Tri::True, "id(a) ~ id(b) => a ~ b");
  rule(r, Prop::C_L, tri_not(shape.multi_class),
       "C(right) <=> single equivalence class");
  rule(r, Prop::ND_L, Tri::True, "a <= id(a) (paper sec V)");
  rule(r, Prop::Inc_L, tri_not(shape.multi_class),
       "I(right) fails given two classes (paper sec V)");
  rule(r, Prop::SInc_L, Tri::False, "id(a) = a is never strict");
  rule(r, Prop::TFix_L, Tri::True, "id fixes the top");
  return r;
}

PropertyReport infer_union(const PropertyReport& s, const PropertyReport& t) {
  PropertyReport r;
  for (Prop p : {Prop::Total, Prop::Antisym, Prop::HasTop, Prop::HasBottom,
                 Prop::OneClass}) {
    r.set(p, s.value(p), "shared order");
  }
  for (Prop p : {Prop::M_L, Prop::N_L, Prop::C_L, Prop::ND_L, Prop::Inc_L,
                 Prop::SInc_L, Prop::TFix_L}) {
    rule(r, p, tri_and(s.value(p), t.value(p)),
         "P(S+T) <=> P(S) & P(T) (paper sec V)");
  }
  return r;
}

Tri paper_rule_nd_lex(const PropertyReport& s, const PropertyReport& t) {
  return tri_or(s.value(Prop::Inc_L),
                tri_and(s.value(Prop::ND_L), t.value(Prop::ND_L)));
}

Tri paper_rule_inc_lex(const PropertyReport& s, const PropertyReport& t) {
  return tri_or(s.value(Prop::Inc_L),
                tri_and(s.value(Prop::ND_L), t.value(Prop::Inc_L)));
}

Tri paper_rule_m_lex(const PropertyReport& s, const PropertyReport& t) {
  return and3(s.value(Prop::M_L), t.value(Prop::M_L),
              tri_or(s.value(Prop::N_L), t.value(Prop::C_L)));
}

Tri classic2005_nd_lex(const PropertyReport& s, const PropertyReport& t) {
  return suff(tri_and(s.value(Prop::ND_L), t.value(Prop::ND_L)));
}

Tri classic2005_inc_lex(const PropertyReport& s, const PropertyReport& t) {
  return suff(tri_or(s.value(Prop::Inc_L),
                     tri_and(s.value(Prop::ND_L), t.value(Prop::Inc_L))));
}

}  // namespace mrt
