// Dynamic semigroups (S, ⊕): the "algebraic" weight-summarization /
// weight-computation building block of the quadrants model (paper Fig. 1).
//
// A Semigroup exposes its binary operation plus enough structure for the
// rest of the system to *measure* it: carrier membership, optional finite
// enumeration (the finite-model checker's raw material), and random sampling
// for infinite carriers.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "mrt/core/describe.hpp"
#include "mrt/core/value.hpp"
#include "mrt/support/rng.hpp"

namespace mrt {

class Semigroup {
 public:
  virtual ~Semigroup() = default;

  virtual std::string name() const = 0;

  /// Carrier membership.
  virtual bool contains(const Value& v) const = 0;

  /// The binary operation. Precondition: both arguments are in the carrier.
  virtual Value op(const Value& a, const Value& b) const = 0;

  /// Identity element α (α ⊕ s = s = s ⊕ α), if one exists.
  virtual std::optional<Value> identity() const { return std::nullopt; }

  /// Absorbing element ω (ω ⊕ s = ω = s ⊕ ω), if one exists.
  virtual std::optional<Value> absorber() const { return std::nullopt; }

  /// The whole carrier, when finite and small enough to materialize.
  virtual std::optional<ValueVec> enumerate() const { return std::nullopt; }

  /// `n` carrier elements for randomized checking. The default draws from
  /// `enumerate()`; infinite carriers must override.
  virtual ValueVec sample(Rng& rng, int n) const;

  /// Structural shape for mrt::compile; Opaque (the default) means "not
  /// compilable" and routes consumers to the boxed interpreter.
  virtual SemigroupDesc describe() const { return {}; }
};

using SemigroupPtr = std::shared_ptr<const Semigroup>;

/// True if `v` acts as an identity on every enumerated element.
bool acts_as_identity(const Semigroup& s, const Value& v);

/// Folds ⊕ over a non-empty range.
Value fold(const Semigroup& s, const ValueVec& xs);

}  // namespace mrt
