#include "mrt/core/preorder_set.hpp"

#include "mrt/support/require.hpp"

namespace mrt {

bool PreorderSet::is_top(const Value& v) const {
  auto all = enumerate();
  MRT_REQUIRE(all.has_value());
  for (const Value& y : *all) {
    if (!leq(y, v)) return false;
  }
  return true;
}

bool PreorderSet::has_top() const {
  auto all = enumerate();
  MRT_REQUIRE(all.has_value());
  for (const Value& v : *all) {
    if (is_top(v)) return true;
  }
  return false;
}

ValueVec PreorderSet::sample(Rng& rng, int n) const {
  auto all = enumerate();
  MRT_REQUIRE(all.has_value() && !all->empty());
  ValueVec out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(rng.pick(*all));
  return out;
}

ValueVec tops(const PreorderSet& p) {
  auto all = p.enumerate();
  MRT_REQUIRE(all.has_value());
  ValueVec out;
  for (const Value& v : *all) {
    if (p.is_top(v)) out.push_back(v);
  }
  return out;
}

ValueVec bottoms(const PreorderSet& p) {
  auto all = p.enumerate();
  MRT_REQUIRE(all.has_value());
  ValueVec out;
  for (const Value& v : *all) {
    bool least = true;
    for (const Value& y : *all) {
      if (!p.leq(v, y)) {
        least = false;
        break;
      }
    }
    if (least) out.push_back(v);
  }
  return out;
}

ValueVec min_set(const PreorderSet& p, const ValueVec& xs) {
  ValueVec uniq = normalize_set(xs);
  ValueVec out;
  for (const Value& a : uniq) {
    bool dominated = false;
    for (const Value& b : uniq) {
      if (lt_of(p.cmp(b, a))) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(a);
  }
  return out;
}

}  // namespace mrt
