// The base-algebra catalogue: the atoms of the metalanguage.
//
// Base algebras come with *hand-proved* property annotations (the paper's
// model: atoms are axiomatized, combinators infer) — every annotation here is
// corroborated by the sampled/finite checker in the test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "mrt/core/quadrants.hpp"

namespace mrt {

// ---------------------------------------------------------------------------
// Semigroups
// ---------------------------------------------------------------------------

/// (ℕ∪{∞}, min) or (ℕ, min): selective commutative idempotent;
/// identity ∞ (only with ∞), absorber 0.
SemigroupPtr sg_min(bool with_inf = true);
/// (ℕ∪{∞}, max) or (ℕ, max): selective commutative idempotent;
/// identity 0, absorber ∞ (only with ∞).
SemigroupPtr sg_max(bool with_inf = true);
/// (ℕ∪{∞}, +) saturating, or plain (ℕ, +): commutative monoid;
/// identity 0, absorber ∞ (only with ∞).
SemigroupPtr sg_plus(bool with_inf = true);
/// (ℕ∪{∞}, ×) saturating, or plain (ℕ, ×): commutative monoid; identity 1.
/// With ∞, saturation makes ∞ absorbing (so 0·∞=∞ — a documented deviation
/// from exact arithmetic in exchange for a true absorber).
SemigroupPtr sg_times_nat(bool with_inf = true);
/// ([0,1], max): selective; identity 0, absorber 1.
SemigroupPtr sg_max_real();
/// ([0,1], ×): commutative monoid; identity 1, absorber 0.
SemigroupPtr sg_times_real();

/// ({0..n}, min): finite chain semilattice (selective monoid, identity n).
SemigroupPtr sg_chain_min(int n);
/// ({0..n}, max): finite chain semilattice (selective monoid, identity 0).
SemigroupPtr sg_chain_max(int n);
/// ({0..n}, ⊕) with a ⊕ b = min(n, a+b): the paper's §VI saturating example
/// (commutative monoid, *not* idempotent; N fails at the saturation point).
SemigroupPtr sg_chain_plus(int n);
/// (ℤ_n, +): modular addition (commutative group; not idempotent).
SemigroupPtr sg_plus_mod(int n);
/// ({0..n-1}, left projection): a ⊗ b = a.
SemigroupPtr sg_left_proj(int n);
/// ({0..n-1}, right projection): a ⊗ b = b.
SemigroupPtr sg_right_proj(int n);
/// (2^{0..k-1}, ∪) over bitmask values: commutative idempotent monoid,
/// *not* selective — the canonical non-selective middle factor of Thm 2.
SemigroupPtr sg_union_bits(int k);
/// (2^{0..k-1}, ∩): commutative idempotent monoid (identity = full set).
SemigroupPtr sg_inter_bits(int k);

/// Explicit finite magma over {0..n-1}; `table[i][j]` = i ⊗ j.
/// No laws assumed — the raw material of the randomized theorem sweeps.
SemigroupPtr sg_table(std::string name, std::vector<std::vector<int>> table);

// ---------------------------------------------------------------------------
// Preorders
// ---------------------------------------------------------------------------

/// (ℕ∪{∞}, ≤) or (ℕ, ≤): total order, smaller better; ⊤ = ∞ only with ∞.
PreorderPtr ord_nat_leq(bool with_inf = true);
/// (ℕ∪{∞}, ≥) or (ℕ, ≥): total order, larger better, ⊤ = 0 either way.
PreorderPtr ord_nat_geq(bool with_inf = true);
/// ([0,1], ≥): larger better, ⊤ = 0. Reliability preference.
PreorderPtr ord_unit_real_geq();
/// ({0..n}, ≤): finite chain.
PreorderPtr ord_chain(int n);
/// ({0..n}, ≥): reversed finite chain.
PreorderPtr ord_chain_rev(int n);
/// ({0..n-1}, =): discrete order (only reflexive pairs).
PreorderPtr ord_discrete(int n);
/// ({0..n-1}, all-related): a single equivalence class.
PreorderPtr ord_trivial(int n);
/// (2^{0..k-1}, ⊆) over bitmasks: partial order with ⊥ = ∅, ⊤ = full set.
PreorderPtr ord_subset_bits(int k);

/// Explicit finite preorder over {0..n-1}; `leq[i][j]` = (i ≲ j).
/// Precondition: reflexive and transitive (validated).
PreorderPtr ord_table(std::string name, std::vector<std::vector<std::uint8_t>> leq);

// ---------------------------------------------------------------------------
// Function families
// ---------------------------------------------------------------------------

/// {id}: the single identity function (the `right` ingredient).
FnFamilyPtr fam_id();
/// {κ_b | b ∈ values}: constant functions (the `left` ingredient).
FnFamilyPtr fam_const_of(std::string name, ValueVec values);
/// {λx. x + c | lo ≤ c ≤ hi} on ℕ∪{∞}, saturating.
FnFamilyPtr fam_add_const(std::int64_t lo, std::int64_t hi);
/// {λx. min(x, c) | c ∈ {lo..hi} ∪ {∞}} on ℕ∪{∞} (bandwidth arc capacity).
FnFamilyPtr fam_min_const(std::int64_t lo, std::int64_t hi);
/// {λx. c·x | c ∈ factors ⊆ (0,1]} on [0,1] (link reliability).
FnFamilyPtr fam_mul_const_real(std::vector<double> factors);
/// {λx. min(n, x + c) | lo ≤ c ≤ hi} on the finite chain {0..n}.
FnFamilyPtr fam_chain_add(int n, int lo, int hi);

/// Explicit finite family over carrier {0..n-1}: `fns[f][x]` = f(x).
FnFamilyPtr fam_table(std::string name, int carrier_size,
                      std::vector<std::vector<int>> fns);

// ---------------------------------------------------------------------------
// Canonical quadrant instances (paper section III examples)
// ---------------------------------------------------------------------------

/// (ℕ, min, +) — shortest distance.
Bisemigroup bs_shortest_path();
/// (ℕ, max, min) — greatest bandwidth.
Bisemigroup bs_widest_path();
/// (ℕ, +, ×) — path counting.
Bisemigroup bs_path_count();

/// (ℕ, ≤, +).
OrderSemigroup os_shortest_path();
/// (ℕ, ≥, min).
OrderSemigroup os_widest_path();
/// ([0,1], ≥, ×).
OrderSemigroup os_reliability();

/// (ℕ, min, {+c}).
SemigroupTransform st_shortest_path(std::int64_t max_c);

/// (ℕ, ≤, {+c | 1 ≤ c ≤ max_c}) — increasing, monotone, cancellative.
OrderTransform ot_shortest_path(std::int64_t max_c);
/// (ℕ, ≥, {min(·,c)}) — monotone, nondecreasing, but neither N nor I.
OrderTransform ot_widest_path(std::int64_t max_c);
/// ([0,1], ≥, {·c | c ∈ factors}) — increasing when all c < 1.
OrderTransform ot_reliability(std::vector<double> factors = {0.5, 0.8, 0.9,
                                                             0.99});
/// Hop count: shortest path whose only arc function is +1.
OrderTransform ot_hop_count();
/// Finite saturating chain ({0..n}, ≤, {min(n, ·+c)}); §VI example.
OrderTransform ot_chain_add(int n, int lo, int hi);

}  // namespace mrt
