#include "mrt/core/semigroup.hpp"

#include "mrt/support/require.hpp"

namespace mrt {

ValueVec Semigroup::sample(Rng& rng, int n) const {
  auto all = enumerate();
  MRT_REQUIRE(all.has_value() && !all->empty());
  ValueVec out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(rng.pick(*all));
  return out;
}

bool acts_as_identity(const Semigroup& s, const Value& v) {
  auto all = s.enumerate();
  MRT_REQUIRE(all.has_value());
  for (const Value& x : *all) {
    if (s.op(v, x) != x || s.op(x, v) != x) return false;
  }
  return true;
}

Value fold(const Semigroup& s, const ValueVec& xs) {
  MRT_REQUIRE(!xs.empty());
  Value acc = xs.front();
  for (std::size_t i = 1; i < xs.size(); ++i) acc = s.op(acc, xs[i]);
  return acc;
}

}  // namespace mrt
