#include "mrt/core/properties.hpp"

#include "mrt/support/require.hpp"

namespace mrt {

std::string to_string(Tri t) {
  switch (t) {
    case Tri::True: return "yes";
    case Tri::False: return "no";
    case Tri::Unknown: return "?";
  }
  return "?";
}

std::string to_string(Prop p) {
  switch (p) {
    case Prop::Assoc: return "assoc";
    case Prop::Comm: return "comm";
    case Prop::Idem: return "idem";
    case Prop::Selective: return "selective";
    case Prop::HasIdentity: return "identity";
    case Prop::HasAbsorber: return "absorber";
    case Prop::MulAssoc: return "mul-assoc";
    case Prop::Total: return "total";
    case Prop::Antisym: return "antisym";
    case Prop::HasTop: return "top";
    case Prop::HasBottom: return "bottom";
    case Prop::OneClass: return "one-class";
    case Prop::M_L: return "M";
    case Prop::M_R: return "M.r";
    case Prop::N_L: return "N";
    case Prop::N_R: return "N.r";
    case Prop::C_L: return "C";
    case Prop::C_R: return "C.r";
    case Prop::ND_L: return "ND";
    case Prop::ND_R: return "ND.r";
    case Prop::Inc_L: return "I";
    case Prop::Inc_R: return "I.r";
    case Prop::SInc_L: return "SI";
    case Prop::SInc_R: return "SI.r";
    case Prop::TFix_L: return "T";
    case Prop::TFix_R: return "T.r";
    case Prop::Count_: break;
  }
  MRT_UNREACHABLE("bad Prop");
}

void PropertyReport::set(Prop p, Tri v, std::string why) {
  slots_[index(p)] = PropStatus{v, std::move(why)};
}

void PropertyReport::refine(Prop p, Tri v, std::string why) {
  if (slots_[index(p)].value == Tri::Unknown && v != Tri::Unknown) {
    set(p, v, std::move(why));
  }
}

std::vector<Prop> PropertyReport::known() const {
  std::vector<Prop> out;
  for (std::size_t i = 0; i < kPropCount; ++i) {
    if (slots_[i].value != Tri::Unknown) out.push_back(static_cast<Prop>(i));
  }
  return out;
}

std::string to_string(StructureKind k) {
  switch (k) {
    case StructureKind::Semigroup: return "semigroup";
    case StructureKind::Preorder: return "preorder";
    case StructureKind::Bisemigroup: return "bisemigroup";
    case StructureKind::OrderSemigroup: return "order semigroup";
    case StructureKind::SemigroupTransform: return "semigroup transform";
    case StructureKind::OrderTransform: return "order transform";
  }
  return "?";
}

const std::vector<Prop>& props_for(StructureKind k) {
  static const std::vector<Prop> semigroup = {
      Prop::Assoc, Prop::Comm, Prop::Idem, Prop::Selective,
      Prop::HasIdentity, Prop::HasAbsorber};
  static const std::vector<Prop> preorder = {Prop::Total, Prop::Antisym,
                                             Prop::HasTop, Prop::HasBottom,
                                             Prop::OneClass};
  static const std::vector<Prop> bisemigroup = {
      Prop::Assoc, Prop::Comm, Prop::Idem, Prop::Selective,
      Prop::HasIdentity, Prop::HasAbsorber, Prop::MulAssoc,
      Prop::M_L, Prop::M_R, Prop::N_L, Prop::N_R, Prop::C_L, Prop::C_R,
      Prop::ND_L, Prop::ND_R, Prop::Inc_L, Prop::Inc_R,
      Prop::SInc_L, Prop::SInc_R, Prop::TFix_L, Prop::TFix_R};
  static const std::vector<Prop> order_semigroup = {
      Prop::Total, Prop::Antisym, Prop::HasTop, Prop::HasBottom,
      Prop::OneClass, Prop::MulAssoc,
      Prop::M_L, Prop::M_R, Prop::N_L, Prop::N_R, Prop::C_L, Prop::C_R,
      Prop::ND_L, Prop::ND_R, Prop::Inc_L, Prop::Inc_R,
      Prop::SInc_L, Prop::SInc_R, Prop::TFix_L, Prop::TFix_R};
  static const std::vector<Prop> semigroup_transform = {
      Prop::Assoc, Prop::Comm, Prop::Idem, Prop::Selective,
      Prop::HasIdentity, Prop::HasAbsorber,
      Prop::M_L, Prop::N_L, Prop::C_L,
      Prop::ND_L, Prop::Inc_L, Prop::SInc_L, Prop::TFix_L};
  static const std::vector<Prop> order_transform = {
      Prop::Total, Prop::Antisym, Prop::HasTop, Prop::HasBottom,
      Prop::OneClass,
      Prop::M_L, Prop::N_L, Prop::C_L,
      Prop::ND_L, Prop::Inc_L, Prop::SInc_L, Prop::TFix_L};

  switch (k) {
    case StructureKind::Semigroup: return semigroup;
    case StructureKind::Preorder: return preorder;
    case StructureKind::Bisemigroup: return bisemigroup;
    case StructureKind::OrderSemigroup: return order_semigroup;
    case StructureKind::SemigroupTransform: return semigroup_transform;
    case StructureKind::OrderTransform: return order_transform;
  }
  MRT_UNREACHABLE("bad StructureKind");
}

}  // namespace mrt
