#include "mrt/core/value.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "mrt/support/require.hpp"
#include "mrt/support/strings.hpp"

namespace mrt {

Value Value::integer(std::int64_t v) {
  Value out;
  out.kind_ = Kind::Int;
  out.int_ = v;
  return out;
}

Value Value::real(double v) {
  Value out;
  out.kind_ = Kind::Real;
  out.real_ = v;
  return out;
}

Value Value::inf() {
  Value out;
  out.kind_ = Kind::Inf;
  return out;
}

Value Value::omega() {
  Value out;
  out.kind_ = Kind::Omega;
  return out;
}

Value Value::tuple(ValueVec elems) {
  Value out;
  out.kind_ = Kind::Tuple;
  out.kids_ = std::make_shared<const ValueVec>(std::move(elems));
  return out;
}

Value Value::pair(Value a, Value b) {
  ValueVec v;
  v.reserve(2);
  v.push_back(std::move(a));
  v.push_back(std::move(b));
  return tuple(std::move(v));
}

Value Value::tagged(int tag, Value v) {
  Value out;
  out.kind_ = Kind::Tagged;
  out.tag_ = tag;
  ValueVec kid;
  kid.push_back(std::move(v));
  out.kids_ = std::make_shared<const ValueVec>(std::move(kid));
  return out;
}

std::int64_t Value::as_int() const {
  MRT_REQUIRE(kind_ == Kind::Int);
  return int_;
}

double Value::as_real() const {
  MRT_REQUIRE(kind_ == Kind::Real);
  return real_;
}

const ValueVec& Value::as_tuple() const {
  MRT_REQUIRE(kind_ == Kind::Tuple);
  return *kids_;
}

const Value& Value::first() const {
  const ValueVec& t = as_tuple();
  MRT_REQUIRE(t.size() == 2);
  return t[0];
}

const Value& Value::second() const {
  const ValueVec& t = as_tuple();
  MRT_REQUIRE(t.size() == 2);
  return t[1];
}

int Value::tag() const {
  MRT_REQUIRE(kind_ == Kind::Tagged);
  return tag_;
}

const Value& Value::untagged() const {
  MRT_REQUIRE(kind_ == Kind::Tagged);
  return (*kids_)[0];
}

int Value::compare_slow(const Value& other) const {
  switch (kind_) {
    case Kind::Unit:
    case Kind::Inf:
    case Kind::Omega:
      return 0;
    case Kind::Int:  // handled inline; kept for switch completeness
      if (int_ != other.int_) return int_ < other.int_ ? -1 : 1;
      return 0;
    case Kind::Real:
      if (real_ != other.real_) return real_ < other.real_ ? -1 : 1;
      return 0;
    case Kind::Tuple: {
      const ValueVec& a = *kids_;
      const ValueVec& b = *other.kids_;
      const std::size_t n = std::min(a.size(), b.size());
      for (std::size_t i = 0; i < n; ++i) {
        if (int c = a[i].compare(b[i]); c != 0) return c;
      }
      if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
      return 0;
    }
    case Kind::Tagged: {
      if (tag_ != other.tag_) return tag_ < other.tag_ ? -1 : 1;
      return (*kids_)[0].compare((*other.kids_)[0]);
    }
  }
  MRT_UNREACHABLE("bad Value kind");
}

std::size_t Value::hash() const {
  auto mix = [](std::size_t h, std::size_t x) {
    // boost::hash_combine-style mixing.
    return h ^ (x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  };
  std::size_t h = static_cast<std::size_t>(kind_) * 0x9ddfea08eb382d69ULL;
  switch (kind_) {
    case Kind::Unit:
    case Kind::Inf:
    case Kind::Omega:
      return h;
    case Kind::Int:
      return mix(h, static_cast<std::size_t>(int_));
    case Kind::Real:
      return mix(h, std::bit_cast<std::size_t>(real_));
    case Kind::Tuple: {
      for (const Value& v : *kids_) h = mix(h, v.hash());
      return mix(h, kids_->size());
    }
    case Kind::Tagged:
      return mix(mix(h, static_cast<std::size_t>(tag_)), (*kids_)[0].hash());
  }
  MRT_UNREACHABLE("bad Value kind");
}

std::string Value::to_string() const {
  switch (kind_) {
    case Kind::Unit:
      return "()";
    case Kind::Int:
      return std::to_string(int_);
    case Kind::Real:
      return format_double(real_);
    case Kind::Inf:
      return "inf";
    case Kind::Omega:
      return "omega";
    case Kind::Tuple: {
      std::vector<std::string> parts;
      parts.reserve(kids_->size());
      for (const Value& v : *kids_) parts.push_back(v.to_string());
      return "(" + join(parts, ", ") + ")";
    }
    case Kind::Tagged:
      return "#" + std::to_string(tag_) + ":" + (*kids_)[0].to_string();
  }
  MRT_UNREACHABLE("bad Value kind");
}

ValueVec normalize_set(ValueVec xs) {
  std::sort(xs.begin(), xs.end(),
            [](const Value& a, const Value& b) { return a.compare(b) < 0; });
  xs.erase(std::unique(xs.begin(), xs.end(),
                       [](const Value& a, const Value& b) { return a == b; }),
           xs.end());
  return xs;
}

}  // namespace mrt
