// Structural self-description of algebra components, for mrt::compile.
//
// Every concrete PreorderSet / FunctionFamily / Semigroup can report the
// shape it was built from as a small descriptor tree. The compiler walks
// these trees to lay out flat weight words and emit fused kernels; anything
// that reports Opaque (the default) compiles to an explicit boxed fallback.
//
// Descriptors are *shape only*: they carry the constructor parameters that
// determine semantics (carrier size, ∞-presence, finite leq/op tables), not
// behaviour. The differential property suite (tests/test_compile.cpp) pins
// each descriptor's compiled kernels against the boxed virtuals.
#pragma once

#include <cstdint>
#include <vector>

namespace mrt {

/// Shape of a PreorderSet. `kids` holds two entries for Lex/Direct and two
/// (S, T) for LexOmega; one (S) for AddTop.
struct OrderDesc {
  enum class K {
    Opaque,        // not expressible — compile falls back to boxed
    NatAsc,        // (ℕ[∪{∞}], ≤): smaller preferred; top = ∞ when with_inf
    NatDesc,       // (ℕ[∪{∞}], ≥): larger preferred; top = 0
    UnitRealDesc,  // ([0,1], ≥): larger preferred; top = 0.0
    ChainAsc,      // ({0..n}, ≤)
    ChainDesc,     // ({0..n}, ≥)
    Discrete,      // {0..n-1}, a ≲ b iff a == b
    Trivial,       // {0..n-1}, always ≲ (every element is ⊤)
    SubsetBits,    // subsets of {0..n-1} as bit masks, ordered by ⊆
    Table,         // finite carrier {0..n-1} with explicit leq matrix
    Lex,           // lexicographic product of kids[0], kids[1]
    Direct,        // direct (pointwise) product of kids[0], kids[1]
    AddTop,        // kids[0] ∪ {ω}, ω strictly above everything
    LexOmega,      // ((S∖⊤S)×T) ∪ {ω}  (Szendrei lex-omega)
  };
  K k = K::Opaque;
  bool with_inf = false;                        // NatAsc / NatDesc
  int n = 0;                                    // Chain*/Discrete/Trivial/SubsetBits/Table
  std::vector<std::vector<std::uint8_t>> leq;   // Table: leq[a][b]
  std::vector<OrderDesc> kids;
};

/// Shape of a FunctionFamily. Must align with the OrderDesc of the carrier
/// it acts on (Pair ↔ Lex/Direct, AddTop ↔ AddTop, LexOmega ↔ LexOmega).
struct FamilyDesc {
  enum class K {
    Opaque,
    Id,            // apply(label, a) = a
    Const,         // apply(label, a) = label (Const and ConstOfOrder)
    AddConst,      // ℕ∪{∞} saturating a + label
    MinConst,      // ℕ∪{∞} min(a, label)
    MulConstReal,  // [0,1] a × label
    ChainAdd,      // chain min(n, a + label)
    Table,         // finite fns[label][a] on carrier {0..n-1}
    Pair,          // componentwise (kids[0], kids[1]) on a product carrier
    Union,         // tagged label dispatch to kids[0] / kids[1]
    AddTop,        // fixes ω, applies kids[0] otherwise
    LexOmega,      // ω fixed; kids[0] (a Pair) applied, collapse when S hits ⊤
  };
  K k = K::Opaque;
  int n = 0;                          // ChainAdd cap / Table carrier size
  std::vector<std::vector<int>> fns;  // Table: fns[label][a]
  std::vector<FamilyDesc> kids;
};

/// Shape of a Semigroup (for mrt::compile's closure path).
struct SemigroupDesc {
  enum class K {
    Opaque,
    MinNat,     // (ℕ[∪{∞}], min)
    MaxNat,     // (ℕ[∪{∞}], max)
    PlusNat,    // (ℕ[∪{∞}], +) saturating at ∞
    TimesNat,   // (ℕ[∪{∞}], ×) saturating at ∞ (0·∞ = ∞, documented)
    MaxReal,    // ([0,1], max)
    TimesReal,  // ([0,1], ×)
    ChainMin,   // ({0..n}, min)
    ChainMax,   // ({0..n}, max)
    ChainPlus,  // ({0..n}, min(n, a+b))
    PlusMod,    // (ℤ_n, + mod n)
    LeftProj,   // ({0..n-1}, a)
    RightProj,  // ({0..n-1}, b)
    UnionBits,  // subsets of {0..n-1}, ∪
    InterBits,  // subsets of {0..n-1}, ∩
    Table,      // finite {0..n-1} with explicit op table
    Lex,        // lexicographic product (Theorem 2 construction)
    Direct,     // direct product
  };
  K k = K::Opaque;
  bool with_inf = false;
  int n = 0;
  std::vector<std::vector<int>> table;  // Table: op[a][b]
  std::vector<SemigroupDesc> kids;
};

}  // namespace mrt
