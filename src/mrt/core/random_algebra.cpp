#include "mrt/core/random_algebra.hpp"

#include <algorithm>
#include <map>

#include "mrt/core/bases.hpp"
#include "mrt/core/order.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

std::vector<std::vector<std::uint8_t>> closure(
    std::vector<std::vector<std::uint8_t>> m) {
  const std::size_t n = m.size();
  for (std::size_t i = 0; i < n; ++i) m[i][i] = 1;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!m[i][k]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (m[k][j]) m[i][j] = 1;
      }
    }
  }
  return m;
}

// Is f monotone / nondecreasing w.r.t. ord on {0..n-1}?
bool fn_monotone(const std::vector<int>& f, const PreorderSet& ord) {
  const int n = static_cast<int>(f.size());
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (ord.leq(Value::integer(a), Value::integer(b)) &&
          !ord.leq(Value::integer(f[static_cast<std::size_t>(a)]),
                   Value::integer(f[static_cast<std::size_t>(b)]))) {
        return false;
      }
    }
  }
  return true;
}

bool fn_nondecreasing(const std::vector<int>& f, const PreorderSet& ord) {
  const int n = static_cast<int>(f.size());
  for (int a = 0; a < n; ++a) {
    if (!ord.leq(Value::integer(a),
                 Value::integer(f[static_cast<std::size_t>(a)]))) {
      return false;
    }
  }
  return true;
}

std::vector<int> random_fn(Rng& rng, int n) {
  std::vector<int> f(static_cast<std::size_t>(n));
  for (int& y : f) y = static_cast<int>(rng.range(0, n - 1));
  return f;
}

}  // namespace

PreorderPtr random_total_preorder(Rng& rng, int n) {
  MRT_REQUIRE(n >= 1);
  std::vector<int> rank(static_cast<std::size_t>(n));
  for (int& r : rank) r = static_cast<int>(rng.range(0, n - 1));
  std::vector<std::vector<std::uint8_t>> leq(
      static_cast<std::size_t>(n),
      std::vector<std::uint8_t>(static_cast<std::size_t>(n), 0));
  for (std::size_t i = 0; i < leq.size(); ++i) {
    for (std::size_t j = 0; j < leq.size(); ++j) {
      leq[i][j] = rank[i] <= rank[j] ? 1 : 0;
    }
  }
  return ord_table("rand_total", std::move(leq));
}

PreorderPtr random_preorder(Rng& rng, int n) {
  MRT_REQUIRE(n >= 1);
  std::vector<std::vector<std::uint8_t>> leq(
      static_cast<std::size_t>(n),
      std::vector<std::uint8_t>(static_cast<std::size_t>(n), 0));
  for (std::size_t i = 0; i < leq.size(); ++i) {
    for (std::size_t j = 0; j < leq.size(); ++j) {
      if (i == j || rng.chance(0.3)) leq[i][j] = 1;
    }
  }
  return ord_table("rand_pre", closure(std::move(leq)));
}

SemigroupPtr random_semilattice(Rng& rng, int width, bool with_identity) {
  MRT_REQUIRE(width >= 1 && width <= 4);
  const int full = (1 << width) - 1;
  std::vector<int> masks;
  const int seeds = 2 + static_cast<int>(rng.range(0, 2));
  for (int i = 0; i < seeds; ++i) {
    masks.push_back(static_cast<int>(rng.range(0, full)));
  }
  if (with_identity) masks.push_back(full);
  // Close under intersection.
  for (std::size_t i = 0; i < masks.size(); ++i) {
    for (std::size_t j = 0; j < masks.size(); ++j) {
      const int m = masks[i] & masks[j];
      if (std::find(masks.begin(), masks.end(), m) == masks.end()) {
        masks.push_back(m);
      }
    }
  }
  std::sort(masks.begin(), masks.end());
  masks.erase(std::unique(masks.begin(), masks.end()), masks.end());

  std::map<int, int> index;
  for (std::size_t i = 0; i < masks.size(); ++i) {
    index[masks[i]] = static_cast<int>(i);
  }
  const std::size_t m = masks.size();
  std::vector<std::vector<int>> table(m, std::vector<int>(m));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      table[i][j] = index.at(masks[i] & masks[j]);
    }
  }
  return sg_table(with_identity ? "rand_semilattice_monoid"
                                : "rand_semilattice",
                  std::move(table));
}

SemigroupPtr random_chain_semilattice(Rng& rng, int n) {
  MRT_REQUIRE(n >= 1);
  std::vector<int> rank(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < rank.size(); ++i) rank[i] = static_cast<int>(i);
  rng.shuffle(rank);
  std::vector<std::vector<int>> table(static_cast<std::size_t>(n),
                                      std::vector<int>(static_cast<std::size_t>(n)));
  for (std::size_t i = 0; i < table.size(); ++i) {
    for (std::size_t j = 0; j < table.size(); ++j) {
      table[i][j] = rank[i] <= rank[j] ? static_cast<int>(i)
                                       : static_cast<int>(j);
    }
  }
  return sg_table("rand_chain", std::move(table));
}

SemigroupPtr random_magma(Rng& rng, int n) {
  MRT_REQUIRE(n >= 1);
  std::vector<std::vector<int>> table(static_cast<std::size_t>(n),
                                      std::vector<int>(static_cast<std::size_t>(n)));
  for (auto& row : table) {
    for (int& v : row) v = static_cast<int>(rng.range(0, n - 1));
  }
  return sg_table("rand_magma", std::move(table));
}

FnFamilyPtr random_fn_family(Rng& rng, int n, int nfns, FnStyle style,
                             const PreorderSet* ord) {
  MRT_REQUIRE(n >= 1 && nfns >= 1);
  MRT_REQUIRE(style == FnStyle::Arbitrary || ord != nullptr);
  std::vector<std::vector<int>> fns;
  fns.reserve(static_cast<std::size_t>(nfns));
  for (int k = 0; k < nfns; ++k) {
    std::vector<int> f;
    switch (style) {
      case FnStyle::Arbitrary:
        f = random_fn(rng, n);
        break;
      case FnStyle::Monotone: {
        bool found = false;
        for (int tries = 0; tries < 60 && !found; ++tries) {
          f = random_fn(rng, n);
          found = fn_monotone(f, *ord);
        }
        if (!found) {
          // Constants are always monotone.
          f.assign(static_cast<std::size_t>(n),
                   static_cast<int>(rng.range(0, n - 1)));
        }
        break;
      }
      case FnStyle::NonDecreasing: {
        bool found = false;
        for (int tries = 0; tries < 60 && !found; ++tries) {
          f = random_fn(rng, n);
          found = fn_nondecreasing(f, *ord);
        }
        if (!found) {
          f.resize(static_cast<std::size_t>(n));
          for (int a = 0; a < n; ++a) f[static_cast<std::size_t>(a)] = a;
        }
        break;
      }
      case FnStyle::Increasing: {
        f.resize(static_cast<std::size_t>(n));
        for (int a = 0; a < n; ++a) {
          std::vector<int> above;
          for (int b = 0; b < n; ++b) {
            if (lt_of(ord->cmp(Value::integer(a), Value::integer(b)))) {
              above.push_back(b);
            }
          }
          if (ord->is_top(Value::integer(a)) || above.empty()) {
            f[static_cast<std::size_t>(a)] = a;
          } else {
            f[static_cast<std::size_t>(a)] =
                above[static_cast<std::size_t>(rng.below(above.size()))];
          }
        }
        break;
      }
      case FnStyle::ConstId: {
        f.resize(static_cast<std::size_t>(n));
        if (rng.chance(0.4)) {
          for (int a = 0; a < n; ++a) f[static_cast<std::size_t>(a)] = a;
        } else {
          const int b = static_cast<int>(rng.range(0, n - 1));
          f.assign(static_cast<std::size_t>(n), b);
        }
        break;
      }
    }
    fns.push_back(std::move(f));
  }
  return fam_table("rand_fns", n, std::move(fns));
}

OrderTransform random_order_transform(Rng& rng, const RandomConfig& cfg) {
  const int n = static_cast<int>(rng.range(cfg.min_elems, cfg.max_elems));
  PreorderPtr ord;
  switch (rng.range(0, 4)) {
    case 0: ord = random_total_preorder(rng, n); break;
    case 1: ord = random_preorder(rng, n); break;
    case 2: ord = ord_chain(n - 1); break;
    case 3: ord = ord_discrete(n); break;
    default: ord = ord_trivial(n); break;
  }
  const auto style = static_cast<FnStyle>(rng.range(0, 4));
  const int nfns = static_cast<int>(rng.range(cfg.min_fns, cfg.max_fns));
  FnFamilyPtr fns = random_fn_family(rng, n, nfns, style, ord.get());
  return OrderTransform{"rand_ot", std::move(ord), std::move(fns), {}};
}

namespace {

SemigroupPtr random_mul_for(Rng& rng, int n, const PreorderSet* ord) {
  switch (rng.range(0, 3)) {
    case 0: return random_magma(rng, n);
    case 1: return sg_left_proj(n);
    case 2: return sg_right_proj(n);
    default: {
      if (ord != nullptr) {
        // min by a linear extension-ish rank of ord: monotone by construction
        // when ord is total.
        std::vector<std::vector<int>> table(
            static_cast<std::size_t>(n),
            std::vector<int>(static_cast<std::size_t>(n)));
        for (int i = 0; i < n; ++i) {
          for (int j = 0; j < n; ++j) {
            table[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
                ord->leq(Value::integer(i), Value::integer(j)) ? i : j;
          }
        }
        return sg_table("ord_min", std::move(table));
      }
      return random_magma(rng, n);
    }
  }
}

}  // namespace

OrderSemigroup random_order_semigroup(Rng& rng, const RandomConfig& cfg) {
  const int n = static_cast<int>(rng.range(cfg.min_elems, cfg.max_elems));
  PreorderPtr ord = rng.chance(0.5) ? random_total_preorder(rng, n)
                                    : random_preorder(rng, n);
  SemigroupPtr mul = random_mul_for(rng, n, ord.get());
  return OrderSemigroup{"rand_os", std::move(ord), std::move(mul), {}};
}

SemigroupTransform random_semigroup_transform(Rng& rng,
                                              const RandomConfig& cfg) {
  SemigroupPtr add;
  switch (rng.range(0, 2)) {
    case 0: add = random_semilattice(rng, 2, rng.chance(0.5)); break;
    case 1: add = random_chain_semilattice(
                rng, static_cast<int>(rng.range(cfg.min_elems, cfg.max_elems)));
            break;
    default: add = random_semilattice(rng, 3, rng.chance(0.5)); break;
  }
  const int n = static_cast<int>(add->enumerate()->size());
  std::vector<std::vector<int>> fns;
  const int nfns = static_cast<int>(rng.range(cfg.min_fns, cfg.max_fns));
  for (int k = 0; k < nfns; ++k) {
    if (rng.chance(0.5)) {
      // ⊕-translation f(x) = x ⊕ c: a homomorphism by comm+idem, biasing
      // the sweep toward M = true cases.
      const int c = static_cast<int>(rng.range(0, n - 1));
      std::vector<int> f(static_cast<std::size_t>(n));
      for (int x = 0; x < n; ++x) {
        f[static_cast<std::size_t>(x)] = static_cast<int>(
            add->op(Value::integer(x), Value::integer(c)).as_int());
      }
      fns.push_back(std::move(f));
    } else {
      fns.push_back(random_fn(rng, n));
    }
  }
  return SemigroupTransform{"rand_st", std::move(add),
                            fam_table("rand_fns", n, std::move(fns)), {}};
}

Bisemigroup random_bisemigroup(Rng& rng, const RandomConfig& cfg) {
  SemigroupPtr add;
  if (rng.chance(0.5)) {
    add = random_chain_semilattice(
        rng, static_cast<int>(rng.range(cfg.min_elems, cfg.max_elems)));
  } else {
    add = random_semilattice(rng, 2, rng.chance(0.5));
  }
  const int n = static_cast<int>(add->enumerate()->size());
  SemigroupPtr mul;
  if (rng.chance(0.25)) {
    mul = add;  // ⊗ = ⊕ distributes over itself (comm+idem)
  } else {
    mul = random_mul_for(rng, n, nullptr);
  }
  return Bisemigroup{"rand_bs", std::move(add), std::move(mul), {}};
}

}  // namespace mrt
