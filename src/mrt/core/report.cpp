#include "mrt/core/report.hpp"

#include <sstream>

#include "mrt/support/table.hpp"

namespace mrt {

std::string render_report(const std::string& name, StructureKind kind,
                          const PropertyReport& report) {
  std::ostringstream out;
  out << name << " : " << to_string(kind) << "\n";
  Table t({"property", "holds", "because"});
  for (Prop p : props_for(kind)) {
    const PropStatus& st = report.get(p);
    t.add_row({to_string(p), to_string(st.value),
               st.why.empty() ? "(not derived)" : st.why});
  }
  out << t.render();
  return out.str();
}

std::string describe(const Bisemigroup& a) {
  return render_report(a.name, StructureKind::Bisemigroup, a.props);
}
std::string describe(const OrderSemigroup& a) {
  return render_report(a.name, StructureKind::OrderSemigroup, a.props);
}
std::string describe(const SemigroupTransform& a) {
  return render_report(a.name, StructureKind::SemigroupTransform, a.props);
}
std::string describe(const OrderTransform& a) {
  return render_report(a.name, StructureKind::OrderTransform, a.props);
}

std::string summary_line(const PropertyReport& report, StructureKind kind) {
  const bool ordered = kind == StructureKind::OrderSemigroup ||
                       kind == StructureKind::OrderTransform;
  std::ostringstream out;
  auto show = [&](const char* label, Prop p) {
    out << label << "=" << to_string(report.value(p)) << " ";
  };
  show("M", Prop::M_L);
  show("N", Prop::N_L);
  show("C", Prop::C_L);
  show("ND", Prop::ND_L);
  show("I", Prop::Inc_L);
  if (ordered) show("T", Prop::TFix_L);
  return out.str();
}

}  // namespace mrt
