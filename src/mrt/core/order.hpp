// Comparison outcomes for preorders.
//
// A preorder `≲` classifies any pair (a, b) into one of four relations
// (paper section II): `a < b` (strictly better), `a ~ b` (equivalent),
// `a > b`, or `a # b` (incomparable).
#pragma once

#include <string>

namespace mrt {

enum class Cmp : unsigned char {
  Less,     ///< a ≲ b and not b ≲ a    (written a < b)
  Equiv,    ///< a ≲ b and b ≲ a        (written a ~ b)
  Greater,  ///< b ≲ a and not a ≲ b    (written a > b)
  Incomp,   ///< neither a ≲ b nor b ≲ a (written a # b)
};

/// Derives the four-way classification from the two directions of ≲.
constexpr Cmp cmp_from_leq(bool a_le_b, bool b_le_a) {
  if (a_le_b) return b_le_a ? Cmp::Equiv : Cmp::Less;
  return b_le_a ? Cmp::Greater : Cmp::Incomp;
}

constexpr bool leq_of(Cmp c) { return c == Cmp::Less || c == Cmp::Equiv; }
constexpr bool lt_of(Cmp c) { return c == Cmp::Less; }
constexpr bool equiv_of(Cmp c) { return c == Cmp::Equiv; }
constexpr bool incomp_of(Cmp c) { return c == Cmp::Incomp; }

/// Swaps the roles of the two operands.
constexpr Cmp flip(Cmp c) {
  switch (c) {
    case Cmp::Less: return Cmp::Greater;
    case Cmp::Greater: return Cmp::Less;
    default: return c;
  }
}

std::string to_string(Cmp c);

}  // namespace mrt
