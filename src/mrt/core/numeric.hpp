// Shared numeric helpers for carriers over ℕ ∪ {∞} (Value Int / Inf).
#pragma once

#include <algorithm>

#include "mrt/core/value.hpp"
#include "mrt/support/require.hpp"

namespace mrt {

/// Membership in ℕ ∪ {∞}.
inline bool is_ext_nat(const Value& v) {
  return v.is_inf() || (v.is_int() && v.as_int() >= 0);
}

/// Saturating addition on ℕ ∪ {∞}.
inline Value ext_add(const Value& a, const Value& b) {
  if (a.is_inf() || b.is_inf()) return Value::inf();
  return Value::integer(a.as_int() + b.as_int());
}

/// Saturating multiplication on ℕ ∪ {∞}.
inline Value ext_mul(const Value& a, const Value& b) {
  if (a.is_inf() || b.is_inf()) return Value::inf();
  return Value::integer(a.as_int() * b.as_int());
}

/// Numeric ≤ on ℕ ∪ {∞} (∞ greatest).
inline bool ext_leq(const Value& a, const Value& b) {
  if (a.is_inf()) return b.is_inf();
  if (b.is_inf()) return true;
  return a.as_int() <= b.as_int();
}

inline Value ext_min(const Value& a, const Value& b) {
  return ext_leq(a, b) ? a : b;
}

inline Value ext_max(const Value& a, const Value& b) {
  return ext_leq(a, b) ? b : a;
}

}  // namespace mrt
