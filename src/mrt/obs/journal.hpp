// The convergence flight recorder: a low-overhead structured event journal.
//
// Producers append fixed-size POD JournalRecords into per-thread ring
// buffers; a drain merges every ring into one log ordered by a global
// sequence counter. The design constraints mirror the metrics registry
// (ISSUE 1, docs/OBSERVABILITY.md):
//  - near-zero cost when off: every record() call first reads the inlined
//    `journal_enabled()` flag (a relaxed atomic load, initialized from the
//    MRT_JOURNAL environment variable) and returns immediately when clear;
//  - race-free when drained mid-run: each ring is guarded by its own mutex,
//    uncontended on the hot path because only its owning thread appends —
//    a concurrent drain takes the same mutex, so TSan-clean by construction;
//  - bounded memory: a full ring overwrites its oldest record (flight
//    recorder semantics — the most recent history survives) and counts the
//    overwrite in dropped().
//
// Records carry (subsystem, event kind, node/arc ids, solver version,
// steady-clock ns, sim virtual time) plus a `stream` id that separates
// interleaved producers: each Solver::solve() binding and each PathVectorSim
// takes a fresh stream from journal_next_stream(), so the provenance layer
// (provenance.hpp) can reconstruct one solver's causal chain out of a
// process-global log.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

namespace mrt::obs {

/// Global journal switch, independent of obs::enabled(). Initialized once
/// from MRT_JOURNAL ("1"/"true"/"on"/"yes" enable); flippable at runtime
/// with set_journal_enabled().
namespace detail {
extern std::atomic<bool> g_journal_enabled;
}  // namespace detail

inline bool journal_enabled() noexcept {
  return detail::g_journal_enabled.load(std::memory_order_relaxed);
}
void set_journal_enabled(bool on) noexcept;

/// Which layer emitted a record.
enum class Subsystem : std::uint8_t {
  Dyn,    ///< the solver seam (mrt::dyn)
  Sim,    ///< the path-vector simulator (mrt::sim)
  Chaos,  ///< fault-injection campaigns (mrt::chaos)
};

enum class EventKind : std::uint8_t {
  // mrt::dyn — the solver seam. WitnessAttach / WitnessClear are *diff*
  // events: one per node whose (weight, witness arc) actually changed in a
  // solve/update, so the last attach for a node names the delta that caused
  // its current route (see provenance.hpp).
  SolveBegin,         ///< cold bind; aux = num_nodes
  UpdateBegin,        ///< delta batch accepted; aux = ops in the batch
  DeltaArc,           ///< arc alive-status changed; aux = 1 if now admin-up
  DeltaRelabel,       ///< arc label replaced
  DeltaNodeDown,      ///< node transitioned up -> down
  DeltaNodeUp,        ///< node transitioned down -> up
  WitnessInvalidate,  ///< route cleared by transitive invalidation; arc = old witness
  WitnessAttach,      ///< route (re)settled; arc = witness (-1 at the destination)
  WitnessClear,       ///< route gone at the end of an update
  RelaxSettle,        ///< warm Dijkstra settled a node; aux = settle ordinal
  RelaxWave,          ///< Bellman worklist round; aux = frontier size
  UpdateEnd,          ///< aux = affected nodes (negative when the pass ran cold)
  // mrt::sim — the path-vector protocol (sim_us carries virtual time).
  MsgSend,     ///< advertisement enqueued; node = sender, arc = channel, aux = withdrawal
  MsgDeliver,  ///< advertisement delivered; node = receiver, arc = channel, aux = withdrawal
  MsgLoss,     ///< delivery lost; aux = 0 dead arc, 1 injected fault
  Reselect,    ///< selection changed; arc = new witness, aux = flap count
  LinkDown,
  LinkUp,
  NodeCrash,
  NodeRestart,
  Resync,
  StaleDrop,  ///< reordered delivery discarded as stale (latest send wins)
  // mrt::adv — adversarial schedule policies (sim_us carries virtual time).
  SchedReorder,  ///< a send overtook an earlier one on its arc
  SchedStarve,   ///< a best-route advertisement was priority-inverted
  // mrt::chaos
  FaultOutcome,  ///< run verdict; aux = 0 pass, 1 diverged, 2 accounting,
                 ///< 3 oracle, 4 certificate bound violated
};

const char* to_string(Subsystem s) noexcept;
const char* to_string(EventKind k) noexcept;

/// One journal entry. POD: rings copy these by assignment, never allocate.
struct JournalRecord {
  std::uint64_t seq = 0;      ///< global order, 1-based (0 = "no record")
  std::uint64_t t_ns = 0;     ///< steady-clock ns since the journal epoch
  std::uint64_t sim_us = 0;   ///< simulator virtual time in µs (Sim records)
  std::uint64_t version = 0;  ///< DynNet topology version (Dyn records)
  std::int64_t aux = 0;       ///< kind-specific payload
  std::uint32_t stream = 0;   ///< producer stream (solver binding / sim run)
  std::int32_t node = -1;
  std::int32_t arc = -1;
  Subsystem subsystem = Subsystem::Dyn;
  EventKind kind = EventKind::SolveBegin;

  /// One-line rendering. Deliberately excludes t_ns, so two journals of the
  /// same deterministic run render identically after a journal reset (the
  /// chaos replay test diffs these lines).
  std::string describe() const;
};
static_assert(std::is_trivially_copyable_v<JournalRecord>,
              "rings copy records raw");

/// The process-global flight recorder. Use through journal(); the
/// constructor is private because per-thread rings are cached in
/// thread-local storage that assumes a single instance.
class Journal {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 15;  ///< per thread

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one record (no-op when the journal is disabled). Safe from any
  /// thread; concurrent with drain()/snapshot()/reset().
  void record(Subsystem s, EventKind k, std::uint32_t stream, int node,
              int arc, std::int64_t aux = 0, std::uint64_t version = 0,
              std::uint64_t sim_us = 0) noexcept;

  /// Merges every ring into one log sorted by seq and clears the rings.
  std::vector<JournalRecord> drain();
  /// Same merge without clearing.
  std::vector<JournalRecord> snapshot() const;

  /// Records overwritten because a ring was full (cumulative since reset).
  std::uint64_t dropped() const;
  /// Records accepted since reset (drained or not, minus nothing).
  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  /// Clears every ring, the drop counts, the sequence counter, and the
  /// stream numbering (journal_next_stream restarts at 1 — deterministic
  /// replays after a reset render identical describe() lines), and re-stamps
  /// the epoch. Ring capacity changes requested by set_capacity take effect
  /// here. Thread rings stay registered (stable for writers).
  void reset();

  /// Per-thread ring capacity for rings created or reset() after the call.
  void set_capacity(std::size_t records);

 private:
  struct Ring {
    std::mutex mu;
    std::vector<JournalRecord> buf;  // fixed size = capacity
    std::size_t next = 0;            // write cursor
    std::size_t count = 0;           // live records (<= buf.size())
    std::uint64_t dropped = 0;
  };

  Journal() = default;
  friend Journal& journal();

  /// The calling thread's ring (a plain pointer is enough precisely because
  /// Journal is single-instance and leaked).
  static thread_local Ring* t_ring_;

  Ring& local_ring();
  static void collect(const Ring& r, std::vector<JournalRecord>& out);

  mutable std::mutex mu_;  // guards rings_ registration and capacity_
  std::vector<std::unique_ptr<Ring>> rings_;
  std::size_t capacity_ = kDefaultCapacity;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::int64_t> epoch_ns_{0};
};

/// The process-wide journal (leaked, like the metrics registry: outlives
/// static destructors so late writers never touch a dead object).
Journal& journal();

/// A fresh producer-stream id (1-based; 0 means "no stream").
std::uint32_t journal_next_stream() noexcept;

/// Hot-path shorthand: one relaxed load when the journal is off.
inline void jrecord(Subsystem s, EventKind k, std::uint32_t stream, int node,
                    int arc, std::int64_t aux = 0, std::uint64_t version = 0,
                    std::uint64_t sim_us = 0) noexcept {
  if (!journal_enabled()) return;
  journal().record(s, k, stream, node, arc, aux, version, sim_us);
}

}  // namespace mrt::obs
