#include "mrt/obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "mrt/support/require.hpp"

namespace mrt::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::pre_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (!stack_.empty()) {
    MRT_REQUIRE(stack_.back().kind == '[');  // bare values only inside arrays
    if (stack_.back().has_entry) out_ << ',';
    stack_.back().has_entry = true;
  }
}

void JsonWriter::open(char c) {
  pre_value();
  out_ << c;
  stack_.push_back({c, false});
}

void JsonWriter::close(char expected_open, char c) {
  MRT_REQUIRE(!stack_.empty() && stack_.back().kind == expected_open);
  MRT_REQUIRE(!key_pending_);
  stack_.pop_back();
  out_ << c;
}

JsonWriter& JsonWriter::begin_object() {
  open('{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close('{', '}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  open('[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close('[', ']');
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  MRT_REQUIRE(!stack_.empty() && stack_.back().kind == '{' && !key_pending_);
  if (stack_.back().has_entry) out_ << ',';
  stack_.back().has_entry = true;
  out_ << '"' << json_escape(k) << "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  pre_value();
  out_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  if (!std::isfinite(v)) {
    out_ << "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ << (v ? "true" : "false");
  return *this;
}

}  // namespace mrt::obs
