#include "mrt/obs/trace.hpp"

#include <atomic>
#include <fstream>
#include <ostream>
#include <utility>

#include "mrt/obs/json.hpp"
#include "mrt/support/require.hpp"

namespace mrt::obs {
namespace {

std::atomic<TraceSession*> g_current{nullptr};

}  // namespace

TraceSession::TraceSession() : epoch_(std::chrono::steady_clock::now()) {}

TraceSession::~TraceSession() { uninstall(); }

void TraceSession::install() {
  TraceSession* expected = nullptr;
  const bool ok =
      g_current.compare_exchange_strong(expected, this,
                                        std::memory_order_acq_rel);
  MRT_REQUIRE(ok || expected == this);
}

void TraceSession::uninstall() {
  TraceSession* expected = this;
  g_current.compare_exchange_strong(expected, nullptr,
                                    std::memory_order_acq_rel);
}

TraceSession* TraceSession::current() noexcept {
  return g_current.load(std::memory_order_acquire);
}

double TraceSession::wall_now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceSession::push(TraceEvent e) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void TraceSession::complete(std::string name, std::string cat, double ts_us,
                            double dur_us, int pid, int tid,
                            std::vector<TraceArg> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.phase = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  push(std::move(e));
}

void TraceSession::instant(std::string name, std::string cat, double ts_us,
                           int pid, int tid, std::vector<TraceArg> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.phase = 'i';
  e.ts_us = ts_us;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  push(std::move(e));
}

void TraceSession::counter(std::string name, double ts_us, int pid,
                           double value) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = "counter";
  e.phase = 'C';
  e.ts_us = ts_us;
  e.pid = pid;
  e.args.push_back({"value", value});
  push(std::move(e));
}

void TraceSession::name_thread(int pid, int tid, std::string name) {
  TraceEvent e;
  e.name = "thread_name";
  e.phase = 'M';
  e.pid = pid;
  e.tid = tid;
  e.args.push_back({"name", std::move(name)});
  push(std::move(e));
}

void TraceSession::wall_instant(std::string name, std::string cat, int tid,
                                std::vector<TraceArg> args) {
  instant(std::move(name), std::move(cat), wall_now_us(), kWallPid, tid,
          std::move(args));
}

std::size_t TraceSession::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceSession::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceSession::write_chrome_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(out);
  w.begin_object();
  w.key("traceEvents").begin_array();
  auto emit_process = [&w](int pid, const char* name) {
    w.begin_object();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(pid);
    w.key("tid").value(0);
    w.key("args").begin_object().key("name").value(name).end_object();
    w.end_object();
  };
  emit_process(kWallPid, "wall-clock");
  emit_process(kSimPid, "sim-time");
  for (const TraceEvent& e : events_) {
    w.begin_object();
    w.key("name").value(e.name);
    if (!e.cat.empty()) w.key("cat").value(e.cat);
    w.key("ph").value(std::string(1, e.phase));
    w.key("ts").value(e.ts_us);
    if (e.phase == 'X') w.key("dur").value(e.dur_us);
    if (e.phase == 'i') w.key("s").value("t");  // thread-scoped instant
    w.key("pid").value(e.pid);
    w.key("tid").value(e.tid);
    if (!e.args.empty()) {
      w.key("args").begin_object();
      for (const TraceArg& a : e.args) {
        w.key(a.key);
        if (const auto* i = std::get_if<std::int64_t>(&a.value)) {
          w.value(*i);
        } else if (const auto* d = std::get_if<double>(&a.value)) {
          w.value(*d);
        } else {
          w.value(std::get<std::string>(a.value));
        }
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.end_object();
  MRT_REQUIRE(w.complete());
}

bool TraceSession::write_chrome_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_json(out);
  out << '\n';
  return static_cast<bool>(out);
}

ScopedSpan::ScopedSpan(const char* name, const char* cat, int tid) noexcept
    : session_(TraceSession::current()), name_(name), cat_(cat), tid_(tid) {
  if (session_) start_us_ = session_->wall_now_us();
}

ScopedSpan::~ScopedSpan() {
  if (!session_) return;
  const double end_us = session_->wall_now_us();
  session_->complete(name_, cat_, start_us_, end_us - start_us_,
                     TraceSession::kWallPid, tid_);
}

}  // namespace mrt::obs
