#include "mrt/obs/journal.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mrt::obs {
namespace {

bool journal_env_enabled() {
  const char* v = std::getenv("MRT_JOURNAL");
  if (!v) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "on") == 0 || std::strcmp(v, "yes") == 0;
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<std::uint32_t> g_next_stream{0};

}  // namespace

thread_local Journal::Ring* Journal::t_ring_ = nullptr;

namespace detail {
std::atomic<bool> g_journal_enabled{journal_env_enabled()};
}  // namespace detail

void set_journal_enabled(bool on) noexcept {
  detail::g_journal_enabled.store(on, std::memory_order_relaxed);
}

const char* to_string(Subsystem s) noexcept {
  switch (s) {
    case Subsystem::Dyn:
      return "dyn";
    case Subsystem::Sim:
      return "sim";
    case Subsystem::Chaos:
      return "chaos";
  }
  return "?";
}

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::SolveBegin:
      return "solve_begin";
    case EventKind::UpdateBegin:
      return "update_begin";
    case EventKind::DeltaArc:
      return "delta_arc";
    case EventKind::DeltaRelabel:
      return "delta_relabel";
    case EventKind::DeltaNodeDown:
      return "delta_node_down";
    case EventKind::DeltaNodeUp:
      return "delta_node_up";
    case EventKind::WitnessInvalidate:
      return "witness_invalidate";
    case EventKind::WitnessAttach:
      return "witness_attach";
    case EventKind::WitnessClear:
      return "witness_clear";
    case EventKind::RelaxSettle:
      return "relax_settle";
    case EventKind::RelaxWave:
      return "relax_wave";
    case EventKind::UpdateEnd:
      return "update_end";
    case EventKind::MsgSend:
      return "msg_send";
    case EventKind::MsgDeliver:
      return "msg_deliver";
    case EventKind::MsgLoss:
      return "msg_loss";
    case EventKind::Reselect:
      return "reselect";
    case EventKind::LinkDown:
      return "link_down";
    case EventKind::LinkUp:
      return "link_up";
    case EventKind::NodeCrash:
      return "node_crash";
    case EventKind::NodeRestart:
      return "node_restart";
    case EventKind::Resync:
      return "resync";
    case EventKind::StaleDrop:
      return "stale_drop";
    case EventKind::SchedReorder:
      return "sched_reorder";
    case EventKind::SchedStarve:
      return "sched_starve";
    case EventKind::FaultOutcome:
      return "fault_outcome";
  }
  return "?";
}

std::string JournalRecord::describe() const {
  char buf[192];
  int len = std::snprintf(
      buf, sizeof buf, "%08llu %s.%s s=%lu node=%d arc=%d aux=%lld",
      static_cast<unsigned long long>(seq), to_string(subsystem),
      to_string(kind), static_cast<unsigned long>(stream), node, arc,
      static_cast<long long>(aux));
  if (version != 0 && len > 0 && len < static_cast<int>(sizeof buf)) {
    len += std::snprintf(buf + len, sizeof buf - static_cast<std::size_t>(len),
                         " v=%llu", static_cast<unsigned long long>(version));
  }
  if (sim_us != 0 && len > 0 && len < static_cast<int>(sizeof buf)) {
    len += std::snprintf(buf + len, sizeof buf - static_cast<std::size_t>(len),
                         " t_sim=%lluus",
                         static_cast<unsigned long long>(sim_us));
  }
  return buf;
}

Journal::Ring& Journal::local_ring() {
  if (t_ring_ != nullptr) return *t_ring_;
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<Ring>());
  Ring& r = *rings_.back();
  r.buf.resize(capacity_);
  t_ring_ = &r;
  return r;
}

void Journal::record(Subsystem s, EventKind k, std::uint32_t stream, int node,
                     int arc, std::int64_t aux, std::uint64_t version,
                     std::uint64_t sim_us) noexcept {
  if (!journal_enabled()) return;
  Ring& r = local_ring();
  JournalRecord rec;
  rec.seq = 1 + seq_.fetch_add(1, std::memory_order_relaxed);
  rec.t_ns = static_cast<std::uint64_t>(
      steady_now_ns() - epoch_ns_.load(std::memory_order_relaxed));
  rec.sim_us = sim_us;
  rec.version = version;
  rec.aux = aux;
  rec.stream = stream;
  rec.node = node;
  rec.arc = arc;
  rec.subsystem = s;
  rec.kind = k;
  recorded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.buf.empty()) {  // capacity 0: count, keep nothing
    ++r.dropped;
    return;
  }
  if (r.count == r.buf.size()) {
    ++r.dropped;  // overwrite the oldest: newest history wins
  } else {
    ++r.count;
  }
  r.buf[r.next] = rec;
  r.next = (r.next + 1) % r.buf.size();
}

void Journal::collect(const Ring& r, std::vector<JournalRecord>& out) {
  // Caller holds r.mu. Oldest live record first.
  const std::size_t cap = r.buf.size();
  if (cap == 0 || r.count == 0) return;
  std::size_t at = (r.next + cap - r.count) % cap;
  for (std::size_t i = 0; i < r.count; ++i) {
    out.push_back(r.buf[at]);
    at = (at + 1) % cap;
  }
}

std::vector<JournalRecord> Journal::drain() {
  std::vector<JournalRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& rp : rings_) {
      std::lock_guard<std::mutex> rlock(rp->mu);
      collect(*rp, out);
      rp->count = 0;
      rp->next = 0;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const JournalRecord& a, const JournalRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<JournalRecord> Journal::snapshot() const {
  std::vector<JournalRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& rp : rings_) {
      std::lock_guard<std::mutex> rlock(rp->mu);
      collect(*rp, out);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const JournalRecord& a, const JournalRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::uint64_t Journal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& rp : rings_) {
    std::lock_guard<std::mutex> rlock(rp->mu);
    n += rp->dropped;
  }
  return n;
}

void Journal::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& rp : rings_) {
    std::lock_guard<std::mutex> rlock(rp->mu);
    rp->buf.assign(capacity_, JournalRecord{});
    rp->next = 0;
    rp->count = 0;
    rp->dropped = 0;
  }
  seq_.store(0, std::memory_order_relaxed);
  recorded_.store(0, std::memory_order_relaxed);
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  // Stream numbering restarts with the window: a deterministic run replayed
  // after reset() renders byte-identical describe() lines (streams allocated
  // before the reset keep their old — now possibly reused — ids).
  g_next_stream.store(0, std::memory_order_relaxed);
}

void Journal::set_capacity(std::size_t records) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = records;
}

Journal& journal() {
  static Journal* j = new Journal();  // leaked: outlives static destructors
  return *j;
}

std::uint32_t journal_next_stream() noexcept {
  return 1 + g_next_stream.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace mrt::obs
