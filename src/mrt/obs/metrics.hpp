// Low-overhead metrics for the solvers, the simulator, and the inference
// engine: named Counters, Gauges, and log-2 Histograms owned by a global but
// resettable Registry.
//
// Design constraints (ISSUE 1):
//  - instrumentation must cost near-nothing when observability is off: every
//    hot-path site guards on the inlined `obs::enabled()` flag (a relaxed
//    atomic load), and hot loops accumulate into locals that are flushed to
//    the registry once per call;
//  - metric objects have stable addresses for the lifetime of the process —
//    `Registry::reset()` zeroes values but never invalidates references, so
//    call sites may cache `Counter&` in function-local statics;
//  - export is deterministic: snapshots and JSON/CSV dumps are sorted by
//    metric name.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mrt::obs {

/// Global instrumentation switch. Initialized once from the MRT_OBS_ENABLED
/// environment variable ("1"/"true"/"on"/"yes" enable; unset or anything
/// else disables); flippable at runtime with set_enabled().
namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A named scalar with two explicit write disciplines — pick one per metric
/// and stick to it:
///  - set(): last-write-wins snapshot ("current depth", "current phase");
///  - max_of(): monotone high-water mark ("deepest backlog seen"). This is
///    a CAS loop, so concurrent max_of calls from many threads publish the
///    true maximum — a larger value is never lost to a smaller racer.
/// Mixing the two on one gauge gives the old ambiguous "last-or-max"
/// reading and is a bug at the call site.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  /// Raises the value to `v` if larger; no-op otherwise.
  void max_of(double v) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Histogram over non-negative integers with log-2 buckets: bucket 0 holds
/// the value 0 and bucket i >= 1 holds [2^(i-1), 2^i - 1] (i.e. values whose
/// bit width is i). 65 buckets cover the full 64-bit range.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  static int bucket_index(std::uint64_t v) noexcept;
  /// Inclusive bounds of bucket `i`.
  static std::uint64_t bucket_lower(int i) noexcept;
  static std::uint64_t bucket_upper(int i) noexcept;

  void record(std::uint64_t v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket_count(int i) const noexcept;
  /// Estimated q-quantile (q clamped to [0,1]; 0 when empty): the
  /// nearest-rank sample is located in its log-2 bucket and linearly
  /// interpolated across the bucket bounds by its rank within the bucket.
  /// The estimate always lies inside the bucket holding the true sample, so
  /// for values >= 1 it is within 2x of the exact quantile (bucket i spans
  /// [2^(i-1), 2^i - 1], a 2x range); bucket 0 holds only {0} and is exact.
  /// The top non-empty bucket is additionally clamped to max().
  double quantile(double q) const noexcept;
  double mean() const noexcept {
    const std::uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// RAII wall-clock timer: records the elapsed nanoseconds into a Histogram
/// on destruction. When observability is disabled at construction the timer
/// never reads the clock.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) noexcept
      : h_(enabled() ? &h : nullptr),
        t0_(h_ ? std::chrono::steady_clock::now()
               : std::chrono::steady_clock::time_point{}) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (h_) h_->record(static_cast<std::uint64_t>(elapsed_ns()));
  }

  std::int64_t elapsed_ns() const noexcept {
    if (!h_) return 0;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point t0_;
};

/// The metric store. Lookup registers on first use; reset() zeroes every
/// metric but keeps the objects alive (stable references).
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zeroes every registered metric. References stay valid.
  void reset();

  /// Registered counter value, or 0 if the name is unknown (does not
  /// register).
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;

  /// Sorted (name, value) views for export and assertions.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  /// Sorted (name, histogram) view; the pointers are stable for the process
  /// lifetime (reset() zeroes, never deletes).
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;

  /// Flat dump of every metric. Histograms export count/sum/mean/max,
  /// p50/p90/p99 estimates, plus the non-empty buckets.
  void write_json(std::ostream& out) const;
  void write_csv(std::ostream& out) const;
  /// OpenMetrics / Prometheus text exposition format: counters get a
  /// `_total` suffix, gauges export verbatim, histograms export cumulative
  /// `_bucket{le="..."}` series (non-empty buckets plus `+Inf`) with
  /// `_sum` and `_count`. Names are prefixed `mrt_` with every character
  /// outside [A-Za-z0-9_] mapped to '_'; the dump ends with `# EOF`.
  void write_openmetrics(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry all instrumentation publishes into.
Registry& registry();

}  // namespace mrt::obs
