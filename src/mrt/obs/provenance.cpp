#include "mrt/obs/provenance.hpp"

#include <cstdio>
#include <utility>

namespace mrt::obs {
namespace {

bool is_delta_kind(EventKind k) {
  switch (k) {
    case EventKind::DeltaArc:
    case EventKind::DeltaRelabel:
    case EventKind::DeltaNodeDown:
    case EventKind::DeltaNodeUp:
      return true;
    default:
      return false;
  }
}

}  // namespace

ProvenanceIndex::ProvenanceIndex(std::vector<JournalRecord> log)
    : log_(std::move(log)) {
  for (std::size_t i = 0; i < log_.size(); ++i) {
    const JournalRecord& r = log_[i];
    if (r.subsystem != Subsystem::Dyn) continue;
    const Key nk{r.stream, r.node};
    switch (r.kind) {
      case EventKind::WitnessAttach:
        attach_[nk] = i;  // later records overwrite: last attach wins
        break;
      case EventKind::WitnessInvalidate:
        invalidate_[nk] = i;
        break;
      case EventKind::WitnessClear:
        clear_[nk] = i;
        break;
      default:
        if (is_delta_kind(r.kind)) {
          deltas_[Key{r.stream, static_cast<std::int64_t>(r.version)}]
              .push_back(i);
        }
        break;
    }
  }
}

const JournalRecord* ProvenanceIndex::find(const std::map<Key, std::size_t>& m,
                                           std::uint32_t stream,
                                           std::int64_t k) const {
  const auto it = m.find(Key{stream, k});
  return it == m.end() ? nullptr : &log_[it->second];
}

const JournalRecord* ProvenanceIndex::last_attach(std::uint32_t stream,
                                                  int node) const {
  return find(attach_, stream, node);
}

const JournalRecord* ProvenanceIndex::last_invalidate(std::uint32_t stream,
                                                      int node) const {
  return find(invalidate_, stream, node);
}

const JournalRecord* ProvenanceIndex::last_clear(std::uint32_t stream,
                                                 int node) const {
  return find(clear_, stream, node);
}

std::vector<const JournalRecord*> ProvenanceIndex::delta_records(
    std::uint32_t stream, std::uint64_t version) const {
  std::vector<const JournalRecord*> out;
  const auto it =
      deltas_.find(Key{stream, static_cast<std::int64_t>(version)});
  if (it == deltas_.end()) return out;
  out.reserve(it->second.size());
  for (std::size_t i : it->second) out.push_back(&log_[i]);
  return out;
}

namespace {

/// Renders the delta batch of `version` for a hop's cause field.
std::string cause_of(const ProvenanceIndex& idx, std::uint32_t stream,
                     std::uint64_t version) {
  if (version == 0) return "initial solve";
  const auto ops = idx.delta_records(stream, version);
  if (ops.empty()) {
    // The batch predates the journal window (ring overflow or late enable).
    char buf[48];
    std::snprintf(buf, sizeof buf, "delta v%llu",
                  static_cast<unsigned long long>(version));
    return buf;
  }
  std::string out;
  for (const JournalRecord* r : ops) {
    if (!out.empty()) out += ", ";
    out += to_string(r->kind);
    char buf[48];
    if (r->arc >= 0) {
      std::snprintf(buf, sizeof buf, "(arc %d)", r->arc);
    } else {
      std::snprintf(buf, sizeof buf, "(node %d)", r->node);
    }
    out += buf;
  }
  return out;
}

}  // namespace

ExplainReport explain_route(const Solver& solver, int node,
                            const ProvenanceIndex& idx) {
  const Routing& r = solver.routing();
  const dyn::DynNet& dnet = solver.net();
  const std::uint32_t stream = solver.journal_stream();

  ExplainReport rep;
  rep.node = node;
  rep.dest = solver.dest();
  rep.stream = stream;
  rep.version = dnet.version();
  rep.has_route = r.has_route(node);
  if (!rep.has_route) {
    if (const JournalRecord* c = idx.last_clear(stream, node)) {
      rep.no_route_cause =
          "route cleared: " + cause_of(idx, stream, c->version);
    } else if (const JournalRecord* inv = idx.last_invalidate(stream, node)) {
      rep.no_route_cause =
          "witness invalidated: " + cause_of(idx, stream, inv->version);
    } else {
      rep.no_route_cause = "never routed";
    }
    return rep;
  }

  std::vector<char> seen(static_cast<std::size_t>(dnet.num_nodes()), 0);
  int cur = node;
  for (;;) {
    if (seen[static_cast<std::size_t>(cur)]) {
      rep.loop = true;
      break;
    }
    seen[static_cast<std::size_t>(cur)] = 1;
    ExplainHop hop;
    hop.node = cur;
    hop.arc = r.next_arc[static_cast<std::size_t>(cur)];
    if (const auto& w = r.weight[static_cast<std::size_t>(cur)]) {
      hop.weight = w->to_string();
    }
    if (hop.arc >= 0) hop.label = dnet.label(hop.arc).to_string();
    if (const JournalRecord* a = idx.last_attach(stream, cur)) {
      hop.settled_seq = a->seq;
      hop.settled_version = a->version;
      hop.cause = cause_of(idx, stream, a->version);
    }
    rep.hops.push_back(std::move(hop));
    const int arc = rep.hops.back().arc;
    if (arc < 0) break;  // reached a root of the witness forest
    cur = dnet.graph().arc(arc).dst;
  }
  return rep;
}

std::string ExplainReport::to_string() const {
  char head[160];
  std::snprintf(head, sizeof head,
                "explain node %d -> dest %d (stream %lu, topology v%llu)\n",
                node, dest, static_cast<unsigned long>(stream),
                static_cast<unsigned long long>(version));
  std::string out = head;
  if (!has_route) {
    out += "  no route (" + no_route_cause + ")\n";
    return out;
  }
  for (const ExplainHop& h : hops) {
    char line[256];
    if (h.arc >= 0) {
      std::snprintf(line, sizeof line,
                    "  node %-4d weight %-12s via arc %d [%s]", h.node,
                    h.weight.c_str(), h.arc, h.label.c_str());
    } else {
      std::snprintf(line, sizeof line,
                    "  node %-4d weight %-12s (destination)", h.node,
                    h.weight.c_str());
    }
    out += line;
    if (h.settled_seq != 0) {
      std::snprintf(line, sizeof line, "  settled@v%llu seq %llu: %s",
                    static_cast<unsigned long long>(h.settled_version),
                    static_cast<unsigned long long>(h.settled_seq),
                    h.cause.c_str());
      out += line;
    }
    out += '\n';
  }
  if (loop) out += "  LOOP: witness chain revisited a node\n";
  return out;
}

}  // namespace mrt::obs
