// Route provenance: causal "explain" reports reconstructed from the journal.
//
// The solver seam journals a WitnessAttach record for every node whose
// (weight, witness arc) actually changed in a solve()/update() — a diff
// against the previously published routing, not a dump of the rebuilt
// forest — so the *last* attach record for a node names exactly the delta
// batch (by topology version) that caused its current route. explain_route
// walks the solver's witness chain from a node to the destination and
// decorates each hop with that causal information: which arc carries the
// route, which journal event settled it, and which delta ops were in the
// batch that made it change.
//
// Lives in src/mrt/obs/ beside the journal it queries, but is compiled into
// mrt_dyn (it references the Solver seam; see src/CMakeLists.txt).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mrt/dyn/solver.hpp"
#include "mrt/obs/journal.hpp"

namespace mrt::obs {

/// A queryable index over one drained (or snapshotted) journal log.
class ProvenanceIndex {
 public:
  ProvenanceIndex() = default;
  explicit ProvenanceIndex(std::vector<JournalRecord> log);

  const std::vector<JournalRecord>& log() const { return log_; }

  /// The last WitnessAttach for `node` in `stream` (nullptr if none): the
  /// event that settled the node's *current* route.
  const JournalRecord* last_attach(std::uint32_t stream, int node) const;
  /// The last WitnessInvalidate / WitnessClear for `node` in `stream`.
  const JournalRecord* last_invalidate(std::uint32_t stream, int node) const;
  const JournalRecord* last_clear(std::uint32_t stream, int node) const;
  /// Every Delta* record of the batch that bumped `stream`'s topology to
  /// `version` (empty for version 0 — the cold solve has no delta).
  std::vector<const JournalRecord*> delta_records(std::uint32_t stream,
                                                  std::uint64_t version) const;

 private:
  using Key = std::pair<std::uint32_t, std::int64_t>;
  const JournalRecord* find(const std::map<Key, std::size_t>& m,
                            std::uint32_t stream, std::int64_t k) const;

  std::vector<JournalRecord> log_;
  std::map<Key, std::size_t> attach_;      // (stream, node) -> log index
  std::map<Key, std::size_t> invalidate_;  // (stream, node) -> log index
  std::map<Key, std::size_t> clear_;       // (stream, node) -> log index
  std::map<Key, std::vector<std::size_t>> deltas_;  // (stream, version)
};

/// One hop of a witness chain, with its causal decoration.
struct ExplainHop {
  int node = -1;
  int arc = -1;        ///< witness arc out of `node` (-1 at the destination)
  std::string weight;  ///< the node's routed weight, rendered
  std::string label;   ///< the witness arc's label, rendered ("" at dest)
  // From the journal (all 0 / empty when the journal never saw the node —
  // e.g. it was disabled during the solve that settled this route):
  std::uint64_t settled_seq = 0;      ///< seq of the settling WitnessAttach
  std::uint64_t settled_version = 0;  ///< topology version it settled at
  std::string cause;  ///< delta ops of that version, or "initial solve"
};

/// The causal explanation of one (destination, node) route.
struct ExplainReport {
  int node = -1;
  int dest = -1;
  std::uint32_t stream = 0;
  std::uint64_t version = 0;  ///< topology version the report reflects
  bool has_route = false;
  bool loop = false;  ///< witness chain revisited a node (solver invariant
                      ///< violation — never expected; surfaced, not hidden)
  std::vector<ExplainHop> hops;  ///< node first, destination last
  std::string no_route_cause;    ///< when !has_route: last clear/invalidate

  /// Human-readable multi-line rendering (the explain_route CLI's output).
  std::string to_string() const;
};

/// Explains `node`'s route toward the solver's bound destination, walking
/// the solver's own witness forest and decorating each hop from `idx`.
/// The hop arcs are read from Solver::routing() itself, so a report always
/// matches the live forest; the journal supplies only the causal fields.
ExplainReport explain_route(const Solver& solver, int node,
                            const ProvenanceIndex& idx);

}  // namespace mrt::obs
