// Typed span/instant/counter event recording with Chrome trace-event JSON
// export (loadable in chrome://tracing or https://ui.perfetto.dev).
//
// A trace mixes two clocks, kept apart as two trace "processes":
//  - pid 1 ("wall-clock"): real durations measured on steady_clock relative
//    to the session epoch — solver and reselect/advertise compute spans;
//  - pid 2 ("sim-time"): the simulator's virtual clock — message flights,
//    link events, selection changes, queue-depth counter tracks.
// Within a process, tid is a node id, an arc id, or 0 — whatever gives the
// most useful per-row grouping.
//
// Recording is active only while a session is installed: instrumentation
// sites guard on `TraceSession::current() != nullptr`, so a disabled build
// pays one pointer load per site.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

namespace mrt::obs {

struct TraceArg {
  std::string key;
  std::variant<std::int64_t, double, std::string> value;
};

struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'i';   ///< 'X' complete, 'i' instant, 'C' counter, 'M' metadata
  double ts_us = 0;   ///< microseconds on the owning process' clock
  double dur_us = 0;  ///< only for 'X'
  int pid = 1;
  int tid = 0;
  std::vector<TraceArg> args;
};

class TraceSession {
 public:
  static constexpr int kWallPid = 1;
  static constexpr int kSimPid = 2;

  TraceSession();
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Makes this session the recording target of all instrumentation.
  /// At most one session can be installed; uninstall() (or destruction)
  /// releases it.
  void install();
  void uninstall();
  static TraceSession* current() noexcept;

  /// Microseconds of wall time since the session was created.
  double wall_now_us() const;

  // -- explicit-timestamp API (the simulator's virtual clock, or replayed
  //    wall timestamps) ------------------------------------------------------
  void complete(std::string name, std::string cat, double ts_us, double dur_us,
                int pid, int tid, std::vector<TraceArg> args = {});
  void instant(std::string name, std::string cat, double ts_us, int pid,
               int tid, std::vector<TraceArg> args = {});
  /// One sample of a counter track ('C' events graph over time).
  void counter(std::string name, double ts_us, int pid, double value);
  /// Names a tid row in the viewer.
  void name_thread(int pid, int tid, std::string name);

  // -- wall-clock helpers ----------------------------------------------------
  void wall_instant(std::string name, std::string cat, int tid = 0,
                    std::vector<TraceArg> args = {});

  std::size_t size() const;
  std::vector<TraceEvent> snapshot() const;

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} — chrome://tracing and
  /// Perfetto both load this directly.
  void write_chrome_json(std::ostream& out) const;
  /// Returns false if the file could not be opened.
  bool write_chrome_json_file(const std::string& path) const;

 private:
  void push(TraceEvent e);

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII wall-clock span on the currently installed session; a no-op (no
/// clock read) when no session is installed at construction.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat, int tid = 0) noexcept;
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

 private:
  TraceSession* session_;
  const char* name_;
  const char* cat_;
  int tid_;
  double start_us_ = 0;
};

}  // namespace mrt::obs
