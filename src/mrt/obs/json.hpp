// Minimal streaming JSON writer used by the metrics registry, the trace
// exporter, and the bench harnesses. Handles separators and string escaping;
// the caller is responsible for structural well-formedness (every begin_*
// matched by an end_*), which MRT_REQUIRE enforces at close time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mrt::obs {

/// JSON string escaping (quotes, backslash, control characters).
std::string json_escape(const std::string& s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or a begin_*.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// True once every opened scope has been closed.
  bool complete() const { return stack_.empty(); }

 private:
  // Comma management: a scope needs a separator before its second and later
  // entries; a pending key suppresses the separator before its value.
  void pre_value();
  void open(char c);
  void close(char expected_open, char c);

  std::ostream& out_;
  struct Scope {
    char kind;       // '{' or '['
    bool has_entry = false;
  };
  std::vector<Scope> stack_;
  bool key_pending_ = false;
};

}  // namespace mrt::obs
