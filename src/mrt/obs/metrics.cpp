#include "mrt/obs/metrics.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <ostream>

#include "mrt/obs/json.hpp"
#include "mrt/support/require.hpp"

namespace mrt::obs {
namespace {

bool env_enabled() {
  const char* v = std::getenv("MRT_OBS_ENABLED");
  if (!v) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "on") == 0 || std::strcmp(v, "yes") == 0;
}

}  // namespace

namespace detail {
std::atomic<bool> g_enabled{env_enabled()};
}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

int Histogram::bucket_index(std::uint64_t v) noexcept {
  return std::bit_width(v);  // 0 -> 0, [2^(i-1), 2^i - 1] -> i
}

std::uint64_t Histogram::bucket_lower(int i) noexcept {
  MRT_REQUIRE(i >= 0 && i < kBuckets);
  return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

std::uint64_t Histogram::bucket_upper(int i) noexcept {
  MRT_REQUIRE(i >= 0 && i < kBuckets);
  if (i == 0) return 0;
  if (i == kBuckets - 1) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << i) - 1;
}

void Histogram::record(std::uint64_t v) noexcept {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  if (v > max()) max_.store(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(int i) const noexcept {
  MRT_REQUIRE(i >= 0 && i < kBuckets);
  return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t c = count();
  if (c == 0) return 0.0;
  if (!(q >= 0.0)) q = 0.0;  // also catches NaN
  if (q > 1.0) q = 1.0;
  // Nearest rank: the k-th smallest sample, k in [1, c].
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(c)));
  if (rank == 0) rank = 1;
  if (rank > c) rank = c;
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = bucket_count(i);
    if (n == 0) continue;
    if (cum + n >= rank) {
      const double lo = static_cast<double>(bucket_lower(i));
      double hi = static_cast<double>(bucket_upper(i));
      // In the top non-empty bucket no sample exceeds the recorded max.
      const double mx = static_cast<double>(max());
      if (mx >= lo && mx < hi) hi = mx;
      const double frac =
          static_cast<double>(rank - cum) / static_cast<double>(n);
      return lo + (hi - lo) * frac;
    }
    cum += n;
  }
  // Concurrent recording moved count past the buckets scanned; the max is
  // the safest stand-in for a top-rank estimate.
  return static_cast<double>(max());
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double Registry::gauge_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Registry::histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

void Registry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(out);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(h->count());
    w.key("sum").value(h->sum());
    w.key("mean").value(h->mean());
    w.key("max").value(h->max());
    w.key("p50").value(h->quantile(0.5));
    w.key("p90").value(h->quantile(0.9));
    w.key("p99").value(h->quantile(0.99));
    w.key("buckets").begin_array();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n == 0) continue;
      w.begin_object();
      w.key("lo").value(Histogram::bucket_lower(i));
      w.key("hi").value(Histogram::bucket_upper(i));
      w.key("n").value(n);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  MRT_REQUIRE(w.complete());
}

void Registry::write_csv(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "kind,name,value\n";
  for (const auto& [name, c] : counters_) {
    out << "counter," << name << ',' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    out << "gauge," << name << ',' << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    out << "histogram_count," << name << ',' << h->count() << '\n';
    out << "histogram_sum," << name << ',' << h->sum() << '\n';
    out << "histogram_max," << name << ',' << h->max() << '\n';
  }
}

namespace {

/// Metric name -> OpenMetrics sample name: `mrt_` prefix, [A-Za-z0-9_] only.
std::string om_name(const std::string& name) {
  std::string out = "mrt_";
  out.reserve(name.size() + 4);
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    out.push_back(ok ? ch : '_');
  }
  return out;
}

std::string om_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

void Registry::write_openmetrics(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    const std::string n = om_name(name);
    out << "# TYPE " << n << " counter\n";
    out << n << "_total " << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = om_name(name);
    out << "# TYPE " << n << " gauge\n";
    out << n << ' ' << om_double(g->value()) << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = om_name(name);
    out << "# TYPE " << n << " histogram\n";
    std::uint64_t cum = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t bn = h->bucket_count(i);
      if (bn == 0) continue;
      cum += bn;
      out << n << "_bucket{le=\"" << Histogram::bucket_upper(i) << "\"} "
          << cum << '\n';
    }
    out << n << "_bucket{le=\"+Inf\"} " << h->count() << '\n';
    out << n << "_sum " << h->sum() << '\n';
    out << n << "_count " << h->count() << '\n';
  }
  out << "# EOF\n";
}

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static destructors
  return *r;
}

}  // namespace mrt::obs
