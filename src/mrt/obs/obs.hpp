// Umbrella header for mrt::obs — the metrics / tracing / profiling layer.
// See docs/OBSERVABILITY.md for the instrumentation map and the export
// formats.
#pragma once

#include "mrt/obs/journal.hpp"
#include "mrt/obs/json.hpp"
#include "mrt/obs/metrics.hpp"
#include "mrt/obs/trace.hpp"

namespace mrt::obs {

/// Shorthand for registry().counter(name) etc.
inline Counter& counter(const std::string& name) {
  return registry().counter(name);
}
inline Gauge& gauge(const std::string& name) { return registry().gauge(name); }
inline Histogram& histogram(const std::string& name) {
  return registry().histogram(name);
}

}  // namespace mrt::obs
