#include "mrt/rib/rib.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <utility>

#include "mrt/compile/simd.hpp"
#include "mrt/dyn/solver.hpp"
#include "mrt/obs/obs.hpp"
#include "mrt/par/par.hpp"
#include "mrt/stream/stream.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace rib {

namespace {

using dyn::DynNet;
using dyn::TopologyDelta;
using obs::EventKind;
using obs::Subsystem;

int popcount8(unsigned m) {
  int c = 0;
  while (m != 0) {
    m &= m - 1;
    ++c;
  }
  return c;
}

int ctz8(unsigned m) {
  int i = 0;
  while ((m & 1u) == 0) {
    m >>= 1;
    ++i;
  }
  return i;
}

}  // namespace

// All batched passes below mirror the dyn Bellman engine *per column*: the
// same Gauss–Seidel worklist (frontier sorted ascending each round, tails of
// all in-arcs activated on change, round cap opts.max_rounds), the same
// smallest-arc-id tie break in the candidate scan, the same transitive
// witness invalidation, and the same canonical witness-forest rebuild.
// Columns never read each other's state, so running them in lockstep over a
// shared arc visit changes only the memory traffic — each column's
// trajectory, and therefore its bytes, is exactly the standalone solver's.
struct RibSolver::Impl {
  OrderTransform alg;
  const compile::WeightEngine* weng = nullptr;
  RibOptions opts;

  DynNet dnet;
  Value origin;
  std::vector<int> dsts;
  bool bound = false;

  compile::CompiledNet cnet;
  bool flat = false;       // batched flat kernels active
  std::size_t stride = 0;  // words per weight (flat)
  std::vector<std::uint64_t> origin_w;

  // Shared alive-mask: one byte per arc id, refreshed once per topology
  // version and read by every column of every block.
  std::vector<std::uint8_t> alive;

  // One destination block: up to kBlockCols columns over shared per-node
  // masks. Flat state is column-major within a node-major row — the words of
  // node v's `cols` columns are contiguous, which is what lets one arc visit
  // stream the whole block through apply_block.
  struct Block {
    int base = 0;
    int cols = 0;
    // The block's destination nodes (dest[l] == dsts[base+l], -1 padding).
    // Replaces the former per-node destmask byte array — at all-|V|
    // destinations that array cost n bytes per block (n²/8 total, 12.5 MB at
    // 10k nodes); eight compares per frontier visit recover the same mask.
    int dest[kBlockCols] = {-1, -1, -1, -1, -1, -1, -1, -1};
    // flat storage
    std::vector<std::uint64_t> w;        // n * cols * stride (zero-init; rows
                                         // only ever hold valid encodings)
    std::vector<std::uint8_t> present;   // n, bit l = column routed
    // shared (flat + boxed)
    std::vector<int> next;               // n * cols witness arcs (-1 = none)
    // boxed fallback storage, per lane
    std::vector<std::vector<std::optional<Value>>> bw;  // cols × n
  };
  std::vector<Block> blocks;
  int bwidth = kBlockCols;

  std::uint8_t destmask_of(const Block& blk, int u) const {
    std::uint8_t m = 0;
    for (int l = 0; l < blk.cols; ++l) {
      if (blk.dest[l] == u) m |= static_cast<std::uint8_t>(1u << l);
    }
    return m;
  }

  // Shared per-thread scratch arena: every dense all-|V| temporary the block
  // passes need (frontier masks, invalidation state, boxed queues) lives
  // here once per thread instead of being allocated per block per update.
  // The qmask/inv arrays rely on a consume-what-you-set discipline — every
  // pass that sets bits clears them before returning — so blocks on the
  // same thread reuse them without an O(n) wipe.
  struct Scratch {
    std::vector<std::uint8_t> qmask;    // n; all-zero between uses
    std::vector<std::uint8_t> touched;  // n; wiped per block
    std::vector<std::uint8_t> inv;      // n; all-zero between uses
    std::vector<std::pair<int, std::uint8_t>> stack;
    std::vector<int> killed;  // nodes holding inv bits this pass
    std::vector<int> seeded;  // nodes holding qmask bits this pass
    std::vector<char> queued;            // boxed relax bookkeeping
    std::vector<int> bfrontier, bnextf;  // boxed relax worklists
    void ensure(std::size_t n) {
      if (qmask.size() != n) {
        qmask.assign(n, 0);
        inv.assign(n, 0);
      }
    }
  };
  static Scratch& scratch() {
    thread_local Scratch s;
    return s;
  }

  /// Phase-1 output for one block: lane split, warm frontier seeds
  /// (ascending node order), and an estimated relax cost that orders the
  /// phase-2 steal queue. Pure function of (block, delta), so the plan — and
  /// everything derived from it — is thread-count-invariant.
  struct BlockPlan {
    std::uint8_t coldm = 0;
    std::uint8_t warmm = 0;
    std::uint64_t cost = 0;
    std::vector<std::pair<int, std::uint8_t>> seeds;
  };

  std::vector<std::uint8_t> col_conv;
  RibStats stats;
  std::uint32_t jstream = 0;

  mutable std::vector<Routing> rcache;
  mutable std::vector<std::uint8_t> rvalid;

  Impl(const OrderTransform& a, const compile::WeightEngine* e, RibOptions o)
      : alg(a), weng(e), opts(o) {
    if (opts.block < 1) opts.block = 1;
    if (opts.block > kBlockCols) opts.block = kBlockCols;
    if (opts.max_rounds < 1) opts.max_rounds = 1;
  }

  int columns() const { return static_cast<int>(dsts.size()); }

  void refresh_alive() {
    const int m = dnet.graph().num_arcs();
    alive.assign(static_cast<std::size_t>(m), 0);
    for (int id = 0; id < m; ++id) {
      alive[static_cast<std::size_t>(id)] = dnet.arc_alive(id) ? 1 : 0;
    }
  }

  std::uint64_t* row(Block& blk, int v) {
    return blk.w.data() +
           static_cast<std::size_t>(v) * static_cast<std::size_t>(blk.cols) *
               stride;
  }

  void clear_route(Block& blk, int v, int l) {
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << l);
    if (flat) {
      blk.present[static_cast<std::size_t>(v)] &= static_cast<std::uint8_t>(~bit);
    } else {
      blk.bw[static_cast<std::size_t>(l)][static_cast<std::size_t>(v)] =
          std::nullopt;
    }
    blk.next[static_cast<std::size_t>(v) * static_cast<std::size_t>(blk.cols) +
             static_cast<std::size_t>(l)] = -1;
  }

  void clear_lane(Block& blk, int l) {
    const int n = dnet.num_nodes();
    for (int v = 0; v < n; ++v) clear_route(blk, v, l);
  }

  // --- batched flat relaxation ---------------------------------------------

  /// Reshapes a full flat block between lane-major node rows (the storage
  /// layout everything else reads) and slot-major node rows (word k of lane
  /// l at k*kBlockCols + l — the vertical-lane layout the SIMD select
  /// kernels consume gather-free). Two linear passes, amortized against the
  /// many frontier visits per node a dense relax performs.
  void reshape_block(Block& blk, bool to_slot_major) {
    const int n = dnet.num_nodes();
    const std::size_t rowlen = static_cast<std::size_t>(blk.cols) * stride;
    thread_local std::vector<std::uint64_t> buf;
    if (buf.size() < rowlen) buf.resize(rowlen);
    std::uint64_t* W = blk.w.data();
    for (int u = 0; u < n; ++u) {
      std::uint64_t* row = W + static_cast<std::size_t>(u) * rowlen;
      std::memcpy(buf.data(), row, rowlen * sizeof(std::uint64_t));
      for (int l = 0; l < blk.cols; ++l) {
        for (std::size_t k = 0; k < stride; ++k) {
          const std::size_t lm = static_cast<std::size_t>(l) * stride + k;
          const std::size_t sm =
              k * static_cast<std::size_t>(kBlockCols) +
              static_cast<std::size_t>(l);
          if (to_slot_major) {
            row[sm] = buf[lm];
          } else {
            row[lm] = buf[sm];
          }
        }
      }
    }
  }

  /// One worklist pass over every active lane of `qmask` (a per-node lane
  /// bitmask; qmask[v] != 0 iff v is on the frontier). Consumes qmask,
  /// accumulates per-lane touched bits, and returns the mask of lanes still
  /// active when the round cap hit (those lanes' state is exactly the
  /// standalone solver's state at its own cap). With `ivec` the block's
  /// rows are slot-major (see reshape_block) and arc visits go through the
  /// vertical select kernel; bytes are identical either way.
  std::uint8_t flat_relax(Block& blk, std::vector<std::uint8_t>& qmask,
                          std::vector<std::uint8_t>& touched,
                          std::uint64_t& relaxations, bool ivec) {
    const int n = dnet.num_nodes();
    const Digraph& g = dnet.graph();
    const CsrAdjacency& out = g.csr_out();
    const CsrAdjacency& in = g.csr_in();
    const compile::CompiledAlgebra& ca = cnet.algebra();
    const int cols = blk.cols;
    const std::size_t rowlen = static_cast<std::size_t>(cols) * stride;
    const std::size_t wbytes = stride * sizeof(std::uint64_t);
    std::uint64_t* W = blk.w.data();
    std::uint8_t* P = blk.present.data();
    int* NX = blk.next.data();
    // Runtime-sized memcmp/memcpy are real libc calls; single-word carriers
    // (the common batched case) get direct word compare/store instead, and
    // multi-word rows go through the dispatched SIMD compare/copy kernels
    // when MRT_SIMD is on (byte-identical either way).
    const bool one_word = stride == 1;
    const bool vec_words = !one_word && compile::simd::enabled();
    auto weq = [&](const std::uint64_t* a, const std::uint64_t* b) {
      if (one_word) return *a == *b;
      return vec_words ? compile::simd::words_equal(a, b, stride)
                       : std::memcmp(a, b, wbytes) == 0;
    };
    auto wcopy = [&](std::uint64_t* d, const std::uint64_t* s) {
      if (one_word) {
        *d = *s;
      } else if (vec_words) {
        compile::simd::words_copy(d, s, stride);
      } else {
        std::memcpy(d, s, wbytes);
      }
    };
    // Lane geometry. Lane-major rows put lane l's words contiguously at
    // l*stride; slot-major rows interleave them kBlockCols apart at offset
    // l. origin_w stays contiguous in both modes, so it gets its own pair.
    const std::size_t lmul = ivec ? 1 : stride;
    const std::size_t wstep = ivec ? static_cast<std::size_t>(kBlockCols) : 1;
    auto lane_eq = [&](const std::uint64_t* a, const std::uint64_t* b) {
      if (!ivec) return weq(a, b);
      for (std::size_t k = 0; k < stride; ++k) {
        if (a[k * wstep] != b[k * wstep]) return false;
      }
      return true;
    };
    auto lane_copy = [&](std::uint64_t* d, const std::uint64_t* s) {
      if (!ivec) {
        wcopy(d, s);
        return;
      }
      for (std::size_t k = 0; k < stride; ++k) d[k * wstep] = s[k * wstep];
    };
    auto lane_eq_origin = [&](const std::uint64_t* a) {
      if (!ivec) return weq(a, origin_w.data());
      for (std::size_t k = 0; k < stride; ++k) {
        if (a[k * wstep] != origin_w[k]) return false;
      }
      return true;
    };
    auto lane_copy_origin = [&](std::uint64_t* d) {
      if (!ivec) {
        wcopy(d, origin_w.data());
        return;
      }
      for (std::size_t k = 0; k < stride; ++k) d[k * wstep] = origin_w[k];
    };

    // Per-thread scratch: relax runs once per block, and blocks on the same
    // thread never nest, so reusing the buffers avoids one malloc/free set
    // per block per update (a measurable slice of the cold solve).
    thread_local std::vector<int> frontier;
    thread_local std::vector<std::uint8_t> cur;
    thread_local std::vector<std::uint64_t> best;
    // The next-round frontier is a node bitset drained in word order: set
    // bits come out ascending, which is exactly the order the per-round
    // std::sort used to impose — the sort (a real slice of dense relax
    // rounds) is gone but the trajectory, and therefore every byte, is
    // unchanged. Bits are cleared as they drain, so the buffer is all-zero
    // between calls and costs one word scan per round.
    thread_local std::vector<std::uint64_t> nextb;
    const std::size_t nwords = (static_cast<std::size_t>(n) + 63) / 64;
    if (nextb.size() < nwords) nextb.assign(nwords, 0);
    frontier.clear();
    for (int v = 0; v < n; ++v) {
      if (qmask[static_cast<std::size_t>(v)] != 0) frontier.push_back(v);
    }
    best.resize(rowlen);
    int best_arc[kBlockCols] = {0};
    std::uint8_t capped = 0;
    int rounds = 0;
    while (!frontier.empty()) {
      if (++rounds > opts.max_rounds) {
        for (int u : frontier) {
          capped |= qmask[static_cast<std::size_t>(u)];
          qmask[static_cast<std::size_t>(u)] = 0;
        }
        break;
      }
      cur.resize(frontier.size());
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        cur[i] = qmask[static_cast<std::size_t>(frontier[i])];
        qmask[static_cast<std::size_t>(frontier[i])] = 0;
      }
      for (std::size_t fi = 0; fi < frontier.size(); ++fi) {
        const int u = frontier[fi];
        const std::uint8_t act = cur[fi];
        touched[static_cast<std::size_t>(u)] |= act;
        const std::uint8_t dm = destmask_of(blk, u);
        const std::uint8_t scan = act & static_cast<std::uint8_t>(~dm);
        std::uint8_t bestm = 0;
        if (scan != 0) {
          for (int e = out.begin(u); e < out.end(u); ++e) {
            const int id = out.arc[static_cast<std::size_t>(e)];
            if (!alive[static_cast<std::size_t>(id)]) continue;
            const int v = out.head[static_cast<std::size_t>(e)];
            if (v == u) continue;
            const std::uint8_t need =
                scan & P[static_cast<std::size_t>(v)];
            if (need == 0) continue;
            relaxations += static_cast<std::uint64_t>(popcount8(need));
            const std::uint64_t* src = W + static_cast<std::size_t>(v) * rowlen;
            // One fused call per arc visit: apply the label program to every
            // needed lane (blocked opcode decode; lanes outside `need`
            // compute garbage that is never read — safe, because every row
            // is either a valid encoding or still zero-initialized) and fold
            // strict improvements into the running best row. Slot-major rows
            // take the gather-free vertical kernel.
            const std::uint8_t adopted =
                ivec ? ca.select_v(cnet.label(id), src, best.data(), need,
                                   bestm)
                     : ca.select_block(cnet.label(id), src, best.data(), cols,
                                       need, bestm);
            bestm |= adopted;
            for (unsigned m = adopted; m != 0; m &= m - 1) {
              best_arc[ctz8(m)] = id;
            }
          }
        }
        std::uint8_t changed = 0;
        std::uint64_t* wu = W + static_cast<std::size_t>(u) * rowlen;
        for (unsigned m = act; m != 0; m &= m - 1) {
          const int l = ctz8(m);
          const std::uint8_t bit = static_cast<std::uint8_t>(1u << l);
          std::uint64_t* wl = wu + static_cast<std::size_t>(l) * lmul;
          const std::uint64_t* bl =
              best.data() + static_cast<std::size_t>(l) * lmul;
          const bool had = (P[static_cast<std::size_t>(u)] & bit) != 0;
          if ((dm & bit) != 0) {
            if (!had || !lane_eq_origin(wl)) {
              lane_copy_origin(wl);
              P[static_cast<std::size_t>(u)] |= bit;
              NX[static_cast<std::size_t>(u) * static_cast<std::size_t>(cols) +
                 static_cast<std::size_t>(l)] = -1;
              changed |= bit;
            }
          } else {
            const bool now = (bestm & bit) != 0;
            bool ch = had != now;
            if (!ch && now) {
              ch = !lane_eq(wl, bl);
            }
            if (ch) {
              if (now) {
                lane_copy(wl, bl);
                P[static_cast<std::size_t>(u)] |= bit;
                NX[static_cast<std::size_t>(u) * static_cast<std::size_t>(cols) +
                   static_cast<std::size_t>(l)] = best_arc[l];
              } else {
                P[static_cast<std::size_t>(u)] &= static_cast<std::uint8_t>(~bit);
                NX[static_cast<std::size_t>(u) * static_cast<std::size_t>(cols) +
                   static_cast<std::size_t>(l)] = -1;
              }
              changed |= bit;
            }
          }
        }
        if (changed != 0) {
          for (int e = in.begin(u); e < in.end(u); ++e) {
            const int t = in.head[static_cast<std::size_t>(e)];
            if (!dnet.node_up(t)) continue;
            nextb[static_cast<std::size_t>(t) >> 6] |=
                std::uint64_t{1} << (t & 63);
            qmask[static_cast<std::size_t>(t)] |= changed;
          }
        }
      }
      frontier.clear();
      for (std::size_t wi = 0; wi < nwords; ++wi) {
        std::uint64_t w = nextb[wi];
        if (w == 0) continue;
        nextb[wi] = 0;
        do {
          frontier.push_back(static_cast<int>((wi << 6) +
                                              __builtin_ctzll(w)));
          w &= w - 1;
        } while (w != 0);
      }
    }
    return capped;
  }

  /// Canonical witness-forest rebuild of one flat lane (the standalone
  /// engine's rebuild_witnesses, on words).
  void flat_rebuild(Block& blk, int l, std::uint64_t& relaxations) {
    const int n = dnet.num_nodes();
    const Digraph& g = dnet.graph();
    const CsrAdjacency& out = g.csr_out();
    const CsrAdjacency& in = g.csr_in();
    const compile::CompiledAlgebra& ca = cnet.algebra();
    const int cols = blk.cols;
    const std::size_t rowlen = static_cast<std::size_t>(cols) * stride;
    const std::size_t loff = static_cast<std::size_t>(l) * stride;
    const std::size_t wbytes = stride * sizeof(std::uint64_t);
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << l);
    const int dest = dsts[static_cast<std::size_t>(blk.base + l)];
    std::uint64_t* W = blk.w.data();
    std::uint8_t* P = blk.present.data();
    int* NX = blk.next.data();
    // Per-thread scratch (one rebuild per lane per converged update; lanes on
    // one thread never nest), reused to keep malloc out of the rebuild loop.
    thread_local std::vector<char> attached;
    attached.assign(static_cast<std::size_t>(n), 0);
    if (dnet.node_up(dest) && (P[static_cast<std::size_t>(dest)] & bit) != 0) {
      std::memcpy(W + static_cast<std::size_t>(dest) * rowlen + loff,
                  origin_w.data(), wbytes);
      NX[static_cast<std::size_t>(dest) * static_cast<std::size_t>(cols) +
         static_cast<std::size_t>(l)] = -1;
      attached[static_cast<std::size_t>(dest)] = 1;
      thread_local std::vector<int> frontier;
      thread_local std::vector<int> cands;
      thread_local std::vector<int> nextf;
      thread_local std::vector<char> in_cands;
      if (in_cands.size() < static_cast<std::size_t>(n)) {
        in_cands.assign(static_cast<std::size_t>(n), 0);
      }
      frontier.assign(1, dest);
      while (!frontier.empty()) {
        // Collect this layer's candidates deduplicated on the fly (a node
        // adjacent to several frontier members would otherwise be pushed —
        // and sorted — once per in-arc). The flags are wiped per layer by
        // walking the candidate list, so the array stays O(n) once.
        cands.clear();
        for (int v : frontier) {
          for (int e = in.begin(v); e < in.end(v); ++e) {
            const int id = in.arc[static_cast<std::size_t>(e)];
            if (!alive[static_cast<std::size_t>(id)]) continue;
            const int u = in.head[static_cast<std::size_t>(e)];
            if (!attached[static_cast<std::size_t>(u)] &&
                !in_cands[static_cast<std::size_t>(u)] && dnet.node_up(u) &&
                (P[static_cast<std::size_t>(u)] & bit) != 0) {
              in_cands[static_cast<std::size_t>(u)] = 1;
              cands.push_back(u);
            }
          }
        }
        for (int u : cands) in_cands[static_cast<std::size_t>(u)] = 0;
        std::sort(cands.begin(), cands.end());
        nextf.clear();
        for (int u : cands) {
          std::uint64_t* wu = W + static_cast<std::size_t>(u) * rowlen + loff;
          for (int e = out.begin(u); e < out.end(u); ++e) {
            const int id = out.arc[static_cast<std::size_t>(e)];
            if (!alive[static_cast<std::size_t>(id)]) continue;
            const int h = out.head[static_cast<std::size_t>(e)];
            if (h == u || !attached[static_cast<std::size_t>(h)]) continue;
            ++relaxations;
            // Fused witness check: on Equiv the candidate is written into
            // the lane (canonicalizing the stored weight to the achieved
            // encoding), exactly as the unfused apply/compare/copy did.
            if (ca.apply_if_equiv(
                    cnet.label(id),
                    W + static_cast<std::size_t>(h) * rowlen + loff, wu)) {
              NX[static_cast<std::size_t>(u) * static_cast<std::size_t>(cols) +
                 static_cast<std::size_t>(l)] = id;
              nextf.push_back(u);
              break;
            }
          }
        }
        for (int u : nextf) attached[static_cast<std::size_t>(u)] = 1;
        frontier.swap(nextf);
      }
    }
    for (int v = 0; v < n; ++v) {
      if (!attached[static_cast<std::size_t>(v)]) clear_route(blk, v, l);
    }
  }

  // --- boxed fallback (per-lane loops, byte-identical) ----------------------

  std::uint8_t boxed_relax(Block& blk, std::vector<std::uint8_t>& qmask,
                           std::vector<std::uint8_t>& touched,
                           std::uint64_t& relaxations) {
    const int n = dnet.num_nodes();
    const Digraph& g = dnet.graph();
    const CsrAdjacency& out = g.csr_out();
    const CsrAdjacency& in = g.csr_in();
    std::uint8_t capped = 0;
    // Per-thread worklist state from the shared arena — the per-lane queue
    // flags and both frontiers were previously allocated per lane (and the
    // next-frontier once per round).
    Scratch& s = scratch();
    for (int l = 0; l < blk.cols; ++l) {
      const std::uint8_t bit = static_cast<std::uint8_t>(1u << l);
      const int dest = dsts[static_cast<std::size_t>(blk.base + l)];
      auto& wcol = blk.bw[static_cast<std::size_t>(l)];
      s.queued.assign(static_cast<std::size_t>(n), 0);
      std::vector<int>& frontier = s.bfrontier;
      std::vector<int>& nextf = s.bnextf;
      frontier.clear();
      for (int v = 0; v < n; ++v) {
        if ((qmask[static_cast<std::size_t>(v)] & bit) != 0) {
          s.queued[static_cast<std::size_t>(v)] = 1;
          frontier.push_back(v);
        }
      }
      int rounds = 0;
      while (!frontier.empty()) {
        if (++rounds > opts.max_rounds) {
          capped |= bit;
          frontier.clear();
          break;
        }
        std::sort(frontier.begin(), frontier.end());
        for (int u : frontier) s.queued[static_cast<std::size_t>(u)] = 0;
        nextf.clear();
        auto activate = [&](int x) {
          if (dnet.node_up(x) && !s.queued[static_cast<std::size_t>(x)]) {
            s.queued[static_cast<std::size_t>(x)] = 1;
            nextf.push_back(x);
          }
        };
        for (int u : frontier) {
          touched[static_cast<std::size_t>(u)] |= bit;
          bool changed = false;
          auto& wu = wcol[static_cast<std::size_t>(u)];
          if (u == dest) {
            changed = !wu || !(*wu == origin);
            if (changed) {
              wu = origin;
              blk.next[static_cast<std::size_t>(u) *
                           static_cast<std::size_t>(blk.cols) +
                       static_cast<std::size_t>(l)] = -1;
            }
          } else {
            std::optional<Value> bestw;
            int besta = -1;
            for (int e = out.begin(u); e < out.end(u); ++e) {
              const int id = out.arc[static_cast<std::size_t>(e)];
              if (!alive[static_cast<std::size_t>(id)]) continue;
              const int v = out.head[static_cast<std::size_t>(e)];
              if (v == u) continue;
              const auto& wv = wcol[static_cast<std::size_t>(v)];
              if (!wv) continue;
              ++relaxations;
              Value c = alg.fns->apply(dnet.label(id), *wv);
              if (!bestw || lt_of(alg.ord->cmp(c, *bestw))) {
                bestw = std::move(c);
                besta = id;
              }
            }
            changed = (bestw.has_value() != wu.has_value()) ||
                      (bestw && !(*bestw == *wu));
            if (changed) {
              wu = std::move(bestw);
              blk.next[static_cast<std::size_t>(u) *
                           static_cast<std::size_t>(blk.cols) +
                       static_cast<std::size_t>(l)] = besta;
            }
          }
          if (changed) {
            for (int e = in.begin(u); e < in.end(u); ++e) {
              activate(in.head[static_cast<std::size_t>(e)]);
            }
          }
        }
        frontier.swap(nextf);
      }
      // Leave qmask clean for a retry pass.
      for (int v = 0; v < n; ++v) {
        qmask[static_cast<std::size_t>(v)] &= static_cast<std::uint8_t>(~bit);
      }
    }
    return capped;
  }

  void boxed_rebuild(Block& blk, int l, std::uint64_t& relaxations) {
    const int n = dnet.num_nodes();
    const Digraph& g = dnet.graph();
    const CsrAdjacency& out = g.csr_out();
    const CsrAdjacency& in = g.csr_in();
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << l);
    (void)bit;
    const int dest = dsts[static_cast<std::size_t>(blk.base + l)];
    auto& wcol = blk.bw[static_cast<std::size_t>(l)];
    std::vector<char> attached(static_cast<std::size_t>(n), 0);
    if (dnet.node_up(dest) && wcol[static_cast<std::size_t>(dest)]) {
      wcol[static_cast<std::size_t>(dest)] = origin;
      blk.next[static_cast<std::size_t>(dest) *
                   static_cast<std::size_t>(blk.cols) +
               static_cast<std::size_t>(l)] = -1;
      attached[static_cast<std::size_t>(dest)] = 1;
      std::vector<int> frontier{dest};
      std::vector<int> cands;
      std::vector<int> nextf;
      while (!frontier.empty()) {
        cands.clear();
        for (int v : frontier) {
          for (int e = in.begin(v); e < in.end(v); ++e) {
            const int id = in.arc[static_cast<std::size_t>(e)];
            if (!alive[static_cast<std::size_t>(id)]) continue;
            const int u = in.head[static_cast<std::size_t>(e)];
            if (!attached[static_cast<std::size_t>(u)] && dnet.node_up(u) &&
                wcol[static_cast<std::size_t>(u)]) {
              cands.push_back(u);
            }
          }
        }
        std::sort(cands.begin(), cands.end());
        cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
        nextf.clear();
        for (int u : cands) {
          for (int e = out.begin(u); e < out.end(u); ++e) {
            const int id = out.arc[static_cast<std::size_t>(e)];
            if (!alive[static_cast<std::size_t>(id)]) continue;
            const int h = out.head[static_cast<std::size_t>(e)];
            if (h == u || !attached[static_cast<std::size_t>(h)]) continue;
            ++relaxations;
            Value c = alg.fns->apply(dnet.label(id),
                                     *wcol[static_cast<std::size_t>(h)]);
            if (equiv_of(
                    alg.ord->cmp(c, *wcol[static_cast<std::size_t>(u)]))) {
              wcol[static_cast<std::size_t>(u)] = std::move(c);
              blk.next[static_cast<std::size_t>(u) *
                           static_cast<std::size_t>(blk.cols) +
                       static_cast<std::size_t>(l)] = id;
              nextf.push_back(u);
              break;
            }
          }
        }
        for (int u : nextf) attached[static_cast<std::size_t>(u)] = 1;
        frontier.swap(nextf);
      }
    }
    for (int v = 0; v < n; ++v) {
      if (!attached[static_cast<std::size_t>(v)]) clear_route(blk, v, l);
    }
  }

  // --- shared invalidation / seeding ----------------------------------------

  /// One transitive witness-invalidation pass over every warm lane of the
  /// block at once: kill masks propagate along stored witness chains
  /// (next[u] == arc), exactly the standalone invalidate() per lane — the
  /// per-lane invalid set is the same least fixed point, discovered in one
  /// shared traversal. Invalidated routes are cleared; surviving nodes seed
  /// the warm frontier through `seed`.
  template <typename Seed>
  void invalidate_block(Block& blk, const DynNet::Applied& ap,
                        std::uint8_t lanemask, Scratch& s, const Seed& seed) {
    const Digraph& g = dnet.graph();
    const CsrAdjacency& in = g.csr_in();
    const int cols = blk.cols;
    s.stack.clear();
    s.killed.clear();
    auto kill = [&](int v, std::uint8_t m) {
      const std::uint8_t nb =
          m & static_cast<std::uint8_t>(~s.inv[static_cast<std::size_t>(v)]);
      if (nb != 0) {
        if (s.inv[static_cast<std::size_t>(v)] == 0) s.killed.push_back(v);
        s.inv[static_cast<std::size_t>(v)] |= nb;
        s.stack.emplace_back(v, nb);
      }
    };
    auto witness_mask = [&](int u, int id, std::uint8_t m) {
      std::uint8_t out = 0;
      for (unsigned mm = m; mm != 0; mm &= mm - 1) {
        const int l = ctz8(mm);
        if (blk.next[static_cast<std::size_t>(u) *
                         static_cast<std::size_t>(cols) +
                     static_cast<std::size_t>(l)] == id) {
          out |= static_cast<std::uint8_t>(1u << l);
        }
      }
      return out;
    };
    for (int v : ap.nodes_down) kill(v, lanemask);
    for (int id : ap.changed_arcs) {
      const int u = g.arc(id).src;
      kill(u, witness_mask(u, id, lanemask));
    }
    while (!s.stack.empty()) {
      const auto [v, m] = s.stack.back();
      s.stack.pop_back();
      for (int e = in.begin(v); e < in.end(v); ++e) {
        const int id = in.arc[static_cast<std::size_t>(e)];
        const int u = in.head[static_cast<std::size_t>(e)];
        kill(u, witness_mask(u, id, m));
      }
    }
    std::sort(s.killed.begin(), s.killed.end());
    for (int v : s.killed) {
      const std::uint8_t m = s.inv[static_cast<std::size_t>(v)];
      s.inv[static_cast<std::size_t>(v)] = 0;  // leave inv all-zero again
      for (unsigned mm = m; mm != 0; mm &= mm - 1) {
        clear_route(blk, v, ctz8(mm));
      }
      if (dnet.node_up(v)) seed(v, m);
    }
  }

  /// Phase 1 of a table pass: split the block's lanes warm/cold, run the
  /// shared invalidation, and capture the warm frontier — the invalidated
  /// survivors plus the tails of changed arcs and restarted nodes (the
  /// standalone seed_nodes(), as a lane bitmask) — into the plan, along
  /// with the cost estimate phase 2 orders its steal queue by.
  void plan_block(Block& blk, const DynNet::Applied* ap, bool cold_all,
                  BlockPlan& plan) {
    const int cols = blk.cols;
    const std::uint8_t all =
        static_cast<std::uint8_t>(cols == 8 ? 0xFFu : ((1u << cols) - 1));
    if (ap == nullptr || cold_all) {
      plan.coldm = all;
    } else {
      for (int l = 0; l < cols; ++l) {
        if (!col_conv[static_cast<std::size_t>(blk.base + l)]) {
          plan.coldm |= static_cast<std::uint8_t>(1u << l);
        }
      }
    }
    plan.warmm = all & static_cast<std::uint8_t>(~plan.coldm);
    plan.cost = static_cast<std::uint64_t>(dnet.num_nodes()) *
                static_cast<std::uint64_t>(popcount8(plan.coldm));
    if (plan.warmm == 0) return;
    Scratch& s = scratch();
    s.ensure(static_cast<std::size_t>(dnet.num_nodes()));
    auto seed = [&](int v, std::uint8_t m) {
      if (s.qmask[static_cast<std::size_t>(v)] == 0) s.seeded.push_back(v);
      s.qmask[static_cast<std::size_t>(v)] |= m;
    };
    invalidate_block(blk, *ap, plan.warmm, s, seed);
    const Digraph& g = dnet.graph();
    for (int id : ap->changed_arcs) {
      const int u = g.arc(id).src;
      if (dnet.node_up(u)) seed(u, plan.warmm);
    }
    for (int v : ap->nodes_up) {
      if (dnet.node_up(v)) seed(v, plan.warmm);
    }
    std::sort(s.seeded.begin(), s.seeded.end());
    plan.seeds.reserve(s.seeded.size());
    for (int v : s.seeded) {
      const std::uint8_t m = s.qmask[static_cast<std::size_t>(v)];
      plan.seeds.emplace_back(v, m);
      plan.cost += static_cast<std::uint64_t>(popcount8(m));
      s.qmask[static_cast<std::size_t>(v)] = 0;  // leave qmask all-zero again
    }
    s.seeded.clear();
  }

  // --- per-block driver ------------------------------------------------------

  std::uint8_t relax(Block& blk, std::vector<std::uint8_t>& qmask,
                     std::vector<std::uint8_t>& touched,
                     std::uint64_t& relaxations, bool ivec) {
    return flat ? flat_relax(blk, qmask, touched, relaxations, ivec)
                : boxed_relax(blk, qmask, touched, relaxations);
  }

  void rebuild(Block& blk, int l, std::uint64_t& relaxations) {
    if (flat) {
      flat_rebuild(blk, l, relaxations);
    } else {
      boxed_rebuild(blk, l, relaxations);
    }
  }

  /// Phase 2: runs one planned block — seed the frontier from the plan,
  /// relax every lane in lockstep, retry capped warm lanes cold with a fresh
  /// round budget (the standalone update()'s run_cold() fallback), and
  /// canonicalize every converged lane.
  void run_block(Block& blk, const BlockPlan& plan, std::uint64_t& relaxations,
                 int& cold_cols) {
    const int n = dnet.num_nodes();
    const int cols = blk.cols;
    const std::uint8_t coldm = plan.coldm;
    const std::uint8_t warmm = plan.warmm;
    // Vertical-lane relax: dense (cold-lane) multi-word relaxes of full
    // blocks run on slot-major rows so the SIMD select kernel is gather-free
    // end to end. The one-off reshape amortizes only when whole lanes
    // rebuild; warm-only relaxes keep the lane-major layout untouched.
    const bool ivec = flat && stride > 1 && cols == kBlockCols &&
                      coldm != 0 && compile::simd::enabled() &&
                      cnet.algebra().lex_flat();
    Scratch& s = scratch();
    s.ensure(static_cast<std::size_t>(n));
    // s.qmask is all-zero on entry (relax consumes every bit it is handed,
    // and the planner zeroed its seeds), so seeding is sparse stores.
    for (const auto& [v, m] : plan.seeds) {
      s.qmask[static_cast<std::size_t>(v)] = m;
    }
    s.touched.assign(static_cast<std::size_t>(n), 0);
    for (unsigned mm = coldm; mm != 0; mm &= mm - 1) {
      const int l = ctz8(mm);
      clear_lane(blk, l);
      const int d = dsts[static_cast<std::size_t>(blk.base + l)];
      if (dnet.node_up(d)) {
        s.qmask[static_cast<std::size_t>(d)] |=
            static_cast<std::uint8_t>(1u << l);
      }
    }
    if (ivec) reshape_block(blk, /*to_slot_major=*/true);
    const std::uint8_t capped = relax(blk, s.qmask, s.touched, relaxations,
                                      ivec);

    const std::uint8_t retry = capped & warmm;
    std::uint8_t capped2 = 0;
    if (retry != 0) {
      // clear_lane touches only present/next bits, so the slot-major rows
      // can stay in place across the retry.
      for (unsigned mm = retry; mm != 0; mm &= mm - 1) {
        const int l = ctz8(mm);
        clear_lane(blk, l);
        const int d = dsts[static_cast<std::size_t>(blk.base + l)];
        if (dnet.node_up(d)) {
          s.qmask[static_cast<std::size_t>(d)] |=
              static_cast<std::uint8_t>(1u << l);
        }
      }
      capped2 = relax(blk, s.qmask, s.touched, relaxations, ivec);
    }
    if (ivec) reshape_block(blk, /*to_slot_major=*/false);
    const std::uint8_t final_cold = coldm | retry;
    const std::uint8_t unconv =
        static_cast<std::uint8_t>((capped & coldm) | capped2);
    cold_cols += popcount8(final_cold);
    for (int l = 0; l < cols; ++l) {
      const std::uint8_t bit = static_cast<std::uint8_t>(1u << l);
      const bool conv = (unconv & bit) == 0;
      col_conv[static_cast<std::size_t>(blk.base + l)] =
          conv ? 1 : 0;
      if (conv) rebuild(blk, l, relaxations);
      if ((final_cold & bit) != 0) {
        stats.affected[static_cast<std::size_t>(blk.base + l)] = n;
      } else {
        int cnt = 0;
        for (int v = 0; v < n; ++v) {
          if ((s.touched[static_cast<std::size_t>(v)] & bit) != 0) ++cnt;
        }
        stats.affected[static_cast<std::size_t>(blk.base + l)] = cnt;
      }
    }
  }

  /// Two-phase pass over the destination blocks. Phase 1 plans every block
  /// (lane split, invalidation, warm seeds, cost estimate) under static
  /// chunking; phase 2 relaxes them under deterministic work stealing in
  /// descending-cost order (LPT, ties by block index), so one skewed
  /// destination region no longer pins a static chunk assignment to a
  /// single thread. Blocks own disjoint state and write disjoint stats
  /// slots; the steal order decides only *who* runs a block, and per-block
  /// accumulators merge in block order — bit-identical at any thread count.
  void run_all_blocks(const DynNet::Applied* ap, bool cold_all) {
    const std::size_t nb = blocks.size();
    std::vector<BlockPlan> plans(nb);
    std::vector<std::uint64_t> relax_pb(nb, 0);
    std::vector<int> cold_pb(nb, 0);
    par::parallel_for(nb, 1, [&](std::size_t b0, std::size_t b1) {
      for (std::size_t b = b0; b < b1; ++b) {
        plan_block(blocks[b], ap, cold_all, plans[b]);
      }
    });
    std::vector<std::size_t> order(nb);
    for (std::size_t b = 0; b < nb; ++b) order[b] = b;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return plans[a].cost > plans[b].cost;
                     });
    par::parallel_steal(order, [&](std::size_t b) {
      run_block(blocks[b], plans[b], relax_pb[b], cold_pb[b]);
    });
    for (std::size_t b = 0; b < nb; ++b) {
      stats.relaxations += relax_pb[b];
      stats.cold_columns += cold_pb[b];
    }
    stats.cold = stats.cold_columns == stats.columns;
    rvalid.assign(static_cast<std::size_t>(columns()), 0);
  }

  // --- stats / journal -------------------------------------------------------

  void begin_stats(bool cold, std::size_t changed_arcs) {
    stats = RibStats{};
    stats.cold = cold;
    stats.columns = columns();
    stats.total = dnet.num_nodes();
    stats.changed_arcs = static_cast<int>(changed_arcs);
    stats.affected.assign(static_cast<std::size_t>(columns()), 0);
  }

  void finish_stats() const {
    if (!obs::enabled()) return;
    obs::Registry& reg = obs::registry();
    reg.counter("dyn.rib.updates").add(1);
    if (stats.cold) reg.counter("dyn.rib.updates_cold").add(1);
    reg.counter("dyn.rib.cold_columns")
        .add(static_cast<std::uint64_t>(stats.cold_columns));
    reg.counter("dyn.rib.affected_nodes")
        .add(static_cast<std::uint64_t>(stats.affected_total()));
    reg.counter("dyn.rib.changed_arcs")
        .add(static_cast<std::uint64_t>(stats.changed_arcs));
    reg.counter("dyn.rib.relaxations").add(stats.relaxations);
    reg.histogram("dyn.rib.affected_pct")
        .record(static_cast<std::uint64_t>(stats.affected_mean_fraction() *
                                           100.0));
  }

  /// The standalone journal_delta(), once per table (not per column): the
  /// RIB emits aggregate flight-recorder records on its own stream; per-node
  /// provenance stays with the single-destination solvers.
  void journal_delta(const TopologyDelta& delta, const DynNet::Applied& ap) {
    if (!obs::journal_enabled()) return;
    obs::jrecord(Subsystem::Dyn, EventKind::UpdateBegin, jstream, -1, -1,
                 static_cast<std::int64_t>(delta.ops.size()), dnet.version());
    for (int id : ap.changed_arcs) {
      const bool relabeled = std::binary_search(ap.relabeled_arcs.begin(),
                                                ap.relabeled_arcs.end(), id);
      obs::jrecord(Subsystem::Dyn,
                   relabeled ? EventKind::DeltaRelabel : EventKind::DeltaArc,
                   jstream, dnet.graph().arc(id).src, id,
                   dnet.arc_alive(id) ? 1 : 0, dnet.version());
    }
    for (int v : ap.nodes_down) {
      obs::jrecord(Subsystem::Dyn, EventKind::DeltaNodeDown, jstream, v, -1,
                   0, dnet.version());
    }
    for (int v : ap.nodes_up) {
      obs::jrecord(Subsystem::Dyn, EventKind::DeltaNodeUp, jstream, v, -1, 0,
                   dnet.version());
    }
  }

  // --- demotion ---------------------------------------------------------------

  /// A relabel pushed the network off the compiled path (a label outside the
  /// family's range): materialize every flat lane into boxed storage — the
  /// stored words decode losslessly, so not a byte of the table changes —
  /// and continue on the per-lane fallback.
  void demote_to_boxed() {
    const compile::CompiledAlgebra& ca = cnet.algebra();
    const int n = dnet.num_nodes();
    for (Block& blk : blocks) {
      const std::size_t rowlen = static_cast<std::size_t>(blk.cols) * stride;
      blk.bw.assign(static_cast<std::size_t>(blk.cols),
                    std::vector<std::optional<Value>>(
                        static_cast<std::size_t>(n)));
      for (int v = 0; v < n; ++v) {
        const std::uint8_t p = blk.present[static_cast<std::size_t>(v)];
        for (unsigned mm = p; mm != 0; mm &= mm - 1) {
          const int l = ctz8(mm);
          blk.bw[static_cast<std::size_t>(l)][static_cast<std::size_t>(v)] =
              ca.decode(blk.w.data() + static_cast<std::size_t>(v) * rowlen +
                        static_cast<std::size_t>(l) * stride);
        }
      }
      blk.w.clear();
      blk.w.shrink_to_fit();
      blk.present.clear();
      blk.present.shrink_to_fit();
    }
    flat = false;
    if (obs::enabled()) obs::counter("dyn.rib.flat_demotions").add(1);
  }

  // --- binding / top level -----------------------------------------------------

  void bind(const LabeledGraph& net, std::vector<int> ds, const Value& org) {
    MRT_REQUIRE(!ds.empty());
    for (int d : ds) MRT_REQUIRE(d >= 0 && d < net.num_nodes());
    dnet = DynNet(net);
    origin = org;
    dsts = std::move(ds);
    bound = true;
    jstream = obs::journal_next_stream();
    if (weng != nullptr) {
      cnet = compile::CompiledNet::make(*weng, dnet.net());
    } else {
      cnet = compile::CompiledNet();
    }
    stride = 0;
    flat = false;
    if (cnet.ok()) {
      stride = static_cast<std::size_t>(cnet.words());
      origin_w.assign(stride, 0);
      flat = cnet.algebra().encode(origin, origin_w.data());
    }
    if (obs::enabled()) {
      obs::counter(flat ? "dyn.rib.solves_flat" : "dyn.rib.solves_boxed")
          .add(1);
      obs::counter("dyn.rib.columns")
          .add(static_cast<std::uint64_t>(dsts.size()));
    }

    const int n = dnet.num_nodes();
    bwidth = opts.block;
    const int total = columns();
    blocks.clear();
    for (int base = 0; base < total; base += bwidth) {
      Block blk;
      blk.base = base;
      blk.cols = std::min(bwidth, total - base);
      const std::size_t ncols = static_cast<std::size_t>(blk.cols);
      blk.next.assign(static_cast<std::size_t>(n) * ncols, -1);
      for (int l = 0; l < blk.cols; ++l) {
        blk.dest[l] = dsts[static_cast<std::size_t>(base + l)];
      }
      if (flat) {
        blk.w.assign(static_cast<std::size_t>(n) * ncols * stride, 0);
        blk.present.assign(static_cast<std::size_t>(n), 0);
      } else {
        blk.bw.assign(ncols, std::vector<std::optional<Value>>(
                                 static_cast<std::size_t>(n)));
      }
      blocks.push_back(std::move(blk));
    }
    col_conv.assign(static_cast<std::size_t>(total), 0);
    rcache.assign(static_cast<std::size_t>(total), Routing{});
    rvalid.assign(static_cast<std::size_t>(total), 0);
    refresh_alive();
    // Build the CSR views once, outside the parallel region.
    dnet.graph().csr_out();
    dnet.graph().csr_in();
  }

  void solve(const LabeledGraph& net, std::vector<int> ds, const Value& org) {
    obs::ScopedSpan span("rib.solve", "routing");
    static obs::Histogram& solve_ns =
        obs::registry().histogram("dyn.rib.solve_ns");
    obs::ScopedTimer timer(solve_ns);
    bind(net, std::move(ds), org);
    obs::jrecord(Subsystem::Dyn, EventKind::SolveBegin, jstream, -1, -1,
                 static_cast<std::int64_t>(columns()), dnet.version());
    begin_stats(/*cold=*/true, 0);
    run_all_blocks(nullptr, /*cold_all=*/true);
    finish_stats();
    obs::jrecord(Subsystem::Dyn, EventKind::UpdateEnd, jstream, -1, -1,
                 -stats.affected_total(), dnet.version());
  }

  void update(const TopologyDelta& delta) {
    MRT_REQUIRE(bound);
    obs::ScopedSpan span("rib.update", "routing");
    static obs::Histogram& update_ns =
        obs::registry().histogram("dyn.rib.update_ns");
    obs::ScopedTimer timer(update_ns);
    const DynNet::Applied ap = dnet.apply(delta);
    journal_delta(delta, ap);
    // Delta-aware re-encoding, as in the standalone engines; if a relabel
    // pushes the network off the compiled path, the table demotes to boxed.
    if (weng != nullptr) {
      for (int id : ap.relabeled_arcs) cnet.relabel(id, dnet.label(id));
      if (flat && !cnet.ok()) demote_to_boxed();
    }
    begin_stats(/*cold=*/false, ap.changed_arcs.size());
    if (!ap.any()) {
      finish_stats();
      return;
    }
    refresh_alive();
    run_all_blocks(&ap, /*cold_all=*/!dyn::enabled());
    finish_stats();
    obs::jrecord(Subsystem::Dyn, EventKind::UpdateEnd, jstream, -1, -1,
                 stats.cold ? -stats.affected_total()
                            : stats.affected_total(),
                 dnet.version());
  }

  const Routing& routing(int c) const {
    MRT_REQUIRE(bound && c >= 0 && c < columns());
    if (!rvalid[static_cast<std::size_t>(c)]) {
      const Block& blk = blocks[static_cast<std::size_t>(c / bwidth)];
      const int l = c % bwidth;
      const int n = dnet.num_nodes();
      Routing& r = rcache[static_cast<std::size_t>(c)];
      r.weight.assign(static_cast<std::size_t>(n), std::nullopt);
      r.next_arc.assign(static_cast<std::size_t>(n), -1);
      if (flat) {
        const compile::CompiledAlgebra& ca = cnet.algebra();
        const std::size_t rowlen =
            static_cast<std::size_t>(blk.cols) * stride;
        const std::uint8_t bit = static_cast<std::uint8_t>(1u << l);
        for (int v = 0; v < n; ++v) {
          if ((blk.present[static_cast<std::size_t>(v)] & bit) != 0) {
            r.weight[static_cast<std::size_t>(v)] =
                ca.decode(blk.w.data() + static_cast<std::size_t>(v) * rowlen +
                          static_cast<std::size_t>(l) * stride);
          }
          r.next_arc[static_cast<std::size_t>(v)] =
              blk.next[static_cast<std::size_t>(v) *
                           static_cast<std::size_t>(blk.cols) +
                       static_cast<std::size_t>(l)];
        }
      } else {
        const auto& wcol = blk.bw[static_cast<std::size_t>(l)];
        for (int v = 0; v < n; ++v) {
          r.weight[static_cast<std::size_t>(v)] =
              wcol[static_cast<std::size_t>(v)];
          r.next_arc[static_cast<std::size_t>(v)] =
              blk.next[static_cast<std::size_t>(v) *
                           static_cast<std::size_t>(blk.cols) +
                       static_cast<std::size_t>(l)];
        }
      }
      rvalid[static_cast<std::size_t>(c)] = 1;
    }
    return rcache[static_cast<std::size_t>(c)];
  }
};

RibSolver::RibSolver(const OrderTransform& alg,
                     const compile::WeightEngine* engine, RibOptions opts)
    : impl_(std::make_unique<Impl>(alg, engine, opts)) {}

RibSolver::~RibSolver() = default;

void RibSolver::solve(const LabeledGraph& net, std::vector<int> dests,
                      const Value& origin) {
  impl_->solve(net, std::move(dests), origin);
}

void RibSolver::solve_all(const LabeledGraph& net, const Value& origin) {
  std::vector<int> all(static_cast<std::size_t>(net.num_nodes()));
  for (int v = 0; v < net.num_nodes(); ++v) {
    all[static_cast<std::size_t>(v)] = v;
  }
  impl_->solve(net, std::move(all), origin);
}

void RibSolver::update(const dyn::TopologyDelta& delta) {
  impl_->update(delta);
}

std::size_t RibSolver::consume(stream::DeltaStream& s) {
  std::size_t n = 0;
  while (std::optional<dyn::TopologyDelta> d = s.next()) {
    impl_->update(*d);
    ++n;
  }
  return n;
}

int RibSolver::num_columns() const { return impl_->columns(); }

const std::vector<int>& RibSolver::dests() const { return impl_->dsts; }

const Routing& RibSolver::routing(int column) const {
  return impl_->routing(column);
}

bool RibSolver::converged() const {
  for (std::uint8_t c : impl_->col_conv) {
    if (!c) return false;
  }
  return true;
}

bool RibSolver::column_converged(int column) const {
  MRT_REQUIRE(column >= 0 && column < impl_->columns());
  return impl_->col_conv[static_cast<std::size_t>(column)] != 0;
}

const RibStats& RibSolver::last_update() const { return impl_->stats; }

const dyn::DynNet& RibSolver::net() const { return impl_->dnet; }

std::uint32_t RibSolver::journal_stream() const { return impl_->jstream; }

bool RibSolver::batched_flat() const { return impl_->flat; }

}  // namespace rib
}  // namespace mrt
