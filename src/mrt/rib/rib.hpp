// mrt::rib — batched all-destination routing tables over CSR / SoA storage.
//
// A dyn::Solver binds one (net, dest) pair; a production RIB holds routes to
// *every* destination. Because the metarouting fixed point is per-destination
// independent (Daggitt–Griffin, arXiv:2106.01184 — each destination's DBF
// converges on its own), a batched solver can share one topology sweep across
// many destination columns. RibSolver groups the destination set into blocks
// of up to kBlockCols columns and stores each block's state
// structure-of-arrays over the mrt::compile flat layout:
//
//   words[(v * cols + c) * stride + k]   — weight word k of column c at node v
//   present[v]                           — per-node bitmask, bit c = routed
//   next_arc[v * cols + c]               — witness arc of column c at node v
//
// so one worklist pass over the CSR adjacency relaxes every column of a
// block per arc visit, running the fused label program through
// CompiledAlgebra::apply_block (one opcode decode for the whole block).
// Without a compiled engine the solver falls back to boxed per-column loops
// over the same shared topology state — byte-identical, just unbatched.
//
// The dynamic seams thread straight through: warm updates take a
// dyn::TopologyDelta, refresh one shared alive-mask, run one transitive
// witness-invalidation pass over the whole block (per-column kill masks),
// and re-relax each column from its own seed frontier; mrt::par chunks the
// destination blocks across workers under the bit-identical-at-any-
// thread-count contract (blocks are disjoint state, merged in index order).
//
// The correctness contract is differential: every column — cold, and after
// any delta sequence — is byte-identical to a standalone
// dyn::Solver(EngineKind::Bellman) bound to that destination. The batched
// relaxation replays the exact same per-column trajectory (same Gauss–Seidel
// rounds, same ascending-node order within a round, same smallest-arc-id tie
// breaks, same canonical witness-forest rebuild); columns never read each
// other's state, so batching changes the memory layout and the work
// schedule, never a byte of the answer. See docs/RIB.md.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mrt/compile/engine.hpp"
#include "mrt/dyn/delta.hpp"

namespace mrt {

namespace stream {
class DeltaStream;
}  // namespace stream

namespace rib {

/// Destination columns per block: wide enough to amortize opcode decode and
/// fill a cache line of single-word carriers, narrow enough that a block's
/// working row fits in registers-ish scratch. The per-column bitmasks are
/// uint8, so this is also a hard ceiling.
inline constexpr int kBlockCols = 8;

/// Work accounting of the last solve()/update(), per destination column.
struct RibStats {
  bool cold = false;      ///< every column ran a full re-solve
  int columns = 0;        ///< destination columns in the table
  int cold_columns = 0;   ///< columns that fell back to a cold solve
  int total = 0;          ///< nodes in the bound network
  int changed_arcs = 0;   ///< arcs changed by the applied delta
  std::uint64_t relaxations = 0;
  std::vector<int> affected;  ///< per-column re-relaxed node counts

  std::int64_t affected_total() const {
    std::int64_t s = 0;
    for (int a : affected) s += a;
    return s;
  }
  int affected_max() const {
    int m = 0;
    for (int a : affected) m = a > m ? a : m;
    return m;
  }
  /// Mean affected fraction across columns, in [0, 1].
  double affected_mean_fraction() const {
    if (total <= 0 || affected.empty()) return 0.0;
    return static_cast<double>(affected_total()) /
           (static_cast<double>(total) * static_cast<double>(affected.size()));
  }
};

struct RibOptions {
  int block = kBlockCols;  ///< columns per block, clamped to [1, kBlockCols]
  int max_rounds = 1000;   ///< per-column worklist cap; matches the dyn
                           ///< Bellman engine (and BellmanOptions)
};

/// Batched multi-destination solver. solve() binds (net, dests, origin) and
/// computes every column cold; update() applies a TopologyDelta and warm-
/// maintains all columns at once. routing(c) materializes column c as an
/// ordinary boxed Routing (lazily, cached until the next solve/update).
class RibSolver {
 public:
  /// `engine` (optional, non-owning, must outlive the solver) routes the
  /// batched sweep through the compiled flat kernels; without it — or when
  /// the algebra does not compile — every column runs the boxed fallback.
  explicit RibSolver(const OrderTransform& alg,
                     const compile::WeightEngine* engine = nullptr,
                     RibOptions opts = RibOptions{});
  ~RibSolver();
  RibSolver(const RibSolver&) = delete;
  RibSolver& operator=(const RibSolver&) = delete;

  /// Cold full solve of one column per destination in `dests` (each in
  /// [0, num_nodes); duplicates allowed — columns are independent).
  void solve(const LabeledGraph& net, std::vector<int> dests,
             const Value& origin);
  /// Cold full solve with dests = {0, 1, ..., num_nodes - 1}.
  void solve_all(const LabeledGraph& net, const Value& origin);

  /// Applies `delta` to the bound topology and recomputes every column
  /// incrementally (cold when dyn::enabled() is false or a column's previous
  /// pass did not converge). Requires a prior solve().
  void update(const dyn::TopologyDelta& delta);

  /// Drains `s`, applying every delta batch through update() in order —
  /// update() is the single-record case of this loop. Returns the number of
  /// batches applied. Requires a prior solve(). A stream that terminates on
  /// a decode failure leaves the table at the last successfully applied
  /// delta (check s.error()).
  std::size_t consume(stream::DeltaStream& s);

  int num_columns() const;
  const std::vector<int>& dests() const;
  /// Column c as a boxed Routing — byte-identical to a standalone
  /// dyn::Solver(Bellman) for dests()[c]. Valid until the next
  /// solve()/update().
  const Routing& routing(int column) const;

  bool converged() const;                  ///< every column converged
  bool column_converged(int column) const;
  const RibStats& last_update() const;
  const dyn::DynNet& net() const;
  std::uint32_t journal_stream() const;
  /// True when the batched flat kernels are active (compiled engine present,
  /// algebra + all labels compiled, origin encodable).
  bool batched_flat() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rib
}  // namespace mrt
