#include "mrt/dyn/delta.hpp"

#include <algorithm>
#include <utility>

#include "mrt/support/require.hpp"

namespace mrt::dyn {

std::string DeltaOp::describe() const {
  switch (kind) {
    case Kind::ArcDown:
      return "arc_down(" + std::to_string(arc) + ")";
    case Kind::ArcUp:
      return "arc_up(" + std::to_string(arc) + ")";
    case Kind::Relabel:
      return "relabel(" + std::to_string(arc) + ", " + label.to_string() + ")";
    case Kind::NodeDown:
      return "node_down(" + std::to_string(node) + ")";
    case Kind::NodeUp:
      return "node_up(" + std::to_string(node) + ")";
  }
  return "?";
}

TopologyDelta& TopologyDelta::arc_down(int arc) {
  DeltaOp op;
  op.kind = DeltaOp::Kind::ArcDown;
  op.arc = arc;
  ops.push_back(std::move(op));
  return *this;
}

TopologyDelta& TopologyDelta::arc_up(int arc) {
  DeltaOp op;
  op.kind = DeltaOp::Kind::ArcUp;
  op.arc = arc;
  ops.push_back(std::move(op));
  return *this;
}

TopologyDelta& TopologyDelta::relabel(int arc, Value label) {
  DeltaOp op;
  op.kind = DeltaOp::Kind::Relabel;
  op.arc = arc;
  op.label = std::move(label);
  ops.push_back(std::move(op));
  return *this;
}

TopologyDelta& TopologyDelta::node_down(int node) {
  DeltaOp op;
  op.kind = DeltaOp::Kind::NodeDown;
  op.node = node;
  ops.push_back(std::move(op));
  return *this;
}

TopologyDelta& TopologyDelta::node_up(int node) {
  DeltaOp op;
  op.kind = DeltaOp::Kind::NodeUp;
  op.node = node;
  ops.push_back(std::move(op));
  return *this;
}

TopologyDelta TopologyDelta::to_state(const std::vector<bool>& arc_admin_up,
                                      const std::vector<bool>& node_up) {
  TopologyDelta d;
  for (std::size_t a = 0; a < arc_admin_up.size(); ++a) {
    if (!arc_admin_up[a]) d.arc_down(static_cast<int>(a));
  }
  for (std::size_t v = 0; v < node_up.size(); ++v) {
    if (!node_up[v]) d.node_down(static_cast<int>(v));
  }
  return d;
}

std::string TopologyDelta::describe() const {
  std::string out = "[";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i > 0) out += ", ";
    out += ops[i].describe();
  }
  out += "]";
  return out;
}

DynNet::DynNet(LabeledGraph net) : net_(std::move(net)) {
  arc_up_.assign(static_cast<std::size_t>(net_.graph().num_arcs()), true);
  node_up_.assign(static_cast<std::size_t>(net_.num_nodes()), true);
}

DynNet::Applied DynNet::apply(const TopologyDelta& delta) {
  const int narcs = net_.graph().num_arcs();
  auto check_arc = [&](int a) { MRT_REQUIRE(a >= 0 && a < narcs); };
  auto check_node = [&](int v) { MRT_REQUIRE(v >= 0 && v < num_nodes()); };
  // Snapshot-and-diff: a batch reports its *net* effect, so an arc or node
  // that flaps down-then-up inside one batch (common in replayed simulator
  // event streams) produces no spurious invalidation work downstream.
  std::vector<bool> alive_before(static_cast<std::size_t>(narcs));
  for (int id = 0; id < narcs; ++id) {
    alive_before[static_cast<std::size_t>(id)] = arc_alive(id);
  }
  const std::vector<bool> node_before = node_up_;
  std::vector<std::pair<int, Value>> label_before;  // first edit per arc
  for (const DeltaOp& op : delta.ops) {
    switch (op.kind) {
      case DeltaOp::Kind::ArcDown:
        check_arc(op.arc);
        arc_up_[static_cast<std::size_t>(op.arc)] = false;
        break;
      case DeltaOp::Kind::ArcUp:
        check_arc(op.arc);
        arc_up_[static_cast<std::size_t>(op.arc)] = true;
        break;
      case DeltaOp::Kind::Relabel: {
        check_arc(op.arc);
        const bool seen = std::any_of(
            label_before.begin(), label_before.end(),
            [&](const auto& p) { return p.first == op.arc; });
        if (!seen) label_before.emplace_back(op.arc, net_.label(op.arc));
        net_.relabel(op.arc, op.label);
        break;
      }
      case DeltaOp::Kind::NodeDown:
        check_node(op.node);
        node_up_[static_cast<std::size_t>(op.node)] = false;
        break;
      case DeltaOp::Kind::NodeUp:
        check_node(op.node);
        node_up_[static_cast<std::size_t>(op.node)] = true;
        break;
    }
  }
  ++version_;
  Applied out;
  for (const auto& [id, old_label] : label_before) {
    if (!(net_.label(id) == old_label)) out.relabeled_arcs.push_back(id);
  }
  std::sort(out.relabeled_arcs.begin(), out.relabeled_arcs.end());
  for (int id = 0; id < narcs; ++id) {
    const bool relabeled = std::binary_search(
        out.relabeled_arcs.begin(), out.relabeled_arcs.end(), id);
    const bool alive_now = arc_alive(id);
    // A relabel of a dead arc changes no reachable route: the new label is
    // reported in relabeled_arcs (consumers re-encode their compiled label
    // programs from it), but the arc only enters changed_arcs — and thus
    // seeds witness invalidation — once it is actually alive. When it later
    // comes up, the alive transition puts it in changed_arcs then.
    if (alive_now != alive_before[static_cast<std::size_t>(id)] ||
        (relabeled && alive_now)) {
      out.changed_arcs.push_back(id);
    }
  }
  for (int v = 0; v < num_nodes(); ++v) {
    const bool was = node_before[static_cast<std::size_t>(v)];
    const bool now = node_up_[static_cast<std::size_t>(v)];
    if (was && !now) out.nodes_down.push_back(v);
    if (!was && now) out.nodes_up.push_back(v);
  }
  return out;
}

}  // namespace mrt::dyn
