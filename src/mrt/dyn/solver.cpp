#include "mrt/dyn/solver.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "mrt/obs/obs.hpp"
#include "mrt/support/require.hpp"

namespace mrt {

namespace dyn {
namespace {

bool dyn_enabled_from_env() {
  const char* e = std::getenv("MRT_DYN");
  return e == nullptr || std::string(e) != "0";
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{dyn_enabled_from_env()};
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

}  // namespace dyn

namespace {

using dyn::DynNet;
using dyn::TopologyDelta;
using dyn::UpdateStats;
using obs::EventKind;
using obs::Subsystem;

/// Shared engine state: the bound problem, the current solution, and the
/// helpers both engines build their warm paths from — candidate scans,
/// transitive invalidation, and the canonicalization pass that gives cold
/// and warm runs a common normal form.
class EngineBase : public Solver {
 public:
  EngineBase(OrderTransform alg, const compile::WeightEngine* weng)
      : alg_(std::move(alg)), weng_(weng) {}

  const Routing& solve(const LabeledGraph& net, int dest,
                       const Value& origin) override {
    MRT_REQUIRE(dest >= 0 && dest < net.num_nodes());
    obs::ScopedSpan span("dyn.solve", "routing");
    static obs::Histogram& solve_ns = obs::registry().histogram("dyn.solve_ns");
    obs::ScopedTimer timer(solve_ns);
    dnet_ = DynNet(net);
    dest_ = dest;
    origin_ = origin;
    bound_ = true;
    // A fresh binding opens a fresh journal stream and resets the diff
    // baseline, so the cold solve journals every route as a new attach.
    jstream_ = obs::journal_next_stream();
    jprev_valid_ = false;
    obs::jrecord(Subsystem::Dyn, EventKind::SolveBegin, jstream_, dest_, -1,
                 dnet_.num_nodes());
    if (weng_ != nullptr) {
      cnet_ = compile::CompiledNet::make(*weng_, dnet_.net());
    } else {
      cnet_ = compile::CompiledNet();
    }
    begin_stats(/*cold=*/true, 0);
    cold_solve();
    stats_.affected = dnet_.num_nodes();
    finish_stats(/*is_update=*/false);
    journal_routing_diff();
    obs::jrecord(Subsystem::Dyn, EventKind::UpdateEnd, jstream_, -1, -1,
                 -static_cast<std::int64_t>(stats_.affected),
                 dnet_.version());
    return r_;
  }

  const Routing& update(const TopologyDelta& delta) override {
    MRT_REQUIRE(bound_);
    obs::ScopedSpan span("dyn.update", "routing");
    static obs::Histogram& update_ns =
        obs::registry().histogram("dyn.update_ns");
    obs::ScopedTimer timer(update_ns);
    const DynNet::Applied ap = dnet_.apply(delta);
    journal_delta(delta, ap);
    // Delta-aware re-encoding: only the relabeled arcs' programs recompile.
    if (weng_ != nullptr) {
      for (int id : ap.relabeled_arcs) cnet_.relabel(id, dnet_.label(id));
    }
    begin_stats(/*cold=*/false, ap.changed_arcs.size());
    if (!ap.any()) {
      finish_stats(/*is_update=*/true);
      return r_;
    }
    if (!dyn::enabled() || !converged_) {
      run_cold();
    } else {
      warm_update(ap);
      // The incremental pass hit its safety cap: the masked full solve is
      // the fallback (it terminates regardless of the algebra's properties
      // on the Dijkstra engine, and caps identically on Bellman).
      if (!converged_) run_cold();
    }
    finish_stats(/*is_update=*/true);
    journal_routing_diff();
    obs::jrecord(Subsystem::Dyn, EventKind::UpdateEnd, jstream_, -1, -1,
                 stats_.cold ? -static_cast<std::int64_t>(stats_.affected)
                             : static_cast<std::int64_t>(stats_.affected),
                 dnet_.version());
    return r_;
  }

  const Routing& routing() const override { return r_; }
  const dyn::DynNet& net() const override { return dnet_; }
  int dest() const override { return dest_; }
  std::uint32_t journal_stream() const override { return jstream_; }
  bool converged() const override { return converged_; }
  const UpdateStats& last_update() const override { return stats_; }

 protected:
  /// Full solve over the current masks; sets r_ and converged_.
  virtual void cold_solve() = 0;
  /// Incremental recomputation; sets r_, converged_, stats_.affected.
  virtual void warm_update(const DynNet::Applied& ap) = 0;

  void run_cold() {
    stats_.cold = true;
    cold_solve();
    stats_.affected = dnet_.num_nodes();
  }

  bool node_ok(int v) const { return dnet_.node_up(v); }

  void clear_route(int v) {
    r_.weight[static_cast<std::size_t>(v)] = std::nullopt;
    r_.next_arc[static_cast<std::size_t>(v)] = -1;
  }

  struct Candidate {
    std::optional<Value> weight;
    int arc = -1;
  };

  /// Best extension of u's neighbours' current routes over alive out-arcs.
  /// Ties break toward the smaller arc id (out_arcs is in id order);
  /// self-loops are skipped — they can tie but never improve under ND, and
  /// a self-loop witness would be a forwarding loop.
  Candidate best_candidate(int u) {
    Candidate best;
    const Digraph& g = dnet_.graph();
    for (int id : g.out_arcs(u)) {
      if (!dnet_.arc_alive(id)) continue;
      const int v = g.arc(id).dst;
      if (v == u) continue;
      const auto& wv = r_.weight[static_cast<std::size_t>(v)];
      if (!wv) continue;
      ++stats_.relaxations;
      Value cand = alg_.fns->apply(dnet_.label(id), *wv);
      if (!best.weight || lt_of(alg_.ord->cmp(cand, *best.weight))) {
        best.weight = std::move(cand);
        best.arc = id;
      }
    }
    return best;
  }

  /// Rebuilds every witness as a breadth-first forest over *achieving* arcs
  /// (arcs whose extension of the head's weight lands in the node's weight
  /// class), rooted at dest. Within a BFS layer nodes attach in ascending id
  /// and each picks its smallest achieving arc into the previous layers, so
  /// the forest is a pure function of the weight vector and the alive
  /// topology — cold and warm solves emit identical bytes whenever they
  /// reach the same fixed point. Crucially the result is cycle-free by
  /// construction: a per-node smallest-arc rule could let two equal-weight
  /// nodes witness each other (saturation plateaus), leaving a forwarding
  /// cycle that `invalidate` can never trace back to a failure. Nodes whose
  /// weight is not supported by the forest (such ghost plateaus) are
  /// cleared rather than preserved (see docs/DYN.md).
  void rebuild_witnesses() {
    const int n = dnet_.num_nodes();
    const Digraph& g = dnet_.graph();
    std::vector<char> attached(static_cast<std::size_t>(n), 0);
    if (node_ok(dest_) && r_.weight[static_cast<std::size_t>(dest_)]) {
      r_.weight[static_cast<std::size_t>(dest_)] = origin_;
      r_.next_arc[static_cast<std::size_t>(dest_)] = -1;
      attached[static_cast<std::size_t>(dest_)] = 1;
      std::vector<int> frontier{dest_};
      std::vector<int> cands;
      std::vector<int> next;
      while (!frontier.empty()) {
        cands.clear();
        for (int v : frontier) {
          for (int id : g.in_arcs(v)) {
            if (!dnet_.arc_alive(id)) continue;
            const int u = g.arc(id).src;
            if (!attached[static_cast<std::size_t>(u)] && node_ok(u) &&
                r_.weight[static_cast<std::size_t>(u)]) {
              cands.push_back(u);
            }
          }
        }
        std::sort(cands.begin(), cands.end());
        cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
        next.clear();
        for (int u : cands) {
          for (int id : g.out_arcs(u)) {
            if (!dnet_.arc_alive(id)) continue;
            const int h = g.arc(id).dst;
            if (h == u || !attached[static_cast<std::size_t>(h)]) continue;
            ++stats_.relaxations;
            Value cand = alg_.fns->apply(
                dnet_.label(id), *r_.weight[static_cast<std::size_t>(h)]);
            if (equiv_of(alg_.ord->cmp(
                    cand, *r_.weight[static_cast<std::size_t>(u)]))) {
              // Normalized weight = the value actually achieved along the
              // witness (identical for antisymmetric algebras).
              r_.weight[static_cast<std::size_t>(u)] = std::move(cand);
              r_.next_arc[static_cast<std::size_t>(u)] = id;
              next.push_back(u);
              break;
            }
          }
        }
        // Snapshot semantics: this layer becomes visible only for the next
        // one, keeping the layering independent of in-round scan order.
        for (int u : next) attached[static_cast<std::size_t>(u)] = 1;
        frontier.swap(next);
      }
    }
    for (int v = 0; v < n; ++v) {
      if (!attached[static_cast<std::size_t>(v)]) clear_route(v);
    }
  }

  /// Transitively invalidates every node whose forwarding chain passes
  /// through a changed arc or a crashed node, clearing their routes, and
  /// returns the sorted invalidated set. Running this *before* any
  /// recomputation is what rules out count-to-infinity ghosts: no surviving
  /// weight references a dead or relabeled witness, so every surviving
  /// weight is still achievable in the new topology.
  std::vector<int> invalidate(const DynNet::Applied& ap) {
    const int n = dnet_.num_nodes();
    const Digraph& g = dnet_.graph();
    std::vector<char> invalid(static_cast<std::size_t>(n), 0);
    std::vector<int> stack;
    auto kill = [&](int v) {
      if (!invalid[static_cast<std::size_t>(v)]) {
        invalid[static_cast<std::size_t>(v)] = 1;
        stack.push_back(v);
      }
    };
    for (int v : ap.nodes_down) kill(v);
    // A changed arc that is someone's witness either died or was relabeled
    // (an arc that *came up* cannot have been a witness), so the route's
    // stored value is no longer trustworthy either way.
    for (int id : ap.changed_arcs) {
      const int u = g.arc(id).src;
      if (r_.next_arc[static_cast<std::size_t>(u)] == id) kill(u);
    }
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (int id : g.in_arcs(v)) {
        const int u = g.arc(id).src;
        if (r_.next_arc[static_cast<std::size_t>(u)] == id) kill(u);
      }
    }
    std::vector<int> out;
    for (int v = 0; v < n; ++v) {
      if (invalid[static_cast<std::size_t>(v)]) {
        obs::jrecord(Subsystem::Dyn, EventKind::WitnessInvalidate, jstream_,
                     v, r_.next_arc[static_cast<std::size_t>(v)], 0,
                     dnet_.version());
        clear_route(v);
        out.push_back(v);
      }
    }
    return out;
  }

  /// Warm-start frontier: the invalidated set, the tails of changed arcs
  /// (their candidate sets changed even if their witness survived), and
  /// restarted nodes. Crashed nodes are excluded — their routes stay clear.
  std::vector<int> seed_nodes(const DynNet::Applied& ap,
                              const std::vector<int>& invalid) {
    std::vector<int> seeds = invalid;
    const Digraph& g = dnet_.graph();
    for (int id : ap.changed_arcs) seeds.push_back(g.arc(id).src);
    for (int v : ap.nodes_up) seeds.push_back(v);
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
    seeds.erase(std::remove_if(seeds.begin(), seeds.end(),
                               [&](int v) { return !node_ok(v); }),
                seeds.end());
    return seeds;
  }

  /// Journals the applied delta batch: one record per op, all carrying the
  /// post-apply topology version, so provenance can map a route change back
  /// to the exact ops of the batch that caused it.
  void journal_delta(const TopologyDelta& delta, const DynNet::Applied& ap) {
    if (!obs::journal_enabled()) return;
    obs::jrecord(Subsystem::Dyn, EventKind::UpdateBegin, jstream_, -1, -1,
                 static_cast<std::int64_t>(delta.ops.size()), dnet_.version());
    for (int id : ap.changed_arcs) {
      const bool relabeled = std::binary_search(ap.relabeled_arcs.begin(),
                                                ap.relabeled_arcs.end(), id);
      obs::jrecord(Subsystem::Dyn,
                   relabeled ? EventKind::DeltaRelabel : EventKind::DeltaArc,
                   jstream_, dnet_.graph().arc(id).src, id,
                   dnet_.arc_alive(id) ? 1 : 0, dnet_.version());
    }
    for (int v : ap.nodes_down) {
      obs::jrecord(Subsystem::Dyn, EventKind::DeltaNodeDown, jstream_, v, -1,
                   0, dnet_.version());
    }
    for (int v : ap.nodes_up) {
      obs::jrecord(Subsystem::Dyn, EventKind::DeltaNodeUp, jstream_, v, -1, 0,
                   dnet_.version());
    }
  }

  /// Journals the routing diff against the previously published solution:
  /// one WitnessAttach per node whose (weight, witness arc) changed, one
  /// WitnessClear per node that lost its route. Diffing is the point —
  /// rebuild_witnesses() re-attaches every routed node on every update, but
  /// provenance wants "the delta after which this route last changed", so
  /// unaffected nodes must keep their older attach records. With the journal
  /// off the baseline goes stale; it is dropped so a later enable re-attaches
  /// everything instead of emitting a bogus partial diff.
  void journal_routing_diff() {
    if (!obs::journal_enabled()) {
      jprev_valid_ = false;
      return;
    }
    const int n = dnet_.num_nodes();
    const bool based =
        jprev_valid_ && jprev_weight_.size() == r_.weight.size();
    for (int v = 0; v < n; ++v) {
      const auto& w = r_.weight[static_cast<std::size_t>(v)];
      const int arc = r_.next_arc[static_cast<std::size_t>(v)];
      bool changed;
      if (!based) {
        changed = w.has_value();
      } else {
        const auto& pw = jprev_weight_[static_cast<std::size_t>(v)];
        changed = (w.has_value() != pw.has_value()) || (w && !(*w == *pw)) ||
                  arc != jprev_arc_[static_cast<std::size_t>(v)];
      }
      if (!changed) continue;
      if (w) {
        obs::jrecord(Subsystem::Dyn, EventKind::WitnessAttach, jstream_, v,
                     arc, 0, dnet_.version());
      } else {
        obs::jrecord(Subsystem::Dyn, EventKind::WitnessClear, jstream_, v, -1,
                     0, dnet_.version());
      }
    }
    jprev_weight_ = r_.weight;
    jprev_arc_ = r_.next_arc;
    jprev_valid_ = true;
  }

  void begin_stats(bool cold, std::size_t changed_arcs) {
    stats_ = UpdateStats{};
    stats_.cold = cold;
    stats_.total = dnet_.num_nodes();
    stats_.changed_arcs = static_cast<int>(changed_arcs);
  }

  /// `is_update` splits solve() and update() accounting: a cold bind is not
  /// a failed warm update, so dyn.updates / dyn.updates_cold / the
  /// affected-percentage histogram count update() calls only (solve() calls
  /// land in dyn.solves — they are definitionally 100%-affected and were
  /// previously polluting the warm-path ratios).
  void finish_stats(bool is_update) const {
    if (!obs::enabled()) return;
    obs::Registry& reg = obs::registry();
    if (is_update) {
      reg.counter("dyn.updates").add(1);
      if (stats_.cold) reg.counter("dyn.updates_cold").add(1);
      reg.histogram("dyn.affected_pct")
          .record(static_cast<std::uint64_t>(stats_.affected_fraction() *
                                             100));
    } else {
      reg.counter("dyn.solves").add(1);
    }
    reg.counter("dyn.affected_nodes")
        .add(static_cast<std::uint64_t>(stats_.affected));
    reg.counter("dyn.changed_arcs")
        .add(static_cast<std::uint64_t>(stats_.changed_arcs));
    reg.counter("dyn.relaxations").add(stats_.relaxations);
  }

  OrderTransform alg_;
  const compile::WeightEngine* weng_ = nullptr;
  DynNet dnet_;
  int dest_ = -1;
  Value origin_;
  bool bound_ = false;
  bool converged_ = false;
  Routing r_;
  compile::CompiledNet cnet_;
  UpdateStats stats_;
  // Flight-recorder state: this binding's journal stream, and the routing
  // shadow journal_routing_diff() diffs against.
  std::uint32_t jstream_ = 0;
  std::vector<std::optional<Value>> jprev_weight_;
  std::vector<int> jprev_arc_;
  bool jprev_valid_ = false;
};

/// Generalized Dijkstra as a dynamic engine. Cold solves run the masked
/// selection loop (flat kernels when the network compiled); updates run a
/// delta-Dijkstra over the affected set only: unaffected nodes stay frozen
/// as settled seeds, and a frozen node rejoins the affected set exactly when
/// a relaxation strictly improves it (Ramalingam–Reps style). A safety cap
/// on settle operations falls back to the cold path for algebras outside
/// the ND + M license.
class DijkstraEngine final : public EngineBase {
 public:
  using EngineBase::EngineBase;

  std::unique_ptr<Solver> clone() const override {
    return std::make_unique<DijkstraEngine>(*this);
  }

 private:
  void cold_solve() override {
    const int n = dnet_.num_nodes();
    r_.weight.assign(static_cast<std::size_t>(n), std::nullopt);
    r_.next_arc.assign(static_cast<std::size_t>(n), -1);
    converged_ = true;
    if (!node_ok(dest_)) return;
    if (!cold_flat()) cold_boxed();
    rebuild_witnesses();
  }

  void cold_boxed() {
    const int n = dnet_.num_nodes();
    const Digraph& g = dnet_.graph();
    const PreorderSet& ord = *alg_.ord;
    r_.weight[static_cast<std::size_t>(dest_)] = origin_;
    std::vector<char> settled(static_cast<std::size_t>(n), 0);
    for (;;) {
      int best = -1;
      for (int v = 0; v < n; ++v) {
        if (settled[static_cast<std::size_t>(v)] ||
            !r_.weight[static_cast<std::size_t>(v)]) {
          continue;
        }
        if (best < 0 ||
            lt_of(ord.cmp(*r_.weight[static_cast<std::size_t>(v)],
                          *r_.weight[static_cast<std::size_t>(best)]))) {
          best = v;
        }
      }
      if (best < 0) break;
      settled[static_cast<std::size_t>(best)] = 1;
      const Value& wb = *r_.weight[static_cast<std::size_t>(best)];
      for (int id : g.in_arcs(best)) {
        if (!dnet_.arc_alive(id)) continue;
        const int u = g.arc(id).src;
        if (u == best || settled[static_cast<std::size_t>(u)]) continue;
        ++stats_.relaxations;
        Value cand = alg_.fns->apply(dnet_.label(id), wb);
        auto& wu = r_.weight[static_cast<std::size_t>(u)];
        if (!wu || lt_of(ord.cmp(cand, *wu))) {
          wu = std::move(cand);
          r_.next_arc[static_cast<std::size_t>(u)] = id;
        }
      }
    }
  }

  /// Masked selection loop on flat weight words; the boxed canonicalization
  /// pass afterwards normalizes witnesses exactly as on the boxed path.
  bool cold_flat() {
    if (!cnet_.ok()) return false;
    const compile::CompiledAlgebra& ca = cnet_.algebra();
    const std::size_t stride = static_cast<std::size_t>(cnet_.words());
    std::vector<std::uint64_t> origin_w(stride, 0);
    if (!ca.encode(origin_, origin_w.data())) return false;

    const int n = dnet_.num_nodes();
    const Digraph& g = dnet_.graph();
    std::vector<std::uint64_t> w(static_cast<std::size_t>(n) * stride, 0);
    std::vector<std::uint8_t> present(static_cast<std::size_t>(n), 0);
    std::vector<char> settled(static_cast<std::size_t>(n), 0);
    auto wp = [&](int v) {
      return w.data() + static_cast<std::size_t>(v) * stride;
    };
    for (std::size_t k = 0; k < stride; ++k) wp(dest_)[k] = origin_w[k];
    present[static_cast<std::size_t>(dest_)] = 1;

    std::vector<std::uint64_t> cand(stride);
    for (;;) {
      int best = -1;
      for (int v = 0; v < n; ++v) {
        if (settled[static_cast<std::size_t>(v)] ||
            !present[static_cast<std::size_t>(v)]) {
          continue;
        }
        if (best < 0 || lt_of(ca.compare(wp(v), wp(best)))) best = v;
      }
      if (best < 0) break;
      settled[static_cast<std::size_t>(best)] = 1;
      for (int id : g.in_arcs(best)) {
        if (!dnet_.arc_alive(id)) continue;
        const int u = g.arc(id).src;
        if (u == best || settled[static_cast<std::size_t>(u)]) continue;
        ++stats_.relaxations;
        for (std::size_t k = 0; k < stride; ++k) cand[k] = wp(best)[k];
        ca.apply(cnet_.label(id), cand.data());
        if (!present[static_cast<std::size_t>(u)] ||
            lt_of(ca.compare(cand.data(), wp(u)))) {
          for (std::size_t k = 0; k < stride; ++k) wp(u)[k] = cand[k];
          present[static_cast<std::size_t>(u)] = 1;
          r_.next_arc[static_cast<std::size_t>(u)] = id;
        }
      }
    }
    for (int v = 0; v < n; ++v) {
      if (present[static_cast<std::size_t>(v)]) {
        r_.weight[static_cast<std::size_t>(v)] = ca.decode(wp(v));
      }
    }
    return true;
  }

  void warm_update(const DynNet::Applied& ap) override {
    const std::vector<int> invalid = invalidate(ap);
    std::vector<int> affected = seed_nodes(ap, invalid);
    const int n = dnet_.num_nodes();
    const Digraph& g = dnet_.graph();
    const PreorderSet& ord = *alg_.ord;

    std::vector<char> in_a(static_cast<std::size_t>(n), 0);
    std::vector<char> settled(static_cast<std::size_t>(n), 1);
    for (int u : affected) {
      in_a[static_cast<std::size_t>(u)] = 1;
      settled[static_cast<std::size_t>(u)] = 0;
    }
    // Initial candidates from the frozen region only; routes via other
    // affected nodes arrive as those settle.
    for (int u : affected) {
      if (u == dest_) {
        r_.weight[static_cast<std::size_t>(u)] = origin_;
        r_.next_arc[static_cast<std::size_t>(u)] = -1;
        continue;
      }
      Candidate best;
      for (int id : g.out_arcs(u)) {
        if (!dnet_.arc_alive(id)) continue;
        const int v = g.arc(id).dst;
        if (v == u || in_a[static_cast<std::size_t>(v)]) continue;
        const auto& wv = r_.weight[static_cast<std::size_t>(v)];
        if (!wv) continue;
        ++stats_.relaxations;
        Value cand = alg_.fns->apply(dnet_.label(id), *wv);
        if (!best.weight || lt_of(ord.cmp(cand, *best.weight))) {
          best.weight = std::move(cand);
          best.arc = id;
        }
      }
      r_.weight[static_cast<std::size_t>(u)] = std::move(best.weight);
      r_.next_arc[static_cast<std::size_t>(u)] = best.arc;
    }

    // Worst case re-settles every node a few times; beyond that something
    // is outside the license (non-ND improvement cycles) and the masked
    // full solve is both safer and faster.
    const std::uint64_t settle_cap = 4ull * static_cast<std::uint64_t>(n) + 16;
    std::uint64_t settles = 0;
    for (;;) {
      int best = -1;
      for (int v : affected) {
        if (settled[static_cast<std::size_t>(v)] ||
            !r_.weight[static_cast<std::size_t>(v)]) {
          continue;
        }
        if (best < 0 ||
            lt_of(ord.cmp(*r_.weight[static_cast<std::size_t>(v)],
                          *r_.weight[static_cast<std::size_t>(best)]))) {
          best = v;
        }
      }
      if (best < 0) break;
      if (++settles > settle_cap) {
        converged_ = false;
        return;
      }
      settled[static_cast<std::size_t>(best)] = 1;
      obs::jrecord(Subsystem::Dyn, EventKind::RelaxSettle, jstream_, best,
                   r_.next_arc[static_cast<std::size_t>(best)],
                   static_cast<std::int64_t>(settles), dnet_.version());
      const Value wb = *r_.weight[static_cast<std::size_t>(best)];
      for (int id : g.in_arcs(best)) {
        if (!dnet_.arc_alive(id)) continue;
        const int u = g.arc(id).src;
        if (u == best || u == dest_) continue;
        ++stats_.relaxations;
        Value cand = alg_.fns->apply(dnet_.label(id), wb);
        auto& wu = r_.weight[static_cast<std::size_t>(u)];
        if (!wu || lt_of(ord.cmp(cand, *wu))) {
          wu = std::move(cand);
          r_.next_arc[static_cast<std::size_t>(u)] = id;
          // A strict improvement into the frozen region unsettles the node:
          // it joins the affected set and re-relaxes its own in-arcs.
          settled[static_cast<std::size_t>(u)] = 0;
          if (!in_a[static_cast<std::size_t>(u)]) {
            in_a[static_cast<std::size_t>(u)] = 1;
            affected.push_back(u);
          }
        }
      }
    }
    converged_ = true;
    rebuild_witnesses();
    stats_.affected = static_cast<int>(affected.size());
  }
};

/// Synchronous Bellman–Ford as a dynamic engine: a worklist of active nodes
/// recomputes each one's best extension from scratch and activates the
/// tails of its in-arcs on change. The cold path seeds {dest}; the warm
/// path seeds the invalidated frontier plus touched arc tails. Caps at the
/// same round budget as the one-shot bellman_sync.
class BellmanEngine final : public EngineBase {
 public:
  using EngineBase::EngineBase;

  std::unique_ptr<Solver> clone() const override {
    return std::make_unique<BellmanEngine>(*this);
  }

 private:
  static constexpr int kMaxRounds = 1000;  // matches BellmanOptions

  void cold_solve() override {
    const int n = dnet_.num_nodes();
    r_.weight.assign(static_cast<std::size_t>(n), std::nullopt);
    r_.next_arc.assign(static_cast<std::size_t>(n), -1);
    converged_ = true;
    if (!node_ok(dest_)) return;
    converged_ = relax_worklist({dest_}, nullptr);
    if (converged_) rebuild_witnesses();
  }

  void warm_update(const DynNet::Applied& ap) override {
    const std::vector<int> invalid = invalidate(ap);
    const std::vector<int> seeds = seed_nodes(ap, invalid);
    std::vector<int> touched;
    converged_ = relax_worklist(seeds, &touched);
    if (!converged_) return;
    rebuild_witnesses();
    stats_.affected = static_cast<int>(touched.size());
  }

  /// Gauss–Seidel rounds over the active set, ascending node order within a
  /// round. Returns false on hitting the round cap (divergent algebra).
  bool relax_worklist(const std::vector<int>& seeds,
                      std::vector<int>* touched_out) {
    const int n = dnet_.num_nodes();
    const Digraph& g = dnet_.graph();
    std::vector<char> queued(static_cast<std::size_t>(n), 0);
    std::vector<char> touched(static_cast<std::size_t>(n), 0);
    std::vector<int> frontier;
    for (int u : seeds) {
      if (node_ok(u) && !queued[static_cast<std::size_t>(u)]) {
        queued[static_cast<std::size_t>(u)] = 1;
        frontier.push_back(u);
      }
    }
    int rounds = 0;
    while (!frontier.empty()) {
      if (++rounds > kMaxRounds) return false;
      obs::jrecord(Subsystem::Dyn, EventKind::RelaxWave, jstream_, -1, -1,
                   static_cast<std::int64_t>(frontier.size()),
                   dnet_.version());
      std::sort(frontier.begin(), frontier.end());
      for (int u : frontier) queued[static_cast<std::size_t>(u)] = 0;
      std::vector<int> next;
      auto activate = [&](int x) {
        if (node_ok(x) && !queued[static_cast<std::size_t>(x)]) {
          queued[static_cast<std::size_t>(x)] = 1;
          next.push_back(x);
        }
      };
      for (int u : frontier) {
        touched[static_cast<std::size_t>(u)] = 1;
        bool changed = false;
        auto& wu = r_.weight[static_cast<std::size_t>(u)];
        if (u == dest_) {
          changed = !wu || !(*wu == origin_);
          if (changed) {
            wu = origin_;
            r_.next_arc[static_cast<std::size_t>(u)] = -1;
          }
        } else {
          Candidate c = best_candidate(u);
          changed = (c.weight.has_value() != wu.has_value()) ||
                    (c.weight && !(*c.weight == *wu));
          if (changed) {
            wu = std::move(c.weight);
            r_.next_arc[static_cast<std::size_t>(u)] = c.arc;
          }
        }
        if (changed) {
          for (int id : g.in_arcs(u)) activate(g.arc(id).src);
        }
      }
      frontier = std::move(next);
    }
    if (touched_out != nullptr) {
      for (int v = 0; v < n; ++v) {
        if (touched[static_cast<std::size_t>(v)]) touched_out->push_back(v);
      }
    }
    return true;
  }
};

}  // namespace

namespace dyn {

std::unique_ptr<Solver> make_solver(EngineKind kind, const OrderTransform& alg,
                                    const compile::WeightEngine* engine) {
  switch (kind) {
    case EngineKind::Bellman:
      return std::make_unique<BellmanEngine>(alg, engine);
    case EngineKind::Dijkstra:
      break;
  }
  return std::make_unique<DijkstraEngine>(alg, engine);
}

}  // namespace dyn
}  // namespace mrt
