// Topology deltas: the change vocabulary of the dynamic routing layer.
//
// A TopologyDelta is a finite batch of edits to a configured network — arc
// admin down/up, arc relabel, node crash/restart — and DynNet is the mutable
// topology state those edits apply to: a LabeledGraph plus arc-alive /
// node-up masks and a monotonically increasing version counter. The masks
// use the same semantics as the chaos layer's SurvivingTopology: an arc is
// *alive* iff it is admin-up and both endpoints are up, so a delta built
// from a simulator run reproduces exactly the surviving subgraph the chaos
// oracles validate against.
#pragma once

#include <cstdint>
#include <vector>

#include "mrt/routing/labeled_graph.hpp"

namespace mrt::dyn {

/// One topology edit, bound to a concrete arc or node.
struct DeltaOp {
  enum class Kind : unsigned char {
    ArcDown,   ///< admin-disable arc `arc`
    ArcUp,     ///< admin-enable arc `arc`
    Relabel,   ///< replace arc `arc`'s label with `label`
    NodeDown,  ///< crash node `node` (all incident arcs die with it)
    NodeUp,    ///< restart node `node`
  };
  Kind kind = Kind::ArcDown;
  int arc = -1;   ///< target arc (ArcDown / ArcUp / Relabel)
  int node = -1;  ///< target node (NodeDown / NodeUp)
  Value label;    ///< Relabel only

  std::string describe() const;
};

/// A batch of topology edits, applied atomically by DynNet::apply (one
/// version bump per batch, not per op).
struct TopologyDelta {
  std::vector<DeltaOp> ops;

  bool empty() const { return ops.empty(); }

  // Builder helpers (chainable through repeated calls).
  TopologyDelta& arc_down(int arc);
  TopologyDelta& arc_up(int arc);
  TopologyDelta& relabel(int arc, Value label);
  TopologyDelta& node_down(int node);
  TopologyDelta& node_up(int node);

  /// The delta that takes an all-up topology to the given admin state:
  /// ArcDown for every false arc, NodeDown for every false node. Empty masks
  /// mean "all up". This is how a simulator run's fault outcome is fed back
  /// into the solver seam.
  static TopologyDelta to_state(const std::vector<bool>& arc_admin_up,
                                const std::vector<bool>& node_up);

  std::string describe() const;
};

/// Mutable topology state: the bound network of a Solver. Wraps a
/// LabeledGraph with admin/crash masks and a version counter; label edits go
/// through here so consumers can cheaply detect staleness via version().
class DynNet {
 public:
  DynNet() : net_(Digraph(0), {}) {}
  explicit DynNet(LabeledGraph net);

  const LabeledGraph& net() const { return net_; }
  const Digraph& graph() const { return net_.graph(); }
  int num_nodes() const { return net_.num_nodes(); }
  const Value& label(int arc_id) const { return net_.label(arc_id); }

  bool arc_admin_up(int arc) const {
    return arc_up_[static_cast<std::size_t>(arc)];
  }
  bool node_up(int node) const {
    return node_up_[static_cast<std::size_t>(node)];
  }
  /// Usable for routing: admin-up and both endpoints up.
  bool arc_alive(int arc) const {
    if (!arc_up_[static_cast<std::size_t>(arc)]) return false;
    const Arc& a = net_.graph().arc(arc);
    return node_up_[static_cast<std::size_t>(a.src)] &&
           node_up_[static_cast<std::size_t>(a.dst)];
  }

  /// Bumped once per applied delta batch.
  std::uint64_t version() const { return version_; }

  /// What a delta batch actually changed (idempotent ops — downing a down
  /// arc — produce nothing). The incremental solvers seed their affected
  /// sets from this.
  struct Applied {
    /// Alive-status changed, or label changed while alive. A relabel of a
    /// dead arc is *not* a change for routing purposes (nothing can route
    /// through it), so it appears only in relabeled_arcs; the arc re-enters
    /// changed_arcs when it next comes alive.
    std::vector<int> changed_arcs;
    /// Every arc whose label changed, alive or not — consumers that cache
    /// compiled label programs re-encode from this list unconditionally so
    /// the label is already right when a dead arc revives.
    std::vector<int> relabeled_arcs;
    std::vector<int> nodes_down;      ///< transitioned up → down
    std::vector<int> nodes_up;        ///< transitioned down → up
    bool any() const {
      return !changed_arcs.empty() || !nodes_down.empty() ||
             !nodes_up.empty();
    }
  };

  /// Applies a batch of edits; every list in the result is sorted + deduped.
  Applied apply(const TopologyDelta& delta);

 private:
  LabeledGraph net_;
  std::vector<bool> arc_up_;   // admin state, per arc id
  std::vector<bool> node_up_;  // crash state, per node
  std::uint64_t version_ = 0;
};

}  // namespace mrt::dyn
