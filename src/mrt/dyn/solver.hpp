// The unified solver seam: one interface over the routing algorithms, with
// delta-aware incremental recomputation.
//
// A Solver binds (net, dest, origin) on solve() — a cold, from-scratch run —
// and thereafter accepts TopologyDelta batches through update(), recomputing
// only the affected region: routes whose witness arc died are invalidated
// transitively along the forwarding tree, and the solver re-relaxes outward
// from the invalidated frontier and the touched arc tails, warm-started from
// the previous fixed point. The license is the Daggitt–Griffin dynamic-DBF
// result (arXiv:2106.01184): under the same algebraic preconditions the
// checker derives for correctness of the batch solvers (ND + M, strictly
// increasing for general convergence), the fixed point is unique and reached
// from *any* starting state — so seeding from the pre-delta solution instead
// of ⊤ changes the work, never the answer. See docs/DYN.md for the argument
// and for what is guaranteed when the license does not hold.
//
// Both engines produce *canonical* routings: after convergence, each routed
// node's witness arc is the smallest alive arc id achieving its best
// extension. Cold and warm runs therefore agree byte-for-byte whenever the
// fixed point is unique (always, for the antisymmetric algebras the
// differential suites sweep), rather than merely ≲-equivalently.
//
// The MRT_DYN env toggle (default on; "0" disables, dyn::set_enabled for
// in-process A/B) forces every update() to a cold full solve — identical
// results, pre-dyn work profile.
#pragma once

#include <memory>

#include "mrt/compile/engine.hpp"
#include "mrt/dyn/delta.hpp"

namespace mrt {

namespace stream {
class DeltaStream;
}  // namespace stream

namespace dyn {

/// Work accounting of the last update() (or solve(); solve is always cold).
struct UpdateStats {
  bool cold = false;  ///< full re-solve (toggle off, unconverged, or solve())
  int affected = 0;   ///< nodes re-relaxed by the incremental pass
  int total = 0;      ///< nodes in the bound network
  int changed_arcs = 0;
  std::uint64_t relaxations = 0;

  double affected_fraction() const {
    return total > 0 ? static_cast<double>(affected) / total : 0.0;
  }
};

/// True unless MRT_DYN=0 (read once) or set_enabled(false); when false,
/// update() applies the delta and re-solves cold — the pre-dyn behaviour.
bool enabled();
/// In-process override for A/B benches and tests (wins over the env).
void set_enabled(bool on);

}  // namespace dyn

/// The solver seam. Implementations are the routing algorithms themselves —
/// generalized Dijkstra and synchronous Bellman–Ford — refactored from
/// one-shot entry points into engines that hold the solution state between
/// topology changes.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Cold full solve; binds (net, dest, origin) as the dynamic baseline.
  /// May be called again to rebind.
  virtual const Routing& solve(const LabeledGraph& net, int dest,
                               const Value& origin) = 0;

  /// Applies `delta` to the bound topology and recomputes incrementally
  /// (cold when dyn::enabled() is false or the previous state did not
  /// converge). Requires a prior solve().
  virtual const Routing& update(const dyn::TopologyDelta& delta) = 0;

  /// Drains `s`, applying every delta batch through update() in order —
  /// update() is the single-record case of this loop. Returns the final
  /// routing. Requires a prior solve(). Defined in mrt/stream/consume.cpp
  /// (link mrt_stream); a stream that terminates on a decode failure leaves
  /// the solver at the last successfully applied delta (check s.error()).
  const Routing& consume(stream::DeltaStream& s);

  /// The current solution (valid after solve()).
  virtual const Routing& routing() const = 0;

  /// The bound topology state (masks + version).
  virtual const dyn::DynNet& net() const = 0;

  /// The bound destination (valid after solve()).
  virtual int dest() const = 0;

  /// The journal stream this solver's flight-recorder records carry (a
  /// fresh id per solve() binding; 0 before the first solve). Provenance
  /// queries (obs/provenance.hpp) filter the process-global journal by it.
  virtual std::uint32_t journal_stream() const = 0;

  /// False if the last solve/update hit its iteration cap (possible for
  /// non-increasing algebras on the Bellman engine).
  virtual bool converged() const = 0;

  /// Work accounting of the last solve()/update().
  virtual const dyn::UpdateStats& last_update() const = 0;

  /// Deep copy, including the bound topology and solution — the cheap way
  /// to fan one baseline out across many independent delta scenarios (the
  /// chaos campaigns clone one unfaulted baseline per run).
  virtual std::unique_ptr<Solver> clone() const = 0;
};

namespace dyn {

enum class EngineKind {
  Dijkstra,  ///< greedy selection; exact for ND + M algebras
  Bellman,   ///< synchronous relaxation to the Bellman fixed point
};

/// Creates an engine. `engine` (optional, non-owning, must outlive the
/// solver and its clones) routes cold solves through the compiled flat
/// kernels; relabel deltas re-encode only the changed arcs' label programs.
std::unique_ptr<Solver> make_solver(EngineKind kind, const OrderTransform& alg,
                                    const compile::WeightEngine* engine =
                                        nullptr);

}  // namespace dyn
}  // namespace mrt
