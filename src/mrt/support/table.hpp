// ASCII table printer used by the benchmark harnesses to reproduce the
// paper's figures/tables in the terminal.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mrt {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with aligned columns and a header rule.
  std::string render() const;

  /// Convenience: render straight to a stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mrt
