// Small string utilities shared by the metalanguage and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mrt {

/// Joins the elements with `sep` ("a, b, c").
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Left/right-pads with spaces to at least `width` columns.
std::string pad_right(std::string s, std::size_t width);
std::string pad_left(std::string s, std::size_t width);

/// Fixed-precision double formatting ("0.125"), trailing zeros trimmed.
std::string format_double(double x, int precision = 4);

}  // namespace mrt
