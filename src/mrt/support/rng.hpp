// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// All randomized components of the library (random finite algebras, graph
// generators, asynchronous protocol schedules) take an explicit Rng so that
// every experiment is reproducible from a seed; there is no global RNG state.
#pragma once

#include <cstdint>
#include <vector>

#include "mrt/support/require.hpp"

namespace mrt {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double unit();

  /// Bernoulli trial.
  bool chance(double p);

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& xs) {
    MRT_REQUIRE(!xs.empty());
    return xs[static_cast<std::size_t>(below(xs.size()))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& xs) {
    for (std::size_t i = xs.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(xs[i - 1], xs[j]);
    }
  }

  /// Derives an independent child generator (for parallel experiment arms).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace mrt
