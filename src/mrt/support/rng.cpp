#include "mrt/support/rng.hpp"

namespace mrt {
namespace {

// splitmix64, used to expand the seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  // Guard against the all-zero state, which xoshiro cannot leave.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  MRT_REQUIRE(bound > 0);
  // Debiased modulo (Lemire-style rejection would be overkill here; the
  // classic rejection loop keeps the distribution exactly uniform).
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit && limit != 0);
  return x % bound;
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  MRT_REQUIRE(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit span
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::unit() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  return unit() < p;
}

Rng Rng::split() {
  return Rng(next() ^ 0xa0761d6478bd642fULL);
}

}  // namespace mrt
