// A small C++20 stand-in for std::expected<T, Error>, used on user-input
// paths (the metalanguage front end) where failure is a normal outcome and
// exceptions would be the wrong tool.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "mrt/support/require.hpp"

namespace mrt {

/// A user-facing error: message plus optional source position.
struct Error {
  std::string message;
  int line = 0;    ///< 1-based; 0 when not applicable
  int column = 0;  ///< 1-based; 0 when not applicable

  std::string to_string() const {
    if (line == 0) return message;
    return std::to_string(line) + ":" + std::to_string(column) + ": " + message;
  }
};

template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : rep_(std::in_place_index<0>, std::move(value)) {}
  Expected(Error error) : rep_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const { return rep_.index() == 0; }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    MRT_REQUIRE(ok());
    return std::get<0>(rep_);
  }
  T& value() & {
    MRT_REQUIRE(ok());
    return std::get<0>(rep_);
  }
  T&& value() && {
    MRT_REQUIRE(ok());
    return std::get<0>(std::move(rep_));
  }

  const Error& error() const {
    MRT_REQUIRE(!ok());
    return std::get<1>(rep_);
  }

  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Error> rep_;
};

}  // namespace mrt
