#include "mrt/support/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "mrt/support/require.hpp"
#include "mrt/support/strings.hpp"

namespace mrt {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MRT_REQUIRE(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  MRT_REQUIRE(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << pad_right(row[c], widths[c]);
    }
    out << " |\n";
  };

  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.render();
}

}  // namespace mrt
