#include "mrt/support/strings.hpp"

#include <cctype>
#include <cstdio>

namespace mrt {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string pad_right(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

std::string pad_left(std::string s, std::size_t width) {
  if (s.size() < width) s.insert(s.begin(), width - s.size(), ' ');
  return s;
}

std::string format_double(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, x);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace mrt
