// Contract-checking macros, in the spirit of the C++ Core Guidelines'
// Expects()/Ensures(). Violations are programmer errors, so they throw
// std::logic_error with the failing condition and source location.
#pragma once

#include <stdexcept>
#include <string>

namespace mrt {

[[noreturn]] inline void contract_violation(const char* kind, const char* cond,
                                            const char* file, int line) {
  throw std::logic_error(std::string(kind) + " failed: " + cond + " at " +
                         file + ":" + std::to_string(line));
}

}  // namespace mrt

// Precondition on the caller.
#define MRT_REQUIRE(cond)                                               \
  do {                                                                  \
    if (!(cond)) ::mrt::contract_violation("precondition", #cond, __FILE__, __LINE__); \
  } while (0)

// Internal invariant.
#define MRT_ASSERT(cond)                                                \
  do {                                                                  \
    if (!(cond)) ::mrt::contract_violation("invariant", #cond, __FILE__, __LINE__); \
  } while (0)

// Marks unreachable control flow.
#define MRT_UNREACHABLE(msg) \
  ::mrt::contract_violation("unreachable", msg, __FILE__, __LINE__)
