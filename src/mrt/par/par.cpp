#include "mrt/par/par.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

namespace mrt::par {
namespace {

// Pool workers run with this set so that nested primitives degrade to inline
// execution instead of blocking on their own pool.
thread_local bool t_in_worker = false;

// 0 = not yet initialized (resolved from MRT_THREADS / hardware on first use).
std::atomic<int> g_limit{0};

int read_env_threads() {
  const char* env = std::getenv("MRT_THREADS");
  if (!env) return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1) return 0;
  return v > 1024 ? 1024 : static_cast<int>(v);
}

// One parallel_for/reduce invocation: a bag of chunks claimed in ascending
// order by however many threads show up. Shared ownership because a worker
// may still hold a reference for a moment after the submitter saw completion.
struct Batch {
  std::size_t total = 0;
  std::function<void(std::size_t)> chunk;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};

  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t completed = 0;           // chunks claimed and finished/skipped
  std::size_t error_chunk = SIZE_MAX;  // lowest chunk that threw
  std::exception_ptr error;

  // Claims and runs chunks until none remain. After an error, remaining
  // chunks are claimed but skipped so the batch drains quickly.
  void work() {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= total) return;
      if (!cancelled.load(std::memory_order_relaxed)) {
        try {
          chunk(c);
        } catch (...) {
          std::lock_guard<std::mutex> lk(mu);
          if (c < error_chunk) {
            error_chunk = c;
            error = std::current_exception();
          }
          cancelled.store(true, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lk(mu);
      if (++completed == total) done_cv.notify_all();
    }
  }

  bool exhausted() const {
    return next.load(std::memory_order_relaxed) >= total;
  }
};

class Pool {
 public:
  static Pool& instance() {
    static Pool p;
    return p;
  }

  void run(const std::shared_ptr<Batch>& b) {
    const int want =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(thread_limit()), b->total)) -
        1;
    ensure_workers(want);
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.push_back(b);
    }
    cv_.notify_all();
    b->work();  // the submitting thread participates
    {
      std::unique_lock<std::mutex> lk(b->mu);
      b->done_cv.wait(lk, [&] { return b->completed == b->total; });
    }
    remove(b);
    if (b->error) std::rethrow_exception(b->error);
  }

 private:
  Pool() = default;
  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void ensure_workers(int n) {
    std::lock_guard<std::mutex> lk(mu_);
    while (static_cast<int>(workers_.size()) < n) {
      workers_.emplace_back([this] { worker_main(); });
    }
  }

  void remove(const std::shared_ptr<Batch>& b) {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (*it == b) {
        queue_.erase(it);
        return;
      }
    }
  }

  void worker_main() {
    t_in_worker = true;
    for (;;) {
      std::shared_ptr<Batch> b;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
        if (stop_) return;
        while (!queue_.empty() && queue_.front()->exhausted()) {
          queue_.pop_front();
        }
        if (queue_.empty()) continue;
        b = queue_.front();
      }
      b->work();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Batch>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int thread_limit() {
  int v = g_limit.load(std::memory_order_acquire);
  if (v == 0) {
    const int env = read_env_threads();
    v = env > 0 ? env : hardware_threads();
    int expected = 0;
    if (!g_limit.compare_exchange_strong(expected, v,
                                         std::memory_order_acq_rel)) {
      v = expected;
    }
  }
  return v;
}

void set_thread_limit(int n) {
  g_limit.store(n < 1 ? 1 : n, std::memory_order_release);
}

namespace detail {

void run_chunks(std::size_t num_chunks,
                const std::function<void(std::size_t)>& chunk) {
  if (num_chunks == 0) return;
  if (t_in_worker || num_chunks == 1 || thread_limit() <= 1) {
    for (std::size_t c = 0; c < num_chunks; ++c) chunk(c);
    return;
  }
  auto b = std::make_shared<Batch>();
  b->total = num_chunks;
  b->chunk = chunk;
  Pool::instance().run(b);
}

}  // namespace detail

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = (n + g - 1) / g;
  detail::run_chunks(chunks, [&](std::size_t c) {
    body(c * g, std::min(n, (c + 1) * g));
  });
}

void parallel_steal(const std::vector<std::size_t>& order,
                    const std::function<void(std::size_t)>& item) {
  // One chunk per item: Batch::next is the shared claim counter, and chunk c
  // maps to the c-th entry of the caller's priority order.
  detail::run_chunks(order.size(),
                     [&](std::size_t c) { item(order[c]); });
}

std::size_t parallel_find_first(std::size_t n, std::size_t grain,
                                const std::function<bool(std::size_t)>& pred) {
  if (n == 0) return 0;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = (n + g - 1) / g;
  std::atomic<std::size_t> best{n};
  detail::run_chunks(chunks, [&](std::size_t c) {
    const std::size_t begin = c * g;
    const std::size_t end = std::min(n, (c + 1) * g);
    // Chunks are claimed in ascending order, so any index below the current
    // best is still scanned by the chunk that owns it: the minimum match is
    // always found, no matter how the scans interleave.
    for (std::size_t i = begin;
         i < end && i < best.load(std::memory_order_relaxed); ++i) {
      if (pred(i)) {
        std::size_t cur = best.load(std::memory_order_relaxed);
        while (i < cur && !best.compare_exchange_weak(
                              cur, i, std::memory_order_relaxed)) {
        }
        return;
      }
    }
  });
  return best.load(std::memory_order_relaxed);
}

}  // namespace mrt::par
