// Deterministic parallel execution: a lazily-started std::thread pool behind
// `parallel_for` / `parallel_reduce` / `parallel_find_first` primitives.
//
// Design contract (docs/PARALLELISM.md):
//  - *Determinism.* Every primitive produces results that are independent of
//    the worker count: `parallel_for` bodies own disjoint index ranges,
//    `parallel_reduce` merges per-chunk accumulators in ascending chunk
//    order, and `parallel_find_first` always reports the lowest matching
//    index. Callers supply thread-safe (typically pure) bodies; randomized
//    workloads derive per-iteration seeds with `mix_seed` instead of
//    sharing one generator.
//  - *Configuration.* The worker limit defaults to the hardware concurrency
//    and is overridden by the MRT_THREADS environment variable (a positive
//    integer); `set_thread_limit` adjusts it at runtime (used by the
//    equivalence tests to compare thread counts in-process). A limit of 1
//    runs every primitive inline with zero threading overhead.
//  - *Nesting.* A primitive invoked from inside a worker runs inline on
//    that worker — nested parallelism never deadlocks the pool.
//  - *Exceptions.* If a body throws, the lowest-indexed exception among the
//    chunks that ran is rethrown on the calling thread; remaining chunks
//    are abandoned cooperatively. The pool stays usable afterwards.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace mrt::par {

/// Hardware threads visible to the process (>= 1).
int hardware_threads();

/// Effective worker limit: MRT_THREADS if set to a positive integer, else
/// hardware_threads(). Always >= 1.
int thread_limit();

/// Overrides the worker limit at runtime (clamped to >= 1). Primarily for
/// tests and benches that compare thread counts within one process.
void set_thread_limit(int n);

/// SplitMix64-style mix of a base seed with an iteration index: the
/// per-iteration seed derivation that keeps randomized sweeps deterministic
/// and order-independent under parallel execution.
constexpr std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t i) noexcept {
  std::uint64_t z = seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace detail {
/// Runs chunk(c) for every c in [0, num_chunks). Chunks are claimed in
/// ascending order; the caller participates. Inline (sequential) when the
/// limit is 1, the chunk count is 1, or the caller is already a pool worker.
void run_chunks(std::size_t num_chunks,
                const std::function<void(std::size_t)>& chunk);
}  // namespace detail

/// Splits [0, n) into chunks of `grain` indices and runs body(begin, end)
/// over them concurrently. Bodies own disjoint ranges; writes to per-index
/// slots need no synchronization.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Deterministic work stealing: runs item(order[c]) for every c, with the
/// claim sequence following `order` — the caller's priority permutation
/// (typically heaviest item first, LPT). Threads dynamically steal the next
/// unclaimed slot from a shared counter, so one skewed item no longer pins a
/// static chunk assignment to a single thread; because claiming only decides
/// *who* runs an item (never *what* it computes) and callers merge results by
/// item index, output stays bit-identical at any thread count.
void parallel_steal(const std::vector<std::size_t>& order,
                    const std::function<void(std::size_t)>& item);

/// Lowest index in [0, n) for which pred returns true, or n if none.
/// Workers cooperatively stop scanning past the best match found so far, so
/// the result — always the *global* minimum — costs close to the sequential
/// prefix scan. pred must be thread-safe.
std::size_t parallel_find_first(std::size_t n, std::size_t grain,
                                const std::function<bool(std::size_t)>& pred);

/// Chunked reduction with a deterministic merge: body(begin, end, acc)
/// accumulates each chunk into a default-constructed Acc, and merge(into,
/// from) folds the per-chunk accumulators in ascending chunk order. Chunk
/// boundaries depend only on (n, grain), so the merge sequence — and hence
/// the result, even for non-commutative merges — is identical for every
/// thread count.
template <typename Acc, typename Body, typename Merge>
Acc parallel_reduce(std::size_t n, std::size_t grain, Acc init, Body&& body,
                    Merge&& merge) {
  if (n == 0) return init;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = (n + g - 1) / g;
  std::vector<Acc> accs(chunks);
  detail::run_chunks(chunks, [&](std::size_t c) {
    body(c * g, std::min(n, (c + 1) * g), accs[c]);
  });
  for (Acc& a : accs) merge(init, a);
  return init;
}

}  // namespace mrt::par
