// mrt::serve — a long-running routing daemon over a delta stream.
//
// The ROADMAP north-star is an operable system, not a batch solver: bind a
// routing table once, then keep it warm under a sustained feed of topology
// changes. serve::Daemon is that loop, assembled entirely from the seams
// underneath it: a rib::RibSolver holds the all-destination state, a
// stream::DeltaStream supplies the changes (wire-format file, in-memory
// replay log, or a simulator run via SimDeltaSource), and every applied
// delta is one ordinary warm RibSolver::update — the daemon adds no solver
// logic of its own, only lifecycle, route-change detection, and telemetry.
//
//   lifecycle   start(net, dests, origin)   cold bind, one full solve
//               apply(delta) / drain(stream)  warm updates, in stream order
//   events      RouteChange per (column, node) whose route content changed
//               (gained, lost, new weight, or new witness arc)
//   telemetry   serve.deltas_consumed / serve.route_changes counters,
//               serve.update_ns latency histogram (p99 is the bench gate)
//
// See docs/SERVE.md for the wire format, the bench methodology, and the
// byte-identity contract (stream-of-N ≡ one N-op batch ≡ cold solve).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mrt/rib/rib.hpp"
#include "mrt/stream/stream.hpp"

namespace mrt::serve {

/// One route transition observed after applying a delta: column `column`
/// (destination dests()[column]) at `node` changed its route content.
struct RouteChange {
  std::uint64_t update_index = 0;  ///< 0-based index of the delta that did it
  int column = 0;
  int dest = 0;
  int node = 0;
  bool had_route = false;  ///< before the delta
  bool has_route = false;  ///< after the delta
  int next_arc = -1;       ///< witness arc after (-1 when withdrawn)
};

struct ServeStats {
  std::uint64_t deltas_consumed = 0;
  std::uint64_t route_changes = 0;
  std::uint64_t withdrawals = 0;    ///< route_changes that lost the route
  std::uint64_t warm_updates = 0;   ///< updates on the incremental path
  std::uint64_t cold_updates = 0;   ///< updates that fell back to cold
  std::uint64_t decode_errors = 0;  ///< streams terminated by a bad frame
};

struct ServeOptions {
  rib::RibOptions rib;  ///< forwarded to the underlying RibSolver
  /// Diff columns and emit RouteChange events after each update. Off, the
  /// daemon skips the O(columns × |V|) shadow comparison per delta.
  bool emit_route_changes = true;
};

class Daemon {
 public:
  /// `engine` (optional, non-owning, must outlive the daemon) routes the
  /// table through the compiled flat kernels, exactly as for RibSolver.
  explicit Daemon(const OrderTransform& alg,
                  const compile::WeightEngine* engine = nullptr,
                  ServeOptions opts = ServeOptions{});

  /// Cold bind: one full solve of every destination column. May be called
  /// again to rebind (stats and shadow state reset).
  void start(const LabeledGraph& net, std::vector<int> dests,
             const Value& origin);

  using ChangeSink = std::function<void(const RouteChange&)>;

  /// Applies one delta batch warm and reports the route transitions it
  /// caused to `sink` (if set). Returns the number of route changes.
  std::size_t apply(const dyn::TopologyDelta& delta,
                    const ChangeSink& sink = {});

  /// Drains `s` to exhaustion, one apply() per batch. Returns the number of
  /// batches consumed; a decode failure stops the drain at the last good
  /// batch (stats().decode_errors is bumped, s.error() has the reason).
  std::size_t drain(stream::DeltaStream& s, const ChangeSink& sink = {});

  const rib::RibSolver& rib() const { return rib_; }
  const ServeStats& stats() const { return stats_; }
  bool started() const { return started_; }

 private:
  void snapshot_shadow();

  rib::RibSolver rib_;
  ServeOptions opts_;
  ServeStats stats_;
  bool started_ = false;
  std::uint64_t update_index_ = 0;
  // Shadow of every column's route content from before the current delta:
  // has-route flag, witness arc, and weight, flattened [column][node].
  std::vector<std::uint8_t> shadow_has_;
  std::vector<int> shadow_arc_;
  std::vector<std::optional<Value>> shadow_weight_;
};

}  // namespace mrt::serve
