#include "mrt/serve/serve.hpp"

#include <utility>

#include "mrt/obs/obs.hpp"
#include "mrt/support/require.hpp"

namespace mrt::serve {
namespace {

// Registered at namespace scope so the serve.* names exist in the registry
// (and thus in write_json / OpenMetrics output) from the first Daemon on.
obs::Counter& deltas_counter() {
  static obs::Counter& c = obs::registry().counter("serve.deltas_consumed");
  return c;
}

obs::Counter& changes_counter() {
  static obs::Counter& c = obs::registry().counter("serve.route_changes");
  return c;
}

obs::Histogram& update_hist() {
  static obs::Histogram& h = obs::registry().histogram("serve.update_ns");
  return h;
}

}  // namespace

Daemon::Daemon(const OrderTransform& alg, const compile::WeightEngine* engine,
               ServeOptions opts)
    : rib_(alg, engine, opts.rib), opts_(opts) {
  // Touch the serve.* metrics so exporter presence does not depend on
  // whether any delta ever arrives.
  deltas_counter();
  changes_counter();
  update_hist();
}

void Daemon::start(const LabeledGraph& net, std::vector<int> dests,
                   const Value& origin) {
  rib_.solve(net, std::move(dests), origin);
  stats_ = ServeStats{};
  update_index_ = 0;
  started_ = true;
  snapshot_shadow();
}

void Daemon::snapshot_shadow() {
  const int cols = rib_.num_columns();
  const int n = rib_.net().num_nodes();
  const std::size_t total =
      static_cast<std::size_t>(cols) * static_cast<std::size_t>(n);
  shadow_has_.resize(total);
  shadow_arc_.resize(total);
  shadow_weight_.resize(total);
  for (int c = 0; c < cols; ++c) {
    const Routing& r = rib_.routing(c);
    const std::size_t base =
        static_cast<std::size_t>(c) * static_cast<std::size_t>(n);
    for (int v = 0; v < n; ++v) {
      const std::size_t vi = static_cast<std::size_t>(v);
      shadow_has_[base + vi] = r.weight[vi].has_value() ? 1 : 0;
      shadow_arc_[base + vi] = r.next_arc[vi];
      shadow_weight_[base + vi] = r.weight[vi];
    }
  }
}

std::size_t Daemon::apply(const dyn::TopologyDelta& delta,
                          const ChangeSink& sink) {
  MRT_REQUIRE(started_);
  {
    obs::ScopedTimer timer(update_hist());
    rib_.update(delta);
  }
  ++stats_.deltas_consumed;
  if (rib_.last_update().cold) {
    ++stats_.cold_updates;
  } else {
    ++stats_.warm_updates;
  }
  if (obs::enabled()) deltas_counter().add(1);

  std::size_t changes = 0;
  if (opts_.emit_route_changes) {
    const int cols = rib_.num_columns();
    const int n = rib_.net().num_nodes();
    for (int c = 0; c < cols; ++c) {
      const Routing& r = rib_.routing(c);
      const std::size_t base =
          static_cast<std::size_t>(c) * static_cast<std::size_t>(n);
      for (int v = 0; v < n; ++v) {
        const std::size_t vi = static_cast<std::size_t>(v);
        const bool had = shadow_has_[base + vi] != 0;
        const bool has = r.weight[vi].has_value();
        const bool same =
            had == has &&
            (!has || (shadow_arc_[base + vi] == r.next_arc[vi] &&
                      *shadow_weight_[base + vi] == *r.weight[vi]));
        if (same) continue;
        ++changes;
        if (!has) ++stats_.withdrawals;
        if (sink) {
          RouteChange ev;
          ev.update_index = update_index_;
          ev.column = c;
          ev.dest = rib_.dests()[static_cast<std::size_t>(c)];
          ev.node = v;
          ev.had_route = had;
          ev.has_route = has;
          ev.next_arc = has ? r.next_arc[vi] : -1;
          sink(ev);
        }
        shadow_has_[base + vi] = has ? 1 : 0;
        shadow_arc_[base + vi] = r.next_arc[vi];
        shadow_weight_[base + vi] = r.weight[vi];
      }
    }
    stats_.route_changes += changes;
    if (obs::enabled() && changes > 0) {
      changes_counter().add(static_cast<std::uint64_t>(changes));
    }
  }
  ++update_index_;
  return changes;
}

std::size_t Daemon::drain(stream::DeltaStream& s, const ChangeSink& sink) {
  MRT_REQUIRE(started_);
  std::size_t n = 0;
  while (std::optional<dyn::TopologyDelta> d = s.next()) {
    apply(*d, sink);
    ++n;
  }
  if (!s.error().empty()) ++stats_.decode_errors;
  return n;
}

}  // namespace mrt::serve
