#include "mrt/lang/elaborate.hpp"

#include <algorithm>

#include "mrt/core/bases.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/translations.hpp"
#include "mrt/sim/scenario.hpp"

namespace mrt::lang {
namespace {

Error err(const Expr& e, std::string msg) {
  return Error{std::move(msg), e.line, e.column};
}

struct Arg {
  AlgebraValue value;
};

// ---------------------------------------------------------------------------
// Argument plumbing
// ---------------------------------------------------------------------------

bool is_number(const ExprPtr& e) {
  return e->kind == Expr::Kind::IntLit || e->kind == Expr::Kind::RealLit;
}

Expected<std::int64_t> want_int(const ExprPtr& e) {
  if (e->kind != Expr::Kind::IntLit) {
    return err(*e, "expected an integer literal, found " + e->show());
  }
  return e->int_value;
}

}  // namespace

StructureKind kind_of(const AlgebraValue& v) {
  return std::visit([](const auto& a) { return a.kind; }, v);
}

const std::string& name_of(const AlgebraValue& v) {
  return std::visit([](const auto& a) -> const std::string& { return a.name; },
                    v);
}

const PropertyReport& props_of(const AlgebraValue& v) {
  return std::visit(
      [](const auto& a) -> const PropertyReport& { return a.props; }, v);
}

PropertyReport& props_of(AlgebraValue& v) {
  return std::visit([](auto& a) -> PropertyReport& { return a.props; }, v);
}

std::vector<std::string> builtin_names() {
  return {"shortest_path", "sp",       "widest_path", "bw",
          "reliability",   "rel",      "hops",        "chain",
          "gadget",        "sp_os",    "bw_os",       "rel_os",
          "sp_bs",         "bw_bs",    "count_bs",    "sp_st",
          "lex",           "lex_omega","scoped",      "delta",
          "prod",          "add_top",
          "left",          "right",    "union",       "cayley",
          "no_l",          "no_r",     "minset"};
}

Expected<AlgebraValue> elaborate(const ExprPtr& expr, const Env& env) {
  switch (expr->kind) {
    case Expr::Kind::IntLit:
    case Expr::Kind::RealLit:
      return err(*expr, "a number is not an algebra");

    case Expr::Kind::Name: {
      if (auto it = env.find(expr->name); it != env.end()) return it->second;
      // Zero-argument builtins may be written without parentheses.
      return elaborate(make_call(expr->name, {}, expr->line, expr->column),
                       env);
    }

    case Expr::Kind::Call:
      break;
  }

  const std::string& head = expr->name;
  const auto& raw_args = expr->args;

  auto arity_error = [&](const char* wanted) -> Error {
    return err(*expr, head + " expects " + wanted + ", got " +
                          std::to_string(raw_args.size()) + " argument(s)");
  };

  // --- Base algebras -------------------------------------------------------
  auto int_arg_or = [&](std::size_t i, std::int64_t dflt)
      -> Expected<std::int64_t> {
    if (raw_args.size() <= i) return dflt;
    return want_int(raw_args[i]);
  };

  if (head == "shortest_path" || head == "sp") {
    auto maxc = int_arg_or(0, 9);
    if (!maxc) return maxc.error();
    if (*maxc < 1) return err(*expr, "shortest_path: max cost must be >= 1");
    return AlgebraValue{ot_shortest_path(*maxc)};
  }
  if (head == "widest_path" || head == "bw") {
    auto maxc = int_arg_or(0, 9);
    if (!maxc) return maxc.error();
    if (*maxc < 0) return err(*expr, "widest_path: max capacity must be >= 0");
    return AlgebraValue{ot_widest_path(*maxc)};
  }
  if (head == "reliability" || head == "rel") {
    return AlgebraValue{ot_reliability()};
  }
  if (head == "hops") return AlgebraValue{ot_hop_count()};
  if (head == "chain") {
    if (raw_args.empty() || raw_args.size() > 3) {
      return arity_error("chain(n [, lo, hi])");
    }
    auto n = want_int(raw_args[0]);
    if (!n) return n.error();
    if (*n < 1) return err(*expr, "chain: n must be >= 1");
    auto lo = int_arg_or(1, 1);
    if (!lo) return lo.error();
    auto hi = int_arg_or(2, std::min<std::int64_t>(*n, 2));
    if (!hi) return hi.error();
    if (!(0 <= *lo && *lo <= *hi && *hi <= *n)) {
      return err(*expr, "chain: need 0 <= lo <= hi <= n");
    }
    return AlgebraValue{ot_chain_add(static_cast<int>(*n),
                                     static_cast<int>(*lo),
                                     static_cast<int>(*hi))};
  }
  if (head == "gadget") return AlgebraValue{gadget_algebra()};
  if (head == "sp_os") return AlgebraValue{os_shortest_path()};
  if (head == "bw_os") return AlgebraValue{os_widest_path()};
  if (head == "rel_os") return AlgebraValue{os_reliability()};
  if (head == "sp_bs") return AlgebraValue{bs_shortest_path()};
  if (head == "bw_bs") return AlgebraValue{bs_widest_path()};
  if (head == "count_bs") return AlgebraValue{bs_path_count()};
  if (head == "sp_st") {
    auto maxc = int_arg_or(0, 9);
    if (!maxc) return maxc.error();
    return AlgebraValue{st_shortest_path(*maxc)};
  }

  // --- Combinators: evaluate operands first --------------------------------
  auto is_builtin = [&](const std::string& n) {
    auto names = builtin_names();
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  if (!is_builtin(head)) {
    return err(*expr, "unknown algebra or operator '" + head + "'");
  }

  std::vector<AlgebraValue> ops;
  for (const ExprPtr& a : raw_args) {
    if (is_number(a)) {
      return err(*a, head + ": expected an algebra, found a number");
    }
    auto v = elaborate(a, env);
    if (!v) return v.error();
    ops.push_back(std::move(v.value()));
  }

  auto want_ot = [&](std::size_t i) -> Expected<OrderTransform> {
    if (kind_of(ops[i]) != StructureKind::OrderTransform) {
      return err(*raw_args[i],
                 head + ": operand must be an order transform, but '" +
                     name_of(ops[i]) + "' is a " +
                     to_string(kind_of(ops[i])));
    }
    return std::get<OrderTransform>(ops[i]);
  };

  if (head == "lex") {
    if (ops.size() < 2) return arity_error("at least 2 algebras");
    const StructureKind k = kind_of(ops[0]);
    for (std::size_t i = 1; i < ops.size(); ++i) {
      if (kind_of(ops[i]) != k) {
        return err(*raw_args[i],
                   "lex: all operands must come from the same quadrant ('" +
                       name_of(ops[0]) + "' is a " + to_string(k) + ", '" +
                       name_of(ops[i]) + "' is a " +
                       to_string(kind_of(ops[i])) + ")");
      }
    }
    AlgebraValue acc = ops[0];
    for (std::size_t i = 1; i < ops.size(); ++i) {
      switch (k) {
        case StructureKind::Bisemigroup:
          acc = lex(std::get<Bisemigroup>(acc), std::get<Bisemigroup>(ops[i]));
          break;
        case StructureKind::OrderSemigroup:
          acc = lex(std::get<OrderSemigroup>(acc),
                    std::get<OrderSemigroup>(ops[i]));
          break;
        case StructureKind::SemigroupTransform:
          acc = lex(std::get<SemigroupTransform>(acc),
                    std::get<SemigroupTransform>(ops[i]));
          break;
        case StructureKind::OrderTransform:
          acc = lex(std::get<OrderTransform>(acc),
                    std::get<OrderTransform>(ops[i]));
          break;
        default:
          return err(*expr, "lex: unsupported quadrant");
      }
    }
    return acc;
  }

  if (head == "lex_omega") {
    if (ops.size() != 2) return arity_error("2 algebras");
    if (kind_of(ops[0]) == StructureKind::OrderTransform &&
        kind_of(ops[1]) == StructureKind::OrderTransform) {
      const auto& s = std::get<OrderTransform>(ops[0]);
      if (!s.ord->has_top()) {
        return err(*raw_args[0],
                   "lex_omega: first operand needs a top element to collapse");
      }
      return AlgebraValue{lex_omega(s, std::get<OrderTransform>(ops[1]))};
    }
    if (kind_of(ops[0]) == StructureKind::SemigroupTransform &&
        kind_of(ops[1]) == StructureKind::SemigroupTransform) {
      const auto& s = std::get<SemigroupTransform>(ops[0]);
      if (!s.add->absorber()) {
        return err(*raw_args[0],
                   "lex_omega: first operand needs an absorber to collapse");
      }
      return AlgebraValue{lex_omega(s, std::get<SemigroupTransform>(ops[1]))};
    }
    return err(*expr, "lex_omega: operands must both be order transforms or "
                      "both semigroup transforms");
  }

  if (head == "scoped" || head == "delta" || head == "prod") {
    if (ops.size() != 2) return arity_error("2 order transforms");
    auto s = want_ot(0);
    if (!s) return s.error();
    auto t = want_ot(1);
    if (!t) return t.error();
    if (head == "scoped") return AlgebraValue{scoped(*s, *t)};
    if (head == "delta") return AlgebraValue{delta(*s, *t)};
    return AlgebraValue{direct(*s, *t)};
  }

  if (head == "left" || head == "right" || head == "add_top") {
    if (ops.size() != 1) return arity_error("1 order transform");
    auto s = want_ot(0);
    if (!s) return s.error();
    if (head == "left") return AlgebraValue{left(*s)};
    if (head == "right") return AlgebraValue{right(*s)};
    return AlgebraValue{add_top(*s)};
  }

  if (head == "union") {
    if (ops.size() != 2) return arity_error("2 order transforms");
    auto s = want_ot(0);
    if (!s) return s.error();
    auto t = want_ot(1);
    if (!t) return t.error();
    if (s->ord != t->ord) {
      return err(*expr,
                 "union: operands must share one order component (apply "
                 "left/right/union to the same named algebra)");
    }
    return AlgebraValue{fn_union(*s, *t)};
  }

  if (head == "cayley") {
    if (ops.size() != 1) return arity_error("1 algebra");
    if (kind_of(ops[0]) == StructureKind::Bisemigroup) {
      return AlgebraValue{cayley(std::get<Bisemigroup>(ops[0]))};
    }
    if (kind_of(ops[0]) == StructureKind::OrderSemigroup) {
      return AlgebraValue{cayley(std::get<OrderSemigroup>(ops[0]))};
    }
    return err(*raw_args[0],
               "cayley: operand must be a bisemigroup or an order semigroup");
  }

  if (head == "no_l" || head == "no_r") {
    if (ops.size() != 1) return arity_error("1 algebra");
    const bool left_order = head == "no_l";
    if (kind_of(ops[0]) == StructureKind::Bisemigroup) {
      const auto& a = std::get<Bisemigroup>(ops[0]);
      return AlgebraValue{left_order ? natural_order_left(a)
                                     : natural_order_right(a)};
    }
    if (kind_of(ops[0]) == StructureKind::SemigroupTransform) {
      const auto& a = std::get<SemigroupTransform>(ops[0]);
      return AlgebraValue{left_order ? natural_order_left(a)
                                     : natural_order_right(a)};
    }
    return err(*raw_args[0],
               head + ": operand must be a bisemigroup or semigroup transform");
  }

  if (head == "minset") {
    if (ops.size() != 1) return arity_error("1 order transform");
    auto s = want_ot(0);
    if (!s) return s.error();
    return AlgebraValue{min_set_transform(*s)};
  }

  return err(*expr, "unknown algebra or operator '" + head + "'");
}

}  // namespace mrt::lang
