// Tokens of the metarouting language (RML).
#pragma once

#include <cstdint>
#include <string>

namespace mrt::lang {

enum class TokKind : unsigned char {
  Ident,   // names: lex, scoped, sp, my_algebra …
  Int,     // integer literal
  Real,    // floating literal
  LParen,
  RParen,
  Comma,
  Equals,
  Semi,    // statement separator (newline or ';')
  KwLet,
  KwShow,
  KwCheck,
  End,
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;       // for Ident
  std::int64_t int_value = 0;
  double real_value = 0.0;
  int line = 1;
  int column = 1;

  std::string describe() const;
};

std::string to_string(TokKind k);

}  // namespace mrt::lang
