#include "mrt/lang/lexer.hpp"

#include <cctype>

namespace mrt::lang {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_rest(char c) {
  return ident_start(c) || std::isdigit(static_cast<unsigned char>(c));
}

}  // namespace

Expected<std::vector<Token>> tokenize(std::string_view src) {
  std::vector<Token> out;
  int line = 1;
  int col = 1;
  std::size_t i = 0;

  auto push = [&](TokKind k, int at_col) {
    Token t;
    t.kind = k;
    t.line = line;
    t.column = at_col;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = src[i];
    const int at_col = col;
    if (c == '\n') {
      // Collapse blank lines: emit Semi only after a real token.
      if (!out.empty() && out.back().kind != TokKind::Semi) push(TokKind::Semi, at_col);
      ++i;
      ++line;
      col = 1;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      ++col;
      continue;
    }
    if (c == '#' || (c == '/' && i + 1 < src.size() && src[i + 1] == '/')) {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == ';') { push(TokKind::Semi, at_col); ++i; ++col; continue; }
    if (c == '(') { push(TokKind::LParen, at_col); ++i; ++col; continue; }
    if (c == ')') { push(TokKind::RParen, at_col); ++i; ++col; continue; }
    if (c == ',') { push(TokKind::Comma, at_col); ++i; ++col; continue; }
    if (c == '=') { push(TokKind::Equals, at_col); ++i; ++col; continue; }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < src.size() && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
      bool is_real = false;
      if (j < src.size() && src[j] == '.' && j + 1 < src.size() &&
          std::isdigit(static_cast<unsigned char>(src[j + 1]))) {
        is_real = true;
        ++j;
        while (j < src.size() && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
      }
      Token t;
      t.line = line;
      t.column = at_col;
      const std::string text(src.substr(i, j - i));
      if (is_real) {
        t.kind = TokKind::Real;
        t.real_value = std::stod(text);
      } else {
        t.kind = TokKind::Int;
        t.int_value = std::stoll(text);
      }
      out.push_back(std::move(t));
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }

    if (ident_start(c)) {
      std::size_t j = i;
      while (j < src.size() && ident_rest(src[j])) ++j;
      Token t;
      t.line = line;
      t.column = at_col;
      t.text = std::string(src.substr(i, j - i));
      if (t.text == "let") {
        t.kind = TokKind::KwLet;
      } else if (t.text == "show") {
        t.kind = TokKind::KwShow;
      } else if (t.text == "check") {
        t.kind = TokKind::KwCheck;
      } else {
        t.kind = TokKind::Ident;
      }
      out.push_back(std::move(t));
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }

    return Error{std::string("unexpected character '") + c + "'", line,
                 at_col};
  }
  if (!out.empty() && out.back().kind != TokKind::Semi) {
    push(TokKind::Semi, col);
  }
  push(TokKind::End, col);
  return out;
}

}  // namespace mrt::lang
