#include "mrt/lang/ast.hpp"

#include "mrt/support/strings.hpp"

namespace mrt::lang {

std::string Expr::show() const {
  switch (kind) {
    case Kind::Name:
      return name;
    case Kind::IntLit:
      return std::to_string(int_value);
    case Kind::RealLit:
      return format_double(real_value);
    case Kind::Call: {
      std::vector<std::string> parts;
      parts.reserve(args.size());
      for (const ExprPtr& a : args) parts.push_back(a->show());
      return name + "(" + join(parts, ", ") + ")";
    }
  }
  return "?";
}

std::string show(const Stmt& s) {
  switch (s.kind) {
    case Stmt::Kind::Let:
      return "let " + s.name + " = " + s.expr->show();
    case Stmt::Kind::Show:
      return "show " + s.expr->show();
    case Stmt::Kind::Check:
      return "check " + s.expr->show();
    case Stmt::Kind::Solve:
      return "solve " + s.expr->show() + " on " + s.topology->show() + " to " +
             std::to_string(s.dest) + " from " + s.origin->show();
  }
  return "?";
}

std::string show(const Program& p) {
  std::string out;
  for (const Stmt& s : p) {
    out += show(s);
    out += '\n';
  }
  return out;
}

ExprPtr make_name(std::string name, int line, int column) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Name;
  e->name = std::move(name);
  e->line = line;
  e->column = column;
  return e;
}

ExprPtr make_int(std::int64_t v, int line, int column) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::IntLit;
  e->int_value = v;
  e->line = line;
  e->column = column;
  return e;
}

ExprPtr make_real(double v, int line, int column) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::RealLit;
  e->real_value = v;
  e->line = line;
  e->column = column;
  return e;
}

ExprPtr make_call(std::string head, std::vector<ExprPtr> args, int line,
                  int column) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Call;
  e->name = std::move(head);
  e->args = std::move(args);
  e->line = line;
  e->column = column;
  return e;
}

}  // namespace mrt::lang
