// Abstract syntax of the metarouting language.
//
//   program := stmt*
//   stmt    := 'let' IDENT '=' expr
//            | 'show' expr
//            | 'check' expr
//            | 'solve' expr 'on' topology 'to' INT 'from' value
//   expr    := IDENT | NUMBER | IDENT '(' expr (',' expr)* ')'
//   (topologies and values reuse the expr grammar: ring(6), random(8,4,7),
//    pair(0, inf), inf, 3, …)
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace mrt::lang {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind : unsigned char { Name, IntLit, RealLit, Call };
  Kind kind = Kind::Name;
  std::string name;            // Name / Call head
  std::int64_t int_value = 0;  // IntLit
  double real_value = 0.0;     // RealLit
  std::vector<ExprPtr> args;   // Call
  int line = 1;
  int column = 1;

  /// Re-renders the expression (used in reports and error messages).
  std::string show() const;
};

struct Stmt {
  enum class Kind : unsigned char { Let, Show, Check, Solve };
  Kind kind = Kind::Let;
  std::string name;  // Let target
  ExprPtr expr;
  // Solve only:
  ExprPtr topology;      // ring(6) | line(n) | grid(w,h) | complete(n)
                         // | random(n, extra [, seed])
  std::int64_t dest = 0; // destination node
  ExprPtr origin;        // value expression: INT | REAL | inf | pair(v, v)
  int line = 1;
};

using Program = std::vector<Stmt>;

/// Re-renders a statement / whole program as parseable source. The printers
/// and the parser form a round-trip: parse(show(p)) is structurally equal
/// to p (the property the metalang round-trip tests pin down).
std::string show(const Stmt& s);
std::string show(const Program& p);

ExprPtr make_name(std::string name, int line, int column);
ExprPtr make_int(std::int64_t v, int line, int column);
ExprPtr make_real(double v, int line, int column);
ExprPtr make_call(std::string head, std::vector<ExprPtr> args, int line,
                  int column);

}  // namespace mrt::lang
