#include "mrt/lang/token.hpp"

namespace mrt::lang {

std::string to_string(TokKind k) {
  switch (k) {
    case TokKind::Ident: return "identifier";
    case TokKind::Int: return "integer";
    case TokKind::Real: return "number";
    case TokKind::LParen: return "'('";
    case TokKind::RParen: return "')'";
    case TokKind::Comma: return "','";
    case TokKind::Equals: return "'='";
    case TokKind::Semi: return "end of statement";
    case TokKind::KwLet: return "'let'";
    case TokKind::KwShow: return "'show'";
    case TokKind::KwCheck: return "'check'";
    case TokKind::End: return "end of input";
  }
  return "?";
}

std::string Token::describe() const {
  if (kind == TokKind::Ident) return "identifier '" + text + "'";
  if (kind == TokKind::Int) return "integer " + std::to_string(int_value);
  return to_string(kind);
}

}  // namespace mrt::lang
