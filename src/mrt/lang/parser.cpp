#include "mrt/lang/parser.hpp"

#include <optional>

#include "mrt/lang/lexer.hpp"

namespace mrt::lang {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Expected<Program> program() {
    Program out;
    skip_semis();
    while (!at(TokKind::End)) {
      auto stmt = statement();
      if (!stmt) return stmt.error();
      out.push_back(std::move(stmt.value()));
      if (!at(TokKind::End)) {
        if (!at(TokKind::Semi)) return unexpected("end of statement");
        skip_semis();
      }
    }
    return out;
  }

 private:
  const Token& peek() const { return toks_[pos_]; }
  bool at(TokKind k) const { return peek().kind == k; }
  Token take() { return toks_[pos_++]; }
  void skip_semis() {
    while (at(TokKind::Semi)) ++pos_;
  }

  Error unexpected(const std::string& wanted) const {
    return Error{"expected " + wanted + ", found " + peek().describe(),
                 peek().line, peek().column};
  }

  Expected<Stmt> statement() {
    Stmt s;
    s.line = peek().line;
    if (at(TokKind::KwLet)) {
      take();
      if (!at(TokKind::Ident)) return unexpected("a name after 'let'");
      s.kind = Stmt::Kind::Let;
      s.name = take().text;
      if (!at(TokKind::Equals)) return unexpected("'='");
      take();
    } else if (at(TokKind::KwShow)) {
      take();
      s.kind = Stmt::Kind::Show;
    } else if (at(TokKind::KwCheck)) {
      take();
      s.kind = Stmt::Kind::Check;
    } else if (at(TokKind::Ident) && peek().text == "solve") {
      take();
      s.kind = Stmt::Kind::Solve;
      auto alg = expression();
      if (!alg) return alg.error();
      s.expr = std::move(alg.value());
      auto soft = [&](const char* kw) -> std::optional<Error> {
        if (!at(TokKind::Ident) || peek().text != kw) {
          return unexpected(std::string("'") + kw + "'");
        }
        take();
        return std::nullopt;
      };
      if (auto e = soft("on")) return *e;
      auto topo = expression();
      if (!topo) return topo.error();
      s.topology = std::move(topo.value());
      if (auto e = soft("to")) return *e;
      if (!at(TokKind::Int)) return unexpected("a destination node id");
      s.dest = take().int_value;
      if (auto e = soft("from")) return *e;
      auto origin = expression();
      if (!origin) return origin.error();
      s.origin = std::move(origin.value());
      return s;
    } else {
      return unexpected("'let', 'show', 'check' or 'solve'");
    }
    auto e = expression();
    if (!e) return e.error();
    s.expr = std::move(e.value());
    return s;
  }

  Expected<ExprPtr> expression() {
    const Token& t = peek();
    switch (t.kind) {
      case TokKind::Int: {
        Token tok = take();
        return make_int(tok.int_value, tok.line, tok.column);
      }
      case TokKind::Real: {
        Token tok = take();
        return make_real(tok.real_value, tok.line, tok.column);
      }
      case TokKind::Ident: {
        Token head = take();
        if (!at(TokKind::LParen)) {
          return make_name(head.text, head.line, head.column);
        }
        take();  // (
        std::vector<ExprPtr> args;
        if (!at(TokKind::RParen)) {
          for (;;) {
            auto a = expression();
            if (!a) return a.error();
            args.push_back(std::move(a.value()));
            if (at(TokKind::Comma)) {
              take();
              continue;
            }
            break;
          }
        }
        if (!at(TokKind::RParen)) return unexpected("')' or ','");
        take();
        return make_call(head.text, std::move(args), head.line, head.column);
      }
      default:
        return unexpected("an expression");
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Expected<Program> parse(std::string_view source) {
  auto toks = tokenize(source);
  if (!toks) return toks.error();
  return Parser(std::move(toks.value())).program();
}

}  // namespace mrt::lang
