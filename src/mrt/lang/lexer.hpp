// Lexer for the metarouting language. Newlines terminate statements (as do
// semicolons); `//` and `#` start line comments.
#pragma once

#include <vector>

#include "mrt/lang/token.hpp"
#include "mrt/support/expected.hpp"

namespace mrt::lang {

Expected<std::vector<Token>> tokenize(std::string_view source);

}  // namespace mrt::lang
