// Elaboration: typed evaluation of metarouting-language expressions into
// quadrant structures, with property inference happening inside the
// combinators — the paper's "routing language whose types are algebraic
// properties".
#pragma once

#include <map>
#include <string>
#include <variant>

#include "mrt/core/quadrants.hpp"
#include "mrt/lang/ast.hpp"
#include "mrt/support/expected.hpp"

namespace mrt::lang {

/// A value of the language: one structure from some quadrant.
using AlgebraValue = std::variant<Bisemigroup, OrderSemigroup,
                                  SemigroupTransform, OrderTransform>;

StructureKind kind_of(const AlgebraValue& v);
const std::string& name_of(const AlgebraValue& v);
const PropertyReport& props_of(const AlgebraValue& v);
PropertyReport& props_of(AlgebraValue& v);

using Env = std::map<std::string, AlgebraValue>;

/// Evaluates `expr` under `env`. Reports unknown names, arity and quadrant
/// type errors with source positions.
Expected<AlgebraValue> elaborate(const ExprPtr& expr, const Env& env);

/// Names of all builtins (for diagnostics and the tour example).
std::vector<std::string> builtin_names();

}  // namespace mrt::lang
