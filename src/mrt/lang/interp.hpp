// The metarouting-language interpreter: runs programs of let/show/check/solve
// statements, keeping named algebra bindings and rendering property reports.
#pragma once

#include "mrt/core/checker.hpp"
#include "mrt/lang/elaborate.hpp"

namespace mrt::lang {

class Interp {
 public:
  explicit Interp(CheckLimits check_limits = {});

  /// Runs a whole program; returns its accumulated printed output, or the
  /// first error (with position).
  Expected<std::string> run(std::string_view source);

  /// Access to bindings (for embedding: examples fetch elaborated algebras).
  const Env& env() const { return env_; }

 private:
  Env env_;
  Checker checker_;
};

}  // namespace mrt::lang
