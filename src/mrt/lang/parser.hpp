// Recursive-descent parser for the metarouting language.
#pragma once

#include "mrt/lang/ast.hpp"
#include "mrt/support/expected.hpp"

namespace mrt::lang {

Expected<Program> parse(std::string_view source);

}  // namespace mrt::lang
