#include "mrt/lang/interp.hpp"

#include <sstream>

#include "mrt/core/report.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/lang/parser.hpp"
#include "mrt/routing/dijkstra.hpp"
#include "mrt/routing/minset.hpp"
#include "mrt/support/table.hpp"

namespace mrt::lang {
namespace {

Error err(const Expr& e, std::string msg) {
  return Error{std::move(msg), e.line, e.column};
}

// Value literals: INT | REAL | inf | omega | pair(v, v) | tuple(v, …).
Expected<Value> evaluate_value(const ExprPtr& e) {
  switch (e->kind) {
    case Expr::Kind::IntLit:
      return Value::integer(e->int_value);
    case Expr::Kind::RealLit:
      return Value::real(e->real_value);
    case Expr::Kind::Name:
      if (e->name == "inf") return Value::inf();
      if (e->name == "omega") return Value::omega();
      return err(*e, "unknown value '" + e->name + "'");
    case Expr::Kind::Call: {
      if (e->name != "pair" && e->name != "tuple") {
        return err(*e, "unknown value constructor '" + e->name + "'");
      }
      if (e->name == "pair" && e->args.size() != 2) {
        return err(*e, "pair takes exactly 2 values");
      }
      ValueVec elems;
      for (const ExprPtr& a : e->args) {
        auto v = evaluate_value(a);
        if (!v) return v.error();
        elems.push_back(std::move(v.value()));
      }
      return Value::tuple(std::move(elems));
    }
  }
  return err(*e, "not a value");
}

Expected<Digraph> build_topology(const ExprPtr& e, std::uint64_t& seed_out) {
  if (e->kind != Expr::Kind::Call) {
    return err(*e, "expected a topology like ring(6) or random(8, 4, 7)");
  }
  std::vector<std::int64_t> args;
  for (const ExprPtr& a : e->args) {
    if (a->kind != Expr::Kind::IntLit) {
      return err(*a, "topology arguments must be integers");
    }
    args.push_back(a->int_value);
  }
  auto want = [&](std::size_t lo, std::size_t hi) {
    return args.size() >= lo && args.size() <= hi;
  };
  seed_out = 1;
  if (e->name == "ring" && want(1, 2)) {
    if (args.size() == 2) seed_out = static_cast<std::uint64_t>(args[1]);
    return ring(static_cast<int>(args[0]));
  }
  if (e->name == "line" && want(1, 2)) {
    if (args.size() == 2) seed_out = static_cast<std::uint64_t>(args[1]);
    return line(static_cast<int>(args[0]));
  }
  if (e->name == "grid" && want(2, 3)) {
    if (args.size() == 3) seed_out = static_cast<std::uint64_t>(args[2]);
    return grid(static_cast<int>(args[0]), static_cast<int>(args[1]));
  }
  if (e->name == "complete" && want(1, 2)) {
    if (args.size() == 2) seed_out = static_cast<std::uint64_t>(args[1]);
    return complete(static_cast<int>(args[0]));
  }
  if (e->name == "random" && want(2, 3)) {
    if (args.size() == 3) seed_out = static_cast<std::uint64_t>(args[2]);
    Rng rng(seed_out);
    return random_connected(rng, static_cast<int>(args[0]),
                            static_cast<int>(args[1]));
  }
  return err(*e, "unknown topology '" + e->name +
                     "' (ring/line/grid/complete/random)");
}

}  // namespace

Interp::Interp(CheckLimits check_limits) : checker_(check_limits) {}

Expected<std::string> Interp::run(std::string_view source) {
  auto program = parse(source);
  if (!program) return program.error();

  std::ostringstream out;
  for (const Stmt& stmt : *program) {
    auto value = elaborate(stmt.expr, env_);
    if (!value) return value.error();
    AlgebraValue v = std::move(value.value());

    switch (stmt.kind) {
      case Stmt::Kind::Let:
        out << stmt.name << " = " << name_of(v) << " : "
            << to_string(kind_of(v)) << "\n";
        env_.insert_or_assign(stmt.name, std::move(v));
        break;
      case Stmt::Kind::Show:
        out << render_report(name_of(v), kind_of(v), props_of(v)) << "\n";
        break;
      case Stmt::Kind::Solve: {
        if (kind_of(v) != StructureKind::OrderTransform) {
          return Error{"solve: the algebra must be an order transform, got " +
                           to_string(kind_of(v)),
                       stmt.line, 1};
        }
        const OrderTransform& alg = std::get<OrderTransform>(v);
        std::uint64_t seed = 1;
        auto topo = build_topology(stmt.topology, seed);
        if (!topo) return topo.error();
        if (stmt.dest < 0 || stmt.dest >= topo->num_nodes()) {
          return Error{"solve: destination out of range", stmt.line, 1};
        }
        auto origin = evaluate_value(stmt.origin);
        if (!origin) return origin.error();
        if (!alg.ord->contains(*origin)) {
          return err(*stmt.origin, "origin value " + origin->to_string() +
                                       " is not in the carrier of " +
                                       alg.name);
        }
        Rng rng(seed);
        LabeledGraph net = label_randomly(alg, std::move(topo.value()), rng);

        // The "proof component": say what the derived properties license.
        out << "solving " << alg.name << " to node " << stmt.dest << "\n";
        if (alg.props.value(Prop::M_L) != Tri::True) {
          out << "  warning: M not established (" 
              << to_string(alg.props.value(Prop::M_L))
              << ") - computed routes may not be globally optimal\n";
        }
        if (alg.props.value(Prop::ND_L) != Tri::True) {
          out << "  warning: ND not established ("
              << to_string(alg.props.value(Prop::ND_L))
              << ") - greedy/iterative solving may be unsound\n";
        }
        const int dest = static_cast<int>(stmt.dest);
        if (alg.props.value(Prop::Total) == Tri::True) {
          const Routing r = dijkstra(alg, net, dest, *origin);
          Table t({"node", "weight", "next hop"});
          for (int node = 0; node < net.num_nodes(); ++node) {
            const bool has = r.has_route(node);
            t.add_row({std::to_string(node),
                       has ? r.weight[(std::size_t)node]->to_string()
                           : "(no route)",
                       has && r.next_arc[(std::size_t)node] >= 0
                           ? std::to_string(
                                 net.graph()
                                     .arc(r.next_arc[(std::size_t)node])
                                     .dst)
                           : "-"});
          }
          out << t.render();
        } else {
          out << "  order is not total: computing Pareto frontiers\n";
          const MinSetResult ms = minset_bellman(alg, net, dest, *origin);
          Table t({"node", "frontier"});
          for (int node = 0; node < net.num_nodes(); ++node) {
            std::string cell;
            for (const Value& w : ms.weights[(std::size_t)node]) {
              cell += w.to_string() + " ";
            }
            t.add_row({std::to_string(node),
                       cell.empty() ? "(no route)" : cell});
          }
          out << t.render();
        }
        break;
      }
      case Stmt::Kind::Check: {
        // Fill every Unknown slot with the checker's verdict, then render.
        std::visit([&](auto& a) { checker_.refine(a, a.props); }, v);
        out << render_report(name_of(v), kind_of(v), props_of(v)) << "\n";
        // If the checked expression is a bare name, persist the refinement.
        if (stmt.expr->kind == Expr::Kind::Name) {
          if (auto it = env_.find(stmt.expr->name); it != env_.end()) {
            it->second = std::move(v);
          }
        }
        break;
      }
    }
  }
  return out.str();
}

}  // namespace mrt::lang
