// Synchronous distributed Bellman–Ford over an order transform: every node
// repeatedly selects the best extension of its neighbours' current routes.
//
// This is the synchronous abstraction of a path-vector protocol; its fixed
// points are exactly the *locally optimal* (stable) routings. With an
// increasing (I) algebra it converges from any start; without, it may cycle
// — both behaviours are exercised by the experiments. The asynchronous,
// event-driven protocol lives in mrt/sim.
#pragma once

#include "mrt/compile/engine.hpp"
#include "mrt/routing/labeled_graph.hpp"

namespace mrt {

struct BellmanResult {
  Routing routing;
  int iterations = 0;
  bool converged = false;
};

struct BellmanOptions {
  int max_iterations = 1000;
  /// If true, a node keeps its current route when a new candidate is merely
  /// equivalent (BGP-like stickiness); if false, ties break by arc id.
  bool sticky = true;
};

/// When `cn` is non-null and fully compiled, the iteration state lives as
/// flat weight words for the whole run (decoded only into the returned
/// routing); results are identical to the boxed path.
BellmanResult bellman_sync(const OrderTransform& alg, const LabeledGraph& net,
                           int dest, const Value& origin,
                           const BellmanOptions& opts = {},
                           const compile::CompiledNet* cn = nullptr);

/// One synchronous update step (exposed for tests): returns true if any
/// node's route changed. The compiled variant round-trips `r` through the
/// flat encoding, so prefer bellman_sync for timing.
bool bellman_step(const OrderTransform& alg, const LabeledGraph& net,
                  int dest, const Value& origin, Routing& r,
                  const BellmanOptions& opts,
                  const compile::CompiledNet* cn = nullptr);

}  // namespace mrt
