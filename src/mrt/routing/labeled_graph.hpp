// A topology whose arcs carry labels of an order transform: the "configured
// network" that the routing algorithms solve.
//
// Semantics (paper section II): the weight of a path p = (i1,i2),…,(ik-1,ik)
// toward a destination that originates `a` is f_(i1,i2)(… f_(ik-1,ik)(a) …):
// routes propagate from the destination outward, each arc applying its
// label's function.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mrt/core/quadrants.hpp"
#include "mrt/graph/digraph.hpp"

namespace mrt {

class LabeledGraph {
 public:
  LabeledGraph(Digraph g, ValueVec arc_labels);

  const Digraph& graph() const { return g_; }
  int num_nodes() const { return g_.num_nodes(); }
  const Value& label(int arc_id) const;

  /// Replaces one arc's label (policy change experiments).
  void relabel(int arc_id, Value label);

 private:
  Digraph g_;
  ValueVec labels_;
};

/// Labels every arc with a random label of `alg`'s function family.
LabeledGraph label_randomly(const OrderTransform& alg, Digraph g, Rng& rng);

/// A per-destination routing solution: for each node, an optional weight
/// (nullopt = no route) and the chosen out-arc (-1 = none / destination).
struct Routing {
  std::vector<std::optional<Value>> weight;
  std::vector<int> next_arc;

  bool has_route(int v) const {
    return weight[static_cast<std::size_t>(v)].has_value();
  }
};

/// Follows next_arc pointers from `src`; returns the node sequence, or
/// nullopt if a forwarding loop is encountered before the destination.
std::optional<std::vector<int>> forwarding_path(const LabeledGraph& net,
                                                const Routing& r, int src,
                                                int dest);

}  // namespace mrt
