// Multipath (Pareto) global solver: the min-set translation in action.
//
// For a preorder that is not total there may be no single best route; the
// globally optimal answer is the *min-set* of all path weights. This solver
// iterates X_i ← min_≲( ⋃_{(i,j)} f_(i,j)(X_j) ∪ origin·[i = dest] ) to a
// fixed point — the matrix iteration of the semiring literature lifted
// through the paper's min-set-map.
#pragma once

#include "mrt/routing/labeled_graph.hpp"

namespace mrt {

struct MinSetResult {
  /// Per node, the min-set of route weights (empty = unreachable).
  std::vector<ValueVec> weights;
  int iterations = 0;
  bool converged = false;
};

struct MinSetOptions {
  int max_iterations = 200;
  /// Safety valve against pathological blowup on adversarial algebras.
  std::size_t max_set_size = 4096;
};

MinSetResult minset_bellman(const OrderTransform& alg, const LabeledGraph& net,
                            int dest, const Value& origin,
                            const MinSetOptions& opts = {});

}  // namespace mrt
