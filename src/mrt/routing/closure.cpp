#include "mrt/routing/closure.hpp"

#include <atomic>
#include <cstdint>

#include "mrt/obs/obs.hpp"
#include "mrt/par/par.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

using Entry = std::optional<Value>;

// Rows per parallel chunk in the matrix passes. Row relaxations within one
// elimination / multiplication step are independent, so they split across
// the pool without changing any entry.
constexpr std::size_t kRowGrain = 8;

// "No walk" behaves as the ⊕-identity and the ⊗-annihilator.
Entry opt_plus(const Bisemigroup& alg, const Entry& x, const Entry& y) {
  if (!x) return y;
  if (!y) return x;
  return alg.add->op(*x, *y);
}

Entry opt_times(const Bisemigroup& alg, const Entry& x, const Entry& y) {
  if (!x || !y) return std::nullopt;
  return alg.mul->op(*x, *y);
}

WeightMatrix identity_matrix(const Bisemigroup& alg, std::size_t n) {
  WeightMatrix id(n, std::vector<Entry>(n));
  if (auto one = alg.mul->identity()) {
    for (std::size_t i = 0; i < n; ++i) id[i][i] = *one;
  }
  return id;
}

// A dense n×n matrix of flat weights: per-entry fixed-stride word blocks
// plus a presence byte ("no walk" = absent, as with std::nullopt).
struct FlatMatrix {
  std::size_t n = 0, stride = 0;
  std::vector<std::uint64_t> w;
  std::vector<std::uint8_t> present;

  void init(std::size_t nn, std::size_t s) {
    n = nn;
    stride = s;
    w.assign(nn * nn * s, 0);
    present.assign(nn * nn, 0);
  }
  std::uint64_t* at(std::size_t i, std::size_t j) {
    return w.data() + (i * n + j) * stride;
  }
  const std::uint64_t* at(std::size_t i, std::size_t j) const {
    return w.data() + (i * n + j) * stride;
  }
  bool has(std::size_t i, std::size_t j) const { return present[i * n + j]; }
  void set(std::size_t i, std::size_t j, const std::uint64_t* src) {
    std::uint64_t* dst = at(i, j);
    for (std::size_t k = 0; k < stride; ++k) dst[k] = src[k];
    present[i * n + j] = 1;
  }

  bool operator==(const FlatMatrix& o) const {
    return present == o.present && w == o.w;
  }
};

// Encodes a boxed matrix; false if any entry is outside the compiled layout
// (the caller must then stay boxed).
bool encode_matrix(const compile::CompiledBisemigroup& cb,
                   const WeightMatrix& a, FlatMatrix& out) {
  const std::size_t n = a.size();
  out.init(n, static_cast<std::size_t>(cb.words()));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (!a[i][j]) continue;
      if (!cb.encode(*a[i][j], out.at(i, j))) return false;
      out.present[i * n + j] = 1;
    }
  }
  return true;
}

WeightMatrix decode_matrix(const compile::CompiledBisemigroup& cb,
                           const FlatMatrix& a) {
  WeightMatrix out(a.n, std::vector<Entry>(a.n));
  for (std::size_t i = 0; i < a.n; ++i) {
    for (std::size_t j = 0; j < a.n; ++j) {
      if (a.has(i, j)) out[i][j] = cb.decode(a.at(i, j));
    }
  }
  return out;
}

// a[i][j] ⊕= a[i][k] ⊗ a[k][j], reading the *current* matrix exactly like
// the boxed entry update (so the j == k self-reads match).
void relax_entry_flat(const compile::CompiledBisemigroup& cb, FlatMatrix& a,
                      std::size_t i, std::size_t k, std::size_t j,
                      std::uint64_t* t1, std::uint64_t* t2) {
  if (!a.has(i, k) || !a.has(k, j)) return;
  cb.mul(a.at(i, k), a.at(k, j), t1);
  if (a.has(i, j)) {
    cb.add(a.at(i, j), t1, t2);
    a.set(i, j, t2);
  } else {
    a.set(i, j, t1);
  }
}

ClosureResult kleene_closure_flat(const Bisemigroup& alg,
                                  const WeightMatrix& boxed,
                                  const compile::CompiledBisemigroup& cb,
                                  FlatMatrix a) {
  const std::size_t n = a.n;
  const std::size_t stride = a.stride;
  obs::ScopedSpan span("kleene_closure", "routing");
  std::atomic<std::uint64_t> product_steps{0};
  for (std::size_t k = 0; k < n; ++k) {
    const auto eliminate_rows = [&](std::size_t lo, std::size_t hi) {
      par::parallel_for(hi - lo, kRowGrain,
                        [&](std::size_t b, std::size_t e) {
        std::uint64_t local_steps = 0;
        // Reused per-thread scratch rows: this body runs once per chunk per
        // pivot k, so constructing the vectors here cost 2n mallocs per
        // closure per thread.
        thread_local std::vector<std::uint64_t> t1, t2;
        if (t1.size() < stride) t1.resize(stride);
        if (t2.size() < stride) t2.resize(stride);
        for (std::size_t i = lo + b; i < lo + e; ++i) {
          if (!a.has(i, k)) continue;
          local_steps += n;
          for (std::size_t j = 0; j < n; ++j) {
            relax_entry_flat(cb, a, i, k, j, t1.data(), t2.data());
          }
        }
        product_steps.fetch_add(local_steps, std::memory_order_relaxed);
      });
    };
    eliminate_rows(0, k);
    if (a.has(k, k)) {
      thread_local std::vector<std::uint64_t> t1, t2;
      if (t1.size() < stride) t1.resize(stride);
      if (t2.size() < stride) t2.resize(stride);
      product_steps.fetch_add(n, std::memory_order_relaxed);
      for (std::size_t j = 0; j < n; ++j) {
        relax_entry_flat(cb, a, k, k, j, t1.data(), t2.data());
      }
    }
    eliminate_rows(k + 1, n);
  }
  // Adjoin the empty walk (identity taken from the boxed algebra and
  // encoded; matches the boxed closure's diagonal exactly).
  if (auto one = alg.mul->identity()) {
    std::vector<std::uint64_t> idw(stride, 0), t(stride);
    if (cb.encode(*one, idw.data())) {
      for (std::size_t i = 0; i < n; ++i) {
        if (a.has(i, i)) {
          cb.add(a.at(i, i), idw.data(), t.data());
          a.set(i, i, t.data());
        } else {
          a.set(i, i, idw.data());
        }
      }
    } else {
      // Identity not representable: redo only the diagonal adjunction boxed.
      WeightMatrix m = decode_matrix(cb, a);
      for (std::size_t i = 0; i < n; ++i) {
        m[i][i] = opt_plus(alg, m[i][i], Entry(*one));
      }
      if (obs::enabled()) {
        obs::Registry& reg = obs::registry();
        reg.counter("closure.kleene_runs").add(1);
        reg.counter("closure.product_steps")
            .add(product_steps.load(std::memory_order_relaxed));
      }
      return ClosureResult{std::move(m), true, 0};
    }
  }
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("closure.kleene_runs").add(1);
    reg.counter("closure.product_steps")
        .add(product_steps.load(std::memory_order_relaxed));
  }
  (void)boxed;
  return ClosureResult{decode_matrix(cb, a), true, 0};
}

ClosureResult iterative_closure_flat(const Bisemigroup& alg,
                                     const FlatMatrix& a,
                                     const compile::CompiledBisemigroup& cb,
                                     const std::uint64_t* idw, bool has_id,
                                     const ClosureOptions& opts) {
  const std::size_t n = a.n;
  const std::size_t stride = a.stride;
  ClosureResult out;
  out.converged = false;

  FlatMatrix star;
  star.init(n, stride);
  if (has_id) {
    for (std::size_t i = 0; i < n; ++i) star.set(i, i, idw);
  }

  obs::ScopedSpan span("iterative_closure", "routing");
  std::atomic<std::uint64_t> product_steps{0};
  for (out.iterations = 0; out.iterations < opts.max_power;
       ++out.iterations) {
    FlatMatrix next;
    next.init(n, stride);
    if (has_id) {
      for (std::size_t i = 0; i < n; ++i) next.set(i, i, idw);
    }
    par::parallel_for(n, kRowGrain, [&](std::size_t rb, std::size_t re) {
      std::uint64_t local_steps = 0;
      // Reused per-thread scratch rows (see kleene_closure_flat): one body
      // run per chunk per power iteration.
      thread_local std::vector<std::uint64_t> t1, t2;
      if (t1.size() < stride) t1.resize(stride);
      if (t2.size() < stride) t2.resize(stride);
      for (std::size_t i = rb; i < re; ++i) {
        for (std::size_t k = 0; k < n; ++k) {
          if (!a.has(i, k)) continue;
          local_steps += n;
          for (std::size_t j = 0; j < n; ++j) {
            if (!star.has(k, j)) continue;
            cb.mul(a.at(i, k), star.at(k, j), t1.data());
            if (next.has(i, j)) {
              cb.add(next.at(i, j), t1.data(), t2.data());
              next.set(i, j, t2.data());
            } else {
              next.set(i, j, t1.data());
            }
          }
        }
      }
      product_steps.fetch_add(local_steps, std::memory_order_relaxed);
    });
    if (next == star) {
      out.converged = true;
      break;
    }
    star = std::move(next);
  }
  out.star = decode_matrix(cb, star);
  (void)alg;
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("closure.iterative_runs").add(1);
    reg.counter("closure.product_steps")
        .add(product_steps.load(std::memory_order_relaxed));
    reg.counter("closure.iterations")
        .add(static_cast<std::uint64_t>(out.iterations));
    reg.histogram("closure.iterations_to_fixpoint")
        .record(static_cast<std::uint64_t>(out.iterations));
  }
  return out;
}

}  // namespace

WeightMatrix arc_matrix(const Bisemigroup& alg, const Digraph& g,
                        const ValueVec& arc_weights) {
  MRT_REQUIRE(static_cast<int>(arc_weights.size()) == g.num_arcs());
  const auto n = static_cast<std::size_t>(g.num_nodes());
  WeightMatrix a(n, std::vector<Entry>(n));
  for (int id = 0; id < g.num_arcs(); ++id) {
    const Arc& arc = g.arc(id);
    auto& cell = a[static_cast<std::size_t>(arc.src)]
                  [static_cast<std::size_t>(arc.dst)];
    cell = opt_plus(alg, cell, arc_weights[static_cast<std::size_t>(id)]);
  }
  return a;
}

ClosureResult kleene_closure(const Bisemigroup& alg, WeightMatrix a,
                             const compile::CompiledBisemigroup* cb) {
  const std::size_t n = a.size();
  for (const auto& row : a) MRT_REQUIRE(row.size() == n);

  if (cb != nullptr && cb->ok()) {
    FlatMatrix fa;
    if (encode_matrix(*cb, a, fa)) {
      return kleene_closure_flat(alg, a, *cb, std::move(fa));
    }
  }

  obs::ScopedSpan span("kleene_closure", "routing");
  std::atomic<std::uint64_t> product_steps{0};
  // Elimination over intermediate nodes; for ⊕-idempotent, nondecreasing
  // algebras cycles never improve a walk, so a[k][k]* collapses away.
  for (std::size_t k = 0; k < n; ++k) {
    // Rows other than k only read row k and write their own row, so they
    // relax in parallel. Row k both reads and rewrites itself; running it
    // alone between the two halves reproduces the sequential update order
    // exactly (rows below k see the pre-update row k, rows above k the
    // post-update one).
    const auto eliminate_rows = [&](std::size_t lo, std::size_t hi) {
      par::parallel_for(hi - lo, kRowGrain,
                        [&](std::size_t b, std::size_t e) {
        std::uint64_t local_steps = 0;  // flushed once per chunk
        for (std::size_t i = lo + b; i < lo + e; ++i) {
          if (!a[i][k]) continue;
          local_steps += n;
          for (std::size_t j = 0; j < n; ++j) {
            a[i][j] = opt_plus(alg, a[i][j],
                               opt_times(alg, a[i][k], a[k][j]));
          }
        }
        product_steps.fetch_add(local_steps, std::memory_order_relaxed);
      });
    };
    eliminate_rows(0, k);
    if (a[k][k]) {
      std::uint64_t steps = n;
      for (std::size_t j = 0; j < n; ++j) {
        a[k][j] = opt_plus(alg, a[k][j],
                           opt_times(alg, a[k][k], a[k][j]));
      }
      product_steps.fetch_add(steps, std::memory_order_relaxed);
    }
    eliminate_rows(k + 1, n);
  }
  // Adjoin the empty walk.
  if (auto one = alg.mul->identity()) {
    for (std::size_t i = 0; i < n; ++i) {
      a[i][i] = opt_plus(alg, a[i][i], Entry(*one));
    }
  }
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("closure.kleene_runs").add(1);
    reg.counter("closure.product_steps")
        .add(product_steps.load(std::memory_order_relaxed));
  }
  return ClosureResult{std::move(a), true, 0};
}

ClosureResult iterative_closure(const Bisemigroup& alg, const WeightMatrix& a,
                                const ClosureOptions& opts,
                                const compile::CompiledBisemigroup* cb) {
  const std::size_t n = a.size();
  for (const auto& row : a) MRT_REQUIRE(row.size() == n);

  if (cb != nullptr && cb->ok()) {
    FlatMatrix fa;
    if (encode_matrix(*cb, a, fa)) {
      auto one = alg.mul->identity();
      std::vector<std::uint64_t> idw(fa.stride, 0);
      bool id_ok = !one.has_value();
      if (one) id_ok = cb->encode(*one, idw.data());
      if (id_ok) {
        return iterative_closure_flat(alg, fa, *cb, idw.data(),
                                      one.has_value(), opts);
      }
    }
  }

  ClosureResult out;
  out.star = identity_matrix(alg, n);
  out.converged = false;

  obs::ScopedSpan span("iterative_closure", "routing");
  std::atomic<std::uint64_t> product_steps{0};
  for (out.iterations = 0; out.iterations < opts.max_power;
       ++out.iterations) {
    // next = I ⊕ A ⊗ star. Each output row depends only on `a` and the
    // previous `star`, so rows multiply in parallel.
    WeightMatrix next = identity_matrix(alg, n);
    par::parallel_for(n, kRowGrain, [&](std::size_t rb, std::size_t re) {
      std::uint64_t local_steps = 0;  // flushed once per chunk
      for (std::size_t i = rb; i < re; ++i) {
        for (std::size_t k = 0; k < n; ++k) {
          if (!a[i][k]) continue;
          local_steps += n;
          for (std::size_t j = 0; j < n; ++j) {
            next[i][j] = opt_plus(alg, next[i][j],
                                  opt_times(alg, a[i][k], out.star[k][j]));
          }
        }
      }
      product_steps.fetch_add(local_steps, std::memory_order_relaxed);
    });
    if (next == out.star) {
      out.converged = true;
      break;
    }
    out.star = std::move(next);
  }
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("closure.iterative_runs").add(1);
    reg.counter("closure.product_steps")
        .add(product_steps.load(std::memory_order_relaxed));
    reg.counter("closure.iterations")
        .add(static_cast<std::uint64_t>(out.iterations));
    reg.histogram("closure.iterations_to_fixpoint")
        .record(static_cast<std::uint64_t>(out.iterations));
  }
  return out;
}

}  // namespace mrt
