#include "mrt/routing/closure.hpp"

#include <atomic>

#include "mrt/obs/obs.hpp"
#include "mrt/par/par.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

using Entry = std::optional<Value>;

// Rows per parallel chunk in the matrix passes. Row relaxations within one
// elimination / multiplication step are independent, so they split across
// the pool without changing any entry.
constexpr std::size_t kRowGrain = 8;

// "No walk" behaves as the ⊕-identity and the ⊗-annihilator.
Entry opt_plus(const Bisemigroup& alg, const Entry& x, const Entry& y) {
  if (!x) return y;
  if (!y) return x;
  return alg.add->op(*x, *y);
}

Entry opt_times(const Bisemigroup& alg, const Entry& x, const Entry& y) {
  if (!x || !y) return std::nullopt;
  return alg.mul->op(*x, *y);
}

WeightMatrix identity_matrix(const Bisemigroup& alg, std::size_t n) {
  WeightMatrix id(n, std::vector<Entry>(n));
  if (auto one = alg.mul->identity()) {
    for (std::size_t i = 0; i < n; ++i) id[i][i] = *one;
  }
  return id;
}

}  // namespace

WeightMatrix arc_matrix(const Bisemigroup& alg, const Digraph& g,
                        const ValueVec& arc_weights) {
  MRT_REQUIRE(static_cast<int>(arc_weights.size()) == g.num_arcs());
  const auto n = static_cast<std::size_t>(g.num_nodes());
  WeightMatrix a(n, std::vector<Entry>(n));
  for (int id = 0; id < g.num_arcs(); ++id) {
    const Arc& arc = g.arc(id);
    auto& cell = a[static_cast<std::size_t>(arc.src)]
                  [static_cast<std::size_t>(arc.dst)];
    cell = opt_plus(alg, cell, arc_weights[static_cast<std::size_t>(id)]);
  }
  return a;
}

ClosureResult kleene_closure(const Bisemigroup& alg, WeightMatrix a) {
  const std::size_t n = a.size();
  for (const auto& row : a) MRT_REQUIRE(row.size() == n);

  obs::ScopedSpan span("kleene_closure", "routing");
  std::atomic<std::uint64_t> product_steps{0};
  // Elimination over intermediate nodes; for ⊕-idempotent, nondecreasing
  // algebras cycles never improve a walk, so a[k][k]* collapses away.
  for (std::size_t k = 0; k < n; ++k) {
    // Rows other than k only read row k and write their own row, so they
    // relax in parallel. Row k both reads and rewrites itself; running it
    // alone between the two halves reproduces the sequential update order
    // exactly (rows below k see the pre-update row k, rows above k the
    // post-update one).
    const auto eliminate_rows = [&](std::size_t lo, std::size_t hi) {
      par::parallel_for(hi - lo, kRowGrain,
                        [&](std::size_t b, std::size_t e) {
        std::uint64_t local_steps = 0;  // flushed once per chunk
        for (std::size_t i = lo + b; i < lo + e; ++i) {
          if (!a[i][k]) continue;
          local_steps += n;
          for (std::size_t j = 0; j < n; ++j) {
            a[i][j] = opt_plus(alg, a[i][j],
                               opt_times(alg, a[i][k], a[k][j]));
          }
        }
        product_steps.fetch_add(local_steps, std::memory_order_relaxed);
      });
    };
    eliminate_rows(0, k);
    if (a[k][k]) {
      std::uint64_t steps = n;
      for (std::size_t j = 0; j < n; ++j) {
        a[k][j] = opt_plus(alg, a[k][j],
                           opt_times(alg, a[k][k], a[k][j]));
      }
      product_steps.fetch_add(steps, std::memory_order_relaxed);
    }
    eliminate_rows(k + 1, n);
  }
  // Adjoin the empty walk.
  if (auto one = alg.mul->identity()) {
    for (std::size_t i = 0; i < n; ++i) {
      a[i][i] = opt_plus(alg, a[i][i], Entry(*one));
    }
  }
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("closure.kleene_runs").add(1);
    reg.counter("closure.product_steps")
        .add(product_steps.load(std::memory_order_relaxed));
  }
  return ClosureResult{std::move(a), true, 0};
}

ClosureResult iterative_closure(const Bisemigroup& alg, const WeightMatrix& a,
                                const ClosureOptions& opts) {
  const std::size_t n = a.size();
  for (const auto& row : a) MRT_REQUIRE(row.size() == n);

  ClosureResult out;
  out.star = identity_matrix(alg, n);
  out.converged = false;

  obs::ScopedSpan span("iterative_closure", "routing");
  std::atomic<std::uint64_t> product_steps{0};
  for (out.iterations = 0; out.iterations < opts.max_power;
       ++out.iterations) {
    // next = I ⊕ A ⊗ star. Each output row depends only on `a` and the
    // previous `star`, so rows multiply in parallel.
    WeightMatrix next = identity_matrix(alg, n);
    par::parallel_for(n, kRowGrain, [&](std::size_t rb, std::size_t re) {
      std::uint64_t local_steps = 0;  // flushed once per chunk
      for (std::size_t i = rb; i < re; ++i) {
        for (std::size_t k = 0; k < n; ++k) {
          if (!a[i][k]) continue;
          local_steps += n;
          for (std::size_t j = 0; j < n; ++j) {
            next[i][j] = opt_plus(alg, next[i][j],
                                  opt_times(alg, a[i][k], out.star[k][j]));
          }
        }
      }
      product_steps.fetch_add(local_steps, std::memory_order_relaxed);
    });
    if (next == out.star) {
      out.converged = true;
      break;
    }
    out.star = std::move(next);
  }
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("closure.iterative_runs").add(1);
    reg.counter("closure.product_steps")
        .add(product_steps.load(std::memory_order_relaxed));
    reg.counter("closure.iterations")
        .add(static_cast<std::uint64_t>(out.iterations));
    reg.histogram("closure.iterations_to_fixpoint")
        .record(static_cast<std::uint64_t>(out.iterations));
  }
  return out;
}

}  // namespace mrt
