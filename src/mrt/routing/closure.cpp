#include "mrt/routing/closure.hpp"

#include "mrt/obs/obs.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

using Entry = std::optional<Value>;

// "No walk" behaves as the ⊕-identity and the ⊗-annihilator.
Entry opt_plus(const Bisemigroup& alg, const Entry& x, const Entry& y) {
  if (!x) return y;
  if (!y) return x;
  return alg.add->op(*x, *y);
}

Entry opt_times(const Bisemigroup& alg, const Entry& x, const Entry& y) {
  if (!x || !y) return std::nullopt;
  return alg.mul->op(*x, *y);
}

WeightMatrix identity_matrix(const Bisemigroup& alg, std::size_t n) {
  WeightMatrix id(n, std::vector<Entry>(n));
  if (auto one = alg.mul->identity()) {
    for (std::size_t i = 0; i < n; ++i) id[i][i] = *one;
  }
  return id;
}

}  // namespace

WeightMatrix arc_matrix(const Bisemigroup& alg, const Digraph& g,
                        const ValueVec& arc_weights) {
  MRT_REQUIRE(static_cast<int>(arc_weights.size()) == g.num_arcs());
  const auto n = static_cast<std::size_t>(g.num_nodes());
  WeightMatrix a(n, std::vector<Entry>(n));
  for (int id = 0; id < g.num_arcs(); ++id) {
    const Arc& arc = g.arc(id);
    auto& cell = a[static_cast<std::size_t>(arc.src)]
                  [static_cast<std::size_t>(arc.dst)];
    cell = opt_plus(alg, cell, arc_weights[static_cast<std::size_t>(id)]);
  }
  return a;
}

ClosureResult kleene_closure(const Bisemigroup& alg, WeightMatrix a) {
  const std::size_t n = a.size();
  for (const auto& row : a) MRT_REQUIRE(row.size() == n);

  obs::ScopedSpan span("kleene_closure", "routing");
  std::uint64_t product_steps = 0;
  // Elimination over intermediate nodes; for ⊕-idempotent, nondecreasing
  // algebras cycles never improve a walk, so a[k][k]* collapses away.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!a[i][k]) continue;
      product_steps += n;
      for (std::size_t j = 0; j < n; ++j) {
        a[i][j] = opt_plus(alg, a[i][j],
                           opt_times(alg, a[i][k], a[k][j]));
      }
    }
  }
  // Adjoin the empty walk.
  if (auto one = alg.mul->identity()) {
    for (std::size_t i = 0; i < n; ++i) {
      a[i][i] = opt_plus(alg, a[i][i], Entry(*one));
    }
  }
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("closure.kleene_runs").add(1);
    reg.counter("closure.product_steps").add(product_steps);
  }
  return ClosureResult{std::move(a), true, 0};
}

ClosureResult iterative_closure(const Bisemigroup& alg, const WeightMatrix& a,
                                const ClosureOptions& opts) {
  const std::size_t n = a.size();
  for (const auto& row : a) MRT_REQUIRE(row.size() == n);

  ClosureResult out;
  out.star = identity_matrix(alg, n);
  out.converged = false;

  obs::ScopedSpan span("iterative_closure", "routing");
  std::uint64_t product_steps = 0;
  for (out.iterations = 0; out.iterations < opts.max_power;
       ++out.iterations) {
    // next = I ⊕ A ⊗ star
    WeightMatrix next = identity_matrix(alg, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < n; ++k) {
        if (!a[i][k]) continue;
        product_steps += n;
        for (std::size_t j = 0; j < n; ++j) {
          next[i][j] = opt_plus(alg, next[i][j],
                                opt_times(alg, a[i][k], out.star[k][j]));
        }
      }
    }
    if (next == out.star) {
      out.converged = true;
      break;
    }
    out.star = std::move(next);
  }
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("closure.iterative_runs").add(1);
    reg.counter("closure.product_steps").add(product_steps);
    reg.counter("closure.iterations")
        .add(static_cast<std::uint64_t>(out.iterations));
    reg.histogram("closure.iterations_to_fixpoint")
        .record(static_cast<std::uint64_t>(out.iterations));
  }
  return out;
}

}  // namespace mrt
