// k-best routing via the reduction idea — the paper's section VI outlook
// ("we hope that problems like finding k-best paths can be tackled using the
// reduction idea"), implemented.
//
// r_k keeps the k most-preferred *distinct* weights of a set (total
// preference order required). It satisfies Wongseelashote's reduction axioms
// (1) and (2) unconditionally, and axiom (3) exactly for monotone+injective
// functions — i.e. the M and N properties of Figure 2; the counterexample
// for non-injective monotone functions is in the tests, tying the k-best
// problem to the same property vocabulary as everything else.
//
// kbest_bellman iterates X_i ← r_k( ⋃ f_(i,j)(X_j) ∪ origin·[i = dest] ) to
// a fixed point: the k best distinct *walk* weights toward the destination.
#pragma once

#include "mrt/compile/engine.hpp"
#include "mrt/routing/labeled_graph.hpp"

namespace mrt {

/// The k most-preferred distinct elements (total preorder; deterministic
/// tie-break by canonical value order within equivalence classes).
ValueVec k_best(const PreorderSet& ord, const ValueVec& xs, int k);

struct KBestResult {
  /// Per node: up to k best distinct route weights, best first.
  std::vector<ValueVec> weights;
  /// Per node, parallel to `weights`: the witness arc achieving each entry —
  /// the smallest out-arc id whose one-arc extension of some successor entry
  /// equals the weight. -1 for the origin entry at the destination (which
  /// needs no arc) and for unachieved entries of a non-converged run.
  std::vector<std::vector<int>> witness_arcs;
  int iterations = 0;
  bool converged = false;
};

struct KBestOptions {
  int max_iterations = 300;
};

/// When `cn` is non-null and fully compiled, the iteration state lives as
/// flat weight words: pooling, reduction, and the fixed-point test all run
/// on words, with Values materialized only in the returned result (and for
/// the canonical tie-break between distinct-but-equivalent weights, which
/// decodes on demand). Results are byte-identical to the boxed path — the
/// encoding is injective, so word equality is value equality.
KBestResult kbest_bellman(const OrderTransform& alg, const LabeledGraph& net,
                          int dest, const Value& origin, int k,
                          const KBestOptions& opts = {},
                          const compile::CompiledNet* cn = nullptr);

/// Certificate check: every reported weight is either the origin (at dest)
/// or a one-arc extension of a reported weight of some successor — i.e. the
/// result is a genuine fixed point of the k-best Bellman operator.
bool kbest_certified(const OrderTransform& alg, const LabeledGraph& net,
                     int dest, const Value& origin, const KBestResult& r);

}  // namespace mrt
