#include "mrt/routing/dijkstra.hpp"

#include "mrt/obs/obs.hpp"
#include "mrt/support/require.hpp"

namespace mrt {

Routing dijkstra(const OrderTransform& alg, const LabeledGraph& net, int dest,
                 const Value& origin) {
  const int n = net.num_nodes();
  MRT_REQUIRE(dest >= 0 && dest < n);
  obs::ScopedSpan span("dijkstra", "routing");
  std::uint64_t scan_steps = 0;    // extract-min work (the heap-op analogue)
  std::uint64_t relaxations = 0;   // label applications along in-arcs
  std::uint64_t improvements = 0;  // relaxations that improved a route
  std::uint64_t settled = 0;
  Routing r;
  r.weight.assign(static_cast<std::size_t>(n), std::nullopt);
  r.next_arc.assign(static_cast<std::size_t>(n), -1);
  r.weight[static_cast<std::size_t>(dest)] = origin;

  std::vector<bool> settled_set(static_cast<std::size_t>(n), false);
  const PreorderSet& ord = *alg.ord;

  // O(V² + VE) selection loop: robust for arbitrary total preorders and the
  // graph sizes of the experiments; a d-heap variant adds nothing here
  // because cmp() dominates.
  for (;;) {
    int best = -1;
    for (int v = 0; v < n; ++v) {
      ++scan_steps;
      if (settled_set[static_cast<std::size_t>(v)] ||
          !r.weight[static_cast<std::size_t>(v)]) {
        continue;
      }
      if (best < 0 ||
          lt_of(ord.cmp(*r.weight[static_cast<std::size_t>(v)],
                        *r.weight[static_cast<std::size_t>(best)]))) {
        best = v;
      }
    }
    if (best < 0) break;
    settled_set[static_cast<std::size_t>(best)] = true;
    ++settled;
    const Value& wb = *r.weight[static_cast<std::size_t>(best)];

    // Relax arcs *into* best's routing state: an arc (u, best) lets u route
    // via best with weight f_label(w_best).
    for (int id : net.graph().in_arcs(best)) {
      const int u = net.graph().arc(id).src;
      if (settled_set[static_cast<std::size_t>(u)]) continue;
      ++relaxations;
      Value cand = alg.fns->apply(net.label(id), wb);
      auto& wu = r.weight[static_cast<std::size_t>(u)];
      if (!wu || lt_of(ord.cmp(cand, *wu))) {
        ++improvements;
        wu = std::move(cand);
        r.next_arc[static_cast<std::size_t>(u)] = id;
      }
    }
  }

  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("dijkstra.calls").add(1);
    reg.counter("dijkstra.scan_steps").add(scan_steps);
    reg.counter("dijkstra.relaxations").add(relaxations);
    reg.counter("dijkstra.improvements").add(improvements);
    reg.counter("dijkstra.settled").add(settled);
  }
  return r;
}

}  // namespace mrt
