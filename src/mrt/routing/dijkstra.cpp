#include "mrt/routing/dijkstra.hpp"

#include <cstdint>
#include <vector>

#include "mrt/obs/obs.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

struct Counters {
  std::uint64_t scan_steps = 0;    // extract-min work (the heap-op analogue)
  std::uint64_t relaxations = 0;   // label applications along in-arcs
  std::uint64_t improvements = 0;  // relaxations that improved a route
  std::uint64_t settled = 0;

  void flush() const {
    if (!obs::enabled()) return;
    obs::Registry& reg = obs::registry();
    reg.counter("dijkstra.calls").add(1);
    reg.counter("dijkstra.scan_steps").add(scan_steps);
    reg.counter("dijkstra.relaxations").add(relaxations);
    reg.counter("dijkstra.improvements").add(improvements);
    reg.counter("dijkstra.settled").add(settled);
  }
};

Routing dijkstra_boxed(const OrderTransform& alg, const LabeledGraph& net,
                       int dest, const Value& origin) {
  const int n = net.num_nodes();
  obs::ScopedSpan span("dijkstra", "routing");
  Counters c;
  Routing r;
  r.weight.assign(static_cast<std::size_t>(n), std::nullopt);
  r.next_arc.assign(static_cast<std::size_t>(n), -1);
  r.weight[static_cast<std::size_t>(dest)] = origin;

  std::vector<bool> settled_set(static_cast<std::size_t>(n), false);
  const PreorderSet& ord = *alg.ord;

  // O(V² + VE) selection loop: robust for arbitrary total preorders and the
  // graph sizes of the experiments; a d-heap variant adds nothing here
  // because cmp() dominates.
  for (;;) {
    int best = -1;
    for (int v = 0; v < n; ++v) {
      ++c.scan_steps;
      if (settled_set[static_cast<std::size_t>(v)] ||
          !r.weight[static_cast<std::size_t>(v)]) {
        continue;
      }
      if (best < 0 ||
          lt_of(ord.cmp(*r.weight[static_cast<std::size_t>(v)],
                        *r.weight[static_cast<std::size_t>(best)]))) {
        best = v;
      }
    }
    if (best < 0) break;
    settled_set[static_cast<std::size_t>(best)] = true;
    ++c.settled;
    const Value& wb = *r.weight[static_cast<std::size_t>(best)];

    // Relax arcs *into* best's routing state: an arc (u, best) lets u route
    // via best with weight f_label(w_best).
    for (int id : net.graph().in_arcs(best)) {
      const int u = net.graph().arc(id).src;
      if (settled_set[static_cast<std::size_t>(u)]) continue;
      ++c.relaxations;
      Value cand = alg.fns->apply(net.label(id), wb);
      auto& wu = r.weight[static_cast<std::size_t>(u)];
      if (!wu || lt_of(ord.cmp(cand, *wu))) {
        ++c.improvements;
        wu = std::move(cand);
        r.next_arc[static_cast<std::size_t>(u)] = id;
      }
    }
  }

  c.flush();
  return r;
}

// Same loop, same tie-breaks, flat weights: selection and relaxation touch
// only fixed-size word vectors; Values materialize only in the returned
// Routing.
Routing dijkstra_flat(const LabeledGraph& net, int dest,
                      const std::uint64_t* origin_w,
                      const compile::CompiledNet& cn) {
  const int n = net.num_nodes();
  const compile::CompiledAlgebra& ca = cn.algebra();
  const std::size_t stride = static_cast<std::size_t>(cn.words());
  obs::ScopedSpan span("dijkstra", "routing");
  Counters c;

  std::vector<std::uint64_t> w(static_cast<std::size_t>(n) * stride, 0);
  std::vector<std::uint8_t> present(static_cast<std::size_t>(n), 0);
  std::vector<int> next_arc(static_cast<std::size_t>(n), -1);
  std::vector<bool> settled_set(static_cast<std::size_t>(n), false);
  auto wp = [&](int v) { return w.data() + static_cast<std::size_t>(v) * stride; };

  for (std::size_t k = 0; k < stride; ++k)
    wp(dest)[k] = origin_w[k];
  present[static_cast<std::size_t>(dest)] = 1;

  std::vector<std::uint64_t> cand(stride);
  for (;;) {
    int best = -1;
    for (int v = 0; v < n; ++v) {
      ++c.scan_steps;
      if (settled_set[static_cast<std::size_t>(v)] ||
          !present[static_cast<std::size_t>(v)]) {
        continue;
      }
      if (best < 0 || lt_of(ca.compare(wp(v), wp(best)))) best = v;
    }
    if (best < 0) break;
    settled_set[static_cast<std::size_t>(best)] = true;
    ++c.settled;

    for (int id : net.graph().in_arcs(best)) {
      const int u = net.graph().arc(id).src;
      if (settled_set[static_cast<std::size_t>(u)]) continue;
      ++c.relaxations;
      for (std::size_t k = 0; k < stride; ++k) cand[k] = wp(best)[k];
      ca.apply(cn.label(id), cand.data());
      if (!present[static_cast<std::size_t>(u)] ||
          lt_of(ca.compare(cand.data(), wp(u)))) {
        ++c.improvements;
        for (std::size_t k = 0; k < stride; ++k) wp(u)[k] = cand[k];
        present[static_cast<std::size_t>(u)] = 1;
        next_arc[static_cast<std::size_t>(u)] = id;
      }
    }
  }

  Routing r;
  r.weight.assign(static_cast<std::size_t>(n), std::nullopt);
  r.next_arc = std::move(next_arc);
  for (int v = 0; v < n; ++v) {
    if (present[static_cast<std::size_t>(v)])
      r.weight[static_cast<std::size_t>(v)] = ca.decode(wp(v));
  }
  c.flush();
  return r;
}

}  // namespace

Routing dijkstra(const OrderTransform& alg, const LabeledGraph& net, int dest,
                 const Value& origin, const compile::CompiledNet* cn) {
  const int n = net.num_nodes();
  MRT_REQUIRE(dest >= 0 && dest < n);
  static obs::Histogram& solve_ns =
      obs::registry().histogram("dijkstra.solve_ns");
  obs::ScopedTimer timer(solve_ns);
  if (cn != nullptr && cn->ok()) {
    std::vector<std::uint64_t> origin_w(static_cast<std::size_t>(cn->words()),
                                        0);
    if (cn->algebra().encode(origin, origin_w.data()))
      return dijkstra_flat(net, dest, origin_w.data(), *cn);
  }
  return dijkstra_boxed(alg, net, dest, origin);
}

}  // namespace mrt
