#include "mrt/routing/dijkstra.hpp"

#include "mrt/support/require.hpp"

namespace mrt {

Routing dijkstra(const OrderTransform& alg, const LabeledGraph& net, int dest,
                 const Value& origin) {
  const int n = net.num_nodes();
  MRT_REQUIRE(dest >= 0 && dest < n);
  Routing r;
  r.weight.assign(static_cast<std::size_t>(n), std::nullopt);
  r.next_arc.assign(static_cast<std::size_t>(n), -1);
  r.weight[static_cast<std::size_t>(dest)] = origin;

  std::vector<bool> settled(static_cast<std::size_t>(n), false);
  const PreorderSet& ord = *alg.ord;

  // O(V² + VE) selection loop: robust for arbitrary total preorders and the
  // graph sizes of the experiments; a d-heap variant adds nothing here
  // because cmp() dominates.
  for (;;) {
    int best = -1;
    for (int v = 0; v < n; ++v) {
      if (settled[static_cast<std::size_t>(v)] ||
          !r.weight[static_cast<std::size_t>(v)]) {
        continue;
      }
      if (best < 0 ||
          lt_of(ord.cmp(*r.weight[static_cast<std::size_t>(v)],
                        *r.weight[static_cast<std::size_t>(best)]))) {
        best = v;
      }
    }
    if (best < 0) break;
    settled[static_cast<std::size_t>(best)] = true;
    const Value& wb = *r.weight[static_cast<std::size_t>(best)];

    // Relax arcs *into* best's routing state: an arc (u, best) lets u route
    // via best with weight f_label(w_best).
    for (int id : net.graph().in_arcs(best)) {
      const int u = net.graph().arc(id).src;
      if (settled[static_cast<std::size_t>(u)]) continue;
      Value cand = alg.fns->apply(net.label(id), wb);
      auto& wu = r.weight[static_cast<std::size_t>(u)];
      if (!wu || lt_of(ord.cmp(cand, *wu))) {
        wu = std::move(cand);
        r.next_arc[static_cast<std::size_t>(u)] = id;
      }
    }
  }
  return r;
}

}  // namespace mrt
