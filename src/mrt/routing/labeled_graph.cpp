#include "mrt/routing/labeled_graph.hpp"

#include <utility>

#include "mrt/support/require.hpp"

namespace mrt {

LabeledGraph::LabeledGraph(Digraph g, ValueVec arc_labels)
    : g_(std::move(g)), labels_(std::move(arc_labels)) {
  MRT_REQUIRE(static_cast<int>(labels_.size()) == g_.num_arcs());
}

const Value& LabeledGraph::label(int arc_id) const {
  MRT_REQUIRE(arc_id >= 0 &&
              static_cast<std::size_t>(arc_id) < labels_.size());
  return labels_[static_cast<std::size_t>(arc_id)];
}

void LabeledGraph::relabel(int arc_id, Value label) {
  MRT_REQUIRE(arc_id >= 0 &&
              static_cast<std::size_t>(arc_id) < labels_.size());
  labels_[static_cast<std::size_t>(arc_id)] = std::move(label);
}

LabeledGraph label_randomly(const OrderTransform& alg, Digraph g, Rng& rng) {
  const int m = g.num_arcs();
  ValueVec labels =
      m > 0 ? alg.fns->sample_labels(rng, m) : ValueVec{};
  return LabeledGraph(std::move(g), std::move(labels));
}

std::optional<std::vector<int>> forwarding_path(const LabeledGraph& net,
                                                const Routing& r, int src,
                                                int dest) {
  std::vector<int> path{src};
  std::vector<bool> seen(static_cast<std::size_t>(net.num_nodes()), false);
  int v = src;
  seen[static_cast<std::size_t>(v)] = true;
  while (v != dest) {
    const int arc = r.next_arc[static_cast<std::size_t>(v)];
    if (arc < 0) return std::nullopt;  // dead end
    v = net.graph().arc(arc).dst;
    if (seen[static_cast<std::size_t>(v)]) return std::nullopt;  // loop
    seen[static_cast<std::size_t>(v)] = true;
    path.push_back(v);
  }
  return path;
}

}  // namespace mrt
