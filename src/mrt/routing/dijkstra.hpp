// Generalized Dijkstra over an order transform (Sobrinho's generalization;
// the paper's "global optima" algorithm for monotone algebras).
//
// Requirements for correctness, all *measurable* through the property
// system: the preference order must be total, the algebra nondecreasing
// (ND — no "negative arcs"), and monotone (M) for the greedy choice to be
// globally optimal. The experiment suite demonstrates both the guarantee
// and its failure when M does not hold (the paper's bandwidth ⃗× delay
// example).
#pragma once

#include "mrt/compile/engine.hpp"
#include "mrt/routing/labeled_graph.hpp"

namespace mrt {

/// Single-destination route computation: weights of best paths from every
/// node *to* `dest`, where `dest` originates `origin`.
/// Ties (equivalent candidates) break toward the smaller node id, making
/// the result deterministic.
///
/// When `cn` is non-null and fully compiled, the selection/relaxation loops
/// run on flat weight words (see docs/COMPILE.md); results are identical to
/// the boxed path — decoding happens only at the returned Routing boundary.
Routing dijkstra(const OrderTransform& alg, const LabeledGraph& net, int dest,
                 const Value& origin,
                 const compile::CompiledNet* cn = nullptr);

}  // namespace mrt
