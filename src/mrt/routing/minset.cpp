#include "mrt/routing/minset.hpp"

#include "mrt/support/require.hpp"

namespace mrt {

MinSetResult minset_bellman(const OrderTransform& alg, const LabeledGraph& net,
                            int dest, const Value& origin,
                            const MinSetOptions& opts) {
  const int n = net.num_nodes();
  MRT_REQUIRE(dest >= 0 && dest < n);
  MinSetResult out;
  out.weights.assign(static_cast<std::size_t>(n), {});
  out.weights[static_cast<std::size_t>(dest)] = {origin};

  for (out.iterations = 0; out.iterations < opts.max_iterations;
       ++out.iterations) {
    bool changed = false;
    std::vector<ValueVec> next(static_cast<std::size_t>(n));
    for (int u = 0; u < n; ++u) {
      ValueVec pool;
      if (u == dest) pool.push_back(origin);
      for (int id : net.graph().out_arcs(u)) {
        const int v = net.graph().arc(id).dst;
        for (const Value& w : out.weights[static_cast<std::size_t>(v)]) {
          pool.push_back(alg.fns->apply(net.label(id), w));
        }
      }
      ValueVec reduced = min_set(*alg.ord, pool);
      if (reduced.size() > opts.max_set_size) {
        out.converged = false;
        out.weights[static_cast<std::size_t>(u)] = std::move(reduced);
        return out;  // blowup: report what we have
      }
      if (!(reduced == out.weights[static_cast<std::size_t>(u)])) {
        changed = true;
      }
      next[static_cast<std::size_t>(u)] = std::move(reduced);
    }
    out.weights = std::move(next);
    if (!changed) {
      out.converged = true;
      break;
    }
  }
  return out;
}

}  // namespace mrt
