#include "mrt/routing/kbest.hpp"

#include <algorithm>

#include "mrt/obs/obs.hpp"
#include "mrt/support/require.hpp"

namespace mrt {

ValueVec k_best(const PreorderSet& ord, const ValueVec& xs, int k) {
  MRT_REQUIRE(k >= 1);
  ValueVec sorted = normalize_set(xs);  // dedup exact duplicates
  std::sort(sorted.begin(), sorted.end(),
            [&ord](const Value& a, const Value& b) {
              const Cmp c = ord.cmp(a, b);
              MRT_REQUIRE(c != Cmp::Incomp);  // total order required
              if (c == Cmp::Less) return true;
              if (c == Cmp::Greater) return false;
              return a.compare(b) < 0;  // deterministic within a class
            });
  if (sorted.size() > static_cast<std::size_t>(k)) {
    sorted.resize(static_cast<std::size_t>(k));
  }
  return sorted;
}

namespace {

struct KBestCounters {
  std::uint64_t relaxations = 0;
  std::uint64_t reductions = 0;
};

KBestResult kbest_bellman_boxed(const OrderTransform& alg,
                                const LabeledGraph& net, int dest,
                                const Value& origin, int k,
                                const KBestOptions& opts, KBestCounters& c) {
  const int n = net.num_nodes();
  KBestResult out;
  out.weights.assign(static_cast<std::size_t>(n), {});
  out.weights[static_cast<std::size_t>(dest)] = {origin};

  for (out.iterations = 0; out.iterations < opts.max_iterations;
       ++out.iterations) {
    bool changed = false;
    std::vector<ValueVec> next(static_cast<std::size_t>(n));
    for (int u = 0; u < n; ++u) {
      ValueVec pool;
      if (u == dest) pool.push_back(origin);
      for (int id : net.graph().out_arcs(u)) {
        const int v = net.graph().arc(id).dst;
        for (const Value& w : out.weights[static_cast<std::size_t>(v)]) {
          ++c.relaxations;
          pool.push_back(alg.fns->apply(net.label(id), w));
        }
      }
      ++c.reductions;
      ValueVec reduced = k_best(*alg.ord, pool, k);
      if (!(reduced == out.weights[static_cast<std::size_t>(u)])) {
        changed = true;
      }
      next[static_cast<std::size_t>(u)] = std::move(reduced);
    }
    out.weights = std::move(next);
    if (!changed) {
      out.converged = true;
      break;
    }
  }
  return out;
}

// Flat iteration state: per node a concatenation of up-to-k weight words.
// The reduction sorts entry indices with the same comparator as k_best —
// compiled compare first, canonical Value order within an equivalence class
// (decoded on demand; the encoding is injective, so exact duplicates are
// exactly word-equal and land adjacent).
KBestResult kbest_bellman_flat(const LabeledGraph& net, int dest,
                               const std::uint64_t* origin_w, int k,
                               const KBestOptions& opts,
                               const compile::CompiledNet& cn,
                               KBestCounters& c) {
  const int n = net.num_nodes();
  const compile::CompiledAlgebra& ca = cn.algebra();
  const std::size_t stride = static_cast<std::size_t>(cn.words());

  using List = std::vector<std::uint64_t>;  // size() / stride entries
  std::vector<List> cur(static_cast<std::size_t>(n));
  cur[static_cast<std::size_t>(dest)].assign(origin_w, origin_w + stride);

  auto entry_less = [&](const std::uint64_t* a, const std::uint64_t* b) {
    const Cmp cmp = ca.compare(a, b);
    MRT_REQUIRE(cmp != Cmp::Incomp);  // total order required
    if (cmp == Cmp::Less) return true;
    if (cmp == Cmp::Greater) return false;
    return ca.decode(a).compare(ca.decode(b)) < 0;
  };
  auto entry_eq = [&](const std::uint64_t* a, const std::uint64_t* b) {
    for (std::size_t i = 0; i < stride; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  };

  KBestResult out;
  std::vector<std::uint64_t> pool;
  std::vector<std::size_t> order;
  for (out.iterations = 0; out.iterations < opts.max_iterations;
       ++out.iterations) {
    bool changed = false;
    std::vector<List> next(static_cast<std::size_t>(n));
    for (int u = 0; u < n; ++u) {
      pool.clear();
      if (u == dest) pool.insert(pool.end(), origin_w, origin_w + stride);
      for (int id : net.graph().out_arcs(u)) {
        const int v = net.graph().arc(id).dst;
        const List& lv = cur[static_cast<std::size_t>(v)];
        for (std::size_t e = 0; e + stride <= lv.size(); e += stride) {
          ++c.relaxations;
          const std::size_t at = pool.size();
          pool.insert(pool.end(), lv.begin() + static_cast<std::ptrdiff_t>(e),
                      lv.begin() + static_cast<std::ptrdiff_t>(e + stride));
          ca.apply(cn.label(id), pool.data() + at);
        }
      }
      ++c.reductions;
      const std::size_t entries = pool.size() / stride;
      order.resize(entries);
      for (std::size_t i = 0; i < entries; ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return entry_less(pool.data() + a * stride, pool.data() + b * stride);
      });
      List reduced;
      for (std::size_t i = 0;
           i < entries && reduced.size() < static_cast<std::size_t>(k) * stride;
           ++i) {
        const std::uint64_t* e = pool.data() + order[i] * stride;
        if (!reduced.empty() && entry_eq(e, reduced.data() + reduced.size() - stride)) {
          continue;  // exact duplicate of the previously kept entry
        }
        reduced.insert(reduced.end(), e, e + stride);
      }
      if (!(reduced == cur[static_cast<std::size_t>(u)])) changed = true;
      next[static_cast<std::size_t>(u)] = std::move(reduced);
    }
    cur = std::move(next);
    if (!changed) {
      out.converged = true;
      break;
    }
  }

  out.weights.assign(static_cast<std::size_t>(n), {});
  for (int u = 0; u < n; ++u) {
    const List& lu = cur[static_cast<std::size_t>(u)];
    for (std::size_t e = 0; e + stride <= lu.size(); e += stride) {
      out.weights[static_cast<std::size_t>(u)].push_back(
          ca.decode(lu.data() + e));
    }
  }
  return out;
}

// Post-hoc witness scan, the mechanical dual of kbest_certified: for each
// kept entry, the smallest out-arc id whose one-arc extension of some
// successor entry reproduces it (the origin entry at dest takes precedence
// and gets -1, exactly as the certificate skips it).
void fill_witness_arcs(const OrderTransform& alg, const LabeledGraph& net,
                       int dest, const Value& origin, KBestResult& r) {
  const int n = net.num_nodes();
  r.witness_arcs.assign(static_cast<std::size_t>(n), {});
  for (int u = 0; u < n; ++u) {
    const ValueVec& wu = r.weights[static_cast<std::size_t>(u)];
    std::vector<int>& au = r.witness_arcs[static_cast<std::size_t>(u)];
    au.assign(wu.size(), -1);
    for (std::size_t i = 0; i < wu.size(); ++i) {
      if (u == dest && wu[i] == origin) continue;
      for (int id : net.graph().out_arcs(u)) {
        const int v = net.graph().arc(id).dst;
        bool achieved = false;
        for (const Value& wv : r.weights[static_cast<std::size_t>(v)]) {
          if (alg.fns->apply(net.label(id), wv) == wu[i]) {
            achieved = true;
            break;
          }
        }
        if (achieved) {
          au[i] = id;  // out_arcs is ascending, so the first hit is smallest
          break;
        }
      }
    }
  }
}

}  // namespace

KBestResult kbest_bellman(const OrderTransform& alg, const LabeledGraph& net,
                          int dest, const Value& origin, int k,
                          const KBestOptions& opts,
                          const compile::CompiledNet* cn) {
  const int n = net.num_nodes();
  MRT_REQUIRE(dest >= 0 && dest < n && k >= 1);
  obs::ScopedSpan span("kbest_bellman", "routing");
  KBestCounters c;
  KBestResult out;
  bool flat = false;
  if (cn != nullptr && cn->ok()) {
    std::vector<std::uint64_t> origin_w(static_cast<std::size_t>(cn->words()),
                                        0);
    if (cn->algebra().encode(origin, origin_w.data())) {
      out = kbest_bellman_flat(net, dest, origin_w.data(), k, opts, *cn, c);
      flat = true;
    }
  }
  if (!flat) out = kbest_bellman_boxed(alg, net, dest, origin, k, opts, c);
  fill_witness_arcs(alg, net, dest, origin, out);

  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("kbest.runs").add(1);
    reg.counter("kbest.compiled_runs").add(flat ? 1 : 0);
    reg.counter("kbest.relaxations").add(c.relaxations);
    reg.counter("kbest.reductions").add(c.reductions);
    reg.counter("kbest.iterations")
        .add(static_cast<std::uint64_t>(out.iterations));
    reg.histogram("kbest.iterations_to_fixpoint")
        .record(static_cast<std::uint64_t>(out.iterations));
  }
  return out;
}

bool kbest_certified(const OrderTransform& alg, const LabeledGraph& net,
                     int dest, const Value& origin, const KBestResult& r) {
  for (int u = 0; u < net.num_nodes(); ++u) {
    for (const Value& w : r.weights[static_cast<std::size_t>(u)]) {
      if (u == dest && w == origin) continue;
      bool achieved = false;
      for (int id : net.graph().out_arcs(u)) {
        const int v = net.graph().arc(id).dst;
        for (const Value& wv : r.weights[static_cast<std::size_t>(v)]) {
          if (alg.fns->apply(net.label(id), wv) == w) {
            achieved = true;
            break;
          }
        }
        if (achieved) break;
      }
      if (!achieved) return false;
    }
  }
  return true;
}

}  // namespace mrt
