#include "mrt/routing/kbest.hpp"

#include <algorithm>

#include "mrt/obs/obs.hpp"
#include "mrt/support/require.hpp"

namespace mrt {

ValueVec k_best(const PreorderSet& ord, const ValueVec& xs, int k) {
  MRT_REQUIRE(k >= 1);
  ValueVec sorted = normalize_set(xs);  // dedup exact duplicates
  std::sort(sorted.begin(), sorted.end(),
            [&ord](const Value& a, const Value& b) {
              const Cmp c = ord.cmp(a, b);
              MRT_REQUIRE(c != Cmp::Incomp);  // total order required
              if (c == Cmp::Less) return true;
              if (c == Cmp::Greater) return false;
              return a.compare(b) < 0;  // deterministic within a class
            });
  if (sorted.size() > static_cast<std::size_t>(k)) {
    sorted.resize(static_cast<std::size_t>(k));
  }
  return sorted;
}

KBestResult kbest_bellman(const OrderTransform& alg, const LabeledGraph& net,
                          int dest, const Value& origin, int k,
                          const KBestOptions& opts) {
  const int n = net.num_nodes();
  MRT_REQUIRE(dest >= 0 && dest < n && k >= 1);
  KBestResult out;
  out.weights.assign(static_cast<std::size_t>(n), {});
  out.weights[static_cast<std::size_t>(dest)] = {origin};

  obs::ScopedSpan span("kbest_bellman", "routing");
  std::uint64_t relaxations = 0;
  std::uint64_t reductions = 0;
  for (out.iterations = 0; out.iterations < opts.max_iterations;
       ++out.iterations) {
    bool changed = false;
    std::vector<ValueVec> next(static_cast<std::size_t>(n));
    for (int u = 0; u < n; ++u) {
      ValueVec pool;
      if (u == dest) pool.push_back(origin);
      for (int id : net.graph().out_arcs(u)) {
        const int v = net.graph().arc(id).dst;
        for (const Value& w : out.weights[static_cast<std::size_t>(v)]) {
          ++relaxations;
          pool.push_back(alg.fns->apply(net.label(id), w));
        }
      }
      ++reductions;
      ValueVec reduced = k_best(*alg.ord, pool, k);
      if (!(reduced == out.weights[static_cast<std::size_t>(u)])) {
        changed = true;
      }
      next[static_cast<std::size_t>(u)] = std::move(reduced);
    }
    out.weights = std::move(next);
    if (!changed) {
      out.converged = true;
      break;
    }
  }

  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("kbest.runs").add(1);
    reg.counter("kbest.relaxations").add(relaxations);
    reg.counter("kbest.reductions").add(reductions);
    reg.counter("kbest.iterations")
        .add(static_cast<std::uint64_t>(out.iterations));
    reg.histogram("kbest.iterations_to_fixpoint")
        .record(static_cast<std::uint64_t>(out.iterations));
  }
  return out;
}

bool kbest_certified(const OrderTransform& alg, const LabeledGraph& net,
                     int dest, const Value& origin, const KBestResult& r) {
  for (int u = 0; u < net.num_nodes(); ++u) {
    for (const Value& w : r.weights[static_cast<std::size_t>(u)]) {
      if (u == dest && w == origin) continue;
      bool achieved = false;
      for (int id : net.graph().out_arcs(u)) {
        const int v = net.graph().arc(id).dst;
        for (const Value& wv : r.weights[static_cast<std::size_t>(v)]) {
          if (alg.fns->apply(net.label(id), wv) == w) {
            achieved = true;
            break;
          }
        }
        if (achieved) break;
      }
      if (!achieved) return false;
    }
  }
  return true;
}

}  // namespace mrt
