// Ground-truth validators ("the proof component, by measurement"):
// exhaustive path enumeration decides global optimality on small graphs,
// and the Bellman fixed-point condition decides local optimality (stability)
// of any routing.
#pragma once

#include "mrt/routing/labeled_graph.hpp"

namespace mrt {

struct PathEnumOptions {
  std::size_t max_paths = 200'000;
};

/// Weights of *all* simple paths src → dest (dest originating `origin`).
/// The trivial path (src == dest) contributes `origin`.
/// Throws if the path count exceeds the budget.
ValueVec all_path_weights(const OrderTransform& alg, const LabeledGraph& net,
                          int src, int dest, const Value& origin,
                          const PathEnumOptions& opts = {});

/// min_≲ over all simple-path weights: the globally optimal weight set.
ValueVec global_min_set(const OrderTransform& alg, const LabeledGraph& net,
                        int src, int dest, const Value& origin,
                        const PathEnumOptions& opts = {});

/// Is `w` globally optimal for src → dest, i.e. ≲-minimal among all simple
/// path weights and actually achieved (equivalent to some path weight)?
bool is_globally_optimal(const OrderTransform& alg, const LabeledGraph& net,
                         int src, int dest, const Value& origin,
                         const Value& w, const PathEnumOptions& opts = {});

/// Local optimality (stability): every node's route is a best extension of
/// its neighbours' routes — the Bellman fixed-point / Sobrinho "in
/// equilibrium" condition. Unreachable nodes must have no candidates.
/// With `drop_top_routes`, candidates whose weight is ⊤ count as no route
/// (Sobrinho's φ semantics, matching SimOptions::drop_top_routes).
bool is_locally_optimal(const OrderTransform& alg, const LabeledGraph& net,
                        int dest, const Value& origin, const Routing& r,
                        bool drop_top_routes = false);

/// All nodes with a route can actually forward to dest without loops.
bool forwarding_consistent(const LabeledGraph& net, const Routing& r,
                           int dest);

// ---------------------------------------------------------------------------
// Fault-aware oracles (mrt::chaos entry points)
// ---------------------------------------------------------------------------

/// The surviving topology after a fault campaign: which arcs are usable and
/// which nodes are up. Empty masks mean "everything alive" so the fault-free
/// validators are the special case of these.
struct SurvivingTopology {
  std::vector<bool> arc_alive;  ///< per arc id; empty = all alive
  std::vector<bool> node_up;    ///< per node; empty = all up

  bool arc_ok(int id) const {
    return arc_alive.empty() || arc_alive[static_cast<std::size_t>(id)];
  }
  bool node_ok(int v) const {
    return node_up.empty() || node_up[static_cast<std::size_t>(v)];
  }
};

/// Local optimality (stability) restricted to the surviving topology:
/// candidates are drawn only over alive arcs between up nodes, and crashed
/// nodes must carry no route at all. This is the post-fault quiescence
/// oracle of the chaos campaigns.
bool is_locally_optimal(const OrderTransform& alg, const LabeledGraph& net,
                        int dest, const Value& origin, const Routing& r,
                        const SurvivingTopology& topo,
                        bool drop_top_routes = false);

/// "No stale-RIB ghosts": every selected route must be the exact extension
/// of the next hop's *current* route over an alive arc — weight[u] ==
/// f_label(weight[head(next_arc[u])]) — and the (up) destination must carry
/// exactly its originated weight. A converged simulator state violating this
/// kept routing state that its neighbour no longer advertises.
bool routes_are_coherent_extensions(const OrderTransform& alg,
                                    const LabeledGraph& net, int dest,
                                    const Value& origin, const Routing& r,
                                    const SurvivingTopology& topo = {},
                                    std::string* why = nullptr);

/// Withdrawal completeness: every node with no surviving arc-path to an up
/// destination must have no route (a crashed destination withdraws
/// everything). The converse is deliberately not required — policy algebras
/// (⊤-filtering, valley-free export) legitimately deny reachable nodes.
bool unreachable_nodes_have_no_route(const LabeledGraph& net, int dest,
                                     const Routing& r,
                                     const SurvivingTopology& topo = {},
                                     std::string* why = nullptr);

}  // namespace mrt
