// Ground-truth validators ("the proof component, by measurement"):
// exhaustive path enumeration decides global optimality on small graphs,
// and the Bellman fixed-point condition decides local optimality (stability)
// of any routing.
#pragma once

#include "mrt/routing/labeled_graph.hpp"

namespace mrt {

struct PathEnumOptions {
  std::size_t max_paths = 200'000;
};

/// Weights of *all* simple paths src → dest (dest originating `origin`).
/// The trivial path (src == dest) contributes `origin`.
/// Throws if the path count exceeds the budget.
ValueVec all_path_weights(const OrderTransform& alg, const LabeledGraph& net,
                          int src, int dest, const Value& origin,
                          const PathEnumOptions& opts = {});

/// min_≲ over all simple-path weights: the globally optimal weight set.
ValueVec global_min_set(const OrderTransform& alg, const LabeledGraph& net,
                        int src, int dest, const Value& origin,
                        const PathEnumOptions& opts = {});

/// Is `w` globally optimal for src → dest, i.e. ≲-minimal among all simple
/// path weights and actually achieved (equivalent to some path weight)?
bool is_globally_optimal(const OrderTransform& alg, const LabeledGraph& net,
                         int src, int dest, const Value& origin,
                         const Value& w, const PathEnumOptions& opts = {});

/// Local optimality (stability): every node's route is a best extension of
/// its neighbours' routes — the Bellman fixed-point / Sobrinho "in
/// equilibrium" condition. Unreachable nodes must have no candidates.
/// With `drop_top_routes`, candidates whose weight is ⊤ count as no route
/// (Sobrinho's φ semantics, matching SimOptions::drop_top_routes).
bool is_locally_optimal(const OrderTransform& alg, const LabeledGraph& net,
                        int dest, const Value& origin, const Routing& r,
                        bool drop_top_routes = false);

/// All nodes with a route can actually forward to dest without loops.
bool forwarding_consistent(const LabeledGraph& net, const Routing& r,
                           int dest);

}  // namespace mrt
