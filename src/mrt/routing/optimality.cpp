#include "mrt/routing/optimality.hpp"

#include <stdexcept>

#include "mrt/support/require.hpp"

namespace mrt {
namespace {

// DFS over simple paths src → dest collecting arc-id sequences' weights.
// Weights compose right-to-left, so we collect paths first and then fold;
// to avoid quadratic recomputation we fold during backtracking instead:
// weight(prefix + arc + suffix) needs the suffix value, so we enumerate from
// src and evaluate by recomputing along the completed path (paths are short
// on the graphs the validators run on).
void dfs(const OrderTransform& alg, const LabeledGraph& net, int v, int dest,
         const Value& origin, std::vector<int>& arc_stack,
         std::vector<bool>& on_path, ValueVec& out,
         const PathEnumOptions& opts) {
  if (v == dest) {
    Value w = origin;
    for (std::size_t i = arc_stack.size(); i-- > 0;) {
      w = alg.fns->apply(net.label(arc_stack[i]), w);
    }
    out.push_back(std::move(w));
    if (out.size() > opts.max_paths) {
      throw std::runtime_error("all_path_weights: path budget exceeded");
    }
    return;
  }
  for (int id : net.graph().out_arcs(v)) {
    const int u = net.graph().arc(id).dst;
    if (on_path[static_cast<std::size_t>(u)]) continue;
    on_path[static_cast<std::size_t>(u)] = true;
    arc_stack.push_back(id);
    dfs(alg, net, u, dest, origin, arc_stack, on_path, out, opts);
    arc_stack.pop_back();
    on_path[static_cast<std::size_t>(u)] = false;
  }
}

}  // namespace

ValueVec all_path_weights(const OrderTransform& alg, const LabeledGraph& net,
                          int src, int dest, const Value& origin,
                          const PathEnumOptions& opts) {
  const int n = net.num_nodes();
  MRT_REQUIRE(src >= 0 && src < n && dest >= 0 && dest < n);
  ValueVec out;
  std::vector<int> arc_stack;
  std::vector<bool> on_path(static_cast<std::size_t>(n), false);
  on_path[static_cast<std::size_t>(src)] = true;
  dfs(alg, net, src, dest, origin, arc_stack, on_path, out, opts);
  return out;
}

ValueVec global_min_set(const OrderTransform& alg, const LabeledGraph& net,
                        int src, int dest, const Value& origin,
                        const PathEnumOptions& opts) {
  return min_set(*alg.ord, all_path_weights(alg, net, src, dest, origin, opts));
}

bool is_globally_optimal(const OrderTransform& alg, const LabeledGraph& net,
                         int src, int dest, const Value& origin,
                         const Value& w, const PathEnumOptions& opts) {
  ValueVec all = all_path_weights(alg, net, src, dest, origin, opts);
  bool achieved = false;
  for (const Value& p : all) {
    const Cmp c = alg.ord->cmp(p, w);
    if (c == Cmp::Less) return false;  // a strictly better path exists
    if (c == Cmp::Equiv) achieved = true;
  }
  return achieved;
}

bool is_locally_optimal(const OrderTransform& alg, const LabeledGraph& net,
                        int dest, const Value& origin, const Routing& r,
                        bool drop_top_routes) {
  return is_locally_optimal(alg, net, dest, origin, r, SurvivingTopology{},
                            drop_top_routes);
}

bool is_locally_optimal(const OrderTransform& alg, const LabeledGraph& net,
                        int dest, const Value& origin, const Routing& r,
                        const SurvivingTopology& topo, bool drop_top_routes) {
  const int n = net.num_nodes();
  for (int u = 0; u < n; ++u) {
    if (!topo.node_ok(u)) {
      // A crashed node's state was wiped; any surviving route is a bug.
      if (r.has_route(u)) return false;
      continue;
    }
    ValueVec candidates;
    if (u == dest) candidates.push_back(origin);
    for (int id : net.graph().out_arcs(u)) {
      if (!topo.arc_ok(id)) continue;
      const int v = net.graph().arc(id).dst;
      if (!topo.node_ok(v)) continue;
      const auto& wv = r.weight[static_cast<std::size_t>(v)];
      if (!wv) continue;
      Value cand = alg.fns->apply(net.label(id), *wv);
      if (drop_top_routes && alg.ord->is_top(cand)) continue;
      candidates.push_back(std::move(cand));
    }
    const auto& wu = r.weight[static_cast<std::size_t>(u)];
    if (!wu) {
      if (!candidates.empty()) return false;  // has a candidate, uses none
      continue;
    }
    if (candidates.empty()) return false;  // has a route out of thin air
    bool achieved = false;
    for (const Value& c : candidates) {
      const Cmp cm = alg.ord->cmp(c, *wu);
      if (cm == Cmp::Less) return false;  // strictly better candidate ignored
      if (cm == Cmp::Equiv) achieved = true;
    }
    if (!achieved) return false;  // the claimed weight is not attainable
  }
  return true;
}

bool forwarding_consistent(const LabeledGraph& net, const Routing& r,
                           int dest) {
  for (int u = 0; u < net.num_nodes(); ++u) {
    if (!r.has_route(u)) continue;
    if (!forwarding_path(net, r, u, dest)) return false;
  }
  return true;
}

namespace {

void explain(std::string* why, std::string msg) {
  if (why && why->empty()) *why = std::move(msg);
}

}  // namespace

bool routes_are_coherent_extensions(const OrderTransform& alg,
                                    const LabeledGraph& net, int dest,
                                    const Value& origin, const Routing& r,
                                    const SurvivingTopology& topo,
                                    std::string* why) {
  const int n = net.num_nodes();
  bool ok = true;
  for (int u = 0; u < n; ++u) {
    const auto& wu = r.weight[static_cast<std::size_t>(u)];
    if (u == dest) {
      if (!topo.node_ok(u)) {
        if (wu) {
          explain(why, "crashed destination still originates a route");
          ok = false;
        }
        continue;
      }
      if (!wu || !(*wu == origin)) {
        explain(why, "destination does not carry its originated weight");
        ok = false;
      }
      continue;
    }
    if (!wu) continue;  // no route claimed: nothing to justify
    if (!topo.node_ok(u)) {
      explain(why, "crashed node " + std::to_string(u) + " kept a route");
      ok = false;
      continue;
    }
    const int arc = r.next_arc[static_cast<std::size_t>(u)];
    if (arc < 0) {
      explain(why, "node " + std::to_string(u) + " has a route but no arc");
      ok = false;
      continue;
    }
    const Arc& a = net.graph().arc(arc);
    if (a.src != u) {
      explain(why, "node " + std::to_string(u) + " selects a foreign arc");
      ok = false;
      continue;
    }
    if (!topo.arc_ok(arc) || !topo.node_ok(a.dst)) {
      explain(why, "node " + std::to_string(u) + " routes over a dead arc");
      ok = false;
      continue;
    }
    const auto& wv = r.weight[static_cast<std::size_t>(a.dst)];
    if (!wv) {
      explain(why, "node " + std::to_string(u) +
                       " extends a neighbour that has no route (stale RIB)");
      ok = false;
      continue;
    }
    if (!(alg.fns->apply(net.label(arc), *wv) == *wu)) {
      explain(why, "node " + std::to_string(u) +
                       " carries a weight that is not the extension of its "
                       "next hop's current route (stale RIB)");
      ok = false;
    }
  }
  return ok;
}

bool unreachable_nodes_have_no_route(const LabeledGraph& net, int dest,
                                     const Routing& r,
                                     const SurvivingTopology& topo,
                                     std::string* why) {
  const int n = net.num_nodes();
  // Reverse reachability: u can reach dest iff some alive arc-path u → dest
  // exists through up nodes. BFS from dest along reversed alive arcs.
  std::vector<bool> reaches(static_cast<std::size_t>(n), false);
  if (topo.node_ok(dest)) {
    std::vector<int> frontier{dest};
    reaches[static_cast<std::size_t>(dest)] = true;
    while (!frontier.empty()) {
      const int v = frontier.back();
      frontier.pop_back();
      for (int id : net.graph().in_arcs(v)) {
        if (!topo.arc_ok(id)) continue;
        const int u = net.graph().arc(id).src;
        if (!topo.node_ok(u) || reaches[static_cast<std::size_t>(u)]) continue;
        reaches[static_cast<std::size_t>(u)] = true;
        frontier.push_back(u);
      }
    }
  }
  bool ok = true;
  for (int u = 0; u < n; ++u) {
    if (reaches[static_cast<std::size_t>(u)]) continue;
    if (r.has_route(u)) {
      explain(why, "node " + std::to_string(u) +
                       " keeps a route despite having no surviving path to "
                       "the destination");
      ok = false;
    }
  }
  return ok;
}

}  // namespace mrt
