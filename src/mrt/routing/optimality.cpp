#include "mrt/routing/optimality.hpp"

#include <stdexcept>

#include "mrt/support/require.hpp"

namespace mrt {
namespace {

// DFS over simple paths src → dest collecting arc-id sequences' weights.
// Weights compose right-to-left, so we collect paths first and then fold;
// to avoid quadratic recomputation we fold during backtracking instead:
// weight(prefix + arc + suffix) needs the suffix value, so we enumerate from
// src and evaluate by recomputing along the completed path (paths are short
// on the graphs the validators run on).
void dfs(const OrderTransform& alg, const LabeledGraph& net, int v, int dest,
         const Value& origin, std::vector<int>& arc_stack,
         std::vector<bool>& on_path, ValueVec& out,
         const PathEnumOptions& opts) {
  if (v == dest) {
    Value w = origin;
    for (std::size_t i = arc_stack.size(); i-- > 0;) {
      w = alg.fns->apply(net.label(arc_stack[i]), w);
    }
    out.push_back(std::move(w));
    if (out.size() > opts.max_paths) {
      throw std::runtime_error("all_path_weights: path budget exceeded");
    }
    return;
  }
  for (int id : net.graph().out_arcs(v)) {
    const int u = net.graph().arc(id).dst;
    if (on_path[static_cast<std::size_t>(u)]) continue;
    on_path[static_cast<std::size_t>(u)] = true;
    arc_stack.push_back(id);
    dfs(alg, net, u, dest, origin, arc_stack, on_path, out, opts);
    arc_stack.pop_back();
    on_path[static_cast<std::size_t>(u)] = false;
  }
}

}  // namespace

ValueVec all_path_weights(const OrderTransform& alg, const LabeledGraph& net,
                          int src, int dest, const Value& origin,
                          const PathEnumOptions& opts) {
  const int n = net.num_nodes();
  MRT_REQUIRE(src >= 0 && src < n && dest >= 0 && dest < n);
  ValueVec out;
  std::vector<int> arc_stack;
  std::vector<bool> on_path(static_cast<std::size_t>(n), false);
  on_path[static_cast<std::size_t>(src)] = true;
  dfs(alg, net, src, dest, origin, arc_stack, on_path, out, opts);
  return out;
}

ValueVec global_min_set(const OrderTransform& alg, const LabeledGraph& net,
                        int src, int dest, const Value& origin,
                        const PathEnumOptions& opts) {
  return min_set(*alg.ord, all_path_weights(alg, net, src, dest, origin, opts));
}

bool is_globally_optimal(const OrderTransform& alg, const LabeledGraph& net,
                         int src, int dest, const Value& origin,
                         const Value& w, const PathEnumOptions& opts) {
  ValueVec all = all_path_weights(alg, net, src, dest, origin, opts);
  bool achieved = false;
  for (const Value& p : all) {
    const Cmp c = alg.ord->cmp(p, w);
    if (c == Cmp::Less) return false;  // a strictly better path exists
    if (c == Cmp::Equiv) achieved = true;
  }
  return achieved;
}

bool is_locally_optimal(const OrderTransform& alg, const LabeledGraph& net,
                        int dest, const Value& origin, const Routing& r,
                        bool drop_top_routes) {
  const int n = net.num_nodes();
  for (int u = 0; u < n; ++u) {
    ValueVec candidates;
    if (u == dest) candidates.push_back(origin);
    for (int id : net.graph().out_arcs(u)) {
      const int v = net.graph().arc(id).dst;
      const auto& wv = r.weight[static_cast<std::size_t>(v)];
      if (!wv) continue;
      Value cand = alg.fns->apply(net.label(id), *wv);
      if (drop_top_routes && alg.ord->is_top(cand)) continue;
      candidates.push_back(std::move(cand));
    }
    const auto& wu = r.weight[static_cast<std::size_t>(u)];
    if (!wu) {
      if (!candidates.empty()) return false;  // has a candidate, uses none
      continue;
    }
    if (candidates.empty()) return false;  // has a route out of thin air
    bool achieved = false;
    for (const Value& c : candidates) {
      const Cmp cm = alg.ord->cmp(c, *wu);
      if (cm == Cmp::Less) return false;  // strictly better candidate ignored
      if (cm == Cmp::Equiv) achieved = true;
    }
    if (!achieved) return false;  // the claimed weight is not attainable
  }
  return true;
}

bool forwarding_consistent(const LabeledGraph& net, const Routing& r,
                           int dest) {
  for (int u = 0; u < net.num_nodes(); ++u) {
    if (!r.has_route(u)) continue;
    if (!forwarding_path(net, r, u, dest)) return false;
  }
  return true;
}

}  // namespace mrt
