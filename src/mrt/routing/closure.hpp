// The algebraic-quadrant solver: Kleene/Carré closure over a bisemigroup
// (Gondran–Minoux / Carré's "Graphs and Networks", the paper's [3], [10]).
//
// Given an arc-weight matrix A over (S, ⊕, ⊗), computes the quasi-inverse
//   A* = I ⊕ A ⊕ A² ⊕ …
// by the Floyd–Warshall–Kleene elimination scheme. A*[i][j] summarizes the
// weights of all walks i → j: with (ℕ, min, +) this is all-pairs shortest
// paths; with (ℕ, max, min) all-pairs widest paths; with (ℕ, +, ×) on a DAG
// it counts paths. Convergence of the entry-wise loop iteration requires the
// ⊕-idempotent "no improving cycles" condition (the ND property of Fig. 3);
// the k-iteration variant exposes divergence for measurement.
#pragma once

#include <optional>
#include <vector>

#include "mrt/compile/semiring.hpp"
#include "mrt/core/quadrants.hpp"
#include "mrt/graph/digraph.hpp"

namespace mrt {

/// A dense weight matrix; absent entries (no arc / not yet reachable) are
/// std::nullopt, which behaves as the ⊕-identity / ⊗-absorber "no walk".
using WeightMatrix = std::vector<std::vector<std::optional<Value>>>;

/// Builds the arc matrix of a labeled-by-weight graph: entry (i, j) is the
/// ⊕-summary of all parallel arcs i → j.
WeightMatrix arc_matrix(const Bisemigroup& alg, const Digraph& g,
                        const ValueVec& arc_weights);

struct ClosureOptions {
  /// Entry-wise fixpoint bound for the iterative variant.
  int max_power = 64;
};

struct ClosureResult {
  WeightMatrix star;  ///< A*[i][j]; diagonal includes the empty walk when
                      ///< the algebra has a ⊗-identity.
  bool converged = true;  ///< iterative variant only
  int iterations = 0;     ///< iterative variant only
};

/// Floyd–Warshall–Kleene elimination: exact for ⊕-idempotent, nondecreasing
/// algebras (simple-path-summarizing semirings).
///
/// When `cb` is non-null and compiled, the elimination runs on flat weight
/// words with the fused ⊕/⊗ kernels — same update order, identical entries.
ClosureResult kleene_closure(const Bisemigroup& alg, WeightMatrix a,
                             const compile::CompiledBisemigroup* cb = nullptr);

/// Power iteration: B ← I ⊕ A ⊗ B until fixpoint or the bound; also valid
/// for non-idempotent algebras on DAGs (e.g. path counting).
ClosureResult iterative_closure(const Bisemigroup& alg, const WeightMatrix& a,
                                const ClosureOptions& opts = {},
                                const compile::CompiledBisemigroup* cb =
                                    nullptr);

}  // namespace mrt
