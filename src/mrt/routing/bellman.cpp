#include "mrt/routing/bellman.hpp"

#include <atomic>

#include "mrt/obs/obs.hpp"
#include "mrt/par/par.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

// Nodes per parallel chunk when relaxing a round: each node's relaxation is
// independent (it reads the previous routing and writes only its own slot),
// so rounds split across the pool without changing any result.
constexpr std::size_t kNodeGrain = 32;

// Best candidate at node u given neighbours' routes in `r`.
struct Candidate {
  std::optional<Value> weight;
  int arc = -1;
};

Candidate best_candidate(const OrderTransform& alg, const LabeledGraph& net,
                         int u, const Routing& r, std::uint64_t& relaxations) {
  Candidate best;
  for (int id : net.graph().out_arcs(u)) {
    const int v = net.graph().arc(id).dst;
    const auto& wv = r.weight[static_cast<std::size_t>(v)];
    if (!wv) continue;
    ++relaxations;
    Value cand = alg.fns->apply(net.label(id), *wv);
    if (!best.weight ||
        lt_of(alg.ord->cmp(cand, *best.weight))) {
      best.weight = std::move(cand);
      best.arc = id;
    }
  }
  return best;
}

}  // namespace

bool bellman_step(const OrderTransform& alg, const LabeledGraph& net,
                  int dest, const Value& origin, Routing& r,
                  const BellmanOptions& opts) {
  const int n = net.num_nodes();
  std::atomic<std::uint64_t> relax_total{0};
  std::atomic<bool> changed_any{false};
  Routing next = r;
  par::parallel_for(
      static_cast<std::size_t>(n), kNodeGrain,
      [&](std::size_t ub, std::size_t ue) {
        // Per-chunk locals: counters flush once per chunk, and the chunk
        // writes only its own slots of `next`.
        std::uint64_t relaxations = 0;
        bool changed = false;
        for (std::size_t uu = ub; uu < ue; ++uu) {
          const int u = static_cast<int>(uu);
          if (u == dest) {
            // The destination always keeps its originated route.
            next.weight[uu] = origin;
            next.next_arc[uu] = -1;
            continue;
          }
          Candidate cand = best_candidate(alg, net, u, r, relaxations);
          auto& cur = next.weight[uu];
          auto& cur_arc = next.next_arc[uu];
          if (!cand.weight) {
            if (cur) changed = true;
            cur = std::nullopt;
            cur_arc = -1;
            continue;
          }
          if (cur && opts.sticky) {
            // Keep the current route if it is still available and not
            // strictly worse than the best candidate.
            const int arc = cur_arc;
            if (arc >= 0) {
              const int v = net.graph().arc(arc).dst;
              const auto& wv = r.weight[static_cast<std::size_t>(v)];
              if (wv) {
                Value via_cur = alg.fns->apply(net.label(arc), *wv);
                if (!lt_of(alg.ord->cmp(*cand.weight, via_cur))) {
                  if (!(via_cur == *cur)) changed = true;
                  cur = std::move(via_cur);
                  continue;
                }
              }
            }
          }
          if (!cur || !(*cand.weight == *cur) || cur_arc != cand.arc) {
            changed = changed || !cur || !(*cand.weight == *cur);
            cur = cand.weight;
            cur_arc = cand.arc;
          }
        }
        relax_total.fetch_add(relaxations, std::memory_order_relaxed);
        if (changed) changed_any.store(true, std::memory_order_relaxed);
      });
  r = std::move(next);
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("bellman.steps").add(1);
    reg.counter("bellman.relaxations")
        .add(relax_total.load(std::memory_order_relaxed));
  }
  return changed_any.load(std::memory_order_relaxed);
}

BellmanResult bellman_sync(const OrderTransform& alg, const LabeledGraph& net,
                           int dest, const Value& origin,
                           const BellmanOptions& opts) {
  const int n = net.num_nodes();
  MRT_REQUIRE(dest >= 0 && dest < n);
  BellmanResult out;
  out.routing.weight.assign(static_cast<std::size_t>(n), std::nullopt);
  out.routing.next_arc.assign(static_cast<std::size_t>(n), -1);
  out.routing.weight[static_cast<std::size_t>(dest)] = origin;

  {
    obs::ScopedSpan span("bellman_sync", "routing");
    for (out.iterations = 0; out.iterations < opts.max_iterations;
         ++out.iterations) {
      if (!bellman_step(alg, net, dest, origin, out.routing, opts)) {
        out.converged = true;
        break;
      }
    }
  }
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("bellman.runs").add(1);
    reg.counter("bellman.iterations")
        .add(static_cast<std::uint64_t>(out.iterations));
    reg.histogram("bellman.iterations_to_fixpoint")
        .record(static_cast<std::uint64_t>(out.iterations));
  }
  return out;
}

}  // namespace mrt
