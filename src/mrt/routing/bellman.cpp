#include "mrt/routing/bellman.hpp"

#include "mrt/obs/obs.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

// Best candidate at node u given neighbours' routes in `r`.
struct Candidate {
  std::optional<Value> weight;
  int arc = -1;
};

Candidate best_candidate(const OrderTransform& alg, const LabeledGraph& net,
                         int u, const Routing& r, std::uint64_t& relaxations) {
  Candidate best;
  for (int id : net.graph().out_arcs(u)) {
    const int v = net.graph().arc(id).dst;
    const auto& wv = r.weight[static_cast<std::size_t>(v)];
    if (!wv) continue;
    ++relaxations;
    Value cand = alg.fns->apply(net.label(id), *wv);
    if (!best.weight ||
        lt_of(alg.ord->cmp(cand, *best.weight))) {
      best.weight = std::move(cand);
      best.arc = id;
    }
  }
  return best;
}

}  // namespace

bool bellman_step(const OrderTransform& alg, const LabeledGraph& net,
                  int dest, const Value& origin, Routing& r,
                  const BellmanOptions& opts) {
  const int n = net.num_nodes();
  std::uint64_t relaxations = 0;
  Routing next = r;
  bool changed = false;
  for (int u = 0; u < n; ++u) {
    if (u == dest) {
      // The destination always keeps its originated route.
      next.weight[static_cast<std::size_t>(u)] = origin;
      next.next_arc[static_cast<std::size_t>(u)] = -1;
      continue;
    }
    Candidate cand = best_candidate(alg, net, u, r, relaxations);
    auto& cur = next.weight[static_cast<std::size_t>(u)];
    auto& cur_arc = next.next_arc[static_cast<std::size_t>(u)];
    if (!cand.weight) {
      if (cur) changed = true;
      cur = std::nullopt;
      cur_arc = -1;
      continue;
    }
    if (cur && opts.sticky) {
      // Keep the current route if it is still available and not strictly
      // worse than the best candidate.
      const int arc = cur_arc;
      if (arc >= 0) {
        const int v = net.graph().arc(arc).dst;
        const auto& wv = r.weight[static_cast<std::size_t>(v)];
        if (wv) {
          Value via_cur = alg.fns->apply(net.label(arc), *wv);
          if (!lt_of(alg.ord->cmp(*cand.weight, via_cur))) {
            if (!(via_cur == *cur)) changed = true;
            cur = std::move(via_cur);
            continue;
          }
        }
      }
    }
    if (!cur || !(*cand.weight == *cur) || cur_arc != cand.arc) {
      changed = changed || !cur || !(*cand.weight == *cur);
      cur = cand.weight;
      cur_arc = cand.arc;
    }
  }
  r = std::move(next);
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("bellman.steps").add(1);
    reg.counter("bellman.relaxations").add(relaxations);
  }
  return changed;
}

BellmanResult bellman_sync(const OrderTransform& alg, const LabeledGraph& net,
                           int dest, const Value& origin,
                           const BellmanOptions& opts) {
  const int n = net.num_nodes();
  MRT_REQUIRE(dest >= 0 && dest < n);
  BellmanResult out;
  out.routing.weight.assign(static_cast<std::size_t>(n), std::nullopt);
  out.routing.next_arc.assign(static_cast<std::size_t>(n), -1);
  out.routing.weight[static_cast<std::size_t>(dest)] = origin;

  {
    obs::ScopedSpan span("bellman_sync", "routing");
    for (out.iterations = 0; out.iterations < opts.max_iterations;
         ++out.iterations) {
      if (!bellman_step(alg, net, dest, origin, out.routing, opts)) {
        out.converged = true;
        break;
      }
    }
  }
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("bellman.runs").add(1);
    reg.counter("bellman.iterations")
        .add(static_cast<std::uint64_t>(out.iterations));
    reg.histogram("bellman.iterations_to_fixpoint")
        .record(static_cast<std::uint64_t>(out.iterations));
  }
  return out;
}

}  // namespace mrt
