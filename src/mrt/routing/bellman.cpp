#include "mrt/routing/bellman.hpp"

#include <atomic>
#include <cstdint>

#include "mrt/obs/obs.hpp"
#include "mrt/par/par.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace {

// Nodes per parallel chunk when relaxing a round: each node's relaxation is
// independent (it reads the previous routing and writes only its own slot),
// so rounds split across the pool without changing any result.
constexpr std::size_t kNodeGrain = 32;

// Best candidate at node u given neighbours' routes in `r`.
struct Candidate {
  std::optional<Value> weight;
  int arc = -1;
};

Candidate best_candidate(const OrderTransform& alg, const LabeledGraph& net,
                         const CsrAdjacency& out, int u, const Routing& r,
                         std::uint64_t& relaxations) {
  Candidate best;
  for (int e = out.begin(u); e < out.end(u); ++e) {
    const int id = out.arc[static_cast<std::size_t>(e)];
    const int v = out.head[static_cast<std::size_t>(e)];
    const auto& wv = r.weight[static_cast<std::size_t>(v)];
    if (!wv) continue;
    ++relaxations;
    Value cand = alg.fns->apply(net.label(id), *wv);
    if (!best.weight ||
        lt_of(alg.ord->cmp(cand, *best.weight))) {
      best.weight = std::move(cand);
      best.arc = id;
    }
  }
  return best;
}

bool bellman_step_boxed(const OrderTransform& alg, const LabeledGraph& net,
                        int dest, const Value& origin, Routing& r,
                        const BellmanOptions& opts) {
  const int n = net.num_nodes();
  // One flat CSR walk per relaxation instead of two pointer hops through
  // vector<vector<int>> — built once per graph, shared by every round.
  const CsrAdjacency& out = net.graph().csr_out();
  std::atomic<std::uint64_t> relax_total{0};
  std::atomic<bool> changed_any{false};
  Routing next = r;
  par::parallel_for(
      static_cast<std::size_t>(n), kNodeGrain,
      [&](std::size_t ub, std::size_t ue) {
        // Per-chunk locals: counters flush once per chunk, and the chunk
        // writes only its own slots of `next`.
        std::uint64_t relaxations = 0;
        bool changed = false;
        for (std::size_t uu = ub; uu < ue; ++uu) {
          const int u = static_cast<int>(uu);
          if (u == dest) {
            // The destination always keeps its originated route.
            next.weight[uu] = origin;
            next.next_arc[uu] = -1;
            continue;
          }
          Candidate cand = best_candidate(alg, net, out, u, r, relaxations);
          auto& cur = next.weight[uu];
          auto& cur_arc = next.next_arc[uu];
          if (!cand.weight) {
            if (cur) changed = true;
            cur = std::nullopt;
            cur_arc = -1;
            continue;
          }
          if (cur && opts.sticky) {
            // Keep the current route if it is still available and not
            // strictly worse than the best candidate.
            const int arc = cur_arc;
            if (arc >= 0) {
              const int v = net.graph().arc(arc).dst;
              const auto& wv = r.weight[static_cast<std::size_t>(v)];
              if (wv) {
                Value via_cur = alg.fns->apply(net.label(arc), *wv);
                if (!lt_of(alg.ord->cmp(*cand.weight, via_cur))) {
                  if (!(via_cur == *cur)) changed = true;
                  cur = std::move(via_cur);
                  continue;
                }
              }
            }
          }
          if (!cur || !(*cand.weight == *cur) || cur_arc != cand.arc) {
            changed = changed || !cur || !(*cand.weight == *cur);
            cur = cand.weight;
            cur_arc = cand.arc;
          }
        }
        relax_total.fetch_add(relaxations, std::memory_order_relaxed);
        if (changed) changed_any.store(true, std::memory_order_relaxed);
      });
  r = std::move(next);
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("bellman.steps").add(1);
    reg.counter("bellman.relaxations")
        .add(relax_total.load(std::memory_order_relaxed));
  }
  return changed_any.load(std::memory_order_relaxed);
}

// Iteration state of the flat path: one fixed-stride word block per node.
struct FlatRouting {
  std::size_t stride = 0;
  std::vector<std::uint64_t> w;
  std::vector<std::uint8_t> present;
  std::vector<int> arc;

  void init(int n, std::size_t s) {
    stride = s;
    w.assign(static_cast<std::size_t>(n) * s, 0);
    present.assign(static_cast<std::size_t>(n), 0);
    arc.assign(static_cast<std::size_t>(n), -1);
  }
  std::uint64_t* at(int v) {
    return w.data() + static_cast<std::size_t>(v) * stride;
  }
  const std::uint64_t* at(int v) const {
    return w.data() + static_cast<std::size_t>(v) * stride;
  }
};

bool words_eq(const std::uint64_t* a, const std::uint64_t* b,
              std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    if (a[k] != b[k]) return false;
  }
  return true;
}

// The boxed step, word for word, on flat weights. Word equality stands in
// for Value equality (the encoding is canonical and injective), so the
// change/convergence detection is identical.
bool bellman_step_flat(const LabeledGraph& net, int dest,
                       const std::uint64_t* origin_w, FlatRouting& r,
                       const BellmanOptions& opts,
                       const compile::CompiledNet& cn) {
  const int n = net.num_nodes();
  const CsrAdjacency& out = net.graph().csr_out();
  const compile::CompiledAlgebra& ca = cn.algebra();
  const std::size_t stride = r.stride;
  std::atomic<std::uint64_t> relax_total{0};
  std::atomic<bool> changed_any{false};
  FlatRouting next = r;
  par::parallel_for(
      static_cast<std::size_t>(n), kNodeGrain,
      [&](std::size_t ub, std::size_t ue) {
        std::uint64_t relaxations = 0;
        bool changed = false;
        // Reused per-thread scratch rows: the step runs once per Bellman
        // iteration, so constructing these here allocated twice per chunk
        // per iteration.
        thread_local std::vector<std::uint64_t> best, cand;
        if (best.size() < stride) best.resize(stride);
        if (cand.size() < stride) cand.resize(stride);
        for (std::size_t uu = ub; uu < ue; ++uu) {
          const int u = static_cast<int>(uu);
          if (u == dest) {
            for (std::size_t k = 0; k < stride; ++k) next.at(u)[k] = origin_w[k];
            next.present[uu] = 1;
            next.arc[uu] = -1;
            continue;
          }
          bool have = false;
          int best_arc = -1;
          for (int e = out.begin(u); e < out.end(u); ++e) {
            const int id = out.arc[static_cast<std::size_t>(e)];
            const int v = out.head[static_cast<std::size_t>(e)];
            if (!r.present[static_cast<std::size_t>(v)]) continue;
            ++relaxations;
            for (std::size_t k = 0; k < stride; ++k) cand[k] = r.at(v)[k];
            ca.apply(cn.label(id), cand.data());
            if (!have || lt_of(ca.compare(cand.data(), best.data()))) {
              best.swap(cand);
              best_arc = id;
              have = true;
            }
          }
          if (!have) {
            if (next.present[uu]) changed = true;
            next.present[uu] = 0;
            next.arc[uu] = -1;
            continue;
          }
          if (next.present[uu] && opts.sticky) {
            const int arc = next.arc[uu];
            if (arc >= 0) {
              const int v = net.graph().arc(arc).dst;
              if (r.present[static_cast<std::size_t>(v)]) {
                for (std::size_t k = 0; k < stride; ++k) cand[k] = r.at(v)[k];
                ca.apply(cn.label(arc), cand.data());
                if (!lt_of(ca.compare(best.data(), cand.data()))) {
                  if (!words_eq(cand.data(), next.at(u), stride))
                    changed = true;
                  for (std::size_t k = 0; k < stride; ++k)
                    next.at(u)[k] = cand[k];
                  continue;
                }
              }
            }
          }
          const bool same =
              next.present[uu] && words_eq(best.data(), next.at(u), stride);
          if (!same || next.arc[uu] != best_arc) {
            changed = changed || !same;
            for (std::size_t k = 0; k < stride; ++k) next.at(u)[k] = best[k];
            next.present[uu] = 1;
            next.arc[uu] = best_arc;
          }
        }
        relax_total.fetch_add(relaxations, std::memory_order_relaxed);
        if (changed) changed_any.store(true, std::memory_order_relaxed);
      });
  r = std::move(next);
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("bellman.steps").add(1);
    reg.counter("bellman.relaxations")
        .add(relax_total.load(std::memory_order_relaxed));
  }
  return changed_any.load(std::memory_order_relaxed);
}

// Entry/exit conversion between the public Routing and the flat state;
// returns false (leaving `fr` unspecified) if any present weight fails to
// encode, in which case the caller must stay boxed.
bool routing_to_flat(const Routing& r, const compile::CompiledAlgebra& ca,
                     FlatRouting& fr) {
  const int n = static_cast<int>(r.weight.size());
  fr.init(n, static_cast<std::size_t>(ca.words()));
  for (int v = 0; v < n; ++v) {
    const auto& wv = r.weight[static_cast<std::size_t>(v)];
    if (!wv) continue;
    if (!ca.encode(*wv, fr.at(v))) return false;
    fr.present[static_cast<std::size_t>(v)] = 1;
  }
  fr.arc = r.next_arc;
  return true;
}

Routing flat_to_routing(const FlatRouting& fr,
                        const compile::CompiledAlgebra& ca) {
  const int n = static_cast<int>(fr.present.size());
  Routing r;
  r.weight.assign(static_cast<std::size_t>(n), std::nullopt);
  r.next_arc = fr.arc;
  for (int v = 0; v < n; ++v) {
    if (fr.present[static_cast<std::size_t>(v)])
      r.weight[static_cast<std::size_t>(v)] = ca.decode(fr.at(v));
  }
  return r;
}

}  // namespace

bool bellman_step(const OrderTransform& alg, const LabeledGraph& net,
                  int dest, const Value& origin, Routing& r,
                  const BellmanOptions& opts,
                  const compile::CompiledNet* cn) {
  if (cn != nullptr && cn->ok()) {
    const compile::CompiledAlgebra& ca = cn->algebra();
    std::vector<std::uint64_t> origin_w(static_cast<std::size_t>(ca.words()),
                                        0);
    FlatRouting fr;
    if (ca.encode(origin, origin_w.data()) && routing_to_flat(r, ca, fr)) {
      const bool changed =
          bellman_step_flat(net, dest, origin_w.data(), fr, opts, *cn);
      r = flat_to_routing(fr, ca);
      return changed;
    }
  }
  return bellman_step_boxed(alg, net, dest, origin, r, opts);
}

BellmanResult bellman_sync(const OrderTransform& alg, const LabeledGraph& net,
                           int dest, const Value& origin,
                           const BellmanOptions& opts,
                           const compile::CompiledNet* cn) {
  const int n = net.num_nodes();
  static obs::Histogram& solve_ns =
      obs::registry().histogram("bellman.solve_ns");
  obs::ScopedTimer timer(solve_ns);
  MRT_REQUIRE(dest >= 0 && dest < n);
  BellmanResult out;

  std::vector<std::uint64_t> origin_w;
  bool flat = false;
  if (cn != nullptr && cn->ok()) {
    origin_w.assign(static_cast<std::size_t>(cn->words()), 0);
    flat = cn->algebra().encode(origin, origin_w.data());
  }

  if (flat) {
    const compile::CompiledAlgebra& ca = cn->algebra();
    FlatRouting fr;
    fr.init(n, static_cast<std::size_t>(ca.words()));
    for (std::size_t k = 0; k < fr.stride; ++k) fr.at(dest)[k] = origin_w[k];
    fr.present[static_cast<std::size_t>(dest)] = 1;
    {
      obs::ScopedSpan span("bellman_sync", "routing");
      for (out.iterations = 0; out.iterations < opts.max_iterations;
           ++out.iterations) {
        if (!bellman_step_flat(net, dest, origin_w.data(), fr, opts, *cn)) {
          out.converged = true;
          break;
        }
      }
    }
    out.routing = flat_to_routing(fr, ca);
  } else {
    out.routing.weight.assign(static_cast<std::size_t>(n), std::nullopt);
    out.routing.next_arc.assign(static_cast<std::size_t>(n), -1);
    out.routing.weight[static_cast<std::size_t>(dest)] = origin;
    obs::ScopedSpan span("bellman_sync", "routing");
    for (out.iterations = 0; out.iterations < opts.max_iterations;
         ++out.iterations) {
      if (!bellman_step_boxed(alg, net, dest, origin, out.routing, opts)) {
        out.converged = true;
        break;
      }
    }
  }
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("bellman.runs").add(1);
    reg.counter("bellman.iterations")
        .add(static_cast<std::uint64_t>(out.iterations));
    reg.histogram("bellman.iterations_to_fixpoint")
        .record(static_cast<std::uint64_t>(out.iterations));
  }
  return out;
}

}  // namespace mrt
