// DeltaStream: the one seam every TopologyDelta consumer drives from.
//
// A DeltaStream is a pull-based sequence of TopologyDelta batches —
// `next()` returns the next batch or nullopt at end-of-stream. Sources exist
// for in-memory replay logs (MemorySource), wire-format byte buffers
// (BufferSource), wire-format files (FileSource), and — via
// mrt/sim/delta_stream.hpp — the path-vector simulator's quiescent-point
// log. Consumers (`dyn::Solver::consume`, `rib::RibSolver::consume`,
// `serve::Daemon::drain`) apply each batch through their ordinary `update()`
// path, so a stream of N deltas is exactly N warm updates: the batch API is
// the single-record case of the stream API, not a separate code path.
//
// Decode failures terminate the stream gracefully: `next()` returns nullopt
// and `error()` is non-empty. A well-formed stream that simply ends leaves
// `error()` empty.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "mrt/dyn/delta.hpp"

namespace mrt::stream {

class DeltaStream {
 public:
  virtual ~DeltaStream() = default;

  /// Next delta batch, or nullopt when exhausted (or failed — check error()).
  virtual std::optional<dyn::TopologyDelta> next() = 0;

  /// Non-empty iff the stream terminated on a decode/io failure.
  const std::string& error() const { return error_; }

 protected:
  std::string error_;
};

/// Replays an in-memory log of deltas (no wire encoding involved).
class MemorySource final : public DeltaStream {
 public:
  explicit MemorySource(std::vector<dyn::TopologyDelta> deltas)
      : deltas_(std::move(deltas)) {}

  std::optional<dyn::TopologyDelta> next() override {
    if (i_ >= deltas_.size()) return std::nullopt;
    return deltas_[i_++];
  }

 private:
  std::vector<dyn::TopologyDelta> deltas_;
  std::size_t i_ = 0;
};

/// Decodes wire-format frames from a byte buffer, one frame per next().
class BufferSource final : public DeltaStream {
 public:
  explicit BufferSource(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  std::optional<dyn::TopologyDelta> next() override;

  /// Byte offset of the next undecoded frame (== size when drained).
  std::size_t offset() const { return pos_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Decodes wire-format frames from a file. The file is slurped on first
/// next(); an unreadable file yields an immediate end-of-stream with error()
/// set.
class FileSource final : public DeltaStream {
 public:
  explicit FileSource(std::string path) : path_(std::move(path)) {}

  std::optional<dyn::TopologyDelta> next() override;

 private:
  std::string path_;
  bool loaded_ = false;
  std::optional<BufferSource> buf_;
};

}  // namespace mrt::stream
