#include "mrt/stream/stream.hpp"

#include <fstream>
#include <iterator>

#include "mrt/stream/wire.hpp"

namespace mrt::stream {

std::optional<dyn::TopologyDelta> BufferSource::next() {
  if (!error_.empty() || pos_ >= bytes_.size()) return std::nullopt;
  Expected<DecodedFrame> f =
      decode_frame(bytes_.data() + pos_, bytes_.size() - pos_, pos_);
  if (!f.ok()) {
    error_ = f.error().to_string();
    pos_ = bytes_.size();
    return std::nullopt;
  }
  pos_ += f.value().consumed;
  return std::move(f.value().delta);
}

std::optional<dyn::TopologyDelta> FileSource::next() {
  if (!loaded_) {
    loaded_ = true;
    std::ifstream f(path_, std::ios::binary);
    if (!f) {
      error_ = "cannot open delta file: " + path_;
      return std::nullopt;
    }
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                    std::istreambuf_iterator<char>());
    if (f.bad()) {
      error_ = "read error on delta file: " + path_;
      return std::nullopt;
    }
    buf_.emplace(std::move(bytes));
  }
  if (!buf_.has_value()) return std::nullopt;
  std::optional<dyn::TopologyDelta> d = buf_->next();
  if (!buf_->error().empty()) error_ = buf_->error();
  return d;
}

}  // namespace mrt::stream
