// Solver::consume — the stream drive loop, kept out of mrt_dyn so the dyn
// layer stays independent of the wire format while still owning the seam's
// declaration.
#include "mrt/dyn/solver.hpp"
#include "mrt/stream/stream.hpp"

namespace mrt {

const Routing& Solver::consume(stream::DeltaStream& s) {
  while (std::optional<dyn::TopologyDelta> d = s.next()) {
    update(*d);
  }
  return routing();
}

}  // namespace mrt
