#include "mrt/stream/wire.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <utility>

namespace mrt::stream {
namespace {

// -- primitive writers (explicit little-endian, platform independent) --------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

// -- primitive readers --------------------------------------------------------

struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  bool have(std::size_t n) const { return size - pos >= n && pos <= size; }
  std::uint8_t u8() { return data[pos++]; }
  std::uint16_t u16() {
    std::uint16_t v = static_cast<std::uint16_t>(
        data[pos] | (static_cast<std::uint16_t>(data[pos + 1]) << 8));
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
};

std::uint32_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint32_t h = 0x811C9DC5u;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x01000193u;
  }
  return h;
}

// -- Value codec --------------------------------------------------------------

enum class ValueTag : std::uint8_t {
  Unit = 0,
  Int = 1,
  Real = 2,
  Inf = 3,
  Omega = 4,
  Tuple = 5,
  Tagged = 6,
};

void encode_value(const Value& v, std::vector<std::uint8_t>& out) {
  switch (v.kind()) {
    case Value::Kind::Unit:
      put_u8(out, static_cast<std::uint8_t>(ValueTag::Unit));
      break;
    case Value::Kind::Int:
      put_u8(out, static_cast<std::uint8_t>(ValueTag::Int));
      put_i64(out, v.as_int());
      break;
    case Value::Kind::Real:
      put_u8(out, static_cast<std::uint8_t>(ValueTag::Real));
      put_u64(out, std::bit_cast<std::uint64_t>(v.as_real()));
      break;
    case Value::Kind::Inf:
      put_u8(out, static_cast<std::uint8_t>(ValueTag::Inf));
      break;
    case Value::Kind::Omega:
      put_u8(out, static_cast<std::uint8_t>(ValueTag::Omega));
      break;
    case Value::Kind::Tuple: {
      put_u8(out, static_cast<std::uint8_t>(ValueTag::Tuple));
      const ValueVec& kids = v.as_tuple();
      put_u32(out, static_cast<std::uint32_t>(kids.size()));
      for (const Value& k : kids) encode_value(k, out);
      break;
    }
    case Value::Kind::Tagged:
      put_u8(out, static_cast<std::uint8_t>(ValueTag::Tagged));
      put_i32(out, v.tag());
      encode_value(v.untagged(), out);
      break;
  }
}

// Decodes one value; returns false (and sets err) on malformed input.
// `depth` guards against stack exhaustion from adversarial nesting.
bool decode_value(Cursor& c, Value& out, std::string& err, int depth = 0) {
  if (depth > 64) {
    err = "value nesting deeper than 64";
    return false;
  }
  if (!c.have(1)) {
    err = "truncated value";
    return false;
  }
  const std::uint8_t tag = c.u8();
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::Unit:
      out = Value::unit();
      return true;
    case ValueTag::Int:
      if (!c.have(8)) {
        err = "truncated int value";
        return false;
      }
      out = Value::integer(c.i64());
      return true;
    case ValueTag::Real:
      if (!c.have(8)) {
        err = "truncated real value";
        return false;
      }
      out = Value::real(std::bit_cast<double>(c.u64()));
      return true;
    case ValueTag::Inf:
      out = Value::inf();
      return true;
    case ValueTag::Omega:
      out = Value::omega();
      return true;
    case ValueTag::Tuple: {
      if (!c.have(4)) {
        err = "truncated tuple count";
        return false;
      }
      const std::uint32_t count = c.u32();
      // Each element needs at least one tag byte, so a count larger than
      // the remaining payload is corrupt — reject before allocating.
      if (count > c.size - c.pos) {
        err = "tuple count exceeds payload";
        return false;
      }
      ValueVec kids;
      kids.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        Value k;
        if (!decode_value(c, k, err, depth + 1)) return false;
        kids.push_back(std::move(k));
      }
      out = Value::tuple(std::move(kids));
      return true;
    }
    case ValueTag::Tagged: {
      if (!c.have(4)) {
        err = "truncated tagged value";
        return false;
      }
      const std::int32_t vtag = c.i32();
      Value payload;
      if (!decode_value(c, payload, err, depth + 1)) return false;
      out = Value::tagged(vtag, std::move(payload));
      return true;
    }
  }
  err = "bad value tag " + std::to_string(tag);
  return false;
}

Error frame_error(std::size_t offset, const std::string& what) {
  return Error{"delta frame at byte " + std::to_string(offset) + ": " + what};
}

}  // namespace

void encode_delta(const dyn::TopologyDelta& delta,
                  std::vector<std::uint8_t>& out) {
  std::vector<std::uint8_t> payload;
  put_u32(payload, static_cast<std::uint32_t>(delta.ops.size()));
  for (const dyn::DeltaOp& op : delta.ops) {
    put_u8(payload, static_cast<std::uint8_t>(op.kind));
    put_i32(payload, op.arc);
    put_i32(payload, op.node);
    if (op.kind == dyn::DeltaOp::Kind::Relabel) encode_value(op.label, payload);
  }
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  put_u16(out, kWireVersion);
  put_u16(out, 0);  // flags
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32(out, fnv1a(payload.data(), payload.size()));
}

std::vector<std::uint8_t> encode_stream(
    const std::vector<dyn::TopologyDelta>& deltas) {
  std::vector<std::uint8_t> out;
  for (const dyn::TopologyDelta& d : deltas) encode_delta(d, out);
  return out;
}

Expected<DecodedFrame> decode_frame(const std::uint8_t* data, std::size_t size,
                                    std::size_t stream_offset) {
  if (size < kFrameHeaderBytes) {
    return frame_error(stream_offset, "truncated header (" +
                                          std::to_string(size) + " of " +
                                          std::to_string(kFrameHeaderBytes) +
                                          " bytes)");
  }
  if (std::memcmp(data, kMagic, 4) != 0) {
    return frame_error(stream_offset, "bad magic (want \"MRTD\")");
  }
  Cursor c{data, size, 4};
  const std::uint16_t version = c.u16();
  if (version != kWireVersion) {
    return frame_error(stream_offset,
                       "unsupported version " + std::to_string(version));
  }
  const std::uint16_t flags = c.u16();
  if (flags != 0) {
    return frame_error(stream_offset,
                       "unsupported flags " + std::to_string(flags));
  }
  const std::uint32_t payload_len = c.u32();
  if (!c.have(static_cast<std::size_t>(payload_len) + 4)) {
    return frame_error(stream_offset, "truncated payload (want " +
                                          std::to_string(payload_len) +
                                          "+4 bytes, have " +
                                          std::to_string(size - c.pos) + ")");
  }
  const std::uint8_t* payload = data + c.pos;
  Cursor pc{payload, payload_len, 0};
  c.pos += payload_len;
  const std::uint32_t want_sum = c.u32();
  const std::uint32_t got_sum = fnv1a(payload, payload_len);
  if (want_sum != got_sum) {
    return frame_error(stream_offset, "checksum mismatch");
  }

  DecodedFrame out;
  out.consumed = c.pos;
  std::string err;
  if (!pc.have(4)) {
    return frame_error(stream_offset, "truncated op count");
  }
  const std::uint32_t op_count = pc.u32();
  // Every op is at least 9 bytes (kind + arc + node).
  if (op_count > payload_len / 9) {
    return frame_error(stream_offset, "op count exceeds payload");
  }
  out.delta.ops.reserve(op_count);
  for (std::uint32_t i = 0; i < op_count; ++i) {
    if (!pc.have(9)) {
      return frame_error(stream_offset,
                         "truncated op " + std::to_string(i));
    }
    dyn::DeltaOp op;
    const std::uint8_t kind = pc.u8();
    if (kind > static_cast<std::uint8_t>(dyn::DeltaOp::Kind::NodeUp)) {
      return frame_error(stream_offset,
                         "bad op kind " + std::to_string(kind));
    }
    op.kind = static_cast<dyn::DeltaOp::Kind>(kind);
    op.arc = pc.i32();
    op.node = pc.i32();
    if (op.kind == dyn::DeltaOp::Kind::Relabel) {
      if (!decode_value(pc, op.label, err)) {
        return frame_error(stream_offset, err);
      }
    }
    out.delta.ops.push_back(std::move(op));
  }
  if (pc.pos != payload_len) {
    return frame_error(stream_offset,
                       "trailing garbage in payload (" +
                           std::to_string(payload_len - pc.pos) + " bytes)");
  }
  return out;
}

Expected<std::vector<dyn::TopologyDelta>> decode_stream(
    const std::vector<std::uint8_t>& bytes) {
  std::vector<dyn::TopologyDelta> out;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    Expected<DecodedFrame> f =
        decode_frame(bytes.data() + pos, bytes.size() - pos, pos);
    if (!f.ok()) return f.error();
    out.push_back(std::move(f.value().delta));
    pos += f.value().consumed;
  }
  return out;
}

bool write_delta_file(const std::string& path,
                      const std::vector<dyn::TopologyDelta>& deltas) {
  const std::vector<std::uint8_t> bytes = encode_stream(deltas);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(f);
}

Expected<std::vector<dyn::TopologyDelta>> read_delta_file(
    const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Error{"cannot open delta file: " + path};
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  if (f.bad()) return Error{"read error on delta file: " + path};
  return decode_stream(bytes);
}

}  // namespace mrt::stream
