// Wire format for TopologyDelta streams.
//
// A delta stream is a flat sequence of *frames*, one per TopologyDelta
// batch. Every frame is self-delimiting and independently checksummed so a
// reader can resynchronize after truncation and reject corruption before
// handing ops to a solver:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     4  magic "MRTD" (0x4D 0x52 0x54 0x44)
//        4     2  format version, little-endian u16 (currently 1)
//        6     2  flags, little-endian u16 (must be 0 in version 1)
//        8     4  payload length in bytes, little-endian u32
//       12     n  payload (see below)
//     12+n     4  FNV-1a 32-bit checksum of the payload, little-endian u32
//
// Payload encoding (all integers little-endian):
//
//   u32 op_count
//   op_count times:
//     u8  kind            0=ArcDown 1=ArcUp 2=Relabel 3=NodeDown 4=NodeUp
//     i32 arc             (-1 when not applicable)
//     i32 node            (-1 when not applicable)
//     value               Relabel only
//
// Value encoding (recursive, covers every carrier shape of the metalanguage):
//
//   u8 tag   0=Unit 1=Int 2=Real 3=Inf 4=Omega 5=Tuple 6=Tagged
//   Int:    i64
//   Real:   u64 (IEEE-754 bit pattern)
//   Tuple:  u32 element count, then each element
//   Tagged: i32 tag, then the payload value
//
// Decoding never throws: malformed input (truncation, bad magic, unknown
// version, checksum mismatch, bad op/value tags) comes back as an Error via
// Expected, with the byte offset of the offending frame in the message.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mrt/dyn/delta.hpp"
#include "mrt/support/expected.hpp"

namespace mrt::stream {

inline constexpr std::uint8_t kMagic[4] = {0x4D, 0x52, 0x54, 0x44};  // "MRTD"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;  // magic+version+flags+len

/// Appends one frame encoding `delta` to `out`. Encoding is canonical: the
/// same delta always produces the same bytes, so round-tripped streams can be
/// compared byte-for-byte.
void encode_delta(const dyn::TopologyDelta& delta,
                  std::vector<std::uint8_t>& out);

/// Convenience: one frame per delta, concatenated.
std::vector<std::uint8_t> encode_stream(
    const std::vector<dyn::TopologyDelta>& deltas);

/// Result of decoding a single frame from a byte buffer.
struct DecodedFrame {
  dyn::TopologyDelta delta;
  std::size_t consumed = 0;  ///< frame size in bytes, header through checksum
};

/// Decodes the frame starting at `data` (with `size` bytes available).
/// `stream_offset` is only used to position error messages.
Expected<DecodedFrame> decode_frame(const std::uint8_t* data, std::size_t size,
                                    std::size_t stream_offset = 0);

/// Decodes a whole buffer of concatenated frames.
Expected<std::vector<dyn::TopologyDelta>> decode_stream(
    const std::vector<std::uint8_t>& bytes);

/// Writes `deltas` to `path` in wire format. Returns false on I/O failure.
bool write_delta_file(const std::string& path,
                      const std::vector<dyn::TopologyDelta>& deltas);

/// Reads a wire-format file back into deltas.
Expected<std::vector<dyn::TopologyDelta>> read_delta_file(
    const std::string& path);

}  // namespace mrt::stream
